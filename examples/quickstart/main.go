// Quickstart: spread n rumors with the paper's epidemic gossip (ears)
// under an adversarial schedule, and compare against trivial all-to-all
// flooding — the library's two-line "hello world".
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 128
		f    = 32 // the adversary may crash up to a quarter of the system
		seed = 42
	)

	fmt.Printf("gossip among %d processes, up to %d crashes, unknown delays (d=4, δ=2)\n\n", n, f)
	for _, proto := range []string{repro.ProtoTrivial, repro.ProtoEARS} {
		out, err := repro.Run(context.Background(), repro.GossipSpec{
			Protocol:  proto,
			N:         n,
			F:         f,
			D:         4,
			Delta:     2,
			Adversary: repro.AdversaryStandard,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		res := out.Gossip
		fmt.Printf("%-8s completed=%v  time=%4d steps  messages=%6d  crashes=%d\n",
			proto, res.Completed, res.TimeSteps, res.Messages, res.Crashes)
	}
	fmt.Println("\nears beats trivial on messages (n·polylog vs n²) at the cost of polylog time —")
	fmt.Println("exactly the trade-off in Table 1 of the paper.")
	return nil
}
