// Gossip-style failure detection — the scenario of van Renesse, Minsky
// and Hayden's gossip failure-detection service, cited as [25] in the
// paper's introduction.
//
// Every process disseminates a heartbeat (its rumor) through the paper's
// sears protocol while an adversary crashes processes at the start of the
// run. A monitor then inspects each survivor's rumor set: heartbeats that
// never arrived anywhere identify the crashed processes. Because sears is
// constant-time (Theorem 7), suspicion latency does not grow with n.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failuredetector:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 96
		f    = 24
		seed = 11
	)

	// Crash-storm: f processes die at t=0, before sending any heartbeat —
	// the cleanest ground truth for a detection demo.
	out, err := repro.Run(context.Background(), repro.GossipSpec{
		Protocol:  repro.ProtoSEARS,
		N:         n,
		F:         f,
		D:         2,
		Delta:     2,
		Adversary: repro.AdversaryCrashStorm,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	res := out.Gossip

	crashed := map[int]bool{}
	for _, c := range res.Crashed {
		crashed[c] = true
	}

	// Each survivor suspects every process whose heartbeat it lacks.
	// Tally suspicions across survivors.
	suspicion := make([]int, n)
	survivors := 0
	for p, known := range res.Rumors {
		if crashed[p] {
			continue
		}
		survivors++
		have := map[int]bool{}
		for _, r := range known {
			have[r] = true
		}
		for q := 0; q < n; q++ {
			if !have[q] {
				suspicion[q]++
			}
		}
	}

	// A process is declared failed when every survivor suspects it.
	var declared []int
	for q := 0; q < n; q++ {
		if suspicion[q] == survivors && survivors > 0 {
			declared = append(declared, q)
		}
	}
	sort.Ints(declared)

	truePos, falsePos := 0, 0
	for _, q := range declared {
		if crashed[q] {
			truePos++
		} else {
			falsePos++
		}
	}

	fmt.Printf("heartbeat dissemination over %d processes, %d crashed at t=0\n", n, res.Crashes)
	fmt.Printf("  sears: time=%d steps, messages=%d\n", res.TimeSteps, res.Messages)
	fmt.Printf("  declared failed: %d (true positives %d/%d, false positives %d)\n",
		len(declared), truePos, res.Crashes, falsePos)
	if falsePos > 0 {
		return fmt.Errorf("%d live processes wrongly declared failed", falsePos)
	}
	if truePos != res.Crashes {
		return fmt.Errorf("missed %d crashed processes", res.Crashes-truePos)
	}
	fmt.Println("  perfect detection: missing heartbeat ⇔ crashed before speaking")
	return nil
}
