// Anti-entropy for a replicated database — the scenario that motivated
// epidemic gossip in Demers et al. (PODC 1987), cited as [11] in the
// paper's introduction.
//
// Each of n replicas accepts a batch of local writes (its "rumor"). The
// replicas then run the paper's ears protocol to exchange batches until
// every live replica holds every live replica's writes, while an
// adversary crashes a quarter of the fleet mid-propagation and delays
// messages. The example materializes the per-replica key-value state from
// the gossip result and verifies convergence.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"repro"
)

// write is one replicated database mutation.
type write struct {
	Key   string
	Value string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "antientropy:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		replicas = 64
		failures = 16
		seed     = 7
	)

	// Each replica r accepts a batch of writes; batch identity = replica
	// identity, which is exactly the paper's rumor abstraction.
	batches := make([][]write, replicas)
	r := repro.NewRand(seed)
	for i := range batches {
		n := 1 + r.Intn(3)
		for k := 0; k < n; k++ {
			batches[i] = append(batches[i], write{
				Key:   fmt.Sprintf("user:%04d", r.Intn(500)),
				Value: fmt.Sprintf("v%d@replica%d", k, i),
			})
		}
	}

	out, err := repro.Run(context.Background(), repro.GossipSpec{
		Protocol:  repro.ProtoEARS,
		N:         replicas,
		F:         failures,
		D:         3,
		Delta:     2,
		Adversary: repro.AdversaryStaggered, // crashes arrive in waves
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	res := out.Gossip

	crashed := map[int]bool{}
	for _, c := range res.Crashed {
		crashed[c] = true
	}

	// Materialize each live replica's key-value state from the batches of
	// *live* origins — the paper's gathering guarantee covers exactly the
	// rumors of correct processes. Batches from replicas that crashed
	// mid-propagation may be known to some replicas and not others; a real
	// system would quarantine them until their origin's fate is settled.
	stores := map[int]map[string]string{}
	for replica, known := range res.Rumors {
		if crashed[replica] {
			continue
		}
		st := map[string]string{}
		for _, origin := range known {
			if crashed[origin] {
				continue
			}
			for _, w := range batches[origin] {
				st[w.Key] = w.Value
			}
		}
		stores[replica] = st
	}

	// Convergence check: all live replicas hold identical state.
	var ref map[string]string
	var refID int
	for id, st := range stores {
		if ref == nil || id < refID {
			ref, refID = st, id
		}
	}
	diverged := 0
	for id, st := range stores {
		if !sameStore(ref, st) {
			diverged++
			fmt.Printf("replica %d diverged!\n", id)
		}
	}

	fmt.Printf("anti-entropy over %d replicas (%d crashed mid-run)\n", replicas, res.Crashes)
	fmt.Printf("  gossip: time=%d steps, messages=%d (trivial flooding would use %d)\n",
		res.TimeSteps, res.Messages, replicas*(replicas-1))
	fmt.Printf("  converged stores: %d/%d live replicas, %d keys each, diverged=%d\n",
		len(stores)-diverged, len(stores), len(ref), diverged)
	if diverged > 0 {
		return fmt.Errorf("%d replicas diverged", diverged)
	}
	sample := sortedKeys(ref)
	if len(sample) > 3 {
		sample = sample[:3]
	}
	for _, k := range sample {
		fmt.Printf("  %s = %s\n", k, ref[k])
	}
	return nil
}

func sameStore(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
