// Agreement on a flaky cluster: n coordinators must agree on a binary
// decision (say, "commit or abort the migration") while nearly half of
// them may crash and the network delays messages arbitrarily. This is the
// paper's §6 application: Canetti–Rabin randomized consensus with get-core
// implemented over each gossip protocol, reproducing the Table 2 trade-off
// — and in particular CR-tears, the first constant-time asynchronous
// consensus with strictly subquadratic message complexity.
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consensus:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 64
		f    = 31 // maximal minority
		seed = 3
	)

	// A contested vote: roughly half the coordinators propose "commit"(1).
	inputs := make([]uint8, n)
	r := repro.NewRand(seed)
	ones := 0
	for i := range inputs {
		if r.Bool(0.5) {
			inputs[i] = 1
			ones++
		}
	}
	fmt.Printf("cluster of %d coordinators (up to %d may crash), %d propose commit\n\n", n, f, ones)

	for _, tr := range []string{
		repro.TransportDirect, repro.TransportEARS, repro.TransportSEARS, repro.TransportTEARS,
	} {
		out, err := repro.Run(context.Background(), repro.ConsensusSpec{
			Transport: tr,
			N:         n,
			F:         f,
			D:         3,
			Delta:     2,
			Adversary: repro.AdversaryStandard,
			Seed:      seed,
			Inputs:    inputs,
		})
		if err != nil {
			return fmt.Errorf("CR-%s: %w", tr, err)
		}
		res := out.Consensus
		decision := "abort"
		if res.Decision == 1 {
			decision = "commit"
		}
		fmt.Printf("CR-%-7s decision=%-6s rounds=%d  time=%4d steps  messages=%7d  crashes=%d\n",
			tr, decision, res.MaxRounds, res.TimeSteps, res.Messages, res.Crashes)
	}
	fmt.Println("\nAll transports agree (they must); they differ exactly along Table 2's")
	fmt.Println("time/message trade-off: direct is fast but Θ(n²) messages, CR-ears is")
	fmt.Println("message-lean but pays log²n time, CR-tears gets both (subquadratic, O(d+δ)).")
	return nil
}
