// Live cluster: the same ears nodes that run in the paper's discrete-time
// model, executed over real goroutines and channels — one goroutine per
// process, randomized link delays, mid-run crashes, and the Go scheduler
// as a genuine (if benevolent) asynchronous adversary. Termination is
// detected with credit counting, and the run is checked against the same
// gathering/validity evaluator the simulator uses.
//
// This example uses the library's internal live runtime through the repro
// module; downstream users embedding the protocols in their own transport
// implement sim.Node routing exactly like internal/live does.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := live.Config{
		N:         32,
		StepEvery: 200 * time.Microsecond,
		MinDelay:  100 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		Crashes: map[sim.ProcID]time.Duration{
			4:  3 * time.Millisecond,
			9:  5 * time.Millisecond,
			17: 8 * time.Millisecond,
		},
		Timeout: 30 * time.Second,
		Seed:    23,
	}

	fmt.Printf("live gossip: %d goroutine-processes, link delays %v–%v, %d scheduled crashes\n",
		cfg.N, cfg.MinDelay, cfg.MaxDelay, len(cfg.Crashes))

	for _, proto := range []core.Protocol{core.EARS{}, core.TEARS{}} {
		rep, err := live.RunGossip(proto, core.Params{}, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", proto.Name(), err)
		}
		fmt.Printf("  %-6s completed=%v wall=%8v messages=%6d crashed=%v\n",
			proto.Name(), rep.Completed, rep.Wall.Round(time.Millisecond), rep.Messages, rep.Crashed)
	}
	fmt.Println("\nsame nodes, same correctness checks as the simulator — but under the Go")
	fmt.Println("scheduler's real concurrency (run with -race to see the COW payload design hold).")
	return nil
}
