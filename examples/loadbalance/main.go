// Decentralized load estimation via majority gossip — one of the
// applications the paper's conclusion (§7) suggests for efficient
// majority-gossip solutions ("we believe that efficient solutions to
// majority gossip can lead to efficient solutions for other distributed
// problems, even beyond consensus, such as load balancing").
//
// Each of n servers knows only its own queue length. Using tears — whose
// point is exactly that every correct server cheaply learns a *majority*
// of the reports in O(d+δ) time with subquadratic messages — every server
// estimates the fleet-wide median load from the majority sample it
// gathered and decides locally whether to shed load. A majority sample is
// enough: the median of any ⌊n/2⌋+1 reports is within the interquartile
// band of the true distribution, so all shedding decisions are closely
// aligned without any coordinator.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadbalance:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		servers = 128
		f       = 63 // tears tolerates any minority of crashes
		seed    = 19
	)

	// Synthesize a skewed load distribution: most servers lightly loaded,
	// a hot tail.
	r := repro.NewRand(seed)
	load := make([]int, servers)
	for i := range load {
		load[i] = r.Intn(20)
		if r.Bool(0.15) {
			load[i] += 50 + r.Intn(100) // hot spot
		}
	}

	out, err := repro.Run(context.Background(), repro.GossipSpec{
		Protocol:  repro.ProtoTEARS,
		N:         servers,
		F:         f,
		D:         2,
		Delta:     2,
		Adversary: repro.AdversaryStandard,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	res := out.Gossip

	crashed := map[int]bool{}
	for _, c := range res.Crashed {
		crashed[c] = true
	}
	trueMedian := median(load)

	// Every live server estimates the median from its majority sample and
	// decides whether to shed.
	type decision struct {
		estimate int
		shed     bool
	}
	decisions := map[int]decision{}
	maj := servers/2 + 1
	for srv, known := range res.Rumors {
		if crashed[srv] {
			continue
		}
		if len(known) < maj {
			return fmt.Errorf("server %d gathered %d reports, majority gossip promised ≥ %d",
				srv, len(known), maj)
		}
		sample := make([]int, 0, len(known))
		for _, origin := range known {
			sample = append(sample, load[origin])
		}
		est := median(sample)
		decisions[srv] = decision{estimate: est, shed: load[srv] > 2*est}
	}

	// Report: estimates must cluster tightly around the true median.
	var worst int
	shedding := 0
	for _, d := range decisions {
		dev := abs(d.estimate - trueMedian)
		if dev > worst {
			worst = dev
		}
		if d.shed {
			shedding++
		}
	}
	fmt.Printf("load estimation across %d servers (%d crashed), majority gossip in %d steps, %d messages\n",
		servers, res.Crashes, res.TimeSteps, res.Messages)
	fmt.Printf("  true median load: %d; worst estimate deviation across live servers: %d\n",
		trueMedian, worst)
	fmt.Printf("  %d servers independently decided to shed load (load > 2×estimated median)\n", shedding)
	if worst > trueMedian+5 {
		return fmt.Errorf("estimates too dispersed (worst deviation %d)", worst)
	}
	fmt.Println("  no coordinator, constant time, subquadratic messages — the §7 application of tears")
	return nil
}

func median(xs []int) int {
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	return cp[len(cp)/2]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
