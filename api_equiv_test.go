package repro

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// The deprecated entry points are contractually thin wrappers over Run:
// every test here pins that a wrapper call and its Run(...) translation
// produce identical results AND identical event digests, so migrating a
// caller is provably a no-op.

func equivGossipConfigs() []GossipConfig {
	return []GossipConfig{
		{Protocol: ProtoEARS, N: 24, F: 5, D: 3, Delta: 2, Seed: 7},
		{Protocol: ProtoTEARS, N: 30, F: 3, D: 2, Delta: 2, Seed: 11, Adversary: AdversaryCrashStorm},
		{Protocol: ProtoSEARS, N: 20, F: 2, D: 2, Delta: 1, Seed: 3, Topology: TopoRing},
		{Protocol: ProtoSyncEpidemic, N: 16, F: 0, D: 1, Delta: 1, Seed: 5, Adversary: AdversaryBenign},
	}
}

func TestRunGossipWrapperEquivalence(t *testing.T) {
	for _, cfg := range equivGossipConfigs() {
		oldDig, newDig := sim.NewDigestTracer(), sim.NewDigestTracer()

		oldCfg := cfg
		oldCfg.Tracer = oldDig
		//lint:ignore SA1019 the deprecated wrapper is the subject under test
		oldRes, oldErr := RunGossip(oldCfg)

		newCfg := cfg
		newCfg.Tracer = newDig
		r, newErr := Run(context.Background(), GossipSpec(newCfg))

		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", cfg.Protocol, oldErr, newErr)
		}
		if !reflect.DeepEqual(oldRes, r.Gossip) {
			t.Fatalf("%s: results diverged:\n old %+v\n new %+v", cfg.Protocol, oldRes, r.Gossip)
		}
		if oldDig.Sum() != newDig.Sum() || oldDig.Events() != newDig.Events() {
			t.Fatalf("%s: digests diverged: %016x/%d vs %016x/%d",
				cfg.Protocol, oldDig.Sum(), oldDig.Events(), newDig.Sum(), newDig.Events())
		}
	}
}

func TestRunConsensusWrapperEquivalence(t *testing.T) {
	cfgs := []ConsensusConfig{
		{Transport: TransportTEARS, N: 21, F: 4, D: 2, Delta: 2, Seed: 9},
		{Transport: TransportDirect, N: 15, F: 2, D: 1, Delta: 1, Seed: 2, LocalCoin: true},
	}
	for _, cfg := range cfgs {
		//lint:ignore SA1019 the deprecated wrapper is the subject under test
		oldRes, oldErr := RunConsensus(cfg)
		r, newErr := Run(context.Background(), ConsensusSpec(cfg))
		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", cfg.Transport, oldErr, newErr)
		}
		if !reflect.DeepEqual(oldRes, r.Consensus) {
			t.Fatalf("%s: results diverged:\n old %+v\n new %+v", cfg.Transport, oldRes, r.Consensus)
		}
	}
}

func TestRunLowerBoundWrapperEquivalence(t *testing.T) {
	cfg := LowerBoundConfig{Protocol: ProtoEARS, N: 24, F: 6, Seed: 4, Trials: 8}
	//lint:ignore SA1019 the deprecated wrapper is the subject under test
	oldRep, oldErr := RunLowerBound(cfg)
	r, newErr := Run(context.Background(), LowerBoundSpec(cfg))
	if oldErr != nil || newErr != nil {
		t.Fatalf("errors: %v / %v", oldErr, newErr)
	}
	if !reflect.DeepEqual(oldRep, *r.LowerBound) {
		t.Fatalf("reports diverged:\n old %+v\n new %+v", oldRep, *r.LowerBound)
	}
}

func TestRunFuzzWrapperEquivalence(t *testing.T) {
	//lint:ignore SA1019 the deprecated wrapper is the subject under test
	oldSum, oldErr := RunFuzz(FuzzOptions{Runs: 40, Seed: 1, Workers: 2})
	r, newErr := Run(context.Background(), FuzzSpec{Runs: 40, Seed: 1}, WithWorkers(2))
	if oldErr != nil || newErr != nil {
		t.Fatalf("errors: %v / %v", oldErr, newErr)
	}
	if !reflect.DeepEqual(oldSum, r.Fuzz) {
		t.Fatalf("summaries diverged:\n old %+v\n new %+v", oldSum, r.Fuzz)
	}
}

func TestRunManyWrapperEquivalence(t *testing.T) {
	cfgs := equivGossipConfigs()
	//lint:ignore SA1019 the deprecated wrapper is the subject under test
	oldRes, oldErrs := RunGossipMany(Batch{Workers: 2}, cfgs)
	specs := make([]GossipSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = GossipSpec(cfg)
	}
	newRes, newErrs := RunMany(context.Background(), specs, WithWorkers(2))
	for i := range cfgs {
		if (oldErrs[i] == nil) != (newErrs[i] == nil) {
			t.Fatalf("item %d: error divergence: %v vs %v", i, oldErrs[i], newErrs[i])
		}
		if !reflect.DeepEqual(oldRes[i], newRes[i].Gossip) {
			t.Fatalf("item %d: results diverged:\n old %+v\n new %+v", i, oldRes[i], newRes[i].Gossip)
		}
	}

	ccfgs := []ConsensusConfig{
		{Transport: TransportTEARS, N: 15, F: 3, D: 2, Delta: 1, Seed: 1},
		{Transport: TransportEARS, N: 13, F: 2, D: 1, Delta: 1, Seed: 8},
	}
	//lint:ignore SA1019 the deprecated wrapper is the subject under test
	oldC, oldCErrs := RunConsensusMany(Batch{Workers: 2}, ccfgs)
	cspecs := make([]ConsensusSpec, len(ccfgs))
	for i, cfg := range ccfgs {
		cspecs[i] = ConsensusSpec(cfg)
	}
	newC, newCErrs := RunMany(context.Background(), cspecs, WithWorkers(2))
	for i := range ccfgs {
		if (oldCErrs[i] == nil) != (newCErrs[i] == nil) {
			t.Fatalf("item %d: error divergence: %v vs %v", i, oldCErrs[i], newCErrs[i])
		}
		if !reflect.DeepEqual(oldC[i], newC[i].Consensus) {
			t.Fatalf("item %d: results diverged:\n old %+v\n new %+v", i, oldC[i], newC[i].Consensus)
		}
	}
}

// TestWithShardsBitIdentical is the public-API face of the sharded kernel
// contract: gossip and consensus runs are event-for-event identical at
// every shard count, including under the crash-heavy preset.
func TestWithShardsBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, cfg := range equivGossipConfigs() {
		refDig := sim.NewDigestTracer()
		spec := GossipSpec(cfg)
		ref, err := Run(ctx, spec, WithTracer(refDig))
		if err != nil {
			t.Fatalf("%s serial: %v", cfg.Protocol, err)
		}
		for _, shards := range []int{1, 2, 3, 7, cfg.N} {
			dig := sim.NewDigestTracer()
			got, err := Run(ctx, spec, WithTracer(dig), WithShards(shards))
			if err != nil {
				t.Fatalf("%s shards=%d: %v", cfg.Protocol, shards, err)
			}
			if !reflect.DeepEqual(ref.Gossip, got.Gossip) {
				t.Fatalf("%s shards=%d: results diverged:\n serial %+v\n sharded %+v",
					cfg.Protocol, shards, ref.Gossip, got.Gossip)
			}
			if dig.Sum() != refDig.Sum() || dig.Events() != refDig.Events() {
				t.Fatalf("%s shards=%d: digest diverged", cfg.Protocol, shards)
			}
		}
	}

	ccfg := ConsensusSpec{Transport: TransportTEARS, N: 21, F: 4, D: 2, Delta: 2, Seed: 9}
	refDig := sim.NewDigestTracer()
	ref, err := Run(ctx, ccfg, WithTracer(refDig))
	if err != nil {
		t.Fatalf("consensus serial: %v", err)
	}
	for _, shards := range []int{2, 5, 21} {
		dig := sim.NewDigestTracer()
		got, err := Run(ctx, ccfg, WithTracer(dig), WithShards(shards))
		if err != nil {
			t.Fatalf("consensus shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(ref.Consensus, got.Consensus) {
			t.Fatalf("consensus shards=%d: results diverged", shards)
		}
		if dig.Sum() != refDig.Sum() || dig.Events() != refDig.Events() {
			t.Fatalf("consensus shards=%d: digest diverged", shards)
		}
	}
}

// TestWithLeanTrimsOnlyMaterialization: lean runs drop the Θ(n²) Rumors
// listing but change nothing the run computed.
func TestWithLeanTrimsOnlyMaterialization(t *testing.T) {
	ctx := context.Background()
	spec := GossipSpec{Protocol: ProtoTEARS, N: 40, F: 4, D: 2, Delta: 2, Seed: 13}
	full, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	lean, err := Run(ctx, spec, WithLean(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if lean.Gossip.Rumors != nil {
		t.Fatal("lean run materialized Rumors")
	}
	trimmed := *full.Gossip
	trimmed.Rumors = nil
	if !reflect.DeepEqual(&trimmed, lean.Gossip) {
		t.Fatalf("lean run diverged beyond Rumors:\n full %+v\n lean %+v", &trimmed, lean.Gossip)
	}
}

// TestRunManyRejectsSharedObserver: a concurrent batch must not race on a
// shared tracer/telemetry observer.
func TestRunManyRejectsSharedObserver(t *testing.T) {
	specs := []GossipSpec{{Protocol: ProtoEARS, N: 8, D: 1, Delta: 1, Seed: 1}}
	_, errs := RunMany(context.Background(), specs, WithTracer(sim.NewDigestTracer()))
	if errs[0] == nil {
		t.Fatal("concurrent RunMany accepted a shared tracer")
	}
	rec := NewTelemetryRecorder(8)
	res, errs := RunMany(context.Background(), specs, WithTelemetry(rec), WithWorkers(1))
	if errs[0] != nil {
		t.Fatalf("serial RunMany rejected telemetry: %v", errs[0])
	}
	if res[0].Gossip == nil {
		t.Fatal("missing result")
	}
	if rec.Snapshot().Sends == 0 {
		t.Fatal("telemetry recorder observed nothing")
	}
}

// TestRunCancelledContext: non-fuzz runs abort on an already-cancelled
// context before any work starts.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, GossipSpec{Protocol: ProtoEARS, N: 8, D: 1, Delta: 1}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
