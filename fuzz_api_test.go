package repro

import (
	"context"
	"reflect"
	"testing"
)

// TestRunFuzzCleanAndDeterministic: the public fuzzing entry point runs a
// clean session on the default stream, reproducibly, and parallel equals
// serial (the library-level face of the cmd/fuzz acceptance contract).
func TestRunFuzzCleanAndDeterministic(t *testing.T) {
	a, err := RunFuzz(FuzzOptions{Runs: 60, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFuzz(FuzzOptions{Runs: 60, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel fuzz session differs from serial:\n%+v\n%+v", a, b)
	}
	if len(a.Reports) != 0 {
		t.Fatalf("clean stream produced %d reports; first: %+v", len(a.Reports), a.Reports[0])
	}
	if a.Runs != 60 {
		t.Fatalf("runs = %d", a.Runs)
	}
}

// TestRunFuzzCancellation: a pre-cancelled context skips scenarios rather
// than failing the session.
func TestRunFuzzCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := RunFuzz(FuzzOptions{Runs: 10, Seed: 1, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 10 || sum.Runs != 0 {
		t.Fatalf("cancelled session: runs=%d skipped=%d", sum.Runs, sum.Skipped)
	}
}

// TestGenerateScenario: the stream is pure in (seed, index) and the specs
// it yields execute through the public gossip runner's protocol registry
// (every generated protocol name is accepted by RunGossip).
func TestGenerateScenario(t *testing.T) {
	if !reflect.DeepEqual(GenerateScenario(3, 9), GenerateScenario(3, 9)) {
		t.Fatal("GenerateScenario is not deterministic")
	}
	seen := map[string]bool{}
	for i := int64(0); i < 40; i++ {
		spec := GenerateScenario(3, i)
		seen[spec.Protocol] = true
		if _, err := gossipProtoByName(spec.Protocol); err != nil {
			t.Fatalf("generated unknown protocol %q", spec.Protocol)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("only %d distinct protocols in 40 draws", len(seen))
	}
}
