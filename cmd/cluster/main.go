// Command cluster replays a scenario spec over a live networked gossip
// cluster (internal/cluster): a registry plus n nodes, each with its own
// TCP listener on loopback, exchanging the simulator's own payloads as
// versioned binary envelopes. By default every node is a real OS process
// (this binary re-executed in node mode); -inproc runs the nodes as
// goroutines with separate listeners in one process, the cheap shape CI
// smoke uses. The finished run is judged by the live-adapted oracle
// subset and summarized as a schema-versioned BENCH_live.json artifact.
//
//	cluster -spec testdata/corpus-seed/<seed>.json -out BENCH_live.json
//	cluster -inproc -spec spec.json              # one process, CI smoke
//	cluster -proto ears -n 16 -f 3               # ad-hoc spec, no file
//	cluster -metrics -v ...                      # per-node OpenMetrics endpoints
//	cluster -check BENCH_live.json               # validate an artifact
//
// Spec files may be bare scenario specs, fuzz corpus entries, or fuzz
// reports (the minimized repro is used). Exit status: 0 when every live
// oracle accepted, 1 on oracle violation or timeout, 2 on usage or
// harness error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scenario"
)

// specEnv carries the spec JSON from the driver to node-mode children, so
// ad-hoc specs need no file on disk.
const specEnv = "REPRO_CLUSTER_SPEC"

func main() { os.Exit(run()) }

func run() int {
	var (
		specPath = flag.String("spec", "", "scenario spec to replay (bare spec, corpus entry, or fuzz report)")
		proto    = flag.String("proto", "ears", "protocol for an ad-hoc spec when -spec is not given")
		n        = flag.Int("n", 16, "cluster size for an ad-hoc spec")
		f        = flag.Int("f", 0, "crash budget for an ad-hoc spec (crashes generated)")
		seed     = flag.Int64("seed", 1, "seed for an ad-hoc spec")

		inproc    = flag.Bool("inproc", false, "run nodes as goroutines in this process (separate listeners)")
		stepEvery = flag.Duration("step-every", time.Millisecond, "wall clock per simulated step (node pacing)")
		heartbeat = flag.Duration("heartbeat", 25*time.Millisecond, "heartbeat and quiescence-sweep pacing")
		timeout   = flag.Duration("timeout", 60*time.Second, "abort the run if not quiesced")
		traceCap  = flag.Int("trace-cap", 0, "per-node live event trace bound (0 = default)")
		metrics   = flag.Bool("metrics", false, "serve per-node OpenMetrics endpoints on ephemeral loopback ports")
		out       = flag.String("out", "", "write the BENCH_live.json artifact here")
		check     = flag.String("check", "", "validate an existing artifact and exit")
		verbose   = flag.Bool("v", false, "per-node detail")

		// Node mode (internal): the driver re-executes this binary with
		// these flags; the spec arrives via the environment.
		nodeMode     = flag.Bool("node", false, "internal: run as one cluster node")
		nodeID       = flag.Int("id", -1, "internal: node id")
		registry     = flag.String("registry", "", "internal: registry address")
		crashAfter   = flag.Duration("crash-after", 0, "internal: crash the gossip plane this long after the epoch")
		startTimeout = flag.Duration("start-timeout", 0, "internal: join/discovery bound")
		metricsAddr  = flag.String("metrics-addr", "", "internal: metrics listen address")
	)
	flag.Parse()

	if *check != "" {
		b, err := cluster.ReadBenchLive(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster:", err)
			return 1
		}
		fmt.Printf("%s: valid %s artifact: %s mode=%s passed=%v completed=%v\n",
			*check, b.Schema, b.Label, b.Mode, b.Passed, b.Completed)
		return 0
	}

	if *nodeMode {
		return runNode(*nodeID, *registry, *stepEvery, *heartbeat, *crashAfter,
			*startTimeout, *traceCap, *metricsAddr, *seed)
	}

	spec, err := loadSpec(*specPath, *proto, *n, *f, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		return 2
	}

	opts := cluster.Options{
		StepEvery: *stepEvery,
		Heartbeat: *heartbeat,
		Timeout:   *timeout,
		TraceCap:  *traceCap,
		Metrics:   *metrics,
	}
	if !*inproc {
		launch, err := procLauncher(spec, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster:", err)
			return 2
		}
		opts.Launch = launch
	}

	fmt.Printf("cluster: %s (%s, step-every=%v)\n", spec.Label(), modeName(*inproc), *stepEvery)
	res, err := cluster.Run(context.Background(), spec, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		return 2
	}
	printResult(res, *verbose)

	if *out != "" {
		if err := cluster.WriteBenchLive(*out, cluster.NewBenchLive(res)); err != nil {
			fmt.Fprintln(os.Stderr, "cluster:", err)
			return 2
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if !res.Passed {
		return 1
	}
	return 0
}

func modeName(inproc bool) string {
	if inproc {
		return cluster.ModeInproc
	}
	return cluster.ModeProcs
}

// loadSpec reads the spec file, or synthesizes an ad-hoc spec: the given
// protocol on a clique under uniform unit expectations, with f crashes
// striking the highest ids (the spread initiator 0 always survives).
func loadSpec(path, proto string, n, f int, seed int64) (scenario.Spec, error) {
	if path != "" {
		return scenario.ReadSpecFile(path)
	}
	spec := scenario.Spec{
		Protocol: proto, N: n, F: f, D: 2, Delta: 2, Seed: seed,
		Schedule: scenario.ScheduleSpec{Kind: scenario.SchedEvery},
		Delay:    scenario.DelaySpec{Kind: scenario.DelayFixed, Value: 1},
		Majority: proto == core.NameTEARS,
	}
	for i := 0; i < f; i++ {
		spec.Crashes = append(spec.Crashes, scenario.CrashEvent{At: int64(10 + 7*i), Proc: n - 1 - i})
	}
	// naive is the ablation that legitimately fails; averaging with
	// crashes destroys mass, so only the crash-free case promises the mean.
	spec.ExpectComplete = proto != core.NameNaive &&
		!(scenario.IsAveragingProtocol(proto) && f > 0)
	return spec, spec.Validate()
}

// procLauncher re-executes this binary in node mode, one OS process per
// node, handing the spec down via the environment.
func procLauncher(spec scenario.Spec, verbose bool) (func(cluster.NodeConfig, chan<- error), error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	return func(cfg cluster.NodeConfig, errs chan<- error) {
		args := []string{
			"-node",
			"-id", strconv.Itoa(cfg.ID),
			"-n", strconv.Itoa(cfg.N),
			"-registry", cfg.RegistryAddr,
			"-step-every", cfg.StepEvery.String(),
			"-heartbeat", cfg.HeartbeatEvery.String(),
			"-start-timeout", cfg.StartTimeout.String(),
			"-crash-after", cfg.CrashAfter.String(),
			"-trace-cap", strconv.Itoa(cfg.TraceCap),
			"-seed", strconv.FormatInt(cfg.Seed, 10),
		}
		if cfg.MetricsAddr != "" {
			args = append(args, "-metrics-addr", cfg.MetricsAddr)
		}
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), specEnv+"="+string(specJSON))
		if verbose {
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			errs <- fmt.Errorf("start node %d: %w", cfg.ID, err)
			return
		}
		go func() {
			if err := cmd.Wait(); err != nil {
				errs <- fmt.Errorf("node %d process: %w", cfg.ID, err)
			}
		}()
	}, nil
}

// runNode is the child half of procs mode: rebuild the spec's protocol
// nodes deterministically (same seed, same fork per id as the driver's
// in-process path), take ours, and run the lifecycle.
func runNode(id int, registry string, stepEvery, heartbeat, crashAfter,
	startTimeout time.Duration, traceCap int, metricsAddr string, seed int64) int {
	var spec scenario.Spec
	if err := json.Unmarshal([]byte(os.Getenv(specEnv)), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "node %d: bad %s: %v\n", id, specEnv, err)
		return 2
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", id, err)
		return 2
	}
	if id < 0 || id >= spec.N || registry == "" {
		fmt.Fprintf(os.Stderr, "node: need -id in [0,%d) and -registry\n", spec.N)
		return 2
	}
	proto, err := scenario.ProtocolByName(spec.Protocol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", id, err)
		return 2
	}
	graph, err := spec.BuildGraph()
	if err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", id, err)
		return 2
	}
	params := core.Params{N: spec.N, F: spec.F, Graph: graph, NoPool: true}
	nodes, err := core.NewNodes(proto, params, spec.Seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", id, err)
		return 2
	}
	cfg := cluster.NodeConfig{
		ID: id, N: spec.N,
		RegistryAddr:   registry,
		StepEvery:      stepEvery,
		HeartbeatEvery: heartbeat,
		CrashAfter:     crashAfter,
		StartTimeout:   startTimeout,
		Graph:          graph,
		TraceCap:       traceCap,
		MetricsAddr:    metricsAddr,
		Seed:           seed,
	}
	if _, err := cluster.RunNode(cfg, nodes[id]); err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", id, err)
		return 1
	}
	return 0
}

func printResult(res *cluster.Result, verbose bool) {
	fmt.Printf("quiesced in %v (total %v): %d messages (%.0f/s), %d steps, %d drained\n",
		res.QuiesceWall, res.Wall, res.TotalSent,
		float64(res.TotalSent)/maxSeconds(res.Wall), res.TotalSteps, res.TotalDrained)
	fmt.Printf("delivery latency: p50=%v p90=%v p99=%v max=%v (%d samples)\n",
		time.Duration(res.Latency.P50), time.Duration(res.Latency.P90),
		time.Duration(res.Latency.P99), time.Duration(res.Latency.Max), res.Latency.Count)
	if verbose {
		for _, rp := range res.Reports {
			status := "ok"
			if rp.Crashed {
				status = "crashed"
			}
			fmt.Printf("  node %2d [%s]: steps=%d sent=%d received=%d drained=%d addr=%s",
				rp.ID, status, rp.Steps, rp.Sent, rp.Received, rp.Drained, rp.Addr)
			if rp.MetricsAddr != "" {
				fmt.Printf(" metrics=http://%s/metrics", rp.MetricsAddr)
			}
			fmt.Println()
		}
	}
	for _, v := range res.Verdicts {
		if v.OK {
			fmt.Printf("  oracle %-25s ok\n", v.Oracle)
		} else {
			fmt.Printf("  oracle %-25s VIOLATION: %s\n", v.Oracle, v.Detail)
		}
	}
	if res.Passed {
		fmt.Println("PASS")
	} else {
		fmt.Println("FAIL")
	}
}

func maxSeconds(d time.Duration) float64 {
	if s := d.Seconds(); s > 0 {
		return s
	}
	return 1
}
