package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "32", "-f", "8", "-proto", "trivial"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"proto=trivial", "completed=true", "messages="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultipleSeeds(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "16", "-f", "0", "-proto", "tears", "-runs", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "completed=true"); got != 3 {
		t.Fatalf("expected 3 runs, saw %d", got)
	}
}

func TestRunRumorsFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-f", "0", "-proto", "ears", "-rumors"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "process") {
		t.Fatal("rumor listing missing")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-proto", "bogus", "-n", "8"}, &buf); err == nil {
		t.Fatal("bogus protocol accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTimelineFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-f", "2", "-proto", "tears", "-timeline"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend:") {
		t.Fatal("timeline missing from output")
	}
}
