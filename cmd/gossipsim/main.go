// Command gossipsim runs a single gossip simulation and prints the paper's
// complexity measures.
//
// Example:
//
//	gossipsim -proto ears -n 256 -f 64 -d 4 -delta 2 -adversary standard -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		proto = fs.String("proto", repro.ProtoEARS, "protocol: trivial|ears|sears|tears|sync-epidemic|sync-deterministic")
		n     = fs.Int("n", 128, "number of processes")
		f     = fs.Int("f", 32, "crash budget")
		d     = fs.Int("d", 2, "max message delay")
		delta = fs.Int("delta", 2, "max scheduling gap")
		adv   = fs.String("adversary", repro.AdversaryStandard, "adversary preset: benign|standard|crashstorm|maxdelay|staggered")
		seed  = fs.Int64("seed", 1, "random seed")
		eps   = fs.Float64("epsilon", 0, "sears fan-out exponent (0 = default 0.5)")
		runs  = fs.Int("runs", 1, "number of seeds to run (seed, seed+1, ...)")
		verbt = fs.Bool("rumors", false, "print per-process rumor counts")
		tline = fs.Bool("timeline", false, "render an ASCII space-time diagram (small n)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; i < *runs; i++ {
		cfg := repro.GossipConfig{
			Protocol:  *proto,
			N:         *n,
			F:         *f,
			D:         *d,
			Delta:     *delta,
			Adversary: *adv,
			Seed:      *seed + int64(i),
		}
		cfg.Tuning.Epsilon = *eps
		cfg.Timeline = *tline
		res, err := repro.RunGossip(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "proto=%s n=%d f=%d d=%d δ=%d adversary=%s seed=%d\n",
			*proto, *n, *f, *d, *delta, *adv, *seed+int64(i))
		fmt.Fprintf(out, "  completed=%v time=%d steps messages=%d bytes=%d crashes=%d\n",
			res.Completed, res.TimeSteps, res.Messages, res.Bytes, res.Crashes)
		if *verbt {
			for p, rs := range res.Rumors {
				fmt.Fprintf(out, "  process %3d: %d rumors\n", p, len(rs))
			}
		}
		if *tline {
			fmt.Fprint(out, res.Timeline)
		}
	}
	return nil
}
