// Command gossipsim runs a single gossip simulation and prints the paper's
// complexity measures.
//
// Example:
//
//	gossipsim -proto ears -n 256 -f 64 -d 4 -delta 2 -adversary standard -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		proto   = fs.String("proto", repro.ProtoEARS, "protocol: trivial|naive|ears|sears|tears|push|pull|push-pull|average|sync-epidemic|sync-deterministic")
		n       = fs.Int("n", 128, "number of processes")
		f       = fs.Int("f", 32, "crash budget")
		d       = fs.Int("d", 2, "max message delay")
		delta   = fs.Int("delta", 2, "max scheduling gap")
		adv     = fs.String("adversary", repro.AdversaryStandard, "adversary preset: benign|standard|crashstorm|maxdelay|staggered")
		seed    = fs.Int64("seed", 1, "random seed")
		eps     = fs.Float64("epsilon", 0, "sears fan-out exponent (0 = default 0.5)")
		topo    = fs.String("topology", "", "communication graph: complete|ring|torus|random-regular|erdos-renyi|watts-strogatz|barabasi-albert (empty = complete; sparse families can be disconnected by crashes — pair with -f 0 for pure-topology runs)")
		tp1     = fs.Float64("topo-param", 0, "topology parameter (degree/p/k/m/rows; 0 = family default)")
		tp2     = fs.Float64("topo-param2", 0, "second topology parameter (watts-strogatz β; 0 = default)")
		runs    = fs.Int("runs", 0, "deprecated alias for -seeds")
		seeds   = fs.Int("seeds", 0, "number of seeds to run (seed, seed+1, ...; default 1)")
		workers = fs.Int("workers", 0, "run the seeds concurrently on this many workers (0 = GOMAXPROCS; output is identical to serial)")
		shards  = fs.Int("shards", 0, "split each run into this many superstep shards (0/1 = serial kernel; output is identical for any value)")
		verbt   = fs.Bool("rumors", false, "print per-process rumor counts")
		tline   = fs.Bool("timeline", false, "render an ASCII space-time diagram (small n)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	count := *seeds
	if count <= 0 {
		count = *runs
	}
	if count <= 0 {
		count = 1
	}
	specs := make([]repro.GossipSpec, count)
	for i := range specs {
		specs[i] = repro.GossipSpec{
			Protocol:       *proto,
			N:              *n,
			F:              *f,
			D:              *d,
			Delta:          *delta,
			Adversary:      *adv,
			Seed:           *seed + int64(i),
			Topology:       *topo,
			TopologyParam:  *tp1,
			TopologyParam2: *tp2,
		}
		specs[i].Tuning.Epsilon = *eps
		specs[i].Timeline = *tline
	}
	topoTag := ""
	if *topo != "" {
		topoTag = " topology=" + *topo
	}
	// The seeds run in chunks a few times the pool width: memory stays
	// bounded (a GossipResult holds per-process rumor sets), output
	// streams in seed order, and an error stops the sweep within a chunk
	// instead of after all remaining seeds.
	for start := 0; start < count; start += chunkSize(*workers) {
		end := min(start+chunkSize(*workers), count)
		batch, errs := repro.RunMany(context.Background(), specs[start:end],
			repro.WithWorkers(*workers), repro.WithShards(*shards))
		results := make([]*repro.GossipResult, len(batch))
		for j, r := range batch {
			if r != nil {
				results[j] = r.Gossip
			}
		}
		for j, res := range results {
			i := start + j
			// Header first, so diagnostics of a failed run attach to it.
			fmt.Fprintf(out, "proto=%s n=%d f=%d d=%d δ=%d adversary=%s%s seed=%d\n",
				*proto, *n, *f, *d, *delta, *adv, topoTag, *seed+int64(i))
			if errs[j] != nil {
				// A failed run still carries diagnostics (e.g. off-edge drops
				// explaining why a topology-unaware protocol went nowhere).
				if res != nil && res.OffEdgeDrops > 0 {
					fmt.Fprintf(out, "  off-edge drops=%d\n", res.OffEdgeDrops)
				}
				return errs[j]
			}
			fmt.Fprintf(out, "  completed=%v time=%d steps messages=%d bytes=%d crashes=%d\n",
				res.Completed, res.TimeSteps, res.Messages, res.Bytes, res.Crashes)
			if res.OffEdgeDrops > 0 {
				fmt.Fprintf(out, "  off-edge drops=%d\n", res.OffEdgeDrops)
			}
			if *verbt {
				for p, rs := range res.Rumors {
					fmt.Fprintf(out, "  process %3d: %d rumors\n", p, len(rs))
				}
			}
			if *tline {
				fmt.Fprint(out, res.Timeline)
			}
		}
	}
	return nil
}

// chunkSize bounds how many seeds are in flight (and buffered) at once:
// a few batches per worker keeps the pool busy without holding every
// result in memory.
func chunkSize(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return max(4*workers, 16)
}
