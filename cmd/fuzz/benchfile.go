package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/scenario"
)

// fuzzBenchSchema identifies the BENCH_fuzz.json layout: the nightly fuzz
// job's telemetry artifact (throughput, violation counts, per-oracle
// envelope-tightness percentiles). Unlike the stdout summary it carries
// volatile fields (timestamps, wall clock, runs/sec), so it never
// participates in the byte-reproducibility contract — CI uploads it as an
// artifact and validates it with -check. v2 added the sharded-twin
// counter; v3 the coverage-guided corpus block.
const fuzzBenchSchema = "repro.bench.fuzz/v3"

// benchFuzzFile is the artifact layout.
type benchFuzzFile struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"` // RFC 3339 UTC
	GoVersion string `json:"go_version"`
	Mode      string `json:"mode"` // "runs" or "duration"

	// Session identity and deterministic aggregates (mirroring Summary).
	MasterSeed         int64          `json:"master_seed"`
	FirstIndex         int64          `json:"first_index"`
	Runs               int            `json:"runs"`
	Completed          int            `json:"completed"`
	Unpromised         int            `json:"unpromised"`
	EquivalenceChecked int            `json:"equivalence_checked"`
	ShardChecked       int            `json:"shard_checked"`
	Skipped            int            `json:"skipped"`
	Crashes            int64          `json:"crashes"`
	Messages           int64          `json:"messages"`
	ByProtocol         map[string]int `json:"by_protocol"`

	// Violations counts scenarios that violated at least one oracle;
	// ByOracle counts individual violations per oracle name.
	Violations int            `json:"violations"`
	ByOracle   map[string]int `json:"by_oracle,omitempty"`

	// Throughput telemetry (machine-dependent).
	WallNs     int64   `json:"wall_ns"`
	RunsPerSec float64 `json:"runs_per_sec"`

	// Envelopes carries per-oracle envelope-tightness percentiles: how
	// close runs sat to the paper-derived complexity bounds (1.0 = at the
	// bound). Tracked nightly so tightness drift is visible long before an
	// envelope oracle actually fires.
	Envelopes map[string]*scenario.EnvelopeStats `json:"envelopes,omitempty"`

	// Corpus carries the coverage-guided campaign's steering telemetry
	// (present when the session ran with -corpus): corpus turnover, the
	// hit/novelty rates, and the per-oracle maximum tightness ever seen.
	Corpus *benchCorpus `json:"corpus,omitempty"`
}

// benchCorpus is the artifact's corpus block: scenario.CorpusStats plus
// the derived steering rates.
type benchCorpus struct {
	scenario.CorpusStats
	// HitRate is admissions per mutated run — how often steering paid off;
	// NoveltyRate is novel coverage tuples per session run.
	HitRate     float64 `json:"hit_rate"`
	NoveltyRate float64 `json:"novelty_rate"`
}

// buildBenchFuzz assembles the artifact from a finished session.
func buildBenchFuzz(sum *scenario.Summary, mode string, wall time.Duration) *benchFuzzFile {
	f := &benchFuzzFile{
		Schema:             fuzzBenchSchema,
		Generated:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		Mode:               mode,
		MasterSeed:         sum.MasterSeed,
		FirstIndex:         sum.FirstIndex,
		Runs:               sum.Runs,
		Completed:          sum.Completed,
		Unpromised:         sum.Unpromised,
		EquivalenceChecked: sum.EquivalenceChecked,
		ShardChecked:       sum.ShardChecked,
		Skipped:            sum.Skipped,
		Crashes:            sum.Crashes,
		Messages:           sum.Messages,
		ByProtocol:         sum.ByProtocol,
		Violations:         len(sum.Reports),
		WallNs:             wall.Nanoseconds(),
		Envelopes:          sum.Envelopes,
	}
	if wall > 0 {
		f.RunsPerSec = float64(sum.Runs) / wall.Seconds()
	}
	for i := range sum.Reports {
		for _, v := range sum.Reports[i].Violations {
			if f.ByOracle == nil {
				f.ByOracle = map[string]int{}
			}
			f.ByOracle[v.Oracle]++
		}
	}
	if sum.Corpus != nil {
		c := &benchCorpus{CorpusStats: *sum.Corpus}
		if c.MutatedRuns > 0 {
			c.HitRate = float64(c.Admitted) / float64(c.MutatedRuns)
		}
		if session := c.FreshRuns + c.MutatedRuns; session > 0 {
			c.NoveltyRate = float64(c.NovelFeatures) / float64(session)
		}
		f.Corpus = c
	}
	return f
}

// writeBenchFuzz validates and writes the artifact.
func writeBenchFuzz(path string, f *benchFuzzFile) error {
	if err := validateBenchFuzz(f); err != nil {
		return fmt.Errorf("generated artifact is invalid: %w", err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// checkBenchFuzz parses and validates an artifact on disk (the -check
// mode CI runs against the nightly upload).
func checkBenchFuzz(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFuzzFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := validateBenchFuzz(&f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// validateBenchFuzz enforces the schema invariants CI relies on.
func validateBenchFuzz(f *benchFuzzFile) error {
	if f.Schema != fuzzBenchSchema {
		return fmt.Errorf("schema %q, want %q", f.Schema, fuzzBenchSchema)
	}
	if _, err := time.Parse(time.RFC3339, f.Generated); err != nil {
		return fmt.Errorf("generated timestamp: %w", err)
	}
	if f.Mode != "runs" && f.Mode != "duration" {
		return fmt.Errorf("mode %q, want runs|duration", f.Mode)
	}
	if f.Runs < 0 || f.Completed < 0 || f.Unpromised < 0 || f.EquivalenceChecked < 0 ||
		f.ShardChecked < 0 || f.Skipped < 0 || f.Crashes < 0 || f.Messages < 0 || f.Violations < 0 {
		return fmt.Errorf("negative counter")
	}
	if f.Completed > f.Runs || f.Unpromised > f.Runs || f.EquivalenceChecked > f.Runs ||
		f.ShardChecked > f.Runs || f.Violations > f.Runs {
		return fmt.Errorf("counter exceeds runs=%d", f.Runs)
	}
	var byProto int
	for name, c := range f.ByProtocol {
		if name == "" || c <= 0 {
			return fmt.Errorf("by_protocol[%q] = %d", name, c)
		}
		byProto += c
	}
	if byProto != f.Runs {
		return fmt.Errorf("by_protocol totals %d, runs = %d", byProto, f.Runs)
	}
	if f.Runs > 0 && f.WallNs <= 0 {
		return fmt.Errorf("wall_ns = %d for a non-empty session", f.WallNs)
	}
	if f.RunsPerSec < 0 {
		return fmt.Errorf("runs_per_sec = %f", f.RunsPerSec)
	}
	if c := f.Corpus; c != nil {
		switch {
		case c.Size < 0 || c.Seeded < 0 || c.Replayed < 0 || c.FreshRuns < 0 ||
			c.MutatedRuns < 0 || c.NovelFeatures < 0 || c.NearMisses < 0 ||
			c.Admitted < 0 || c.Evicted < 0:
			return fmt.Errorf("corpus: negative counter")
		case c.FreshRuns+c.MutatedRuns+c.Replayed > f.Runs:
			return fmt.Errorf("corpus: fresh %d + mutated %d + replayed %d exceed runs %d",
				c.FreshRuns, c.MutatedRuns, c.Replayed, f.Runs)
		case c.HitRate < 0 || c.NoveltyRate < 0 || c.NoveltyRate > 1:
			return fmt.Errorf("corpus: rate out of range (hit %g, novelty %g)", c.HitRate, c.NoveltyRate)
		}
		for oracle, ratio := range c.MaxTightness {
			if ratio < 0 {
				return fmt.Errorf("corpus: max_tightness[%q] = %g", oracle, ratio)
			}
		}
	}
	for oracle, e := range f.Envelopes {
		if e == nil {
			return fmt.Errorf("envelopes[%q] is null", oracle)
		}
		switch {
		case e.Count < 0 || int(e.Count) > f.Runs:
			return fmt.Errorf("envelopes[%q]: count %d out of range", oracle, e.Count)
		case e.Mean < 0 || e.P50 < 0 || e.P90 < 0 || e.P99 < 0 || e.Max < 0:
			return fmt.Errorf("envelopes[%q]: negative statistic", oracle)
		case e.P50 > e.P90 || e.P90 > e.P99:
			return fmt.Errorf("envelopes[%q]: percentiles not monotone (p50=%g p90=%g p99=%g)",
				oracle, e.P50, e.P90, e.P99)
		case e.Count > 0 && e.Mean > e.Max:
			return fmt.Errorf("envelopes[%q]: mean %g exceeds max %g", oracle, e.Mean, e.Max)
		}
	}
	return nil
}
