package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestFuzzRunsReproducible: the acceptance contract — `fuzz -runs 200
// -seed 1` emits byte-identical output across invocations and worker
// counts, and a clean stream exits 0.
func TestFuzzRunsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		{"-runs", "200", "-seed", "1"},
		{"-runs", "200", "-seed", "1"},
		{"-runs", "200", "-seed", "1", "-workers", "1"},
	} {
		var buf bytes.Buffer
		if code := run(args, &buf); code != 0 {
			t.Fatalf("%v: exit %d\n%s", args, code, buf.String())
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatal("two identical sessions emitted different bytes")
	}
	if outputs[0] != outputs[2] {
		t.Fatal("serial output differs from parallel output")
	}
	var sum scenario.Summary
	if err := json.Unmarshal([]byte(outputs[0]), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Schema != scenario.SummarySchema || sum.Runs != 200 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestFuzzUsageErrors: missing/conflicting mode flags exit 2.
func TestFuzzUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := run(nil, &buf); code != 2 {
		t.Fatalf("no mode: exit %d", code)
	}
	if code := run([]string{"-runs", "5", "-duration", "1s"}, &buf); code != 2 {
		t.Fatalf("both modes: exit %d", code)
	}
	if code := run([]string{"-bogus-flag"}, &buf); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

// TestFuzzDurationMode: a tiny time box still runs at least one batch and
// exits cleanly.
func TestFuzzDurationMode(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	var buf bytes.Buffer
	if code := run([]string{"-duration", "1ms", "-seed", "1"}, &buf); code != 0 {
		t.Fatalf("duration mode: exit %d\n%s", code, buf.String())
	}
	var sum scenario.Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Runs < 200 {
		t.Fatalf("time-boxed session ran %d scenarios, want at least one batch", sum.Runs)
	}
}

// TestFuzzReproMode: a report written by hand (from a synthetic violation
// the harness genuinely detects — tears under-delivery on a ring, outside
// the generator's domain on purpose) replays through -repro.
func TestFuzzReproMode(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	spec := scenario.Spec{
		Protocol: "tears", N: 24, F: 0, D: 1, Delta: 1, Seed: 5,
		Topology: "ring",
		Schedule: scenario.ScheduleSpec{Kind: scenario.SchedEvery},
		Delay:    scenario.DelaySpec{Kind: scenario.DelayFixed, Value: 1},
		MaxSteps: 20000, Majority: true, ExpectComplete: true,
	}
	rep := scenario.Report{
		Schema: scenario.ReportSchema, MasterSeed: 0, Index: 0,
		Label:      spec.Label(),
		Violations: []scenario.OracleViolation{{Oracle: "completion", Detail: "synthetic"}},
		Spec:       spec, Minimized: spec,
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), rep.Filename())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"-repro", path}, &buf); code != 0 {
		t.Fatalf("repro did not reproduce: exit %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "reproduced") {
		t.Fatalf("no verdict in output:\n%s", buf.String())
	}
	// A corrupt report is a usage error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if code := run([]string{"-repro", bad}, &buf); code != 2 {
		t.Fatalf("corrupt report: exit %d", code)
	}
}

// TestFuzzReportArtifacts: a clean session leaves the -out directory
// empty (report writing on violations is covered by the scenario
// package's mutation tests, which own the fault-injection hook).
func TestFuzzReportArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "reports")
	var buf bytes.Buffer
	if code := run([]string{"-runs", "50", "-seed", "1", "-out", dir}, &buf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		entries, _ := os.ReadDir(dir)
		if len(entries) != 0 {
			t.Fatalf("clean session wrote %d reports", len(entries))
		}
	}
}
