package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestFuzzRunsReproducible: the acceptance contract — `fuzz -runs 200
// -seed 1` emits byte-identical output across invocations and worker
// counts, and a clean stream exits 0.
func TestFuzzRunsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		{"-runs", "200", "-seed", "1"},
		{"-runs", "200", "-seed", "1"},
		{"-runs", "200", "-seed", "1", "-workers", "1"},
	} {
		var buf bytes.Buffer
		if code := run(args, &buf); code != 0 {
			t.Fatalf("%v: exit %d\n%s", args, code, buf.String())
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatal("two identical sessions emitted different bytes")
	}
	if outputs[0] != outputs[2] {
		t.Fatal("serial output differs from parallel output")
	}
	var sum scenario.Summary
	if err := json.Unmarshal([]byte(outputs[0]), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Schema != scenario.SummarySchema || sum.Runs != 200 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestFuzzUsageErrors: missing/conflicting mode flags exit 2.
func TestFuzzUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := run(nil, &buf); code != 2 {
		t.Fatalf("no mode: exit %d", code)
	}
	if code := run([]string{"-runs", "5", "-duration", "1s"}, &buf); code != 2 {
		t.Fatalf("both modes: exit %d", code)
	}
	if code := run([]string{"-bogus-flag"}, &buf); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

// TestFuzzDurationMode: a tiny time box still runs at least one batch and
// exits cleanly.
func TestFuzzDurationMode(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	var buf bytes.Buffer
	if code := run([]string{"-duration", "1ms", "-seed", "1"}, &buf); code != 0 {
		t.Fatalf("duration mode: exit %d\n%s", code, buf.String())
	}
	var sum scenario.Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Runs < 200 {
		t.Fatalf("time-boxed session ran %d scenarios, want at least one batch", sum.Runs)
	}
}

// TestFuzzReproMode: a report written by hand (from a synthetic violation
// the harness genuinely detects — tears under-delivery on a ring, outside
// the generator's domain on purpose) replays through -repro.
func TestFuzzReproMode(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	spec := scenario.Spec{
		Protocol: "tears", N: 24, F: 0, D: 1, Delta: 1, Seed: 5,
		Topology: "ring",
		Schedule: scenario.ScheduleSpec{Kind: scenario.SchedEvery},
		Delay:    scenario.DelaySpec{Kind: scenario.DelayFixed, Value: 1},
		MaxSteps: 20000, Majority: true, ExpectComplete: true,
	}
	rep := scenario.Report{
		Schema: scenario.ReportSchema, MasterSeed: 0, Index: 0,
		Label:      spec.Label(),
		Violations: []scenario.OracleViolation{{Oracle: "completion", Detail: "synthetic"}},
		Spec:       spec, Minimized: spec,
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), rep.Filename())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"-repro", path}, &buf); code != 0 {
		t.Fatalf("repro did not reproduce: exit %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "reproduced") {
		t.Fatalf("no verdict in output:\n%s", buf.String())
	}
	// A corrupt report is a usage error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if code := run([]string{"-repro", bad}, &buf); code != 2 {
		t.Fatalf("corrupt report: exit %d", code)
	}
}

// TestFuzzReportArtifacts: the -out directory is created and probed up
// front — a nightly session must not discover a broken report path only
// when its first violation tries to write — and a clean session leaves it
// empty (report writing on violations is covered by the scenario package's
// mutation tests, which own the fault-injection hook).
func TestFuzzReportArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "reports")
	var buf bytes.Buffer
	if code := run([]string{"-runs", "50", "-seed", "1", "-out", dir}, &buf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("-out directory was not created up front: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean session wrote %d reports", len(entries))
	}

	// An unusable -out path fails immediately with a usage error, before
	// any scenario runs.
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-runs", "50", "-seed", "1", "-out", filepath.Join(blocker, "reports")}, &buf); code != 2 {
		t.Fatalf("unusable -out: exit %d, want 2", code)
	}
}

// seedCorpusCopy clones the committed mini-corpus into a fresh directory,
// the way the nightly workflow seeds an empty cache.
func seedCorpusCopy(t *testing.T) string {
	t.Helper()
	const src = "../../testdata/corpus-seed"
	dir := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// corpusState snapshots a corpus directory's file names and bytes.
func corpusState(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestFuzzCorpusTwoPhaseDeterminism: the campaign acceptance contract —
// running `fuzz -corpus` twice from the same seed corpus and master seed
// produces byte-identical summaries AND byte-identical final corpora, so a
// nightly finding is reproducible locally from the cached corpus artifact.
func TestFuzzCorpusTwoPhaseDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	session := func() (string, map[string]string) {
		dir := seedCorpusCopy(t)
		var buf bytes.Buffer
		if code := run([]string{
			"-runs", "150", "-seed", "3", "-corpus", dir, "-mutate-frac", "0.6", "-quiet",
		}, &buf); code != 0 {
			t.Fatalf("exit %d\n%s", code, buf.String())
		}
		return buf.String(), corpusState(t, dir)
	}
	sum1, corp1 := session()
	sum2, corp2 := session()
	if sum1 != sum2 {
		t.Error("two identical steered sessions emitted different summaries")
	}
	if len(corp1) != len(corp2) {
		t.Fatalf("final corpora differ in size: %d vs %d", len(corp1), len(corp2))
	}
	for name, data := range corp1 {
		if corp2[name] != data {
			t.Fatalf("final corpora differ at %s", name)
		}
	}

	var sum scenario.Summary
	if err := json.Unmarshal([]byte(sum1), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Corpus == nil {
		t.Fatal("steered summary carries no corpus block")
	}
	if sum.Corpus.Replayed == 0 || sum.Corpus.Seeded == 0 {
		t.Fatalf("seed corpus was not replayed: %+v", sum.Corpus)
	}
	if sum.Corpus.MutatedRuns == 0 {
		t.Fatalf("no mutated runs at -mutate-frac 0.6: %+v", sum.Corpus)
	}
	if len(corp1) < sum.Corpus.Seeded {
		t.Fatalf("final corpus (%d files) shrank below the seed (%d)", len(corp1), sum.Corpus.Seeded)
	}
}

// TestFuzzCorpusBadInputs: -mutate-frac outside [0,1] is a usage error,
// and a corrupt corpus entry is skipped with a warning — the session still
// runs and exits clean.
func TestFuzzCorpusBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-runs", "5", "-mutate-frac", "1.5"}, &buf); code != 2 {
		t.Fatalf("-mutate-frac 1.5: exit %d, want 2", code)
	}
	if code := run([]string{"-runs", "5", "-mutate-frac", "-0.1"}, &buf); code != 2 {
		t.Fatalf("-mutate-frac -0.1: exit %d, want 2", code)
	}
	if testing.Short() {
		t.Skip("fuzz session in -short mode")
	}
	dir := seedCorpusCopy(t)
	if err := os.WriteFile(filepath.Join(dir, "0000000000000000.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := run([]string{"-runs", "50", "-seed", "1", "-corpus", dir, "-quiet"}, &buf); code != 0 {
		t.Fatalf("corrupt entry aborted the campaign: exit %d\n%s", code, buf.String())
	}
	// Save rewrites the directory from the surviving entries: the corrupt
	// file is gone, not resurrected into the cache.
	if _, err := os.Stat(filepath.Join(dir, "0000000000000000.json")); !os.IsNotExist(err) {
		t.Error("corrupt corpus entry survived the session's save")
	}
}
