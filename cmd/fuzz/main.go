// Command fuzz is the deterministic scenario-fuzzing harness: it draws
// random (protocol × topology × adversary × n/f/d/δ) scenarios from a
// master seed, executes them through the sim kernel, and checks every run
// against the invariant-oracle catalog (crash budget, delay clamp,
// post-crash silence, schedule gaps, completion promises, paper-derived
// complexity envelopes, pooled ≡ unpooled and sharded ≡ serial
// equivalence). Failures are shrunk to minimized repros and written as
// replayable ScenarioReports.
//
//	fuzz -runs 200 -seed 1                  # a fixed-size session
//	fuzz -duration 10m -seed 1 -out reports # time-boxed (nightly CI)
//	fuzz -repro reports/scenario-1-42.json  # replay a failure artifact
//	fuzz -runs 500 -seed 1 -corpus corpus   # coverage-guided session
//
// With -corpus DIR the session is coverage-guided: the corpus of
// previously interesting scenarios is loaded (each entry re-executed as a
// regression pass), -mutate-frac of the budget mutates corpus entries
// toward the envelope boundaries instead of sampling fresh, runs with
// novel coverage features or top-decile envelope tightness are admitted
// back, and the evolved corpus is saved to DIR again — the persistence
// seam the nightly campaign rides via actions/cache.
//
// Sessions are reproducible: with -runs, output and any reports are
// byte-identical across invocations and worker counts (serial ≡ parallel),
// and a steered session — including the corpus it leaves behind — is a
// pure function of (seed, input corpus). With -duration, the scenario
// stream is the same — only how far the session gets varies with machine
// speed.
//
// Exit status: 0 when every scenario passed (or, with -repro, when the
// report's violation reproduced), 1 when violations were found (or the
// repro did not reproduce), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// Progress/watchdog cadence. Progress lines are throttled so a 15-minute
// nightly session logs a couple hundred lines, not one per scenario; the
// stall threshold is far beyond any legitimate single scenario (the
// heaviest generated spec runs in milliseconds).
const (
	progressEvery  = 5 * time.Second
	watchdogScan   = 10 * time.Second
	stallThreshold = 2 * time.Minute
)

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	var (
		runs     = fs.Int("runs", 0, "number of scenarios to run (exclusive with -duration)")
		duration = fs.Duration("duration", 0, "time box: run batches of scenarios until the deadline")
		seed     = fs.Int64("seed", 1, "master seed of the scenario stream")
		first    = fs.Int64("first", 0, "first scenario index (resume/partition a stream)")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		out      = fs.String("out", "", "directory for failure reports (created on demand)")
		shrink   = fs.Int("shrink", 0, "shrink budget per failure (0 = default)")
		repro    = fs.String("repro", "", "replay a ScenarioReport file instead of fuzzing")
		verbose  = fs.Bool("v", false, "log every failing scenario to stderr as it is found")
		quiet    = fs.Bool("quiet", false, "suppress periodic progress and watchdog lines on stderr")
		benchOut = fs.String("bench", "", "write a BENCH_fuzz.json telemetry artifact after the session")
		check    = fs.String("check", "", "validate a BENCH_fuzz.json artifact instead of fuzzing")
		corpus   = fs.String("corpus", "", "corpus directory for coverage-guided steering (loaded and replayed before, saved after the session)")
		mutFrac  = fs.Float64("mutate-frac", 0.5, "fraction of the budget spent mutating corpus entries (with -corpus)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mutFrac < 0 || *mutFrac > 1 {
		fmt.Fprintf(os.Stderr, "fuzz: -mutate-frac %v outside [0, 1]\n", *mutFrac)
		return 2
	}
	if *check != "" {
		if err := checkBenchFuzz(*check); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "fuzz: %s is a valid %s artifact\n", *check, fuzzBenchSchema)
		return 0
	}
	if *repro != "" {
		return replay(*repro, stdout)
	}
	if (*runs > 0) == (*duration > 0) {
		fmt.Fprintln(os.Stderr, "fuzz: need exactly one of -runs or -duration")
		return 2
	}

	// Create and probe the report directory up front: a long nightly
	// session must not discover a permissions problem only when its first
	// violation tries to write, losing the repro.
	if *out != "" {
		if err := ensureReportDir(*out); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: -out %s: %v\n", *out, err)
			return 2
		}
	}

	// Coverage-guided mode: load the corpus, skipping (with a warning)
	// any entry that is corrupt, mis-addressed, or invalid — one bad file
	// must never cost a campaign.
	var corp *scenario.Corpus
	if *corpus != "" {
		var err error
		corp, err = scenario.LoadCorpus(*corpus, 0, func(path string, err error) {
			fmt.Fprintf(os.Stderr, "fuzz: WARNING skipping corpus entry %s: %v\n", path, err)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
			return 2
		}
	}

	// Session telemetry: throttled progress lines and a stuck-worker
	// watchdog, both on stderr (stdout carries only the deterministic
	// summary). -quiet disables both so CI's byte-reproducibility cmp can
	// capture a silent stderr too.
	start := time.Now()
	var prog *progressPrinter
	var wd *telemetry.Watchdog
	var indexBase atomic.Int64
	indexBase.Store(*first)
	if !*quiet {
		prog = &progressPrinter{w: os.Stderr, start: start, last: start}
		wd = telemetry.NewWatchdog()
		wd.Start(watchdogScan, stallThreshold, func(s telemetry.WorkerStatus) {
			fmt.Fprintf(os.Stderr, "fuzz: WARNING worker %d stuck on scenario %d for %s\n",
				s.Worker, indexBase.Load()+int64(s.Cell), s.Busy.Round(time.Second))
		})
		defer wd.Stop()
	}
	mkOpts := func(n int, firstIndex int64) scenario.Options {
		o := scenario.Options{
			Runs:         n,
			MasterSeed:   *seed,
			FirstIndex:   firstIndex,
			Workers:      *workers,
			ShrinkBudget: *shrink,
			Corpus:       corp,
			MutateFrac:   *mutFrac,
		}
		if prog != nil {
			o.Progress = prog.report
		}
		if wd != nil {
			o.Monitor = wd
		}
		return o
	}

	// Both modes run fixed-size batches through the same deterministic
	// stream (merged batches encode identically to one big session). The
	// batch size only affects how promptly a -duration deadline is honored
	// and how often a steered session folds new corpus entries back into
	// the mutation pool — never which fresh scenarios exist.
	const batch = 200
	total := &scenario.Summary{
		Schema:     scenario.SummarySchema,
		MasterSeed: *seed,
		FirstIndex: *first,
		ByProtocol: map[string]int{},
	}

	// Regression pass: every corpus entry replays through the full oracle
	// catalog before the steered session, so previously interesting
	// scenarios are re-checked on every invocation.
	if corp != nil && corp.Len() > 0 {
		rep, err := scenario.ReplayCorpus(corp, mkOpts(0, *first))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
			return 2
		}
		total.Merge(rep)
		if prog != nil {
			prog.advance(rep.Runs, int64(len(rep.Reports)))
		}
	}

	mode := "duration"
	deadline := time.Now().Add(*duration)
	next, remaining := *first, *runs
	if *runs > 0 {
		mode = "runs"
	}
	for {
		n := batch
		if mode == "runs" {
			if remaining <= 0 {
				break
			}
			if remaining < n {
				n = remaining
			}
			remaining -= n
		} else if !time.Now().Before(deadline) {
			break
		}
		indexBase.Store(next)
		sum, err := scenario.Fuzz(mkOpts(n, next))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
			return 2
		}
		total.Merge(sum)
		if prog != nil {
			prog.advance(sum.Runs, int64(len(sum.Reports)))
		}
		next += int64(n)
	}

	// Persist the evolved corpus for the next session of the campaign.
	if corp != nil {
		if err := corp.Save(*corpus); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: saving corpus: %v\n", err)
			return 2
		}
	}
	return finish(total, *out, *verbose, stdout, *benchOut, mode, time.Since(start))
}

// ensureReportDir creates the failure-report directory and verifies it is
// writable by round-tripping a probe file.
func ensureReportDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("not writable: %w", err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// progressPrinter emits throttled session progress to stderr. Each
// scenario.Fuzz call reports (done, total) within its own batch, so the
// printer carries base offsets advanced between batches; callbacks within
// a batch are serialized by the runner, and batches are sequential, so no
// locking is needed.
type progressPrinter struct {
	w         io.Writer
	start     time.Time
	last      time.Time
	baseRuns  int
	baseViols int64
}

// report is the scenario.Options.Progress hook.
func (p *progressPrinter) report(done, _ int, violations int64) {
	now := time.Now()
	if now.Sub(p.last) < progressEvery {
		return
	}
	p.last = now
	runs := p.baseRuns + done
	elapsed := now.Sub(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(runs) / elapsed.Seconds()
	}
	fmt.Fprintf(p.w, "fuzz: progress runs=%d (%.0f/s) violations=%d elapsed=%s\n",
		runs, rate, p.baseViols+violations, elapsed.Round(time.Second))
}

// advance shifts the base offsets after a finished batch.
func (p *progressPrinter) advance(runs int, violations int64) {
	p.baseRuns += runs
	p.baseViols += violations
}

// finish prints the deterministic session summary, writes reports and the
// optional telemetry artifact, and picks the exit status.
func finish(sum *scenario.Summary, out string, verbose bool, stdout io.Writer, benchOut, mode string, wall time.Duration) int {
	if benchOut != "" {
		if err := writeBenchFuzz(benchOut, buildBenchFuzz(sum, mode, wall)); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
			return 2
		}
	}
	data, err := encodeSummary(sum)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		return 2
	}
	stdout.Write(data)
	if len(sum.Reports) == 0 {
		return 0
	}
	for i := range sum.Reports {
		r := &sum.Reports[i]
		if verbose {
			fmt.Fprintf(os.Stderr, "fuzz: FAIL %s: %s: %s (shrunk in %d runs: %s)\n",
				r.Label, r.Violations[0].Oracle, r.Violations[0].Detail, r.ShrinkRuns, r.Minimized.Label())
		}
		if out != "" {
			if err := writeReport(out, r); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
				return 2
			}
		}
	}
	fmt.Fprintf(os.Stderr, "fuzz: %d of %d scenarios violated an oracle\n", len(sum.Reports), sum.Runs)
	return 1
}

// encodeSummary renders the summary without volatile fields: reports are
// written to files, stdout carries only deterministic content.
func encodeSummary(sum *scenario.Summary) ([]byte, error) {
	trimmed := *sum
	trimmed.Reports = nil
	data, err := trimmed.Encode()
	if err != nil {
		return nil, err
	}
	return data, nil
}

func writeReport(dir string, r *scenario.Report) error {
	// run() created and probed dir before the session started.
	data, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, r.Filename()), data, 0o644)
}

// replay loads a report and re-executes its specs; exit 0 means the
// violation reproduced.
func replay(path string, stdout io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		return 2
	}
	rep, err := scenario.DecodeReport(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		return 2
	}
	minimized, original, err := scenario.Replay(rep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		return 2
	}
	primary := rep.Violations[0].Oracle
	fmt.Fprintf(stdout, "report: %s\nprimary oracle: %s\noriginal: %s\nminimized: %s\n",
		rep.Label, primary, verdict(original), verdict(minimized))
	for _, v := range minimized.Violations {
		fmt.Fprintf(stdout, "minimized violation: %s: %s\n", v.Oracle, v.Detail)
	}
	if minimized.Reproduced {
		return 0
	}
	fmt.Fprintln(stdout, "minimized spec did NOT reproduce the primary violation")
	return 1
}

func verdict(r scenario.ReplayResult) string {
	if r.Reproduced {
		return fmt.Sprintf("reproduced (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("not reproduced (%d violations)", len(r.Violations))
}
