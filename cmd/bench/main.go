// Command bench runs the pinned gossip benchmark suite and emits the
// machine-readable artifact behind the repository's performance
// trajectory: a schema-versioned BENCH_gossip.json with steps/run,
// msgs/run, wall-clock and allocation figures for every cell. CI
// regenerates the artifact on every push (quick scale) and nightly (full
// and large scales), and the perf-regression gate compares fresh results
// against the committed baseline so a complexity or performance
// regression fails loudly instead of drifting in.
//
//	bench -quick -out BENCH_gossip.json     # the CI pinned suite
//	bench -out BENCH_gossip.json            # full scale (nightly)
//	bench -large -out BENCH_large.json      # large-n sweep, lean trackers (nightly)
//	bench -xlarge -out BENCH_xlarge.json    # sharded lean sweep beyond the large tier (nightly)
//	bench -million -out BENCH_million.json  # push-pull at n = 10⁶, lean and sharded (nightly)
//	bench -check BENCH_gossip.json          # validate an existing artifact
//	bench -quick -compare BENCH_gossip.json # run the suite, then gate against a baseline
//	bench -compare OLD.json NEW.json        # gate one artifact against another
//	bench -quick -shards 4 -compare BENCH_gossip.json  # sharded kernel vs the serial baseline
//	bench -xlarge -compare BENCH_large.json -overlap   # gate the cells shared with the large tier
//
// Comparison semantics: the paper's complexity measures (steps, messages,
// bytes, failure counts) are deterministic functions of the pinned seeds,
// so any difference is a behavioral regression and fails the gate
// exactly. Harness-cost measures (wall clock, allocations) are machine-
// and load-dependent, so they only warn — wall-clock beyond +20% and
// allocations beyond +50% of the baseline.
//
// The suite is pinned on purpose: clique, ring and Erdős–Rényi topologies
// at several n, under the standard oblivious adversary, with seeds derived
// per cell via the runner's seed policy. Changing what an existing cell
// means is a schema event — bump the schema version; adding cells or
// scales is additive and keeps the version.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
)

// schemaVersion identifies the artifact layout and the meaning of the
// pinned cells. Bump it when either changes; CI validates it exactly.
const schemaVersion = "repro.bench.gossip/v1"

// Comparison tolerances for the machine-dependent measures. Wall-clock
// additionally requires an absolute regression floor: millisecond-scale
// cells jitter far beyond 20% from scheduler noise alone, and a warning
// that fires on noise trains people to ignore it.
const (
	wallWarnRatio   = 1.20
	wallWarnFloorNs = 250 * 1e6 // 250ms absolute regression
	allocsWarnRatio = 1.50
)

// benchFile is the artifact layout.
type benchFile struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"` // RFC 3339 UTC
	GoVersion string `json:"go_version"`
	Scale     string `json:"scale"` // "quick", "full", "large", "xlarge" or "million"
	Workers   int    `json:"workers"`
	Seeds     int    `json:"seeds"`
	// Shards is the -shards flag the suite ran with (0 = per-cell
	// defaults). Like workers it is harness configuration: the complexity
	// measures are identical for every value.
	Shards  int          `json:"shards,omitempty"`
	Results []benchEntry `json:"results"`
}

// benchEntry is one pinned (protocol, topology, n) cell.
type benchEntry struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Topology string `json:"topology"`
	N        int    `json:"n"`
	F        int    `json:"f"`
	Seeds    int    `json:"seeds"`
	Failures int    `json:"failures"`
	// Lean marks cells run with O(1) tracker bookkeeping (the large-n
	// sweeps); completion-time milestones stay exact, per-rumor times are
	// upper bounds. Absent/false for the quick and full suites.
	Lean bool `json:"lean,omitempty"`
	// Shards is the superstep shard count the cell ran with (0 = serial
	// kernel). Execution detail only: sharded cells are byte-identical to
	// serial ones on every complexity measure, which the overlap compare
	// against the serial large tier gates nightly.
	Shards int `json:"shards,omitempty"`
	// The paper's two complexity measures, averaged over seeds.
	StepsPerRun float64 `json:"steps_per_run"`
	StepsStd    float64 `json:"steps_std"`
	MsgsPerRun  float64 `json:"msgs_per_run"`
	MsgsStd     float64 `json:"msgs_std"`
	BytesPerRun float64 `json:"bytes_per_run"`
	// BytesKnown distinguishes a measured bytes_per_run from payloads that
	// simply do not report sizes (sim.Result.BytesKnown over the cell).
	BytesKnown bool `json:"bytes_known,omitempty"`
	// Harness cost of the cell: wall clock across the whole seed grid and
	// allocator pressure per run.
	WallNs           int64   `json:"wall_ns"`
	AllocsPerRun     float64 `json:"allocs_per_run"`
	AllocBytesPerRun float64 `json:"alloc_bytes_per_run"`
}

// cellSpec pins one suite cell family. The f policy mirrors the Table 1
// design points: f = n/4 on the clique (tears at its design point just
// under n/2), f = 0 on sparse families so the axis stays purely
// topological, f = 0 on the large sweep so memory stays the protocol's.
type cellSpec struct {
	proto    string
	family   string // "" = complete graph
	fOf      func(n int) int
	ns       []int
	d, delta int  // message delay and scheduling bounds (0 = default 2)
	lean     bool // large-n cells use O(1) tracker bookkeeping
	shards   int  // superstep shards (0 = serial kernel)
	// pushC overrides core.Params.PushPullC for the cell (0 = default).
	// The million tier lowers it so the deterministic n·B push budget —
	// and with it the nightly wall clock — stays bounded at n = 10⁶.
	pushC float64
}

// suite returns the pinned cells for a scale ("quick", "full", "large",
// "xlarge" or "million").
func suite(scale string) []cellSpec {
	quarter := func(n int) int { return n / 4 }
	minority := func(n int) int { return (n - 1) / 2 }
	zero := func(int) int { return 0 }
	if scale == "million" {
		// The first million-node runs. The epidemic protocols' n-bit rumor
		// sets cap the xlarge tier well below 10⁶ — but push-pull carries
		// O(1) state per process (an informed bit and a push budget), so
		// with lean trackers and the sharded kernel the memory wall falls
		// away and the axis is pure event throughput. PushPullC drops from
		// its default 6 to 3, halving the deterministic n·B push budget
		// (still ample at n = 10⁶: B = 60) to keep the nightly wall clock
		// bounded; the budget is recorded per cell via the exact message
		// counts, so any drift still fails the compare gate.
		auto := runtime.NumCPU()
		if auto < 2 {
			auto = 2
		}
		return []cellSpec{
			{proto: "push-pull", family: "", fOf: zero, lean: true, shards: auto, pushC: 3, ns: []int{1000000}},
			{proto: "push-pull", family: topology.FamilyErdosRenyi, fOf: zero, lean: true, shards: auto, pushC: 3, ns: []int{1000000}},
		}
	}
	if scale == "xlarge" {
		// The xlarge sweep drives the sharded superstep kernel past the
		// large tier's scales, lean and sharded one-per-CPU. The first n of
		// every family duplicates a large-tier cell exactly (same name,
		// parameters and derived seeds), so `-compare BENCH_large.json
		// -overlap` gates sharded ≡ serial byte-identically at the artifact
		// level. Scales are sized to measured memory and nightly wall-clock
		// budgets, not ambition: tears' per-process audience state and the
		// epidemic protocols' n-bit rumor sets grow superlinearly, which is
		// what caps this sweep well below n = 10⁶ (see README "Sharded
		// execution" for the arithmetic). The million tier above crosses
		// that wall with the O(1)-state push-pull family instead.
		auto := runtime.NumCPU()
		if auto < 2 {
			auto = 2 // always drive the sharded engine, even on one CPU
		}
		return []cellSpec{
			{proto: "tears", family: "", fOf: zero, lean: true, shards: auto, ns: []int{20000, 35000}},
			{proto: "sync-epidemic", family: "", fOf: zero, lean: true, shards: auto, d: 1, delta: 1, ns: []int{50000, 100000}},
			{proto: "naive", family: topology.FamilyErdosRenyi, fOf: zero, lean: true, shards: auto, ns: []int{50000, 100000}},
		}
	}
	if scale == "large" {
		// The large-n sweep exercises the allocation-free kernel at 10×–200×
		// the classic suite's n. Protocols are chosen to be feasible at this
		// scale: tears (majority gossip, Θ(n^1.75) messages, O(1) tracker),
		// the synchronous epidemic baseline, and the naive epidemic on
		// sparse Erdős–Rényi graphs. ears is excluded by design — its
		// informed list is Θ(n²) bits per process, which no pooling absorbs.
		return []cellSpec{
			{proto: "tears", family: "", fOf: zero, lean: true, ns: []int{8192, 20000}},
			{proto: "sync-epidemic", family: "", fOf: zero, lean: true, d: 1, delta: 1, ns: []int{20000, 50000}},
			{proto: "naive", family: topology.FamilyErdosRenyi, fOf: zero, lean: true, ns: []int{20000, 50000}},
		}
	}
	ns := []int{64, 128, 256}
	if scale == "quick" {
		ns = []int{32, 64}
	}
	return []cellSpec{
		{proto: "trivial", family: "", fOf: quarter, ns: ns},
		{proto: "ears", family: "", fOf: quarter, ns: ns},
		{proto: "sears", family: "", fOf: quarter, ns: ns},
		{proto: "tears", family: "", fOf: minority, ns: ns},
		{proto: "ears", family: topology.FamilyRing, fOf: zero, ns: ns},
		{proto: "ears", family: topology.FamilyErdosRenyi, fOf: zero, ns: ns},
		{proto: "tears", family: topology.FamilyErdosRenyi, fOf: zero, ns: ns},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "CI scale (smaller n sweep and fewer seeds)")
		large   = fs.Bool("large", false, "large-n sweep (n up to 50000, lean trackers)")
		xlarge  = fs.Bool("xlarge", false, "sharded lean sweep beyond the large tier (n up to 100000)")
		million = fs.Bool("million", false, "million-node push-pull cells, lean and sharded")
		outPath = fs.String("out", "BENCH_gossip.json", "artifact path")
		seeds   = fs.Int("seeds", 0, "seeds per cell (0 = scale default: 3 quick, 5 full, 2 large/xlarge, 1 million)")
		workers = fs.Int("workers", 0, "worker pool for each cell's seed grid (0 = GOMAXPROCS)")
		shards  = fs.Int("shards", 0, "superstep shards per run (0 = per-cell defaults; results are identical for every value)")
		check   = fs.String("check", "", "validate an existing artifact instead of running the suite")
		compare = fs.String("compare", "", "baseline artifact to gate against (with a positional NEW.json: compare files without running)")
		overlap = fs.Bool("overlap", false, "with -compare: gate only the cells present in both artifacts (cross-scale, e.g. -xlarge vs the large baseline)")
		telem   = fs.String("telemetry", "", "directory for pprof CPU/heap profiles and an instrumented sample run (metrics.om, trace.json, run.ndjson)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		if err := checkFile(*check); err != nil {
			return err
		}
		fmt.Fprintf(out, "bench: %s is a valid %s artifact\n", *check, schemaVersion)
		return nil
	}
	if *compare != "" && fs.NArg() > 0 {
		// File-vs-file mode: no suite run.
		fresh, err := loadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		return compareFiles(*compare, fresh, *overlap, out)
	}
	if fs.NArg() > 0 {
		// Positional arguments are only meaningful in file-vs-file compare
		// mode; anything else is a mistyped flag (e.g. a forgotten -check),
		// and running the suite instead could clobber the committed baseline.
		return fmt.Errorf("unexpected argument %q (did you mean -check %s or -compare BASE.json %s?)",
			fs.Arg(0), fs.Arg(0), fs.Arg(0))
	}
	if n := btoi(*quick) + btoi(*large) + btoi(*xlarge) + btoi(*million); n > 1 {
		return fmt.Errorf("-quick, -large, -xlarge and -million are mutually exclusive")
	}
	if *overlap && *compare == "" {
		return fmt.Errorf("-overlap only makes sense with -compare")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d: must be >= 0", *shards)
	}

	scale := "full"
	cellSeeds := 5
	switch {
	case *quick:
		scale, cellSeeds = "quick", 3
	case *large:
		scale, cellSeeds = "large", 2
	case *xlarge:
		scale, cellSeeds = "xlarge", 2
	case *million:
		scale, cellSeeds = "million", 1
	}
	if *seeds > 0 {
		cellSeeds = *seeds
	}

	// Telemetry capture wraps the whole suite: the CPU profile covers the
	// cells only — the instrumented sample run happens after prof.stop() so
	// it never pollutes the profile. All of it is observation-only: cells
	// and the compare gate are identical with -telemetry on or off.
	var prof *profiles
	if *telem != "" {
		var err error
		prof, err = startProfiles(*telem)
		if err != nil {
			return err
		}
	}

	file := benchFile{
		Schema:    schemaVersion,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scale:     scale,
		Workers:   runner.Workers(*workers),
		Seeds:     cellSeeds,
		Shards:    *shards,
	}
	for _, cell := range suite(scale) {
		for _, n := range cell.ns {
			family := cell.family
			label := family
			if label == "" {
				label = topology.FamilyComplete
			}
			f := cell.fOf(n)
			d, delta := cell.d, cell.delta
			if d == 0 {
				d = 2
			}
			if delta == 0 {
				delta = 2
			}
			name := fmt.Sprintf("%s/%s/n=%d", cell.proto, label, n)
			spec := experiments.GossipSpec{
				Proto: cell.proto, N: n, F: f,
				D: sim.Time(d), Delta: sim.Time(delta),
				Seeds: cellSeeds, Workers: *workers,
				Topology: family,
				// Each cell gets its own derived seed stream, so cells
				// never share randomness just because they share run
				// indices.
				SeedLabel: name,
			}
			spec.Gossip.Lean = cell.lean
			spec.Gossip.PushPullC = cell.pushC
			spec.Shards = cell.shards
			if *shards > 0 {
				spec.Shards = *shards
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			m, err := experiments.MeasureGossip(spec)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			// A cell where every run failed is a suite bug on the clique,
			// but data on sparse families; either way the artifact records
			// the failure count instead of aborting the suite.
			if err != nil && m.Runs == 0 {
				return fmt.Errorf("cell %s: %w", name, err)
			}
			entry := benchEntry{
				Name:     name,
				Protocol: cell.proto,
				Topology: label,
				N:        n, F: f,
				Seeds:            cellSeeds,
				Failures:         m.Failures,
				Lean:             cell.lean,
				Shards:           spec.Shards,
				StepsPerRun:      m.Time.Mean,
				StepsStd:         m.Time.Std,
				MsgsPerRun:       m.Messages.Mean,
				MsgsStd:          m.Messages.Std,
				BytesPerRun:      m.Bytes.Mean,
				BytesKnown:       m.BytesKnown,
				WallNs:           wall.Nanoseconds(),
				AllocsPerRun:     float64(after.Mallocs-before.Mallocs) / float64(cellSeeds),
				AllocBytesPerRun: float64(after.TotalAlloc-before.TotalAlloc) / float64(cellSeeds),
			}
			file.Results = append(file.Results, entry)
			fmt.Fprintf(out, "%-32s steps/run=%-9.1f msgs/run=%-11.1f wall=%-10s allocs/run=%.0f\n",
				name, entry.StepsPerRun, entry.MsgsPerRun, wall.Round(time.Millisecond), entry.AllocsPerRun)
		}
	}

	if err := validate(&file); err != nil {
		return fmt.Errorf("generated artifact is invalid: %w", err)
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: wrote %d cells to %s (%s, %d seeds, %d workers)\n",
		len(file.Results), *outPath, file.Scale, file.Seeds, file.Workers)
	if prof != nil {
		if err := prof.stop(); err != nil {
			return err
		}
		if err := captureSampleRun(*telem, out); err != nil {
			return err
		}
	}
	if *compare != "" {
		return compareFiles(*compare, &file, *overlap, out)
	}
	return nil
}

// btoi counts a set flag.
func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// loadFile parses and validates an artifact on disk.
func loadFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file benchFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := validate(&file); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &file, nil
}

// checkFile parses and validates an artifact on disk.
func checkFile(path string) error {
	_, err := loadFile(path)
	return err
}

// boolMetric maps a bool onto the compare gate's float metric space.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// compareFiles gates fresh results against a committed baseline: exact
// equality on the deterministic complexity measures (any drift is a
// behavioral regression and fails), tolerance-with-warning on the
// machine-dependent cost measures (wall clock, allocations).
//
// In overlap mode the two artifacts may come from different scales (the
// nightly xlarge sweep against the large baseline): only the cells present
// in both are gated — but at least one must be, and shared cells must
// agree on their per-cell seed counts or the means are incomparable.
// Baseline-only cells are noted, not failed.
func compareFiles(basePath string, fresh *benchFile, overlap bool, out io.Writer) error {
	base, err := loadFile(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if !overlap && (base.Scale != fresh.Scale || base.Seeds != fresh.Seeds) {
		return fmt.Errorf("incomparable grids: baseline is %s/%d seeds, fresh is %s/%d seeds (use -overlap for cross-scale gating)",
			base.Scale, base.Seeds, fresh.Scale, fresh.Seeds)
	}
	freshByName := make(map[string]benchEntry, len(fresh.Results))
	for _, e := range fresh.Results {
		freshByName[e.Name] = e
	}
	var failures []string
	warnings, shared := 0, 0
	for _, b := range base.Results {
		f, ok := freshByName[b.Name]
		if !ok {
			if overlap {
				fmt.Fprintf(out, "bench: note: baseline cell %s not in fresh results (outside the overlap)\n", b.Name)
				continue
			}
			failures = append(failures, fmt.Sprintf("%s: cell present in baseline but missing from fresh results", b.Name))
			continue
		}
		delete(freshByName, b.Name)
		shared++
		if b.Seeds != f.Seeds {
			failures = append(failures, fmt.Sprintf(
				"%s: seeds = %d, baseline %d (seed grids differ; means are incomparable)",
				b.Name, f.Seeds, b.Seeds))
			continue
		}
		exact := []struct {
			metric     string
			want, have float64
		}{
			{"steps/run", b.StepsPerRun, f.StepsPerRun},
			{"steps-std", b.StepsStd, f.StepsStd},
			{"msgs/run", b.MsgsPerRun, f.MsgsPerRun},
			{"msgs-std", b.MsgsStd, f.MsgsStd},
			{"bytes/run", b.BytesPerRun, f.BytesPerRun},
			{"bytes-known", boolMetric(b.BytesKnown), boolMetric(f.BytesKnown)},
			{"failures", float64(b.Failures), float64(f.Failures)},
		}
		for _, c := range exact {
			if c.want != c.have {
				failures = append(failures, fmt.Sprintf(
					"%s: %s = %v, baseline %v (complexity metrics are deterministic; this is a behavioral change)",
					b.Name, c.metric, c.have, c.want))
			}
		}
		if b.WallNs > 0 && float64(f.WallNs) > float64(b.WallNs)*wallWarnRatio &&
			float64(f.WallNs-b.WallNs) > wallWarnFloorNs {
			warnings++
			fmt.Fprintf(out, "bench: WARNING %s: wall %s vs baseline %s (> %.0f%% regression)\n",
				b.Name, time.Duration(f.WallNs).Round(time.Millisecond),
				time.Duration(b.WallNs).Round(time.Millisecond), (wallWarnRatio-1)*100)
		}
		if b.AllocsPerRun > 0 && f.AllocsPerRun > b.AllocsPerRun*allocsWarnRatio {
			warnings++
			fmt.Fprintf(out, "bench: WARNING %s: allocs/run %.0f vs baseline %.0f (> %.0f%% regression)\n",
				b.Name, f.AllocsPerRun, b.AllocsPerRun, (allocsWarnRatio-1)*100)
		}
	}
	for name := range freshByName {
		fmt.Fprintf(out, "bench: note: new cell %s has no baseline yet\n", name)
	}
	if overlap && shared == 0 {
		return fmt.Errorf("compare -overlap: no cells shared between %s (%s) and fresh results (%s); nothing was gated",
			basePath, base.Scale, fresh.Scale)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(out, "bench: FAIL", f)
		}
		return fmt.Errorf("compare: %d complexity mismatches against %s", len(failures), basePath)
	}
	fmt.Fprintf(out, "bench: compare OK against %s (%d cells exact, %d cost warnings)\n",
		basePath, shared, warnings)
	return nil
}

// validate enforces the schema invariants CI relies on.
func validate(f *benchFile) error {
	if f.Schema != schemaVersion {
		return fmt.Errorf("schema %q, want %q", f.Schema, schemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, f.Generated); err != nil {
		return fmt.Errorf("generated timestamp: %w", err)
	}
	switch f.Scale {
	case "quick", "full", "large", "xlarge", "million":
	default:
		return fmt.Errorf("scale %q, want quick|full|large|xlarge|million", f.Scale)
	}
	if f.Workers <= 0 || f.Seeds <= 0 {
		return fmt.Errorf("workers=%d seeds=%d must be positive", f.Workers, f.Seeds)
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("no results")
	}
	seen := map[string]bool{}
	for i, e := range f.Results {
		switch {
		case e.Name == "" || e.Protocol == "" || e.Topology == "":
			return fmt.Errorf("results[%d]: missing name/protocol/topology", i)
		case seen[e.Name]:
			return fmt.Errorf("results[%d]: duplicate cell %q", i, e.Name)
		case e.N <= 0 || e.F < 0 || e.F >= e.N:
			return fmt.Errorf("results[%d] %s: bad n=%d f=%d", i, e.Name, e.N, e.F)
		case e.Seeds <= 0 || e.Failures < 0 || e.Failures > e.Seeds:
			return fmt.Errorf("results[%d] %s: bad seeds=%d failures=%d", i, e.Name, e.Seeds, e.Failures)
		case e.WallNs <= 0:
			return fmt.Errorf("results[%d] %s: bad wall_ns=%d", i, e.Name, e.WallNs)
		}
		// Complexity measures must be present (positive) for any cell with
		// at least one completed run.
		if e.Failures < e.Seeds && (e.StepsPerRun <= 0 || e.MsgsPerRun <= 0) {
			return fmt.Errorf("results[%d] %s: degenerate measures steps=%.1f msgs=%.1f",
				i, e.Name, e.StepsPerRun, e.MsgsPerRun)
		}
		if e.StepsPerRun < 0 || e.MsgsPerRun < 0 || e.StepsStd < 0 || e.MsgsStd < 0 ||
			e.BytesPerRun < 0 || e.AllocsPerRun < 0 || e.AllocBytesPerRun < 0 {
			return fmt.Errorf("results[%d] %s: negative metric", i, e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}
