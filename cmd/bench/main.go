// Command bench runs the pinned gossip benchmark suite and emits the
// machine-readable artifact behind the repository's performance
// trajectory: a schema-versioned BENCH_gossip.json with steps/run,
// msgs/run, wall-clock and allocation figures for every cell. CI
// regenerates the artifact on every push (quick scale) and nightly (full
// scale), so a perf or complexity regression shows up as a diff in the
// artifact rather than an anecdote.
//
//	bench -quick -out BENCH_gossip.json   # the CI pinned suite
//	bench -out BENCH_gossip.json          # full scale (nightly)
//	bench -check BENCH_gossip.json        # validate an existing artifact
//
// The suite is pinned on purpose: clique, ring and Erdős–Rényi topologies
// at several n, under the standard oblivious adversary, with seeds derived
// per cell via the runner's seed policy. Changing the suite is a schema
// event, not a tweak — bump the schema version when cells change meaning.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/topology"
)

// schemaVersion identifies the artifact layout and the meaning of the
// pinned cells. Bump it when either changes; CI validates it exactly.
const schemaVersion = "repro.bench.gossip/v1"

// benchFile is the artifact layout.
type benchFile struct {
	Schema    string       `json:"schema"`
	Generated string       `json:"generated"` // RFC 3339 UTC
	GoVersion string       `json:"go_version"`
	Scale     string       `json:"scale"` // "quick" or "full"
	Workers   int          `json:"workers"`
	Seeds     int          `json:"seeds"`
	Results   []benchEntry `json:"results"`
}

// benchEntry is one pinned (protocol, topology, n) cell.
type benchEntry struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Topology string `json:"topology"`
	N        int    `json:"n"`
	F        int    `json:"f"`
	Seeds    int    `json:"seeds"`
	Failures int    `json:"failures"`
	// The paper's two complexity measures, averaged over seeds.
	StepsPerRun float64 `json:"steps_per_run"`
	StepsStd    float64 `json:"steps_std"`
	MsgsPerRun  float64 `json:"msgs_per_run"`
	MsgsStd     float64 `json:"msgs_std"`
	BytesPerRun float64 `json:"bytes_per_run"`
	// Harness cost of the cell: wall clock across the whole seed grid and
	// allocator pressure per run.
	WallNs           int64   `json:"wall_ns"`
	AllocsPerRun     float64 `json:"allocs_per_run"`
	AllocBytesPerRun float64 `json:"alloc_bytes_per_run"`
}

// cellSpec pins one suite cell. The f policy mirrors the Table 1 design
// points: f = n/4 on the clique (tears at its design point just under
// n/2), f = 0 on sparse families so the axis stays purely topological.
type cellSpec struct {
	proto  string
	family string // "" = complete graph
	fOf    func(n int) int
}

// suite returns the pinned cells for a scale.
func suite() []cellSpec {
	quarter := func(n int) int { return n / 4 }
	minority := func(n int) int { return (n - 1) / 2 }
	zero := func(int) int { return 0 }
	return []cellSpec{
		{proto: "trivial", family: "", fOf: quarter},
		{proto: "ears", family: "", fOf: quarter},
		{proto: "sears", family: "", fOf: quarter},
		{proto: "tears", family: "", fOf: minority},
		{proto: "ears", family: topology.FamilyRing, fOf: zero},
		{proto: "ears", family: topology.FamilyErdosRenyi, fOf: zero},
		{proto: "tears", family: topology.FamilyErdosRenyi, fOf: zero},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "CI scale (smaller n sweep and fewer seeds)")
		outPath = fs.String("out", "BENCH_gossip.json", "artifact path")
		seeds   = fs.Int("seeds", 0, "seeds per cell (0 = scale default: 3 quick, 5 full)")
		workers = fs.Int("workers", 0, "worker pool for each cell's seed grid (0 = GOMAXPROCS)")
		check   = fs.String("check", "", "validate an existing artifact instead of running the suite")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		if err := checkFile(*check); err != nil {
			return err
		}
		fmt.Fprintf(out, "bench: %s is a valid %s artifact\n", *check, schemaVersion)
		return nil
	}

	scale := experiments.Full
	ns := []int{64, 128, 256}
	cellSeeds := 5
	if *quick {
		scale = experiments.Quick
		ns = []int{32, 64}
		cellSeeds = 3
	}
	if *seeds > 0 {
		cellSeeds = *seeds
	}

	file := benchFile{
		Schema:    schemaVersion,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scale:     scale.String(),
		Workers:   runner.Workers(*workers),
		Seeds:     cellSeeds,
	}
	for _, cell := range suite() {
		for _, n := range ns {
			family := cell.family
			label := family
			if label == "" {
				label = topology.FamilyComplete
			}
			f := cell.fOf(n)
			name := fmt.Sprintf("%s/%s/n=%d", cell.proto, label, n)
			spec := experiments.GossipSpec{
				Proto: cell.proto, N: n, F: f, D: 2, Delta: 2,
				Seeds: cellSeeds, Workers: *workers,
				Topology: family,
				// Each cell gets its own derived seed stream, so cells
				// never share randomness just because they share run
				// indices.
				SeedLabel: name,
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			m, err := experiments.MeasureGossip(spec)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			// A cell where every run failed is a suite bug on the clique,
			// but data on sparse families; either way the artifact records
			// the failure count instead of aborting the suite.
			if err != nil && m.Runs == 0 {
				return fmt.Errorf("cell %s: %w", name, err)
			}
			entry := benchEntry{
				Name:     name,
				Protocol: cell.proto,
				Topology: label,
				N:        n, F: f,
				Seeds:            cellSeeds,
				Failures:         m.Failures,
				StepsPerRun:      m.Time.Mean,
				StepsStd:         m.Time.Std,
				MsgsPerRun:       m.Messages.Mean,
				MsgsStd:          m.Messages.Std,
				BytesPerRun:      m.Bytes.Mean,
				WallNs:           wall.Nanoseconds(),
				AllocsPerRun:     float64(after.Mallocs-before.Mallocs) / float64(cellSeeds),
				AllocBytesPerRun: float64(after.TotalAlloc-before.TotalAlloc) / float64(cellSeeds),
			}
			file.Results = append(file.Results, entry)
			fmt.Fprintf(out, "%-32s steps/run=%-9.1f msgs/run=%-11.1f wall=%-10s allocs/run=%.0f\n",
				name, entry.StepsPerRun, entry.MsgsPerRun, wall.Round(time.Millisecond), entry.AllocsPerRun)
		}
	}

	if err := validate(&file); err != nil {
		return fmt.Errorf("generated artifact is invalid: %w", err)
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: wrote %d cells to %s (%s, %d seeds, %d workers)\n",
		len(file.Results), *outPath, file.Scale, file.Seeds, file.Workers)
	return nil
}

// checkFile parses and validates an artifact on disk.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file benchFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := validate(&file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// validate enforces the schema invariants CI relies on.
func validate(f *benchFile) error {
	if f.Schema != schemaVersion {
		return fmt.Errorf("schema %q, want %q", f.Schema, schemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, f.Generated); err != nil {
		return fmt.Errorf("generated timestamp: %w", err)
	}
	if f.Scale != "quick" && f.Scale != "full" {
		return fmt.Errorf("scale %q, want quick|full", f.Scale)
	}
	if f.Workers <= 0 || f.Seeds <= 0 {
		return fmt.Errorf("workers=%d seeds=%d must be positive", f.Workers, f.Seeds)
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("no results")
	}
	seen := map[string]bool{}
	for i, e := range f.Results {
		switch {
		case e.Name == "" || e.Protocol == "" || e.Topology == "":
			return fmt.Errorf("results[%d]: missing name/protocol/topology", i)
		case seen[e.Name]:
			return fmt.Errorf("results[%d]: duplicate cell %q", i, e.Name)
		case e.N <= 0 || e.F < 0 || e.F >= e.N:
			return fmt.Errorf("results[%d] %s: bad n=%d f=%d", i, e.Name, e.N, e.F)
		case e.Seeds <= 0 || e.Failures < 0 || e.Failures > e.Seeds:
			return fmt.Errorf("results[%d] %s: bad seeds=%d failures=%d", i, e.Name, e.Seeds, e.Failures)
		case e.WallNs <= 0:
			return fmt.Errorf("results[%d] %s: bad wall_ns=%d", i, e.Name, e.WallNs)
		}
		// Complexity measures must be present (positive) for any cell with
		// at least one completed run.
		if e.Failures < e.Seeds && (e.StepsPerRun <= 0 || e.MsgsPerRun <= 0) {
			return fmt.Errorf("results[%d] %s: degenerate measures steps=%.1f msgs=%.1f",
				i, e.Name, e.StepsPerRun, e.MsgsPerRun)
		}
		if e.StepsPerRun < 0 || e.MsgsPerRun < 0 || e.StepsStd < 0 || e.MsgsStd < 0 ||
			e.BytesPerRun < 0 || e.AllocsPerRun < 0 || e.AllocBytesPerRun < 0 {
			return fmt.Errorf("results[%d] %s: negative metric", i, e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}
