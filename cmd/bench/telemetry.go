package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Telemetry capture (-telemetry DIR): alongside the suite's artifact, the
// directory receives pprof CPU/heap profiles of the whole suite plus one
// fully instrumented sample run exported in every supported format —
// metrics.om (OpenMetrics snapshot: counters, curves as histograms, arena
// and pool gauges), trace.json (Chrome trace-event JSON; open at
// ui.perfetto.dev), and run.ndjson (streaming snapshot lines). The sample
// run is observation-only and independent of the suite cells, so the
// artifact and the compare gate are byte-identical with -telemetry on or
// off.

// Sample-run shape: ears under the standard adversary with crashes — big
// enough that the reach and in-flight curves have structure, small enough
// that the Chrome trace stays a few MB.
const (
	sampleN    = 64
	sampleF    = 16
	sampleSeed = 1
)

// profiles manages the suite-wide pprof capture.
type profiles struct {
	dir string
	cpu *os.File
}

// startProfiles begins CPU profiling into dir/cpu.pprof.
func startProfiles(dir string) (*profiles, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return &profiles{dir: dir, cpu: f}, nil
}

// stop ends the CPU profile and writes the post-suite heap profile.
func (p *profiles) stop() error {
	pprof.StopCPUProfile()
	if err := p.cpu.Close(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.WriteHeapProfile(f)
}

// captureSampleRun executes one instrumented run and writes the three
// telemetry exports into dir.
func captureSampleRun(dir string, out io.Writer) error {
	pool := core.NewPool(sampleN)
	params := core.Params{N: sampleN, F: sampleF, Pool: pool}
	proto := core.EARS{}
	nodes, err := core.NewNodes(proto, params, sampleSeed)
	if err != nil {
		return err
	}
	cfg := sim.Config{N: sampleN, F: sampleF, D: 2, Delta: 2, Seed: sampleSeed}
	adv, err := adversary.ByName(adversary.PresetStandard, cfg)
	if err != nil {
		return err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return err
	}
	rec := telemetry.NewRecorder(sampleN)
	chrome := telemetry.NewChromeTracer(0)
	w.SetTracer(sim.Tee(rec, chrome))
	if _, err := w.Run(proto.Evaluator(params.WithDefaults())); err != nil {
		return fmt.Errorf("telemetry sample run: %w", err)
	}

	snap := rec.Snapshot()
	arena := w.ArenaStats()
	ps := pool.Stats()
	gauges := []telemetry.Gauge{
		{Name: "sim_arena_blocks_allocated", Help: "Mailbox arena blocks ever created.", Value: float64(arena.BlocksAllocated)},
		{Name: "sim_arena_blocks_free", Help: "Mailbox arena blocks on the free list.", Value: float64(arena.BlocksFree)},
		{Name: "sim_arena_pending_peak", Help: "Peak undelivered messages in the mailbox.", Value: float64(arena.PeakPendingMessages)},
		{Name: "pool_gets", Help: "Pool objects handed out.", Value: float64(ps.PayloadGets), Labels: map[string]string{"kind": "payload"}},
		{Name: "pool_reuses", Help: "Pool objects served from the free list.", Value: float64(ps.PayloadReuses), Labels: map[string]string{"kind": "payload"}},
		{Name: "pool_releases", Help: "Pool objects returned by release.", Value: float64(ps.PayloadReleases), Labels: map[string]string{"kind": "payload"}},
		{Name: "pool_gets", Help: "Pool objects handed out.", Value: float64(ps.RumorGets), Labels: map[string]string{"kind": "rumors"}},
		{Name: "pool_reuses", Help: "Pool objects served from the free list.", Value: float64(ps.RumorReuses), Labels: map[string]string{"kind": "rumors"}},
		{Name: "pool_releases", Help: "Pool objects returned by release.", Value: float64(ps.RumorReleases), Labels: map[string]string{"kind": "rumors"}},
	}

	om, err := os.Create(filepath.Join(dir, "metrics.om"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteOpenMetrics(om, snap, gauges...); err != nil {
		om.Close()
		return err
	}
	if err := om.Close(); err != nil {
		return err
	}

	tr, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := chrome.Write(tr); err != nil {
		tr.Close()
		return err
	}
	if err := tr.Close(); err != nil {
		return err
	}

	nd, err := os.Create(filepath.Join(dir, "run.ndjson"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteSnapshotNDJSON(nd, snap); err != nil {
		nd.Close()
		return err
	}
	if err := nd.Close(); err != nil {
		return err
	}

	fmt.Fprintf(out, "bench: telemetry written to %s (cpu.pprof, heap.pprof, metrics.om, trace.json, run.ndjson)\n", dir)
	return nil
}
