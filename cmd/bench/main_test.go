package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchQuickEmitsValidArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_gossip.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seeds", "2", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("no summary line:\n%s", buf.String())
	}

	// The artifact must parse, carry the pinned schema, and pass -check.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != schemaVersion {
		t.Fatalf("schema %q", file.Schema)
	}
	if file.Scale != "quick" || file.Seeds != 2 {
		t.Fatalf("scale=%q seeds=%d", file.Scale, file.Seeds)
	}
	if want := len(suite()) * 2; len(file.Results) != want { // 2 quick n points
		t.Fatalf("results: %d, want %d", len(file.Results), want)
	}
	// The clique cells must have real measurements.
	for _, e := range file.Results {
		if e.Topology == "complete" && (e.StepsPerRun <= 0 || e.MsgsPerRun <= 0 || e.Failures != 0) {
			t.Fatalf("degenerate clique cell: %+v", e)
		}
	}
	var checkBuf bytes.Buffer
	if err := run([]string{"-check", path}, &checkBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(checkBuf.String(), "valid") {
		t.Fatalf("check output:\n%s", checkBuf.String())
	}
}

func TestCheckRejectsInvalidArtifacts(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-schema.json":  `{"schema":"nope/v9","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"results":[{"name":"x","protocol":"ears","topology":"complete","n":8,"f":2,"seeds":1,"failures":0,"steps_per_run":1,"msgs_per_run":1,"wall_ns":1}]}`,
		"no-results.json":  `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"results":[]}`,
		"bad-cell.json":    `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"results":[{"name":"x","protocol":"ears","topology":"complete","n":0,"f":0,"seeds":1,"failures":0,"steps_per_run":1,"msgs_per_run":1,"wall_ns":1}]}`,
		"not-json.json":    `{`,
		"unknown-key.json": `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"surprise":true,"results":[{"name":"x","protocol":"ears","topology":"complete","n":8,"f":2,"seeds":1,"failures":0,"steps_per_run":1,"msgs_per_run":1,"wall_ns":1}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := run([]string{"-check", path}, &buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-check", filepath.Join(t.TempDir(), "absent.json")}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
