package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchQuickEmitsValidArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_gossip.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seeds", "2", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("no summary line:\n%s", buf.String())
	}

	// The artifact must parse, carry the pinned schema, and pass -check.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != schemaVersion {
		t.Fatalf("schema %q", file.Schema)
	}
	if file.Scale != "quick" || file.Seeds != 2 {
		t.Fatalf("scale=%q seeds=%d", file.Scale, file.Seeds)
	}
	if want := len(suite("quick")) * 2; len(file.Results) != want { // 2 quick n points
		t.Fatalf("results: %d, want %d", len(file.Results), want)
	}
	// The clique cells must have real measurements.
	for _, e := range file.Results {
		if e.Topology == "complete" && (e.StepsPerRun <= 0 || e.MsgsPerRun <= 0 || e.Failures != 0) {
			t.Fatalf("degenerate clique cell: %+v", e)
		}
	}
	var checkBuf bytes.Buffer
	if err := run([]string{"-check", path}, &checkBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(checkBuf.String(), "valid") {
		t.Fatalf("check output:\n%s", checkBuf.String())
	}
}

func TestCheckRejectsInvalidArtifacts(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-schema.json":  `{"schema":"nope/v9","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"results":[{"name":"x","protocol":"ears","topology":"complete","n":8,"f":2,"seeds":1,"failures":0,"steps_per_run":1,"msgs_per_run":1,"wall_ns":1}]}`,
		"no-results.json":  `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"results":[]}`,
		"bad-cell.json":    `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"results":[{"name":"x","protocol":"ears","topology":"complete","n":0,"f":0,"seeds":1,"failures":0,"steps_per_run":1,"msgs_per_run":1,"wall_ns":1}]}`,
		"not-json.json":    `{`,
		"unknown-key.json": `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22","scale":"quick","workers":1,"seeds":1,"surprise":true,"results":[{"name":"x","protocol":"ears","topology":"complete","n":8,"f":2,"seeds":1,"failures":0,"steps_per_run":1,"msgs_per_run":1,"wall_ns":1}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := run([]string{"-check", path}, &buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-check", filepath.Join(t.TempDir(), "absent.json")}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// artifactJSON builds a minimal valid artifact for compare tests.
func artifactJSON(stepsA, msgsA float64, wallA int64, allocsA float64) string {
	return `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22",` +
		`"scale":"quick","workers":1,"seeds":2,"results":[` +
		`{"name":"a","protocol":"ears","topology":"complete","n":8,"f":2,"seeds":2,"failures":0,` +
		`"steps_per_run":` + fmt.Sprint(stepsA) + `,"msgs_per_run":` + fmt.Sprint(msgsA) +
		`,"wall_ns":` + fmt.Sprint(wallA) + `,"allocs_per_run":` + fmt.Sprint(allocsA) + `}]}`
}

// TestCompareExactAndTolerant pins the gate semantics: identical
// complexity metrics pass (regardless of wall/alloc movement, which only
// warns), while any complexity drift fails.
func TestCompareExactAndTolerant(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", artifactJSON(10, 100, 1000, 50))

	// Same complexity, 3x wall and allocs: pass with warnings.
	slower := write("slower.json", artifactJSON(10, 100, 3000, 150))
	var buf bytes.Buffer
	if err := run([]string{"-compare", base, slower}, &buf); err != nil {
		t.Fatalf("cost-only regression failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "WARNING") {
		t.Fatalf("no cost warning emitted:\n%s", buf.String())
	}

	// Different message complexity: fail.
	drifted := write("drifted.json", artifactJSON(10, 101, 1000, 50))
	buf.Reset()
	if err := run([]string{"-compare", base, drifted}, &buf); err == nil {
		t.Fatalf("complexity drift passed the gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "msgs/run") {
		t.Fatalf("failure does not name the drifted metric:\n%s", buf.String())
	}

	// Incomparable grids (different seeds) are an error, not a silent pass.
	other := write("other-seeds.json", strings.Replace(artifactJSON(10, 100, 1000, 50), `"seeds":2`, `"seeds":3`, 1))
	if err := run([]string{"-compare", base, other}, &bytes.Buffer{}); err == nil {
		t.Fatal("mismatched seed grids compared")
	}

	// A baseline cell disappearing from fresh results is a failure.
	twoCell := strings.Replace(artifactJSON(10, 100, 1000, 50),
		`"results":[`,
		`"results":[{"name":"b","protocol":"ears","topology":"ring","n":8,"f":0,"seeds":2,"failures":0,"steps_per_run":5,"msgs_per_run":50,"wall_ns":500},`, 1)
	baseTwo := write("base-two.json", twoCell)
	buf.Reset()
	if err := run([]string{"-compare", baseTwo, base}, &buf); err == nil {
		t.Fatalf("missing cell passed the gate:\n%s", buf.String())
	}
}

// TestCompareMatchedSeedsFlag runs the quick suite twice (tiny seed count)
// and gates the second run against the first: determinism makes this pass
// by construction, end to end through the CLI. The second run is sharded,
// so the pass also pins the tentpole contract — a sharded suite is
// byte-identical to the serial baseline on every complexity measure.
func TestCompareMatchedSeedsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite in -short mode")
	}
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	if err := run([]string{"-quick", "-seeds", "1", "-out", basePath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	out := filepath.Join(dir, "fresh.json")
	if err := run([]string{"-quick", "-seeds", "1", "-shards", "3", "-out", out, "-compare", basePath}, &buf); err != nil {
		t.Fatalf("sharded self-compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "compare OK") {
		t.Fatalf("no compare summary:\n%s", buf.String())
	}
}

// TestXLargeSuiteShape pins the nightly xlarge tier's structure without
// running it: every cell is lean and sharded, and the first n of every
// family duplicates a large-tier cell exactly, so the -overlap gate
// against BENCH_large.json always has cells to compare.
func TestXLargeSuiteShape(t *testing.T) {
	large := map[string]bool{}
	for _, c := range suite("large") {
		for _, n := range c.ns {
			large[fmt.Sprintf("%s/%s/n=%d", c.proto, c.family, n)] = true
		}
	}
	overlapping := 0
	for _, c := range suite("xlarge") {
		if !c.lean || c.shards < 2 {
			t.Fatalf("xlarge cell %s/%s: lean=%v shards=%d, want lean sharded", c.proto, c.family, c.lean, c.shards)
		}
		if large[fmt.Sprintf("%s/%s/n=%d", c.proto, c.family, c.ns[0])] {
			overlapping++
		}
	}
	if overlapping != len(suite("xlarge")) {
		t.Fatalf("only %d/%d xlarge families overlap the large tier", overlapping, len(suite("xlarge")))
	}
}

// TestCompareOverlap pins the cross-scale gate: only shared cells are
// compared, baseline-only cells are notes not failures, zero overlap is
// an error, and shared-cell drift still fails.
func TestCompareOverlap(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cell := func(name string, msgs float64) string {
		return `{"name":"` + name + `","protocol":"ears","topology":"complete","n":8,"f":2,"seeds":2,"failures":0,` +
			`"steps_per_run":10,"msgs_per_run":` + fmt.Sprint(msgs) + `,"wall_ns":1000}`
	}
	file := func(scale string, cells ...string) string {
		return `{"schema":"` + schemaVersion + `","generated":"2026-01-01T00:00:00Z","go_version":"go1.22",` +
			`"scale":"` + scale + `","workers":1,"seeds":2,"results":[` + strings.Join(cells, ",") + `]}`
	}
	base := write("large.json", file("large", cell("a", 100), cell("only-base", 7)))

	// Shared cell identical, baseline-only cell skipped: overlap passes
	// where the plain gate would fail on both scale and the missing cell.
	freshPath := write("xlarge.json", file("xlarge", cell("a", 100), cell("only-fresh", 9)))
	var buf bytes.Buffer
	if err := run([]string{"-compare", base, "-overlap", freshPath}, &buf); err != nil {
		t.Fatalf("overlap compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "outside the overlap") {
		t.Fatalf("baseline-only cell not noted:\n%s", buf.String())
	}
	if err := run([]string{"-compare", base, freshPath}, &bytes.Buffer{}); err == nil {
		t.Fatal("cross-scale compare passed without -overlap")
	}

	// Drift in the shared cell still fails under -overlap.
	drifted := write("drifted.json", file("xlarge", cell("a", 101)))
	buf.Reset()
	if err := run([]string{"-compare", base, "-overlap", drifted}, &buf); err == nil {
		t.Fatalf("shared-cell drift passed the overlap gate:\n%s", buf.String())
	}

	// No shared cells: error, not a vacuous pass.
	disjoint := write("disjoint.json", file("xlarge", cell("z", 5)))
	if err := run([]string{"-compare", base, "-overlap", disjoint}, &bytes.Buffer{}); err == nil {
		t.Fatal("disjoint overlap compare passed")
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-quick", "-xlarge"},
		{"-large", "-xlarge"},
		{"-overlap"},
		{"-quick", "-shards", "-1"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
