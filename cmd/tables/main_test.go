package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "figure1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 1") {
		t.Fatalf("missing table:\n%s", buf.String())
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "unknown"}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("unknown experiment produced output")
	}
}

func TestWorkersReproduceSerialTables(t *testing.T) {
	// The engine's user-facing promise: -workers=8 renders byte-identical
	// tables to a serial run.
	for _, exp := range []string{"fsweep", "stages"} {
		var serial, parallel bytes.Buffer
		if err := run([]string{"-exp", exp, "-workers", "1"}, &serial); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-exp", exp, "-workers", "8"}, &parallel); err != nil {
			t.Fatal(err)
		}
		if serial.String() != parallel.String() {
			t.Fatalf("%s diverges across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s",
				exp, serial.String(), parallel.String())
		}
	}
}

func TestSeedsFlagOverridesRepetitions(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fsweep", "-seeds", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	// One seed per point: every summary collapses to ± 0.0.
	if strings.Contains(buf.String(), "± 0.0") == false {
		t.Fatalf("single-seed run still shows spread:\n%s", buf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-exp", "figure1", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.Contains(content, "protocol,n,f,case") {
		t.Fatalf("csv header missing:\n%s", content)
	}
	if !strings.Contains(content, "trivial") {
		t.Fatalf("csv rows missing:\n%s", content)
	}
}
