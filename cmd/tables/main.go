// Command tables regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	tables -exp table1          # Table 1: gossip protocols
//	tables -exp table2          # Table 2: consensus protocols
//	tables -exp figure1         # Theorem 1 / Figure 1 lower bound
//	tables -exp coa             # Corollary 2: cost of asynchrony
//	tables -exp delta           # Theorem 12: messages vs d (and vs δ)
//	tables -exp fsweep          # Theorem 6: ears time vs n/(n−f)
//	tables -exp crossover       # ears/trivial message crossover
//	tables -exp stages          # ears §3.2 stage milestones
//	tables -exp latency         # per-rumor dissemination latency
//	tables -exp topology        # gossip across graph families
//	tables -exp npsweep         # ears on G(n, c·ln n/n) density sweep
//	tables -exp pushpull        # push/pull/push-pull on the same density axis
//	tables -exp avgcurve        # averaging diffusion time vs ε
//	tables -exp ablations       # design-choice sweeps
//	tables -exp all -full       # everything, at the EXPERIMENTS.md scale
//	tables -exp table1 -csv out # additionally write out/<name>.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// tabler is any experiment result that can render a stats table.
type tabler interface {
	Table() *stats.Table
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: table1|table2|figure1|coa|delta|fsweep|crossover|stages|latency|topology|npsweep|pushpull|avgcurve|ablations|all")
		full    = fs.Bool("full", false, "full scale (EXPERIMENTS.md configuration; slower)")
		d       = fs.Int("d", 2, "max message delay for the tables")
		delta   = fs.Int("delta", 2, "max scheduling gap for the tables")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "worker pool for the (spec × seed) grid (0 = GOMAXPROCS, 1 = serial; results are identical)")
		shards  = fs.Int("shards", 0, "split each run into this many superstep shards (0/1 = serial kernel; results are identical)")
		seeds   = fs.Int("seeds", 0, "per-point repetition count (0 = scale default)")
		csvDir  = fs.String("csv", "", "directory to additionally write <name>.csv files into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	env := experiments.Env{Scale: scale, Workers: *workers, Seeds: *seeds, Shards: *shards}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("tables: creating csv dir: %w", err)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	emit := func(name string, t tabler) error {
		tab := t.Table()
		fmt.Fprintln(out, tab.String())
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
			return fmt.Errorf("tables: writing %s: %w", path, err)
		}
		return nil
	}

	type job struct {
		name string
		make func() (tabler, error)
	}
	jobs := []job{
		{"table1", func() (tabler, error) { return experiments.Table1(env, *d, *delta) }},
		{"table2", func() (tabler, error) { return experiments.Table2(env, *d, *delta) }},
		{"figure1", func() (tabler, error) { return experiments.Figure1(env, *seed) }},
		{"coa", func() (tabler, error) { return experiments.CostOfAsynchrony(env, *seed) }},
		{"delta", func() (tabler, error) { return experiments.DeltaSweep(env, *seed) }},
		{"fsweep", func() (tabler, error) { return experiments.FSweep(env, *seed) }},
		{"crossover", func() (tabler, error) { return experiments.Crossover(env, *seed) }},
		{"stages", func() (tabler, error) { return experiments.EarsStages(env, *seed) }},
		{"latency", func() (tabler, error) { return experiments.RumorLatencyTables(env, *seed) }},
		{"topology", func() (tabler, error) { return experiments.TopologySweep(env, *seed) }},
		{"npsweep", func() (tabler, error) { return experiments.NPSweep(env, *seed) }},
		{"pushpull", func() (tabler, error) { return experiments.PushPullSweep(env, *seed) }},
		{"avgcurve", func() (tabler, error) { return experiments.AveragingCurve(env, *seed) }},
	}
	for _, j := range jobs {
		if !want(j.name) {
			continue
		}
		res, err := j.make()
		if err != nil {
			return err
		}
		if err := emit(j.name, res); err != nil {
			return err
		}
		// The δ companion of the d sweep.
		if j.name == "delta" {
			sres, err := experiments.SchedSweep(env, *seed)
			if err != nil {
				return err
			}
			if err := emit("delta-sched", sres); err != nil {
				return err
			}
		}
	}

	if want("ablations") {
		abls := []job{
			{"ablation-shutdown", func() (tabler, error) { return experiments.AblationShutdown(env, *seed) }},
			{"ablation-epsilon", func() (tabler, error) { return experiments.AblationEpsilon(env, *seed) }},
			{"ablation-coin", func() (tabler, error) { return experiments.AblationCoin(env, *seed) }},
		}
		for _, j := range abls {
			res, err := j.make()
			if err != nil {
				return err
			}
			if err := emit(j.name, res); err != nil {
				return err
			}
		}
	}
	return nil
}
