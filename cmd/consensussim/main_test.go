package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDirect(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-transport", "direct", "-n", "16", "-f", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CR-direct", "decided=", "rounds="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLocalCoin(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-transport", "direct", "-n", "8", "-f", "3", "-localcoin"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsMajorityFailures(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-f", "4"}, &buf); err == nil {
		t.Fatal("f = n/2 accepted")
	}
}
