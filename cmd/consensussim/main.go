// Command consensussim runs a single randomized-consensus simulation
// (Canetti–Rabin framework over the chosen get-core transport) and prints
// the decision and complexity measures.
//
// Example:
//
//	consensussim -transport tears -n 128 -f 63 -d 2 -delta 2 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "consensussim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consensussim", flag.ContinueOnError)
	var (
		tr      = fs.String("transport", repro.TransportTEARS, "get-core transport: direct|ears|sears|tears")
		n       = fs.Int("n", 64, "number of processes")
		f       = fs.Int("f", 31, "crash budget (must be < n/2)")
		d       = fs.Int("d", 2, "max message delay")
		delta   = fs.Int("delta", 2, "max scheduling gap")
		adv     = fs.String("adversary", repro.AdversaryStandard, "adversary preset")
		seed    = fs.Int64("seed", 1, "random seed")
		local   = fs.Bool("localcoin", false, "use Ben-Or local coins instead of the common coin")
		topo    = fs.String("topology", "", "communication graph family (empty = complete; see gossipsim -topology)")
		tp1     = fs.Float64("topo-param", 0, "topology parameter (0 = family default)")
		tp2     = fs.Float64("topo-param2", 0, "second topology parameter (0 = default)")
		runs    = fs.Int("runs", 0, "deprecated alias for -seeds")
		seeds   = fs.Int("seeds", 0, "number of seeds to run (default 1)")
		workers = fs.Int("workers", 0, "run the seeds concurrently on this many workers (0 = GOMAXPROCS; output is identical to serial)")
		shards  = fs.Int("shards", 0, "split each run into this many superstep shards (0/1 = serial kernel; output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	count := *seeds
	if count <= 0 {
		count = *runs
	}
	if count <= 0 {
		count = 1
	}
	specs := make([]repro.ConsensusSpec, count)
	for i := range specs {
		specs[i] = repro.ConsensusSpec{
			Transport:      *tr,
			N:              *n,
			F:              *f,
			D:              *d,
			Delta:          *delta,
			Adversary:      *adv,
			Seed:           *seed + int64(i),
			LocalCoin:      *local,
			Topology:       *topo,
			TopologyParam:  *tp1,
			TopologyParam2: *tp2,
		}
	}
	// Chunked like gossipsim: bounded buffering, seed-ordered output, and
	// errors stop the sweep within a chunk.
	for start := 0; start < count; start += chunkSize(*workers) {
		end := min(start+chunkSize(*workers), count)
		batch, errs := repro.RunMany(context.Background(), specs[start:end],
			repro.WithWorkers(*workers), repro.WithShards(*shards))
		for j, r := range batch {
			i := start + j
			if errs[j] != nil {
				return errs[j]
			}
			res := r.Consensus
			ones := 0
			for _, v := range res.Inputs {
				ones += int(v)
			}
			fmt.Fprintf(out, "CR-%s n=%d f=%d d=%d δ=%d seed=%d inputs(1s)=%d/%d\n",
				*tr, *n, *f, *d, *delta, *seed+int64(i), ones, *n)
			fmt.Fprintf(out, "  decided=%d rounds=%d time=%d steps messages=%d crashes=%d\n",
				res.Decision, res.MaxRounds, res.TimeSteps, res.Messages, res.Crashes)
		}
	}
	return nil
}

// chunkSize bounds how many seeds are in flight at once: a few batches
// per worker keeps the pool busy without buffering the whole sweep.
func chunkSize(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return max(4*workers, 16)
}
