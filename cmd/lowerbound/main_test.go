package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-proto", "trivial", "-n", "96", "-f", "24", "-trials", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "satisfied=true") {
		t.Fatalf("dichotomy not witnessed:\n%s", out)
	}
}

func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-proto", "sears", "-n", "128", "-f", "32", "-trials", "2", "-sweep"}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "case="); got < 2 {
		t.Fatalf("sweep produced %d lines", got)
	}
}

func TestRunTooSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-f", "2"}, &buf); err == nil {
		t.Fatal("tiny f accepted")
	}
}
