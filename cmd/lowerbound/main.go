// Command lowerbound runs the Theorem 1 adaptive adversary (the paper's
// Figure 1 construction) against a gossip protocol, printing which side of
// the Ω(n+f²)-messages / Ω(f(d+δ))-time dichotomy the adversary forced.
//
// Example:
//
//	lowerbound -proto ears -n 256 -f 64 -sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		proto  = fs.String("proto", repro.ProtoEARS, "protocol: trivial|ears|sears|tears")
		n      = fs.Int("n", 256, "number of processes")
		f      = fs.Int("f", 64, "failure budget (strategy caps at n/4)")
		seed   = fs.Int64("seed", 1, "random seed")
		trials = fs.Int("trials", 32, "Monte Carlo trials per classified process")
		sweep  = fs.Bool("sweep", false, "sweep f over powers of two up to -f")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	budgets := []int{*f}
	if *sweep {
		budgets = budgets[:0]
		for b := 8; b <= *f; b *= 2 {
			budgets = append(budgets, b)
		}
	}
	for _, budget := range budgets {
		res, err := repro.Run(context.Background(), repro.LowerBoundSpec{
			Protocol: *proto, N: *n, F: budget, Seed: *seed, Trials: *trials,
		})
		if err != nil {
			return err
		}
		rep := *res.LowerBound
		fmt.Fprintf(out, "%s n=%d: %s satisfied=%v\n", *proto, *n, rep, rep.Satisfied())
	}
	return nil
}
