package repro

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Spec is a typed run specification accepted by Run: one of GossipSpec,
// ConsensusSpec, LowerBoundSpec or FuzzSpec. The interface is sealed — the
// four spec kinds are the experiments this library knows how to execute.
type Spec interface {
	runSpec()
}

// GossipSpec describes one gossip execution for Run. It has exactly the
// fields of GossipConfig (a plain conversion moves between them), so every
// legacy configuration is a valid spec: Run(ctx, GossipSpec(cfg)) is the
// modern spelling of RunGossip(cfg), bit for bit.
type GossipSpec GossipConfig

func (GossipSpec) runSpec() {}

// ConsensusSpec describes one consensus execution for Run; it converts
// to/from ConsensusConfig the same way GossipSpec converts to/from
// GossipConfig.
type ConsensusSpec ConsensusConfig

func (ConsensusSpec) runSpec() {}

// LowerBoundSpec runs the Theorem 1 adaptive adversary (see RunLowerBound).
type LowerBoundSpec LowerBoundConfig

func (LowerBoundSpec) runSpec() {}

// FuzzSpec runs a deterministic scenario-fuzzing session (see RunFuzz).
// Cancellation and concurrency come from Run's context and WithWorkers
// instead of option fields.
type FuzzSpec struct {
	// Runs is the number of scenarios to generate and execute.
	Runs int
	// Seed keys the scenario stream.
	Seed int64
	// FirstIndex offsets into the stream (resume/partition sessions).
	FirstIndex int64
	// ShrinkBudget bounds re-executions spent minimizing each failure
	// (0 = the engine default).
	ShrinkBudget int
}

func (FuzzSpec) runSpec() {}

// TelemetryRecorder is the streaming per-run metrics aggregator (O(1) per
// event, mergeable across runs and shards): attach one with WithTelemetry
// and read its Snapshot after Run returns.
type TelemetryRecorder = telemetry.Recorder

// NewTelemetryRecorder returns a recorder for an n-process run.
func NewTelemetryRecorder(n int) *TelemetryRecorder { return telemetry.NewRecorder(n) }

// Option adjusts how Run executes a spec. Options are pure mechanism: none
// of them changes a run's events, results or random draws — a spec's
// outcome is the same for every combination of options (WithLean trims
// what the result materializes, never what happened).
type Option func(*runOptions)

type runOptions struct {
	shards    int
	workers   int
	tracer    Tracer
	telemetry *TelemetryRecorder
	lean      bool
}

func buildOptions(opts []Option) runOptions {
	var o runOptions
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithShards executes a gossip or consensus run as s deterministic
// supersteps over contiguous id-range shards (see sim.Config.Shards).
// Output is bit-identical for every shard count; 0 and 1 select the serial
// kernel. Fuzz and lower-bound specs draw their own shard counts and
// ignore this option.
func WithShards(s int) Option {
	return func(o *runOptions) { o.shards = s }
}

// WithWorkers caps execution parallelism: the goroutines driving shard
// phases in a single sharded run, the concurrent runs of RunMany, and the
// workers of a FuzzSpec session (everywhere: 0 = GOMAXPROCS-derived
// default, 1 = serial). Results never depend on it.
func WithWorkers(w int) Option {
	return func(o *runOptions) { o.workers = w }
}

// WithTracer attaches an event tracer to a gossip or consensus run,
// composing with any tracer already present in the spec. Tracers are
// observation-only. Sharded runs invoke the tracer in exact serial event
// order, from one goroutine.
func WithTracer(t Tracer) Option {
	return func(o *runOptions) { o.tracer = t }
}

// WithTelemetry attaches a streaming TelemetryRecorder to a gossip or
// consensus run. The recorder's O(1)-per-event summaries are how large
// (sharded) runs are measured without materializing event logs.
func WithTelemetry(rec *TelemetryRecorder) Option {
	return func(o *runOptions) { o.telemetry = rec }
}

// WithLean runs in the reduced-memory regime for large n: protocol nodes
// keep O(1) per-process time bookkeeping instead of Θ(n) acquisition-time
// arrays (see ProtocolParams.Lean), and GossipResult.Rumors — the Θ(n²)
// per-process rumor listing — is left nil. Completion verdicts, counts and
// digests are unchanged.
func WithLean() Option {
	return func(o *runOptions) { o.lean = true }
}

// RunResult is the outcome of Run: exactly one field is non-nil, matching
// the spec kind that produced it.
type RunResult struct {
	// Gossip is set for GossipSpec runs.
	Gossip *GossipResult
	// Consensus is set for ConsensusSpec runs.
	Consensus *ConsensusResult
	// LowerBound is set for LowerBoundSpec runs.
	LowerBound *LowerBoundReport
	// Fuzz is set for FuzzSpec runs.
	Fuzz *FuzzSummary
}

// Run executes one specification and returns its typed result. It is the
// single entry point of the library: the legacy RunGossip, RunConsensus,
// RunGossipMany, RunConsensusMany, RunLowerBound and RunFuzz are thin
// deprecated wrappers over it and produce identical results.
//
// The context cancels what is cancellable: a FuzzSpec session observes it
// between scenarios, and an already-cancelled context aborts any run
// before it starts. A single simulation, once started, runs to completion
// — the kernel is a deterministic pure function of its spec.
func Run(ctx context.Context, spec Spec, opts ...Option) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, fuzz := spec.(FuzzSpec); !fuzz {
		// A fuzz session observes the context itself (cancelled scenarios
		// are counted as skipped, not failed); everything else aborts
		// before starting.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	o := buildOptions(opts)
	switch s := spec.(type) {
	case GossipSpec:
		g, err := runGossipSpec(s, o)
		if err != nil {
			return &RunResult{Gossip: g}, err
		}
		return &RunResult{Gossip: g}, nil
	case ConsensusSpec:
		c, err := runConsensusSpec(s, o)
		if err != nil {
			return &RunResult{Consensus: c}, err
		}
		return &RunResult{Consensus: c}, nil
	case LowerBoundSpec:
		rep, err := runLowerBoundSpec(s)
		if err != nil {
			return nil, err
		}
		return &RunResult{LowerBound: &rep}, nil
	case FuzzSpec:
		sum, err := scenario.Fuzz(scenario.Options{
			Runs:         s.Runs,
			MasterSeed:   s.Seed,
			FirstIndex:   s.FirstIndex,
			Workers:      o.workers,
			ShrinkBudget: s.ShrinkBudget,
			Context:      ctx,
		})
		if err != nil {
			return nil, err
		}
		return &RunResult{Fuzz: sum}, nil
	default:
		return nil, fmt.Errorf("repro: unknown spec type %T", spec)
	}
}

// RunMany executes one run per spec, fanned across a worker pool sized by
// WithWorkers. results[i] and errs[i] correspond to specs[i] and are
// exactly what Run(ctx, specs[i], opts...) would have returned —
// simulations share no state, so parallel batches reproduce serial loops
// bit for bit. Runs that have not started when the context fires report
// the context's error.
//
// WithTracer and WithTelemetry attach one observer to every run and so
// require WithWorkers(1); concurrent batches reject them per item rather
// than race on the shared observer.
func RunMany[S Spec](ctx context.Context, specs []S, opts ...Option) (results []*RunResult, errs []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	if (o.tracer != nil || o.telemetry != nil) && o.workers != 1 {
		errs = make([]error, len(specs))
		results = make([]*RunResult, len(specs))
		for i := range errs {
			errs[i] = fmt.Errorf("repro: WithTracer/WithTelemetry share one observer across runs; RunMany requires WithWorkers(1) with them")
		}
		return results, errs
	}
	results, errs, _ = runner.Map(ctx, len(specs),
		runner.Options{Workers: o.workers},
		func(_ context.Context, i int) (*RunResult, error) {
			spec := Spec(specs[i])
			if g, ok := spec.(GossipSpec); ok {
				// A caller-provided snapshot pool is sequential-only (its
				// free lists are unsynchronized); concurrent runs must each
				// build their own, so strip it rather than race on it.
				g.Tuning.Pool = nil
				spec = g
			}
			return Run(ctx, spec, opts...)
		})
	return results, errs
}

// runGossipSpec is the gossip engine behind Run and RunGossip.
func runGossipSpec(spec GossipSpec, o runOptions) (*GossipResult, error) {
	cfg := GossipConfig(spec).withDefaults()
	proto, err := gossipProtoByName(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	p := cfg.Tuning
	p.N, p.F = cfg.N, cfg.F
	if o.shards != 0 {
		p.Shards = o.shards
	}
	if o.lean {
		p.Lean = true
	}
	graph, err := buildTopology(cfg.Topology, cfg.N, cfg.TopologyParam, cfg.TopologyParam2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if graph != nil {
		p.Graph = graph
	}
	nodes, err := core.NewNodes(proto, p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		N: cfg.N, F: cfg.F,
		D: sim.Time(cfg.D), Delta: sim.Time(cfg.Delta),
		Seed: cfg.Seed, MaxSteps: sim.Time(cfg.MaxSteps),
		Graph:        graph,
		Shards:       o.shards,
		ShardWorkers: o.workers,
	}
	adv, err := adversary.ByName(cfg.Adversary, simCfg)
	if err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(simCfg, nodes, adv)
	if err != nil {
		return nil, err
	}
	var tl *trace.Timeline
	tracer := cfg.Tracer
	if cfg.Timeline {
		tl = trace.NewTimeline(cfg.N, 160)
		tracer = sim.Tee(tl, tracer)
	}
	if o.tracer != nil {
		tracer = sim.Tee(tracer, o.tracer)
	}
	if o.telemetry != nil {
		tracer = sim.Tee(tracer, o.telemetry)
	}
	if tracer != nil {
		w.SetTracer(tracer)
	}
	res, runErr := w.Run(proto.Evaluator(p.WithDefaults()))
	out := &GossipResult{
		Completed:       res.Completed,
		TimeSteps:       int64(res.TimeComplexity),
		Messages:        res.Messages,
		Bytes:           res.Bytes,
		BytesKnown:      res.BytesKnown,
		Crashes:         res.Crashes,
		OffEdgeDrops:    res.OffEdgeDrops,
		OutOfRangeDrops: res.OutOfRangeDrops,
	}
	if tl != nil {
		out.Timeline = tl.Render()
	}
	for q := 0; q < cfg.N; q++ {
		if !w.Alive(sim.ProcID(q)) {
			out.Crashed = append(out.Crashed, q)
		}
	}
	if !o.lean {
		// Materializing Rumors is Θ(n²); lean runs skip it so results of
		// very large sweeps stay O(n).
		for q := 0; q < cfg.N; q++ {
			if h, ok := nodes[q].(core.RumorHolder); ok {
				out.Rumors = append(out.Rumors, h.RumorSet().Elements())
			} else {
				out.Rumors = append(out.Rumors, nil)
			}
		}
	}
	if runErr != nil {
		return out, fmt.Errorf("repro: gossip run failed: %w", runErr)
	}
	return out, nil
}

// runConsensusSpec is the consensus engine behind Run and RunConsensus.
func runConsensusSpec(spec ConsensusSpec, o runOptions) (*ConsensusResult, error) {
	cfg := ConsensusConfig(spec).withDefaults()
	p := consensus.Params{
		N: cfg.N, F: cfg.F,
		Transport: consensus.TransportKind(cfg.Transport),
		Gossip:    cfg.Tuning,
	}
	if o.lean {
		p.Gossip.Lean = true
	}
	graph, err := buildTopology(cfg.Topology, cfg.N, cfg.TopologyParam, cfg.TopologyParam2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if graph != nil {
		p.Gossip.Graph = graph
	}
	if cfg.LocalCoin {
		p.Coin = consensus.NewLocalCoin(cfg.Seed)
	}
	inputs := cfg.Inputs
	if inputs == nil {
		inputs = consensus.RandomInputs(cfg.N, cfg.Seed)
	}
	nodes, err := consensus.NewNodes(p, inputs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		N: cfg.N, F: cfg.F,
		D: sim.Time(cfg.D), Delta: sim.Time(cfg.Delta),
		Seed: cfg.Seed, MaxSteps: sim.Time(cfg.MaxSteps),
		Graph:        graph,
		Shards:       o.shards,
		ShardWorkers: o.workers,
	}
	adv, err := adversary.ByName(cfg.Adversary, simCfg)
	if err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(simCfg, nodes, adv)
	if err != nil {
		return nil, err
	}
	if tracer := teeTracers(o.tracer, o.telemetry); tracer != nil {
		w.SetTracer(tracer)
	}
	res, runErr := w.Run(consensus.Evaluator{Inputs: inputs})
	out := &ConsensusResult{
		Completed:    res.Completed,
		TimeSteps:    int64(res.CompletedAt),
		Messages:     res.Messages,
		Bytes:        res.Bytes,
		BytesKnown:   res.BytesKnown,
		Crashes:      res.Crashes,
		Inputs:       inputs,
		OffEdgeDrops: res.OffEdgeDrops,
	}
	for q := 0; q < cfg.N; q++ {
		cn := nodes[q].(*consensus.Node)
		if decided, v, _ := cn.Decided(); decided {
			out.Decision = v
		}
		if w.Alive(sim.ProcID(q)) && cn.Rounds() > out.MaxRounds {
			out.MaxRounds = cn.Rounds()
		}
	}
	if runErr != nil {
		return out, fmt.Errorf("repro: consensus run failed: %w", runErr)
	}
	return out, nil
}

// runLowerBoundSpec is the Theorem 1 engine behind Run and RunLowerBound.
func runLowerBoundSpec(spec LowerBoundSpec) (LowerBoundReport, error) {
	if spec.Protocol == "" {
		spec.Protocol = ProtoEARS
	}
	proto, err := core.ByName(spec.Protocol)
	if err != nil {
		return LowerBoundReport{}, err
	}
	return lowerbound.Run(proto, core.Params{}, lowerbound.Config{
		N: spec.N, F: spec.F, Seed: spec.Seed, Trials: spec.Trials,
	})
}

// teeTracers composes an optional tracer and telemetry recorder.
func teeTracers(t Tracer, rec *TelemetryRecorder) Tracer {
	if rec == nil {
		return t
	}
	if t == nil {
		return rec
	}
	return sim.Tee(t, rec)
}
