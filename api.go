package repro

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/syncgossip"
	"repro/internal/topology"
)

// Aliases into the model layer, for users extending the library with
// custom protocols, adversaries or tracers.
type (
	// Time is a discrete simulation step.
	Time = sim.Time
	// ProcID identifies a process (0..N-1).
	ProcID = sim.ProcID
	// Node is a protocol state machine (implement to add protocols).
	Node = sim.Node
	// Outbox collects a node's sends during a step.
	Outbox = sim.Outbox
	// Message is a point-to-point message.
	Message = sim.Message
	// Adversary controls scheduling, delays and crashes.
	Adversary = sim.Adversary
	// Tracer observes simulation events.
	Tracer = sim.Tracer
	// Protocol is a gossip protocol family (node factory + evaluator).
	Protocol = core.Protocol
	// ProtocolParams carries protocol tuning knobs.
	ProtocolParams = core.Params
	// LowerBoundReport is the outcome of the Theorem 1 adversary.
	LowerBoundReport = lowerbound.Report
	// Graph is a communication topology (implement or build via the
	// topology Spec to run protocols on custom graphs).
	Graph = topology.Graph
	// TopologySpec describes a graph for topology-aware runs.
	TopologySpec = topology.Spec
)

// Gossip protocol names accepted by GossipConfig.Protocol.
const (
	ProtoTrivial           = core.NameTrivial
	ProtoEARS              = core.NameEARS
	ProtoSEARS             = core.NameSEARS
	ProtoTEARS             = core.NameTEARS
	ProtoSyncEpidemic      = syncgossip.NameSyncEpidemic
	ProtoSyncDeterministic = syncgossip.NameSyncDeterministic
	// Single-rumor spreading (Panagiotou–Speidel) and sum-weight
	// averaging (Picard et al.): the O(1)-state related-work families.
	ProtoPush     = core.NamePush
	ProtoPull     = core.NamePull
	ProtoPushPull = core.NamePushPull
	ProtoAverage  = core.NameAverage
)

// Adversary preset names accepted by the Adversary fields.
const (
	AdversaryBenign     = adversary.PresetBenign
	AdversaryStandard   = adversary.PresetStandard
	AdversaryCrashStorm = adversary.PresetCrashStorm
	AdversaryMaxDelay   = adversary.PresetMaxDelay
	AdversaryStaggered  = adversary.PresetStaggered
	AdversaryPartition  = adversary.PresetPartition
)

// Consensus transport names accepted by ConsensusConfig.Transport.
const (
	TransportDirect = string(consensus.TransportDirect)
	TransportEARS   = string(consensus.TransportEARS)
	TransportSEARS  = string(consensus.TransportSEARS)
	TransportTEARS  = string(consensus.TransportTEARS)
)

// Topology family names accepted by the Topology fields. The empty string
// (and TopoComplete) select the paper's complete graph, which reproduces
// pre-topology results exactly for a fixed seed.
const (
	TopoComplete       = topology.FamilyComplete
	TopoRing           = topology.FamilyRing
	TopoTorus          = topology.FamilyTorus
	TopoRandomRegular  = topology.FamilyRandomRegular
	TopoErdosRenyi     = topology.FamilyErdosRenyi
	TopoWattsStrogatz  = topology.FamilyWattsStrogatz
	TopoBarabasiAlbert = topology.FamilyBarabasiAlbert
)

// Topologies lists the topology family names.
func Topologies() []string { return topology.Families() }

// buildTopology resolves the Topology fields of a config into a graph
// (nil for the default complete graph, preserving legacy semantics and
// random streams exactly).
func buildTopology(family string, n int, param, param2 float64, seed int64) (topology.Graph, error) {
	if family == "" {
		return nil, nil
	}
	return topology.Build(topology.Spec{
		Family: family, N: n, Param: param, Param2: param2, Seed: seed,
	})
}

// GossipConfig configures RunGossip. Zero values default to: EARS, the
// standard oblivious adversary, d = δ = 1, no failures.
type GossipConfig struct {
	// Protocol is one of the Proto* constants.
	Protocol string
	// N is the number of processes (required).
	N int
	// F is the number of crash failures the adversary may inject.
	F int
	// D and Delta are the execution's delay and speed bounds (≥ 1); the
	// asynchronous protocols do not know them.
	D, Delta int
	// Adversary is one of the Adversary* presets.
	Adversary string
	// Seed makes the run reproducible.
	Seed int64
	// Tuning overrides protocol constants (optional).
	Tuning ProtocolParams
	// MaxSteps caps the run (0 = generous default).
	MaxSteps int64
	// Timeline, when true, records an ASCII space–time diagram of the run
	// in the result (intended for small N; the drawing is clipped at 160
	// time steps).
	Timeline bool
	// Tracer, when non-nil, observes every simulation event (composes with
	// Timeline). Attach a telemetry.Recorder or exporter here; tracers are
	// observation-only and never change the run's outcome.
	Tracer Tracer
	// Topology is one of the Topo* constants; empty means the paper's
	// complete graph (identical results to pre-topology runs for a fixed
	// seed). Protocols sample targets from their neighborhoods and the
	// simulator drops (and counts) any send along a non-edge.
	Topology string
	// TopologyParam and TopologyParam2 are the family parameters (see
	// TopologySpec): degree for random-regular, edge probability for
	// erdos-renyi, k and β for watts-strogatz, m for barabasi-albert,
	// rows for torus. Zero selects the documented defaults.
	TopologyParam  float64
	TopologyParam2 float64
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Protocol == "" {
		c.Protocol = ProtoEARS
	}
	if c.Adversary == "" {
		c.Adversary = AdversaryStandard
	}
	if c.D == 0 {
		c.D = 1
	}
	if c.Delta == 0 {
		c.Delta = 1
	}
	return c
}

// GossipResult reports a gossip run.
type GossipResult struct {
	// Completed: the protocol achieved its promise (full or majority
	// gossip) and went quiescent.
	Completed bool
	// TimeSteps is the paper's time complexity: the step by which every
	// correct process had gathered what it must and all sending stopped.
	TimeSteps int64
	// Messages is the total number of point-to-point messages.
	Messages int64
	// Bytes approximates total payload bytes (bit-complexity extension).
	Bytes int64
	// BytesKnown reports that every message carried a size-reporting
	// payload, i.e. Bytes is a measurement, not "unreported".
	BytesKnown bool
	// Crashes is the number of processes the adversary crashed.
	Crashes int
	// Crashed lists the crashed process IDs.
	Crashed []int
	// Rumors[p] lists the rumor origins known to process p at the end.
	Rumors [][]int
	// Timeline is the rendered space–time diagram (GossipConfig.Timeline).
	Timeline string
	// OffEdgeDrops counts sends dropped for lack of a topology edge
	// (always 0 on the complete graph).
	OffEdgeDrops int64
	// OutOfRangeDrops counts sends dropped for an out-of-range target id
	// (nonzero flags a protocol addressing processes that do not exist).
	OutOfRangeDrops int64
}

// RunGossip simulates one gossip execution.
//
// Deprecated: use Run with a GossipSpec — Run(ctx, GossipSpec(cfg)) — which
// is bit-identical and adds sharded execution, telemetry and lean-memory
// options. This wrapper delegates to Run.
func RunGossip(cfg GossipConfig) (*GossipResult, error) {
	r, err := Run(context.Background(), GossipSpec(cfg))
	var out *GossipResult
	if r != nil {
		out = r.Gossip
	}
	return out, err
}

func gossipProtoByName(name string) (core.Protocol, error) {
	if p, err := core.ByName(name); err == nil {
		return p, nil
	}
	if p, err := syncgossip.ByName(name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("repro: unknown gossip protocol %q", name)
}

// ConsensusConfig configures RunConsensus. Zero values default to: the
// tears transport, standard adversary, d = δ = 1, random inputs.
type ConsensusConfig struct {
	// Transport is one of the Transport* constants.
	Transport string
	// N is the number of processes; F < N/2 the failure budget.
	N, F int
	// D, Delta as in GossipConfig.
	D, Delta int
	// Adversary is one of the Adversary* presets.
	Adversary string
	// Seed makes the run reproducible.
	Seed int64
	// Inputs are the binary proposals (nil = seeded random).
	Inputs []uint8
	// LocalCoin swaps the common coin for Ben-Or local coins (ablation).
	LocalCoin bool
	// Tuning overrides gossip-transport constants (optional).
	Tuning ProtocolParams
	// MaxSteps caps the run (0 = generous default).
	MaxSteps int64
	// Topology restricts communication to a graph family, as in
	// GossipConfig. The gossip transports (ears/sears/tears) sample
	// within neighborhoods; the direct transport assumes the complete
	// graph and will not reach consensus on sparse topologies.
	Topology string
	// TopologyParam and TopologyParam2 are the family parameters.
	TopologyParam  float64
	TopologyParam2 float64
}

func (c ConsensusConfig) withDefaults() ConsensusConfig {
	if c.Transport == "" {
		c.Transport = TransportTEARS
	}
	if c.Adversary == "" {
		c.Adversary = AdversaryStandard
	}
	if c.D == 0 {
		c.D = 1
	}
	if c.Delta == 0 {
		c.Delta = 1
	}
	return c
}

// ConsensusResult reports a consensus run.
type ConsensusResult struct {
	// Completed: every correct process decided, decisions agree and are
	// valid.
	Completed bool
	// Decision is the agreed value.
	Decision uint8
	// TimeSteps is the step at which the last correct process decided.
	TimeSteps int64
	// Messages is the total number of point-to-point messages.
	Messages int64
	// Bytes approximates total payload bytes.
	Bytes int64
	// BytesKnown reports that every message carried a size-reporting
	// payload (see GossipResult.BytesKnown).
	BytesKnown bool
	// Crashes is the number of crashed processes.
	Crashes int
	// MaxRounds is the largest voting-round count over correct processes.
	MaxRounds int
	// Inputs echoes the proposals used.
	Inputs []uint8
	// OffEdgeDrops counts sends dropped for lack of a topology edge —
	// the diagnostic for running the direct transport on a sparse graph.
	OffEdgeDrops int64
}

// RunConsensus simulates one consensus execution.
//
// Deprecated: use Run with a ConsensusSpec — Run(ctx, ConsensusSpec(cfg)) —
// which is bit-identical and adds sharded execution, telemetry and
// lean-memory options. This wrapper delegates to Run.
func RunConsensus(cfg ConsensusConfig) (*ConsensusResult, error) {
	r, err := Run(context.Background(), ConsensusSpec(cfg))
	var out *ConsensusResult
	if r != nil {
		out = r.Consensus
	}
	return out, err
}

// LowerBoundConfig configures RunLowerBound.
type LowerBoundConfig struct {
	// Protocol is one of the asynchronous Proto* constants.
	Protocol string
	// N is the number of processes; F the failure budget (capped at N/4
	// by the Theorem 1 strategy).
	N, F int
	// Seed makes the run reproducible.
	Seed int64
	// Trials sets the adversary's Monte Carlo precision (default 32).
	Trials int
}

// RunLowerBound runs the Theorem 1 adaptive adversary against a protocol
// and reports which side of the Ω(n+f²) messages / Ω(f(d+δ)) time
// dichotomy it forced.
//
// Deprecated: use Run with a LowerBoundSpec — Run(ctx, LowerBoundSpec(cfg))
// — which is identical. This wrapper delegates to Run.
func RunLowerBound(cfg LowerBoundConfig) (LowerBoundReport, error) {
	r, err := Run(context.Background(), LowerBoundSpec(cfg))
	if err != nil {
		return LowerBoundReport{}, err
	}
	return *r.LowerBound, nil
}

// Batch configures the deprecated batch runners RunGossipMany and
// RunConsensusMany. The zero value runs on GOMAXPROCS workers without
// cancellation. New code passes a context and WithWorkers to RunMany
// instead of bundling them in a struct.
type Batch struct {
	// Workers caps concurrency (0 = GOMAXPROCS, 1 = serial). Every run is
	// seeded from its own config, so results are identical for any value.
	Workers int
	// Context, when non-nil, cancels the batch: runs that have not started
	// when it fires report the context's error.
	Context context.Context
}

// RunGossipMany simulates one gossip execution per config, fanned across
// the batch's worker pool. results[i] and errs[i] correspond to cfgs[i]
// and are exactly what RunGossip(cfgs[i]) would have returned — simulations
// share no state, so parallel batches reproduce serial loops bit for bit.
//
// Deprecated: use RunMany — RunMany(ctx, specs, WithWorkers(w)) — which
// accepts any spec kind and a first-class context. This wrapper delegates
// to RunMany.
func RunGossipMany(b Batch, cfgs []GossipConfig) (results []*GossipResult, errs []error) {
	specs := make([]GossipSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = GossipSpec(cfg)
	}
	rs, errs := RunMany(b.Context, specs, WithWorkers(b.Workers))
	results = make([]*GossipResult, len(rs))
	for i, r := range rs {
		if r != nil {
			results[i] = r.Gossip
		}
	}
	return results, errs
}

// RunConsensusMany simulates one consensus execution per config, fanned
// across the batch's worker pool; results and errors are positional, as in
// RunGossipMany.
//
// Deprecated: use RunMany — RunMany(ctx, specs, WithWorkers(w)). This
// wrapper delegates to RunMany.
func RunConsensusMany(b Batch, cfgs []ConsensusConfig) (results []*ConsensusResult, errs []error) {
	specs := make([]ConsensusSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = ConsensusSpec(cfg)
	}
	rs, errs := RunMany(b.Context, specs, WithWorkers(b.Workers))
	results = make([]*ConsensusResult, len(rs))
	for i, r := range rs {
		if r != nil {
			results[i] = r.Consensus
		}
	}
	return results, errs
}

// Scenario-fuzzing aliases: the deterministic simulation-fuzzing engine
// behind cmd/fuzz, exposed for embedding (see doc.go and internal/scenario).
type (
	// ScenarioSpec is one fully materialized fuzzing scenario: protocol,
	// system parameters, topology, and the adversary's schedule/delay/crash
	// policies, all serializable — executing a spec is a pure function of
	// its fields.
	ScenarioSpec = scenario.Spec
	// ScenarioReport is the replayable artifact emitted for a violated
	// scenario: coordinates, oracle verdicts, the failing spec and its
	// shrunk minimized repro.
	ScenarioReport = scenario.Report
	// FuzzSummary aggregates one fuzzing session deterministically.
	FuzzSummary = scenario.Summary
)

// FuzzOptions configures RunFuzz. The summary is a pure function of
// (Seed, FirstIndex, Runs): Workers only changes wall-clock time.
type FuzzOptions struct {
	// Runs is the number of scenarios to generate and execute.
	Runs int
	// Seed keys the scenario stream.
	Seed int64
	// FirstIndex offsets into the stream (resume/partition sessions).
	FirstIndex int64
	// Workers caps concurrency (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// ShrinkBudget bounds re-executions spent minimizing each failure
	// (0 = the engine default).
	ShrinkBudget int
	// Context, when non-nil, cancels the session; scenarios that never
	// started are counted in Summary.Skipped.
	Context context.Context
}

// RunFuzz executes one deterministic scenario-fuzzing session: random
// adversary/topology/protocol scenarios drawn from the seed, every
// execution checked against the invariant-oracle catalog, and every
// violation shrunk to a minimized, replayable ScenarioReport.
//
// Deprecated: use Run with a FuzzSpec — Run(ctx, FuzzSpec{...},
// WithWorkers(w)) — which takes cancellation and concurrency first-class.
// This wrapper delegates to Run.
func RunFuzz(opts FuzzOptions) (*FuzzSummary, error) {
	r, err := Run(opts.Context, FuzzSpec{
		Runs:         opts.Runs,
		Seed:         opts.Seed,
		FirstIndex:   opts.FirstIndex,
		ShrinkBudget: opts.ShrinkBudget,
	}, WithWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	return r.Fuzz, nil
}

// GenerateScenario derives the index-th scenario of a master seed's
// stream — the same pure function RunFuzz iterates, exposed so callers
// can inspect or re-execute individual scenarios.
func GenerateScenario(seed, index int64) ScenarioSpec {
	return scenario.Generate(seed, index)
}

// DeriveSeed maps (base, label, cell) onto a well-mixed 64-bit seed —
// the harness's seed policy for sweeps: distinct labels (spec names,
// benchmark ids) get independent deterministic streams even when they
// share loop indices.
func DeriveSeed(base int64, label string, cell int64) int64 {
	return runner.DeriveSeed(base, label, cell)
}

// NewRand exposes the library's deterministic RNG for examples that need
// reproducible workload generation alongside the simulator.
func NewRand(seed int64) *rng.RNG { return rng.New(seed) }
