package repro

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/syncgossip"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Aliases into the model layer, for users extending the library with
// custom protocols, adversaries or tracers.
type (
	// Time is a discrete simulation step.
	Time = sim.Time
	// ProcID identifies a process (0..N-1).
	ProcID = sim.ProcID
	// Node is a protocol state machine (implement to add protocols).
	Node = sim.Node
	// Outbox collects a node's sends during a step.
	Outbox = sim.Outbox
	// Message is a point-to-point message.
	Message = sim.Message
	// Adversary controls scheduling, delays and crashes.
	Adversary = sim.Adversary
	// Tracer observes simulation events.
	Tracer = sim.Tracer
	// Protocol is a gossip protocol family (node factory + evaluator).
	Protocol = core.Protocol
	// ProtocolParams carries protocol tuning knobs.
	ProtocolParams = core.Params
	// LowerBoundReport is the outcome of the Theorem 1 adversary.
	LowerBoundReport = lowerbound.Report
	// Graph is a communication topology (implement or build via the
	// topology Spec to run protocols on custom graphs).
	Graph = topology.Graph
	// TopologySpec describes a graph for topology-aware runs.
	TopologySpec = topology.Spec
)

// Gossip protocol names accepted by GossipConfig.Protocol.
const (
	ProtoTrivial           = core.NameTrivial
	ProtoEARS              = core.NameEARS
	ProtoSEARS             = core.NameSEARS
	ProtoTEARS             = core.NameTEARS
	ProtoSyncEpidemic      = syncgossip.NameSyncEpidemic
	ProtoSyncDeterministic = syncgossip.NameSyncDeterministic
)

// Adversary preset names accepted by the Adversary fields.
const (
	AdversaryBenign     = adversary.PresetBenign
	AdversaryStandard   = adversary.PresetStandard
	AdversaryCrashStorm = adversary.PresetCrashStorm
	AdversaryMaxDelay   = adversary.PresetMaxDelay
	AdversaryStaggered  = adversary.PresetStaggered
	AdversaryPartition  = adversary.PresetPartition
)

// Consensus transport names accepted by ConsensusConfig.Transport.
const (
	TransportDirect = string(consensus.TransportDirect)
	TransportEARS   = string(consensus.TransportEARS)
	TransportSEARS  = string(consensus.TransportSEARS)
	TransportTEARS  = string(consensus.TransportTEARS)
)

// Topology family names accepted by the Topology fields. The empty string
// (and TopoComplete) select the paper's complete graph, which reproduces
// pre-topology results exactly for a fixed seed.
const (
	TopoComplete       = topology.FamilyComplete
	TopoRing           = topology.FamilyRing
	TopoTorus          = topology.FamilyTorus
	TopoRandomRegular  = topology.FamilyRandomRegular
	TopoErdosRenyi     = topology.FamilyErdosRenyi
	TopoWattsStrogatz  = topology.FamilyWattsStrogatz
	TopoBarabasiAlbert = topology.FamilyBarabasiAlbert
)

// Topologies lists the topology family names.
func Topologies() []string { return topology.Families() }

// buildTopology resolves the Topology fields of a config into a graph
// (nil for the default complete graph, preserving legacy semantics and
// random streams exactly).
func buildTopology(family string, n int, param, param2 float64, seed int64) (topology.Graph, error) {
	if family == "" {
		return nil, nil
	}
	return topology.Build(topology.Spec{
		Family: family, N: n, Param: param, Param2: param2, Seed: seed,
	})
}

// GossipConfig configures RunGossip. Zero values default to: EARS, the
// standard oblivious adversary, d = δ = 1, no failures.
type GossipConfig struct {
	// Protocol is one of the Proto* constants.
	Protocol string
	// N is the number of processes (required).
	N int
	// F is the number of crash failures the adversary may inject.
	F int
	// D and Delta are the execution's delay and speed bounds (≥ 1); the
	// asynchronous protocols do not know them.
	D, Delta int
	// Adversary is one of the Adversary* presets.
	Adversary string
	// Seed makes the run reproducible.
	Seed int64
	// Tuning overrides protocol constants (optional).
	Tuning ProtocolParams
	// MaxSteps caps the run (0 = generous default).
	MaxSteps int64
	// Timeline, when true, records an ASCII space–time diagram of the run
	// in the result (intended for small N; the drawing is clipped at 160
	// time steps).
	Timeline bool
	// Tracer, when non-nil, observes every simulation event (composes with
	// Timeline). Attach a telemetry.Recorder or exporter here; tracers are
	// observation-only and never change the run's outcome.
	Tracer Tracer
	// Topology is one of the Topo* constants; empty means the paper's
	// complete graph (identical results to pre-topology runs for a fixed
	// seed). Protocols sample targets from their neighborhoods and the
	// simulator drops (and counts) any send along a non-edge.
	Topology string
	// TopologyParam and TopologyParam2 are the family parameters (see
	// TopologySpec): degree for random-regular, edge probability for
	// erdos-renyi, k and β for watts-strogatz, m for barabasi-albert,
	// rows for torus. Zero selects the documented defaults.
	TopologyParam  float64
	TopologyParam2 float64
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Protocol == "" {
		c.Protocol = ProtoEARS
	}
	if c.Adversary == "" {
		c.Adversary = AdversaryStandard
	}
	if c.D == 0 {
		c.D = 1
	}
	if c.Delta == 0 {
		c.Delta = 1
	}
	return c
}

// GossipResult reports a gossip run.
type GossipResult struct {
	// Completed: the protocol achieved its promise (full or majority
	// gossip) and went quiescent.
	Completed bool
	// TimeSteps is the paper's time complexity: the step by which every
	// correct process had gathered what it must and all sending stopped.
	TimeSteps int64
	// Messages is the total number of point-to-point messages.
	Messages int64
	// Bytes approximates total payload bytes (bit-complexity extension).
	Bytes int64
	// BytesKnown reports that every message carried a size-reporting
	// payload, i.e. Bytes is a measurement, not "unreported".
	BytesKnown bool
	// Crashes is the number of processes the adversary crashed.
	Crashes int
	// Crashed lists the crashed process IDs.
	Crashed []int
	// Rumors[p] lists the rumor origins known to process p at the end.
	Rumors [][]int
	// Timeline is the rendered space–time diagram (GossipConfig.Timeline).
	Timeline string
	// OffEdgeDrops counts sends dropped for lack of a topology edge
	// (always 0 on the complete graph).
	OffEdgeDrops int64
}

// RunGossip simulates one gossip execution.
func RunGossip(cfg GossipConfig) (*GossipResult, error) {
	cfg = cfg.withDefaults()
	proto, err := gossipProtoByName(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	p := cfg.Tuning
	p.N, p.F = cfg.N, cfg.F
	graph, err := buildTopology(cfg.Topology, cfg.N, cfg.TopologyParam, cfg.TopologyParam2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if graph != nil {
		p.Graph = graph
	}
	nodes, err := core.NewNodes(proto, p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		N: cfg.N, F: cfg.F,
		D: sim.Time(cfg.D), Delta: sim.Time(cfg.Delta),
		Seed: cfg.Seed, MaxSteps: sim.Time(cfg.MaxSteps),
		Graph: graph,
	}
	adv, err := adversary.ByName(cfg.Adversary, simCfg)
	if err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(simCfg, nodes, adv)
	if err != nil {
		return nil, err
	}
	var tl *trace.Timeline
	tracer := cfg.Tracer
	if cfg.Timeline {
		tl = trace.NewTimeline(cfg.N, 160)
		tracer = sim.Tee(tl, tracer)
	}
	if tracer != nil {
		w.SetTracer(tracer)
	}
	res, runErr := w.Run(proto.Evaluator(p.WithDefaults()))
	out := &GossipResult{
		Completed:    res.Completed,
		TimeSteps:    int64(res.TimeComplexity),
		Messages:     res.Messages,
		Bytes:        res.Bytes,
		BytesKnown:   res.BytesKnown,
		Crashes:      res.Crashes,
		OffEdgeDrops: res.OffEdgeDrops,
	}
	if tl != nil {
		out.Timeline = tl.Render()
	}
	for q := 0; q < cfg.N; q++ {
		if !w.Alive(sim.ProcID(q)) {
			out.Crashed = append(out.Crashed, q)
		}
		if h, ok := nodes[q].(core.RumorHolder); ok {
			out.Rumors = append(out.Rumors, h.RumorSet().Elements())
		} else {
			out.Rumors = append(out.Rumors, nil)
		}
	}
	if runErr != nil {
		return out, fmt.Errorf("repro: gossip run failed: %w", runErr)
	}
	return out, nil
}

func gossipProtoByName(name string) (core.Protocol, error) {
	if p, err := core.ByName(name); err == nil {
		return p, nil
	}
	if p, err := syncgossip.ByName(name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("repro: unknown gossip protocol %q", name)
}

// ConsensusConfig configures RunConsensus. Zero values default to: the
// tears transport, standard adversary, d = δ = 1, random inputs.
type ConsensusConfig struct {
	// Transport is one of the Transport* constants.
	Transport string
	// N is the number of processes; F < N/2 the failure budget.
	N, F int
	// D, Delta as in GossipConfig.
	D, Delta int
	// Adversary is one of the Adversary* presets.
	Adversary string
	// Seed makes the run reproducible.
	Seed int64
	// Inputs are the binary proposals (nil = seeded random).
	Inputs []uint8
	// LocalCoin swaps the common coin for Ben-Or local coins (ablation).
	LocalCoin bool
	// Tuning overrides gossip-transport constants (optional).
	Tuning ProtocolParams
	// MaxSteps caps the run (0 = generous default).
	MaxSteps int64
	// Topology restricts communication to a graph family, as in
	// GossipConfig. The gossip transports (ears/sears/tears) sample
	// within neighborhoods; the direct transport assumes the complete
	// graph and will not reach consensus on sparse topologies.
	Topology string
	// TopologyParam and TopologyParam2 are the family parameters.
	TopologyParam  float64
	TopologyParam2 float64
}

func (c ConsensusConfig) withDefaults() ConsensusConfig {
	if c.Transport == "" {
		c.Transport = TransportTEARS
	}
	if c.Adversary == "" {
		c.Adversary = AdversaryStandard
	}
	if c.D == 0 {
		c.D = 1
	}
	if c.Delta == 0 {
		c.Delta = 1
	}
	return c
}

// ConsensusResult reports a consensus run.
type ConsensusResult struct {
	// Completed: every correct process decided, decisions agree and are
	// valid.
	Completed bool
	// Decision is the agreed value.
	Decision uint8
	// TimeSteps is the step at which the last correct process decided.
	TimeSteps int64
	// Messages is the total number of point-to-point messages.
	Messages int64
	// Bytes approximates total payload bytes.
	Bytes int64
	// BytesKnown reports that every message carried a size-reporting
	// payload (see GossipResult.BytesKnown).
	BytesKnown bool
	// Crashes is the number of crashed processes.
	Crashes int
	// MaxRounds is the largest voting-round count over correct processes.
	MaxRounds int
	// Inputs echoes the proposals used.
	Inputs []uint8
	// OffEdgeDrops counts sends dropped for lack of a topology edge —
	// the diagnostic for running the direct transport on a sparse graph.
	OffEdgeDrops int64
}

// RunConsensus simulates one consensus execution.
func RunConsensus(cfg ConsensusConfig) (*ConsensusResult, error) {
	cfg = cfg.withDefaults()
	p := consensus.Params{
		N: cfg.N, F: cfg.F,
		Transport: consensus.TransportKind(cfg.Transport),
		Gossip:    cfg.Tuning,
	}
	graph, err := buildTopology(cfg.Topology, cfg.N, cfg.TopologyParam, cfg.TopologyParam2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if graph != nil {
		p.Gossip.Graph = graph
	}
	if cfg.LocalCoin {
		p.Coin = consensus.NewLocalCoin(cfg.Seed)
	}
	inputs := cfg.Inputs
	if inputs == nil {
		inputs = consensus.RandomInputs(cfg.N, cfg.Seed)
	}
	nodes, err := consensus.NewNodes(p, inputs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		N: cfg.N, F: cfg.F,
		D: sim.Time(cfg.D), Delta: sim.Time(cfg.Delta),
		Seed: cfg.Seed, MaxSteps: sim.Time(cfg.MaxSteps),
		Graph: graph,
	}
	adv, err := adversary.ByName(cfg.Adversary, simCfg)
	if err != nil {
		return nil, err
	}
	w, err := sim.NewWorld(simCfg, nodes, adv)
	if err != nil {
		return nil, err
	}
	res, runErr := w.Run(consensus.Evaluator{Inputs: inputs})
	out := &ConsensusResult{
		Completed:    res.Completed,
		TimeSteps:    int64(res.CompletedAt),
		Messages:     res.Messages,
		Bytes:        res.Bytes,
		BytesKnown:   res.BytesKnown,
		Crashes:      res.Crashes,
		Inputs:       inputs,
		OffEdgeDrops: res.OffEdgeDrops,
	}
	for q := 0; q < cfg.N; q++ {
		cn := nodes[q].(*consensus.Node)
		if decided, v, _ := cn.Decided(); decided {
			out.Decision = v
		}
		if w.Alive(sim.ProcID(q)) && cn.Rounds() > out.MaxRounds {
			out.MaxRounds = cn.Rounds()
		}
	}
	if runErr != nil {
		return out, fmt.Errorf("repro: consensus run failed: %w", runErr)
	}
	return out, nil
}

// LowerBoundConfig configures RunLowerBound.
type LowerBoundConfig struct {
	// Protocol is one of the asynchronous Proto* constants.
	Protocol string
	// N is the number of processes; F the failure budget (capped at N/4
	// by the Theorem 1 strategy).
	N, F int
	// Seed makes the run reproducible.
	Seed int64
	// Trials sets the adversary's Monte Carlo precision (default 32).
	Trials int
}

// RunLowerBound runs the Theorem 1 adaptive adversary against a protocol
// and reports which side of the Ω(n+f²) messages / Ω(f(d+δ)) time
// dichotomy it forced.
func RunLowerBound(cfg LowerBoundConfig) (LowerBoundReport, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = ProtoEARS
	}
	proto, err := core.ByName(cfg.Protocol)
	if err != nil {
		return LowerBoundReport{}, err
	}
	return lowerbound.Run(proto, core.Params{}, lowerbound.Config{
		N: cfg.N, F: cfg.F, Seed: cfg.Seed, Trials: cfg.Trials,
	})
}

// Batch configures the concurrent batch runners RunGossipMany and
// RunConsensusMany. The zero value runs on GOMAXPROCS workers without
// cancellation.
type Batch struct {
	// Workers caps concurrency (0 = GOMAXPROCS, 1 = serial). Every run is
	// seeded from its own config, so results are identical for any value.
	Workers int
	// Context, when non-nil, cancels the batch: runs that have not started
	// when it fires report the context's error.
	Context context.Context
}

func (b Batch) context() context.Context {
	if b.Context != nil {
		return b.Context
	}
	return context.Background()
}

// RunGossipMany simulates one gossip execution per config, fanned across
// the batch's worker pool. results[i] and errs[i] correspond to cfgs[i]
// and are exactly what RunGossip(cfgs[i]) would have returned — simulations
// share no state, so parallel batches reproduce serial loops bit for bit.
func RunGossipMany(b Batch, cfgs []GossipConfig) (results []*GossipResult, errs []error) {
	results, errs, _ = runner.Map(b.context(), len(cfgs),
		runner.Options{Workers: b.Workers},
		func(_ context.Context, i int) (*GossipResult, error) {
			cfg := cfgs[i]
			// A caller-provided snapshot pool is sequential-only (its free
			// lists are unsynchronized); concurrent runs must each build
			// their own, so strip it rather than race on it.
			cfg.Tuning.Pool = nil
			return RunGossip(cfg)
		})
	return results, errs
}

// RunConsensusMany simulates one consensus execution per config, fanned
// across the batch's worker pool; results and errors are positional, as in
// RunGossipMany.
func RunConsensusMany(b Batch, cfgs []ConsensusConfig) (results []*ConsensusResult, errs []error) {
	results, errs, _ = runner.Map(b.context(), len(cfgs),
		runner.Options{Workers: b.Workers},
		func(_ context.Context, i int) (*ConsensusResult, error) {
			return RunConsensus(cfgs[i])
		})
	return results, errs
}

// Scenario-fuzzing aliases: the deterministic simulation-fuzzing engine
// behind cmd/fuzz, exposed for embedding (see doc.go and internal/scenario).
type (
	// ScenarioSpec is one fully materialized fuzzing scenario: protocol,
	// system parameters, topology, and the adversary's schedule/delay/crash
	// policies, all serializable — executing a spec is a pure function of
	// its fields.
	ScenarioSpec = scenario.Spec
	// ScenarioReport is the replayable artifact emitted for a violated
	// scenario: coordinates, oracle verdicts, the failing spec and its
	// shrunk minimized repro.
	ScenarioReport = scenario.Report
	// FuzzSummary aggregates one fuzzing session deterministically.
	FuzzSummary = scenario.Summary
)

// FuzzOptions configures RunFuzz. The summary is a pure function of
// (Seed, FirstIndex, Runs): Workers only changes wall-clock time.
type FuzzOptions struct {
	// Runs is the number of scenarios to generate and execute.
	Runs int
	// Seed keys the scenario stream.
	Seed int64
	// FirstIndex offsets into the stream (resume/partition sessions).
	FirstIndex int64
	// Workers caps concurrency (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// ShrinkBudget bounds re-executions spent minimizing each failure
	// (0 = the engine default).
	ShrinkBudget int
	// Context, when non-nil, cancels the session; scenarios that never
	// started are counted in Summary.Skipped.
	Context context.Context
}

// RunFuzz executes one deterministic scenario-fuzzing session: random
// adversary/topology/protocol scenarios drawn from the seed, every
// execution checked against the invariant-oracle catalog, and every
// violation shrunk to a minimized, replayable ScenarioReport.
func RunFuzz(opts FuzzOptions) (*FuzzSummary, error) {
	return scenario.Fuzz(scenario.Options{
		Runs:         opts.Runs,
		MasterSeed:   opts.Seed,
		FirstIndex:   opts.FirstIndex,
		Workers:      opts.Workers,
		ShrinkBudget: opts.ShrinkBudget,
		Context:      opts.Context,
	})
}

// GenerateScenario derives the index-th scenario of a master seed's
// stream — the same pure function RunFuzz iterates, exposed so callers
// can inspect or re-execute individual scenarios.
func GenerateScenario(seed, index int64) ScenarioSpec {
	return scenario.Generate(seed, index)
}

// DeriveSeed maps (base, label, cell) onto a well-mixed 64-bit seed —
// the harness's seed policy for sweeps: distinct labels (spec names,
// benchmark ids) get independent deterministic streams even when they
// share loop indices.
func DeriveSeed(base int64, label string, cell int64) int64 {
	return runner.DeriveSeed(base, label, cell)
}

// NewRand exposes the library's deterministic RNG for examples that need
// reproducible workload generation alongside the simulator.
func NewRand(seed int64) *rng.RNG { return rng.New(seed) }
