package repro

import (
	"strings"
	"testing"
)

func TestRunGossipDefaults(t *testing.T) {
	res, err := RunGossip(GossipConfig{N: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	if len(res.Rumors) != 32 {
		t.Fatalf("rumor sets: %d", len(res.Rumors))
	}
	for p, rs := range res.Rumors {
		if len(rs) != 32 {
			t.Fatalf("process %d knows %d rumors, want 32", p, len(rs))
		}
	}
}

func TestRunGossipAllProtocols(t *testing.T) {
	for _, proto := range []string{
		ProtoTrivial, ProtoEARS, ProtoSEARS, ProtoTEARS,
		ProtoSyncEpidemic, ProtoSyncDeterministic,
		ProtoPush, ProtoPull, ProtoPushPull, ProtoAverage,
	} {
		cfg := GossipConfig{Protocol: proto, N: 32, F: 8, D: 2, Delta: 2, Seed: 2}
		switch proto {
		case ProtoSyncEpidemic, ProtoSyncDeterministic:
			cfg.D, cfg.Delta = 1, 1 // sync baselines assume d = δ = 1
		case ProtoPush, ProtoPull, ProtoPushPull, ProtoAverage:
			cfg.F = 0 // crashes are outside the O(1)-state families' promises
		}
		res, err := RunGossip(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !res.Completed {
			t.Fatalf("%s: not completed", proto)
		}
	}
}

func TestRunGossipCrashReporting(t *testing.T) {
	res, err := RunGossip(GossipConfig{
		Protocol: ProtoEARS, N: 24, F: 6, Adversary: AdversaryCrashStorm, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 6 || len(res.Crashed) != 6 {
		t.Fatalf("crash accounting: %d / %v", res.Crashes, res.Crashed)
	}
}

func TestRunGossipErrors(t *testing.T) {
	if _, err := RunGossip(GossipConfig{Protocol: "nope", N: 8}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := RunGossip(GossipConfig{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := RunGossip(GossipConfig{N: 8, Adversary: "nope"}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestRunConsensusAllTransports(t *testing.T) {
	for _, tr := range []string{TransportDirect, TransportEARS, TransportSEARS, TransportTEARS} {
		res, err := RunConsensus(ConsensusConfig{
			Transport: tr, N: 24, F: 11, D: 2, Delta: 2, Seed: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if !res.Completed {
			t.Fatalf("%s: not completed", tr)
		}
		if res.Decision > 1 {
			t.Fatalf("%s: non-binary decision %d", tr, res.Decision)
		}
	}
}

func TestRunConsensusUnanimous(t *testing.T) {
	inputs := make([]uint8, 16)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := RunConsensus(ConsensusConfig{N: 16, F: 7, Inputs: inputs, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != 1 {
		t.Fatalf("decision %d on unanimous 1", res.Decision)
	}
}

func TestRunConsensusValidation(t *testing.T) {
	if _, err := RunConsensus(ConsensusConfig{N: 8, F: 4}); err == nil {
		t.Fatal("F = N/2 accepted")
	}
}

func TestRunLowerBound(t *testing.T) {
	rep, err := RunLowerBound(LowerBoundConfig{Protocol: ProtoEARS, N: 96, F: 24, Seed: 6, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied() {
		t.Fatalf("dichotomy not witnessed: %s", rep)
	}
	if !strings.Contains(rep.String(), "case=") {
		t.Fatalf("report string: %s", rep)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, err := RunGossip(GossipConfig{Protocol: ProtoTEARS, N: 64, F: 31, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGossip(GossipConfig{Protocol: ProtoTEARS, N: 64, F: 31, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.TimeSteps != b.TimeSteps {
		t.Fatal("same seed produced different runs")
	}
}

func TestRunGossipTimeline(t *testing.T) {
	res, err := RunGossip(GossipConfig{Protocol: ProtoTEARS, N: 10, F: 2, Seed: 3, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Timeline, "legend:") || !strings.Contains(res.Timeline, "p0") {
		t.Fatalf("timeline missing:\n%s", res.Timeline)
	}
	// Without the flag, no timeline is rendered.
	res2, err := RunGossip(GossipConfig{Protocol: ProtoTEARS, N: 10, F: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timeline != "" {
		t.Fatal("timeline rendered without being requested")
	}
}

func TestRunGossipPartitionPreset(t *testing.T) {
	res, err := RunGossip(GossipConfig{
		Protocol: ProtoEARS, N: 32, F: 0, D: 8, Delta: 2,
		Adversary: "partition", Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
}
