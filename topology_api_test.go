package repro

import (
	"reflect"
	"testing"
)

// TestTopologyCompleteIdentity: an empty Topology and Topology:"complete"
// produce identical results to each other — and to the pre-topology
// implementation, pinned here by a recorded baseline from the seed tree
// (ears, n=64, f=16, d=δ=2, standard adversary, seed 7). If this test
// fails, the topology refactor changed the protocols' random streams.
func TestTopologyCompleteIdentity(t *testing.T) {
	base := GossipConfig{Protocol: ProtoEARS, N: 64, F: 16, D: 2, Delta: 2, Seed: 7}
	withTopo := base
	withTopo.Topology = TopoComplete

	a, err := RunGossip(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGossip(withTopo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("complete topology diverges from default:\n%+v\n%+v", a, b)
	}
	// Recorded pre-topology baseline.
	if a.TimeSteps != 143 || a.Messages != 3994 || a.Bytes != 1937114 || a.Crashes != 13 {
		t.Fatalf("baseline drift: time=%d messages=%d bytes=%d crashes=%d, want 143/3994/1937114/13",
			a.TimeSteps, a.Messages, a.Bytes, a.Crashes)
	}
}

// TestTopologyEARSCompletes: the acceptance workloads — ears achieves
// full gossip at N=256 on a ring and on an Erdős–Rényi graph, with zero
// off-edge drops (the protocol samples strictly inside neighborhoods).
func TestTopologyEARSCompletes(t *testing.T) {
	for _, topo := range []string{TopoRing, TopoErdosRenyi} {
		res, err := RunGossip(GossipConfig{Protocol: ProtoEARS, N: 256, Seed: 1, Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if !res.Completed {
			t.Fatalf("%s: not completed: %+v", topo, res)
		}
		if res.OffEdgeDrops != 0 {
			t.Fatalf("%s: %d off-edge drops; ears should sample only neighbors", topo, res.OffEdgeDrops)
		}
		for p, rs := range res.Rumors {
			if len(rs) != 256 {
				t.Fatalf("%s: process %d gathered %d rumors, want 256", topo, p, len(rs))
			}
		}
	}
}

// TestTopologyAllFamilies: every family name is accepted and ears
// completes full gossip on all of them at a modest size.
func TestTopologyAllFamilies(t *testing.T) {
	for _, topo := range Topologies() {
		res, err := RunGossip(GossipConfig{Protocol: ProtoEARS, N: 48, Seed: 3, Topology: topo})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if !res.Completed {
			t.Fatalf("%s: not completed", topo)
		}
	}
}

// TestTopologyUnknownRejected: a bad family name errors, listing nothing
// run.
func TestTopologyUnknownRejected(t *testing.T) {
	if _, err := RunGossip(GossipConfig{N: 8, Topology: "hypercube-of-doom"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := RunConsensus(ConsensusConfig{N: 8, F: 3, Topology: "hypercube-of-doom"}); err == nil {
		t.Fatal("unknown topology accepted by RunConsensus")
	}
}

// TestTopologyConsensus: consensus over the ears transport decides on a
// (repaired, connected) Erdős–Rényi topology.
func TestTopologyConsensus(t *testing.T) {
	res, err := RunConsensus(ConsensusConfig{
		Transport: TransportEARS, N: 32, F: 7, Seed: 2, Topology: TopoErdosRenyi,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("consensus on erdos-renyi did not complete: %+v", res)
	}
}
