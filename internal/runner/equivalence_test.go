// Parallel-vs-serial equivalence: the acceptance bar for the execution
// engine is that fanning a (spec × seed) grid across workers changes
// nothing but wall-clock time. These tests run real experiment specs —
// a Table 1 point and a topology point — at workers=1 and workers=8 and
// require identical Measurement values (and they run under -race in CI,
// so a data race in the pool or the harness fails them too).
package runner_test

import (
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/experiments"
)

func TestGossipParallelEqualsSerialTable1Spec(t *testing.T) {
	// A Table 1 design point: ears at f = n/4 under the standard adversary.
	spec := experiments.GossipSpec{
		Proto: "ears", N: 48, F: 12, D: 2, Delta: 2, Seeds: 6,
	}
	spec.Workers = 1
	serial, err := experiments.MeasureGossip(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	parallel, err := experiments.MeasureGossip(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 diverge:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestGossipParallelEqualsSerialTopologySpec(t *testing.T) {
	// A topology sweep point: each seed generates its own graph instance,
	// so this also pins graph generation inside worker goroutines.
	spec := experiments.GossipSpec{
		Proto: "ears", N: 48, F: 0, D: 2, Delta: 2, Seeds: 6,
		Topology: "erdos-renyi",
	}
	spec.Workers = 1
	serial, err := experiments.MeasureGossip(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	parallel, err := experiments.MeasureGossip(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 diverge:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestConsensusParallelEqualsSerial(t *testing.T) {
	spec := experiments.ConsensusSpec{
		Transport: consensus.TransportTEARS, N: 24, F: 11, D: 2, Delta: 2, Seeds: 4,
	}
	spec.Workers = 1
	serial, err := experiments.MeasureConsensus(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	parallel, err := experiments.MeasureConsensus(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 diverge:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestExperimentParallelEqualsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-experiment equivalence in -short mode")
	}
	// A whole experiment entry point (many specs on one grid): the f sweep
	// exercises aggregation across multi-seed cells in spec order.
	serial, err := experiments.FSweep(experiments.Env{Workers: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.FSweep(experiments.Env{Workers: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("FSweep diverges across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
