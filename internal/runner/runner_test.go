package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, errs, err := Map(context.Background(), 100, Options{Workers: workers},
			func(_ context.Context, cell int) (int, error) {
				return cell * cell, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d cell %d: got %d, want %d", workers, i, v, i*i)
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d cell %d: unexpected error %v", workers, i, errs[i])
			}
		}
	}
}

func TestMapParallelEqualsSerial(t *testing.T) {
	run := func(workers int) []int {
		out, _, err := Map(context.Background(), 64, Options{Workers: workers},
			func(_ context.Context, cell int) (int, error) {
				// A cell-seeded pseudo-random value: any scheduling leak
				// would show up as a mismatch between worker counts.
				return int(DeriveSeed(42, "equivalence", int64(cell)) % 1000), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapPerCellErrors(t *testing.T) {
	sentinel := errors.New("cell failed")
	out, errs, err := Map(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, cell int) (int, error) {
			if cell%3 == 0 {
				return 0, sentinel
			}
			return cell, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if i%3 == 0 {
			if !errors.Is(errs[i], sentinel) {
				t.Fatalf("cell %d: got %v, want sentinel", i, errs[i])
			}
		} else if errs[i] != nil || out[i] != i {
			t.Fatalf("cell %d: out=%d err=%v", i, out[i], errs[i])
		}
	}
	if !errors.Is(FirstError(errs), sentinel) {
		t.Fatalf("FirstError: %v", FirstError(errs))
	}
}

func TestMapPanicRecovery(t *testing.T) {
	out, errs, err := Map(context.Background(), 8, Options{Workers: 4},
		func(_ context.Context, cell int) (int, error) {
			if cell == 3 {
				panic("boom")
			}
			return cell, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(errs[3], &pe) {
		t.Fatalf("cell 3: got %v, want *PanicError", errs[3])
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not preserved: %+v", pe)
	}
	for i := range out {
		if i != 3 && (errs[i] != nil || out[i] != i) {
			t.Fatalf("cell %d disturbed by panic: out=%d err=%v", i, out[i], errs[i])
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Serial workers make the cancellation point deterministic: cell 0
	// cancels, so cells 1..n-1 must all be skipped.
	out, errs, err := Map(ctx, 20, Options{Workers: 1},
		func(_ context.Context, cell int) (int, error) {
			cancel()
			return cell + 1, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map returned %v, want context.Canceled", err)
	}
	if errs[0] != nil || out[0] != 1 {
		t.Fatalf("in-flight cell 0 should finish: out=%d err=%v", out[0], errs[0])
	}
	for i := 1; i < 20; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("cell %d: got %v, want context.Canceled", i, errs[i])
		}
	}
}

func TestMapCancellationConcurrent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, errs, err := Map(ctx, 1000, Options{Workers: 4},
		func(_ context.Context, cell int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			return cell, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map returned %v, want context.Canceled", err)
	}
	skipped := 0
	for _, e := range errs {
		if errors.Is(e, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation skipped no cells")
	}
	if got := int(ran.Load()); got == 1000 {
		t.Fatal("cancellation did not stop the grid")
	}
}

func TestMapProgress(t *testing.T) {
	var calls int
	last := 0
	_, _, err := Map(context.Background(), 25, Options{Workers: 8, OnCell: func(done, total int) {
		calls++
		if total != 25 {
			t.Fatalf("total %d", total)
		}
		if done < last { // serialized, monotone
			t.Fatalf("progress went backwards: %d after %d", done, last)
		}
		last = done
	}}, func(_ context.Context, cell int) (int, error) { return cell, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 || last != 25 {
		t.Fatalf("progress calls=%d last=%d", calls, last)
	}
}

func TestForEach(t *testing.T) {
	var hits atomic.Int64
	errs, err := ForEach(context.Background(), 16, Options{Workers: 3},
		func(_ context.Context, cell int) error {
			hits.Add(1)
			if cell == 7 {
				return fmt.Errorf("seven")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 16 {
		t.Fatalf("ran %d cells", hits.Load())
	}
	if errs[7] == nil || FirstError(errs) != errs[7] {
		t.Fatalf("errs[7]=%v first=%v", errs[7], FirstError(errs))
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0)=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3)=%d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5)=%d", got)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "ears", 0) != DeriveSeed(1, "ears", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, label := range []string{"ears", "sears", "tears", "gossip/ears/n=64"} {
		for cell := int64(0); cell < 64; cell++ {
			s := DeriveSeed(0, label, cell)
			key := fmt.Sprintf("%s/%d", label, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if DeriveSeed(0, "ears", 1) == DeriveSeed(1, "ears", 1) {
		t.Fatal("base does not influence derived seed")
	}
}

// recordingMonitor captures Monitor callbacks for assertions.
type recordingMonitor struct {
	mu     sync.Mutex
	starts map[int]int // cell → count
	dones  map[int]int
	errs   map[int]error
	badCD  []int       // cells whose CellDone arrived without a CellStart
	active map[int]int // worker → currently held cell (-1 when idle)
}

func newRecordingMonitor() *recordingMonitor {
	return &recordingMonitor{
		starts: map[int]int{}, dones: map[int]int{},
		errs: map[int]error{}, active: map[int]int{},
	}
}

func (m *recordingMonitor) CellStart(worker, cell int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.starts[cell]++
	m.active[worker] = cell
}

func (m *recordingMonitor) CellDone(worker, cell int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dones[cell]++
	m.errs[cell] = err
	if m.active[worker] != cell || m.starts[cell] == 0 {
		m.badCD = append(m.badCD, cell)
	}
	m.active[worker] = -1
}

func TestMapMonitor(t *testing.T) {
	const n = 50
	mon := newRecordingMonitor()
	boom := errors.New("boom")
	out, errs, err := Map(context.Background(), n, Options{Workers: 4, Monitor: mon},
		func(_ context.Context, cell int) (int, error) {
			switch {
			case cell == 7:
				return 0, boom
			case cell == 13:
				panic("kaboom")
			}
			return cell, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	mon.mu.Lock()
	defer mon.mu.Unlock()
	for cell := 0; cell < n; cell++ {
		if mon.starts[cell] != 1 || mon.dones[cell] != 1 {
			t.Errorf("cell %d: starts=%d dones=%d, want 1/1", cell, mon.starts[cell], mon.dones[cell])
		}
	}
	if len(mon.badCD) != 0 {
		t.Errorf("CellDone without matching CellStart on same worker: cells %v", mon.badCD)
	}
	// CellDone sees the cell's final error, including recovered panics.
	if mon.errs[7] != boom {
		t.Errorf("cell 7 monitor err = %v, want boom", mon.errs[7])
	}
	var pe *PanicError
	if !errors.As(mon.errs[13], &pe) {
		t.Errorf("cell 13 monitor err = %v, want *PanicError", mon.errs[13])
	}
	// Monitoring is observation-only: results are untouched.
	for i, v := range out {
		if i == 7 || i == 13 {
			continue
		}
		if v != i || errs[i] != nil {
			t.Errorf("cell %d: out=%d err=%v", i, v, errs[i])
		}
	}
}

// TestMapMonitorDeterminism pins that attaching a Monitor cannot change
// results: same grid, with and without, value for value.
func TestMapMonitorDeterminism(t *testing.T) {
	fn := func(_ context.Context, cell int) (int, error) { return cell * 3, nil }
	plain, _, err := Map(context.Background(), 64, Options{Workers: 8}, fn)
	if err != nil {
		t.Fatal(err)
	}
	mon, _, err := Map(context.Background(), 64, Options{Workers: 8, Monitor: newRecordingMonitor()}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != mon[i] {
			t.Fatalf("cell %d differs with monitor attached: %d vs %d", i, plain[i], mon[i])
		}
	}
}
