package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, errs, err := Map(context.Background(), 100, Options{Workers: workers},
			func(_ context.Context, cell int) (int, error) {
				return cell * cell, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d cell %d: got %d, want %d", workers, i, v, i*i)
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d cell %d: unexpected error %v", workers, i, errs[i])
			}
		}
	}
}

func TestMapParallelEqualsSerial(t *testing.T) {
	run := func(workers int) []int {
		out, _, err := Map(context.Background(), 64, Options{Workers: workers},
			func(_ context.Context, cell int) (int, error) {
				// A cell-seeded pseudo-random value: any scheduling leak
				// would show up as a mismatch between worker counts.
				return int(DeriveSeed(42, "equivalence", int64(cell)) % 1000), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapPerCellErrors(t *testing.T) {
	sentinel := errors.New("cell failed")
	out, errs, err := Map(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, cell int) (int, error) {
			if cell%3 == 0 {
				return 0, sentinel
			}
			return cell, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if i%3 == 0 {
			if !errors.Is(errs[i], sentinel) {
				t.Fatalf("cell %d: got %v, want sentinel", i, errs[i])
			}
		} else if errs[i] != nil || out[i] != i {
			t.Fatalf("cell %d: out=%d err=%v", i, out[i], errs[i])
		}
	}
	if !errors.Is(FirstError(errs), sentinel) {
		t.Fatalf("FirstError: %v", FirstError(errs))
	}
}

func TestMapPanicRecovery(t *testing.T) {
	out, errs, err := Map(context.Background(), 8, Options{Workers: 4},
		func(_ context.Context, cell int) (int, error) {
			if cell == 3 {
				panic("boom")
			}
			return cell, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(errs[3], &pe) {
		t.Fatalf("cell 3: got %v, want *PanicError", errs[3])
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not preserved: %+v", pe)
	}
	for i := range out {
		if i != 3 && (errs[i] != nil || out[i] != i) {
			t.Fatalf("cell %d disturbed by panic: out=%d err=%v", i, out[i], errs[i])
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Serial workers make the cancellation point deterministic: cell 0
	// cancels, so cells 1..n-1 must all be skipped.
	out, errs, err := Map(ctx, 20, Options{Workers: 1},
		func(_ context.Context, cell int) (int, error) {
			cancel()
			return cell + 1, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map returned %v, want context.Canceled", err)
	}
	if errs[0] != nil || out[0] != 1 {
		t.Fatalf("in-flight cell 0 should finish: out=%d err=%v", out[0], errs[0])
	}
	for i := 1; i < 20; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("cell %d: got %v, want context.Canceled", i, errs[i])
		}
	}
}

func TestMapCancellationConcurrent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, errs, err := Map(ctx, 1000, Options{Workers: 4},
		func(_ context.Context, cell int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			return cell, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map returned %v, want context.Canceled", err)
	}
	skipped := 0
	for _, e := range errs {
		if errors.Is(e, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation skipped no cells")
	}
	if got := int(ran.Load()); got == 1000 {
		t.Fatal("cancellation did not stop the grid")
	}
}

func TestMapProgress(t *testing.T) {
	var calls int
	last := 0
	_, _, err := Map(context.Background(), 25, Options{Workers: 8, OnCell: func(done, total int) {
		calls++
		if total != 25 {
			t.Fatalf("total %d", total)
		}
		if done < last { // serialized, monotone
			t.Fatalf("progress went backwards: %d after %d", done, last)
		}
		last = done
	}}, func(_ context.Context, cell int) (int, error) { return cell, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 || last != 25 {
		t.Fatalf("progress calls=%d last=%d", calls, last)
	}
}

func TestForEach(t *testing.T) {
	var hits atomic.Int64
	errs, err := ForEach(context.Background(), 16, Options{Workers: 3},
		func(_ context.Context, cell int) error {
			hits.Add(1)
			if cell == 7 {
				return fmt.Errorf("seven")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 16 {
		t.Fatalf("ran %d cells", hits.Load())
	}
	if errs[7] == nil || FirstError(errs) != errs[7] {
		t.Fatalf("errs[7]=%v first=%v", errs[7], FirstError(errs))
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0)=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3)=%d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5)=%d", got)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "ears", 0) != DeriveSeed(1, "ears", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, label := range []string{"ears", "sears", "tears", "gossip/ears/n=64"} {
		for cell := int64(0); cell < 64; cell++ {
			s := DeriveSeed(0, label, cell)
			key := fmt.Sprintf("%s/%d", label, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if DeriveSeed(0, "ears", 1) == DeriveSeed(1, "ears", 1) {
		t.Fatal("base does not influence derived seed")
	}
}
