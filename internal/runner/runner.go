// Package runner is the deterministic worker-pool execution engine behind
// the experiment harness: it fans an experiment's (spec × seed) grid across
// a bounded set of goroutines while keeping the output bit-identical to a
// serial run.
//
// The determinism contract is the whole point. Each grid cell is a pure
// function of its index (every simulation seeds its own RNG from the cell),
// results are collected into an index-addressed slice, and aggregation
// happens in index order after the grid drains — so the scheduling order of
// workers can never leak into a Measurement, a table, or a benchmark
// artifact. Map with Workers=8 must equal Map with Workers=1, value for
// value; internal/runner's equivalence tests enforce this under -race.
//
// The engine also owns the harness's seed policy: DeriveSeed maps a
// (base, label, cell) triple onto a well-mixed 64-bit seed, so distinct
// specs never share a random stream just because they share loop indices.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n when positive, otherwise
// GOMAXPROCS (the engine is CPU-bound; more workers than cores only adds
// scheduling noise).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Options configures a grid run.
type Options struct {
	// Workers caps concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// OnCell, when non-nil, is called after each cell finishes with the
	// number of completed cells and the grid size. Calls are serialized
	// and done is monotone, but cells complete in scheduling-dependent
	// order (only results are order-stable).
	OnCell func(done, total int)
	// Monitor, when non-nil, observes per-worker cell lifecycle for
	// heartbeat/progress telemetry (e.g. telemetry.Watchdog). Callbacks
	// fire on the worker's goroutine and must be cheap and thread-safe.
	// Monitoring is observation-only: it cannot alter results or ordering.
	Monitor Monitor
}

// Monitor observes worker activity in a grid run. CellStart fires on the
// owning worker's goroutine just before a cell executes; CellDone fires
// after it finishes (err is the cell's error, including *PanicError).
// Worker ids are 0..Workers-1 and stable for the run.
type Monitor interface {
	CellStart(worker, cell int)
	CellDone(worker, cell int, err error)
}

// PanicError wraps a panic recovered from a worker cell, preserving the
// panic value and stack so a crashing spec surfaces as that cell's error
// instead of killing the whole sweep (or the process).
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is carried for callers that
// want to log it.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: cell panicked: %v", e.Value)
}

// Map runs fn over cells 0..n-1 across the configured workers and returns
// the results and per-cell errors, both indexed by cell. The output is
// bit-identical to calling fn serially: result i is exactly fn(i)'s return
// value regardless of how cells were interleaved.
//
// A cell that panics has the panic recovered into a *PanicError in errs[i];
// remaining cells still run. When ctx is cancelled, no new cells start:
// cells that never ran get ctx.Err() in their error slot and Map returns
// ctx.Err(). Cells already in flight finish first, so a cancelled grid
// holds a subset of real results — each worker observes cancellation
// independently, so the completed cells need not form a prefix; callers
// resuming a cancelled grid must check errs cell by cell.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, cell int) (T, error)) ([]T, []error, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs, ctx.Err()
	}
	workers := Workers(opts.Workers)
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64 // next cell to claim
		done     int          // completed cells, guarded by progress
		progress sync.Mutex   // serializes OnCell and guards done
		wg       sync.WaitGroup
	)
	runCell := func(worker, cell int) {
		if opts.Monitor != nil {
			opts.Monitor.CellStart(worker, cell)
		}
		defer func() {
			if v := recover(); v != nil {
				errs[cell] = &PanicError{Value: v, Stack: debug.Stack()}
			}
			if opts.Monitor != nil {
				opts.Monitor.CellDone(worker, cell, errs[cell])
			}
			if opts.OnCell != nil {
				// The counter increments under the same lock that delivers
				// the callback, so OnCell observes a monotone done.
				progress.Lock()
				done++
				opts.OnCell(done, n)
				progress.Unlock()
			}
		}()
		out[cell], errs[cell] = fn(ctx, cell)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				cell := int(next.Add(1)) - 1
				if cell >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[cell] = err
					continue
				}
				runCell(worker, cell)
			}
		}(w)
	}
	wg.Wait()
	return out, errs, ctx.Err()
}

// ForEach is Map for cells that only produce an error.
func ForEach(ctx context.Context, n int, opts Options, fn func(ctx context.Context, cell int) error) ([]error, error) {
	_, errs, err := Map(ctx, n, opts, func(ctx context.Context, cell int) (struct{}, error) {
		return struct{}{}, fn(ctx, cell)
	})
	return errs, err
}

// FirstError returns the lowest-indexed non-nil error of a grid, which is
// the same error a serial loop that stops on failure would have returned.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed maps (base, label, cell) onto a seed via splitmix64-style
// finalization over an FNV-1a hash of the label. Distinct labels (spec
// names, benchmark ids) get independent streams even at equal base and
// cell, fixing the classic harness bug of every spec replaying seed
// 0,1,2,…; equal inputs always derive the same seed, so grids stay
// reproducible.
func DeriveSeed(base int64, label string, cell int64) int64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	h = mix(h ^ mix(uint64(base)))
	return int64(mix(h ^ uint64(cell)*0x9e3779b97f4a7c15))
}

// mix is the splitmix64 finalizer (same constants as internal/rng).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
