package live

import (
	"errors"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/sim"
)

func liveCfg(n int) Config {
	return Config{
		N:         n,
		StepEvery: 100 * time.Microsecond,
		MaxDelay:  500 * time.Microsecond,
		Timeout:   20 * time.Second,
		Seed:      1,
	}
}

func TestLiveTrivialGossip(t *testing.T) {
	rep, err := RunGossip(core.Trivial{}, core.Params{}, liveCfg(16))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
	if want := int64(16 * 15); rep.Messages != want {
		t.Fatalf("messages = %d, want %d", rep.Messages, want)
	}
}

func TestLiveEARSGossip(t *testing.T) {
	rep, err := RunGossip(core.EARS{}, core.Params{}, liveCfg(24))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
	if rep.Messages == 0 {
		t.Fatal("no messages")
	}
}

func TestLiveTEARSMajority(t *testing.T) {
	rep, err := RunGossip(core.TEARS{}, core.Params{}, liveCfg(48))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
}

func TestLiveEARSWithCrashes(t *testing.T) {
	cfg := liveCfg(24)
	cfg.Crashes = map[sim.ProcID]time.Duration{
		3:  2 * time.Millisecond,
		7:  4 * time.Millisecond,
		11: 1 * time.Millisecond,
	}
	rep, err := RunGossip(core.EARS{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
	if len(rep.Crashed) != 3 {
		t.Fatalf("crashed = %v", rep.Crashed)
	}
}

func TestLiveSEARSUnderSlowLinks(t *testing.T) {
	cfg := liveCfg(24)
	cfg.MinDelay = time.Millisecond
	cfg.MaxDelay = 3 * time.Millisecond
	rep, err := RunGossip(core.SEARS{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
}

func TestLiveTimeout(t *testing.T) {
	// A node that is never quiescent must trip the timeout cleanly.
	cfg := liveCfg(2)
	cfg.Timeout = 200 * time.Millisecond
	nodes := []sim.Node{&restlessNode{id: 0}, &restlessNode{id: 1}}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Run(nil)
	if !errors.Is(err, ErrLiveTimeout) {
		t.Fatalf("want ErrLiveTimeout, got %v", err)
	}
}

// restlessNode never quiesces (but also never sends, keeping the run
// bounded).
type restlessNode struct{ id sim.ProcID }

func (r *restlessNode) ID() sim.ProcID                            { return r.id }
func (r *restlessNode) Step(sim.Time, []sim.Message, *sim.Outbox) {}
func (r *restlessNode) Quiescent() bool                           { return false }

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{N: 2}, []sim.Node{&restlessNode{id: 0}}); err == nil {
		t.Fatal("wrong node count accepted")
	}
	if _, err := NewCluster(Config{N: 1}, []sim.Node{nil}); err == nil {
		t.Fatal("nil node accepted")
	}
	if _, err := NewCluster(Config{N: 1}, []sim.Node{&restlessNode{id: 9}}); err == nil {
		t.Fatal("mismatched ID accepted")
	}
}

func TestLiveRumorSetsConsistent(t *testing.T) {
	// After a live ears run, every live node must hold every live node's
	// rumor — same property the simulator checks, now under the Go
	// scheduler's genuine asynchrony.
	cfg := liveCfg(20)
	cfg.Crashes = map[sim.ProcID]time.Duration{5: time.Millisecond}
	// NoPool mirrors RunGossip's own discipline: pooled snapshots are
	// single-goroutine, and the cluster steps nodes concurrently.
	params := core.Params{N: cfg.N, F: 1, NoPool: true}
	nodes, err := core.NewNodes(core.EARS{}, params, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(core.EARS{}.Evaluator(params))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
	for i, nd := range nodes {
		if sim.ProcID(i) == 5 {
			continue
		}
		h := nd.(core.RumorHolder)
		for q := 0; q < cfg.N; q++ {
			if q == 5 {
				continue
			}
			if !h.RumorSet().Test(q) {
				t.Fatalf("live node %d missing rumor %d", i, q)
			}
		}
	}
}

func TestLiveConsensus(t *testing.T) {
	// The consensus nodes are ordinary sim.Nodes: run the full
	// Canetti-Rabin protocol (direct transport) over real goroutines and
	// channels and check agreement/validity/termination with the same
	// evaluator the simulator uses.
	cfg := liveCfg(16)
	cfg.Crashes = map[sim.ProcID]time.Duration{2: 2 * time.Millisecond}
	p := consensus.Params{N: cfg.N, F: 1, Transport: consensus.TransportDirect}
	inputs := consensus.RandomInputs(cfg.N, 9)
	nodes, err := consensus.NewNodes(p, inputs, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(consensus.Evaluator{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
}

func TestLiveConsensusGossipTransport(t *testing.T) {
	// CR-tears over the live runtime.
	cfg := liveCfg(24)
	p := consensus.Params{N: cfg.N, F: 0, Transport: consensus.TransportTEARS}
	inputs := consensus.UniformInputs(cfg.N, 1)
	nodes, err := consensus.NewNodes(p, inputs, 11)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(consensus.Evaluator{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
	// Unanimous input 1 must decide 1 on every live node.
	for i, nd := range nodes {
		if sim.ProcID(i) == 2 {
			continue
		}
		if decided, v, _ := nd.(*consensus.Node).Decided(); decided && v != 1 {
			t.Fatalf("node %d decided %d on unanimous 1", i, v)
		}
	}
}
