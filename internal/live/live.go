// Package live runs the same protocol nodes as the deterministic
// simulator over real goroutines and channels: one goroutine per process,
// buffered channels as links, randomized link delays, and wall-clock
// pacing. The discrete-time simulator (package sim) exists because the
// paper's complexity measures and adversaries are defined over it; this
// runtime exists because the protocols themselves are genuinely
// asynchronous message-passing algorithms, and running them over Go's
// scheduler — an uncontrolled, real asynchronous adversary — is both a
// stress test and the deployment shape a library user would start from.
//
// Concurrency design:
//
//   - Each process is one goroutine owning its node exclusively; nodes
//     need no locks.
//   - Message payloads are copy-on-write snapshots that are never written
//     after publication (see core.Rumors), so cross-goroutine sharing is
//     race-free by construction; the race detector runs clean over this
//     package's tests.
//   - Termination uses credit counting: a global in-flight counter is
//     incremented at send and decremented only after the receiver has
//     *processed* (or a crashed receiver has drained) the message. The
//     world is done when every live process reports quiescence and the
//     counter reads zero twice in a row (the standard double-check against
//     the count-then-quiesce race).
//   - Crashed processes keep draining their inboxes without stepping, so
//     credit accounting stays exact.
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config parameterizes a live run.
type Config struct {
	// N is the number of processes.
	N int
	// StepEvery is the mean pacing of local steps (jittered ±50% per
	// process to create genuine relative-speed asynchrony). Default 200µs.
	StepEvery time.Duration
	// MinDelay/MaxDelay bound the injected link delay. Defaults 0/1ms.
	MinDelay, MaxDelay time.Duration
	// Crashes maps process IDs to the time (after start) at which they
	// halt. Crashed processes stop stepping but keep draining.
	Crashes map[sim.ProcID]time.Duration
	// Timeout aborts the run. Default 30s.
	Timeout time.Duration
	// Seed drives delay jitter.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.StepEvery <= 0 {
		c.StepEvery = 200 * time.Microsecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Report summarizes a live run.
type Report struct {
	// Completed: the cluster reached quiescence before the timeout and
	// the evaluator (if any) accepted.
	Completed bool
	// Wall is the elapsed wall-clock time to quiescence.
	Wall time.Duration
	// Messages is the total number of point-to-point messages.
	Messages int64
	// Crashed lists the crashed processes.
	Crashed []sim.ProcID
	// Detail carries the evaluator's objection when !Completed.
	Detail string
}

// ErrLiveTimeout is returned when the cluster does not quiesce in time.
var ErrLiveTimeout = errors.New("live: cluster did not quiesce before the timeout")

// Cluster drives one live execution.
type Cluster struct {
	cfg   Config
	nodes []sim.Node

	inboxes  []chan sim.Message
	inflight atomic.Int64
	quiet    []atomic.Bool
	alive    []atomic.Bool
	steps    []atomic.Int64
	messages atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCluster wraps protocol nodes for live execution. Node i must report
// ID i.
func NewCluster(cfg Config, nodes []sim.Node) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(nodes) != cfg.N {
		return nil, fmt.Errorf("live: %d nodes for N = %d", len(nodes), cfg.N)
	}
	for i, nd := range nodes {
		if nd == nil || int(nd.ID()) != i {
			return nil, fmt.Errorf("live: bad node at index %d", i)
		}
	}
	c := &Cluster{
		cfg:     cfg,
		nodes:   nodes,
		inboxes: make([]chan sim.Message, cfg.N),
		quiet:   make([]atomic.Bool, cfg.N),
		alive:   make([]atomic.Bool, cfg.N),
		steps:   make([]atomic.Int64, cfg.N),
		stop:    make(chan struct{}),
	}
	for i := range c.inboxes {
		// Generous buffering: senders must never block on a slow receiver
		// (the model has unbounded links); overflow falls back to a
		// blocking send which the drain loops keep moving.
		c.inboxes[i] = make(chan sim.Message, 4*cfg.N+64)
		c.alive[i].Store(true)
	}
	return c, nil
}

// Run executes the cluster until quiescence or timeout and evaluates the
// outcome (nil evaluator accepts).
func (c *Cluster) Run(eval sim.Evaluator) (Report, error) {
	start := time.Now()
	for i := 0; i < c.cfg.N; i++ {
		c.wg.Add(1)
		go c.process(sim.ProcID(i), start)
	}

	done := make(chan struct{})
	var timedOut atomic.Bool
	go c.monitor(done, &timedOut, start)

	<-done
	close(c.stop)
	c.wg.Wait()

	rep := Report{
		Wall:     time.Since(start),
		Messages: c.messages.Load(),
	}
	for i := 0; i < c.cfg.N; i++ {
		if !c.alive[i].Load() {
			rep.Crashed = append(rep.Crashed, sim.ProcID(i))
		}
	}
	if timedOut.Load() {
		rep.Detail = "timeout"
		return rep, fmt.Errorf("%w (after %v, %d messages)", ErrLiveTimeout, c.cfg.Timeout, rep.Messages)
	}
	out := sim.Outcome{OK: true}
	if eval != nil {
		out = eval.Evaluate(c.view())
	}
	rep.Completed = out.OK
	rep.Detail = out.Detail
	if !out.OK {
		return rep, fmt.Errorf("live: evaluator rejected: %s", out.Detail)
	}
	return rep, nil
}

// process is the per-node goroutine.
func (c *Cluster) process(id sim.ProcID, start time.Time) {
	defer c.wg.Done()
	r := rng.New(c.cfg.Seed).Fork(0x11FE).Fork(uint64(id))
	// Jittered pacing: each process steps at its own rhythm (relative
	// process speed is genuinely unbounded under the Go scheduler; the
	// jitter just widens the spread).
	pace := c.cfg.StepEvery/2 + time.Duration(r.Intn(int(c.cfg.StepEvery)))
	ticker := time.NewTicker(pace)
	defer ticker.Stop()

	var crashAt time.Duration
	if t, ok := c.cfg.Crashes[id]; ok {
		crashAt = t
	}

	out := sim.NewOutbox(id, 0, c.cfg.N)
	inbox := make([]sim.Message, 0, 64)
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}

		if crashAt > 0 && time.Since(start) >= crashAt && c.alive[id].Load() {
			c.alive[id].Store(false)
			c.quiet[id].Store(true)
		}
		if !c.alive[id].Load() {
			c.drain(id) // keep credit accounting exact
			continue
		}

		inbox = inbox[:0]
	recv:
		for {
			select {
			case m := <-c.inboxes[id]:
				inbox = append(inbox, m)
			default:
				break recv
			}
		}

		now := sim.Time(time.Since(start) / time.Millisecond)
		out.Reset(id, now, c.cfg.N)
		c.nodes[id].Step(now, inbox, out)
		c.steps[id].Add(1)
		// Credits: the messages just consumed are now fully processed.
		if len(inbox) > 0 {
			c.inflight.Add(-int64(len(inbox)))
		}
		for _, m := range out.Messages() {
			c.messages.Add(1)
			c.inflight.Add(1)
			c.deliver(m, r)
		}
		c.quiet[id].Store(c.nodes[id].Quiescent())
	}
}

// drain empties a crashed process's inbox, returning credits.
func (c *Cluster) drain(id sim.ProcID) {
	for {
		select {
		case <-c.inboxes[id]:
			c.inflight.Add(-1)
		default:
			return
		}
	}
}

// deliver ships a message with injected delay. Delivery runs in its own
// goroutine so a full inbox never blocks the sender's step loop.
func (c *Cluster) deliver(m sim.Message, r *rng.RNG) {
	delay := c.cfg.MinDelay
	if span := c.cfg.MaxDelay - c.cfg.MinDelay; span > 0 {
		delay += time.Duration(r.Int63() % int64(span))
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if delay > 0 {
			timer := time.NewTimer(delay)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-c.stop:
				c.inflight.Add(-1)
				return
			}
		}
		select {
		case c.inboxes[m.To] <- m:
		case <-c.stop:
			c.inflight.Add(-1)
		}
	}()
}

// monitor waits for quiescence (double-checked credit counting) or
// timeout, then signals done.
func (c *Cluster) monitor(done chan struct{}, timedOut *atomic.Bool, start time.Time) {
	defer close(done)
	tick := time.NewTicker(c.cfg.StepEvery * 4)
	defer tick.Stop()
	consecutive := 0
	for {
		<-tick.C
		if time.Since(start) > c.cfg.Timeout {
			timedOut.Store(true)
			return
		}
		if c.inflight.Load() == 0 && c.allQuiet() {
			consecutive++
			if consecutive >= 3 {
				return
			}
		} else {
			consecutive = 0
		}
	}
}

func (c *Cluster) allQuiet() bool {
	for i := 0; i < c.cfg.N; i++ {
		if c.alive[i].Load() && !c.quiet[i].Load() {
			return false
		}
	}
	return true
}

// view adapts the finished cluster to sim.View for evaluators. Only valid
// after Run returns (all goroutines joined).
func (c *Cluster) view() sim.View { return (*clusterView)(c) }

type clusterView Cluster

func (v *clusterView) N() int        { return v.cfg.N }
func (v *clusterView) Now() sim.Time { return 0 }
func (v *clusterView) AliveCount() int {
	n := 0
	for i := 0; i < v.cfg.N; i++ {
		if v.alive[i].Load() {
			n++
		}
	}
	return n
}
func (v *clusterView) Alive(p sim.ProcID) bool {
	return int(p) >= 0 && int(p) < v.cfg.N && v.alive[p].Load()
}
func (v *clusterView) Node(p sim.ProcID) sim.Node { return v.nodes[p] }
func (v *clusterView) MessagesSent() int64        { return v.messages.Load() }
func (v *clusterView) Graph() topology.Graph      { return nil }
func (v *clusterView) StepsTaken(p sim.ProcID) int64 {
	if int(p) < 0 || int(p) >= v.cfg.N {
		return 0
	}
	return v.steps[p].Load()
}

// RunGossip is the package's convenience entry point: build protocol nodes
// and run them live.
func RunGossip(proto core.Protocol, params core.Params, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	params.N = cfg.N
	params.F = len(cfg.Crashes)
	// The live cluster is goroutine-per-process: nodes cannot share the
	// single-goroutine snapshot pool the simulation kernel uses, so runs
	// here are always unpooled (plain GC-backed copy-on-write snapshots).
	params.NoPool, params.Pool = true, nil
	nodes, err := core.NewNodes(proto, params, cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		return Report{}, err
	}
	return cl.Run(proto.Evaluator(params.WithDefaults()))
}
