package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// timedFlood sends one message per step at target until the cutoff, then
// quiesces. It keeps a crashed receiver's drain loop busy well past the
// crash instant.
type timedFlood struct {
	id, target sim.ProcID
	until      sim.Time // ms since start
	done       bool
}

func (f *timedFlood) ID() sim.ProcID { return f.id }
func (f *timedFlood) Step(now sim.Time, _ []sim.Message, out *sim.Outbox) {
	if now < f.until {
		out.Send(f.target, int(now))
		return
	}
	f.done = true
}
func (f *timedFlood) Quiescent() bool { return f.done }

// quietNode does nothing and is always quiescent (a pure receiver).
type quietNode struct{ id sim.ProcID }

func (q *quietNode) ID() sim.ProcID                            { return q.id }
func (q *quietNode) Step(sim.Time, []sim.Message, *sim.Outbox) {}
func (q *quietNode) Quiescent() bool                           { return true }

// A process that crashes mid-flood must keep draining its inbox so the
// global credit count still closes; quiescence must then be detected with
// every credit returned and the crashed inbox empty.
func TestLiveCrashedProcessDrains(t *testing.T) {
	cfg := liveCfg(2)
	cfg.Crashes = map[sim.ProcID]time.Duration{1: time.Millisecond}
	nodes := []sim.Node{
		&timedFlood{id: 0, target: 1, until: 8},
		&quietNode{id: 1},
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crashed) != 1 || rep.Crashed[0] != 1 {
		t.Fatalf("crashed = %v, want [1]", rep.Crashed)
	}
	if rep.Messages == 0 {
		t.Fatal("flood sent nothing")
	}
	if got := cl.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after quiescence, want 0", got)
	}
	if pending := len(cl.inboxes[1]); pending != 0 {
		t.Fatalf("%d messages left in crashed inbox", pending)
	}
}

// pongNode replies to every delivery until it has received `want`
// messages; node 0 serves. Total traffic is then exactly 2·want+1
// messages, so the assertion fails if credit counting ever lets the
// monitor declare quiescence while a message is still in flight (the
// reply it would have triggered goes missing).
type pongNode struct {
	id, peer sim.ProcID
	want     int
	got      int
	started  bool
}

func (p *pongNode) ID() sim.ProcID { return p.id }
func (p *pongNode) Step(_ sim.Time, inbox []sim.Message, out *sim.Outbox) {
	if p.id == 0 && !p.started {
		p.started = true
		out.Send(p.peer, 0)
	}
	for range inbox {
		p.got++
		if p.got <= p.want {
			out.Send(p.peer, 0)
		}
	}
}
func (p *pongNode) Quiescent() bool { return p.id != 0 || p.started }

func TestLiveCreditCountingExact(t *testing.T) {
	const want = 40
	cfg := liveCfg(2)
	nodes := []sim.Node{
		&pongNode{id: 0, peer: 1, want: want},
		&pongNode{id: 1, peer: 0, want: want},
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 opening message + `want` replies from each side.
	if exp := int64(2*want + 1); rep.Messages != exp {
		t.Fatalf("messages = %d, want %d (premature quiescence loses replies)", rep.Messages, exp)
	}
	if got := cl.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after quiescence, want 0", got)
	}
}

// Every credit must come home even when crashes hit a real protocol run.
func TestLiveCreditBalanceWithCrashes(t *testing.T) {
	cfg := liveCfg(16)
	cfg.Crashes = map[sim.ProcID]time.Duration{
		4:  time.Millisecond,
		9:  2 * time.Millisecond,
		13: 3 * time.Millisecond,
	}
	params := core.Params{N: cfg.N, F: len(cfg.Crashes), NoPool: true}
	nodes, err := core.NewNodes(core.EARS{}, params, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(core.EARS{}.Evaluator(params.WithDefaults()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("%+v", rep)
	}
	if got := cl.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after quiescence, want 0", got)
	}
}
