package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// Run modes.
const (
	ModeInproc = "inproc" // every node a goroutine in this process
	ModeProcs  = "procs"  // one OS process per node (cmd/cluster's launcher)
)

// Options parameterizes a cluster run.
type Options struct {
	// StepEvery paces node steps; one simulated "step" of the spec's crash
	// plan maps to this much wall clock. Default 1ms.
	StepEvery time.Duration
	// Heartbeat paces both node heartbeats and driver quiescence sweeps.
	// Default 25ms.
	Heartbeat time.Duration
	// Timeout aborts the run if the cluster has not quiesced. Default 60s.
	Timeout time.Duration
	// Metrics serves each node's telemetry on an ephemeral loopback
	// OpenMetrics endpoint.
	Metrics bool
	// TraceCap bounds each node's live event trace (0 = default).
	TraceCap int
	// Launch starts one node against the registry, non-blocking, and must
	// deliver any node failure on errs (at most one value). Nil selects
	// the in-process launcher: one RunNode goroutine per node, sharing
	// this process. cmd/cluster supplies an os/exec launcher instead.
	Launch func(cfg NodeConfig, errs chan<- error)
}

func (o Options) withDefaults() Options {
	if o.StepEvery <= 0 {
		o.StepEvery = time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 25 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// Result is a finished cluster run: the spec it replayed, per-node
// reports, the merged wall-clock trace, totals, and the live oracle
// verdicts.
type Result struct {
	Spec scenario.Spec
	Mode string
	// StepEvery is the pacing the run used; the time-envelope oracle
	// converts the spec's step bound to wall clock with it.
	StepEvery time.Duration
	// Wall is total run time; QuiesceWall the time to detected quiescence.
	Wall        time.Duration
	QuiesceWall time.Duration
	TimedOut    bool

	Reports []*NodeReport
	Trace   []LiveEvent
	Latency LatencySummary

	TotalSteps, TotalSent, TotalReceived, TotalDrained int64
	TotalOffEdge, TotalSendFails                       int64

	// Verdicts are the live oracle judgments; Passed means all OK.
	// Completed reports the protocol's completion condition independent of
	// Spec.ExpectComplete.
	Verdicts  []Verdict
	Passed    bool
	Completed bool
}

// EffectiveCrashes returns the crash plan the cluster injects: the spec's
// events in time order, one per process, with the budget F enforced —
// the same discipline the simulation kernel applies to over-long plans.
func EffectiveCrashes(spec scenario.Spec) map[int]int64 {
	events := make([]scenario.CrashEvent, len(spec.Crashes))
	copy(events, spec.Crashes)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	plan := make(map[int]int64)
	for _, e := range events {
		if len(plan) >= spec.F {
			break
		}
		if _, dup := plan[e.Proc]; dup {
			continue
		}
		plan[e.Proc] = e.At
	}
	return plan
}

// Run replays spec over a live cluster: start a registry, launch N nodes,
// sweep heartbeats until the cluster-wide credit count is stable at zero
// (or the timeout), direct everyone to drain, collect reports, and judge
// the run with the live oracle subset. An error means the harness itself
// failed; oracle violations and timeouts come back in the Result.
func Run(ctx context.Context, spec scenario.Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, err := core.ByName(spec.Protocol); err != nil {
		// The wire codec speaks the asynchronous protocols' payloads; the
		// synchronous baselines are simulator-only by construction.
		return nil, fmt.Errorf("cluster: protocol %q is not runnable live (synchronous baselines are simulator-only)", spec.Protocol)
	}
	opts = opts.withDefaults()
	graph, err := spec.BuildGraph()
	if err != nil {
		return nil, err
	}

	reg, err := NewRegistry("127.0.0.1:0", time.Now().UnixNano())
	if err != nil {
		return nil, err
	}
	defer reg.Close()

	mode := ModeProcs
	launch := opts.Launch
	if launch == nil {
		mode = ModeInproc
		proto, err := scenario.ProtocolByName(spec.Protocol)
		if err != nil {
			return nil, err
		}
		// NoPool for the same reason internal/live sets it: nodes live on
		// separate goroutines and payloads cross them.
		params := core.Params{N: spec.N, F: spec.F, Graph: graph, NoPool: true}
		nodes, err := core.NewNodes(proto, params, spec.Seed)
		if err != nil {
			return nil, err
		}
		launch = func(cfg NodeConfig, errs chan<- error) {
			nd := nodes[cfg.ID]
			go func() {
				if _, err := RunNode(cfg, nd); err != nil {
					errs <- err
				}
			}()
		}
	}

	crashes := EffectiveCrashes(spec)
	errs := make(chan error, spec.N)
	start := time.Now()
	for i := 0; i < spec.N; i++ {
		cfg := NodeConfig{
			ID: i, N: spec.N,
			RegistryAddr:   reg.Addr(),
			StepEvery:      opts.StepEvery,
			HeartbeatEvery: opts.Heartbeat,
			StartTimeout:   opts.Timeout,
			Graph:          graph,
			TraceCap:       opts.TraceCap,
			Seed:           spec.Seed,
		}
		if at, ok := crashes[i]; ok {
			cfg.CrashAfter = time.Duration(at) * opts.StepEvery
			if cfg.CrashAfter <= 0 {
				cfg.CrashAfter = time.Nanosecond // At = 0: crash before the first step
			}
		}
		if opts.Metrics {
			cfg.MetricsAddr = "127.0.0.1:0"
		}
		launch(cfg, errs)
	}

	res := &Result{Spec: spec, Mode: mode, StepEvery: opts.StepEvery}

	// Quiescence detection, the distributed analogue of internal/live's
	// credit counting: every node joined and stepped, every live node
	// quiescent, global sent == received + drained, and the counters frozen
	// across 3 consecutive sweeps (the double-check against the
	// count-then-quiesce race, with heartbeat lag on top).
	sweep := time.NewTicker(opts.Heartbeat)
	defer sweep.Stop()
	deadline := time.NewTimer(opts.Timeout)
	defer deadline.Stop()
	// Stability tracks the credit counters only — never Steps: quiescent
	// nodes keep ticking (stepping is how they poll their inboxes), so
	// step counts grow forever by design.
	var prev [3]int64
	stable := 0
sweeps:
	for {
		select {
		case <-ctx.Done():
			res.TimedOut = true
			break sweeps
		case <-deadline.C:
			res.TimedOut = true
			break sweeps
		case err := <-errs:
			reg.SetDirective(DirectiveDrain)
			return res, err
		case <-sweep.C:
		}
		s := reg.Sweep()
		cur := [3]int64{s.Sent, s.Received, s.Drained}
		balanced := s.Joined == spec.N && s.Left == 0 && s.HaveAllHB &&
			s.AllQuiet && s.MinLiveSteps >= 1 &&
			s.Sent == s.Received+s.Drained
		if balanced && cur == prev {
			stable++
		} else {
			stable = 0
		}
		prev = cur
		if stable >= 3 {
			break sweeps
		}
	}
	res.QuiesceWall = time.Since(start)
	reg.SetDirective(DirectiveDrain)

	// Collect final reports (nodes hear the directive at their next
	// heartbeat, drain, report, leave).
	grace := time.NewTimer(10 * time.Second)
	defer grace.Stop()
collect:
	for reg.ReportCount() < spec.N {
		select {
		case <-grace.C:
			break collect
		case err := <-errs:
			return res, err
		case <-time.After(opts.Heartbeat):
		}
	}
	res.Wall = time.Since(start)
	res.Reports = reg.Reports()
	if len(res.Reports) == 0 {
		return res, fmt.Errorf("cluster: no node reports collected (stale: %v)", reg.Stale(opts.Heartbeat*4))
	}

	traces := make([][]LiveEvent, 0, len(res.Reports))
	for _, rp := range res.Reports {
		res.TotalSteps += rp.Steps
		res.TotalSent += rp.Sent
		res.TotalReceived += rp.Received
		res.TotalDrained += rp.Drained
		res.TotalOffEdge += rp.OffEdge
		res.TotalSendFails += rp.SendFails
		traces = append(traces, rp.Trace)
	}
	res.Trace = MergeTraces(traces...)
	res.Latency = Latencies(res.Trace)

	res.Verdicts = CheckLive(res)
	res.Passed = true
	for _, v := range res.Verdicts {
		if !v.OK {
			res.Passed = false
		}
	}
	res.Completed = completionDetail(res.Spec, res.Reports) == ""
	return res, nil
}
