package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/scenario"
)

// BenchLiveSchema versions the BENCH_live.json artifact. Bump on any
// incompatible field change, exactly as the fuzz bench artifact
// (repro.bench.fuzz/v3) and the corpus (repro.fuzz.corpus/v1) do.
const BenchLiveSchema = "repro.bench.live/v1"

// BenchLive is the schema-versioned artifact of one live cluster run:
// what ran, how fast it went, and whether the live oracles accepted it.
type BenchLive struct {
	Schema    string        `json:"schema"`
	Mode      string        `json:"mode"`      // "inproc" | "procs"
	Transport string        `json:"transport"` // always "tcp-loopback"
	Spec      scenario.Spec `json:"spec"`
	Label     string        `json:"label"`

	WallMS        float64 `json:"wall_ms"`
	QuiesceWallMS float64 `json:"quiesce_wall_ms"`
	StepEveryUS   float64 `json:"step_every_us"`
	TimedOut      bool    `json:"timed_out"`

	Messages   int64   `json:"messages"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	Steps      int64   `json:"steps"`
	Drained    int64   `json:"drained"`

	// Delivery latency percentiles in microseconds, from the merged
	// wall-clock trace (same-host clock, so sender-to-receiver is exact).
	LatencyCount int64   `json:"latency_count"`
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP90US float64 `json:"latency_p90_us"`
	LatencyP99US float64 `json:"latency_p99_us"`
	LatencyMaxUS float64 `json:"latency_max_us"`

	Nodes []BenchLiveNode `json:"nodes"`

	Verdicts  []Verdict `json:"verdicts"`
	Passed    bool      `json:"passed"`
	Completed bool      `json:"completed"`
}

// BenchLiveNode is one node's row in the artifact.
type BenchLiveNode struct {
	ID       int   `json:"id"`
	Steps    int64 `json:"steps"`
	Sent     int64 `json:"sent"`
	Received int64 `json:"received"`
	Drained  int64 `json:"drained"`
	Crashed  bool  `json:"crashed"`
}

// NewBenchLive distills a Result into the artifact.
func NewBenchLive(res *Result) BenchLive {
	b := BenchLive{
		Schema:        BenchLiveSchema,
		Mode:          res.Mode,
		Transport:     "tcp-loopback",
		Spec:          res.Spec,
		Label:         res.Spec.Label(),
		WallMS:        float64(res.Wall.Microseconds()) / 1e3,
		QuiesceWallMS: float64(res.QuiesceWall.Microseconds()) / 1e3,
		StepEveryUS:   float64(res.StepEvery.Nanoseconds()) / 1e3,
		TimedOut:      res.TimedOut,
		Messages:      res.TotalSent,
		Steps:         res.TotalSteps,
		Drained:       res.TotalDrained,
		LatencyCount:  res.Latency.Count,
		LatencyP50US:  float64(res.Latency.P50) / 1e3,
		LatencyP90US:  float64(res.Latency.P90) / 1e3,
		LatencyP99US:  float64(res.Latency.P99) / 1e3,
		LatencyMaxUS:  float64(res.Latency.Max) / 1e3,
		Verdicts:      res.Verdicts,
		Passed:        res.Passed,
		Completed:     res.Completed,
	}
	if secs := res.Wall.Seconds(); secs > 0 {
		b.MsgsPerSec = float64(res.TotalSent) / secs
	}
	for _, rp := range res.Reports {
		b.Nodes = append(b.Nodes, BenchLiveNode{
			ID: rp.ID, Steps: rp.Steps, Sent: rp.Sent,
			Received: rp.Received, Drained: rp.Drained, Crashed: rp.Crashed,
		})
	}
	return b
}

// WriteBenchLive writes the artifact as indented JSON.
func WriteBenchLive(path string, b BenchLive) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchLive loads and validates an artifact: schema match, a runnable
// spec, node rows consistent with it, and internally consistent totals.
// cmd/cluster -check uses it as the CI gate on uploaded artifacts.
func ReadBenchLive(path string) (BenchLive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchLive{}, err
	}
	var b BenchLive
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchLive{}, fmt.Errorf("cluster: %s: %w", path, err)
	}
	if err := ValidateBenchLive(b); err != nil {
		return BenchLive{}, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return b, nil
}

// ValidateBenchLive checks artifact well-formedness.
func ValidateBenchLive(b BenchLive) error {
	if b.Schema != BenchLiveSchema {
		return fmt.Errorf("schema %q, want %q", b.Schema, BenchLiveSchema)
	}
	if b.Mode != ModeInproc && b.Mode != ModeProcs {
		return fmt.Errorf("unknown mode %q", b.Mode)
	}
	if err := b.Spec.Validate(); err != nil {
		return err
	}
	if len(b.Nodes) != b.Spec.N {
		return fmt.Errorf("%d node rows for n = %d", len(b.Nodes), b.Spec.N)
	}
	var sent, steps, drained int64
	crashed := 0
	for i, nd := range b.Nodes {
		if nd.ID != i {
			return fmt.Errorf("node row %d carries id %d", i, nd.ID)
		}
		sent += nd.Sent
		steps += nd.Steps
		drained += nd.Drained
		if nd.Crashed {
			crashed++
		}
	}
	if sent != b.Messages || steps != b.Steps || drained != b.Drained {
		return fmt.Errorf("totals (messages=%d steps=%d drained=%d) disagree with node rows (%d, %d, %d)",
			b.Messages, b.Steps, b.Drained, sent, steps, drained)
	}
	if crashed > b.Spec.F {
		return fmt.Errorf("%d crashed node rows, budget f=%d", crashed, b.Spec.F)
	}
	if len(b.Verdicts) == 0 {
		return fmt.Errorf("artifact carries no oracle verdicts")
	}
	for _, v := range b.Verdicts {
		if !v.OK && b.Passed {
			return fmt.Errorf("artifact claims passed with failing oracle %s: %s", v.Oracle, v.Detail)
		}
	}
	if b.WallMS < 0 || b.QuiesceWallMS < 0 || b.Messages < 0 {
		return fmt.Errorf("negative measurements")
	}
	return nil
}
