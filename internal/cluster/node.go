package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// NodeConfig parameterizes one cluster node.
type NodeConfig struct {
	// ID is the process identifier (0..N-1); N the cluster size.
	ID int
	N  int
	// RegistryAddr is the control-plane address to join.
	RegistryAddr string
	// StepEvery is the mean pacing of local steps (jittered ±50% per node,
	// exactly as internal/live paces goroutines). Default 1ms.
	StepEvery time.Duration
	// HeartbeatEvery paces control-plane heartbeats. Default 25ms.
	HeartbeatEvery time.Duration
	// CrashAfter halts the gossip plane this long after the shared run
	// epoch (0 = never). A crashed node stops stepping and sending but
	// keeps draining its inbox and heartbeating — the control plane stays
	// alive so cluster-wide credit accounting remains exact, mirroring
	// internal/live's drain discipline.
	CrashAfter time.Duration
	// StartTimeout bounds join + peer discovery. Default 30s.
	StartTimeout time.Duration
	// Graph is the communication topology; sends along non-edges are
	// dropped and counted, as in the simulator. Nil = complete graph.
	Graph topology.Graph
	// TraceCap bounds the node's live event trace (0 = default).
	TraceCap int
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the node's
	// telemetry as an OpenMetrics scrape endpoint at /metrics.
	MetricsAddr string
	// Seed drives pacing jitter.
	Seed int64
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.StepEvery <= 0 {
		c.StepEvery = time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 25 * time.Millisecond
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 30 * time.Second
	}
	return c
}

// NodeReport is a node's final accounting, streamed to the registry after
// the drain directive. Counter semantics match HeartbeatMsg; the protocol
// state block carries whichever state interfaces the node implements
// (rumor sets for gossip, the informed bit for spreading, sum/weight for
// averaging) so the live oracles can judge completion and validity.
type NodeReport struct {
	ID          int    `json:"id"`
	Addr        string `json:"addr"`
	MetricsAddr string `json:"metrics_addr,omitempty"`

	Steps     int64 `json:"steps"`
	Sent      int64 `json:"sent"`
	Received  int64 `json:"received"`
	Drained   int64 `json:"drained"`
	OffEdge   int64 `json:"off_edge"`
	SendFails int64 `json:"send_fails,omitempty"`
	Crashed   bool  `json:"crashed"`
	CrashedAt int64 `json:"crashed_at,omitempty"` // nanos since epoch
	Quiescent bool  `json:"quiescent"`

	HasRumors   bool    `json:"has_rumors,omitempty"`
	Rumors      []int   `json:"rumors,omitempty"`
	RumorCount  int     `json:"rumor_count,omitempty"`
	HasInformed bool    `json:"has_informed,omitempty"`
	Informed    bool    `json:"informed,omitempty"`
	HasAvg      bool    `json:"has_avg,omitempty"`
	Sum         float64 `json:"sum,omitempty"`
	Weight      float64 `json:"weight,omitempty"`
	Initial     float64 `json:"initial,omitempty"`

	Trace        []LiveEvent `json:"trace,omitempty"`
	TraceDropped int64       `json:"trace_dropped,omitempty"`
}

// controlConn is a node's persistent request/response connection to the
// registry.
type controlConn struct{ conn net.Conn }

func dialControl(addr string, timeout time.Duration) (*controlConn, error) {
	deadline := time.Now().Add(timeout)
	backoff := 5 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return &controlConn{conn: conn}, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial registry %s: %w", addr, err)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

func (c *controlConn) roundTrip(kind byte, msg, reply any) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	if err := WriteFrame(c.conn, kind, body); err != nil {
		return err
	}
	gotKind, gotBody, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if gotKind != kind+1 { // every reply kind is request kind + 1
		return fmt.Errorf("cluster: control reply kind %#x to request %#x", gotKind, kind)
	}
	return json.Unmarshal(gotBody, reply)
}

func (c *controlConn) Close() { c.conn.Close() }

// RunNode executes one node's full lifecycle — listen, register, discover
// peers, gossip until the registry's drain directive, drain, report,
// deregister — and returns the final report (which was also streamed to
// the registry). nd must be an unpooled protocol node with ID cfg.ID;
// cross-process payloads travel as core's wire codec, so pooled snapshots
// must not be in play (use core.Params.NoPool, as internal/live does).
func RunNode(cfg NodeConfig, nd sim.Node) (*NodeReport, error) {
	cfg = cfg.withDefaults()
	if nd == nil || int(nd.ID()) != cfg.ID {
		return nil, fmt.Errorf("cluster: node reports ID %v, config says %d", nd, cfg.ID)
	}
	tr, err := NewTransport("127.0.0.1:0", 4*cfg.N+64)
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	// Telemetry: a per-node recorder teed with the bounded live trace.
	// The recorder and trace belong to this goroutine; the HTTP endpoint
	// reads atomically published copies.
	rec := telemetry.NewRecorder(cfg.N)
	trace := NewTraceRecorder(cfg.TraceCap)
	tracer := sim.Tee(rec, trace)
	var pub atomic.Pointer[metricsState]
	metricsAddr := ""
	if cfg.MetricsAddr != "" {
		srv, addr, err := serveMetrics(cfg.MetricsAddr, cfg.ID, &pub)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		metricsAddr = addr
	}

	// Register, learn the shared epoch, then heartbeat until every peer's
	// listener address is known — stepping before that would lose sends.
	ctl, err := dialControl(cfg.RegistryAddr, cfg.StartTimeout)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	var joinOK JoinOKMsg
	join := JoinMsg{ID: cfg.ID, Addr: tr.Addr(), MetricsAddr: metricsAddr}
	if err := ctl.roundTrip(KindJoin, join, &joinOK); err != nil {
		return nil, fmt.Errorf("cluster: node %d join: %w", cfg.ID, err)
	}
	epoch := joinOK.EpochUnixNano
	now := func() sim.Time { return sim.Time(time.Now().UnixNano() - epoch) }

	peers := make([]string, cfg.N)
	known := 0
	absorb := func(ms []Member) {
		for _, m := range ms {
			if m.ID >= 0 && m.ID < cfg.N && peers[m.ID] == "" {
				peers[m.ID] = m.Addr
				known++
			}
		}
	}
	absorb(joinOK.Members)
	deadline := time.Now().Add(cfg.StartTimeout)
	for known < cfg.N {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: node %d discovered %d/%d peers before StartTimeout", cfg.ID, known, cfg.N)
		}
		time.Sleep(5 * time.Millisecond)
		var ack HeartbeatAckMsg
		if err := ctl.roundTrip(KindHeartbeat, HeartbeatMsg{ID: cfg.ID}, &ack); err != nil {
			return nil, fmt.Errorf("cluster: node %d discovery heartbeat: %w", cfg.ID, err)
		}
		absorb(ack.Members)
	}

	// Gossip loop: jittered pacing exactly as internal/live paces its
	// goroutines — each node steps at its own rhythm.
	r := rng.New(cfg.Seed).Fork(0xC1A5).Fork(uint64(cfg.ID))
	pace := cfg.StepEvery/2 + time.Duration(r.Intn(int(cfg.StepEvery)))
	ticker := time.NewTicker(pace)
	defer ticker.Stop()

	rep := &NodeReport{ID: cfg.ID, Addr: tr.Addr(), MetricsAddr: metricsAddr}
	out := sim.NewOutbox(sim.ProcID(cfg.ID), 0, cfg.N)
	inbox := make([]sim.Message, 0, 64)
	lastHB := time.Time{}
	directive := DirectiveRun

	for directive == DirectiveRun {
		<-ticker.C
		t := now()

		if !rep.Crashed && cfg.CrashAfter > 0 && t >= sim.Time(cfg.CrashAfter) {
			rep.Crashed, rep.CrashedAt = true, int64(t)
			tracer.OnCrash(sim.ProcID(cfg.ID), t)
		}

		if rep.Crashed {
			// Gossip plane halted; keep credits moving.
			rep.Drained += drainInbox(tr)
			rep.Quiescent = len(tr.Recv()) == 0
		} else {
			inbox = inbox[:0]
		recv:
			for {
				select {
				case m := <-tr.Recv():
					inbox = append(inbox, m)
				default:
					break recv
				}
			}
			for _, m := range inbox {
				tracer.OnDeliver(m, t)
			}
			out.Reset(sim.ProcID(cfg.ID), t, cfg.N)
			nd.Step(t, inbox, out)
			rep.Steps++
			rep.Received += int64(len(inbox))
			tracer.OnStep(sim.ProcID(cfg.ID), t)
			for _, m := range out.Messages() {
				if cfg.Graph != nil && !cfg.Graph.HasEdge(int(m.From), int(m.To)) {
					rep.OffEdge++
					continue
				}
				tracer.OnSend(m)
				if err := tr.Send(peers[m.To], m); err != nil {
					// A lost send must not earn a credit, or the global
					// sent == received + drained balance never closes.
					rep.SendFails++
					continue
				}
				rep.Sent++
			}
			rep.Quiescent = nd.Quiescent() && len(tr.Recv()) == 0
		}

		if time.Since(lastHB) >= cfg.HeartbeatEvery {
			lastHB = time.Now()
			snap := rec.Snapshot()
			pub.Store(&metricsState{snap: snap, rep: *rep})
			var ack HeartbeatAckMsg
			if err := ctl.roundTrip(KindHeartbeat, heartbeatOf(rep), &ack); err != nil {
				return nil, fmt.Errorf("cluster: node %d heartbeat: %w", cfg.ID, err)
			}
			directive = ack.Directive
		}
	}

	// Drain: consume any stragglers so credits balance, then report and
	// deregister. The driver only issues the directive once the cluster's
	// credit count is stable at zero, so this sweep is normally empty.
	rep.Drained += drainInbox(tr)
	fillStateReport(rep, nd)
	rep.Trace, rep.TraceDropped = trace.Events, trace.Dropped
	var okReply struct{}
	if err := ctl.roundTrip(KindReport, rep, &okReply); err != nil {
		return nil, fmt.Errorf("cluster: node %d report: %w", cfg.ID, err)
	}
	if err := ctl.roundTrip(KindLeave, LeaveMsg{ID: cfg.ID}, &okReply); err != nil {
		return nil, fmt.Errorf("cluster: node %d leave: %w", cfg.ID, err)
	}
	return rep, nil
}

func drainInbox(tr *Transport) (n int64) {
	for {
		select {
		case <-tr.Recv():
			n++
		default:
			return n
		}
	}
}

func heartbeatOf(rep *NodeReport) HeartbeatMsg {
	return HeartbeatMsg{
		ID:        rep.ID,
		Steps:     rep.Steps,
		Sent:      rep.Sent,
		Received:  rep.Received,
		Drained:   rep.Drained,
		OffEdge:   rep.OffEdge,
		Quiescent: rep.Quiescent,
		Crashed:   rep.Crashed,
	}
}

// fillStateReport extracts whichever protocol state interfaces the node
// implements — the same seams the simulator's evaluators read.
func fillStateReport(rep *NodeReport, nd sim.Node) {
	if rh, ok := nd.(core.RumorHolder); ok {
		rep.HasRumors = true
		set := rh.RumorSet()
		rep.RumorCount = set.Count()
		set.ForEach(func(i int) bool {
			rep.Rumors = append(rep.Rumors, i)
			return true
		})
	}
	if inf, ok := nd.(core.Informed); ok {
		rep.HasInformed = true
		rep.Informed = inf.Informed()
	}
	if avg, ok := nd.(core.AverageState); ok {
		rep.HasAvg = true
		rep.Sum, rep.Weight = avg.Estimate()
		rep.Initial = avg.InitialValue()
	}
}

// metricsState is the atomically published view the scrape endpoint
// renders: the telemetry snapshot plus node-level gauges.
type metricsState struct {
	snap telemetry.Snapshot
	rep  NodeReport
}

func serveMetrics(addr string, id int, pub *atomic.Pointer[metricsState]) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: metrics listen %s: %w", addr, err)
	}
	labels := map[string]string{"node": fmt.Sprint(id)}
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.MetricsHandler(func() (telemetry.Snapshot, []telemetry.Gauge) {
		st := pub.Load()
		if st == nil {
			return telemetry.Snapshot{}, nil
		}
		extra := []telemetry.Gauge{
			{Name: "cluster_node_sent", Help: "Messages sent by this cluster node.", Value: float64(st.rep.Sent), Labels: labels},
			{Name: "cluster_node_received", Help: "Messages received by this cluster node.", Value: float64(st.rep.Received), Labels: labels},
			{Name: "cluster_node_drained", Help: "Messages drained post-crash by this cluster node.", Value: float64(st.rep.Drained), Labels: labels},
			{Name: "cluster_node_steps", Help: "Local steps taken by this cluster node.", Value: float64(st.rep.Steps), Labels: labels},
			{Name: "cluster_node_crashed", Help: "1 when this node's gossip plane has crashed.", Value: b2f(st.rep.Crashed), Labels: labels},
			{Name: "cluster_node_quiescent", Help: "1 when this node is locally quiescent.", Value: b2f(st.rep.Quiescent), Labels: labels},
		}
		return st.snap, extra
	}))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
