package cluster

import (
	"sort"

	"repro/internal/sim"
)

// Live event trace: the cluster rides the existing sim.Tracer seam, but
// with wall-clock semantics — in this package sim.Time values are
// nanoseconds since the shared run epoch (all processes live on one host
// clock). That convention lets every tracer-based tool (telemetry
// recorders, NDJSON exporters, the checker idioms) observe a live run
// unchanged, and gives delivery latencies directly as t − SentAt.

// Live event kinds.
const (
	EventSend    = "send"
	EventDeliver = "deliver"
	EventCrash   = "crash"
)

// LiveEvent is one wall-clock event in a node's local trace. T and SentAt
// are nanoseconds since the run epoch.
type LiveEvent struct {
	Kind string `json:"kind"`
	T    int64  `json:"t"`
	// Proc is the acting process: sender for send, receiver for deliver,
	// the crashing process for crash.
	Proc int32 `json:"proc"`
	// Peer is the counterparty: target for send, sender for deliver.
	Peer int32 `json:"peer,omitempty"`
	// SentAt is the sender's send time for deliver events.
	SentAt int64 `json:"sent_at,omitempty"`
}

// TraceRecorder is a sim.Tracer that captures a bounded wall-clock event
// trace. Step events are counted but not stored (they dominate volume and
// the oracles don't need them); past Cap, send/deliver events are dropped
// and counted so a long run degrades gracefully instead of growing
// without bound. Crash events are always retained — the crash-budget and
// post-crash-silence oracles need every one.
type TraceRecorder struct {
	Cap     int
	Events  []LiveEvent
	Steps   int64
	Dropped int64
}

var _ sim.Tracer = (*TraceRecorder)(nil)

// NewTraceRecorder returns a recorder bounded to cap events (0 selects
// the 1<<18 default).
func NewTraceRecorder(cap int) *TraceRecorder {
	if cap <= 0 {
		cap = 1 << 18
	}
	return &TraceRecorder{Cap: cap}
}

func (tr *TraceRecorder) add(e LiveEvent) {
	if len(tr.Events) >= tr.Cap && e.Kind != EventCrash {
		tr.Dropped++
		return
	}
	tr.Events = append(tr.Events, e)
}

// OnStep implements sim.Tracer.
func (tr *TraceRecorder) OnStep(p sim.ProcID, t sim.Time) { tr.Steps++ }

// OnSend implements sim.Tracer.
func (tr *TraceRecorder) OnSend(m sim.Message) {
	tr.add(LiveEvent{Kind: EventSend, T: int64(m.SentAt), Proc: int32(m.From), Peer: int32(m.To)})
}

// OnDeliver implements sim.Tracer.
func (tr *TraceRecorder) OnDeliver(m sim.Message, t sim.Time) {
	tr.add(LiveEvent{Kind: EventDeliver, T: int64(t), Proc: int32(m.To), Peer: int32(m.From), SentAt: int64(m.SentAt)})
}

// OnCrash implements sim.Tracer.
func (tr *TraceRecorder) OnCrash(p sim.ProcID, t sim.Time) {
	tr.add(LiveEvent{Kind: EventCrash, T: int64(t), Proc: int32(p)})
}

// MergeTraces concatenates per-node traces and sorts by wall time (ties
// broken by process then kind for deterministic output from a given set
// of events).
func MergeTraces(traces ...[]LiveEvent) []LiveEvent {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]LiveEvent, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// LatencySummary aggregates delivery latency (deliver.T − deliver.SentAt)
// over a merged trace, in nanoseconds.
type LatencySummary struct {
	Count              int64
	P50, P90, P99, Max int64
}

// Latencies computes the delivery-latency summary of a merged trace.
func Latencies(trace []LiveEvent) LatencySummary {
	var ls []int64
	for _, e := range trace {
		if e.Kind == EventDeliver {
			if d := e.T - e.SentAt; d >= 0 {
				ls = append(ls, d)
			}
		}
	}
	sum := LatencySummary{Count: int64(len(ls))}
	if len(ls) == 0 {
		return sum
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(ls)-1))
		return ls[i]
	}
	sum.P50, sum.P90, sum.P99, sum.Max = q(0.50), q(0.90), q(0.99), ls[len(ls)-1]
	return sum
}
