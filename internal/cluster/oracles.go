package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// Live oracle subset: the scenario catalog's invariants that remain
// judgeable without the simulator's event witness, re-derived from node
// reports and the merged wall-clock trace. The kernel-witness oracles
// (delay clamp, schedule gap, event order) do not transfer — real
// networks make no (d, δ) promise — but crash budget, validity,
// completion, the complexity envelopes (with extra wall-clock slack),
// off-edge hygiene, post-crash silence and credit balance all do.

// Live oracle names.
const (
	LiveOracleCrashBudget     = "live-crash-budget"
	LiveOracleValidity        = "live-validity"
	LiveOracleCompletion      = "live-completion"
	LiveOracleMessageEnvelope = "live-message-envelope"
	LiveOracleTimeEnvelope    = "live-time-envelope"
	LiveOracleOffEdge         = "live-off-edge"
	LiveOraclePostCrash       = "live-post-crash-silence"
	LiveOracleCreditBalance   = "live-credit-balance"
)

// Extra slack the live oracles grant over the simulator's envelopes: the
// Table 1 bounds quantify over the declared (d, δ) adversary, which TCP,
// the Go scheduler and heartbeat pacing only approximate. The message
// envelope inherits the spec bound almost unchanged (send budgets are
// protocol state, not timing); the time envelope absorbs scheduler noise,
// discovery, and the three-sweep quiescence confirmation.
const (
	liveMsgSlack  = 3.0
	liveTimeSlack = 8.0
	liveTimeGrace = 2 * time.Second
)

// Verdict is one live oracle's judgment of a finished run.
type Verdict struct {
	Oracle string `json:"oracle"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// CheckLive judges a finished run against the live oracle subset and
// returns every verdict in catalog order.
func CheckLive(res *Result) []Verdict {
	checks := []struct {
		name  string
		check func(*Result) string
	}{
		{LiveOracleCrashBudget, checkLiveCrashBudget},
		{LiveOracleValidity, checkLiveValidity},
		{LiveOracleCompletion, checkLiveCompletion},
		{LiveOracleMessageEnvelope, checkLiveMessageEnvelope},
		{LiveOracleTimeEnvelope, checkLiveTimeEnvelope},
		{LiveOracleOffEdge, checkLiveOffEdge},
		{LiveOraclePostCrash, checkLivePostCrash},
		{LiveOracleCreditBalance, checkLiveCreditBalance},
	}
	out := make([]Verdict, 0, len(checks))
	for _, c := range checks {
		detail := c.check(res)
		out = append(out, Verdict{Oracle: c.name, OK: detail == "", Detail: detail})
	}
	return out
}

// checkLiveCrashBudget: at most f nodes crashed, and only nodes the
// spec's crash plan names.
func checkLiveCrashBudget(res *Result) string {
	planned := make(map[int]bool)
	for _, e := range res.Spec.Crashes {
		planned[e.Proc] = true
	}
	crashed := 0
	for _, rp := range res.Reports {
		if !rp.Crashed {
			continue
		}
		crashed++
		if !planned[rp.ID] {
			return fmt.Sprintf("node %d crashed but is not in the spec's crash plan", rp.ID)
		}
	}
	if crashed > res.Spec.F {
		return fmt.Sprintf("%d nodes crashed, budget f=%d", crashed, res.Spec.F)
	}
	return ""
}

// checkLiveValidity: no rumor out of thin air — a held rumor's originator
// took at least one local step.
func checkLiveValidity(res *Result) string {
	steps := make(map[int]int64, len(res.Reports))
	for _, rp := range res.Reports {
		steps[rp.ID] = rp.Steps
	}
	if scenario.IsSpreadProtocol(res.Spec.Protocol) {
		for _, rp := range res.Reports {
			if rp.ID != 0 && rp.HasInformed && rp.Informed && steps[0] == 0 {
				return fmt.Sprintf("node %d is informed, but initiator 0 never took a step", rp.ID)
			}
		}
		return ""
	}
	for _, rp := range res.Reports {
		if !rp.HasRumors {
			continue
		}
		for _, r := range rp.Rumors {
			if r != rp.ID && steps[r] == 0 {
				return fmt.Sprintf("node %d holds rumor %d, but %d never took a step", rp.ID, r, r)
			}
		}
	}
	return ""
}

// checkLiveCompletion: scenarios with a completion promise quiesce in
// time and every correct node holds what the promise requires, judged
// from reported node state exactly as the simulator's completion oracle
// judges raw node state.
func checkLiveCompletion(res *Result) string {
	if !res.Spec.ExpectComplete {
		return ""
	}
	if res.TimedOut {
		return fmt.Sprintf("cluster did not quiesce (sent=%d received=%d drained=%d)",
			res.TotalSent, res.TotalReceived, res.TotalDrained)
	}
	return completionDetail(res.Spec, res.Reports)
}

// completionDetail verifies the protocol's completion condition over the
// final node reports, independent of Spec.ExpectComplete: "" when every
// correct node holds what the protocol promises.
func completionDetail(spec scenario.Spec, reports []*NodeReport) string {
	if len(reports) < spec.N {
		return fmt.Sprintf("only %d/%d node reports", len(reports), spec.N)
	}
	byID := make(map[int]*NodeReport, len(reports))
	for _, rp := range reports {
		byID[rp.ID] = rp
	}
	if scenario.IsSpreadProtocol(spec.Protocol) {
		for _, rp := range reports {
			if rp.Crashed {
				continue
			}
			if !rp.HasInformed {
				return fmt.Sprintf("node %d reports no informed bit", rp.ID)
			}
			if !rp.Informed {
				return fmt.Sprintf("correct node %d is uninformed", rp.ID)
			}
		}
		return ""
	}
	if scenario.IsAveragingProtocol(spec.Protocol) {
		mean := 0.0
		for _, rp := range reports {
			if !rp.HasAvg {
				return fmt.Sprintf("node %d reports no averaging state", rp.ID)
			}
			mean += rp.Initial
		}
		mean /= float64(spec.N)
		eps := core.Params{N: spec.N, F: spec.F}.WithDefaults().AvgEpsilon
		for _, rp := range reports {
			if rp.Crashed {
				continue
			}
			if rp.Weight <= 0 {
				return fmt.Sprintf("correct node %d holds non-positive weight %v", rp.ID, rp.Weight)
			}
			if got := rp.Sum / rp.Weight; math.Abs(got-mean) > eps {
				return fmt.Sprintf("correct node %d estimates %v, mean is %v (ε=%v)", rp.ID, got, mean, eps)
			}
		}
		return ""
	}
	need := spec.N/2 + 1
	for _, rp := range reports {
		if rp.Crashed {
			continue
		}
		if !rp.HasRumors {
			return fmt.Sprintf("node %d reports no rumor set", rp.ID)
		}
		if spec.Majority {
			if rp.RumorCount < need {
				return fmt.Sprintf("correct node %d holds %d rumors, majority needs %d", rp.ID, rp.RumorCount, need)
			}
			continue
		}
		held := make(map[int]bool, len(rp.Rumors))
		for _, r := range rp.Rumors {
			held[r] = true
		}
		for r := 0; r < spec.N; r++ {
			if other := byID[r]; other != nil && !other.Crashed && !held[r] {
				return fmt.Sprintf("correct node %d lacks rumor of correct node %d", rp.ID, r)
			}
		}
	}
	return ""
}

// checkLiveMessageEnvelope: total sends stay within the spec's Table 1
// bound times the live slack. Send budgets are protocol state — pacing
// does not change how many messages a node may emit — so the live bound
// tracks the simulator's closely.
func checkLiveMessageEnvelope(res *Result) string {
	bound := scenario.MessageEnvelope(res.Spec)
	if bound <= 0 {
		return ""
	}
	if allowed := bound * liveMsgSlack; float64(res.TotalSent) > allowed {
		return fmt.Sprintf("%d messages sent, live envelope allows %.0f", res.TotalSent, allowed)
	}
	return ""
}

// checkLiveTimeEnvelope: wall clock to quiescence stays within the
// spec's step bound converted at the run's pacing, times the live slack,
// plus a fixed grace for discovery and quiescence confirmation.
func checkLiveTimeEnvelope(res *Result) string {
	bound := scenario.TimeEnvelope(res.Spec)
	if bound <= 0 {
		return ""
	}
	if res.TimedOut {
		return "cluster did not quiesce before the driver timeout"
	}
	allowed := time.Duration(bound*liveTimeSlack*float64(res.StepEvery)) + liveTimeGrace
	if res.QuiesceWall > allowed {
		return fmt.Sprintf("quiesced after %v, live envelope allows %v", res.QuiesceWall, allowed)
	}
	return ""
}

// checkLiveOffEdge: topology-aware protocols never attempt a send along a
// non-edge (the node runtime counts attempts before filtering them).
func checkLiveOffEdge(res *Result) string {
	if res.TotalOffEdge > 0 {
		return fmt.Sprintf("%d sends attempted on non-edges of %s", res.TotalOffEdge, res.Spec.Topology)
	}
	return ""
}

// checkLivePostCrash: no node sends after its own crash. Both events come
// from the same node's local trace, so their order is exact even though
// cross-node clocks only share the host clock.
func checkLivePostCrash(res *Result) string {
	crashAt := make(map[int32]int64)
	for _, e := range res.Trace {
		if e.Kind == EventCrash {
			crashAt[e.Proc] = e.T
		}
	}
	for _, e := range res.Trace {
		if e.Kind != EventSend {
			continue
		}
		if t, ok := crashAt[e.Proc]; ok && e.T > t {
			return fmt.Sprintf("node %d sent to %d at t=%dns, after crashing at t=%dns", e.Proc, e.Peer, e.T, t)
		}
	}
	return ""
}

// checkLiveCreditBalance: the cluster-wide credit count closed — every
// send was eventually received or drained, and none failed in transport.
// This is the harness's own soundness check; a violation means lost
// messages, not a protocol bug.
func checkLiveCreditBalance(res *Result) string {
	if res.TotalSendFails > 0 {
		return fmt.Sprintf("%d sends failed in transport", res.TotalSendFails)
	}
	if res.TotalSent != res.TotalReceived+res.TotalDrained {
		return fmt.Sprintf("credit imbalance: sent=%d received=%d drained=%d",
			res.TotalSent, res.TotalReceived, res.TotalDrained)
	}
	return ""
}
