package cluster_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scenario"
)

func spreadSpec() scenario.Spec {
	return scenario.Spec{
		Protocol: core.NamePush, N: 3, F: 1, D: 2, Delta: 2, Seed: 1,
		Schedule:       scenario.ScheduleSpec{Kind: scenario.SchedEvery},
		Delay:          scenario.DelaySpec{Kind: scenario.DelayFixed, Value: 1},
		Crashes:        []scenario.CrashEvent{{At: 5, Proc: 2}},
		ExpectComplete: true,
	}
}

// spreadResult builds a Result that satisfies every live oracle: 3-node
// push spreading, node 2 crashed on plan, all informed, credits balanced,
// traces consistent. Each violation test perturbs exactly one aspect.
func spreadResult() *cluster.Result {
	rep := func(id int, crashed bool) *cluster.NodeReport {
		return &cluster.NodeReport{
			ID: id, Steps: 10, Sent: 4, Received: 3, Drained: 1,
			Crashed: crashed, HasInformed: true, Informed: true, Quiescent: true,
		}
	}
	res := &cluster.Result{
		Spec:        spreadSpec(),
		Mode:        cluster.ModeInproc,
		StepEvery:   time.Millisecond,
		Wall:        20 * time.Millisecond,
		QuiesceWall: 15 * time.Millisecond,
		Reports:     []*cluster.NodeReport{rep(0, false), rep(1, false), rep(2, true)},
		Trace: []cluster.LiveEvent{
			{Kind: cluster.EventSend, T: 50, Proc: 2, Peer: 0},
			{Kind: cluster.EventCrash, T: 100, Proc: 2},
			{Kind: cluster.EventDeliver, T: 120, Proc: 0, Peer: 2, SentAt: 50},
		},
		TotalSteps: 30, TotalSent: 12, TotalReceived: 9, TotalDrained: 3,
	}
	return res
}

func verdictFor(t *testing.T, res *cluster.Result, oracle string) cluster.Verdict {
	t.Helper()
	for _, v := range cluster.CheckLive(res) {
		if v.Oracle == oracle {
			return v
		}
	}
	t.Fatalf("oracle %s missing from verdicts", oracle)
	return cluster.Verdict{}
}

func TestCheckLiveAllPass(t *testing.T) {
	for _, v := range cluster.CheckLive(spreadResult()) {
		if !v.OK {
			t.Errorf("oracle %s rejects a clean run: %s", v.Oracle, v.Detail)
		}
	}
}

func TestCheckLiveViolations(t *testing.T) {
	cases := []struct {
		oracle  string
		perturb func(*cluster.Result)
	}{
		{cluster.LiveOracleCrashBudget, func(r *cluster.Result) {
			r.Reports[1].Crashed = true // not in the crash plan
		}},
		{cluster.LiveOracleValidity, func(r *cluster.Result) {
			r.Reports[0].Steps = 0 // informed peers, but initiator never stepped
		}},
		{cluster.LiveOracleCompletion, func(r *cluster.Result) {
			r.Reports[1].Informed = false
		}},
		{cluster.LiveOracleCompletion, func(r *cluster.Result) {
			r.TimedOut = true
		}},
		{cluster.LiveOracleMessageEnvelope, func(r *cluster.Result) {
			r.TotalSent = 1 << 40
		}},
		{cluster.LiveOracleTimeEnvelope, func(r *cluster.Result) {
			r.QuiesceWall = 10 * time.Hour
		}},
		{cluster.LiveOracleOffEdge, func(r *cluster.Result) {
			r.TotalOffEdge = 2
		}},
		{cluster.LiveOraclePostCrash, func(r *cluster.Result) {
			r.Trace = append(r.Trace, cluster.LiveEvent{
				Kind: cluster.EventSend, T: 200, Proc: 2, Peer: 1,
			})
		}},
		{cluster.LiveOracleCreditBalance, func(r *cluster.Result) {
			r.TotalReceived--
		}},
		{cluster.LiveOracleCreditBalance, func(r *cluster.Result) {
			r.TotalSendFails = 1
		}},
	}
	for _, c := range cases {
		res := spreadResult()
		c.perturb(res)
		if v := verdictFor(t, res, c.oracle); v.OK {
			t.Errorf("oracle %s accepted a violating run", c.oracle)
		}
	}
}

// A crashed node that missed the rumor is not a completion failure —
// the promise only covers correct nodes.
func TestCheckLiveCompletionSkipsCrashed(t *testing.T) {
	res := spreadResult()
	res.Reports[2].Informed = false
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); !v.OK {
		t.Errorf("completion blamed a crashed node: %s", v.Detail)
	}
	// Without the completion promise the oracle is mute even for correct
	// nodes (naive's legitimate failures).
	res = spreadResult()
	res.Reports[1].Informed = false
	res.Spec.ExpectComplete = false
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); !v.OK {
		t.Errorf("completion fired without an ExpectComplete promise: %s", v.Detail)
	}
}

func TestCheckLiveAveragingCompletion(t *testing.T) {
	spec := scenario.Spec{
		Protocol: core.NameAverage, N: 2, F: 0, D: 2, Delta: 2, Seed: 1,
		Schedule:       scenario.ScheduleSpec{Kind: scenario.SchedEvery},
		Delay:          scenario.DelaySpec{Kind: scenario.DelayFixed, Value: 1},
		ExpectComplete: true,
	}
	rep := func(id int, initial, sum, weight float64) *cluster.NodeReport {
		return &cluster.NodeReport{
			ID: id, Steps: 5, HasAvg: true,
			Initial: initial, Sum: sum, Weight: weight, Quiescent: true,
		}
	}
	res := &cluster.Result{
		Spec: spec, Mode: cluster.ModeInproc, StepEvery: time.Millisecond,
		QuiesceWall: time.Millisecond,
		// Initials 1 and 3: both nodes converged on the mean 2.
		Reports: []*cluster.NodeReport{rep(0, 1, 2, 1), rep(1, 3, 4, 2)},
	}
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); !v.OK {
		t.Fatalf("converged averaging run rejected: %s", v.Detail)
	}

	res.Reports[1].Sum = 40 // estimate 20, mean 2
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); v.OK {
		t.Error("diverged averaging estimate accepted")
	}
	res.Reports[1].Sum, res.Reports[1].Weight = 0, 0
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); v.OK {
		t.Error("non-positive weight accepted")
	}
}

func TestCheckLiveMajorityCompletion(t *testing.T) {
	spec := spreadSpec()
	spec.Protocol = core.NameTEARS
	spec.Majority = true
	rep := func(id, count int) *cluster.NodeReport {
		return &cluster.NodeReport{
			ID: id, Steps: 5, HasRumors: true, RumorCount: count, Quiescent: true,
		}
	}
	res := &cluster.Result{
		Spec: spec, Mode: cluster.ModeInproc, StepEvery: time.Millisecond,
		QuiesceWall: time.Millisecond,
		Reports:     []*cluster.NodeReport{rep(0, 2), rep(1, 3), rep(2, 2)},
	}
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); !v.OK {
		t.Fatalf("majority-complete run rejected: %s", v.Detail)
	}
	res.Reports[0].RumorCount = 1 // needs n/2+1 = 2
	if v := verdictFor(t, res, cluster.LiveOracleCompletion); v.OK {
		t.Error("sub-majority rumor count accepted")
	}
}

func TestEffectiveCrashes(t *testing.T) {
	spec := spreadSpec()
	spec.N, spec.F = 8, 2
	spec.Crashes = []scenario.CrashEvent{
		{At: 20, Proc: 1}, // over budget once the earlier events land
		{At: 5, Proc: 3},
		{At: 7, Proc: 3}, // duplicate process
		{At: 9, Proc: 0},
	}
	plan := cluster.EffectiveCrashes(spec)
	want := map[int]int64{3: 5, 0: 9}
	if len(plan) != len(want) {
		t.Fatalf("plan %v, want %v", plan, want)
	}
	for p, at := range want {
		if plan[p] != at {
			t.Errorf("proc %d crashes at %d, want %d", p, plan[p], at)
		}
	}
}

func TestMergeTracesAndLatencies(t *testing.T) {
	a := []cluster.LiveEvent{
		{Kind: cluster.EventSend, T: 30, Proc: 0, Peer: 1},
		{Kind: cluster.EventDeliver, T: 50, Proc: 0, Peer: 1, SentAt: 10},
	}
	b := []cluster.LiveEvent{
		{Kind: cluster.EventDeliver, T: 40, Proc: 1, Peer: 0, SentAt: 30},
		{Kind: cluster.EventDeliver, T: 35, Proc: 1, Peer: 0, SentAt: 40}, // clock skew: negative, excluded
	}
	merged := cluster.MergeTraces(a, b)
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].T > merged[i].T {
			t.Fatalf("merged trace unsorted at %d: %+v", i, merged)
		}
	}
	lat := cluster.Latencies(merged)
	if lat.Count != 2 {
		t.Fatalf("latency count %d, want 2 (negative sample excluded)", lat.Count)
	}
	if lat.Max != 40 || lat.P50 != 10 {
		t.Errorf("latency p50=%d max=%d, want 10 and 40", lat.P50, lat.Max)
	}
}

func TestBenchLiveValidate(t *testing.T) {
	res := spreadResult()
	res.Verdicts = cluster.CheckLive(res)
	res.Passed = true
	b := cluster.NewBenchLive(res)
	if err := cluster.ValidateBenchLive(b); err != nil {
		t.Fatalf("clean artifact rejected: %v", err)
	}

	cases := []struct {
		name    string
		perturb func(*cluster.BenchLive)
	}{
		{"schema", func(b *cluster.BenchLive) { b.Schema = "repro.bench.live/v0" }},
		{"mode", func(b *cluster.BenchLive) { b.Mode = "imaginary" }},
		{"row-count", func(b *cluster.BenchLive) { b.Nodes = b.Nodes[:1] }},
		{"row-id", func(b *cluster.BenchLive) { b.Nodes[1].ID = 7 }},
		{"totals", func(b *cluster.BenchLive) { b.Messages++ }},
		{"crash-budget", func(b *cluster.BenchLive) {
			b.Nodes[0].Crashed = true
			b.Nodes[1].Crashed = true
		}},
		{"no-verdicts", func(b *cluster.BenchLive) { b.Verdicts = nil }},
		{"passed-lie", func(b *cluster.BenchLive) {
			vs := append([]cluster.Verdict(nil), b.Verdicts...)
			vs[0].OK = false
			b.Verdicts = vs
			b.Passed = true
		}},
		{"negative", func(b *cluster.BenchLive) { b.WallMS = -1 }},
	}
	for _, c := range cases {
		bad := cluster.NewBenchLive(res)
		c.perturb(&bad)
		if err := cluster.ValidateBenchLive(bad); err == nil {
			t.Errorf("%s: corrupted artifact validated", c.name)
		}
	}

	path := t.TempDir() + "/BENCH_live.json"
	if err := cluster.WriteBenchLive(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.ReadBenchLive(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != b.Label || got.Messages != b.Messages || len(got.Nodes) != len(b.Nodes) {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", got, b)
	}
}
