package cluster_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		kind byte
		body []byte
	}{
		{cluster.KindGossip, []byte("payload")},
		{cluster.KindJoin, []byte(`{"id":3}`)},
		{cluster.KindLeaveOK, nil},
	}
	var buf bytes.Buffer
	for _, c := range cases {
		if err := cluster.WriteFrame(&buf, c.kind, c.body); err != nil {
			t.Fatalf("write kind %#x: %v", c.kind, err)
		}
	}
	for _, c := range cases {
		kind, body, err := cluster.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read kind %#x: %v", c.kind, err)
		}
		if kind != c.kind || !bytes.Equal(body, c.body) {
			t.Errorf("frame (%#x, %q) read back as (%#x, %q)", c.kind, c.body, kind, body)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if err := cluster.WriteFrame(&buf, cluster.KindHeartbeat, []byte("x")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	badMagic := frame()
	badMagic[4] ^= 0xff
	if _, _, err := cluster.ReadFrame(bytes.NewReader(badMagic)); err == nil {
		t.Error("bad magic accepted")
	}

	badVersion := frame()
	badVersion[8] = cluster.WireVersion + 1
	if _, _, err := cluster.ReadFrame(bytes.NewReader(badVersion)); err == nil {
		t.Error("future envelope version accepted")
	}

	oversize := frame()
	binary.BigEndian.PutUint32(oversize[0:4], cluster.MaxFrame+1)
	if _, _, err := cluster.ReadFrame(bytes.NewReader(oversize)); err == nil {
		t.Error("oversized frame length accepted")
	}

	undersize := frame()
	binary.BigEndian.PutUint32(undersize[0:4], 2) // shorter than the envelope header
	if _, _, err := cluster.ReadFrame(bytes.NewReader(undersize)); err == nil {
		t.Error("undersized frame length accepted")
	}

	truncated := frame()
	if _, _, err := cluster.ReadFrame(bytes.NewReader(truncated[:len(truncated)-1])); err == nil {
		t.Error("truncated frame accepted")
	}

	if err := cluster.WriteFrame(&bytes.Buffer{}, cluster.KindGossip, make([]byte, cluster.MaxFrame)); err == nil {
		t.Error("MaxFrame-exceeding body written")
	}
}

func TestGossipEnvelopeRoundTrip(t *testing.T) {
	want := sim.Message{
		From:    3,
		To:      11,
		SentAt:  1_234_567_890,
		Payload: core.AvgPayload{S: 2.5, W: 0.5},
	}
	body, err := cluster.AppendGossip(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.DecodeGossip(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != want.From || got.To != want.To || got.SentAt != want.SentAt {
		t.Errorf("header round-trip: got %+v, want %+v", got, want)
	}
	if !core.WirePayloadEquals(got.Payload, want.Payload) {
		t.Errorf("payload round-trip: got %#v, want %#v", got.Payload, want.Payload)
	}

	if _, err := cluster.DecodeGossip(body[:10]); err == nil {
		t.Error("truncated gossip body accepted")
	}
	if _, err := cluster.AppendGossip(nil, sim.Message{Payload: struct{}{}}); err == nil {
		t.Error("unencodable payload accepted")
	}
}
