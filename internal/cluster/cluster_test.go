package cluster_test

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scenario"
)

// runLive replays spec in-process with tight pacing and requires every
// live oracle to accept. These are the harness's end-to-end tests: real
// TCP listeners on loopback, real goroutine nodes, the binary wire codec,
// the registry control plane and the quiescence detector all in the loop.
func runLive(t *testing.T, spec scenario.Spec) *cluster.Result {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := cluster.Run(ctx, spec, cluster.Options{
		StepEvery: 200 * time.Microsecond,
		Heartbeat: 10 * time.Millisecond,
		Timeout:   45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("cluster did not quiesce: sent=%d received=%d drained=%d",
			res.TotalSent, res.TotalReceived, res.TotalDrained)
	}
	for _, v := range res.Verdicts {
		if !v.OK {
			t.Errorf("oracle %s: %s", v.Oracle, v.Detail)
		}
	}
	if !res.Passed {
		t.Fatal("run not passed")
	}
	return res
}

func liveSpec(proto string, n, f int) scenario.Spec {
	spec := scenario.Spec{
		Protocol: proto, N: n, F: f, D: 2, Delta: 2, Seed: 42,
		Schedule:       scenario.ScheduleSpec{Kind: scenario.SchedEvery},
		Delay:          scenario.DelaySpec{Kind: scenario.DelayFixed, Value: 1},
		Majority:       proto == core.NameTEARS,
		ExpectComplete: !(scenario.IsAveragingProtocol(proto) && f > 0),
	}
	for i := 0; i < f; i++ {
		spec.Crashes = append(spec.Crashes, scenario.CrashEvent{At: int64(10 + 7*i), Proc: n - 1 - i})
	}
	return spec
}

func TestLiveEARSWithCrashes(t *testing.T) {
	res := runLive(t, liveSpec(core.NameEARS, 10, 2))
	crashed := 0
	for _, rp := range res.Reports {
		if rp.Crashed {
			crashed++
		}
	}
	if crashed != 2 {
		t.Errorf("%d nodes crashed, plan had 2", crashed)
	}
	if !res.Completed {
		t.Error("run not marked completed")
	}
	if res.TotalSent == 0 || res.Latency.Count == 0 {
		t.Errorf("empty run: sent=%d latency samples=%d", res.TotalSent, res.Latency.Count)
	}
}

func TestLivePullSpread(t *testing.T) {
	res := runLive(t, liveSpec(core.NamePull, 8, 0))
	for _, rp := range res.Reports {
		if !rp.HasInformed || !rp.Informed {
			t.Errorf("node %d uninformed after a pull run", rp.ID)
		}
	}
}

func TestLiveAveraging(t *testing.T) {
	res := runLive(t, liveSpec(core.NameAverage, 8, 0))
	if !res.Completed {
		t.Error("crash-free averaging run did not converge on the mean")
	}
}

func TestLiveRingTopology(t *testing.T) {
	spec := liveSpec(core.NameSEARS, 8, 0)
	spec.Topology = "ring"
	res := runLive(t, spec)
	if res.TotalOffEdge != 0 {
		t.Errorf("%d off-edge sends on a ring", res.TotalOffEdge)
	}
}

// Synchronous baselines have no wire codec; the driver must reject them
// up front rather than hang a cluster.
func TestLiveRejectsSyncProtocols(t *testing.T) {
	spec := liveSpec("sync-gossip", 4, 0)
	spec.ExpectComplete = false
	if err := spec.Validate(); err != nil {
		t.Skipf("sync-gossip not a valid spec protocol here: %v", err)
	}
	if _, err := cluster.Run(context.Background(), spec, cluster.Options{}); err == nil {
		t.Fatal("driver accepted a simulator-only protocol")
	}
}

// control is a bare-TCP control-plane client for registry tests.
type control struct {
	t    *testing.T
	conn net.Conn
}

func dialRegistry(t *testing.T, addr string) *control {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &control{t: t, conn: conn}
}

func (c *control) roundTrip(kind byte, msg, reply any) {
	c.t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := cluster.WriteFrame(c.conn, kind, body); err != nil {
		c.t.Fatal(err)
	}
	gotKind, gotBody, err := cluster.ReadFrame(c.conn)
	if err != nil {
		c.t.Fatal(err)
	}
	if gotKind != kind+1 {
		c.t.Fatalf("reply kind %#x to request %#x", gotKind, kind)
	}
	if reply != nil {
		if err := json.Unmarshal(gotBody, reply); err != nil {
			c.t.Fatal(err)
		}
	}
}

func TestRegistryControlPlane(t *testing.T) {
	reg, err := cluster.NewRegistry("127.0.0.1:0", 12345)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	c0 := dialRegistry(t, reg.Addr())
	var ok cluster.JoinOKMsg
	c0.roundTrip(cluster.KindJoin, cluster.JoinMsg{ID: 0, Addr: "127.0.0.1:1000"}, &ok)
	if ok.EpochUnixNano != 12345 {
		t.Fatalf("epoch %d, want 12345", ok.EpochUnixNano)
	}
	c1 := dialRegistry(t, reg.Addr())
	c1.roundTrip(cluster.KindJoin, cluster.JoinMsg{ID: 1, Addr: "127.0.0.1:1001"}, &ok)
	if len(ok.Members) != 2 {
		t.Fatalf("second joiner sees %d members, want 2", len(ok.Members))
	}

	var ack cluster.HeartbeatAckMsg
	c0.roundTrip(cluster.KindHeartbeat,
		cluster.HeartbeatMsg{ID: 0, Steps: 3, Sent: 5, Received: 4, Drained: 1, Quiescent: true}, &ack)
	if ack.Directive != cluster.DirectiveRun {
		t.Fatalf("directive %q, want run", ack.Directive)
	}
	c1.roundTrip(cluster.KindHeartbeat,
		cluster.HeartbeatMsg{ID: 1, Steps: 2, Sent: 5, Received: 5, Drained: 0, Quiescent: true}, &ack)

	s := reg.Sweep()
	if s.Joined != 2 || !s.HaveAllHB || !s.AllQuiet {
		t.Fatalf("sweep %+v after two quiescent heartbeats", s)
	}
	if s.Sent != 10 || s.Received != 9 || s.Drained != 1 || s.MinLiveSteps != 2 {
		t.Fatalf("sweep counters %+v", s)
	}

	reg.SetDirective(cluster.DirectiveDrain)
	c0.roundTrip(cluster.KindHeartbeat, cluster.HeartbeatMsg{ID: 0, Quiescent: true}, &ack)
	if ack.Directive != cluster.DirectiveDrain {
		t.Fatalf("directive %q after SetDirective, want drain", ack.Directive)
	}

	c0.roundTrip(cluster.KindReport, cluster.NodeReport{ID: 0, Steps: 3}, &struct{}{})
	if reg.ReportCount() != 1 {
		t.Fatalf("report count %d, want 1", reg.ReportCount())
	}
	c0.roundTrip(cluster.KindLeave, cluster.LeaveMsg{ID: 0}, &struct{}{})
	if s := reg.Sweep(); s.Left != 1 {
		t.Fatalf("sweep %+v after one leave", s)
	}

	// Node 1 stops heartbeating: with a tiny TTL it must show up stale;
	// node 0 left and must not.
	time.Sleep(5 * time.Millisecond)
	if stale := reg.Stale(time.Nanosecond); len(stale) != 1 || stale[0] != 1 {
		t.Fatalf("stale %v, want [1]", stale)
	}
	if stale := reg.Stale(time.Hour); len(stale) != 0 {
		t.Fatalf("stale %v with a generous TTL", stale)
	}
}
