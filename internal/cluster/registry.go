package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Registry is the cluster's control plane: a TCP service nodes join on
// startup, heartbeat for liveness and discovery, stream their final
// report to, and leave on shutdown. It is deliberately passive — it
// records state and answers requests; the driver reads its snapshots to
// decide quiescence and flips the run directive. Each node holds one
// persistent control connection and speaks strict request/response over
// it, so a connection handler is a simple sequential loop.
type Registry struct {
	ln    net.Listener
	epoch int64

	mu        sync.Mutex
	members   map[int]*memberState
	directive string
	reports   map[int]*NodeReport
	conns     map[net.Conn]struct{}

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type memberState struct {
	Member
	lastSeen time.Time
	hb       HeartbeatMsg
	hasHB    bool
	left     bool
}

// NewRegistry starts a registry listening on addr ("127.0.0.1:0" for an
// ephemeral port). epoch is the shared run epoch (UnixNano) distributed
// to joiners; all live timestamps are nanoseconds since it.
func NewRegistry(addr string, epoch int64) (*Registry, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: registry listen %s: %w", addr, err)
	}
	r := &Registry{
		ln:        ln,
		epoch:     epoch,
		members:   make(map[int]*memberState),
		directive: DirectiveRun,
		reports:   make(map[int]*NodeReport),
		conns:     make(map[net.Conn]struct{}),
		closed:    make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the registry's concrete address.
func (r *Registry) Addr() string { return r.ln.Addr().String() }

// Epoch returns the shared run epoch (UnixNano).
func (r *Registry) Epoch() int64 { return r.epoch }

func (r *Registry) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.handleConn(conn)
	}
}

func (r *Registry) handleConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()
	for {
		kind, body, err := ReadFrame(conn)
		if err != nil {
			return
		}
		var replyKind byte
		var reply any
		switch kind {
		case KindJoin:
			var msg JoinMsg
			if err := json.Unmarshal(body, &msg); err != nil {
				return
			}
			replyKind, reply = KindJoinOK, r.join(msg)
		case KindHeartbeat:
			var msg HeartbeatMsg
			if err := json.Unmarshal(body, &msg); err != nil {
				return
			}
			replyKind, reply = KindHeartbeatAck, r.heartbeat(msg)
		case KindReport:
			var rep NodeReport
			if err := json.Unmarshal(body, &rep); err != nil {
				return
			}
			r.report(&rep)
			replyKind, reply = KindReportOK, struct{}{}
		case KindLeave:
			var msg LeaveMsg
			if err := json.Unmarshal(body, &msg); err != nil {
				return
			}
			r.leave(msg.ID)
			replyKind, reply = KindLeaveOK, struct{}{}
		default:
			return // unknown control request: drop the connection
		}
		out, err := json.Marshal(reply)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, replyKind, out); err != nil {
			return
		}
	}
}

func (r *Registry) join(msg JoinMsg) JoinOKMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members[msg.ID] = &memberState{
		Member:   Member{ID: msg.ID, Addr: msg.Addr, MetricsAddr: msg.MetricsAddr},
		lastSeen: time.Now(),
	}
	return JoinOKMsg{EpochUnixNano: r.epoch, Members: r.memberListLocked()}
}

func (r *Registry) heartbeat(msg HeartbeatMsg) HeartbeatAckMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ms, ok := r.members[msg.ID]; ok {
		ms.lastSeen = time.Now()
		ms.hb = msg
		ms.hasHB = true
	}
	return HeartbeatAckMsg{Directive: r.directive, Members: r.memberListLocked()}
}

func (r *Registry) report(rep *NodeReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reports[rep.ID] = rep
}

func (r *Registry) leave(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ms, ok := r.members[id]; ok {
		ms.left = true
	}
}

func (r *Registry) memberListLocked() []Member {
	out := make([]Member, 0, len(r.members))
	for _, ms := range r.members {
		if !ms.left {
			out = append(out, ms.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetDirective flips the run directive delivered with the next heartbeat
// ack of every node.
func (r *Registry) SetDirective(d string) {
	r.mu.Lock()
	r.directive = d
	r.mu.Unlock()
}

// SweepStats is one quiescence-detector sweep over the registry's view of
// the cluster: the global credit count (Sent vs Received+Drained) plus
// per-node liveness, mirroring internal/live's in-memory detector.
type SweepStats struct {
	Joined    int
	Left      int
	Crashed   int
	HaveAllHB bool // every non-left member has heartbeated at least once
	AllQuiet  bool // every non-left member reports Quiescent (crashed nodes report quiescent once drained)
	// MinLiveSteps is the minimum step count over non-crashed members.
	// Quiescence requires it >= 1: a spreading protocol's uninformed
	// processes are quiescent from birth, so without this floor a sweep
	// could declare the cluster done before the initiator's first step.
	MinLiveSteps int64
	Steps        int64
	Sent         int64
	Received     int64
	Drained      int64
	OffEdge      int64
}

// Sweep snapshots the detector's inputs.
func (r *Registry) Sweep() SweepStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := SweepStats{HaveAllHB: true, AllQuiet: true, MinLiveSteps: -1}
	for _, ms := range r.members {
		s.Joined++
		if ms.left {
			s.Left++
		}
		if !ms.hasHB {
			s.HaveAllHB = false
			s.AllQuiet = false
			s.MinLiveSteps = 0
			continue
		}
		if ms.hb.Crashed {
			s.Crashed++
		} else if s.MinLiveSteps < 0 || ms.hb.Steps < s.MinLiveSteps {
			s.MinLiveSteps = ms.hb.Steps
		}
		if !ms.hb.Quiescent && !ms.left {
			s.AllQuiet = false
		}
		s.Steps += ms.hb.Steps
		s.Sent += ms.hb.Sent
		s.Received += ms.hb.Received
		s.Drained += ms.hb.Drained
		s.OffEdge += ms.hb.OffEdge
	}
	return s
}

// Stale returns the IDs of members whose last heartbeat is older than ttl
// and that have not left — candidates for "process died without crashing
// on schedule", surfaced in driver timeouts.
func (r *Registry) Stale(ttl time.Duration) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := time.Now().Add(-ttl)
	var out []int
	for id, ms := range r.members {
		if !ms.left && ms.lastSeen.Before(cutoff) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// ReportCount returns how many final reports have arrived.
func (r *Registry) ReportCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.reports)
}

// Reports returns the collected final reports ordered by node ID.
func (r *Registry) Reports() []*NodeReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*NodeReport, 0, len(r.reports))
	for _, rep := range r.reports {
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close shuts the registry listener and waits for handlers to finish.
func (r *Registry) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.ln.Close()
		r.mu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.mu.Unlock()
	})
	r.wg.Wait()
}
