// Package cluster promotes the single-process live runtime (internal/live)
// into a real networked gossip cluster: every process owns a TCP listener,
// messages travel as length-prefixed versioned binary envelopes carrying
// the simulator's own payload snapshots, and a registry provides join/
// leave, heartbeat health and peer discovery. The point is not a new
// protocol stack — the protocol nodes are exactly the sim.Node state
// machines the simulator and the fuzzer execute — but a new adversary:
// real network delay, OS scheduling and churn replace the declared
// oblivious schedule, and the resulting live event trace is judged
// against a live-adapted subset of the scenario oracle catalog. The same
// ScenarioSpec that runs in the simulator replays over the cluster
// (scenario's live replay seam), which is what makes the production path
// simulation-validated.
//
// Layering:
//
//	wire.go      framed, versioned envelopes (data plane binary, control plane JSON)
//	transport.go per-node TCP listener + dialing with retry/backoff
//	registry.go  membership, heartbeat health, discovery, run control
//	node.go      per-node lifecycle: listen → register → gossip → drain → deregister
//	trace.go     wall-clock live event trace riding the sim.Tracer seam
//	driver.go    cluster orchestration (in-process or multi-process), quiescence
//	oracles.go   live-adapted oracle subset over the finished run
//	bench.go     the schema-versioned BENCH_live.json artifact
package cluster

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// Wire framing: every connection carries a stream of frames, each a
// big-endian uint32 length followed by that many body bytes. A body is a
// versioned envelope: magic (4 bytes), version (1), kind (1), then the
// kind-specific payload. Gossip envelopes (the data plane) are fully
// binary; registry envelopes (the control plane) carry JSON — they are
// low-rate and benefit from being debuggable on the wire.
const (
	// WireMagic guards against cross-protocol connections ("RGOS").
	WireMagic = 0x52474f53
	// WireVersion is the envelope version; bumped on incompatible change.
	WireVersion = 1
	// MaxFrame bounds a frame body. Gossip payloads are O(n²) bits in the
	// worst case (the informed-list matrix); 16 MiB covers n ≈ 11000 and
	// shields the decoder from corrupt lengths.
	MaxFrame = 16 << 20

	envelopeHeader = 6 // magic(4) + version(1) + kind(1)
)

// Envelope kinds.
const (
	// KindGossip is the data plane: a protocol message between nodes.
	KindGossip = 0x01
	// Control plane (registry ⇄ node), JSON bodies.
	KindJoin         = 0x10 // node → registry: register id + addresses
	KindJoinOK       = 0x11 // registry → node: accepted, current members
	KindHeartbeat    = 0x12 // node → registry: liveness + counters
	KindHeartbeatAck = 0x13 // registry → node: directive + members
	KindLeave        = 0x14 // node → registry: deregister
	KindLeaveOK      = 0x15 // registry → node: goodbye
	KindReport       = 0x16 // node → registry: final NodeReport (JSON)
	KindReportOK     = 0x17 // registry → node: report accepted
)

// WriteFrame writes one framed envelope.
func WriteFrame(w io.Writer, kind byte, body []byte) error {
	if len(body)+envelopeHeader > MaxFrame {
		return fmt.Errorf("cluster: frame body %d bytes exceeds MaxFrame", len(body))
	}
	hdr := make([]byte, 4+envelopeHeader, 4+envelopeHeader+len(body))
	binary.BigEndian.PutUint32(hdr[0:4], uint32(envelopeHeader+len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], WireMagic)
	hdr[8] = WireVersion
	hdr[9] = kind
	_, err := w.Write(append(hdr, body...))
	return err
}

// ReadFrame reads one framed envelope, returning its kind and body. It
// rejects bad magic, unknown versions and oversized frames before
// allocating.
func ReadFrame(r io.Reader) (kind byte, body []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < envelopeHeader || n > MaxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	if got := binary.BigEndian.Uint32(buf[0:4]); got != WireMagic {
		return 0, nil, fmt.Errorf("cluster: bad magic %08x", got)
	}
	if buf[4] != WireVersion {
		return 0, nil, fmt.Errorf("cluster: envelope version %d, this build speaks %d", buf[4], WireVersion)
	}
	return buf[5], buf[6:], nil
}

// Gossip envelope body: from(4) to(4) sentAt(8) payload. sentAt is the
// sender's wall clock in nanoseconds since the run epoch — all cluster
// processes share one host clock (loopback deployment), so receivers
// compute delivery latency directly.
const gossipHeader = 16

// AppendGossip encodes a data-plane message into an envelope body.
func AppendGossip(dst []byte, m sim.Message) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.SentAt))
	return core.AppendPayload(dst, m.Payload)
}

// DecodeGossip decodes a data-plane envelope body.
func DecodeGossip(body []byte) (sim.Message, error) {
	if len(body) < gossipHeader {
		return sim.Message{}, fmt.Errorf("cluster: gossip body truncated (%d bytes)", len(body))
	}
	pl, err := core.DecodePayload(body[gossipHeader:])
	if err != nil {
		return sim.Message{}, err
	}
	return sim.Message{
		From:    sim.ProcID(int32(binary.BigEndian.Uint32(body[0:4]))),
		To:      sim.ProcID(int32(binary.BigEndian.Uint32(body[4:8]))),
		SentAt:  sim.Time(int64(binary.BigEndian.Uint64(body[8:16]))),
		Payload: pl,
	}, nil
}

// Control-plane message bodies (JSON).

// Member is one registered node as the registry advertises it.
type Member struct {
	ID          int    `json:"id"`
	Addr        string `json:"addr"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// JoinMsg registers a node.
type JoinMsg struct {
	ID          int    `json:"id"`
	Addr        string `json:"addr"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// JoinOKMsg acknowledges a join: the shared run epoch and the membership
// known so far.
type JoinOKMsg struct {
	EpochUnixNano int64    `json:"epoch_unix_nano"`
	Members       []Member `json:"members"`
}

// HeartbeatMsg carries a node's liveness and credit counters. Sent and
// Received+Drained are the two sides of the cluster-wide credit count the
// driver's quiescence detector balances.
type HeartbeatMsg struct {
	ID        int   `json:"id"`
	Steps     int64 `json:"steps"`
	Sent      int64 `json:"sent"`
	Received  int64 `json:"received"`
	Drained   int64 `json:"drained"`
	OffEdge   int64 `json:"off_edge"`
	Quiescent bool  `json:"quiescent"`
	Crashed   bool  `json:"crashed"`
}

// Run directives carried by heartbeat acks.
const (
	DirectiveRun   = "run"   // keep gossiping
	DirectiveDrain = "drain" // stop stepping, flush, report, deregister
)

// HeartbeatAckMsg is the registry's heartbeat response: the current
// directive and (until the node has seen everyone) the membership.
type HeartbeatAckMsg struct {
	Directive string   `json:"directive"`
	Members   []Member `json:"members,omitempty"`
}

// LeaveMsg deregisters a node.
type LeaveMsg struct {
	ID int `json:"id"`
}
