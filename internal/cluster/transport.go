package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// Transport is one node's data-plane endpoint: a TCP listener feeding a
// decoded inbox channel, plus a cache of outbound connections with dial
// retry and exponential backoff. The model's links are reliable and
// unbounded; TCP provides reliability and ordering, the buffered inbox
// plus the receiver's drain loop provide "unbounded" in practice, and the
// backoff absorbs the join race where a peer's listener is registered but
// not yet accepting.
type Transport struct {
	ln    net.Listener
	inbox chan sim.Message

	mu    sync.Mutex
	conns map[string]net.Conn

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// dialAttempts/dialBackoff parameterize Send's retry loop: attempts
	// are spaced dialBackoff, 2·dialBackoff, 4·dialBackoff, ...
	dialAttempts int
	dialBackoff  time.Duration
}

// NewTransport opens a listener on addr ("127.0.0.1:0" for an ephemeral
// loopback port) with an inbox buffered to inboxCap decoded messages.
func NewTransport(addr string, inboxCap int) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	if inboxCap < 64 {
		inboxCap = 64
	}
	t := &Transport{
		ln:           ln,
		inbox:        make(chan sim.Message, inboxCap),
		conns:        make(map[string]net.Conn),
		closed:       make(chan struct{}),
		dialAttempts: 8,
		dialBackoff:  5 * time.Millisecond,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's concrete address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Recv returns the decoded inbound message channel.
func (t *Transport) Recv() <-chan sim.Message { return t.inbox }

// acceptLoop accepts peer connections; each gets a reader goroutine that
// decodes gossip frames into the inbox until EOF.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	for {
		kind, body, err := ReadFrame(conn)
		if err != nil {
			return // EOF, peer close, or garbage: drop the connection
		}
		if kind != KindGossip {
			continue // data-plane connections carry gossip only
		}
		m, err := DecodeGossip(body)
		if err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.closed:
			return
		}
	}
}

// ErrTransportClosed reports a send on a closed transport.
var ErrTransportClosed = errors.New("cluster: transport closed")

// Send encodes m and ships it to the peer at addr, dialing (with retry
// and exponential backoff) or re-dialing as needed. Writes to one peer
// are serialized by the connection cache lock; the per-node send rate is
// one outbox per paced step, so contention is not a concern.
func (t *Transport) Send(addr string, m sim.Message) error {
	body, err := AppendGossip(nil, m)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	conn := t.conns[addr]
	if conn != nil {
		if err := WriteFrame(conn, KindGossip, body); err == nil {
			return nil
		}
		// Peer restarted or the connection died: drop and re-dial once
		// through the same backoff path.
		conn.Close()
		delete(t.conns, addr)
	}
	conn, err = t.dial(addr)
	if err != nil {
		return err
	}
	if err := WriteFrame(conn, KindGossip, body); err != nil {
		conn.Close()
		return err
	}
	t.conns[addr] = conn
	return nil
}

// dial connects to addr, retrying with exponential backoff. Called with
// t.mu held; the backoff sleeps therefore also serialize sends, which is
// acceptable — dialing only happens at startup and after a peer failure.
func (t *Transport) dial(addr string) (net.Conn, error) {
	backoff := t.dialBackoff
	var lastErr error
	for attempt := 0; attempt < t.dialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-t.closed:
				return nil, ErrTransportClosed
			}
			backoff *= 2
		}
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: dial %s: %w", addr, lastErr)
}

// Close shuts the listener and every cached connection and unblocks
// readers.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.mu.Lock()
		for addr, c := range t.conns {
			c.Close()
			delete(t.conns, addr)
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
}
