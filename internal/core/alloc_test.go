package core

// Allocation-budget regression tests for the pooled hot paths. The
// simulator's large-n feasibility rests on three invariants: sending
// (snapshot + payload assembly) recycles through the pool, delivery
// (absorb/merge) allocates nothing, and target sampling reuses its
// scratch. testing.AllocsPerRun pins each one so a regression fails the
// suite instead of quietly re-inflating GC pressure.

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestPooledSendReleaseAllocs drives the full per-send object cycle the
// world performs — snapshot rumors and informed list, assemble a payload,
// retain per enqueued message, absorb at the receiver, release — and
// requires zero steady-state allocations.
func TestPooledSendReleaseAllocs(t *testing.T) {
	const n = 256
	p := Params{N: n}.WithDefaults()
	p.Pool = NewPool(n)

	sender := p.NewTracker(3, NoValue)
	senderInf := newInformedList(n, p.Pool, nil)
	receiver := p.NewTracker(5, NoValue)

	cycle := func(i int) {
		payload := p.Pool.Gossip(sender.rum.Snapshot(), senderInf.m.Snapshot(), false)
		payload.Retain()
		sender.Learn(sim.ProcID(i%n), NoValue, sim.Time(i)) // mutate after snapshot
		senderInf.markSent(i%n, sender.rum.Set)
		receiver.Absorb(payload.Rumors, sim.Time(i))
		payload.Release()
	}
	for i := 0; i < 64; i++ {
		cycle(i) // warm the pool
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		cycle(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("pooled send/absorb/release cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestAbsorbAllocs pins the delivery path on its own: absorbing a payload
// that carries both old and new rumors must not allocate, pooled or not.
func TestAbsorbAllocs(t *testing.T) {
	const n = 512
	st := NewTracker(n, 0, NoValue, false)
	in := NewRumors(n, false)
	for i := 0; i < n; i += 2 {
		in.Add(sim.ProcID(i), NoValue)
	}
	k := 0
	allocs := testing.AllocsPerRun(500, func() {
		in.Add(sim.ProcID((k*2+1)%n), NoValue) // keep some rumors fresh
		st.Absorb(in, sim.Time(k))
		k++
	})
	if allocs != 0 {
		t.Fatalf("Absorb allocates %.1f/op, want 0", allocs)
	}
}

// TestSamplerKIntoAllocs pins fan-out target selection at zero
// steady-state allocations on the clique path (sears draws Θ(n^ε log n)
// targets every local step).
func TestSamplerKIntoAllocs(t *testing.T) {
	p := Params{N: 256}.WithDefaults()
	s := p.sampler(9)
	r := rng.New(11)
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(500, func() {
		buf = s.KInto(buf[:0], 48, r)
	})
	if allocs != 0 {
		t.Fatalf("Sampler.KInto allocates %.1f/op, want 0", allocs)
	}
	if len(buf) != 48 {
		t.Fatalf("KInto returned %d targets, want 48", len(buf))
	}
}

// TestLeanTrackerMilestones checks the lean tracker against the full one
// on the milestones the evaluators read: the majority threshold, the full
// count, and the position of the last acquisition.
func TestLeanTrackerMilestones(t *testing.T) {
	const n = 9
	full := newTracker(n, 2, NoValue, false, nil, false)
	lean := newTracker(n, 2, NoValue, false, nil, true)

	order := []sim.ProcID{7, 0, 5, 1, 8, 3, 4, 6}
	for i, r := range order {
		at := sim.Time(10 * (i + 1))
		full.Learn(r, NoValue, at)
		lean.Learn(r, NoValue, at)
	}

	maj := n/2 + 1
	if got, want := lean.RumorCountReachedAt(maj), full.RumorCountReachedAt(maj); got != want {
		t.Fatalf("lean majority milestone = %d, full = %d", got, want)
	}
	if got, want := lean.RumorCountReachedAt(n), full.RumorCountReachedAt(n); got != want {
		t.Fatalf("lean full-count milestone = %d, full = %d", got, want)
	}
	if got := lean.RumorCountReachedAt(1); got != 0 {
		t.Fatalf("lean k=1 milestone = %d, want 0", got)
	}
	// The rumor acquired last is exact; own rumor is time 0; a never-held
	// rumor is -1 (none here: all acquired).
	last := order[len(order)-1]
	if got, want := lean.RumorAcquiredAt(last), full.RumorAcquiredAt(last); got != want {
		t.Fatalf("lean last-acquired = %d, full = %d", got, want)
	}
	if got := lean.RumorAcquiredAt(2); got != 0 {
		t.Fatalf("lean own-rumor time = %d, want 0", got)
	}
	// Lean times for other rumors are upper bounds: never earlier than the
	// true acquisition, never later than the final acquisition.
	for _, r := range order[:len(order)-1] {
		lt, ft := lean.RumorAcquiredAt(r), full.RumorAcquiredAt(r)
		if lt < ft || lt > full.RumorCountReachedAt(n) {
			t.Fatalf("lean time %d for rumor %d outside [%d, last]", lt, r, ft)
		}
	}
}

// TestLeanGossipRunsMatchFullMetrics runs the same executions in lean and
// full tracker modes: message/step metrics must be identical (the tracker
// mode only changes evaluator bookkeeping, never protocol behavior).
func TestLeanGossipRunsMatchFullMetrics(t *testing.T) {
	for _, proto := range []Protocol{Trivial{}, TEARS{}, Naive{}} {
		for _, seed := range []int64{2, 13} {
			run := func(lean bool) sim.Result {
				p := Params{N: 40, F: 0, Lean: lean}
				nodes, err := NewNodes(proto, p, seed)
				if err != nil {
					t.Fatal(err)
				}
				w, err := sim.NewWorld(sim.Config{N: 40, F: 0, D: 2, Delta: 2, Seed: seed}, nodes, syncAdv{n: 40})
				if err != nil {
					t.Fatal(err)
				}
				res, err := w.Run(nil) // evaluator-independent comparison
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			full, lean := run(false), run(true)
			if full.Messages != lean.Messages || full.QuiesceAt != lean.QuiesceAt || full.Bytes != lean.Bytes {
				t.Fatalf("%s seed %d: lean run diverged: full=%+v lean=%+v",
					proto.Name(), seed, full, lean)
			}
		}
	}
}

// syncAdv is a minimal everyone-every-step adversary for kernel tests.
type syncAdv struct{ n int }

func (a syncAdv) Schedule(_ sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	for i := 0; i < a.n; i++ {
		buf = append(buf, sim.ProcID(i))
	}
	return buf
}

func (syncAdv) Delay(sim.Time, sim.ProcID, sim.ProcID) sim.Time { return 1 }

func (syncAdv) Crashes(_ sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID { return buf }
