package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Tests for the push/pull/push-pull and sum-weight averaging families:
// completion under the crash-free presets, the deterministic message caps,
// ε-consensus with exact mass conservation, and bit-level float
// determinism across serial/sharded and pooled/unpooled execution.

func crashFreePresets() []string {
	return []string{adversary.PresetBenign, adversary.PresetStandard, adversary.PresetMaxDelay}
}

func TestPushPullVariantsComplete(t *testing.T) {
	for _, name := range []string{NamePush, NamePull, NamePushPull} {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, preset := range crashFreePresets() {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{N: 48, F: 0, D: 3, Delta: 2, Seed: seed}
				res := runGossip(t, proto, Params{}, cfg, preset)
				if !res.Completed {
					t.Fatalf("%s/%s seed %d: not completed", name, preset, seed)
				}
			}
		}
	}
}

// TestPushMessageCap pins the deterministic envelope the fuzzer oracle
// uses: push-only sends at most n·B messages, B the per-process budget.
func TestPushMessageCap(t *testing.T) {
	cfg := sim.Config{N: 64, F: 0, D: 2, Delta: 2, Seed: 7}
	p := Params{N: cfg.N}.WithDefaults()
	res := runGossip(t, PushPull{Push: true}, Params{}, cfg, adversary.PresetStandard)
	if cap := int64(cfg.N) * int64(p.PushBudget()); res.Messages > cap {
		t.Fatalf("push sent %d messages, cap is n·B = %d", res.Messages, cap)
	}
	if !res.BytesKnown {
		t.Fatal("push payloads should all implement Sizer")
	}
	if res.Bytes != res.Messages {
		t.Fatalf("push bytes = %d for %d one-byte messages", res.Bytes, res.Messages)
	}
}

func TestPushPullOnSparseTopologies(t *testing.T) {
	for _, family := range []string{topology.FamilyErdosRenyi, topology.FamilyRandomRegular} {
		param := 0.0
		if family == topology.FamilyRandomRegular {
			param = 6
		}
		g, err := topology.Build(topology.Spec{Family: family, N: 64, Param: param, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{N: 64, F: 0, D: 2, Delta: 2, Seed: 11, Graph: g}
		res := runGossip(t, PushPull{Push: true, Pull: true}, Params{Graph: g}, cfg, adversary.PresetStandard)
		if !res.Completed {
			t.Fatalf("push-pull on %s: not completed", family)
		}
		if res.OffEdgeDrops != 0 {
			t.Fatalf("push-pull on %s: %d off-edge sends; sampling must stay in-neighborhood",
				family, res.OffEdgeDrops)
		}
	}
}

func TestAveragingReachesConsensus(t *testing.T) {
	for _, preset := range crashFreePresets() {
		for seed := int64(0); seed < 3; seed++ {
			cfg := sim.Config{N: 48, F: 0, D: 3, Delta: 2, Seed: seed}
			res := runGossip(t, Average{}, Params{}, cfg, preset)
			if !res.Completed {
				t.Fatalf("average/%s seed %d: not completed", preset, seed)
			}
		}
	}
}

// TestAveragingMassConservation runs averaging by hand and checks the
// invariant the protocol's correctness rests on: once the world is quiet
// (no mass in flight), Σ sums equals Σ initial values and Σ weights equals
// n, up to float addition error.
func TestAveragingMassConservation(t *testing.T) {
	cfg := sim.Config{N: 32, F: 0, D: 2, Delta: 2, Seed: 5}
	p := Params{N: cfg.N}
	nodes, err := NewNodes(Average{}, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.ByName(adversary.PresetStandard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(Average{}.Evaluator(p))
	if err != nil {
		t.Fatal(err)
	}
	var sumS, sumW, sumX float64
	for _, nd := range nodes {
		st := nd.(AverageState)
		s, wt := st.Estimate()
		sumS += s
		sumW += wt
		sumX += st.InitialValue()
	}
	if math.Abs(sumW-float64(cfg.N)) > 1e-9 {
		t.Fatalf("Σ weights = %v, want %d", sumW, cfg.N)
	}
	if math.Abs(sumS-sumX) > 1e-9 {
		t.Fatalf("Σ sums = %v, want Σ initial = %v", sumS, sumX)
	}
	// The exact n·R message count: every process spends its whole budget,
	// one message per budgeted step, on a clique where sampling never fails.
	p = p.WithDefaults()
	if want := int64(cfg.N) * int64(p.AvgRounds()); res.Messages != want {
		t.Fatalf("Messages = %d, want exactly n·R = %d", res.Messages, want)
	}
}

// avgStateBits fingerprints the exact bit patterns of every node's
// (sum, weight) pair.
func avgStateBits(nodes []sim.Node) []uint64 {
	out := make([]uint64, 0, 2*len(nodes))
	for _, nd := range nodes {
		s, w := nd.(AverageState).Estimate()
		out = append(out, math.Float64bits(s), math.Float64bits(w))
	}
	return out
}

// TestAveragingFloatDeterminism is the float-determinism pin for the
// sharded kernel: the event digest deliberately excludes payload contents,
// so serial≡sharded is asserted here on the raw float64 bit patterns of
// every node's final state — any reordering of float additions in the
// sharded replay would show up immediately.
func TestAveragingFloatDeterminism(t *testing.T) {
	run := func(shards int) ([]uint64, sim.Result) {
		cfg := sim.Config{N: 33, F: 0, D: 3, Delta: 2, Seed: 13, Shards: shards}
		p := Params{N: cfg.N, Shards: shards}
		nodes, err := NewNodes(Average{}, p, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := adversary.ByName(adversary.PresetStandard, cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sim.NewWorld(cfg, nodes, adv)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(Average{}.Evaluator(p))
		if err != nil {
			t.Fatal(err)
		}
		return avgStateBits(nodes), res
	}
	refBits, refRes := run(0)
	for _, shards := range []int{2, 3, 7, 33} {
		bits, res := run(shards)
		if res != refRes {
			t.Fatalf("shards=%d: result diverged:\n got %+v\nwant %+v", shards, res, refRes)
		}
		for i := range refBits {
			if bits[i] != refBits[i] {
				t.Fatalf("shards=%d: float state diverged at node %d (%016x != %016x)",
					shards, i/2, bits[i], refBits[i])
			}
		}
	}
}

// TestNewFamiliesPooledUnpooledIdentical pins that pooling is invisible to
// the new families (their payloads never touch the pool, and NewNodes'
// pool plumbing must not perturb the node RNG streams).
func TestNewFamiliesPooledUnpooledIdentical(t *testing.T) {
	for _, name := range []string{NamePush, NamePull, NamePushPull, NameAverage} {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{N: 40, F: 0, D: 3, Delta: 2, Seed: 21}
		pooled, err := tryRunGossip(proto, Params{}, cfg, adversary.PresetStandard)
		if err != nil {
			t.Fatal(err)
		}
		unpooled, err := tryRunGossip(proto, Params{NoPool: true}, cfg, adversary.PresetStandard)
		if err != nil {
			t.Fatal(err)
		}
		if pooled != unpooled {
			t.Fatalf("%s: pooled and unpooled runs diverged:\n got %+v\nwant %+v",
				name, pooled, unpooled)
		}
	}
}
