package core

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// Params carries the protocol tuning knobs. The zero value plus N (and F)
// is valid: WithDefaults fills every other field with the constants used
// throughout the repository's experiments.
type Params struct {
	// N is the number of processes; F the number of tolerated failures.
	N int
	F int

	// ShutdownC scales the ears shut-down phase length
	// Θ(n/(n−f)·log n) (Figure 2, line 15). The analysis only fixes the
	// asymptotic form; the constant trades message complexity against the
	// probability that some process sleeps before the informed-list has
	// propagated (forcing extra wake-ups, not incorrectness).
	ShutdownC float64

	// Epsilon is the sears fan-out exponent ε ∈ (0, 1) (Theorem 7).
	Epsilon float64

	// FanC scales the sears per-step fan-out Θ(n^ε·log n).
	FanC float64

	// TearsA scales the tears first-hop audience a = TearsA·√n·log₂n
	// (paper: a = 4√n·log n, Figure 3 line 2).
	TearsA float64

	// TearsKappa scales the tears trigger granularity
	// κ = TearsKappa·n^¼·log₂n (paper: κ = 8·n^¼·log n, Figure 3 line 4).
	TearsKappa float64

	// PushPullC scales the push/pull/push-pull proactive-send budget
	// Θ(n/(n−f)·log n) per informed process (Panagiotou–Speidel study
	// Θ(log n) rounds on G(n,p); the n/(n−f) factor compensates for
	// pushes wasted on crashed targets, as in the ears shut-down phase).
	PushPullC float64

	// AvgC scales the sum-weight averaging send budget per process:
	// R = AvgC·(log₂n + log₂(1/ε)) local sends. Picard et al.'s
	// non-asymptotic bounds give ε-consensus after Θ(log n + log(1/ε))
	// rounds on graphs with constant spectral gap; AvgC is the safety
	// factor over that.
	AvgC float64

	// AvgEpsilon is the averaging consensus tolerance ε: the evaluator
	// accepts when every live process's estimate s/w is within ε of the
	// true mean of the initial values.
	AvgEpsilon float64

	// WithVals makes rumors carry one-byte values (used by consensus).
	WithVals bool

	// Graph is the communication topology the protocol samples targets
	// from. Nil preserves the paper's model exactly: targets drawn
	// "uniform on [n]" (self included) as in Figure 2. A non-nil graph
	// restricts every send to the sender's neighborhood; pass the same
	// graph to sim.Config so the world enforces it.
	Graph topology.Graph

	// Pool recycles hot-path snapshot storage (payloads, rumor sets,
	// informed lists). Leave nil: NewNodes creates a fresh pool per run,
	// which is always safe. Setting it explicitly shares the pool across
	// runs — valid only for strictly sequential runs of the same N (the
	// benchmarks do this to measure steady-state allocation); sharing a
	// pool between concurrent runs is a data race. Pooling never changes
	// results: runs are bit-identical with any Pool/NoPool combination.
	Pool *Pool

	// NoPool disables snapshot pooling for this run (NewNodes will not
	// create a pool). Used by the live cluster, whose goroutine-per-process
	// execution cannot share single-threaded free lists, and by tests that
	// pin the legacy allocation behavior.
	NoPool bool

	// Lean selects O(1) per-process time bookkeeping instead of the Θ(n)
	// acquisition-time arrays (see Tracker). Evaluator completion times
	// remain exact for the milestones they read; per-rumor acquisition
	// times degrade to last-acquisition upper bounds. Intended for
	// large-scale sweeps (n in the tens of thousands) where the full
	// tracker's Θ(n²) footprint per run does not fit.
	Lean bool

	// Shards mirrors sim.Config.Shards for pooled runs: when the world
	// executes as sharded supersteps, node Steps of different shards run
	// concurrently, and the snapshot pools' unsynchronized free lists must
	// not be shared across them. NewNodes therefore builds one pool per
	// shard (partitioned exactly as sim.ShardRange) and hands every node
	// the pool of its owning shard. Pool partitioning — like pooling
	// itself — is invisible to results. Ignored when pooling is off.
	Shards int
}

// WithDefaults returns a copy of p with zero fields replaced by defaults.
//
// The tears constants default to 1 and 1 rather than the paper's 4 and 8:
// the paper's constants are chosen to make the concentration bounds of
// Lemmas 8–11 provable for asymptotic n, and at simulable scales
// (n ≤ a few thousand) they degenerate to all-to-all (a ≥ n). The scaled
// constants preserve every structural property (two hops, µ = a/2 trigger
// windows, a = Θ(√n log n), κ = Θ(n^¼ log n)) at sizes where a < n;
// DESIGN.md §3 and EXPERIMENTS.md record this substitution, and the
// conformance tests verify majority coverage still holds w.h.p.
func (p Params) WithDefaults() Params {
	if p.ShutdownC == 0 {
		p.ShutdownC = 6
	}
	if p.Epsilon == 0 {
		p.Epsilon = 0.5
	}
	if p.FanC == 0 {
		p.FanC = 1
	}
	if p.TearsA == 0 {
		p.TearsA = 1
	}
	if p.TearsKappa == 0 {
		p.TearsKappa = 1
	}
	if p.PushPullC == 0 {
		p.PushPullC = 6
	}
	if p.AvgC == 0 {
		p.AvgC = 8
	}
	if p.AvgEpsilon == 0 {
		p.AvgEpsilon = 1e-2
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("core: N = %d, need N >= 1", p.N)
	case p.F < 0 || p.F >= p.N:
		return fmt.Errorf("core: F = %d, need 0 <= F < N = %d", p.F, p.N)
	case p.ShutdownC < 0:
		return fmt.Errorf("core: ShutdownC = %v, must be >= 0", p.ShutdownC)
	case p.Epsilon < 0 || p.Epsilon >= 1:
		return fmt.Errorf("core: Epsilon = %v, need 0 < ε < 1", p.Epsilon)
	case p.FanC < 0 || p.TearsA < 0 || p.TearsKappa < 0 || p.PushPullC < 0 || p.AvgC < 0:
		return fmt.Errorf("core: negative tuning constant")
	case p.AvgEpsilon < 0 || p.AvgEpsilon > 1:
		return fmt.Errorf("core: AvgEpsilon = %v, need 0 < ε <= 1", p.AvgEpsilon)
	case p.Graph != nil && p.Graph.N() != p.N:
		return fmt.Errorf("core: topology has %d vertices for N = %d", p.Graph.N(), p.N)
	}
	return nil
}

// sampler returns the target sampler for process id under p's topology.
func (p Params) sampler(id int) topology.Sampler {
	return topology.NewSampler(id, p.N, p.Graph)
}

// obligationRows returns the informed-list obligation scope for process id:
// nil on the paper's complete graph — implicit (Graph == nil) or explicit
// (topology.Complete), which must stay bit-identical — and the neighbor
// set on a real sparse topology, where a process can only cover rows it
// can address (see informedList). The set draws from the pool when one is
// configured and is treated as immutable by its consumers.
func (p Params) obligationRows(id int) *bitset.Set {
	if p.Graph == nil {
		return nil
	}
	if _, complete := p.Graph.(topology.Complete); complete {
		return nil
	}
	var s *bitset.Set
	if p.Pool != nil {
		s = p.Pool.bits.NewSet()
	} else {
		s = bitset.New(p.N)
	}
	p.Graph.Neighbors(id, func(q int) bool {
		s.Add(q)
		return true
	})
	return s
}

// log2 returns log₂(n) rounded up, at least 1; the discrete stand-in for
// the paper's log n factors.
func log2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// shutdownThreshold returns the ears shut-down phase length in local
// steps: Θ(n/(n−f)·log n).
func (p Params) shutdownThreshold() int {
	surv := p.N - p.F
	if surv < 1 {
		surv = 1
	}
	t := int(math.Ceil(p.ShutdownC * float64(p.N) / float64(surv) * float64(log2(p.N))))
	if t < 1 {
		t = 1
	}
	return t
}

// searsFanout returns the sears per-step fan-out Θ(n^ε·log n), capped at n.
func (p Params) searsFanout() int {
	k := int(math.Ceil(p.FanC * math.Pow(float64(p.N), p.Epsilon) * float64(log2(p.N))))
	if k < 1 {
		k = 1
	}
	if k > p.N {
		k = p.N
	}
	return k
}

// tearsA returns the tears audience parameter a, capped at n.
func (p Params) tearsA() int {
	a := int(math.Ceil(p.TearsA * math.Sqrt(float64(p.N)) * float64(log2(p.N))))
	if a < 1 {
		a = 1
	}
	if a > p.N {
		a = p.N
	}
	return a
}

// tearsKappa returns the tears trigger granularity κ ≥ 1.
func (p Params) tearsKappa() int {
	k := int(math.Ceil(p.TearsKappa * math.Pow(float64(p.N), 0.25) * float64(log2(p.N))))
	if k < 1 {
		k = 1
	}
	return k
}

// Majority returns ⌊n/2⌋+1, the rumor target of majority gossip.
func (p Params) Majority() int { return p.N/2 + 1 }

// PushBudget returns the proactive-send budget of an informed push/pull
// process: ⌈PushPullC·n/(n−f)·log₂n⌉, at least 1.
func (p Params) PushBudget() int {
	surv := p.N - p.F
	if surv < 1 {
		surv = 1
	}
	b := int(math.Ceil(p.PushPullC * float64(p.N) / float64(surv) * float64(log2(p.N))))
	if b < 1 {
		b = 1
	}
	return b
}

// AvgRounds returns the sum-weight averaging send budget per process:
// ⌈AvgC·(log₂n + log₂⌈1/ε⌉)⌉, at least 1.
func (p Params) AvgRounds() int {
	invEps := int(math.Ceil(1 / p.AvgEpsilon))
	r := int(math.Ceil(p.AvgC * float64(log2(p.N)+log2(invEps))))
	if r < 1 {
		r = 1
	}
	return r
}
