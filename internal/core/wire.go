package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/sim"
)

// Payload wire codec for the live networked cluster (internal/cluster): a
// compact, versioned binary encoding of every payload family the gossip
// protocols in this package send. The simulator never serializes — payloads
// cross goroutines as shared copy-on-write snapshots — but a real TCP
// transport needs bytes, and the encoding is part of the cluster's message
// envelope, so it is versioned independently of any Go representation.
//
// Decoded payloads are always unpooled: the receiving process owns fresh
// storage and the Releasable refcount contract does not cross the wire.
const (
	// PayloadWireVersion is bumped on any incompatible encoding change;
	// decoders reject versions they do not speak.
	PayloadWireVersion = 1

	payloadKindGossip  = 1 // *GossipPayload (ears/sears/tears/trivial/naive, sync baselines)
	payloadKindPP      = 2 // ppPayload (push/pull/push-pull singletons)
	payloadKindAverage = 3 // AvgPayload (sum-weight mass)
)

// payloadMaxN bounds the universe size a decoder will materialize: a
// GossipPayload allocates O(n) (plus O(n²) bits with an informed list), so
// a corrupt or hostile length field must not translate into an unbounded
// allocation.
const payloadMaxN = 1 << 20

// gossip payload header flag bits.
const (
	gpFlagTears    = 1 << 0 // GossipPayload.Flag (the tears ↑ marker)
	gpFlagRumors   = 1 << 1 // a rumor set follows
	gpFlagVals     = 1 << 2 // the rumor set carries values
	gpFlagInformed = 1 << 3 // an informed-list matrix follows
)

// AppendPayload appends the versioned binary encoding of pl to dst and
// returns the extended slice. Supported payloads are the three families
// this package's protocols send; anything else (e.g. the consensus layer's
// buffered payloads) is an error — the live cluster's data plane carries
// gossip only.
func AppendPayload(dst []byte, pl sim.Payload) ([]byte, error) {
	switch p := pl.(type) {
	case *GossipPayload:
		dst = append(dst, PayloadWireVersion, payloadKindGossip)
		var flags byte
		if p.Flag {
			flags |= gpFlagTears
		}
		n := 0
		if p.Rumors != nil {
			flags |= gpFlagRumors
			n = p.Rumors.Set.Universe()
			if p.Rumors.Vals != nil {
				flags |= gpFlagVals
			}
		}
		if p.Informed.m != nil {
			flags |= gpFlagInformed
			if n == 0 {
				n = p.Informed.m.Universe()
			} else if p.Informed.m.Universe() != n {
				return nil, fmt.Errorf("core: payload universes disagree: rumors %d, informed %d",
					n, p.Informed.m.Universe())
			}
		}
		dst = append(dst, flags)
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		if flags&gpFlagRumors != 0 {
			dst = appendSetBitmap(dst, p.Rumors.Set, n)
			if flags&gpFlagVals != 0 {
				dst = append(dst, p.Rumors.Vals...)
			}
		}
		if flags&gpFlagInformed != 0 {
			dst = appendMatrixBitmap(dst, p.Informed.m, n)
		}
		return dst, nil
	case ppPayload:
		return append(dst, PayloadWireVersion, payloadKindPP, byte(p)), nil
	case AvgPayload:
		dst = append(dst, PayloadWireVersion, payloadKindAverage)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.S))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.W))
		return dst, nil
	default:
		return nil, fmt.Errorf("core: payload type %T has no wire encoding", pl)
	}
}

// DecodePayload decodes one payload encoded by AppendPayload. The returned
// payload is unpooled and fully owned by the caller.
func DecodePayload(src []byte) (sim.Payload, error) {
	if len(src) < 2 {
		return nil, fmt.Errorf("core: payload truncated (%d bytes)", len(src))
	}
	if src[0] != PayloadWireVersion {
		return nil, fmt.Errorf("core: payload wire version %d, this build speaks %d",
			src[0], PayloadWireVersion)
	}
	kind, body := src[1], src[2:]
	switch kind {
	case payloadKindGossip:
		if len(body) < 5 {
			return nil, fmt.Errorf("core: gossip payload header truncated")
		}
		flags := body[0]
		n := int(binary.BigEndian.Uint32(body[1:5]))
		if n < 0 || n > payloadMaxN {
			return nil, fmt.Errorf("core: gossip payload universe %d out of range", n)
		}
		body = body[5:]
		pl := &GossipPayload{Flag: flags&gpFlagTears != 0}
		if flags&gpFlagRumors != 0 {
			set, rest, err := decodeSetBitmap(body, n)
			if err != nil {
				return nil, err
			}
			body = rest
			pl.Rumors = &Rumors{Set: set}
			if flags&gpFlagVals != 0 {
				if len(body) < n {
					return nil, fmt.Errorf("core: gossip payload values truncated")
				}
				pl.Rumors.Vals = append([]uint8(nil), body[:n]...)
				body = body[n:]
			}
		}
		if flags&gpFlagInformed != 0 {
			m, rest, err := decodeMatrixBitmap(body, n)
			if err != nil {
				return nil, err
			}
			body = rest
			pl.Informed = informedSnapshot{m: m}
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("core: gossip payload has %d trailing bytes", len(body))
		}
		return pl, nil
	case payloadKindPP:
		if len(body) != 1 {
			return nil, fmt.Errorf("core: push-pull payload has %d body bytes, want 1", len(body))
		}
		p := ppPayload(body[0])
		if p != ppRumor && p != ppRequest {
			return nil, fmt.Errorf("core: unknown push-pull payload %d", p)
		}
		return p, nil
	case payloadKindAverage:
		if len(body) != 16 {
			return nil, fmt.Errorf("core: averaging payload has %d body bytes, want 16", len(body))
		}
		return AvgPayload{
			S: math.Float64frombits(binary.BigEndian.Uint64(body[:8])),
			W: math.Float64frombits(binary.BigEndian.Uint64(body[8:16])),
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown payload kind %d", kind)
	}
}

// appendSetBitmap appends a dense little-endian-bit bitmap of set over
// universe n: bit i of byte i/8 marks membership of i.
func appendSetBitmap(dst []byte, s *bitset.Set, n int) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, (n+7)/8)...)
	s.ForEach(func(i int) bool {
		dst[start+i/8] |= 1 << (i % 8)
		return true
	})
	return dst
}

func decodeSetBitmap(src []byte, n int) (*bitset.Set, []byte, error) {
	nb := (n + 7) / 8
	if len(src) < nb {
		return nil, nil, fmt.Errorf("core: rumor bitmap truncated (%d of %d bytes)", len(src), nb)
	}
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		if src[i/8]&(1<<(i%8)) != 0 {
			s.Add(i)
		}
	}
	return s, src[nb:], nil
}

// appendMatrixBitmap appends the n×n informed-list matrix as n row bitmaps.
func appendMatrixBitmap(dst []byte, m *bitset.Matrix, n int) []byte {
	rowBytes := (n + 7) / 8
	start := len(dst)
	dst = append(dst, make([]byte, n*rowBytes)...)
	for row := 0; row < n; row++ {
		base := start + row*rowBytes
		for col := 0; col < n; col++ {
			if m.Test(row, col) {
				dst[base+col/8] |= 1 << (col % 8)
			}
		}
	}
	return dst
}

func decodeMatrixBitmap(src []byte, n int) (*bitset.Matrix, []byte, error) {
	rowBytes := (n + 7) / 8
	need := n * rowBytes
	if len(src) < need {
		return nil, nil, fmt.Errorf("core: informed matrix truncated (%d of %d bytes)", len(src), need)
	}
	m := bitset.NewMatrix(n)
	for row := 0; row < n; row++ {
		base := row * rowBytes
		for col := 0; col < n; col++ {
			if src[base+col/8]&(1<<(col%8)) != 0 {
				m.Set(row, col)
			}
		}
	}
	return m, src[need:], nil
}

// NewWireGossipPayload assembles a GossipPayload from decoded parts; it
// exists for tests that build payloads outside a protocol node.
func NewWireGossipPayload(rumors *Rumors, informed *bitset.Matrix, flag bool) *GossipPayload {
	return &GossipPayload{Rumors: rumors, Informed: informedSnapshot{m: informed}, Flag: flag}
}

// WirePayloadEquals reports deep equality of two payloads, ignoring pool
// bookkeeping; codec tests use it to verify round-trips.
func WirePayloadEquals(a, b sim.Payload) bool {
	switch pa := a.(type) {
	case *GossipPayload:
		pb, ok := b.(*GossipPayload)
		if !ok || pa.Flag != pb.Flag {
			return false
		}
		switch {
		case (pa.Rumors == nil) != (pb.Rumors == nil):
			return false
		case pa.Rumors != nil:
			if !pa.Rumors.Set.Equal(pb.Rumors.Set) {
				return false
			}
			if (pa.Rumors.Vals == nil) != (pb.Rumors.Vals == nil) {
				return false
			}
			for i := range pa.Rumors.Vals {
				if pa.Rumors.Vals[i] != pb.Rumors.Vals[i] {
					return false
				}
			}
		}
		if (pa.Informed.m == nil) != (pb.Informed.m == nil) {
			return false
		}
		if pa.Informed.m != nil {
			n := pa.Informed.m.Universe()
			if n != pb.Informed.m.Universe() {
				return false
			}
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					if pa.Informed.m.Test(r, c) != pb.Informed.m.Test(r, c) {
						return false
					}
				}
			}
		}
		return true
	case ppPayload:
		pb, ok := b.(ppPayload)
		return ok && pa == pb
	case AvgPayload:
		pb, ok := b.(AvgPayload)
		return ok && math.Float64bits(pa.S) == math.Float64bits(pb.S) &&
			math.Float64bits(pa.W) == math.Float64bits(pb.W)
	}
	return false
}
