// Package core implements the paper's primary contribution: the randomized
// asynchronous gossip protocols ears (Epidemic Asynchronous Rumor
// Spreading, §3 / Figure 2), sears (Spamming EARS, §4), tears (Two-hop
// EARS, §5 / Figure 3), and the trivial all-to-all baseline, all running on
// the partially synchronous crash-prone model of package sim.
package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
)

// NoValue marks a rumor that carries no attached value.
const NoValue = ^uint8(0)

// Rumors is the set of rumors known to a process. Rumor identifiers
// coincide with process identifiers: rumor r is the initial rumor of
// process r. A rumor may carry a small attached value (the consensus layer
// attaches votes); plain gossip leaves Vals nil.
//
// Rumors values sent in messages are copy-on-write snapshots: the Set is
// snapshotted and the Vals array is shared. Sharing Vals is sound because
// a value is written exactly once, when the rumor is first learned, and a
// receiver only reads values for rumors present in the (frozen) Set — all
// of which were written before the snapshot was taken.
type Rumors struct {
	Set  *bitset.Set
	Vals []uint8
}

// NewRumors returns an empty rumor collection over n processes. If
// withVals is set, rumors carry values.
func NewRumors(n int, withVals bool) *Rumors {
	r := &Rumors{Set: bitset.New(n)}
	if withVals {
		r.Vals = make([]uint8, n)
	}
	return r
}

// Add records rumor r with an optional value (pass NoValue for none).
func (ru *Rumors) Add(r sim.ProcID, val uint8) {
	ru.Set.Add(int(r))
	if ru.Vals != nil && val != NoValue {
		ru.Vals[r] = val
	}
}

// Has reports whether rumor r is known.
func (ru *Rumors) Has(r sim.ProcID) bool { return ru.Set.Test(int(r)) }

// Count returns the number of known rumors.
func (ru *Rumors) Count() int { return ru.Set.Count() }

// Value returns the value attached to rumor r, or NoValue.
func (ru *Rumors) Value(r sim.ProcID) uint8 {
	if ru.Vals == nil || !ru.Set.Test(int(r)) {
		return NoValue
	}
	return ru.Vals[r]
}

// Snapshot returns a cheap logically immutable copy for sending.
func (ru *Rumors) Snapshot() *Rumors {
	return &Rumors{Set: ru.Set.Snapshot(), Vals: ru.Vals}
}

// Union merges other into ru, copying attached values for newly gained
// rumors. Values are write-once per rumor, so unioning collections from
// the same instance never conflicts.
func (ru *Rumors) Union(other *Rumors) {
	if other == nil {
		return
	}
	if ru.Vals != nil && other.Vals != nil {
		other.Set.ForEachDiff(ru.Set, func(i int) bool {
			ru.Vals[i] = other.Vals[i]
			return true
		})
	}
	ru.Set.UnionWith(other.Set)
}

// Clone returns an independent deep copy.
func (ru *Rumors) Clone() *Rumors {
	cp := &Rumors{Set: ru.Set.Clone()}
	if ru.Vals != nil {
		cp.Vals = append([]uint8(nil), ru.Vals...)
	}
	return cp
}

// SizeBytes approximates the wire size of the collection: a dense bitmap
// plus one byte per carried value.
func (ru *Rumors) SizeBytes() int {
	b := (ru.Set.Universe() + 7) / 8
	if ru.Vals != nil {
		b += ru.Set.Count()
	}
	return b
}

// String summarizes the collection.
func (ru *Rumors) String() string {
	return fmt.Sprintf("rumors(%d/%d)", ru.Count(), ru.Set.Universe())
}

// Tracker is the rumor bookkeeping shared by all gossip nodes: the rumor
// collection plus acquisition-time records used by evaluators to compute
// the paper's completion time after the run. Synchronous baselines and the
// consensus layer embed it too.
type Tracker struct {
	n          int
	rum        *Rumors
	acquiredAt []sim.Time // per rumor; -1 if never acquired
	countAt    []sim.Time // countAt[k]: time the count first reached k (k>=1)
	count      int
}

// NewTracker returns a Tracker for process id over n processes, seeded
// with the process's own rumor (value val, or NoValue).
func NewTracker(n int, id sim.ProcID, val uint8, withVals bool) Tracker {
	st := Tracker{
		n:          n,
		rum:        NewRumors(n, withVals),
		acquiredAt: make([]sim.Time, n),
		countAt:    make([]sim.Time, n+1),
	}
	for i := range st.acquiredAt {
		st.acquiredAt[i] = -1
	}
	for i := range st.countAt {
		st.countAt[i] = -1
	}
	st.Learn(id, val, 0)
	return st
}

// Learn records rumor r with value val at time now (idempotent).
func (st *Tracker) Learn(r sim.ProcID, val uint8, now sim.Time) {
	if st.rum.Has(r) {
		return
	}
	st.rum.Add(r, val)
	st.acquiredAt[r] = now
	st.count++
	st.countAt[st.count] = now
}

// Absorb merges an incoming rumor collection, recording acquisition times.
func (st *Tracker) Absorb(in *Rumors, now sim.Time) {
	if in == nil {
		return
	}
	in.Set.ForEachDiff(st.rum.Set, func(i int) bool {
		st.acquiredAt[i] = now
		st.count++
		st.countAt[st.count] = now
		if st.rum.Vals != nil && in.Vals != nil {
			st.rum.Vals[i] = in.Vals[i]
		}
		return true
	})
	st.rum.Set.UnionWith(in.Set)
}

// RumorSet implements RumorHolder.
func (st *Tracker) RumorSet() *bitset.Set { return st.rum.Set }

// Rumors exposes the full collection (consensus layer reads values).
func (st *Tracker) Rumors() *Rumors { return st.rum }

// RumorAcquiredAt implements RumorHolder.
func (st *Tracker) RumorAcquiredAt(r sim.ProcID) sim.Time {
	if int(r) < 0 || int(r) >= st.n {
		return -1
	}
	return st.acquiredAt[r]
}

// RumorCountReachedAt implements RumorHolder.
func (st *Tracker) RumorCountReachedAt(k int) sim.Time {
	if k <= 0 {
		return 0
	}
	if k > st.n {
		return -1
	}
	return st.countAt[k]
}

// CloneTracker deep-copies the bookkeeping for node cloning.
func (st *Tracker) CloneTracker() Tracker {
	cp := Tracker{
		n:          st.n,
		rum:        &Rumors{Set: st.rum.Set.Clone()},
		acquiredAt: append([]sim.Time(nil), st.acquiredAt...),
		countAt:    append([]sim.Time(nil), st.countAt...),
		count:      st.count,
	}
	if st.rum.Vals != nil {
		cp.rum.Vals = append([]uint8(nil), st.rum.Vals...)
	}
	return cp
}

// RumorHolder is implemented by every gossip node and consumed by the
// evaluators in this package.
type RumorHolder interface {
	// RumorSet returns the set of rumor identifiers known to the node.
	RumorSet() *bitset.Set
	// RumorAcquiredAt returns when rumor r was first learned, or -1.
	RumorAcquiredAt(r sim.ProcID) sim.Time
	// RumorCountReachedAt returns when the node first knew k rumors, or -1.
	RumorCountReachedAt(k int) sim.Time
}
