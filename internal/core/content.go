// Package core implements the paper's primary contribution: the randomized
// asynchronous gossip protocols ears (Epidemic Asynchronous Rumor
// Spreading, §3 / Figure 2), sears (Spamming EARS, §4), tears (Two-hop
// EARS, §5 / Figure 3), and the trivial all-to-all baseline, all running on
// the partially synchronous crash-prone model of package sim.
package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
)

// NoValue marks a rumor that carries no attached value.
const NoValue = ^uint8(0)

// Rumors is the set of rumors known to a process. Rumor identifiers
// coincide with process identifiers: rumor r is the initial rumor of
// process r. A rumor may carry a small attached value (the consensus layer
// attaches votes); plain gossip leaves Vals nil.
//
// Rumors values sent in messages are copy-on-write snapshots: the Set is
// snapshotted and the Vals array is shared. Sharing Vals is sound because
// a value is written exactly once, when the rumor is first learned, and a
// receiver only reads values for rumors present in the (frozen) Set — all
// of which were written before the snapshot was taken.
type Rumors struct {
	Set  *bitset.Set
	Vals []uint8
	pool *Pool // nil = unpooled; set by newRumors for pooled collections
}

// NewRumors returns an empty rumor collection over n processes. If
// withVals is set, rumors carry values.
func NewRumors(n int, withVals bool) *Rumors {
	return newRumors(n, withVals, nil)
}

// newRumors is NewRumors with an optional pool: the collection header and
// the set's word storage come from the pool, and snapshots taken from the
// collection are pooled (released through the payload refcounts). Vals is
// never pooled — it is shared write-once across every snapshot for the
// lifetime of the node (see the type comment), so it can never be safely
// recycled before the run ends.
func newRumors(n int, withVals bool, pool *Pool) *Rumors {
	var r *Rumors
	if pool != nil {
		r = pool.getRumors()
		r.Set = pool.bits.NewSet()
	} else {
		r = &Rumors{Set: bitset.New(n)}
	}
	if withVals {
		r.Vals = make([]uint8, n)
	}
	return r
}

// Add records rumor r with an optional value (pass NoValue for none).
func (ru *Rumors) Add(r sim.ProcID, val uint8) {
	ru.Set.Add(int(r))
	if ru.Vals != nil && val != NoValue {
		ru.Vals[r] = val
	}
}

// Has reports whether rumor r is known.
func (ru *Rumors) Has(r sim.ProcID) bool { return ru.Set.Test(int(r)) }

// Count returns the number of known rumors.
func (ru *Rumors) Count() int { return ru.Set.Count() }

// Value returns the value attached to rumor r, or NoValue.
func (ru *Rumors) Value(r sim.ProcID) uint8 {
	if ru.Vals == nil || !ru.Set.Test(int(r)) {
		return NoValue
	}
	return ru.Vals[r]
}

// Snapshot returns a cheap logically immutable copy for sending. A
// snapshot of a pooled collection is pooled: it is released (with the set
// snapshot inside it) when its carrying payload's refcount drops to zero.
func (ru *Rumors) Snapshot() *Rumors {
	if ru.pool != nil {
		s := ru.pool.getRumors()
		s.Set = ru.Set.Snapshot()
		s.Vals = ru.Vals
		return s
	}
	return &Rumors{Set: ru.Set.Snapshot(), Vals: ru.Vals}
}

// release returns a pooled snapshot's storage to its pool (no-op when
// unpooled). Must be called at most once; the payload release path is the
// only caller.
func (ru *Rumors) release() {
	if ru.pool == nil {
		return
	}
	if ru.Set != nil {
		ru.Set.Release()
	}
	ru.pool.putRumors(ru)
}

// Union merges other into ru, copying attached values for newly gained
// rumors. Values are write-once per rumor, so unioning collections from
// the same instance never conflicts.
func (ru *Rumors) Union(other *Rumors) {
	if other == nil {
		return
	}
	if ru.Vals != nil && other.Vals != nil {
		other.Set.ForEachDiff(ru.Set, func(i int) bool {
			ru.Vals[i] = other.Vals[i]
			return true
		})
	}
	ru.Set.UnionWith(other.Set)
}

// Clone returns an independent deep copy.
func (ru *Rumors) Clone() *Rumors {
	cp := &Rumors{Set: ru.Set.Clone()}
	if ru.Vals != nil {
		cp.Vals = append([]uint8(nil), ru.Vals...)
	}
	return cp
}

// SizeBytes approximates the wire size of the collection: a dense bitmap
// plus one byte per carried value.
func (ru *Rumors) SizeBytes() int {
	b := (ru.Set.Universe() + 7) / 8
	if ru.Vals != nil {
		b += ru.Set.Count()
	}
	return b
}

// String summarizes the collection.
func (ru *Rumors) String() string {
	return fmt.Sprintf("rumors(%d/%d)", ru.Count(), ru.Set.Universe())
}

// Tracker is the rumor bookkeeping shared by all gossip nodes: the rumor
// collection plus acquisition-time records used by evaluators to compute
// the paper's completion time after the run. Synchronous baselines and the
// consensus layer embed it too.
//
// A tracker has two modes. The full mode (the default) records the
// acquisition time of every rumor and of every count milestone — Θ(n) words
// per process, Θ(n²) per run, which is what the evaluators and the stage
// experiments read. The lean mode (Params.Lean) keeps O(1) bookkeeping:
// the time of the most recent acquisition and the time the count crossed
// the majority threshold. Lean trackers answer RumorAcquiredAt with the
// last-acquisition time for any held rumor (an upper bound that is exact
// for the rumor acquired last) and RumorCountReachedAt exactly for
// k ∈ {1, majority, current count}; this is precisely what the gossip
// evaluators consume, and it is what makes n in the tens of thousands fit
// in memory for the large-scale bench sweeps.
type Tracker struct {
	n          int
	self       sim.ProcID
	rum        *Rumors
	acquiredAt []sim.Time // per rumor; -1 if never acquired (nil in lean mode)
	countAt    []sim.Time // countAt[k]: time the count first reached k (nil in lean mode)
	count      int

	lean   bool
	maj    int      // ⌊n/2⌋+1 (lean mode milestone)
	lastAt sim.Time // lean: time of the most recent acquisition
	majAt  sim.Time // lean: time the count first reached maj; -1 before
}

// NewTracker returns a full-mode, unpooled Tracker for process id over n
// processes, seeded with the process's own rumor (value val, or NoValue).
// Protocol implementations should prefer Params.NewTracker, which applies
// the run's pool and tracker mode.
func NewTracker(n int, id sim.ProcID, val uint8, withVals bool) Tracker {
	return newTracker(n, id, val, withVals, nil, false)
}

// NewTracker builds the tracker for process id under p: pooled rumor
// storage when the run has a pool, lean bookkeeping when p.Lean is set.
func (p Params) NewTracker(id sim.ProcID, val uint8) Tracker {
	return newTracker(p.N, id, val, p.WithVals, p.Pool, p.Lean)
}

func newTracker(n int, id sim.ProcID, val uint8, withVals bool, pool *Pool, lean bool) Tracker {
	st := Tracker{
		n:     n,
		self:  id,
		rum:   newRumors(n, withVals, pool),
		lean:  lean,
		maj:   n/2 + 1,
		majAt: -1,
	}
	if !lean {
		// One backing array for both time tables (they live and die
		// together, and runs construct n of them).
		times := make([]sim.Time, 2*n+1)
		for i := range times {
			times[i] = -1
		}
		st.acquiredAt = times[:n:n]
		st.countAt = times[n:]
	}
	st.Learn(id, val, 0)
	return st
}

// Learn records rumor r with value val at time now (idempotent).
func (st *Tracker) Learn(r sim.ProcID, val uint8, now sim.Time) {
	if st.rum.Has(r) {
		return
	}
	st.rum.Add(r, val)
	st.count++
	st.noteAcquired(r, now)
}

// noteAcquired updates the time bookkeeping after the count already moved.
func (st *Tracker) noteAcquired(r sim.ProcID, now sim.Time) {
	if st.lean {
		st.lastAt = now
		if st.count >= st.maj && st.majAt < 0 {
			st.majAt = now
		}
		return
	}
	st.acquiredAt[r] = now
	st.countAt[st.count] = now
}

// Absorb merges an incoming rumor collection, recording acquisition times.
// It is the per-delivery hot path: new rumors are discovered by a
// word-level diff (the iteration closure does not escape, so absorption
// allocates nothing), and the set union is skipped entirely when the
// message carried nothing new — the common case late in a run, which also
// avoids touching a copy-on-write buffer for no reason.
func (st *Tracker) Absorb(in *Rumors, now sim.Time) {
	if in == nil {
		return
	}
	vals := st.rum.Vals != nil && in.Vals != nil
	changed := false
	in.Set.ForEachDiff(st.rum.Set, func(i int) bool {
		changed = true
		st.count++
		st.noteAcquired(sim.ProcID(i), now)
		if vals {
			st.rum.Vals[i] = in.Vals[i]
		}
		return true
	})
	if changed {
		st.rum.Set.UnionWith(in.Set)
	}
}

// RumorSet implements RumorHolder.
func (st *Tracker) RumorSet() *bitset.Set { return st.rum.Set }

// Rumors exposes the full collection (consensus layer reads values).
func (st *Tracker) Rumors() *Rumors { return st.rum }

// RumorAcquiredAt implements RumorHolder. In lean mode the answer for a
// held rumor is the node's last acquisition time (exact for the rumor
// acquired last, an upper bound for the rest) and 0 for the node's own.
func (st *Tracker) RumorAcquiredAt(r sim.ProcID) sim.Time {
	if int(r) < 0 || int(r) >= st.n {
		return -1
	}
	if st.lean {
		switch {
		case !st.rum.Has(r):
			return -1
		case r == st.self:
			return 0
		default:
			return st.lastAt
		}
	}
	return st.acquiredAt[r]
}

// RumorCountReachedAt implements RumorHolder. In lean mode the milestones
// k = 1, k = ⌊n/2⌋+1 and k = current count are exact; other reached counts
// answer with the last acquisition time (an upper bound).
func (st *Tracker) RumorCountReachedAt(k int) sim.Time {
	if k <= 0 {
		return 0
	}
	if k > st.n {
		return -1
	}
	if st.lean {
		switch {
		case k > st.count:
			return -1
		case k == 1:
			return 0
		case k == st.maj:
			return st.majAt
		default:
			return st.lastAt
		}
	}
	return st.countAt[k]
}

// CloneTracker deep-copies the bookkeeping for node cloning. Clones are
// unpooled regardless of the original: they are driven outside the world
// (the Theorem 1 adversary branches executions by hand), where nothing
// ever releases their snapshots.
func (st *Tracker) CloneTracker() Tracker {
	cp := Tracker{
		n:          st.n,
		self:       st.self,
		rum:        &Rumors{Set: st.rum.Set.Clone()},
		acquiredAt: append([]sim.Time(nil), st.acquiredAt...),
		countAt:    append([]sim.Time(nil), st.countAt...),
		count:      st.count,
		lean:       st.lean,
		maj:        st.maj,
		lastAt:     st.lastAt,
		majAt:      st.majAt,
	}
	if st.rum.Vals != nil {
		cp.rum.Vals = append([]uint8(nil), st.rum.Vals...)
	}
	return cp
}

// RumorHolder is implemented by every gossip node and consumed by the
// evaluators in this package.
type RumorHolder interface {
	// RumorSet returns the set of rumor identifiers known to the node.
	RumorSet() *bitset.Set
	// RumorAcquiredAt returns when rumor r was first learned, or -1.
	RumorAcquiredAt(r sim.ProcID) sim.Time
	// RumorCountReachedAt returns when the node first knew k rumors, or -1.
	RumorCountReachedAt(k int) sim.Time
}
