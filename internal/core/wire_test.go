package core

import (
	"testing"

	"repro/internal/bitset"
)

// wirePayloads enumerates one representative of every encodable shape.
func wirePayloads() map[string]interface{} {
	set := bitset.New(12)
	set.Add(0)
	set.Add(3)
	set.Add(11)
	vals := make([]uint8, 12)
	vals[0], vals[3], vals[11] = 1, 0, 1
	m := bitset.NewMatrix(12)
	m.Set(0, 3)
	m.Set(11, 11)
	m.Set(7, 2)
	full := bitset.New(12)
	for i := 0; i < 12; i++ {
		full.Add(i)
	}
	return map[string]interface{}{
		"gossip-rumors-vals-informed": NewWireGossipPayload(&Rumors{Set: set, Vals: vals}, m, false),
		"gossip-rumors-only":          NewWireGossipPayload(&Rumors{Set: full}, nil, false),
		"gossip-informed-flag":        NewWireGossipPayload(nil, m, true),
		"gossip-empty":                NewWireGossipPayload(nil, nil, false),
		"pp-rumor":                    ppRumor,
		"pp-request":                  ppRequest,
		"avg":                         AvgPayload{S: -3.25, W: 0.125},
		"avg-zero":                    AvgPayload{},
	}
}

func TestPayloadWireRoundTrip(t *testing.T) {
	for name, pl := range wirePayloads() {
		enc, err := AppendPayload(nil, pl)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		dec, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !WirePayloadEquals(pl, dec) {
			t.Errorf("%s: round-trip mismatch: sent %#v, got %#v", name, pl, dec)
		}
	}
}

// Every strict prefix of a valid encoding must be rejected, never crash,
// and never decode to a payload.
func TestPayloadWireTruncation(t *testing.T) {
	for name, pl := range wirePayloads() {
		enc, err := AppendPayload(nil, pl)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < len(enc); k++ {
			if _, err := DecodePayload(enc[:k]); err == nil {
				t.Errorf("%s: truncation to %d/%d bytes decoded cleanly", name, k, len(enc))
			}
		}
		if _, err := DecodePayload(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Errorf("%s: trailing byte decoded cleanly", name)
		}
	}
}

func TestPayloadWireRejectsCorruption(t *testing.T) {
	enc, err := AppendPayload(nil, NewWireGossipPayload(&Rumors{Set: bitset.New(4)}, nil, false))
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), enc...)
	bad[0] = PayloadWireVersion + 1
	if _, err := DecodePayload(bad); err == nil {
		t.Error("future wire version accepted")
	}

	bad = append([]byte(nil), enc...)
	bad[1] = 0x7f
	if _, err := DecodePayload(bad); err == nil {
		t.Error("unknown payload kind accepted")
	}

	// A corrupt universe length must not translate into a giant allocation.
	huge := []byte{PayloadWireVersion, payloadKindGossip, gpFlagRumors, 0xff, 0xff, 0xff, 0xff}
	if _, err := DecodePayload(huge); err == nil {
		t.Error("out-of-range universe accepted")
	}

	if _, err := DecodePayload([]byte{PayloadWireVersion, payloadKindPP, 9}); err == nil {
		t.Error("unknown push-pull payload value accepted")
	}
}

func TestPayloadWireRejectsUnsupported(t *testing.T) {
	if _, err := AppendPayload(nil, struct{ X int }{1}); err == nil {
		t.Error("arbitrary payload type encoded")
	}
	set := bitset.New(8)
	m := bitset.NewMatrix(16)
	if _, err := AppendPayload(nil, NewWireGossipPayload(&Rumors{Set: set}, m, false)); err == nil {
		t.Error("mismatched rumor/informed universes encoded")
	}
}

// Decoded payloads must be fully caller-owned: mutating them must not
// alias the encoder's inputs.
func TestPayloadWireDecodeOwnsStorage(t *testing.T) {
	set := bitset.New(8)
	set.Add(2)
	orig := NewWireGossipPayload(&Rumors{Set: set, Vals: make([]uint8, 8)}, nil, false)
	enc, err := AppendPayload(nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	gp := dec.(*GossipPayload)
	gp.Rumors.Set.Add(5)
	gp.Rumors.Vals[0] = 9
	if set.Test(5) || orig.Rumors.Vals[0] == 9 {
		t.Error("decoded payload aliases encoder storage")
	}
}
