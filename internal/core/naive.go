package core

import (
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Naive is the strawman the paper's introduction warns about: epidemic
// transmission repeated for a fixed number of local steps, with no
// progress control. "Unlike in the case of a synchronous system, it is
// not sufficient to simply repeat the gossip step a pre-determined number
// of times" (§1): because of asynchrony, a process may begin its r-th
// iteration long after everyone else has finished theirs, and data is not
// propagated. Naive exists as the ablation showing exactly that failure —
// under a starved schedule it goes quiescent with rumors missing, which
// the ears informed-list machinery (§3) is designed to prevent.
type Naive struct{}

var _ Protocol = Naive{}

// NameNaive is the Naive protocol's name.
const NameNaive = "naive"

// Name implements Protocol.
func (Naive) Name() string { return NameNaive }

// NewNode implements Protocol.
func (Naive) NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	surv := p.N - p.F
	if surv < 1 {
		surv = 1
	}
	// The same budget the ears shut-down phase uses — a "fair" repetition
	// count for the comparison: c·(n/(n−f))·log₂n local steps.
	reps := int(math.Ceil(p.ShutdownC * float64(p.N) / float64(surv) * float64(log2(p.N))))
	if reps < 1 {
		reps = 1
	}
	return &naiveNode{
		Tracker: p.NewTracker(id, NoValue),
		id:      id,
		n:       p.N,
		peers:   p.sampler(int(id)),
		reps:    reps,
		pool:    p.Pool,
		r:       r,
	}
}

// Evaluator implements Protocol: naive *claims* full gossip (and the
// ablation shows it failing to deliver it).
func (Naive) Evaluator(p Params) sim.Evaluator {
	return FullGossipEvaluator{Params: p.WithDefaults()}
}

type naiveNode struct {
	Tracker
	id    sim.ProcID
	n     int
	peers topology.Sampler
	reps  int
	step  int
	pool  *Pool
	r     *rng.RNG
}

var (
	_ sim.Node    = (*naiveNode)(nil)
	_ RumorHolder = (*naiveNode)(nil)
	_ sim.Cloner  = (*naiveNode)(nil)
)

// ID implements sim.Node.
func (nn *naiveNode) ID() sim.ProcID { return nn.id }

// Step implements sim.Node: absorb, then push to one random target until
// the fixed repetition budget runs out — no matter what has or has not
// been learned.
func (nn *naiveNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(*GossipPayload); ok {
			nn.Absorb(pl.Rumors, now)
		}
	}
	if nn.step >= nn.reps {
		return
	}
	nn.step++
	if q, ok := nn.peers.One(nn.r); ok {
		out.Send(sim.ProcID(q), nn.pool.Gossip(nn.Rumors().Snapshot(), nil, false))
	}
}

// Quiescent implements sim.Node.
func (nn *naiveNode) Quiescent() bool { return nn.step >= nn.reps }

// CloneNode implements sim.Cloner.
func (nn *naiveNode) CloneNode() sim.Node {
	return &naiveNode{
		Tracker: nn.CloneTracker(),
		id:      nn.id,
		n:       nn.n,
		peers:   nn.peers,
		reps:    nn.reps,
		step:    nn.step,
		r:       nn.r.Clone(),
	}
}

// Reseed implements Reseeder.
func (nn *naiveNode) Reseed(r *rng.RNG) { nn.r = r }
