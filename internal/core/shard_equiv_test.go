package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// shardedGossipRun executes one pooled protocol run at the given shard
// count and returns the result plus the event digest.
func shardedGossipRun(t *testing.T, proto Protocol, cfg sim.Config, preset string) (sim.Result, *sim.DigestTracer) {
	t.Helper()
	p := Params{N: cfg.N, F: cfg.F, Shards: cfg.Shards}
	nodes, err := NewNodes(proto, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.ByName(preset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	dig := sim.NewDigestTracer()
	w.SetTracer(dig)
	res, err := w.Run(proto.Evaluator(p.WithDefaults()))
	if err != nil {
		t.Fatalf("%s under %s shards=%d: %v", proto.Name(), preset, cfg.Shards, err)
	}
	return res, dig
}

// TestShardedProtocolsMatchSerial pins the bit-identical contract at the
// protocol layer: every gossip protocol, under the randomized-delay and
// crash presets (the adversaries with order-sensitive shared streams),
// produces exactly the serial kernel's event stream at every shard count —
// with pooling on, so the per-shard pool partition is exercised too.
func TestShardedProtocolsMatchSerial(t *testing.T) {
	presets := []string{adversary.PresetStandard, adversary.PresetCrashStorm, adversary.PresetStaggered}
	for _, protoName := range Names() {
		proto, err := ByName(protoName)
		if err != nil {
			t.Fatal(err)
		}
		for _, preset := range presets {
			cfg := sim.Config{N: 26, F: 5, D: 3, Delta: 2, Seed: 9}
			switch protoName {
			case NamePush, NamePull, NamePushPull, NameAverage:
				// Crashes are outside these families' promises (a crashed
				// initiator orphans the rumor; a crash destroys averaging
				// mass). F=0 keeps the evaluator honest while the presets'
				// shared delay streams still exercise the replay order.
				cfg.F = 0
			}
			ref, refDig := shardedGossipRun(t, proto, cfg, preset)
			for _, shards := range []int{2, 3, 7, 26} {
				scfg := cfg
				scfg.Shards = shards
				res, dig := shardedGossipRun(t, proto, scfg, preset)
				if res != ref {
					t.Fatalf("%s/%s shards=%d: result diverged:\n got %+v\nwant %+v",
						protoName, preset, shards, res, ref)
				}
				if dig.Sum() != refDig.Sum() || dig.Events() != refDig.Events() {
					t.Fatalf("%s/%s shards=%d: digest %016x/%d events, want %016x/%d",
						protoName, preset, shards, dig.Sum(), dig.Events(), refDig.Sum(), refDig.Events())
				}
			}
		}
	}
}

// TestNewNodesShardPoolPartition checks the per-shard pool plumbing: nodes
// of the same shard share a pool, nodes of different shards never do, and a
// caller-provided pool is rejected for sharded runs.
func TestNewNodesShardPoolPartition(t *testing.T) {
	const n, shards = 11, 3
	nodes, err := NewNodes(EARS{}, Params{N: n, Shards: shards}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pools := make(map[*Pool]int) // pool -> owning shard
	for i, nd := range nodes {
		en, ok := nd.(*earsNode)
		if !ok {
			t.Fatalf("node %d is %T", i, nd)
		}
		s := sim.ShardOf(n, shards, sim.ProcID(i))
		if owner, seen := pools[en.pool]; seen {
			if owner != s {
				t.Fatalf("node %d (shard %d) shares a pool with shard %d", i, s, owner)
			}
		} else {
			pools[en.pool] = s
		}
	}
	if len(pools) != shards {
		t.Fatalf("got %d distinct pools, want %d", len(pools), shards)
	}

	if _, err := NewNodes(EARS{}, Params{N: n, Shards: shards, Pool: NewPool(n)}, 1); err == nil {
		t.Fatal("caller-provided pool accepted for a sharded run")
	}
	// NoPool runs ignore Shards entirely.
	if _, err := NewNodes(EARS{}, Params{N: n, Shards: shards, NoPool: true}, 1); err != nil {
		t.Fatalf("NoPool sharded run rejected: %v", err)
	}
}
