package core

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// TEARS is the paper's Two-hop Epidemic Asynchronous Rumor Spreading
// protocol (§5, Figure 3). It solves majority gossip — every correct
// process receives at least ⌊n/2⌋+1 of the n rumors — in O(d+δ) time with
// O(n^{7/4}·log²n) messages, for f < n/2, under an oblivious adversary.
// Its message complexity is independent of d and δ, which is what makes
// CR-tears the first constant-time asynchronous consensus protocol with
// strictly subquadratic message complexity.
//
// Mechanics: process p pre-selects random audiences Π1(p), Π2(p) (each
// other process joins with probability a/n). In its first local step p
// sends its rumor with a raised flag to Π1 (first-level messages). It then
// counts incoming first-level messages and, whenever the count crosses a
// trigger point — any value in the window [µ−κ, µ+κ), or µ+iκ for positive
// integers i — it broadcasts all gathered rumors to Π2 (second-level
// messages), at most one broadcast per local step (Figure 3 lines 20–27).
//
// Faithfulness notes:
//   - The Π1 transmission happens once, in the first local step, per the
//     paper's prose ("In the first local step, each process p sends...");
//     Figure 3 draws the block inside the loop but lowers the flag after
//     the first iteration, and the complexity analysis (a+κ first-level
//     sends per process) confirms the single-shot reading.
//   - Triggers are edge-triggered on the counter crossing a trigger value:
//     a batch of deliveries that jumps the counter across one or more
//     trigger points fires one broadcast (the pseudocode's per-step bcast
//     flag), and a counter parked inside the window does not re-fire —
//     otherwise the protocol would never be quiescent, violating the
//     paper's quiescence requirement.
type TEARS struct{}

var _ Protocol = TEARS{}

// Name implements Protocol.
func (TEARS) Name() string { return NameTEARS }

// NewNode implements Protocol.
func (TEARS) NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	n := p.N
	a := p.tearsA()
	node := &tearsNode{
		Tracker: p.NewTracker(id, NoValue),
		id:      id,
		n:       n,
		a:       a,
		mu:      a / 2,
		kappa:   p.tearsKappa(),
		pool:    p.Pool,
		r:       r,
	}
	// Π1, Π2: include every potential target independently with
	// probability a/degree (Figure 3 lines 6–7). On the paper's clique the
	// degree is n, giving the original a/n; on an explicit topology the
	// audiences are neighborhood subsets with the same expected size a
	// (clamped to the full neighborhood when a exceeds the degree).
	ps := p.sampler(int(id))
	prob := 0.0
	if deg := ps.Degree(); deg > 0 {
		prob = float64(a) / float64(deg)
	}
	// Audience sizes concentrate tightly around a (Lemma 8); pre-sizing to
	// a small margin above the mean makes construction two allocations
	// instead of a growth chain per audience.
	cap1 := a + a/4 + 8
	node.pi1 = make([]sim.ProcID, 0, cap1)
	node.pi2 = make([]sim.ProcID, 0, cap1)
	ps.Each(func(q int) bool {
		if r.Bool(prob) {
			node.pi1 = append(node.pi1, sim.ProcID(q))
		}
		if r.Bool(prob) {
			node.pi2 = append(node.pi2, sim.ProcID(q))
		}
		return true
	})
	return node
}

// Evaluator implements Protocol: tears promises majority gossip.
func (TEARS) Evaluator(p Params) sim.Evaluator {
	return MajorityGossipEvaluator{Params: p.WithDefaults()}
}

type tearsNode struct {
	Tracker
	id sim.ProcID
	n  int

	a, mu, kappa int
	pi1, pi2     []sim.ProcID

	started  bool
	upCnt    int // first-level (flag ↑) messages received
	checked  int // upCnt value at the last trigger evaluation
	sentSnd  int // second-level broadcasts performed (diagnostics)
	safeEnds sim.Time

	pool *Pool
	r    *rng.RNG
}

var (
	_ sim.Node    = (*tearsNode)(nil)
	_ RumorHolder = (*tearsNode)(nil)
	_ sim.Cloner  = (*tearsNode)(nil)
)

// ID implements sim.Node.
func (t *tearsNode) ID() sim.ProcID { return t.id }

// Step implements sim.Node.
func (t *tearsNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	if !t.started {
		// First local step: first-level messages with the flag raised.
		t.started = true
		payload := t.pool.Gossip(t.rum.Snapshot(), nil, true)
		out.SendAll(t.pi1, payload)
	}

	for _, m := range inbox {
		pl, ok := m.Payload.(*GossipPayload)
		if !ok {
			continue
		}
		t.Absorb(pl.Rumors, now)
		if pl.Flag {
			t.upCnt++
		}
	}

	if t.upCnt != t.checked {
		prev := t.checked
		t.checked = t.upCnt
		if t.triggerCrossed(prev, t.upCnt) {
			t.sentSnd++
			t.safeEnds = now
			payload := t.pool.Gossip(t.rum.Snapshot(), nil, false)
			out.SendAll(t.pi2, payload)
		}
	}
}

// triggerCrossed reports whether the first-level counter crossed a trigger
// point while moving from prev to cur (prev < cur): any value in
// [µ−κ, µ+κ), or µ+iκ for a positive integer i.
func (t *tearsNode) triggerCrossed(prev, cur int) bool {
	if cur <= prev {
		return false
	}
	lo, hi := t.mu-t.kappa, t.mu+t.kappa-1 // inclusive window bounds
	if lo < 1 {
		lo = 1
	}
	// Window: some value in (prev, cur] ∩ [lo, hi]?
	a, b := prev+1, cur
	if lo > a {
		a = lo
	}
	if hi < b {
		b = hi
	}
	if a <= b {
		return true
	}
	// Spikes µ+iκ, i ≥ 1: crossed one iff the spike count below changed.
	return t.spikesUpTo(cur) > t.spikesUpTo(prev)
}

// spikesUpTo counts trigger points µ+iκ (i ≥ 1) that are ≤ x.
func (t *tearsNode) spikesUpTo(x int) int {
	if x < t.mu+t.kappa {
		return 0
	}
	return (x - t.mu) / t.kappa
}

// Quiescent implements sim.Node: after the first-level transmission, the
// node only reacts to deliveries, so it is quiescent whenever no message is
// in flight toward it.
func (t *tearsNode) Quiescent() bool { return t.started }

// CloneNode implements sim.Cloner.
func (t *tearsNode) CloneNode() sim.Node {
	return &tearsNode{
		Tracker:  t.CloneTracker(),
		id:       t.id,
		n:        t.n,
		a:        t.a,
		mu:       t.mu,
		kappa:    t.kappa,
		pi1:      append([]sim.ProcID(nil), t.pi1...),
		pi2:      append([]sim.ProcID(nil), t.pi2...),
		started:  t.started,
		upCnt:    t.upCnt,
		checked:  t.checked,
		sentSnd:  t.sentSnd,
		safeEnds: t.safeEnds,
		r:        t.r.Clone(),
	}
}

// AudienceSizes returns |Π1|, |Π2| (test hook for the paper's Lemma 8
// concentration claim).
func (t *tearsNode) AudienceSizes() (int, int) { return len(t.pi1), len(t.pi2) }

// SecondLevelBroadcasts returns the number of Π2 broadcasts performed.
func (t *tearsNode) SecondLevelBroadcasts() int { return t.sentSnd }

// FirstLevelReceived returns the number of flag-up messages received.
func (t *tearsNode) FirstLevelReceived() int { return t.upCnt }
