package core

import (
	"repro/internal/bitset"
)

// Pool recycles the per-send objects of the gossip hot path: payload
// headers, rumor-collection headers, and (through the embedded bitset
// pool) the copy-on-write word buffers behind rumor sets and informed
// lists. One pool serves one run — it is created by NewNodes, shared by
// all nodes of that world, and must never be shared between concurrently
// running worlds (the simulation kernel is single-goroutine per world, so
// free-list operations are unsynchronized by design; see bitset.Pool).
//
// The release side is driven by the simulator: GossipPayload implements
// sim.Releasable, the world retains a payload once per enqueued message
// and releases it once per consumed delivery, and the final release
// returns every buffer to the pool. Payloads that escape this discipline
// (sends dropped by the topology filter, messages pending to crashed
// processes at the end of a run, hand-driven lower-bound branches) are
// simply garbage collected — the pool never references outstanding
// objects, so a missed release degrades reuse, not correctness.
//
// Reusing one pool across several *sequential* runs of the same N (as the
// benchmarks do) amortizes warm-up and makes steady-state allocations per
// run near-zero; the copy-on-write soundness argument (content.go) is
// untouched because pooling only changes where buffers come from, never
// when they are copied.
type Pool struct {
	bits     *bitset.Pool
	payloads []*GossipPayload
	rumors   []*Rumors

	// Header slabs: cold allocations are carved from blocks so a short
	// burst (a constant-time protocol's whole run fits in a few steps)
	// costs ~1/64 allocations per object even before anything recycles.
	paySlab []GossipPayload
	rumSlab []Rumors

	stats PoolStats
}

// PoolStats counts pool traffic — telemetry for hit rates and release
// discipline. Gets = Reuses + cold slab carves; a reuse ratio near 1 means
// the free lists have reached steady state.
type PoolStats struct {
	// PayloadGets counts payload headers handed out; PayloadReuses the
	// subset served from the free list; PayloadReleases the headers
	// returned by the final Release.
	PayloadGets, PayloadReuses, PayloadReleases int64
	// RumorGets/RumorReuses/RumorReleases are the same for rumor headers.
	RumorGets, RumorReuses, RumorReleases int64
}

// poolSlab is the number of headers per slab block.
const poolSlab = 64

// NewPool returns a pool for runs over n processes.
func NewPool(n int) *Pool {
	return &Pool{bits: bitset.NewPool(n)}
}

// Bits exposes the underlying bitset pool (tracker and informed-list
// construction draw their live-state buffers from it).
func (p *Pool) Bits() *bitset.Pool {
	if p == nil {
		return nil
	}
	return p.bits
}

// Gossip assembles a payload around an already-snapshotted rumor
// collection and optional informed-list snapshot. On a nil pool it
// allocates a plain payload, preserving the legacy unpooled behavior, so
// protocol code can call it unconditionally.
func (p *Pool) Gossip(rum *Rumors, inf *bitset.Matrix, flag bool) *GossipPayload {
	if p == nil {
		return &GossipPayload{Rumors: rum, Informed: informedSnapshot{m: inf}, Flag: flag}
	}
	g := p.getPayload()
	g.Rumors, g.Informed.m, g.Flag = rum, inf, flag
	return g
}

// Stats snapshots the pool's traffic counters (zero value on a nil pool).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.stats
}

func (p *Pool) getPayload() *GossipPayload {
	p.stats.PayloadGets++
	if k := len(p.payloads); k > 0 {
		g := p.payloads[k-1]
		p.payloads[k-1] = nil
		p.payloads = p.payloads[:k-1]
		p.stats.PayloadReuses++
		return g
	}
	if len(p.paySlab) == 0 {
		p.paySlab = make([]GossipPayload, poolSlab)
	}
	g := &p.paySlab[0]
	p.paySlab = p.paySlab[1:]
	g.pool = p
	return g
}

func (p *Pool) putPayload(g *GossipPayload) {
	g.Rumors, g.Informed.m, g.Flag, g.refs = nil, nil, false, 0
	p.payloads = append(p.payloads, g)
	p.stats.PayloadReleases++
}

func (p *Pool) getRumors() *Rumors {
	p.stats.RumorGets++
	if k := len(p.rumors); k > 0 {
		r := p.rumors[k-1]
		p.rumors[k-1] = nil
		p.rumors = p.rumors[:k-1]
		p.stats.RumorReuses++
		return r
	}
	if len(p.rumSlab) == 0 {
		p.rumSlab = make([]Rumors, poolSlab)
	}
	r := &p.rumSlab[0]
	p.rumSlab = p.rumSlab[1:]
	r.pool = p
	return r
}

func (p *Pool) putRumors(r *Rumors) {
	r.Set, r.Vals = nil, nil
	p.rumors = append(p.rumors, r)
	p.stats.RumorReleases++
}
