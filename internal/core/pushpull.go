package core

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PushPull is the single-rumor asynchronous rumor-spreading family in the
// style of Panagiotou & Speidel ("Asynchronous Rumor Spreading on Random
// Graphs"): process 0 starts informed and the rumor spreads by pushes
// (informed processes transmit to sampled targets), pulls (uninformed
// processes solicit sampled targets, who answer if informed), or both.
// Targets are sampled uniformly on [n] on the paper's complete graph and
// uniformly from the sender's neighborhood on an explicit topology — the
// G(n,p) setting the Panagiotou–Speidel regime shifts live in.
//
// Unlike the paper's n-rumor gossip, per-process state is O(1): an
// informed bit, its acquisition time and a send budget. That is what lets
// this family cross the memory wall — a million-process run carries a few
// machine words per process where ears-style rumor sets carry Θ(n) bits.
//
// Quiescence is by send budget, as in the §1 strawman but with the pull
// side keeping liveness honest: an informed process stops after
// ⌈PushPullC·n/(n−f)·log₂n⌉ proactive sends, while an uninformed
// pull-capable process keeps soliciting until informed (and informed
// processes always answer solicitations — answers are reactive and do not
// consume budget). Push-only runs are therefore Monte Carlo with failure
// probability vanishing in the budget constant; pull-capable runs complete
// with probability 1 while some informed process is live.
type PushPull struct {
	// Push makes informed processes proactively transmit the rumor.
	Push bool
	// Pull makes uninformed processes solicit the rumor.
	Pull bool
}

var _ Protocol = PushPull{}

// Protocol names of the three variants.
const (
	NamePush     = "push"
	NamePull     = "pull"
	NamePushPull = "push-pull"
)

// Name implements Protocol.
func (pp PushPull) Name() string {
	switch {
	case pp.Push && pp.Pull:
		return NamePushPull
	case pp.Pull:
		return NamePull
	default:
		return NamePush
	}
}

// NewNode implements Protocol. Process 0 is the initiator: it starts
// informed at time 0 with a full push budget.
func (pp PushPull) NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	nd := &ppNode{
		id:    id,
		push:  pp.Push,
		pull:  pp.Pull,
		peers: p.sampler(int(id)),
		r:     r,
	}
	if pp.Push {
		nd.budget = p.PushBudget()
	}
	if id == 0 {
		nd.informed = true
		nd.pushLeft = nd.budget
	}
	return nd
}

// Evaluator implements Protocol.
func (pp PushPull) Evaluator(p Params) sim.Evaluator {
	return InformedEvaluator{Params: p.WithDefaults()}
}

// Rumor-spreading payloads: shared one-byte singletons, so the million-
// process tier sends without allocating and without pool refcounts.
type ppPayload uint8

const (
	ppRumor   ppPayload = iota // "here is the rumor" (push, or pull answer)
	ppRequest                  // "send me the rumor if you have it"
)

var _ sim.Sizer = ppPayload(0)

// SizeBytes implements sim.Sizer: the rumor is a single bit, transmitted
// as one byte.
func (ppPayload) SizeBytes() int { return 1 }

type ppNode struct {
	id         sim.ProcID
	push, pull bool
	informed   bool
	informedAt sim.Time
	budget     int // proactive sends granted on becoming informed
	pushLeft   int
	peers      topology.Sampler
	r          *rng.RNG
}

var (
	_ sim.Node   = (*ppNode)(nil)
	_ Informed   = (*ppNode)(nil)
	_ sim.Cloner = (*ppNode)(nil)
)

// ID implements sim.Node.
func (nd *ppNode) ID() sim.ProcID { return nd.id }

// Step implements sim.Node: absorb the rumor, answer solicitations, then
// make this step's proactive send (one push if informed and in budget, one
// pull request if uninformed and pull-capable).
func (nd *ppNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		pl, ok := m.Payload.(ppPayload)
		if !ok {
			continue
		}
		if pl == ppRumor && !nd.informed {
			nd.informed = true
			nd.informedAt = now
			nd.pushLeft = nd.budget
		}
	}
	if nd.informed {
		// Reactive answers: every solicitation delivered this step gets the
		// rumor back, budget-free. Requesters are uninformed, so each
		// answer retires its requester — the exchange cannot ping-pong.
		for _, m := range inbox {
			if pl, ok := m.Payload.(ppPayload); ok && pl == ppRequest {
				out.Send(m.From, ppRumor)
			}
		}
		if nd.pushLeft > 0 {
			nd.pushLeft--
			if q, ok := nd.peers.One(nd.r); ok {
				out.Send(sim.ProcID(q), ppRumor)
			}
		}
		return
	}
	if nd.pull {
		if q, ok := nd.peers.One(nd.r); ok {
			out.Send(sim.ProcID(q), ppRequest)
		}
	}
}

// Quiescent implements sim.Node: an informed process rests once its budget
// is spent (reactive answers are still sent if solicitations arrive — but
// a pending solicitation keeps the world non-quiet by itself); an
// uninformed process rests only if it has no pull side to run.
func (nd *ppNode) Quiescent() bool {
	if !nd.informed {
		return !nd.pull
	}
	return nd.pushLeft == 0
}

// Informed implements the Informed interface.
func (nd *ppNode) Informed() bool { return nd.informed }

// InformedAt implements the Informed interface.
func (nd *ppNode) InformedAt() sim.Time { return nd.informedAt }

// CloneNode implements sim.Cloner.
func (nd *ppNode) CloneNode() sim.Node {
	c := *nd
	c.r = nd.r.Clone()
	return &c
}

// Reseed implements Reseeder.
func (nd *ppNode) Reseed(r *rng.RNG) { nd.r = r }

// Informed is implemented by nodes of single-rumor spreading protocols:
// whether the process holds the rumor and when it acquired it (0 for the
// initiator).
type Informed interface {
	Informed() bool
	InformedAt() sim.Time
}

// InformedEvaluator judges single-rumor spreading: every live process is
// informed, and information flowed from the initiator — if anyone beyond
// process 0 is informed, process 0 must have taken a step (nothing spreads
// out of an unscheduled initiator). CompletedAt is the last acquisition
// time over live processes.
type InformedEvaluator struct {
	Params Params
}

var _ sim.Evaluator = InformedEvaluator{}

// Evaluate implements sim.Evaluator.
func (e InformedEvaluator) Evaluate(v sim.View) sim.Outcome {
	var completedAt sim.Time
	for p := 0; p < v.N(); p++ {
		nd, ok := v.Node(sim.ProcID(p)).(Informed)
		if !ok {
			return sim.Outcome{Detail: fmt.Sprintf("node %d does not implement Informed", p)}
		}
		if p != 0 && nd.Informed() && v.StepsTaken(0) == 0 {
			return sim.Outcome{Detail: fmt.Sprintf(
				"validity violated: process %d is informed but the initiator never took a step", p)}
		}
		if !v.Alive(sim.ProcID(p)) {
			continue
		}
		if !nd.Informed() {
			return sim.Outcome{Detail: fmt.Sprintf(
				"spreading violated: correct process %d is uninformed", p)}
		}
		if at := nd.InformedAt(); at > completedAt {
			completedAt = at
		}
	}
	return sim.Outcome{OK: true, CompletedAt: completedAt}
}
