package core

import (
	"repro/internal/bitset"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// EARS is the paper's Epidemic Asynchronous Rumor Spreading protocol
// (§3, Figure 2). Each local step a process sends its rumor set V(p) and
// informed-list I(p) to one uniformly random target. The informed-list
// records pairs (r, q) — "rumor r has been sent to process q by someone" —
// and the process enters a Θ(n/(n−f)·log n)-step shut-down phase once
// L(p) = {q : ∃r ∈ V(p), (r,q) ∉ I(p)} is empty, after which it sleeps.
// Learning a new rumor (or a new rumor/target obligation) wakes it up.
//
// Against an oblivious adversary: time O(n/(n−f)·log²n·(d+δ)), messages
// O(n·log³n·(d+δ)) w.h.p. (Theorem 6).
type EARS struct{}

var _ Protocol = EARS{}

// Name implements Protocol.
func (EARS) Name() string { return NameEARS }

// NewNode implements Protocol.
func (EARS) NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	return &earsNode{
		Tracker:       p.NewTracker(id, NoValue),
		id:            id,
		n:             p.N,
		peers:         p.sampler(int(id)),
		inf:           newInformedList(p.N, p.Pool, p.obligationRows(int(id))),
		shutdownSteps: p.shutdownThreshold(),
		fanout:        1,
		pool:          p.Pool,
		r:             r,
	}
}

// Evaluator implements Protocol: ears promises full gossip.
func (EARS) Evaluator(p Params) sim.Evaluator {
	return FullGossipEvaluator{Params: p.WithDefaults()}
}

// earsNode is the per-process state of ears; sears reuses it with a larger
// fan-out and a one-step shut-down phase.
type earsNode struct {
	Tracker
	id sim.ProcID
	n  int

	// peers draws transmission targets: uniform on [n] in the paper's
	// complete-graph model, uniform over the node's neighborhood when a
	// topology is configured.
	peers topology.Sampler

	inf *informedList

	// sleepCnt counts consecutive local steps with L(p) = ∅; the process
	// transmits during the first shutdownSteps of them (the shut-down
	// phase), then sleeps. It resets to zero whenever L(p) ≠ ∅ (Figure 2
	// lines 12–15).
	sleepCnt      int
	shutdownSteps int

	// fanout is the number of random targets per local step: 1 for ears,
	// Θ(n^ε log n) for sears (§4).
	fanout int
	// kbuf is the reusable fan-out target buffer (sears draws Θ(n^ε log n)
	// targets per step; the buffer keeps that allocation-free).
	kbuf []int

	// pool recycles payload snapshots (nil = unpooled run).
	pool *Pool

	r *rng.RNG
}

var (
	_ sim.Node    = (*earsNode)(nil)
	_ RumorHolder = (*earsNode)(nil)
	_ sim.Cloner  = (*earsNode)(nil)
)

// ID implements sim.Node.
func (e *earsNode) ID() sim.ProcID { return e.id }

// Step implements sim.Node, mirroring one iteration of Figure 2's loop.
func (e *earsNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	vGrew, iGrew := false, false
	for _, m := range inbox {
		pl, ok := m.Payload.(*GossipPayload)
		if !ok {
			continue
		}
		before := e.count
		e.Absorb(pl.Rumors, now)
		if e.count != before {
			vGrew = true
		}
		if pl.Informed.m != nil {
			e.inf.union(pl.Informed.m)
			iGrew = true
		}
	}
	// "Update L(p) based on V(p) and I(p)." (line 11)
	e.inf.refresh(e.rum.Set, vGrew, iGrew)

	if e.inf.covered() {
		e.sleepCnt++ // line 13
	} else {
		e.sleepCnt = 0 // line 14
	}
	if e.sleepCnt > e.shutdownSteps {
		return // asleep (line 15): receive-only until L(p) reopens
	}

	if e.peers.Degree() == 0 {
		return // isolated vertex (degenerate graph): nothing to transmit to
	}

	// Epidemic transmission mode (lines 16–21): snapshot first — the
	// pseudocode sends ⟨V(p), I(p)⟩ before recording the new pairs.
	payload := e.pool.Gossip(e.rum.Snapshot(), e.inf.m.Snapshot(), false)
	if e.fanout <= 1 {
		// Uniform on [n] (self included) on the clique; uniform over the
		// neighborhood on an explicit topology.
		if q, ok := e.peers.One(e.r); ok {
			out.Send(sim.ProcID(q), payload)
			e.inf.markSent(q, e.rum.Set)
		}
		return
	}
	e.kbuf = e.peers.KInto(e.kbuf[:0], e.fanout, e.r)
	for _, q := range e.kbuf {
		out.Send(sim.ProcID(q), payload)
		e.inf.markSent(q, e.rum.Set)
	}
}

// Quiescent implements sim.Node: asleep after the shut-down phase. Any new
// rumor or obligation arrives in a message, which keeps the world awake, so
// this predicate is stable while no messages are in flight. An isolated
// vertex is immediately quiescent: it can never transmit, so its
// informed-list obligations are unfillable and waiting on them would spin
// the world to timeout.
func (e *earsNode) Quiescent() bool {
	if e.peers.Degree() == 0 {
		return true
	}
	return e.inf.covered() && e.sleepCnt > e.shutdownSteps
}

// CloneNode implements sim.Cloner. Clones are unpooled: they run in
// hand-driven branched executions where nothing releases their snapshots.
func (e *earsNode) CloneNode() sim.Node {
	return &earsNode{
		Tracker:       e.CloneTracker(),
		id:            e.id,
		n:             e.n,
		peers:         e.peers,
		inf:           e.inf.clone(),
		sleepCnt:      e.sleepCnt,
		shutdownSteps: e.shutdownSteps,
		fanout:        e.fanout,
		r:             e.r.Clone(),
	}
}

// Asleep reports whether the node is past its shut-down phase (test hook).
func (e *earsNode) Asleep() bool { return e.Quiescent() }

// InformedPairs returns |I(p)| (test hook).
func (e *earsNode) InformedPairs() int { return e.inf.m.Count() }

// InformedHas reports whether (rumor, target) ∈ I(p) (test hook for the
// informed-list soundness property).
func (e *earsNode) InformedHas(rumor, target sim.ProcID) bool {
	return e.inf.m.Test(int(target), int(rumor))
}

// informedList maintains I(p) together with an incrementally updated
// uncovered-row set L(p). Rows only gain bits and V only grows, so:
// absorbing more informed pairs can only shrink L(p) (recheck uncovered
// rows only), while learning a new rumor can only grow L(p) (full
// recompute).
//
// On the paper's complete graph the obligation ranges over every row: the
// process keeps transmitting until I(p) shows each rumor in V(p) sent to
// each of the n processes, which the process can always force by sampling
// the missing target itself. On an explicit sparse topology that escape
// hatch does not exist — a process can only ever send to its neighbors —
// so the obligation is scoped to the neighborhood (obligated != nil):
// p sleeps once every neighbor row is covered. Coverage of distant
// processes follows hop by hop (each process delivers its rumor set to
// all its neighbors before resting, and learning a new rumor reopens the
// obligation), which is the property full gossip on a connected graph
// needs. Scoping is not an optimization: with [n]-wide obligations a node
// whose distant rows depend on hearsay can transmit forever after every
// potential informant has gone to sleep — a livelock the scenario fuzzer
// found on Erdős–Rényi graphs under skewed schedules.
type informedList struct {
	n         int
	m         *bitset.Matrix
	obligated *bitset.Set // rows L(p) may range over; nil = all of [n]
	uncovered *bitset.Set // L(p): obligated rows q with V ⊄ I-row(q)
	scratch   []int32     // reusable row buffer for refresh
}

// newInformedList builds I(p). With a pool, the matrix (the largest object
// a gossip node snapshots into payloads) and the uncovered-row set draw
// their buffers from the pool instead of the allocator. obligated scopes
// the coverage obligation (nil = every row; see the type comment) and is
// retained by the informed list, which never mutates it.
func newInformedList(n int, pool *Pool, obligated *bitset.Set) *informedList {
	var m *bitset.Matrix
	var unc *bitset.Set
	if pool != nil {
		m = pool.bits.NewMatrix()
		unc = pool.bits.NewSet()
	} else {
		m = bitset.NewMatrix(n)
		unc = bitset.New(n)
	}
	if obligated == nil {
		unc.Fill()
	} else {
		unc.UnionWith(obligated)
	}
	return &informedList{n: n, m: m, obligated: obligated, uncovered: unc}
}

func (il *informedList) union(other *bitset.Matrix) { il.m.UnionWith(other) }

// refresh recomputes L(p) after message absorption.
func (il *informedList) refresh(v *bitset.Set, vGrew, iGrew bool) {
	switch {
	case vGrew:
		il.uncovered.Clear()
		if il.obligated != nil {
			il.obligated.ForEach(func(q int) bool {
				if !il.m.RowContainsSet(q, v) {
					il.uncovered.Add(q)
				}
				return true
			})
			return
		}
		for q := 0; q < il.n; q++ {
			if !il.m.RowContainsSet(q, v) {
				il.uncovered.Add(q)
			}
		}
	case iGrew:
		il.scratch = il.uncovered.AppendDiff(nil, il.scratch[:0])
		for _, q := range il.scratch {
			if il.m.RowContainsSet(int(q), v) {
				il.uncovered.Remove(int(q))
			}
		}
	}
}

// markSent records (r, q) for every r ∈ v after a send to q (Figure 2
// lines 19–20), which by construction covers row q.
func (il *informedList) markSent(q int, v *bitset.Set) {
	il.m.RowUnionSet(q, v)
	il.uncovered.Remove(q)
}

// covered reports L(p) = ∅.
func (il *informedList) covered() bool { return il.uncovered.Empty() }

func (il *informedList) clone() *informedList {
	return &informedList{
		n: il.n, m: il.m.Clone(),
		obligated: il.obligated, // immutable after construction
		uncovered: il.uncovered.Clone(),
	}
}

// informedSnapshot wraps an optional informed-list snapshot in a payload.
type informedSnapshot struct {
	m *bitset.Matrix
}

// sizeBytes approximates a sparse wire encoding of the informed list,
// capped by the dense bitmap size.
func (s informedSnapshot) sizeBytes() int {
	if s.m == nil {
		return 0
	}
	n := s.m.Universe()
	dense := (n*n + 7) / 8
	sparse := 8 * s.m.Count()
	if sparse < dense {
		return sparse
	}
	return dense
}
