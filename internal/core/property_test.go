package core

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/bitset"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// Property: for random small configurations, every protocol completes under
// every oblivious preset, and the result is a pure function of the seed.
// ---------------------------------------------------------------------------

func TestQuickGossipAlwaysCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	presets := adversary.Presets()
	protos := []Protocol{Trivial{}, EARS{}, SEARS{}, TEARS{}}
	check := func(nRaw, fRaw, dRaw, deltaRaw uint8, pSel, aSel uint8, seed int64) bool {
		n := 8 + int(nRaw)%56    // 8..63
		f := int(fRaw) % (n / 2) // keep < n/2 so tears' precondition holds too
		d := 1 + int(dRaw)%4
		delta := 1 + int(deltaRaw)%4
		proto := protos[int(pSel)%len(protos)]
		preset := presets[int(aSel)%len(presets)]
		cfg := sim.Config{N: n, F: f, D: sim.Time(d), Delta: sim.Time(delta), Seed: seed}
		res, err := runGossip2(proto, Params{}, cfg, preset)
		if err != nil {
			t.Logf("FAIL %s/%s n=%d f=%d d=%d δ=%d seed=%d: %v",
				proto.Name(), preset, n, f, d, delta, seed, err)
			return false
		}
		return res.Completed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Property: rumor causality. Every rumor a node holds arrived in a message
// that actually carried it (or is the node's own); acquisition times match
// delivery times. This checks the simulator and the protocols end to end:
// no state leaks outside messages.
// ---------------------------------------------------------------------------

// causalityTracer records, per destination, the union of rumors delivered
// to it and the time each rumor first arrived.
type causalityTracer struct {
	sim.NopTracer
	arrived []map[int]sim.Time // per process: rumor -> first delivery time
}

func newCausalityTracer(n int) *causalityTracer {
	c := &causalityTracer{arrived: make([]map[int]sim.Time, n)}
	for i := range c.arrived {
		c.arrived[i] = map[int]sim.Time{}
	}
	return c
}

func (c *causalityTracer) OnDeliver(m sim.Message, at sim.Time) {
	pl, ok := m.Payload.(*GossipPayload)
	if !ok || pl.Rumors == nil {
		return
	}
	dst := c.arrived[m.To]
	pl.Rumors.Set.ForEach(func(r int) bool {
		if _, seen := dst[r]; !seen {
			dst[r] = at
		}
		return true
	})
}

func TestRumorCausality(t *testing.T) {
	for _, proto := range []Protocol{Trivial{}, EARS{}, SEARS{}, TEARS{}} {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			cfg := sim.Config{N: 48, F: 12, D: 3, Delta: 2, Seed: 21}
			p := Params{N: cfg.N, F: cfg.F}
			nodes, err := NewNodes(proto, p, cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			adv, _ := adversary.ByName(adversary.PresetStandard, cfg)
			w, err := sim.NewWorld(cfg, nodes, adv)
			if err != nil {
				t.Fatal(err)
			}
			tracer := newCausalityTracer(cfg.N)
			w.SetTracer(tracer)
			if _, err := w.Run(proto.Evaluator(p)); err != nil {
				t.Fatal(err)
			}
			for q, nd := range nodes {
				h := nd.(RumorHolder)
				h.RumorSet().ForEach(func(r int) bool {
					if r == q {
						return true // own rumor, no message needed
					}
					at, ok := tracer.arrived[q][r]
					if !ok {
						t.Errorf("node %d holds rumor %d never delivered to it", q, r)
						return false
					}
					if got := h.RumorAcquiredAt(sim.ProcID(r)); got != at {
						t.Errorf("node %d rumor %d acquired at %d but first delivered at %d", q, r, got, at)
						return false
					}
					return true
				})
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Property: ears informed-list soundness. Every pair (r, q) in any I(p) at
// the end of a run corresponds to a message that was actually sent to q
// carrying rumor r. This is the invariant that makes sleeping safe
// (gathering holds at quiescence).
// ---------------------------------------------------------------------------

// sentRumorsTracer records, per destination, the union of rumors in
// messages sent to it (sent, not delivered: I(p) records sends).
type sentRumorsTracer struct {
	sim.NopTracer
	sentTo []*bitset.Set
}

func (s *sentRumorsTracer) OnSend(m sim.Message) {
	if pl, ok := m.Payload.(*GossipPayload); ok && pl.Rumors != nil {
		s.sentTo[m.To].UnionWith(pl.Rumors.Set)
	}
}

func TestEARSInformedListSoundness(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := sim.Config{N: 40, F: 10, D: 2, Delta: 2, Seed: seed}
		p := Params{N: cfg.N, F: cfg.F}
		nodes, err := NewNodes(EARS{}, p, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		adv, _ := adversary.ByName(adversary.PresetStandard, cfg)
		w, err := sim.NewWorld(cfg, nodes, adv)
		if err != nil {
			t.Fatal(err)
		}
		tracer := &sentRumorsTracer{sentTo: make([]*bitset.Set, cfg.N)}
		for i := range tracer.sentTo {
			tracer.sentTo[i] = bitset.New(cfg.N)
		}
		w.SetTracer(tracer)
		if _, err := w.Run(EARS{}.Evaluator(p)); err != nil {
			t.Fatal(err)
		}
		for _, nd := range nodes {
			en := nd.(*earsNode)
			for q := 0; q < cfg.N; q++ {
				for r := 0; r < cfg.N; r++ {
					if en.InformedHas(sim.ProcID(r), sim.ProcID(q)) && !tracer.sentTo[q].Test(r) {
						t.Fatalf("seed %d: node %d's I claims rumor %d sent to %d, but no such send happened",
							seed, en.ID(), r, q)
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Property: Tracker bookkeeping invariants under random absorb sequences.
// ---------------------------------------------------------------------------

func TestQuickTrackerInvariants(t *testing.T) {
	check := func(adds []uint16, times []uint8) bool {
		const n = 64
		tr := NewTracker(n, 3, NoValue, false)
		now := sim.Time(1)
		for i, a := range adds {
			in := NewRumors(n, false)
			in.Add(sim.ProcID(int(a)%n), NoValue)
			if i < len(times) {
				now += sim.Time(times[i] % 4)
			}
			tr.Absorb(in, now)
		}
		// count matches set cardinality
		if tr.Rumors().Count() != tr.RumorSet().Count() {
			return false
		}
		// countAt is defined and nondecreasing up to the current count
		prev := sim.Time(0)
		for k := 1; k <= tr.RumorSet().Count(); k++ {
			at := tr.RumorCountReachedAt(k)
			if at < 0 || at < prev {
				return false
			}
			prev = at
		}
		// every held rumor has a valid acquisition time; own rumor at 0
		ok := true
		tr.RumorSet().ForEach(func(r int) bool {
			at := tr.RumorAcquiredAt(sim.ProcID(r))
			if at < 0 {
				ok = false
				return false
			}
			if r == 3 && at != 0 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Absorb is idempotent and order-insensitive w.r.t. the final rumor set.
func TestQuickAbsorbCommutes(t *testing.T) {
	check := func(xs, ys []uint16) bool {
		const n = 50
		mk := func(vals []uint16) *Rumors {
			ru := NewRumors(n, false)
			for _, v := range vals {
				ru.Add(sim.ProcID(int(v)%n), NoValue)
			}
			return ru
		}
		a, bset := mk(xs), mk(ys)
		t1 := NewTracker(n, 0, NoValue, false)
		t1.Absorb(a, 1)
		t1.Absorb(bset, 2)
		t1.Absorb(a, 3) // idempotent re-absorb
		t2 := NewTracker(n, 0, NoValue, false)
		t2.Absorb(bset, 1)
		t2.Absorb(a, 2)
		return t1.RumorSet().Equal(t2.RumorSet())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Rumors.Union carries values exactly for newly gained rumors and never
// overwrites existing ones (write-once discipline).
func TestQuickRumorsUnionValues(t *testing.T) {
	check := func(xs, ys []uint16, vx, vy uint8) bool {
		const n = 40
		vx %= 3
		vy %= 3
		a := NewRumors(n, true)
		for _, v := range xs {
			a.Add(sim.ProcID(int(v)%n), vx)
		}
		b := NewRumors(n, true)
		for _, v := range ys {
			b.Add(sim.ProcID(int(v)%n), vy)
		}
		aCount := a.Count()
		u := a.Clone()
		u.Union(b)
		if u.Count() < aCount || u.Count() < b.Count() {
			return false
		}
		ok := true
		u.Set.ForEach(func(i int) bool {
			want := vy
			if a.Has(sim.ProcID(i)) {
				want = vx // pre-existing value preserved
			}
			if u.Value(sim.ProcID(i)) != want {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// GossipPayload size accounting is positive and monotone in content.
func TestPayloadSizeBytes(t *testing.T) {
	small := &GossipPayload{Rumors: NewRumors(64, false)}
	small.Rumors.Add(1, NoValue)
	big := &GossipPayload{Rumors: NewRumors(64, true)}
	for i := 0; i < 64; i++ {
		big.Rumors.Add(sim.ProcID(i), 1)
	}
	if small.SizeBytes() <= 0 {
		t.Fatal("non-positive payload size")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("size not monotone: big=%d small=%d", big.SizeBytes(), small.SizeBytes())
	}
	withInformed := &GossipPayload{
		Rumors:   small.Rumors,
		Informed: informedSnapshot{m: bitset.NewMatrix(64)},
	}
	withInformed.Informed.m.Set(1, 2)
	if withInformed.SizeBytes() <= small.SizeBytes() {
		t.Fatal("informed list not accounted")
	}
}
