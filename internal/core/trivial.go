package core

import (
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Trivial is the baseline gossip protocol from the paper's introduction:
// "the trivial gossip algorithm in which each process sends its rumor
// directly to everyone else has Θ(n²) message complexity and time
// complexity O(d+δ)". Each process sends its rumor to all n−1 others in
// its first local step and is then quiescent.
type Trivial struct{}

var _ Protocol = Trivial{}

// Name implements Protocol.
func (Trivial) Name() string { return NameTrivial }

// NewNode implements Protocol.
func (Trivial) NewNode(id sim.ProcID, p Params, _ *rng.RNG) sim.Node {
	p = p.WithDefaults()
	return &trivialNode{
		Tracker: p.NewTracker(id, NoValue),
		id:      id,
		n:       p.N,
		peers:   p.sampler(int(id)),
		pool:    p.Pool,
	}
}

// Evaluator implements Protocol: trivial achieves full gossip.
func (Trivial) Evaluator(p Params) sim.Evaluator {
	return FullGossipEvaluator{Params: p.WithDefaults()}
}

type trivialNode struct {
	Tracker
	id    sim.ProcID
	n     int
	peers topology.Sampler
	pool  *Pool
	sent  bool
}

var (
	_ sim.Node    = (*trivialNode)(nil)
	_ RumorHolder = (*trivialNode)(nil)
	_ sim.Cloner  = (*trivialNode)(nil)
)

// ID implements sim.Node.
func (t *trivialNode) ID() sim.ProcID { return t.id }

// Step implements sim.Node.
func (t *trivialNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(*GossipPayload); ok {
			t.Absorb(pl.Rumors, now)
		}
	}
	if t.sent {
		return
	}
	t.sent = true
	payload := t.pool.Gossip(t.rum.Snapshot(), nil, false)
	t.peers.Each(func(q int) bool {
		out.Send(sim.ProcID(q), payload)
		return true
	})
}

// Quiescent implements sim.Node.
func (t *trivialNode) Quiescent() bool { return t.sent }

// CloneNode implements sim.Cloner.
func (t *trivialNode) CloneNode() sim.Node {
	return &trivialNode{
		Tracker: t.CloneTracker(),
		id:      t.id,
		n:       t.n,
		peers:   t.peers,
		sent:    t.sent,
	}
}
