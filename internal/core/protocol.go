package core

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Protocol is a gossip protocol family: a node factory plus the completion
// predicate the protocol promises (full gossip or majority gossip).
type Protocol interface {
	// Name returns the protocol's short name ("ears", "sears", ...).
	Name() string
	// NewNode builds the state machine for process id. r is the node's
	// private random stream; nodes must draw randomness only from it.
	NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node
	// Evaluator returns the post-run judge for the protocol's correctness
	// condition under parameters p.
	Evaluator(p Params) sim.Evaluator
}

// Protocol names accepted by ByName.
const (
	NameTrivial = "trivial"
	NameEARS    = "ears"
	NameSEARS   = "sears"
	NameTEARS   = "tears"
)

// Names lists the protocols provided by this package (naive is the §1
// strawman ablation; push/pull/push-pull and average are the related-work
// families of PAPERS.md, not paper contributions).
func Names() []string {
	return []string{NameTrivial, NameEARS, NameSEARS, NameTEARS, NameNaive,
		NamePush, NamePull, NamePushPull, NameAverage}
}

// ByName returns the named protocol.
func ByName(name string) (Protocol, error) {
	switch name {
	case NameTrivial:
		return Trivial{}, nil
	case NameEARS:
		return EARS{}, nil
	case NameSEARS:
		return SEARS{}, nil
	case NameTEARS:
		return TEARS{}, nil
	case NameNaive:
		return Naive{}, nil
	case NamePush:
		return PushPull{Push: true}, nil
	case NamePull:
		return PushPull{Pull: true}, nil
	case NamePushPull:
		return PushPull{Push: true, Pull: true}, nil
	case NameAverage:
		return Average{}, nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q (have %v)", name, Names())
	}
}

// NewNodes builds the n nodes of a protocol instance. Each node receives an
// independent stream forked from the seed, so runs are reproducible and the
// streams are disjoint from any adversary stream (which forks with a
// different tag).
//
// Unless p.NoPool is set (or p.Pool is already provided), NewNodes creates
// one snapshot pool shared by the run's nodes: payload and rumor-set
// storage is recycled through the simulator's delivery refcounts instead
// of being garbage collected per send. Pooling is invisible to results —
// it consumes no randomness and touches no metric — and is exercised
// against the unpooled kernel by the determinism tests.
func NewNodes(proto Protocol, p Params, seed int64) ([]sim.Node, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Pool != nil && p.Pool.Bits().Universe() != p.N {
		// A mismatched pool would silently mis-size every rumor set and
		// informed list (bitset ignores out-of-range indices); fail loudly.
		return nil, fmt.Errorf("core: pool is sized for n = %d, run has N = %d",
			p.Pool.Bits().Universe(), p.N)
	}
	shards := sim.EffectiveShards(p.N, p.Shards)
	if p.Pool != nil && shards > 1 {
		// A caller-shared pool is single-goroutine; sharded supersteps run
		// node Steps concurrently, so the combination would be a data race.
		return nil, fmt.Errorf("core: caller-provided Pool cannot be shared across %d shards", shards)
	}
	if p.Pool == nil && !p.NoPool && shards > 1 {
		// One pool per shard, over the kernel's own partition: every node
		// allocates from (and is released back to) storage owned by its
		// shard, and releases happen in the superstep's serial phase.
		pools := make([]*Pool, shards)
		for s := range pools {
			pools[s] = NewPool(p.N)
		}
		root := rng.New(seed).Fork(0x90551)
		nodes := make([]sim.Node, p.N)
		for i := 0; i < p.N; i++ {
			ps := p
			ps.Pool = pools[sim.ShardOf(p.N, shards, sim.ProcID(i))]
			nodes[i] = proto.NewNode(sim.ProcID(i), ps, root.Fork(uint64(i)))
		}
		return nodes, nil
	}
	if p.Pool == nil && !p.NoPool {
		p.Pool = NewPool(p.N)
	}
	root := rng.New(seed).Fork(0x90551)
	nodes := make([]sim.Node, p.N)
	for i := 0; i < p.N; i++ {
		nodes[i] = proto.NewNode(sim.ProcID(i), p, root.Fork(uint64(i)))
	}
	return nodes, nil
}

// Reseeder is implemented by nodes whose randomness can be replaced. The
// Theorem 1 adversary estimates the distribution of a process's future
// behaviour by cloning its state and re-running it with fresh coin flips;
// replacing the stream of a clone realizes "expectation over the process's
// randomness" by Monte Carlo.
type Reseeder interface {
	Reseed(r *rng.RNG)
}

// Reseed implements Reseeder for ears/sears nodes.
func (e *earsNode) Reseed(r *rng.RNG) { e.r = r }

// Reseed implements Reseeder for tears nodes. Note the audiences Π1, Π2
// were fixed at construction; only future coin flips change.
func (t *tearsNode) Reseed(r *rng.RNG) { t.r = r }

// GossipPayload is the message payload exchanged by the protocols in this
// package: the sender's rumor collection and, for informed-list protocols
// (ears, sears), a snapshot of the informed-list matrix. All components are
// copy-on-write snapshots; receivers must not mutate them and must not
// retain them beyond the Step that delivered them (a pooled payload's
// storage is recycled as soon as every addressed process has consumed it).
type GossipPayload struct {
	Rumors   *Rumors
	Informed informedSnapshot
	// Flag is the tears first-level marker (↑ in Figure 3).
	Flag bool

	// refs counts undelivered messages carrying this payload; pool is the
	// run's snapshot pool. Both are zero for unpooled payloads, for which
	// Retain/Release are no-ops and the GC owns the storage.
	refs int32
	pool *Pool
}

var _ sim.Sizer = (*GossipPayload)(nil)

// Retain implements sim.Releasable: the world retains the payload once per
// message it enqueues.
func (g *GossipPayload) Retain() {
	if g.pool == nil {
		return
	}
	g.refs++
}

// Release implements sim.Releasable: the world releases the payload after
// the addressed process's Step consumed the delivery. The final release
// returns the payload and its snapshots to the run's pool.
func (g *GossipPayload) Release() {
	if g.pool == nil {
		return
	}
	if g.refs--; g.refs > 0 {
		return
	}
	if g.Rumors != nil {
		g.Rumors.release()
	}
	if g.Informed.m != nil {
		g.Informed.m.Release()
	}
	g.pool.putPayload(g)
}

// SizeBytes implements sim.Sizer: dense rumor bitmap, values, plus a sparse
// encoding of the informed list (the paper's bit-complexity future work).
func (g *GossipPayload) SizeBytes() int {
	b := 1 // flag
	if g.Rumors != nil {
		b += g.Rumors.SizeBytes()
	}
	b += g.Informed.sizeBytes()
	return b
}
