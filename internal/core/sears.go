package core

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// SEARS is the paper's Spamming Epidemic Asynchronous Rumor Spreading
// protocol (§4): ears with two modifications — each local step sends to
// Θ(n^ε·log n) random targets instead of one, and the shut-down phase
// lasts a single step.
//
// Against an oblivious adversary, for every constant ε < 1: time
// O(n/(ε(n−f))·(d+δ)) and messages O(n^{2+ε}/(ε(n−f))·log n·(d+δ))
// (Theorem 7). For f ≤ n/2 this is constant-time gossip (w.r.t. n) with
// subquadratic message complexity.
type SEARS struct{}

var _ Protocol = SEARS{}

// Name implements Protocol.
func (SEARS) Name() string { return NameSEARS }

// NewNode implements Protocol.
func (SEARS) NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	fanout := p.searsFanout()
	return &earsNode{
		Tracker: p.NewTracker(id, NoValue),
		id:      id,
		n:       p.N,
		peers:   p.sampler(int(id)),
		inf:     newInformedList(p.N, p.Pool, p.obligationRows(int(id))),
		// "Each process takes only one shut-down step."
		shutdownSteps: 1,
		fanout:        fanout,
		kbuf:          make([]int, 0, fanout),
		pool:          p.Pool,
		r:             r,
	}
}

// Evaluator implements Protocol: sears promises full gossip.
func (SEARS) Evaluator(p Params) sim.Evaluator {
	return FullGossipEvaluator{Params: p.WithDefaults()}
}
