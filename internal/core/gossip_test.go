package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// runGossip builds nodes, world and adversary for a protocol and runs it.
func runGossip(t *testing.T, proto Protocol, p Params, cfg sim.Config, preset string) sim.Result {
	t.Helper()
	res, err := tryRunGossip(proto, p, cfg, preset)
	if err != nil {
		t.Fatalf("%s under %s (n=%d f=%d d=%d δ=%d seed=%d): %v",
			proto.Name(), preset, cfg.N, cfg.F, cfg.D, cfg.Delta, cfg.Seed, err)
	}
	return res
}

func tryRunGossip(proto Protocol, p Params, cfg sim.Config, preset string) (sim.Result, error) {
	p.N, p.F = cfg.N, cfg.F
	nodes, err := NewNodes(proto, p, cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(proto.Evaluator(p.WithDefaults()))
}

func TestTrivialGossipBenign(t *testing.T) {
	cfg := sim.Config{N: 32, F: 0, D: 1, Delta: 1, Seed: 1}
	res := runGossip(t, Trivial{}, Params{}, cfg, adversary.PresetBenign)
	if want := int64(32 * 31); res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
	if res.TimeComplexity > 2 {
		t.Fatalf("time = %d, want <= 2 (= d+δ)", res.TimeComplexity)
	}
}

func TestTrivialGossipWithCrashesAndDelays(t *testing.T) {
	for _, preset := range adversary.Presets() {
		for seed := int64(0); seed < 3; seed++ {
			cfg := sim.Config{N: 48, F: 15, D: 4, Delta: 3, Seed: seed}
			res := runGossip(t, Trivial{}, Params{}, cfg, preset)
			if !res.Completed {
				t.Fatalf("preset %s seed %d: not completed", preset, seed)
			}
		}
	}
}

func TestEARSCompletesAllPresets(t *testing.T) {
	for _, preset := range adversary.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				cfg := sim.Config{N: 64, F: 21, D: 2, Delta: 2, Seed: seed}
				res := runGossip(t, EARS{}, Params{}, cfg, preset)
				if !res.Completed {
					t.Fatalf("seed %d: %+v", seed, res)
				}
			}
		})
	}
}

func TestEARSHalfFailures(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := sim.Config{N: 64, F: 31, D: 3, Delta: 2, Seed: seed}
		runGossip(t, EARS{}, Params{}, cfg, adversary.PresetCrashStorm)
	}
}

func TestEARSNoFailuresFastPath(t *testing.T) {
	cfg := sim.Config{N: 128, F: 0, D: 1, Delta: 1, Seed: 9}
	res := runGossip(t, EARS{}, Params{}, cfg, adversary.PresetBenign)
	// Sanity: epidemic gossip should need far fewer than n² messages.
	n2 := int64(cfg.N) * int64(cfg.N)
	if res.Messages >= n2 {
		t.Fatalf("ears used %d messages, not better than trivial %d", res.Messages, n2)
	}
}

func TestEARSAdaptiveCrashOnFirstSend(t *testing.T) {
	// Adaptive crash timing: kill the first F processes that ever send.
	// ears must still complete for the survivors.
	cfg := sim.Config{N: 40, F: 10, D: 2, Delta: 1, Seed: 3}
	p := Params{N: cfg.N, F: cfg.F}
	nodes, err := NewNodes(EARS{}, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.Compose(nil, nil, adversary.NewCrashOnFirstSend(cfg.F))
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(EARS{}.Evaluator(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != cfg.F {
		t.Fatalf("crashes = %d, want %d", res.Crashes, cfg.F)
	}
}

func TestSEARSCompletesAllPresets(t *testing.T) {
	for _, preset := range adversary.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				cfg := sim.Config{N: 64, F: 21, D: 2, Delta: 2, Seed: seed}
				res := runGossip(t, SEARS{}, Params{Epsilon: 0.5}, cfg, preset)
				if !res.Completed {
					t.Fatalf("seed %d: %+v", seed, res)
				}
			}
		})
	}
}

func TestSEARSFasterThanEARS(t *testing.T) {
	// Theorem 7: sears is constant-time w.r.t. n; ears pays log²n. At a
	// fixed n the measured completion time of sears should be well below
	// ears under the same adversary.
	cfg := sim.Config{N: 128, F: 32, D: 2, Delta: 2, Seed: 5}
	rEars := runGossip(t, EARS{}, Params{}, cfg, adversary.PresetStandard)
	rSears := runGossip(t, SEARS{}, Params{Epsilon: 0.5}, cfg, adversary.PresetStandard)
	if rSears.TimeComplexity >= rEars.TimeComplexity {
		t.Fatalf("sears time %d not below ears time %d", rSears.TimeComplexity, rEars.TimeComplexity)
	}
	if rSears.Messages <= rEars.Messages {
		t.Fatalf("sears messages %d unexpectedly below ears %d (spamming should cost more)",
			rSears.Messages, rEars.Messages)
	}
}

func TestTEARSMajorityAllPresets(t *testing.T) {
	for _, preset := range adversary.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				cfg := sim.Config{N: 128, F: 63, D: 2, Delta: 2, Seed: seed}
				res := runGossip(t, TEARS{}, Params{}, cfg, preset)
				if !res.Completed {
					t.Fatalf("seed %d: %+v", seed, res)
				}
			}
		})
	}
}

func TestTEARSConstantTime(t *testing.T) {
	// Theorem 12: all first-level messages arrive by d+δ, second-level
	// sent by 2d+δ, delivered by 2d+2δ. Allow scheduling slack of +δ.
	cfg := sim.Config{N: 256, F: 0, D: 3, Delta: 2, Seed: 2}
	res := runGossip(t, TEARS{}, Params{}, cfg, adversary.PresetMaxDelay)
	bound := 2*cfg.D + 3*cfg.Delta
	if res.TimeComplexity > bound {
		t.Fatalf("tears time %d exceeds 2d+3δ = %d", res.TimeComplexity, bound)
	}
}

func TestTEARSSubquadraticGrowth(t *testing.T) {
	// At simulable n the absolute bound n^{7/4}log²n exceeds n², so the
	// testable claim is the growth exponent: messages must scale with an
	// exponent strictly below trivial gossip's 2.
	if testing.Short() {
		t.Skip("growth measurement in -short mode")
	}
	measure := func(n int) float64 {
		var total float64
		const seeds = 3
		for seed := int64(0); seed < seeds; seed++ {
			cfg := sim.Config{N: n, F: 0, D: 2, Delta: 1, Seed: seed}
			res := runGossip(t, TEARS{}, Params{}, cfg, adversary.PresetStandard)
			total += float64(res.Messages)
		}
		return total / seeds
	}
	m1, m2 := measure(128), measure(512)
	slope := math.Log(m2/m1) / math.Log(512.0/128.0)
	if slope >= 1.95 {
		t.Fatalf("tears message growth exponent %.3f not below 2 (m128=%.0f, m512=%.0f)",
			slope, m1, m2)
	}
	t.Logf("tears growth exponent %.3f (paper: 7/4 plus log factors)", slope)
}

// Lemma 8: every process sends either 0 or between a−κ and a+κ messages in
// each local step (audience sizes are binomially concentrated around a).
func TestTEARSLemma8StepSends(t *testing.T) {
	cfg := sim.Config{N: 512, F: 0, D: 2, Delta: 1, Seed: 6}
	p := Params{N: cfg.N, F: cfg.F}.WithDefaults()
	nodes, err := NewNodes(TEARS{}, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv, _ := adversary.ByName(adversary.PresetStandard, cfg)
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	counter := sim.NewStepSendCounter(cfg.N)
	w.SetTracer(counter)
	if _, err := w.Run(TEARS{}.Evaluator(p)); err != nil {
		t.Fatal(err)
	}
	a, kappa := p.tearsA(), p.tearsKappa()
	lo, hi := a-2*kappa, a+2*kappa // Lemma 8 gives a±κ whp; allow 2κ slack
	violations := 0
	for pid := range counter.PerStep {
		for _, sends := range counter.PerStep[pid] {
			if sends == 0 {
				continue
			}
			if sends < lo || sends > hi {
				violations++
			}
		}
	}
	if violations > cfg.N/50 { // Lemma 8 holds w.p. 1−2/n³ per step
		t.Fatalf("%d step-send counts outside [a−2κ, a+2κ] = [%d, %d]", violations, lo, hi)
	}
}

func TestTEARSAudienceConcentration(t *testing.T) {
	p := Params{N: 1024, F: 0}.WithDefaults()
	nodes, err := NewNodes(TEARS{}, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := p.tearsA()
	for _, nd := range nodes {
		tn := nd.(*tearsNode)
		s1, s2 := tn.AudienceSizes()
		for _, s := range []int{s1, s2} {
			if s < a/2 || s > 2*a {
				t.Fatalf("audience size %d far from a = %d", s, a)
			}
		}
	}
}

func TestGossipDeterministicReplay(t *testing.T) {
	for _, proto := range []Protocol{Trivial{}, EARS{}, SEARS{}, TEARS{}} {
		cfg := sim.Config{N: 48, F: 12, D: 3, Delta: 2, Seed: 11}
		r1, err1 := tryRunGossip(proto, Params{}, cfg, adversary.PresetStandard)
		r2, err2 := tryRunGossip(proto, Params{}, cfg, adversary.PresetStandard)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", proto.Name(), err1, err2)
		}
		if r1 != r2 {
			t.Fatalf("%s replay diverged: %+v vs %+v", proto.Name(), r1, r2)
		}
	}
}

func TestProtocolByName(t *testing.T) {
	for _, name := range Names() {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if proto.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, proto.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestNewNodesValidatesParams(t *testing.T) {
	if _, err := NewNodes(EARS{}, Params{N: 0}, 1); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewNodes(EARS{}, Params{N: 4, F: 4}, 1); err == nil {
		t.Fatal("F=N accepted")
	}
	if _, err := NewNodes(SEARS{}, Params{N: 4, Epsilon: 1.5}, 1); err == nil {
		t.Fatal("ε=1.5 accepted")
	}
}

func TestEARSWakesUpOnLateRumor(t *testing.T) {
	// A process isolated by the scheduler until after everyone else slept
	// must reawaken the system when its rumor finally spreads. We starve
	// process 0 with a subset schedule, then include it.
	cfg := sim.Config{N: 16, F: 0, D: 1, Delta: 1, Seed: 13, MaxSteps: 30000}
	p := Params{N: cfg.N, F: cfg.F}
	nodes, err := NewNodes(EARS{}, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rest := make([]sim.ProcID, 0, cfg.N-1)
	for i := 1; i < cfg.N; i++ {
		rest = append(rest, sim.ProcID(i))
	}
	sched := &phasedSchedule{first: rest, switchAt: 2000, n: cfg.N}
	adv := adversary.Compose(sched, nil, nil)
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(EARS{}.Evaluator(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedAt < 2000 {
		t.Fatalf("completed at %d, but process 0 was starved until 2000", res.CompletedAt)
	}
}

// phasedSchedule schedules `first` until switchAt, then everyone. It
// violates δ for the starved process on purpose (asynchrony in action).
type phasedSchedule struct {
	first    []sim.ProcID
	switchAt sim.Time
	n        int
}

func (s *phasedSchedule) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	if t < s.switchAt {
		return append(buf, s.first...)
	}
	for i := 0; i < s.n; i++ {
		buf = append(buf, sim.ProcID(i))
	}
	return buf
}

func TestEARSInformedListMonotone(t *testing.T) {
	// White-box: after a run, every node's informed list must be covered
	// (L(p) = ∅) and its pair count must not exceed n².
	cfg := sim.Config{N: 24, F: 0, D: 1, Delta: 1, Seed: 17}
	p := Params{N: cfg.N, F: cfg.F}
	nodes, err := NewNodes(EARS{}, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.Benign()
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(EARS{}.Evaluator(p)); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		en := nd.(*earsNode)
		if !en.Asleep() {
			t.Fatalf("node %d not asleep after quiet world", en.ID())
		}
		if got, max := en.InformedPairs(), cfg.N*cfg.N; got > max {
			t.Fatalf("informed pairs %d > n² = %d", got, max)
		}
	}
}

func TestClonedNodeIndependence(t *testing.T) {
	p := Params{N: 8, F: 0}.WithDefaults()
	nodes, err := NewNodes(EARS{}, p, 23)
	if err != nil {
		t.Fatal(err)
	}
	orig := nodes[0].(*earsNode)
	clone := orig.CloneNode().(*earsNode)
	// Stepping the clone must not affect the original.
	var out sim.Outbox
	payload := &GossipPayload{Rumors: NewRumors(8, false)}
	payload.Rumors.Add(5, NoValue)
	msg := sim.Message{From: 5, To: 0, Payload: payload}
	cloneBefore := orig.RumorSet().Count()
	clone.Step(1, []sim.Message{msg}, &out)
	if orig.RumorSet().Count() != cloneBefore {
		t.Fatal("stepping clone mutated original's rumor set")
	}
	if !clone.RumorSet().Test(5) {
		t.Fatal("clone did not absorb rumor")
	}
}
