package core

import (
	"fmt"

	"repro/internal/sim"
)

// FullGossipEvaluator judges the classic gossip problem (paper §1):
//
//	(1) Rumor gathering — every correct process has every rumor that
//	    initiated at a correct process;
//	(2) Validity — every rumor held anywhere was actually initiated
//	    (its originator took at least one local step, or it is the
//	    holder's own rumor);
//	(3) Quiescence — implied by the world having gone quiet before
//	    evaluation.
//
// CompletedAt is the time the last correct process acquired its last
// required rumor; the paper's completion time additionally waits for the
// last send, which the simulator folds in as Result.TimeComplexity.
type FullGossipEvaluator struct {
	Params Params
}

var _ sim.Evaluator = FullGossipEvaluator{}

// Evaluate implements sim.Evaluator.
func (e FullGossipEvaluator) Evaluate(v sim.View) sim.Outcome {
	if out := checkValidity(v); !out.OK {
		return out
	}
	var completedAt sim.Time
	n := v.N()
	for p := 0; p < n; p++ {
		if !v.Alive(sim.ProcID(p)) {
			continue
		}
		h, ok := v.Node(sim.ProcID(p)).(RumorHolder)
		if !ok {
			return sim.Outcome{Detail: fmt.Sprintf("node %d is not a RumorHolder", p)}
		}
		for r := 0; r < n; r++ {
			if !v.Alive(sim.ProcID(r)) {
				continue // rumor of a crashed process is not required
			}
			if !h.RumorSet().Test(r) {
				return sim.Outcome{Detail: fmt.Sprintf(
					"gathering violated: correct process %d lacks rumor of correct process %d", p, r)}
			}
			if at := h.RumorAcquiredAt(sim.ProcID(r)); at > completedAt {
				completedAt = at
			}
		}
	}
	return sim.Outcome{OK: true, CompletedAt: completedAt}
}

// MajorityGossipEvaluator judges majority gossip (paper §5): every correct
// process receives at least ⌊n/2⌋+1 of the n rumors. Validity must hold as
// in full gossip.
type MajorityGossipEvaluator struct {
	Params Params
}

var _ sim.Evaluator = MajorityGossipEvaluator{}

// Evaluate implements sim.Evaluator.
func (e MajorityGossipEvaluator) Evaluate(v sim.View) sim.Outcome {
	if out := checkValidity(v); !out.OK {
		return out
	}
	maj := v.N()/2 + 1
	var completedAt sim.Time
	for p := 0; p < v.N(); p++ {
		if !v.Alive(sim.ProcID(p)) {
			continue
		}
		h, ok := v.Node(sim.ProcID(p)).(RumorHolder)
		if !ok {
			return sim.Outcome{Detail: fmt.Sprintf("node %d is not a RumorHolder", p)}
		}
		if got := h.RumorSet().Count(); got < maj {
			return sim.Outcome{Detail: fmt.Sprintf(
				"majority violated: correct process %d holds %d rumors, needs %d", p, got, maj)}
		}
		if at := h.RumorCountReachedAt(maj); at > completedAt {
			completedAt = at
		}
	}
	return sim.Outcome{OK: true, CompletedAt: completedAt}
}

// checkValidity verifies the paper's validity condition for every process,
// correct or crashed: a held rumor must be some process's initial rumor,
// which in this model means its originator exists and took at least one
// local step (or the rumor is the holder's own).
func checkValidity(v sim.View) sim.Outcome {
	n := v.N()
	for p := 0; p < n; p++ {
		h, ok := v.Node(sim.ProcID(p)).(RumorHolder)
		if !ok {
			continue
		}
		bad := -1
		h.RumorSet().ForEach(func(r int) bool {
			if r != p && v.StepsTaken(sim.ProcID(r)) == 0 {
				bad = r
				return false
			}
			return true
		})
		if bad >= 0 {
			return sim.Outcome{Detail: fmt.Sprintf(
				"validity violated: process %d holds rumor %d, but %d never took a step", p, bad, bad)}
		}
	}
	return sim.Outcome{OK: true}
}
