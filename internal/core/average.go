package core

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Average is asynchronous sum-weight averaging gossip in the style of
// Picard et al. ("Non asymptotic bounds in asynchronous sum-weight gossip
// protocols"): every process i starts with a value x_i (drawn from its
// private stream) and maintains a (sum, weight) pair, initially (x_i, 1).
// On each of its R budgeted local steps it halves both components, keeps
// one half and sends the other to a sampled target; received pairs are
// added in. The estimate s/w of every process converges to the mean of
// the x_i — mass (Σs, Σw) is conserved exactly, and mixing drives every
// ratio together. Convergence is judged non-asymptotically: the evaluator
// accepts when every live process is within AvgEpsilon of the true mean,
// and reports the diffusion time (last mass movement) as CompletedAt.
//
// The family is the repository's first numeric-aggregation workload:
// payloads are two float64s and per-process state is O(1), so it shares
// the push-pull family's immunity to the memory wall. All float arithmetic
// happens inside Step against canonically-ordered inboxes, and halving is
// exact in binary floating point, so runs are bit-identical across
// serial/sharded and pooled/unpooled execution (pinned by the float-
// determinism test).
//
// Crashes are outside this family's domain: a crash destroys the mass the
// victim holds, and the survivors then agree on a value that is not the
// mean. The scenario generator draws averaging runs crash-free, and the
// evaluator judges against the full-population mean regardless.
type Average struct{}

var _ Protocol = Average{}

// NameAverage is the averaging protocol's name.
const NameAverage = "average"

// Name implements Protocol.
func (Average) Name() string { return NameAverage }

// NewNode implements Protocol. The initial value is drawn uniformly from
// [0, 1) — the node's first draw, so experiments can reconstruct it from
// the seed.
func (Average) NewNode(id sim.ProcID, p Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	x := r.Float64()
	return &avgNode{
		id:     id,
		x:      x,
		s:      x,
		w:      1,
		rounds: p.AvgRounds(),
		peers:  p.sampler(int(id)),
		r:      r,
	}
}

// Evaluator implements Protocol.
func (Average) Evaluator(p Params) sim.Evaluator {
	return AveragingEvaluator{Params: p.WithDefaults()}
}

// AvgPayload is one message's share of sum-weight mass.
type AvgPayload struct {
	S float64
	W float64
}

var _ sim.Sizer = AvgPayload{}

// SizeBytes implements sim.Sizer: two float64 components.
func (AvgPayload) SizeBytes() int { return 16 }

type avgNode struct {
	id         sim.ProcID
	x          float64 // initial value, kept for the evaluator
	s, w       float64
	rounds     int
	lastUpdate sim.Time
	peers      topology.Sampler
	r          *rng.RNG
}

var (
	_ sim.Node     = (*avgNode)(nil)
	_ AverageState = (*avgNode)(nil)
	_ sim.Cloner   = (*avgNode)(nil)
)

// ID implements sim.Node.
func (nd *avgNode) ID() sim.ProcID { return nd.id }

// Step implements sim.Node: fold in received mass (in delivery order —
// float addition does not commute bitwise, and the kernel's canonical
// order makes this deterministic), then halve-and-send while in budget.
func (nd *avgNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(AvgPayload); ok {
			nd.s += pl.S
			nd.w += pl.W
			nd.lastUpdate = now
		}
	}
	if nd.rounds <= 0 {
		return
	}
	nd.rounds--
	if q, ok := nd.peers.One(nd.r); ok {
		// Halve only when a target exists: an unsendable half would be
		// destroyed mass.
		nd.s /= 2
		nd.w /= 2
		nd.lastUpdate = now
		out.Send(sim.ProcID(q), AvgPayload{S: nd.s, W: nd.w})
	}
}

// Quiescent implements sim.Node: the send budget is spent. Late-arriving
// mass is still folded in (absorbing costs no sends), and a pending
// message keeps the world non-quiet until delivered.
func (nd *avgNode) Quiescent() bool { return nd.rounds <= 0 }

// InitialValue implements AverageState.
func (nd *avgNode) InitialValue() float64 { return nd.x }

// Estimate implements AverageState.
func (nd *avgNode) Estimate() (sum, weight float64) { return nd.s, nd.w }

// LastMassUpdate implements AverageState.
func (nd *avgNode) LastMassUpdate() sim.Time { return nd.lastUpdate }

// CloneNode implements sim.Cloner.
func (nd *avgNode) CloneNode() sim.Node {
	c := *nd
	c.r = nd.r.Clone()
	return &c
}

// Reseed implements Reseeder.
func (nd *avgNode) Reseed(r *rng.RNG) { nd.r = r }

// AverageState is implemented by nodes of averaging protocols: the initial
// value (to reconstruct the consensus target), the current (sum, weight)
// estimate, and the time mass last moved (the diffusion-time proxy).
type AverageState interface {
	InitialValue() float64
	Estimate() (sum, weight float64)
	LastMassUpdate() sim.Time
}

// AveragingEvaluator judges ε-consensus: every live process's estimate
// s/w lies within Params.AvgEpsilon of the mean of all n initial values.
// CompletedAt is the last time mass moved anywhere — the non-asymptotic
// diffusion time of the run.
type AveragingEvaluator struct {
	Params Params
}

var _ sim.Evaluator = AveragingEvaluator{}

// Evaluate implements sim.Evaluator.
func (e AveragingEvaluator) Evaluate(v sim.View) sim.Outcome {
	n := v.N()
	var total float64
	states := make([]AverageState, n)
	for p := 0; p < n; p++ {
		st, ok := v.Node(sim.ProcID(p)).(AverageState)
		if !ok {
			return sim.Outcome{Detail: fmt.Sprintf("node %d does not implement AverageState", p)}
		}
		states[p] = st
		total += st.InitialValue()
	}
	mean := total / float64(n)
	eps := e.Params.AvgEpsilon
	var completedAt sim.Time
	for p := 0; p < n; p++ {
		if !v.Alive(sim.ProcID(p)) {
			continue
		}
		s, w := states[p].Estimate()
		if !(w > 0) {
			return sim.Outcome{Detail: fmt.Sprintf(
				"averaging violated: process %d has weight %v", p, w)}
		}
		if err := math.Abs(s/w - mean); err > eps {
			return sim.Outcome{Detail: fmt.Sprintf(
				"ε-consensus violated: process %d estimates %.6f, mean %.6f (|err| = %.2e > ε = %.2e)",
				p, s/w, mean, err, eps)}
		}
		if at := states[p].LastMassUpdate(); at > completedAt {
			completedAt = at
		}
	}
	return sim.Outcome{OK: true, CompletedAt: completedAt}
}
