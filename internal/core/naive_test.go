package core

import (
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// starvedSchedule freezes one process until switchAt, then schedules
// everyone — the asynchrony pathology of the paper's introduction: "one of
// the processes begins its r-th iteration long after the other has
// completed that iteration".
type starvedSchedule struct {
	victim   sim.ProcID
	switchAt sim.Time
	n        int
}

func (s *starvedSchedule) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	for i := 0; i < s.n; i++ {
		if sim.ProcID(i) == s.victim && t < s.switchAt {
			continue
		}
		buf = append(buf, sim.ProcID(i))
	}
	return buf
}

// runStarved executes proto with process 0 frozen until everyone else has
// long finished their repetition budgets.
func runStarved(t *testing.T, proto Protocol, n int, switchAt sim.Time, seed int64) (sim.Result, error) {
	t.Helper()
	cfg := sim.Config{N: n, F: 0, D: 1, Delta: 1, Seed: seed, MaxSteps: switchAt * 4}
	p := Params{N: n, F: 0}
	nodes, err := NewNodes(proto, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.Compose(&starvedSchedule{victim: 0, switchAt: switchAt, n: n}, nil, nil)
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	return w.Run(proto.Evaluator(p))
}

func TestNaiveEpidemicFailsUnderStarvation(t *testing.T) {
	// The naive fixed-repetition epidemic: the starved process wakes after
	// everyone else went permanently silent, sends its rumor to a handful
	// of random targets who never forward it, and the run ends with the
	// gathering property violated. This is the paper's argument for why
	// "repeat c·log n times" does not survive asynchrony.
	failures := 0
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		res, err := runStarved(t, Naive{}, 64, 3000, seed)
		if err != nil && !res.TimedOut {
			failures++ // evaluator rejected: some rumor never gathered
		}
	}
	if failures == 0 {
		t.Fatal("naive epidemic survived starvation in all seeds; ablation should show failures")
	}
	t.Logf("naive epidemic failed gathering in %d/%d starved runs", failures, seeds)
}

func TestEARSSurvivesSameStarvation(t *testing.T) {
	// Identical schedule, ears: the informed list reopens (L(p) ≠ ∅ for
	// the late rumor) and the system reawakens until the rumor is fully
	// disseminated. Every run must complete.
	for seed := int64(0); seed < 6; seed++ {
		res, err := runStarved(t, EARS{}, 64, 3000, seed)
		if err != nil {
			t.Fatalf("seed %d: ears failed under starvation: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestNaiveCompletesWhenBenign(t *testing.T) {
	// Control: with a synchronous schedule the naive epidemic is fine —
	// the failure is specifically an asynchrony failure.
	for seed := int64(0); seed < 3; seed++ {
		res, err := runGossip2(Naive{}, Params{}, sim.Config{N: 64, F: 0, D: 1, Delta: 1, Seed: seed}, adversary.PresetBenign)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

// runGossip2 mirrors tryRunGossip for use in this file.
func runGossip2(proto Protocol, p Params, cfg sim.Config, preset string) (sim.Result, error) {
	p.N, p.F = cfg.N, cfg.F
	nodes, err := NewNodes(proto, p, cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(proto.Evaluator(p.WithDefaults()))
}

func TestNaiveTimeoutVsRejection(t *testing.T) {
	// When the naive run fails it must fail *cleanly*: quiescent world,
	// evaluator rejection (gathering violated) — not a timeout.
	res, err := runStarved(t, Naive{}, 64, 3000, 0)
	if err == nil {
		t.Skip("this seed happened to complete; covered by the aggregate test")
	}
	if res.TimedOut {
		t.Fatalf("naive run timed out instead of quiescing incomplete: %+v", res)
	}
	if errors.Is(err, sim.ErrTimeout) {
		t.Fatal("unexpected timeout error")
	}
}
