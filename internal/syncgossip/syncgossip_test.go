package syncgossip

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// runSync runs a synchronous protocol under the synchronous adversary
// (d = δ = 1, which these protocols are allowed to assume) with a crash
// plan.
func runSync(t *testing.T, proto core.Protocol, n, f int, seed int64, crashes adversary.CrashPolicy) sim.Result {
	t.Helper()
	cfg := sim.Config{N: n, F: f, D: 1, Delta: 1, Seed: seed}
	p := core.Params{N: n, F: f}
	nodes, err := core.NewNodes(proto, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.Compose(nil, nil, crashes)
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(proto.Evaluator(p))
	if err != nil {
		t.Fatalf("%s n=%d f=%d seed=%d: %v", proto.Name(), n, f, seed, err)
	}
	return res
}

func TestEpidemicCompletesNoFailures(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		res := runSync(t, Epidemic{}, 64, 0, seed, nil)
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestEpidemicCompletesWithCrashes(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		crash := adversary.NewRandomCrashes(64, 21, 10, rng.New(seed+100))
		res := runSync(t, Epidemic{}, 64, 21, seed, crash)
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestEpidemicPolylogComplexity(t *testing.T) {
	// Time O(log n), messages O(n log n): check against generous absolute
	// caps that the trivial protocol (time 2, messages n²) would blow.
	res := runSync(t, Epidemic{}, 256, 0, 3, nil)
	if res.TimeComplexity > 40 { // 3·log₂(256) = 24 rounds + slack
		t.Fatalf("time %d not polylog-ish", res.TimeComplexity)
	}
	if res.Messages >= 256*256/2 {
		t.Fatalf("messages %d not o(n²)", res.Messages)
	}
}

func TestDeterministicCompletes(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		res := runSync(t, Deterministic{}, 64, 0, seed, nil)
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestDeterministicWithCrashes(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		crash := adversary.NewRandomCrashes(128, 31, 5, rng.New(seed+7))
		res := runSync(t, Deterministic{}, 128, 31, seed, crash)
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	// Two runs with different node seeds but the same graph seed must
	// produce identical message counts: the protocol uses no process
	// randomness at all.
	r1 := runSync(t, Deterministic{}, 64, 0, 1, nil)
	r2 := runSync(t, Deterministic{}, 64, 0, 999, nil)
	if r1.Messages != r2.Messages || r1.TimeComplexity != r2.TimeComplexity {
		t.Fatalf("deterministic protocol varied with node seed: %+v vs %+v", r1, r2)
	}
}

func TestDeterministicCrashStorm(t *testing.T) {
	// Half the processes die at t=0; the fixed-graph protocol must still
	// gather among survivors within its round budget.
	for seed := int64(0); seed < 3; seed++ {
		crash := adversary.NewCrashStorm(96, 47, 0, rng.New(seed+55))
		res := runSync(t, Deterministic{}, 96, 47, seed, crash)
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		proto, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if proto.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, proto.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestSyncBeatsAsyncEARSAtSameScale(t *testing.T) {
	// The premise of Corollary 2: with d=δ=1 a synchronous algorithm is
	// much faster than an asynchronous one that cannot rely on the bound.
	n, f := 128, 31
	crash := adversary.NewRandomCrashes(n, f, 10, rng.New(42))
	rs := runSync(t, Epidemic{}, n, f, 1, crash)

	cfg := sim.Config{N: n, F: f, D: 1, Delta: 1, Seed: 1}
	p := core.Params{N: n, F: f}
	nodes, err := core.NewNodes(core.EARS{}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.Compose(nil, nil, adversary.NewRandomCrashes(n, f, 10, rng.New(42)))
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := w.Run(core.EARS{}.Evaluator(p))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Messages >= ra.Messages {
		t.Fatalf("sync epidemic messages %d not below async ears %d", rs.Messages, ra.Messages)
	}
}
