// Package syncgossip implements the synchronous gossip baselines from
// Table 1's first row: protocols that know a priori that d = δ = 1 and may
// therefore use globally synchronized rounds and a fixed stopping round.
//
// The paper cites Chlebus–Kowalski [9]: a deterministic synchronous gossip
// built from expander graphs that completes in O(polylog n) rounds with
// O(n polylog n) messages, even against an adaptive adversary crashing up
// to n−1 processes. The explicit expander families of [9] are out of scope
// for a reproduction; per DESIGN.md §3 we substitute:
//
//   - Deterministic: gossip over seeded pseudo-random regular multigraphs
//     (a fresh graph per round, fixed by the protocol specification, so
//     every process can compute it locally) — random regular graphs are
//     expanders w.h.p., which is exactly the property [9] derandomizes.
//   - Epidemic: the classic randomized synchronous push protocol in the
//     style of Karp et al. [19], generalized from one rumor to all rumors.
//
// Both run on the sim kernel under the synchronous schedule; their stopping
// rule is a fixed round count — the thing the paper shows is impossible to
// port to the asynchronous world without paying Theorem 1's price.
package syncgossip

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Protocol names accepted by ByName.
const (
	NameSyncEpidemic      = "sync-epidemic"
	NameSyncDeterministic = "sync-deterministic"
)

// Names lists the synchronous baselines.
func Names() []string { return []string{NameSyncEpidemic, NameSyncDeterministic} }

// ByName returns the named synchronous protocol.
func ByName(name string) (core.Protocol, error) {
	switch name {
	case NameSyncEpidemic:
		return Epidemic{}, nil
	case NameSyncDeterministic:
		return Deterministic{}, nil
	default:
		return nil, fmt.Errorf("syncgossip: unknown protocol %q (have %v)", name, Names())
	}
}

// rounds returns the fixed stopping round: c · ⌈n/(n−f)⌉ · log₂n. The
// n/(n−f) factor compensates for pushes wasted on crashed processes; for
// f a constant fraction of n this is O(log n) rounds, matching the polylog
// row of Table 1.
func rounds(p core.Params, c float64) int {
	surv := p.N - p.F
	if surv < 1 {
		surv = 1
	}
	r := int(math.Ceil(c * float64(p.N) / float64(surv) * float64(log2(p.N))))
	if r < 2 {
		r = 2
	}
	return r
}

func log2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// Epidemic is the randomized synchronous push protocol: for a fixed number
// of rounds, every process sends its full rumor set to fanout random
// targets, then stops. Stopping is unconditional — synchrony makes the
// round counter a global clock.
type Epidemic struct {
	// Fanout is the number of random targets per round (default 2).
	Fanout int
	// RoundsC scales the round count (default 3).
	RoundsC float64
}

var _ core.Protocol = Epidemic{}

// Name implements core.Protocol.
func (Epidemic) Name() string { return NameSyncEpidemic }

// NewNode implements core.Protocol.
func (e Epidemic) NewNode(id sim.ProcID, p core.Params, r *rng.RNG) sim.Node {
	p = p.WithDefaults()
	fanout := e.Fanout
	if fanout <= 0 {
		fanout = 2
	}
	c := e.RoundsC
	if c <= 0 {
		c = 3
	}
	return &epidemicNode{
		Tracker: p.NewTracker(id, core.NoValue),
		id:      id,
		n:       p.N,
		peers:   topology.NewSampler(int(id), p.N, p.Graph),
		fanout:  fanout,
		rounds:  rounds(p, c),
		pool:    p.Pool,
		r:       r,
	}
}

// Evaluator implements core.Protocol.
func (Epidemic) Evaluator(p core.Params) sim.Evaluator {
	return core.FullGossipEvaluator{Params: p.WithDefaults()}
}

type epidemicNode struct {
	core.Tracker
	id     sim.ProcID
	n      int
	peers  topology.Sampler
	fanout int
	rounds int
	round  int
	pool   *core.Pool
	kbuf   []int
	r      *rng.RNG
}

var (
	_ sim.Node         = (*epidemicNode)(nil)
	_ core.RumorHolder = (*epidemicNode)(nil)
)

// ID implements sim.Node.
func (e *epidemicNode) ID() sim.ProcID { return e.id }

// Step implements sim.Node: one synchronous round.
func (e *epidemicNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(*core.GossipPayload); ok {
			e.Absorb(pl.Rumors, now)
		}
	}
	if e.round >= e.rounds {
		return
	}
	e.round++
	payload := e.pool.Gossip(e.Rumors().Snapshot(), nil, false)
	e.kbuf = e.peers.KInto(e.kbuf[:0], e.fanout, e.r)
	for _, q := range e.kbuf {
		out.Send(sim.ProcID(q), payload)
	}
}

// Quiescent implements sim.Node: true once the fixed round budget is spent.
func (e *epidemicNode) Quiescent() bool { return e.round >= e.rounds }

// Deterministic is the Chlebus–Kowalski-style derandomized protocol: in
// round t every process sends its rumor set to its neighbors in a fixed
// graph G_t. The graphs are degree-g circulant multigraphs with offsets
// drawn from a protocol-specified seed (shared by all processes, part of
// the algorithm, not a random input): each round uses fresh offsets, so
// over log n rounds the union of the graphs mixes like an expander.
//
// Deterministic assumes the complete communication graph: its circulant
// offsets are part of the protocol specification and ignore any
// configured topology, so on a sparse topology its off-edge sends are
// dropped by the world (and counted in Metrics.OffEdgeDrops).
type Deterministic struct {
	// Degree is the per-round out-degree (default ⌈log₂ n⌉, computed per n).
	Degree int
	// RoundsC scales the round count (default 2).
	RoundsC float64
	// GraphSeed fixes the graph family; it is part of the protocol
	// specification and known to every process (default 0x5EED).
	GraphSeed int64
}

var _ core.Protocol = Deterministic{}

// Name implements core.Protocol.
func (Deterministic) Name() string { return NameSyncDeterministic }

// NewNode implements core.Protocol.
func (d Deterministic) NewNode(id sim.ProcID, p core.Params, _ *rng.RNG) sim.Node {
	p = p.WithDefaults()
	deg := d.Degree
	if deg <= 0 {
		deg = log2(p.N)
	}
	if deg > p.N-1 {
		deg = p.N - 1
	}
	c := d.RoundsC
	if c <= 0 {
		c = 2
	}
	seed := d.GraphSeed
	if seed == 0 {
		seed = 0x5EED
	}
	nRounds := rounds(p, c)
	// Every node derives the same offset table from the protocol seed.
	gr := rng.New(seed)
	offsets := make([][]int, nRounds)
	for t := range offsets {
		offsets[t] = make([]int, deg)
		for j := range offsets[t] {
			offsets[t][j] = 1 + gr.Intn(p.N-1)
		}
	}
	return &deterministicNode{
		Tracker: p.NewTracker(id, core.NoValue),
		id:      id,
		n:       p.N,
		offsets: offsets,
		pool:    p.Pool,
	}
}

// Evaluator implements core.Protocol.
func (Deterministic) Evaluator(p core.Params) sim.Evaluator {
	return core.FullGossipEvaluator{Params: p.WithDefaults()}
}

type deterministicNode struct {
	core.Tracker
	id      sim.ProcID
	n       int
	offsets [][]int
	round   int
	pool    *core.Pool
}

var (
	_ sim.Node         = (*deterministicNode)(nil)
	_ core.RumorHolder = (*deterministicNode)(nil)
)

// ID implements sim.Node.
func (d *deterministicNode) ID() sim.ProcID { return d.id }

// Step implements sim.Node.
func (d *deterministicNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(*core.GossipPayload); ok {
			d.Absorb(pl.Rumors, now)
		}
	}
	if d.round >= len(d.offsets) {
		return
	}
	payload := d.pool.Gossip(d.Rumors().Snapshot(), nil, false)
	for _, off := range d.offsets[d.round] {
		q := (int(d.id) + off) % d.n
		out.Send(sim.ProcID(q), payload)
	}
	d.round++
}

// Quiescent implements sim.Node.
func (d *deterministicNode) Quiescent() bool { return d.round >= len(d.offsets) }
