package scenario

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// This file is the coverage side of the coverage-guided fuzzing loop: a
// feature abstraction over finished executions, an interestingness
// predicate combining feature novelty with envelope near-misses, and the
// mutation engine that turns corpus entries into new scenarios. corpus.go
// owns persistence; fuzz.go wires both into the session.

// Feature is the coverage tuple of one finished execution: which protocol
// ran on which graph family, how many crashes the kernel actually admitted
// (log₂ band) and how long completion took (log₂ band). Two runs with the
// same tuple exercised the same qualitative regime; a tuple never seen
// before — by the session or by any corpus entry — marks its run as
// interesting regardless of envelope margins.
type Feature struct {
	Protocol string `json:"protocol"`
	Topology string `json:"topology"`
	// CrashBand is band(crashes): 0 for none, k for counts in [2^(k-1), 2^k).
	CrashBand int `json:"crash_band"`
	// StepBand is band(time complexity), same banding over completion steps.
	StepBand int `json:"step_band"`
}

// band maps a non-negative count to its log₂ band: 0 → 0, otherwise
// 1 + floor(log₂ v), so 1 → 1, 2..3 → 2, 4..7 → 3, …
func band(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Key renders the tuple as the corpus/coverage map key.
func (f Feature) Key() string {
	return fmt.Sprintf("%s/%s/c%d/s%d", f.Protocol, f.Topology, f.CrashBand, f.StepBand)
}

// featureOf extracts the coverage tuple from a finished execution.
func featureOf(ex *Execution) Feature {
	topo := ex.Spec.Topology
	if topo == "" {
		topo = topology.FamilyComplete
	}
	return Feature{
		Protocol:  ex.Spec.Protocol,
		Topology:  topo,
		CrashBand: band(int64(ex.Res.Crashes)),
		StepBand:  band(int64(ex.Res.TimeComplexity)),
	}
}

// Near-miss predicate calibration: an envelope ratio is a near miss when it
// ranks in the top decile of everything observed so far — but only once the
// histogram holds enough observations for "decile" to mean something.
// Before that, feature novelty alone steers.
const (
	nearMissDecile = 0.9
	nearMissMinObs = 64
)

// coverage accumulates the session's coverage state in scenario-index
// order: seen feature tuples, per-oracle tightness histograms (seeded from
// the corpus so the decile predicate is stable across a campaign), and the
// per-oracle maximum ratio ever seen. Judging and observing in index order
// keeps every verdict — and therefore the whole corpus evolution — a pure
// function of (master seed, input corpus).
type coverage struct {
	seen  map[string]struct{}
	hists map[string]*telemetry.LinearHist
	max   map[string]float64
}

func newCoverage() *coverage {
	return &coverage{
		seen:  map[string]struct{}{},
		hists: map[string]*telemetry.LinearHist{},
		max:   map[string]float64{},
	}
}

// seed folds one corpus entry's recorded coverage in (at snapshot time),
// so a campaign's second night starts from the first night's frontier
// instead of rediscovering it.
func (c *coverage) seed(e *CorpusEntry) {
	c.seen[e.Feature.Key()] = struct{}{}
	for oracle, ratio := range e.Tightness {
		c.hist(oracle).Observe(ratio)
		if ratio > c.max[oracle] {
			c.max[oracle] = ratio
		}
	}
}

func (c *coverage) hist(oracle string) *telemetry.LinearHist {
	h := c.hists[oracle]
	if h == nil {
		h = telemetry.NewLinearHist()
		c.hists[oracle] = h
	}
	return h
}

// judge classifies one finished run and then folds it into the state.
// why is "" for uninteresting runs; novel reports feature novelty
// separately so the session can count novelty and near-miss rates.
func (c *coverage) judge(f Feature, tight map[string]float64) (why string, novel bool) {
	key := f.Key()
	if _, ok := c.seen[key]; !ok {
		novel = true
		why = "novel-feature:" + key
	}
	// Oracles in sorted order: verdict strings must not depend on map
	// iteration order.
	oracles := make([]string, 0, len(tight))
	for oracle := range tight {
		oracles = append(oracles, oracle)
	}
	sort.Strings(oracles)
	for _, oracle := range oracles {
		ratio := tight[oracle]
		switch {
		case ratio > c.max[oracle]:
			why = fmt.Sprintf("record:%s:%.4f", oracle, ratio)
		case why == "" && c.hist(oracle).Count() >= nearMissMinObs &&
			c.hist(oracle).Rank(ratio) >= nearMissDecile:
			why = fmt.Sprintf("near-miss:%s:%.4f", oracle, ratio)
		}
	}
	// Observe after judging: a run must not dilute the decile it is being
	// measured against.
	c.seen[key] = struct{}{}
	for _, oracle := range oracles {
		ratio := tight[oracle]
		c.hist(oracle).Observe(ratio)
		if ratio > c.max[oracle] {
			c.max[oracle] = ratio
		}
	}
	return why, novel
}

// maxTightness copies the per-oracle maximum ratios (nil when none).
func (c *coverage) maxTightness() map[string]float64 {
	if len(c.max) == 0 {
		return nil
	}
	out := make(map[string]float64, len(c.max))
	for k, v := range c.max {
		out[k] = v
	}
	return out
}

// Mutation domain clamps. Mutants may push n past the generator's ceiling —
// the protocols' promises are asymptotic, and the envelopes bind tighter at
// larger n — but stay bounded so a nightly session's per-run cost stays
// predictable.
const (
	mutMaxN     = 96
	mutMaxD     = 6
	mutMaxDelta = 6
)

// Mutate derives a structured variant of a corpus spec from r's stream: it
// applies 1–3 operators chosen among those applicable to the spec's
// protocol domain — nudging n/f/d/δ toward the binding envelope, swapping
// the topology within the generated families, extending or perturbing the
// crash schedule, toggling the sharded twin, reseeding the random streams —
// and re-derives the dependent fields (crash-plan sanitation, horizon,
// promises) so the mutant stays inside the domain the generator promises
// oracles for. Pure in (s, r's state); Fuzz derives r from
// (master seed, scenario index) so campaigns stay byte-reproducible.
func Mutate(s Spec, r *rng.RNG) Spec {
	m := s
	// Deep-copy the crash plan: operators edit it in place.
	m.Crashes = append([]CrashEvent(nil), s.Crashes...)
	// Mutants never re-run the pooled twin: equivalence sampling is the
	// fresh stream's job, and steering spends its budget near envelopes.
	m.CheckEquivalence = false

	sync := isSyncProto(m.Protocol)
	relay := isRelayProto(m.Protocol)
	spread := isSpreadProto(m.Protocol)
	avg := isAvgProto(m.Protocol)

	for ops := 1 + r.Intn(3); ops > 0; ops-- {
		switch r.Intn(8) {
		case 0: // nudge n
			m.N = clampInt(m.N+nudge(r, 8), genMinN, mutMaxN)
		case 1: // nudge f toward (or away from) the n/2 cliff
			if !sync && !avg && m.Topology == "" {
				m.F = clampInt(m.F+nudge(r, 3), 0, (m.N-1)/2)
			}
		case 2: // nudge d
			if !sync {
				m.D = int64(clampInt(int(m.D)+nudge(r, 2), 1, mutMaxD))
			}
		case 3: // nudge δ
			if !sync {
				m.Delta = int64(clampInt(int(m.Delta)+nudge(r, 2), 1, mutMaxDelta))
			}
		case 4: // swap topology within the protocol's generated families
			if relay && m.Topology != "" {
				m.Topology = genSparseFamilies[r.Intn(len(genSparseFamilies))]
				m.TopologySeed = r.Int63()
				m.TopologyParam, m.TopologyParam2 = 0, 0
				if m.Topology == topology.FamilyRandomRegular {
					m.TopologyParam = float64(4 + 2*r.Intn(3))
				}
			} else if (spread || avg) && m.Topology != "" {
				m.Topology = genExpanderFamilies[r.Intn(len(genExpanderFamilies))]
				m.TopologySeed = r.Int63()
				m.TopologyParam, m.TopologyParam2 = 0, 0
				if m.Topology == topology.FamilyRandomRegular {
					m.TopologyParam = float64(6 + 2*r.Intn(2))
				}
			}
		case 5: // extend / perturb / redraw the crash schedule
			if !sync && !avg && m.Topology == "" {
				mutateCrashes(&m, r)
			}
		case 6: // toggle the sharded twin
			if m.Shards != 0 {
				m.Shards = 0
			} else {
				m.Shards = genShardDomain[r.Intn(len(genShardDomain))]
			}
		default: // reseed the protocol / schedule / delay streams
			m.Seed = r.Int63()
			if m.Schedule.Seed != 0 {
				m.Schedule.Seed = r.Int63()
			}
			if m.Delay.Seed != 0 {
				m.Delay.Seed = r.Int63()
			}
		}
	}

	// Re-derive everything the operators may have invalidated. f stays on
	// the clique (a crash can disconnect a sparse graph, voiding the
	// promise) and under n/2; crash events must reference live ids; the
	// fixed delay re-clamps into [1, d]; the horizon follows the new
	// parameters exactly as the generator's does.
	if sync || avg {
		m.F = 0
		m.Crashes = nil
	}
	if m.Topology != "" {
		m.F = 0
		m.Crashes = nil
	}
	if m.F > (m.N-1)/2 {
		m.F = (m.N - 1) / 2
	}
	kept := m.Crashes[:0]
	for _, c := range m.Crashes {
		// Spread protocols keep the initiator alive: a crashed process 0
		// orphans the rumor, which would be a scenario bug, not a kernel bug.
		if c.Proc < m.N && !(spread && c.Proc == 0) {
			kept = append(kept, c)
		}
	}
	m.Crashes = kept
	if len(m.Crashes) == 0 {
		m.Crashes = nil
	}
	if m.Delay.Kind == DelayFixed && m.Delay.Value > m.D {
		m.Delay.Value = m.D
	}
	m.MaxSteps = int64(sim.DefaultMaxSteps(sim.Config{
		N: m.N, F: m.F, D: sim.Time(m.D), Delta: sim.Time(m.Delta),
	}))
	return m
}

// mutateCrashes applies one crash-schedule operator in place: jitter every
// event, drop one, clone-and-shift one, or redraw the whole plan (possibly
// over budget, like the generator's).
func mutateCrashes(m *Spec, r *rng.RNG) {
	unit := m.D + m.Delta
	switch {
	case len(m.Crashes) == 0 || r.Bool(0.25):
		m.Crashes = drawCrashPlan(r, *m)
	case r.Bool(0.4): // jitter times
		for i := range m.Crashes {
			at := m.Crashes[i].At + int64(nudge(r, int(unit)))
			if at < 0 {
				at = 0
			}
			m.Crashes[i].At = at
		}
	case r.Bool(0.5): // drop one event
		i := r.Intn(len(m.Crashes))
		m.Crashes = append(m.Crashes[:i], m.Crashes[i+1:]...)
	default: // clone one event onto a fresh victim, later
		src := m.Crashes[r.Intn(len(m.Crashes))]
		m.Crashes = append(m.Crashes, CrashEvent{
			At:   src.At + unit,
			Proc: r.Intn(m.N),
		})
	}
}

// nudge draws a non-zero step in [-max, +max], biased neither way.
func nudge(r *rng.RNG, max int) int {
	d := 1 + r.Intn(max)
	if r.Bool(0.5) {
		return -d
	}
	return d
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
