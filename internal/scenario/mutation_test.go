package scenario

import (
	"testing"

	"repro/internal/sim"
)

// Mutation testing for the oracle suite itself: re-create a kernel bug via
// the kernelFault hook and assert the fuzzer catches it, shrinks it, and
// emits a replayable report. This is the documented answer to "would the
// oracles actually notice?" — if someone deleted the kernel's crash-budget
// enforcement, the next fuzz session must fail loudly, not drift.
//
// The hook raises the world's crash budget above the spec's F, which is
// exactly what disabling the budget check in World.stepTime would do: the
// generator routinely emits crash plans with more victims than F (see
// drawCrashPlan), the un-mutated kernel ignores the excess, and the
// mutated kernel crashes them all. The crash-budget oracle — fed by the
// independent event witness, not by kernel state — must fire.

// disableCrashBudget simulates "crash-budget check disabled": the world
// accepts every planned crash short of killing all processes. The spec's
// F (what the oracles hold the run to) is untouched.
func disableCrashBudget(cfg *sim.Config) {
	cfg.F = cfg.N - 1
}

func TestMutationDisabledCrashBudgetIsCaught(t *testing.T) {
	prev := kernelFault
	defer func() { kernelFault = prev }()
	kernelFault = disableCrashBudget

	// Sweep the stream until the generator emits an over-budget crash plan
	// that the mutated kernel acts on; assert the session reports it.
	sum, err := Fuzz(Options{Runs: 150, MasterSeed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Reports) == 0 {
		t.Fatal("mutated kernel survived 150 scenarios: the oracle suite is blind to a disabled crash budget")
	}
	var rep *Report
	for i := range sum.Reports {
		for _, v := range sum.Reports[i].Violations {
			if v.Oracle == OracleCrashBudget {
				rep = &sum.Reports[i]
			}
		}
	}
	if rep == nil {
		t.Fatalf("no crash-budget violation among %d reports; first: %+v",
			len(sum.Reports), sum.Reports[0].Violations)
	}

	// The shrinker produced a strictly simpler repro that still fails.
	if rep.Minimized.N > rep.Spec.N {
		t.Fatalf("minimized repro grew: n %d -> %d", rep.Spec.N, rep.Minimized.N)
	}
	if rep.ShrinkRuns == 0 {
		t.Fatal("shrinker spent no candidate runs")
	}

	// The report replays: with the mutation still in the build (as a real
	// kernel bug would be), both the original and minimized specs
	// reproduce the primary violation.
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	minimized, original, err := Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if !minimized.Reproduced || !original.Reproduced {
		t.Fatalf("report did not replay: minimized=%v original=%v", minimized, original)
	}
}

// TestMutationRepairedKernelReplaysClean: the same report replayed against
// the healthy kernel no longer reproduces — the violation was the
// mutation's, not the harness's.
func TestMutationRepairedKernelReplaysClean(t *testing.T) {
	prev := kernelFault
	kernelFault = disableCrashBudget
	sum, err := Fuzz(Options{Runs: 150, MasterSeed: 1, Workers: 1})
	kernelFault = prev
	if err != nil {
		t.Fatal(err)
	}
	var rep *Report
	for i := range sum.Reports {
		for _, v := range sum.Reports[i].Violations {
			if v.Oracle == OracleCrashBudget && rep == nil {
				rep = &sum.Reports[i]
			}
		}
	}
	if rep == nil {
		t.Skip("no crash-budget report found under mutation")
	}
	minimized, _, err := Replay(*rep)
	if err != nil {
		t.Fatal(err)
	}
	if minimized.Reproduced {
		t.Fatalf("healthy kernel still violates the crash budget: %+v", minimized.Violations)
	}
}
