package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/topology"
)

// Live replay seam: the exported surface the live networked cluster
// (internal/cluster) uses to run the *same* Spec that the simulator and
// the fuzzer execute. The cluster replaces the oblivious schedule/delay
// policies with real asynchrony — the Go scheduler, TCP, the OS — but
// keeps the spec's protocol, parameters, topology and crash plan, so a
// live trace can be judged against a live-adapted subset of the same
// oracle catalog.

// ProtocolByName resolves a protocol from the registries the fuzzer draws
// from (core and syncgossip).
func ProtocolByName(name string) (core.Protocol, error) { return protoByName(name) }

// BuildGraph materializes the spec's topology: nil for the paper's
// complete graph, a seeded CSR graph otherwise.
func (s Spec) BuildGraph() (topology.Graph, error) { return s.graph() }

// IsSpreadProtocol reports whether the protocol is in the single-rumor
// spreading family (push/pull/push-pull): completion is an informed bit,
// not a rumor set.
func IsSpreadProtocol(p string) bool { return isSpreadProto(p) }

// IsAveragingProtocol reports whether the protocol is sum-weight averaging:
// completion is ε-consensus of the estimates.
func IsAveragingProtocol(p string) bool { return isAvgProto(p) }

// MessageEnvelope returns the spec's Table-1-derived message-complexity
// bound (already scaled by the simulator's slack factor), or 0 when no
// bound applies. Live runs layer additional wall-clock slack on top: the
// bound's (d, δ) terms describe the declared adversary, which real
// networks only approximate.
func MessageEnvelope(s Spec) float64 { return messageEnvelope(s) }

// TimeEnvelope returns the spec's completion-time bound in simulated
// steps (scaled by the simulator's slack factor), or 0 when no bound
// applies. A live harness converts steps to wall clock via its pacing
// interval and applies its own slack.
func TimeEnvelope(s Spec) float64 { return timeEnvelope(s) }

// ReadSpecFile loads a Spec from any of the serialized forms the
// repository produces: a bare Spec JSON object, a corpus entry
// (repro.fuzz.corpus/v1 — the spec under "spec"), or a fuzz report
// (repro.fuzz.report/v1 — the minimized repro is preferred, falling back
// to the original spec). The loaded spec is validated before return.
func ReadSpecFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var probe struct {
		Schema    string          `json:"schema"`
		Spec      json.RawMessage `json:"spec"`
		Minimized json.RawMessage `json:"minimized"`
	}
	raw := json.RawMessage(data)
	if err := json.Unmarshal(data, &probe); err == nil && len(probe.Spec) > 0 {
		raw = probe.Spec
		if probe.Schema == ReportSchema && len(probe.Minimized) > 0 {
			raw = probe.Minimized
		}
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}
