package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

// TestGenerateDeterministic: a spec is a pure function of (master, index),
// and survives a JSON round trip unchanged (the property reports rely on).
func TestGenerateDeterministic(t *testing.T) {
	for index := int64(0); index < 50; index++ {
		a := Generate(7, index)
		b := Generate(7, index)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("index %d: Generate is not deterministic:\n%+v\n%+v", index, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("index %d: generated invalid spec: %v", index, err)
		}
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("index %d: JSON round trip changed the spec:\n%+v\n%+v", index, a, back)
		}
	}
	if reflect.DeepEqual(Generate(7, 0), Generate(8, 0)) {
		t.Fatal("different masters generated the same spec")
	}
}

// TestGenerateDomain: generated specs stay inside the domain whose
// guarantees the oracles assume.
func TestGenerateDomain(t *testing.T) {
	sawTopo, sawOverbudget, sawSync := false, false, false
	sawShards := map[int]bool{}
	for index := int64(0); index < 400; index++ {
		s := Generate(3, index)
		if s.Shards != 0 {
			sawShards[s.Shards] = true
		}
		if s.N < genMinN || s.N > genMaxN {
			t.Fatalf("index %d: n = %d out of range", index, s.N)
		}
		if s.F >= (s.N+1)/2 {
			t.Fatalf("index %d: f = %d is not a minority of n = %d", index, s.F, s.N)
		}
		if s.Topology != "" {
			sawTopo = true
			if s.F != 0 {
				t.Fatalf("index %d: crashes drawn on sparse topology %s", index, s.Topology)
			}
			switch {
			case isRelayProto(s.Protocol):
				// any generated family
			case isSpreadProto(s.Protocol) || isAvgProto(s.Protocol):
				if s.Topology != topology.FamilyErdosRenyi && s.Topology != topology.FamilyRandomRegular {
					t.Fatalf("index %d: %s on non-expander topology %s", index, s.Protocol, s.Topology)
				}
			default:
				t.Fatalf("index %d: non-relay protocol %s on topology %s", index, s.Protocol, s.Topology)
			}
		}
		// Averaging is crash-free: budget always 0, so any listed crash
		// events are deliberately-overbudget plans the kernel must refuse.
		if isAvgProto(s.Protocol) && s.F != 0 {
			t.Fatalf("index %d: averaging drawn with crash budget: %+v", index, s)
		}
		if isSpreadProto(s.Protocol) {
			for _, c := range s.Crashes {
				if c.Proc == 0 {
					t.Fatalf("index %d: crash plan kills the spreading initiator: %+v", index, s)
				}
			}
		}
		if len(s.Crashes) > s.F {
			sawOverbudget = true
		}
		if strings.HasPrefix(s.Protocol, "sync-") {
			sawSync = true
			if s.D != 1 || s.Delta != 1 || s.F != 0 || s.Schedule.Kind != SchedEvery {
				t.Fatalf("index %d: sync protocol outside the synchronous domain: %+v", index, s)
			}
		}
	}
	if !sawTopo || !sawOverbudget || !sawSync {
		t.Fatalf("domain corners unexercised: topo=%v overbudget=%v sync=%v",
			sawTopo, sawOverbudget, sawSync)
	}
	for _, want := range genShardDomain {
		if !sawShards[want] {
			t.Fatalf("shard domain corner %d unexercised (saw %v)", want, sawShards)
		}
	}
}

// TestExecuteDeterministic: executing the same spec twice yields identical
// event digests, and the sampled unpooled twin agrees (pooled ≡ unpooled).
func TestExecuteDeterministic(t *testing.T) {
	for index := int64(0); index < 16; index++ {
		spec := Generate(11, index)
		a, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest || a.Events != b.Events {
			t.Fatalf("index %d: digests diverge across identical executions", index)
		}
		if a.TwinRan && (a.Digest != a.TwinDigest || a.Events != a.TwinEvents) {
			t.Fatalf("index %d: pooled and unpooled twins diverge", index)
		}
		if a.ShardTwinRan && (a.Digest != a.ShardDigest || a.Events != a.ShardEvents) {
			t.Fatalf("index %d: serial and %d-shard twins diverge", index, a.ShardTwinShards)
		}
	}
}

// TestFuzzSmoke: a small session over the default stream is clean — every
// oracle passes on every scenario — and the summary counters line up.
func TestFuzzSmoke(t *testing.T) {
	sum, err := Fuzz(Options{Runs: 120, MasterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Reports) != 0 {
		t.Fatalf("clean stream produced %d reports; first: %+v", len(sum.Reports), sum.Reports[0])
	}
	if sum.Runs != 120 || sum.Skipped != 0 {
		t.Fatalf("runs = %d, skipped = %d", sum.Runs, sum.Skipped)
	}
	total := 0
	for _, c := range sum.ByProtocol {
		total += c
	}
	if total != 120 {
		t.Fatalf("per-protocol counts sum to %d", total)
	}
	if sum.EquivalenceChecked == 0 {
		t.Fatal("no equivalence twins sampled")
	}
	if sum.ShardChecked == 0 {
		t.Fatal("no sharded twins sampled")
	}
}

// TestFuzzParallelEqualsSerial: the summary is bit-identical across worker
// counts once encoded (the determinism contract cmd/fuzz exposes).
func TestFuzzParallelEqualsSerial(t *testing.T) {
	serial, err := Fuzz(Options{Runs: 80, MasterSeed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fuzz(Options{Runs: 80, MasterSeed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("serial and parallel summaries differ:\n%s\n%s", a, b)
	}
}

// TestFuzzFirstIndexPartitions: [0,k) + [k,2k) ≡ [0,2k) — the property the
// time-boxed CLI mode and stream partitioning rely on.
func TestFuzzFirstIndexPartitions(t *testing.T) {
	whole, err := Fuzz(Options{Runs: 60, MasterSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Fuzz(Options{Runs: 30, MasterSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Fuzz(Options{Runs: 30, MasterSeed: 9, FirstIndex: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lo.Messages+hi.Messages, whole.Messages; got != want {
		t.Fatalf("partitioned sessions saw %d messages, whole session %d", got, want)
	}
	if lo.Completed+hi.Completed != whole.Completed {
		t.Fatal("completion counts do not partition")
	}
}

// TestSpecValidateRejects: malformed specs are rejected with useful errors.
func TestSpecValidateRejects(t *testing.T) {
	good := Generate(1, 0)
	cases := []struct {
		mut  func(*Spec)
		want string
	}{
		{func(s *Spec) { s.Protocol = "nope" }, "unknown protocol"},
		{func(s *Spec) { s.N = 0 }, "need N >= 1"},
		{func(s *Spec) { s.F = s.N }, "0 <= F < N"},
		{func(s *Spec) { s.D = 0 }, "need both >= 1"},
		{func(s *Spec) { s.Schedule.Kind = "psychic" }, "unknown schedule"},
		{func(s *Spec) { s.Delay.Kind = "wormhole" }, "unknown delay"},
		{func(s *Spec) { s.Crashes = []CrashEvent{{At: 0, Proc: s.N}} }, "out-of-range"},
		{func(s *Spec) { s.Topology = "hypercube-of-doom" }, "unknown family"},
		{func(s *Spec) { s.Shards = ShardsAuto - 1 }, "Shards"},
	}
	for _, tc := range cases {
		s := clone(good)
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("mutation expecting %q: got %v", tc.want, err)
		}
	}
}

// TestOracleCatalogShape: the catalog is non-empty, names are unique, and
// every oracle passes on a known-good execution.
func TestOracleCatalogShape(t *testing.T) {
	names := map[string]bool{}
	for _, o := range Catalog() {
		if o.Name == "" || o.Doc == "" || o.Check == nil {
			t.Fatalf("malformed oracle %+v", o)
		}
		if names[o.Name] {
			t.Fatalf("duplicate oracle name %q", o.Name)
		}
		names[o.Name] = true
	}
	for _, must := range []string{
		OracleCrashBudget, OracleDelayClamp, OraclePostCrash, OracleScheduleGap,
		OracleCompletion, OracleValidity, OracleMessageEnvelope, OracleTimeEnvelope,
		OraclePoolEquivalence, OracleShardEquivalence,
	} {
		if !names[must] {
			t.Fatalf("catalog lacks the %q oracle", must)
		}
	}
}

// TestOracleCompletionFiresOnUnderDelivery: a scenario engineered to break
// its promise is caught. tears' two-hop audience under-covers the majority
// on a ring (the finding that pinned tears to the clique in the generator
// domain); aimed at the oracle directly, it must fire.
func TestOracleCompletionFiresOnUnderDelivery(t *testing.T) {
	spec := Spec{
		Protocol: "tears", N: 24, F: 0, D: 1, Delta: 1,
		Seed:     5,
		Topology: topology.FamilyRing,
		Schedule: ScheduleSpec{Kind: SchedEvery},
		Delay:    DelaySpec{Kind: DelayFixed, Value: 1},
		MaxSteps: 20000,
		Majority: true, ExpectComplete: true,
	}
	ex, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	violations := CheckAll(ex)
	found := false
	for _, v := range violations {
		if v.Oracle == OracleCompletion {
			found = true
		}
	}
	if !found {
		t.Fatalf("completion oracle silent on an under-delivering scenario: %+v", violations)
	}
}

// TestOracleShardEquivalenceFires: the sharded≡serial oracle reports a
// digest divergence (synthesized here — the engine's own equivalence is
// pinned by the sim and core test suites) and stays silent otherwise.
func TestOracleShardEquivalenceFires(t *testing.T) {
	spec := Generate(1, shardOffset)
	if spec.Shards == 0 {
		t.Fatalf("index %d should draw a shard count", shardOffset)
	}
	ex, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.ShardTwinRan {
		t.Fatal("sharded twin did not run")
	}
	if detail := checkShardEquivalence(ex); detail != "" {
		t.Fatalf("oracle fired on a clean run: %s", detail)
	}
	ex.ShardDigest++
	if detail := checkShardEquivalence(ex); detail == "" {
		t.Fatal("oracle silent on a diverged sharded twin")
	}
}

// TestShrinkNoopOnUnshrinkable: when nothing smaller reproduces, Shrink
// returns the input unchanged (modulo the equivalence-twin flag).
func TestShrinkNoopOnUnshrinkable(t *testing.T) {
	spec := Generate(1, 1) // a passing scenario: no candidate can "still fail"
	out, runs := Shrink(spec, OracleCompletion, 40)
	spec.CheckEquivalence = false
	if !reflect.DeepEqual(out, spec) {
		t.Fatalf("shrink of an unshrinkable spec changed it:\n%+v\n%+v", spec, out)
	}
	if runs > 40 {
		t.Fatalf("shrink overspent its budget: %d", runs)
	}
}

// TestReportRoundTrip: encode/decode preserves a report; decode rejects
// schema drift and junk.
func TestReportRoundTrip(t *testing.T) {
	spec := Generate(1, 2)
	rep := Report{
		Schema: ReportSchema, MasterSeed: 1, Index: 2,
		Label:      spec.Label(),
		Violations: []OracleViolation{{Oracle: OracleCompletion, Detail: "synthetic"}},
		Spec:       spec, Minimized: spec, ShrinkRuns: 3,
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("report round trip changed it:\n%+v\n%+v", rep, back)
	}
	if _, err := DecodeReport([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := DecodeReport([]byte(`not json`)); err == nil {
		t.Fatal("junk accepted")
	}
	bad := rep
	bad.Violations = nil
	data, _ = bad.Encode()
	if _, err := DecodeReport(data); err == nil {
		t.Fatal("report without violations accepted")
	}
}
