package scenario

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/sim"
)

// kernelFault, when non-nil, mutates the kernel configuration just before
// the world is built. It exists solely for the oracle suite's self-tests:
// a test installs a fault that re-creates a kernel bug (e.g. a disabled
// crash budget) and asserts the oracles catch it with a minimized repro.
// Production builds never set it.
var kernelFault func(*sim.Config)

// Execution is one finished scenario run plus everything the oracles need
// to judge it: the kernel's own result, the independent invariant
// checker's observations, the event digest, and (when sampled) the digest
// of the unpooled twin run.
type Execution struct {
	// Spec is the scenario that ran.
	Spec Spec
	// Res is the kernel's result (complexity measures, completion flags).
	Res sim.Result
	// RunErr is the kernel's run error: nil, a timeout, or an evaluator
	// rejection. Oracles judge from primary evidence instead.
	RunErr error
	// Checker observed every event and re-verified the model online.
	Checker *sim.InvariantChecker
	// Digest fingerprints the event stream; Events counts it.
	Digest uint64
	Events int64
	// TwinRan marks that the unpooled twin executed; TwinDigest/TwinEvents
	// are its fingerprint.
	TwinRan    bool
	TwinDigest uint64
	TwinEvents int64
	// ShardTwinRan marks that the sharded twin executed; ShardTwinShards is
	// the resolved shard count it used (ShardsAuto resolved to CPUs), and
	// ShardDigest/ShardEvents are its fingerprint.
	ShardTwinRan    bool
	ShardTwinShards int
	ShardDigest     uint64
	ShardEvents     int64

	view  sim.View
	nodes []sim.Node
}

// Execute runs a scenario through the pooled sim kernel with the checker
// and digest tracers riding along, then — for sampled specs — repeats it
// with pooling disabled to witness the pooled ≡ unpooled contract, and/or
// through the sharded superstep kernel to witness sharded ≡ serial. The
// returned error reports an unrunnable spec; runtime failures (timeouts,
// evaluator rejections, invariant breaches) are data in the Execution,
// judged by CheckAll.
func Execute(spec Spec) (*Execution, error) {
	return ExecuteTraced(spec, nil)
}

// ExecuteTraced is Execute with an extra observer teed into the primary
// run's tracer chain — the seam telemetry rides (e.g. telemetry.Recorder,
// trace.Timeline). The extra tracer observes the pooled run only, never
// the unpooled twin, and — like all tracers — cannot affect the run: the
// digest with and without an extra tracer is identical, which the
// determinism tests pin.
func ExecuteTraced(spec Spec, extra sim.Tracer) (*Execution, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ex := &Execution{Spec: spec}
	chk := sim.NewInvariantChecker(spec.N, spec.F, sim.Time(spec.D), spec.maxGap())
	dig := sim.NewDigestTracer()
	view, nodes, res, runErr, err := runOnce(spec, false, 0, sim.Tee(chk, dig, extra))
	if err != nil {
		return nil, err
	}
	ex.view, ex.nodes, ex.Res, ex.RunErr = view, nodes, res, runErr
	ex.Checker = chk
	ex.Digest, ex.Events = dig.Sum(), dig.Events()

	if spec.CheckEquivalence {
		twin := sim.NewDigestTracer()
		if _, _, _, _, err := runOnce(spec, true, 0, twin); err != nil {
			return nil, err
		}
		ex.TwinRan = true
		ex.TwinDigest, ex.TwinEvents = twin.Sum(), twin.Events()
	}
	if spec.Shards != 0 {
		shards := spec.Shards
		if shards == ShardsAuto {
			shards = runtime.NumCPU()
		}
		twin := sim.NewDigestTracer()
		if _, _, _, _, err := runOnce(spec, false, shards, twin); err != nil {
			return nil, err
		}
		ex.ShardTwinRan = true
		ex.ShardTwinShards = shards
		ex.ShardDigest, ex.ShardEvents = twin.Sum(), twin.Events()
	}
	return ex, nil
}

// runOnce executes the spec once. noPool disables snapshot pooling (the
// unpooled twin); shards > 1 selects the sharded superstep kernel (the
// sharded twin); the tracer observes every event.
func runOnce(spec Spec, noPool bool, shards int, tracer sim.Tracer) (sim.View, []sim.Node, sim.Result, error, error) {
	proto, err := protoByName(spec.Protocol)
	if err != nil {
		return nil, nil, sim.Result{}, nil, err
	}
	graph, err := spec.graph()
	if err != nil {
		return nil, nil, sim.Result{}, nil, err
	}
	params := core.Params{N: spec.N, F: spec.F, Graph: graph, NoPool: noPool, Shards: shards}
	nodes, err := core.NewNodes(proto, params, spec.Seed)
	if err != nil {
		return nil, nil, sim.Result{}, nil, err
	}
	cfg := sim.Config{
		N: spec.N, F: spec.F,
		D: sim.Time(spec.D), Delta: sim.Time(spec.Delta),
		Seed:     spec.Seed,
		MaxSteps: sim.Time(spec.MaxSteps),
		Graph:    graph,
		Shards:   shards,
	}
	if kernelFault != nil {
		kernelFault(&cfg)
	}
	w, err := sim.NewWorld(cfg, nodes, spec.adversary())
	if err != nil {
		return nil, nil, sim.Result{}, nil, err
	}
	w.SetTracer(tracer)
	res, runErr := w.Run(proto.Evaluator(params.WithDefaults()))
	return w, nodes, res, runErr, nil
}

// runDetail renders the kernel's own verdict for report details.
func (ex *Execution) runDetail() string {
	switch {
	case ex.RunErr != nil:
		return ex.RunErr.Error()
	case !ex.Res.Completed:
		return fmt.Sprintf("not completed: %s", ex.Res.Detail)
	default:
		return "completed"
	}
}
