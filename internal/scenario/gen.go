package scenario

import (
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/syncgossip"
	"repro/internal/topology"
)

// Generation domain. The fuzzer only draws scenarios whose guarantees are
// actually promised, mirroring the repository's test and benchmark policy:
//
//   - The asynchronous protocols (trivial, ears, sears, tears) must
//     complete on the clique for any oblivious adversary with f < n/2
//     (the property suite pins exactly this domain).
//   - Crash failures are drawn only on the complete graph: on a sparse
//     topology crashes can disconnect the graph, making non-completion a
//     property of the scenario rather than a bug (the bench suite makes
//     the same split).
//   - ears and sears — the protocols that relay until their informed
//     lists are covered — also run across every generated graph family
//     with f = 0. tears stays on the clique: its fixed two-hop audience
//     legitimately under-covers the majority on low-degree graphs (see
//     the topology draw below).
//   - The synchronous baselines assume d = δ = 1 and the synchronous
//     schedule — that knowledge is their defining advantage (Table 1) —
//     so they are fuzzed only under those parameters, crash-free.
//   - naive is the paper's §1 ablation and carries no completion promise;
//     it is fuzzed for safety invariants and its deterministic message
//     budget only.
//   - The single-rumor spreading family (push, pull, push-pull) runs on
//     the clique and on the expander-like families (Erdős–Rényi, random-
//     regular — the Panagiotou–Speidel setting); low-degree rings and
//     tori would void the logarithmic spreading-time promise. Crash plans
//     protect process 0: a crashed initiator orphans the rumor, making
//     non-completion a property of the scenario rather than a bug.
//   - Sum-weight averaging (average) runs crash-free everywhere it is
//     drawn: a crash destroys in-flight and resident mass, and the
//     survivors then converge to a value that is not the mean.
const (
	genMinN     = 8
	genMaxN     = 64 // inclusive
	genMaxD     = 4
	genMaxDelta = 4
	// equivalenceEvery samples the pooled≡unpooled twin-run oracle on every
	// K-th scenario: the twin doubles a run's cost, and the contract it
	// checks is global (a pooling bug is not scenario-local), so a 1-in-8
	// sample across thousands of nightly runs is dense coverage.
	equivalenceEvery = 8
	// shardEvery samples the sharded≡serial twin-run oracle at the same
	// 1-in-8 density, offset so the two twins land on different scenarios
	// and no single run pays for both.
	shardEvery, shardOffset = 8, 3
	// overbudgetNum/Den is the fraction of crash plans that deliberately
	// list more victims than the budget f, exercising the kernel's budget
	// enforcement (the crash-budget oracle checks it held).
	overbudgetNum, overbudgetDen = 1, 5
)

// genProtocols is the protocol draw table. Weights bias toward the paper's
// contributions (the asynchronous protocols) while keeping every registered
// protocol in the matrix.
var genProtocols = []struct {
	name   string
	weight int
}{
	{core.NameEARS, 4},
	{core.NameSEARS, 3},
	{core.NameTEARS, 3},
	{core.NameTrivial, 2},
	{core.NameNaive, 2},
	{syncgossip.NameSyncEpidemic, 1},
	{syncgossip.NameSyncDeterministic, 1},
	// The O(1)-state families (PR 9). Appended at the end: the draw table
	// is positional, so appending shifts the (master, index) → scenario
	// mapping once — accepted, the corpus is content-addressed — while
	// keeping the entries themselves stable for future additions.
	{core.NamePush, 2},
	{core.NamePull, 2},
	{core.NamePushPull, 2},
	{core.NameAverage, 2},
}

// Protocol classes: the domain rules above key off these predicates, and
// Mutate uses them to pick applicable operators.
func isSyncProto(p string) bool {
	return p == syncgossip.NameSyncEpidemic || p == syncgossip.NameSyncDeterministic
}
func isRelayProto(p string) bool { return p == core.NameEARS || p == core.NameSEARS }
func isSpreadProto(p string) bool {
	return p == core.NamePush || p == core.NamePull || p == core.NamePushPull
}
func isAvgProto(p string) bool { return p == core.NameAverage }

// genSparseFamilies are the generated-graph families drawn for the
// relay-capable protocols (plus the implicit clique, drawn separately).
var genSparseFamilies = []string{
	topology.FamilyRing,
	topology.FamilyTorus,
	topology.FamilyRandomRegular,
	topology.FamilyErdosRenyi,
	topology.FamilyWattsStrogatz,
	topology.FamilyBarabasiAlbert,
}

// genExpanderFamilies are the generated-graph families drawn for the
// O(1)-state families: the expander-like graphs whose conductance keeps
// the logarithmic spreading/diffusion budgets honest. Rings and tori are
// deliberately absent — on them the promises do not hold.
var genExpanderFamilies = []string{
	topology.FamilyErdosRenyi,
	topology.FamilyRandomRegular,
}

// Generate derives the index-th scenario of a master seed's stream. It is
// a pure function of (master, index): the same pair always yields the same
// Spec, on any machine, regardless of how many runs the surrounding fuzz
// session performs — which is what makes every failure replayable from two
// integers.
func Generate(master, index int64) Spec {
	r := rng.New(runner.DeriveSeed(master, "scenario", index))

	var s Spec
	s.Protocol = drawProtocol(r)
	s.N = genMinN + r.Intn(genMaxN-genMinN+1)
	s.Seed = r.Int63()
	s.CheckEquivalence = index%equivalenceEvery == 0

	sync := isSyncProto(s.Protocol)
	relay := isRelayProto(s.Protocol)
	spread := isSpreadProto(s.Protocol)
	avg := isAvgProto(s.Protocol)

	// Topology: the clique always; generated families only for protocols
	// that relay until their informed-lists say everyone is covered (ears,
	// sears). tears stays on the paper's model: its fixed two-hop audience
	// structure quiesces after √n·log n-sized pushes, which on low-degree
	// graphs legitimately under-covers the majority (the fuzzer found
	// exactly this on rings and tori). trivial has no relay at all; naive
	// and the sync baselines are fuzzed on the paper's model. The O(1)-state
	// families draw from the expander-like subset, where their budgets are
	// promised.
	if relay && r.Bool(0.4) {
		s.Topology = genSparseFamilies[r.Intn(len(genSparseFamilies))]
		s.TopologySeed = r.Int63()
		if s.Topology == topology.FamilyRandomRegular {
			s.TopologyParam = float64(4 + 2*r.Intn(3)) // degree 4, 6 or 8
		}
	} else if (spread || avg) && r.Bool(0.4) {
		s.Topology = genExpanderFamilies[r.Intn(len(genExpanderFamilies))]
		s.TopologySeed = r.Int63()
		if s.Topology == topology.FamilyRandomRegular {
			s.TopologyParam = float64(6 + 2*r.Intn(2)) // degree 6 or 8
		}
	}

	// System parameters.
	if sync {
		s.D, s.Delta = 1, 1
	} else {
		s.D = 1 + int64(r.Intn(genMaxD))
		s.Delta = 1 + int64(r.Intn(genMaxDelta))
	}

	// Failures: only where a crash cannot invalidate the promise. Averaging
	// is always crash-free — a crash destroys (sum, weight) mass and shifts
	// the survivors' limit away from the mean.
	if !sync && !avg && s.Topology == "" {
		s.F = r.Intn(s.N / 2)
	}

	// Schedule.
	if sync {
		s.Schedule = ScheduleSpec{Kind: SchedEvery}
	} else {
		switch r.Intn(4) {
		case 0:
			s.Schedule = ScheduleSpec{Kind: SchedEvery}
		case 1:
			s.Schedule = ScheduleSpec{Kind: SchedStride, Seed: r.Int63()}
		case 2:
			s.Schedule = ScheduleSpec{Kind: SchedFixedStride}
		default:
			s.Schedule = ScheduleSpec{
				Kind:     SchedSkewed,
				SlowFrac: 0.1 + 0.8*r.Float64(),
				Seed:     r.Int63(),
			}
		}
	}

	// Delay policy.
	if sync {
		s.Delay = DelaySpec{Kind: DelayFixed, Value: 1}
	} else {
		switch r.Intn(4) {
		case 0:
			s.Delay = DelaySpec{Kind: DelayFixed, Value: 1 + int64(r.Intn(int(s.D)))}
		case 1:
			s.Delay = DelaySpec{Kind: DelayUniform, Seed: r.Int63()}
		case 2:
			s.Delay = DelaySpec{Kind: DelayPairwise, Seed: r.Int63()}
		default:
			s.Delay = DelaySpec{Kind: DelayPartition, HealAt: int64(r.Intn(int(healScale(s)) + 1))}
		}
	}

	// Crash plan: storms, spreads and staggered waves over an explicit
	// (time, process) list; occasionally over budget on purpose.
	s.Crashes = drawCrashPlan(r, s)

	// Horizon, materialized so the shrinker can cut it.
	s.MaxSteps = int64(sim.DefaultMaxSteps(sim.Config{
		N: s.N, F: s.F, D: sim.Time(s.D), Delta: sim.Time(s.Delta),
	}))

	// Promises.
	s.Majority = s.Protocol == core.NameTEARS
	s.ExpectComplete = s.Protocol != core.NameNaive

	// Sharded twin: sampled like the pool twin. Drawn last so the field's
	// introduction left every earlier draw — and thus every historical
	// (master, index) → scenario mapping up to this field — intact. The
	// domain covers the identity shard count, small counts that split the
	// id range unevenly, and the machine's CPU count.
	if index%shardEvery == shardOffset {
		s.Shards = genShardDomain[r.Intn(len(genShardDomain))]
	}

	return s
}

// genShardDomain is the shard-count draw table for the sharded≡serial
// twin: 1 (the sharding-disabled identity), 2 and 7 (uneven splits of
// every generated n), and one shard per CPU (resolved at execution).
var genShardDomain = []int{1, 2, 7, ShardsAuto}

// drawProtocol picks a protocol from the weighted table.
func drawProtocol(r *rng.RNG) string {
	total := 0
	for _, p := range genProtocols {
		total += p.weight
	}
	k := r.Intn(total)
	for _, p := range genProtocols {
		if k < p.weight {
			return p.name
		}
		k -= p.weight
	}
	return genProtocols[0].name
}

// healScale is the time scale for partition heals and crash windows:
// a few information-spreading epochs, as in adversary.Standard.
func healScale(s Spec) int64 {
	l := int64(1)
	for v := 1; v < s.N; v <<= 1 {
		l++
	}
	return 4 * (s.D + s.Delta) * l
}

// drawCrashPlan materializes a random crash plan for the spec. The number
// of victims is the budget f — or deliberately above it for a fraction of
// plans, so the kernel's budget enforcement is itself under test. With
// f = 0 and no overbudget draw the plan is empty.
func drawCrashPlan(r *rng.RNG, s Spec) []CrashEvent {
	victims := s.F
	if r.Intn(overbudgetDen) < overbudgetNum {
		extra := 1 + r.Intn(3)
		if victims+extra < s.N {
			victims += extra
		}
	}
	if victims == 0 {
		return nil
	}
	var procs []int
	if isSpreadProto(s.Protocol) {
		// Protect the initiator: a crashed process 0 orphans the rumor and
		// makes non-completion a property of the scenario, not a bug.
		procs = r.Sample(s.N-1, victims)
		for i := range procs {
			procs[i]++
		}
	} else {
		procs = r.Sample(s.N, victims)
	}
	window := 2 * healScale(s)
	events := make([]CrashEvent, len(procs))
	switch r.Intn(3) {
	case 0: // storm: everyone at one instant
		t0 := int64(r.Intn(int(window/2) + 1))
		for i, p := range procs {
			events[i] = CrashEvent{At: t0, Proc: p}
		}
	case 1: // spread: uniform over the window
		for i, p := range procs {
			events[i] = CrashEvent{At: int64(r.Intn(int(window) + 1)), Proc: p}
		}
	default: // staggered: doubling waves, the ears worst-case shape
		unit := s.D + s.Delta
		at, i, remaining := unit, 0, len(procs)
		for remaining > 0 {
			wave := (remaining + 1) / 2
			for k := 0; k < wave; k++ {
				events[i] = CrashEvent{At: at, Proc: procs[i]}
				i++
			}
			remaining -= wave
			at *= 2
		}
	}
	return events
}
