package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/runner"
)

// Options configures a fuzz session. The zero value runs nothing; set
// Runs. Results are a pure function of (MasterSeed, FirstIndex, Runs) —
// Workers only changes wall-clock time, never output.
type Options struct {
	// Runs is the number of scenarios to generate and execute.
	Runs int
	// MasterSeed keys the scenario stream (see Generate).
	MasterSeed int64
	// FirstIndex offsets into the stream; a session over [0, k) and one
	// over [k, 2k) together equal one session over [0, 2k).
	FirstIndex int64
	// Workers caps concurrency (0 = GOMAXPROCS, 1 = serial). Parallel runs
	// are bit-identical to serial by the runner's determinism contract.
	Workers int
	// ShrinkBudget bounds candidate executions per failing scenario
	// (0 = DefaultShrinkBudget).
	ShrinkBudget int
	// Context cancels the session (nil = background). Scenarios not yet
	// started when it fires are skipped and reported in Summary.Skipped.
	Context context.Context
	// OnRun, when non-nil, receives monotone progress (done, total).
	OnRun func(done, total int)
	// Progress, when non-nil, receives monotone progress plus the running
	// violation count — the hook behind cmd/fuzz's periodic progress
	// lines. Calls are serialized; violations counts scenarios whose
	// oracle check failed among the done ones.
	Progress func(done, total int, violations int64)
	// Monitor, when non-nil, observes per-worker cell lifecycle (e.g. a
	// telemetry.Watchdog spotting stuck scenarios in a long session).
	// Observation-only: it cannot affect results.
	Monitor runner.Monitor
}

// Summary aggregates one fuzz session. All counters are deterministic in
// (MasterSeed, FirstIndex, Runs); Reports appear in scenario-index order.
type Summary struct {
	Schema     string `json:"schema"`
	MasterSeed int64  `json:"master_seed"`
	FirstIndex int64  `json:"first_index"`
	Runs       int    `json:"runs"`
	// Completed counts runs that finished their protocol's promise;
	// Unpromised counts runs carrying no completion promise (naive).
	Completed  int `json:"completed"`
	Unpromised int `json:"unpromised"`
	// EquivalenceChecked counts runs that executed the unpooled twin;
	// ShardChecked counts runs that executed the sharded twin.
	EquivalenceChecked int `json:"equivalence_checked"`
	ShardChecked       int `json:"shard_checked"`
	// Crashes and Messages total the injected crashes and simulated
	// messages across the session.
	Crashes  int64 `json:"crashes"`
	Messages int64 `json:"messages"`
	// ByProtocol counts runs per protocol (JSON marshals keys sorted, so
	// encoded summaries are byte-stable).
	ByProtocol map[string]int `json:"by_protocol"`
	// Skipped counts scenarios cancelled before starting.
	Skipped int `json:"skipped"`
	// Envelopes holds per-oracle envelope-tightness percentiles, keyed by
	// oracle name (OracleMessageEnvelope, OracleTimeEnvelope). A run
	// contributes the ratio actual/bound whenever the envelope applies.
	Envelopes map[string]*EnvelopeStats `json:"envelopes,omitempty"`
	// Reports carries one replayable report per violated scenario.
	Reports []Report `json:"reports,omitempty"`
}

// SummarySchema identifies the Summary JSON layout. v2 added the
// envelope-tightness block; v3 the sharded-twin counter.
const SummarySchema = "repro.fuzz.summary/v3"

// Encode renders the summary as deterministic, indented JSON with a
// trailing newline. Map keys marshal sorted, so equal summaries are equal
// bytes — the property behind cmd/fuzz's reproducibility contract.
func (s *Summary) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// cellOutcome is one scenario's contribution to the summary.
type cellOutcome struct {
	protocol     string
	completed    bool
	unpromised   bool
	twinRan      bool
	shardTwinRan bool
	crashes      int
	messages     int64
	report       *Report

	// Envelope tightness ratios (actual/bound); the ok flags mark whether
	// the corresponding envelope applied to this run.
	msgTight    float64
	msgTightOK  bool
	timeTight   float64
	timeTightOK bool
}

// Fuzz generates and executes opts.Runs scenarios, checks every execution
// against the oracle catalog, shrinks failures, and aggregates a Summary.
// The session is deterministic: equal options (apart from Workers,
// Context and OnRun) produce identical summaries, byte for byte once
// encoded.
func Fuzz(opts Options) (*Summary, error) {
	if opts.Runs < 0 {
		return nil, fmt.Errorf("scenario: Runs = %d", opts.Runs)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var violations atomic.Int64
	onCell := opts.OnRun
	if opts.Progress != nil {
		onCell = func(done, total int) {
			if opts.OnRun != nil {
				opts.OnRun(done, total)
			}
			opts.Progress(done, total, violations.Load())
		}
	}
	outcomes, errs, _ := runner.Map(ctx, opts.Runs,
		runner.Options{Workers: opts.Workers, OnCell: onCell, Monitor: opts.Monitor},
		func(_ context.Context, cell int) (cellOutcome, error) {
			index := opts.FirstIndex + int64(cell)
			out, err := fuzzOne(opts.MasterSeed, index, opts.ShrinkBudget)
			if err == nil && out.report != nil {
				violations.Add(1)
			}
			return out, err
		})

	sum := &Summary{
		Schema:     SummarySchema,
		MasterSeed: opts.MasterSeed,
		FirstIndex: opts.FirstIndex,
		ByProtocol: map[string]int{},
	}
	for i, out := range outcomes {
		if errs[i] != nil {
			if ctx.Err() != nil && errs[i] == ctx.Err() {
				sum.Skipped++
				continue
			}
			return nil, fmt.Errorf("scenario: run %d: %w", opts.FirstIndex+int64(i), errs[i])
		}
		sum.Runs++
		sum.ByProtocol[out.protocol]++
		if out.completed {
			sum.Completed++
		}
		if out.unpromised {
			sum.Unpromised++
		}
		if out.twinRan {
			sum.EquivalenceChecked++
		}
		if out.shardTwinRan {
			sum.ShardChecked++
		}
		sum.Crashes += int64(out.crashes)
		sum.Messages += out.messages
		if out.msgTightOK {
			sum.envelope(OracleMessageEnvelope).observe(out.msgTight)
		}
		if out.timeTightOK {
			sum.envelope(OracleTimeEnvelope).observe(out.timeTight)
		}
		if out.report != nil {
			sum.Reports = append(sum.Reports, *out.report)
		}
	}
	return sum, nil
}

// envelope returns (creating on demand) the stats bucket for one oracle.
func (s *Summary) envelope(oracle string) *EnvelopeStats {
	if s.Envelopes == nil {
		s.Envelopes = map[string]*EnvelopeStats{}
	}
	e := s.Envelopes[oracle]
	if e == nil {
		e = newEnvelopeStats()
		s.Envelopes[oracle] = e
	}
	return e
}

// Merge folds another session's summary into this one: counters add,
// per-protocol counts and envelope histograms merge exactly, reports
// append in order. cmd/fuzz's duration mode chains batches with it; two
// merged half-sessions equal the whole session.
func (s *Summary) Merge(o *Summary) {
	s.Runs += o.Runs
	s.Completed += o.Completed
	s.Unpromised += o.Unpromised
	s.EquivalenceChecked += o.EquivalenceChecked
	s.ShardChecked += o.ShardChecked
	s.Crashes += o.Crashes
	s.Messages += o.Messages
	s.Skipped += o.Skipped
	for k, v := range o.ByProtocol {
		if s.ByProtocol == nil {
			s.ByProtocol = map[string]int{}
		}
		s.ByProtocol[k] += v
	}
	for k, e := range o.Envelopes {
		s.envelope(k).merge(e)
	}
	s.Reports = append(s.Reports, o.Reports...)
}

// fuzzOne generates, executes, checks and (on violation) shrinks one
// scenario. Pure in (master, index, shrinkBudget).
func fuzzOne(master, index int64, shrinkBudget int) (cellOutcome, error) {
	spec := Generate(master, index)
	ex, err := Execute(spec)
	if err != nil {
		return cellOutcome{}, err
	}
	out := cellOutcome{
		protocol:     spec.Protocol,
		completed:    ex.Res.Completed,
		unpromised:   !spec.ExpectComplete,
		twinRan:      ex.TwinRan,
		shardTwinRan: ex.ShardTwinRan,
		crashes:      ex.Res.Crashes,
		messages:     ex.Res.Messages,
	}
	if bound := messageEnvelope(spec); bound > 0 {
		out.msgTight = float64(ex.Res.Messages) / bound
		out.msgTightOK = true
	}
	// Time envelopes quantify completion, so only promised, completed runs
	// contribute (mirroring checkTimeEnvelope's applicability rule).
	if spec.ExpectComplete && ex.Res.Completed {
		if bound := timeEnvelope(spec); bound > 0 {
			out.timeTight = float64(ex.Res.TimeComplexity) / bound
			out.timeTightOK = true
		}
	}
	violations := CheckAll(ex)
	if len(violations) == 0 {
		return out, nil
	}
	minimized, shrinkRuns := Shrink(spec, violations[0].Oracle, shrinkBudget)
	out.report = &Report{
		Schema:     ReportSchema,
		MasterSeed: master,
		Index:      index,
		Label:      spec.Label(),
		Violations: violations,
		Spec:       spec,
		Minimized:  minimized,
		ShrinkRuns: shrinkRuns,
	}
	return out, nil
}

// Protocols returns the sorted protocol names in the generator's draw
// table (documentation and CLI help).
func Protocols() []string {
	names := make([]string, 0, len(genProtocols))
	for _, p := range genProtocols {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
