package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/runner"
)

// Options configures a fuzz session. The zero value runs nothing; set
// Runs. Results are a pure function of (MasterSeed, FirstIndex, Runs) —
// Workers only changes wall-clock time, never output.
type Options struct {
	// Runs is the number of scenarios to generate and execute.
	Runs int
	// MasterSeed keys the scenario stream (see Generate).
	MasterSeed int64
	// FirstIndex offsets into the stream; a session over [0, k) and one
	// over [k, 2k) together equal one session over [0, 2k).
	FirstIndex int64
	// Workers caps concurrency (0 = GOMAXPROCS, 1 = serial). Parallel runs
	// are bit-identical to serial by the runner's determinism contract.
	Workers int
	// ShrinkBudget bounds candidate executions per failing scenario
	// (0 = DefaultShrinkBudget).
	ShrinkBudget int
	// Context cancels the session (nil = background). Scenarios not yet
	// started when it fires are skipped and reported in Summary.Skipped.
	Context context.Context
	// OnRun, when non-nil, receives monotone progress (done, total).
	OnRun func(done, total int)
	// Progress, when non-nil, receives monotone progress plus the running
	// violation count — the hook behind cmd/fuzz's periodic progress
	// lines. Calls are serialized; violations counts scenarios whose
	// oracle check failed among the done ones.
	Progress func(done, total int, violations int64)
	// Monitor, when non-nil, observes per-worker cell lifecycle (e.g. a
	// telemetry.Watchdog spotting stuck scenarios in a long session).
	// Observation-only: it cannot affect results.
	Monitor runner.Monitor
	// Corpus, when non-nil, turns the session coverage-guided: MutateFrac
	// of the budget mutates corpus entries (snapshotted at session start)
	// instead of sampling fresh, and runs judged interesting — a novel
	// coverage feature tuple, or an envelope-tightness ratio in the top
	// decile of everything observed — are admitted back into the corpus.
	// The session, including the corpus it leaves behind, is a pure
	// function of (MasterSeed, FirstIndex, Runs, input corpus).
	Corpus *Corpus
	// MutateFrac is the fraction of the budget spent mutating corpus
	// entries (ignored without Corpus; the rest samples fresh).
	MutateFrac float64
}

// Summary aggregates one fuzz session. All counters are deterministic in
// (MasterSeed, FirstIndex, Runs); Reports appear in scenario-index order.
type Summary struct {
	Schema     string `json:"schema"`
	MasterSeed int64  `json:"master_seed"`
	FirstIndex int64  `json:"first_index"`
	Runs       int    `json:"runs"`
	// Completed counts runs that finished their protocol's promise;
	// Unpromised counts runs carrying no completion promise (naive).
	Completed  int `json:"completed"`
	Unpromised int `json:"unpromised"`
	// EquivalenceChecked counts runs that executed the unpooled twin;
	// ShardChecked counts runs that executed the sharded twin.
	EquivalenceChecked int `json:"equivalence_checked"`
	ShardChecked       int `json:"shard_checked"`
	// Crashes and Messages total the injected crashes and simulated
	// messages across the session.
	Crashes  int64 `json:"crashes"`
	Messages int64 `json:"messages"`
	// ByProtocol counts runs per protocol (JSON marshals keys sorted, so
	// encoded summaries are byte-stable).
	ByProtocol map[string]int `json:"by_protocol"`
	// Skipped counts scenarios cancelled before starting.
	Skipped int `json:"skipped"`
	// Envelopes holds per-oracle envelope-tightness percentiles, keyed by
	// oracle name (OracleMessageEnvelope, OracleTimeEnvelope). A run
	// contributes the ratio actual/bound whenever the envelope applies.
	Envelopes map[string]*EnvelopeStats `json:"envelopes,omitempty"`
	// Corpus aggregates the coverage-guided campaign's steering counters
	// (nil for blind sessions).
	Corpus *CorpusStats `json:"corpus,omitempty"`
	// Reports carries one replayable report per violated scenario.
	Reports []Report `json:"reports,omitempty"`
}

// CorpusStats summarizes the corpus side of a coverage-guided session.
// Hit rate is Admitted/MutatedRuns, novelty rate NovelFeatures/(Fresh+
// Mutated) — cmd/fuzz derives both for the bench artifact.
type CorpusStats struct {
	// Size is the corpus size after the session; Seeded its size at start.
	Size   int `json:"size"`
	Seeded int `json:"seeded"`
	// Replayed counts seed entries re-executed through the oracle catalog.
	Replayed int `json:"replayed"`
	// FreshRuns and MutatedRuns split the session budget by origin.
	FreshRuns   int `json:"fresh_runs"`
	MutatedRuns int `json:"mutated_runs"`
	// NovelFeatures counts runs whose coverage tuple was new; NearMisses
	// counts runs admitted on an envelope top-decile or record ratio.
	NovelFeatures int `json:"novel_features"`
	NearMisses    int `json:"near_misses"`
	// Admitted and Evicted count corpus turnover during the session.
	Admitted int `json:"admitted"`
	Evicted  int `json:"evicted"`
	// MaxTightness is the per-oracle maximum envelope ratio ever seen —
	// across the surviving corpus and this session's runs.
	MaxTightness map[string]float64 `json:"max_tightness,omitempty"`
}

// merge folds another session's corpus stats: counters add, Size (and
// MaxTightness) track the latest state, Seeded keeps the first.
func (s *CorpusStats) merge(o *CorpusStats) {
	s.Size = o.Size
	s.Replayed += o.Replayed
	s.FreshRuns += o.FreshRuns
	s.MutatedRuns += o.MutatedRuns
	s.NovelFeatures += o.NovelFeatures
	s.NearMisses += o.NearMisses
	s.Admitted += o.Admitted
	s.Evicted += o.Evicted
	for k, v := range o.MaxTightness {
		if s.MaxTightness == nil {
			s.MaxTightness = map[string]float64{}
		}
		if v > s.MaxTightness[k] {
			s.MaxTightness[k] = v
		}
	}
}

// SummarySchema identifies the Summary JSON layout. v2 added the
// envelope-tightness block; v3 the sharded-twin counter; v4 the
// coverage-guided corpus block.
const SummarySchema = "repro.fuzz.summary/v4"

// Encode renders the summary as deterministic, indented JSON with a
// trailing newline. Map keys marshal sorted, so equal summaries are equal
// bytes — the property behind cmd/fuzz's reproducibility contract.
func (s *Summary) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// cellOutcome is one scenario's contribution to the summary.
type cellOutcome struct {
	protocol     string
	completed    bool
	unpromised   bool
	twinRan      bool
	shardTwinRan bool
	crashes      int
	messages     int64
	report       *Report

	// Envelope tightness ratios (actual/bound); the ok flags mark whether
	// the corresponding envelope applied to this run.
	msgTight    float64
	msgTightOK  bool
	timeTight   float64
	timeTightOK bool

	// Coverage-guided bookkeeping: the spec that ran, its coverage tuple,
	// and — for mutants — the digest of the corpus entry it came from.
	spec    Spec
	feature Feature
	parent  string
	mutated bool
}

// tightness collects the outcome's envelope ratios keyed by oracle.
func (out *cellOutcome) tightness() map[string]float64 {
	t := map[string]float64{}
	if out.msgTightOK {
		t[OracleMessageEnvelope] = out.msgTight
	}
	if out.timeTightOK {
		t[OracleTimeEnvelope] = out.timeTight
	}
	return t
}

// Fuzz generates and executes opts.Runs scenarios, checks every execution
// against the oracle catalog, shrinks failures, and aggregates a Summary.
// The session is deterministic: equal options (apart from Workers,
// Context and OnRun) produce identical summaries, byte for byte once
// encoded.
func Fuzz(opts Options) (*Summary, error) {
	if opts.Runs < 0 {
		return nil, fmt.Errorf("scenario: Runs = %d", opts.Runs)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var violations atomic.Int64
	onCell := opts.OnRun
	if opts.Progress != nil {
		onCell = func(done, total int) {
			if opts.OnRun != nil {
				opts.OnRun(done, total)
			}
			opts.Progress(done, total, violations.Load())
		}
	}
	// Coverage steering: snapshot the corpus before fanning out — every
	// cell's spec is then a pure function of (MasterSeed, index, snapshot)
	// regardless of worker interleaving; admissions fold in afterwards, in
	// index order.
	var snapshot []*CorpusEntry
	if opts.Corpus != nil {
		snapshot = opts.Corpus.Entries()
	}
	outcomes, errs, _ := runner.Map(ctx, opts.Runs,
		runner.Options{Workers: opts.Workers, OnCell: onCell, Monitor: opts.Monitor},
		func(_ context.Context, cell int) (cellOutcome, error) {
			index := opts.FirstIndex + int64(cell)
			spec, parent := steerSpec(opts.MasterSeed, index, opts.MutateFrac, snapshot)
			out, err := fuzzSpec(spec, opts.MasterSeed, index, opts.ShrinkBudget)
			out.parent, out.mutated = parent, parent != ""
			if err == nil && out.report != nil {
				violations.Add(1)
			}
			return out, err
		})

	sum := &Summary{
		Schema:     SummarySchema,
		MasterSeed: opts.MasterSeed,
		FirstIndex: opts.FirstIndex,
		ByProtocol: map[string]int{},
	}
	var cov *coverage
	if opts.Corpus != nil {
		sum.Corpus = &CorpusStats{Seeded: len(snapshot)}
		cov = newCoverage()
		for _, e := range snapshot {
			cov.seed(e)
		}
	}
	for i, out := range outcomes {
		if errs[i] != nil {
			if ctx.Err() != nil && errs[i] == ctx.Err() {
				sum.Skipped++
				continue
			}
			return nil, fmt.Errorf("scenario: run %d: %w", opts.FirstIndex+int64(i), errs[i])
		}
		foldOutcome(sum, out)
		if cov == nil {
			continue
		}
		if out.mutated {
			sum.Corpus.MutatedRuns++
		} else {
			sum.Corpus.FreshRuns++
		}
		tight := out.tightness()
		why, novel := cov.judge(out.feature, tight)
		if novel {
			sum.Corpus.NovelFeatures++
		}
		if why != "" && !novel {
			sum.Corpus.NearMisses++
		}
		// Violating runs already leave as shrunk reports; the corpus is for
		// passing runs at the coverage frontier.
		if why != "" && out.report == nil {
			added, evicted := opts.Corpus.Admit(out.spec, out.feature, tight, why, out.parent)
			if added {
				sum.Corpus.Admitted++
			}
			sum.Corpus.Evicted += evicted
		}
	}
	if cov != nil {
		sum.Corpus.Size = opts.Corpus.Len()
		sum.Corpus.MaxTightness = cov.maxTightness()
	}
	return sum, nil
}

// steerSpec picks the index-th scenario of a steered session: a mutation
// of a snapshot entry for MutateFrac of the budget, a fresh Generate draw
// otherwise. Pure in its arguments. The second result is the parent
// entry's digest ("" for fresh draws).
func steerSpec(master, index int64, frac float64, snapshot []*CorpusEntry) (Spec, string) {
	if len(snapshot) == 0 || frac <= 0 {
		return Generate(master, index), ""
	}
	r := rng.New(runner.DeriveSeed(master, "steer", index))
	if r.Float64() >= frac {
		return Generate(master, index), ""
	}
	e := snapshot[r.Intn(len(snapshot))]
	m := Mutate(e.Spec, r)
	if m.Validate() != nil {
		// Operators preserve validity by construction; this is a belt for
		// hand-edited corpus entries near the domain edges.
		return Generate(master, index), ""
	}
	return m, e.Digest
}

// foldOutcome adds one finished run's counters to the summary.
func foldOutcome(sum *Summary, out cellOutcome) {
	sum.Runs++
	sum.ByProtocol[out.protocol]++
	if out.completed {
		sum.Completed++
	}
	if out.unpromised {
		sum.Unpromised++
	}
	if out.twinRan {
		sum.EquivalenceChecked++
	}
	if out.shardTwinRan {
		sum.ShardChecked++
	}
	sum.Crashes += int64(out.crashes)
	sum.Messages += out.messages
	if out.msgTightOK {
		sum.envelope(OracleMessageEnvelope).observe(out.msgTight)
	}
	if out.timeTightOK {
		sum.envelope(OracleTimeEnvelope).observe(out.timeTight)
	}
	if out.report != nil {
		sum.Reports = append(sum.Reports, *out.report)
	}
}

// envelope returns (creating on demand) the stats bucket for one oracle.
func (s *Summary) envelope(oracle string) *EnvelopeStats {
	if s.Envelopes == nil {
		s.Envelopes = map[string]*EnvelopeStats{}
	}
	e := s.Envelopes[oracle]
	if e == nil {
		e = newEnvelopeStats()
		s.Envelopes[oracle] = e
	}
	return e
}

// Merge folds another session's summary into this one: counters add,
// per-protocol counts and envelope histograms merge exactly, reports
// append in order. cmd/fuzz's duration mode chains batches with it; two
// merged half-sessions equal the whole session.
func (s *Summary) Merge(o *Summary) {
	s.Runs += o.Runs
	s.Completed += o.Completed
	s.Unpromised += o.Unpromised
	s.EquivalenceChecked += o.EquivalenceChecked
	s.ShardChecked += o.ShardChecked
	s.Crashes += o.Crashes
	s.Messages += o.Messages
	s.Skipped += o.Skipped
	for k, v := range o.ByProtocol {
		if s.ByProtocol == nil {
			s.ByProtocol = map[string]int{}
		}
		s.ByProtocol[k] += v
	}
	for k, e := range o.Envelopes {
		s.envelope(k).merge(e)
	}
	if o.Corpus != nil {
		if s.Corpus == nil {
			c := *o.Corpus
			s.Corpus = &c
		} else {
			s.Corpus.merge(o.Corpus)
		}
	}
	s.Reports = append(s.Reports, o.Reports...)
}

// fuzzSpec executes, checks and (on violation) shrinks one scenario. Pure
// in (spec, master, index, shrinkBudget); master and index only label the
// report of a violating run.
func fuzzSpec(spec Spec, master, index int64, shrinkBudget int) (cellOutcome, error) {
	ex, err := Execute(spec)
	if err != nil {
		return cellOutcome{}, err
	}
	out := cellOutcome{
		protocol:     spec.Protocol,
		completed:    ex.Res.Completed,
		unpromised:   !spec.ExpectComplete,
		twinRan:      ex.TwinRan,
		shardTwinRan: ex.ShardTwinRan,
		crashes:      ex.Res.Crashes,
		messages:     ex.Res.Messages,
		spec:         spec,
		feature:      featureOf(ex),
	}
	if bound := messageEnvelope(spec); bound > 0 {
		out.msgTight = float64(ex.Res.Messages) / bound
		out.msgTightOK = true
	}
	// Time envelopes quantify completion, so only promised, completed runs
	// contribute (mirroring checkTimeEnvelope's applicability rule).
	if spec.ExpectComplete && ex.Res.Completed {
		if bound := timeEnvelope(spec); bound > 0 {
			out.timeTight = float64(ex.Res.TimeComplexity) / bound
			out.timeTightOK = true
		}
	}
	violations := CheckAll(ex)
	if len(violations) == 0 {
		return out, nil
	}
	minimized, shrinkRuns := Shrink(spec, violations[0].Oracle, shrinkBudget)
	out.report = &Report{
		Schema:     ReportSchema,
		MasterSeed: master,
		Index:      index,
		Label:      spec.Label(),
		Violations: violations,
		Spec:       spec,
		Minimized:  minimized,
		ShrinkRuns: shrinkRuns,
	}
	return out, nil
}

// Protocols returns the sorted protocol names in the generator's draw
// table (documentation and CLI help).
func Protocols() []string {
	names := make([]string, 0, len(genProtocols))
	for _, p := range genProtocols {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
