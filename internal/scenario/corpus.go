package scenario

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/runner"
)

// CorpusSchema identifies the on-disk corpus-entry layout. A corpus is a
// directory of entry files, one per interesting scenario, content-addressed
// by the spec digest — the filename IS the identity, so merging two corpus
// directories is file-level union and actions/cache restores compose.
const CorpusSchema = "repro.fuzz.corpus/v1"

// DefaultCorpusCap bounds the corpus; past it the least-recently-productive
// entry is evicted. Sized so a whole corpus replays in a few seconds of a
// PR smoke run while still covering hundreds of qualitative regimes.
const DefaultCorpusCap = 256

// CorpusEntry is one persisted interesting scenario plus the coverage
// bookkeeping that steers and bounds the campaign.
type CorpusEntry struct {
	Schema string `json:"schema"`
	// Digest is the content address: the first 16 hex digits of the
	// SHA-256 of the spec's canonical JSON encoding. Load re-derives it
	// and skips any file whose name or field disagrees — a corrupt or
	// hand-edited entry can't poison the campaign.
	Digest string `json:"digest"`
	// Spec is the scenario itself, replayable on any machine.
	Spec Spec `json:"spec"`
	// Feature is the coverage tuple the entry's execution produced.
	Feature Feature `json:"feature"`
	// Tightness records the entry's envelope ratios (actual/bound) per
	// oracle — the near-miss margins that made it interesting, and the
	// seed observations for the next session's decile predicate.
	Tightness map[string]float64 `json:"tightness,omitempty"`
	// Why is the interestingness verdict that admitted the entry.
	Why string `json:"why,omitempty"`
	// AddedGen and ProductiveGen order admissions: the corpus generation
	// at which the entry was admitted, and the latest generation at which
	// it (or a mutant derived from it) proved interesting. Eviction takes
	// the least-recently-productive entry first.
	AddedGen      int64 `json:"added_gen"`
	ProductiveGen int64 `json:"productive_gen"`
	// Productive counts admitted mutants derived from this entry.
	Productive int64 `json:"productive"`
}

// encode renders the entry as deterministic indented JSON with a trailing
// newline — save→load→save is byte-identical.
func (e *CorpusEntry) encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SpecDigest computes a spec's content address: the first 16 hex digits of
// the SHA-256 of its canonical (compact, field-ordered) JSON encoding.
func SpecDigest(s Spec) string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain value type; Marshal cannot fail on it.
		panic(fmt.Sprintf("scenario: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Corpus is the in-memory working set of a coverage-guided campaign:
// deduplicated by spec digest, bounded by cap with deterministic
// least-recently-productive eviction. It is not safe for concurrent use;
// Fuzz snapshots it before fanning out and admits sequentially in
// scenario-index order, which is what keeps campaigns byte-reproducible.
type Corpus struct {
	cap     int
	gen     int64
	entries map[string]*CorpusEntry

	admitted, evicted int
}

// NewCorpus returns an empty corpus (cap <= 0 selects DefaultCorpusCap).
func NewCorpus(cap int) *Corpus {
	if cap <= 0 {
		cap = DefaultCorpusCap
	}
	return &Corpus{cap: cap, entries: map[string]*CorpusEntry{}}
}

// Len reports the number of entries.
func (c *Corpus) Len() int { return len(c.entries) }

// Entries returns the entries sorted by digest — the canonical order every
// deterministic walk (snapshot, save, replay) uses.
func (c *Corpus) Entries() []*CorpusEntry {
	out := make([]*CorpusEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Admit adds one interesting scenario (deduplicated by digest), credits the
// corpus entry it was mutated from (parent digest, "" for fresh draws), and
// evicts past cap. Returns whether a new entry was added and how many were
// evicted. Callers admit in scenario-index order; given that, the resulting
// corpus — including every generation counter — is deterministic.
func (c *Corpus) Admit(spec Spec, f Feature, tight map[string]float64, why, parent string) (added bool, evicted int) {
	gen := c.gen
	c.gen++
	if p := c.entries[parent]; p != nil {
		p.Productive++
		p.ProductiveGen = gen
	}
	d := SpecDigest(spec)
	if e := c.entries[d]; e != nil {
		// Already in the corpus: the scenario re-proved itself interesting,
		// so refresh its productivity instead of duplicating it.
		e.ProductiveGen = gen
		return false, 0
	}
	tcopy := make(map[string]float64, len(tight))
	for k, v := range tight {
		tcopy[k] = v
	}
	c.entries[d] = &CorpusEntry{
		Schema:        CorpusSchema,
		Digest:        d,
		Spec:          spec,
		Feature:       f,
		Tightness:     tcopy,
		Why:           why,
		AddedGen:      gen,
		ProductiveGen: gen,
	}
	c.admitted++
	for len(c.entries) > c.cap {
		c.evict()
		evicted++
	}
	return true, evicted
}

// evict removes the least-recently-productive entry, breaking ties by
// admission generation and then digest — a total order, so eviction is
// deterministic.
func (c *Corpus) evict() {
	var victim *CorpusEntry
	for _, e := range c.entries {
		if victim == nil || olderThan(e, victim) {
			victim = e
		}
	}
	if victim != nil {
		delete(c.entries, victim.Digest)
		c.evicted++
	}
}

func olderThan(a, b *CorpusEntry) bool {
	if a.ProductiveGen != b.ProductiveGen {
		return a.ProductiveGen < b.ProductiveGen
	}
	if a.AddedGen != b.AddedGen {
		return a.AddedGen < b.AddedGen
	}
	return a.Digest < b.Digest
}

// LoadCorpus reads a corpus directory. Entries that fail to parse,
// carry the wrong schema, fail spec validation, or whose recorded digest
// disagrees with the recomputed content address are skipped via warn
// (nil = silently) — one corrupt file must never abort a campaign. A
// missing directory loads as an empty corpus.
func LoadCorpus(dir string, cap int, warn func(path string, err error)) (*Corpus, error) {
	c := NewCorpus(cap)
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("scenario: corpus glob: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		e, err := loadEntry(path)
		if err != nil {
			if warn != nil {
				warn(path, err)
			}
			continue
		}
		c.entries[e.Digest] = e
		if e.AddedGen >= c.gen {
			c.gen = e.AddedGen + 1
		}
		if e.ProductiveGen >= c.gen {
			c.gen = e.ProductiveGen + 1
		}
	}
	for len(c.entries) > c.cap {
		c.evict()
	}
	// Loaded entries are inventory, not session activity.
	c.admitted, c.evicted = 0, 0
	return c, nil
}

func loadEntry(path string) (*CorpusEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e CorpusEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("bad corpus entry: %w", err)
	}
	if e.Schema != CorpusSchema {
		return nil, fmt.Errorf("corpus entry schema %q, want %q", e.Schema, CorpusSchema)
	}
	if err := e.Spec.Validate(); err != nil {
		return nil, err
	}
	if d := SpecDigest(e.Spec); d != e.Digest {
		return nil, fmt.Errorf("corpus entry digest %q does not match spec content %q", e.Digest, d)
	}
	if want := e.Digest + ".json"; filepath.Base(path) != want {
		return nil, fmt.Errorf("corpus entry file %q should be named %q", filepath.Base(path), want)
	}
	return &e, nil
}

// Save writes the corpus back to dir (created if needed): one file per
// entry named by its digest, and any stale entry files — evicted since
// load — removed. Equal corpora save to byte-identical directories.
func (c *Corpus) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	live := make(map[string]bool, len(c.entries))
	for _, e := range c.Entries() {
		data, err := e.encode()
		if err != nil {
			return err
		}
		name := e.Digest + ".json"
		live[name] = true
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	stale, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	for _, path := range stale {
		if !live[filepath.Base(path)] {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// MaxTightness reports the per-oracle maximum envelope ratio recorded
// across the current entries.
func (c *Corpus) MaxTightness() map[string]float64 {
	out := map[string]float64{}
	for _, e := range c.entries {
		for oracle, ratio := range e.Tightness {
			if ratio > out[oracle] {
				out[oracle] = ratio
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ReplayCorpus re-executes every corpus entry through the full oracle
// catalog — the PR-smoke regression pass that keeps previously interesting
// scenarios (the EARS/SEARS livelock repro among them) checked on every
// change. Violations shrink and report exactly like fuzzed scenarios, with
// the entry's position in digest order standing in for the stream index.
// The summary is deterministic in the corpus contents; Workers, Context
// and the progress hooks behave as in Fuzz.
func ReplayCorpus(c *Corpus, opts Options) (*Summary, error) {
	entries := c.Entries()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	outcomes, errs, _ := runner.Map(ctx, len(entries),
		runner.Options{Workers: opts.Workers, OnCell: opts.OnRun, Monitor: opts.Monitor},
		func(_ context.Context, cell int) (cellOutcome, error) {
			return fuzzSpec(entries[cell].Spec, 0, int64(cell), opts.ShrinkBudget)
		})
	sum := &Summary{
		Schema:     SummarySchema,
		MasterSeed: opts.MasterSeed,
		FirstIndex: opts.FirstIndex,
		ByProtocol: map[string]int{},
		Corpus:     &CorpusStats{Size: c.Len(), Seeded: c.Len(), Replayed: 0},
	}
	for i, out := range outcomes {
		if errs[i] != nil {
			if ctx.Err() != nil && errs[i] == ctx.Err() {
				sum.Skipped++
				continue
			}
			return nil, fmt.Errorf("scenario: corpus replay %s: %w", entries[i].Digest, errs[i])
		}
		sum.Corpus.Replayed++
		foldOutcome(sum, out)
	}
	sum.Corpus.MaxTightness = c.MaxTightness()
	return sum, nil
}
