// Package scenario is the deterministic simulation-fuzzing subsystem: a
// FoundationDB-style harness that explores the (protocol × topology ×
// adversary × n/f/d/δ) space the paper's theorems quantify over.
//
// From one master seed the generator derives an unbounded stream of
// scenario specs — random protocols and system parameters, random graphs
// from internal/topology, and random oblivious adversaries composed from
// the policy kinds in internal/adversary (crash plans and storms, pairwise
// and partition delays, skewed and rotating schedules). Every spec is a
// plain serializable value: executing it is a pure function of its fields,
// so a failure found on any machine replays exactly on any other.
//
// Executions run through the pooled sim kernel, in parallel via
// internal/runner (bit-identical to serial), and every run is checked
// against the invariant-oracle catalog in oracles.go. On a violation a
// shrinker (shrink.go) minimizes the spec while preserving the failing
// oracle and the harness emits a ScenarioReport (report.go) with the seed,
// the original spec and the minimized repro; cmd/fuzz replays reports via
// -repro.
package scenario

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/syncgossip"
	"repro/internal/topology"
)

// Schedule kinds accepted by ScheduleSpec.Kind.
const (
	SchedEvery       = "every"        // every process every step
	SchedStride      = "stride"       // rotating random phases, redrawn per period
	SchedFixedStride = "fixed-stride" // deterministic round-robin partition
	SchedSkewed      = "skewed"       // pinned slow subset at the δ limit
)

// Delay kinds accepted by DelaySpec.Kind.
const (
	DelayFixed     = "fixed"     // every message takes exactly Value steps
	DelayUniform   = "uniform"   // uniform per-send in [1, d]
	DelayPairwise  = "pairwise"  // fixed per-(from,to) pair in [1, d]
	DelayPartition = "partition" // two halves, cross links at d until HealAt
)

// ScheduleSpec describes an oblivious schedule declaratively.
type ScheduleSpec struct {
	// Kind is one of the Sched* constants.
	Kind string `json:"kind"`
	// SlowFrac is the skewed schedule's slow fraction (ignored otherwise).
	SlowFrac float64 `json:"slow_frac,omitempty"`
	// Seed feeds the schedule's pre-committed stream (stride phase redraws,
	// skewed slow-set selection).
	Seed int64 `json:"seed,omitempty"`
}

// DelaySpec describes an oblivious delay policy declaratively.
type DelaySpec struct {
	// Kind is one of the Delay* constants.
	Kind string `json:"kind"`
	// Value is the fixed delay for DelayFixed (clamped to [1, D]).
	Value int64 `json:"value,omitempty"`
	// HealAt is the partition heal time for DelayPartition.
	HealAt int64 `json:"heal_at,omitempty"`
	// Seed feeds the pre-committed stream of the uniform and pairwise kinds.
	Seed int64 `json:"seed,omitempty"`
}

// CrashEvent is one planned crash: process Proc crashes at time At. Plans
// are explicit (time, process) lists rather than generator seeds so the
// shrinker can delete individual events while preserving a failure, and so
// a report reader sees the exact crash pattern at a glance.
type CrashEvent struct {
	At   int64 `json:"at"`
	Proc int   `json:"proc"`
}

// Spec is one fully materialized scenario: everything needed to reproduce
// an execution bit for bit. The zero value is not runnable; specs come
// from Generate or from a deserialized ScenarioReport.
type Spec struct {
	// Protocol is a gossip protocol name (core or syncgossip registry).
	Protocol string `json:"protocol"`
	// N, F, D, Delta are the paper's system parameters.
	N     int   `json:"n"`
	F     int   `json:"f"`
	D     int64 `json:"d"`
	Delta int64 `json:"delta"`
	// Seed drives the protocol nodes' random streams.
	Seed int64 `json:"seed"`
	// MaxSteps is the horizon: the step budget before the run is declared
	// hung. Zero selects the kernel's generous default.
	MaxSteps int64 `json:"max_steps,omitempty"`

	// Topology is the graph family ("" = the paper's complete graph) with
	// its parameters and generation seed, as in topology.Spec.
	Topology       string  `json:"topology,omitempty"`
	TopologyParam  float64 `json:"topology_param,omitempty"`
	TopologyParam2 float64 `json:"topology_param2,omitempty"`
	TopologySeed   int64   `json:"topology_seed,omitempty"`

	// Schedule, Delay and Crashes are the three oblivious policy kinds the
	// adversary composes (adversary.Compose).
	Schedule ScheduleSpec `json:"schedule"`
	Delay    DelaySpec    `json:"delay"`
	// Crashes is the pre-committed crash plan. It may list more events
	// than F: the kernel must enforce the budget, and the crash-budget
	// oracle verifies that it did.
	Crashes []CrashEvent `json:"crashes,omitempty"`

	// ExpectComplete marks scenarios whose protocol guarantees completion
	// on this configuration; the completion oracle only fires for them.
	// (naive is the paper's ablation that legitimately fails; sparse
	// topologies with crashes can disconnect.)
	ExpectComplete bool `json:"expect_complete"`
	// Majority marks majority-gossip protocols (tears): the completion
	// oracle checks the ⌊n/2⌋+1 threshold instead of full gathering.
	Majority bool `json:"majority,omitempty"`
	// CheckEquivalence re-runs the scenario with pooling disabled and
	// requires an identical event digest (pooled ≡ unpooled), sampled on a
	// subset of runs because it doubles the cost.
	CheckEquivalence bool `json:"check_equivalence,omitempty"`
	// Shards, when non-zero, re-runs the scenario through the sharded
	// superstep kernel with this shard count and requires an identical
	// event digest (sharded ≡ serial). The primary run always uses the
	// serial kernel, so golden digests and every other oracle are
	// unaffected. ShardsAuto resolves to the machine's CPU count at
	// execution; the digest contract makes that machine dependence
	// harmless — any shard count must reproduce the same stream.
	Shards int `json:"shards,omitempty"`
}

// ShardsAuto is the Spec.Shards sentinel for "one shard per CPU",
// resolved at execution time.
const ShardsAuto = -1

// Validate checks that the spec describes a runnable scenario.
func (s Spec) Validate() error {
	if _, err := protoByName(s.Protocol); err != nil {
		return err
	}
	switch {
	case s.N < 1:
		return fmt.Errorf("scenario: N = %d, need N >= 1", s.N)
	case s.F < 0 || s.F >= s.N:
		return fmt.Errorf("scenario: F = %d, need 0 <= F < N = %d", s.F, s.N)
	case s.D < 1 || s.Delta < 1:
		return fmt.Errorf("scenario: d = %d, δ = %d, need both >= 1", s.D, s.Delta)
	case s.MaxSteps < 0:
		return fmt.Errorf("scenario: MaxSteps = %d, must be >= 0", s.MaxSteps)
	case s.Shards < ShardsAuto:
		return fmt.Errorf("scenario: Shards = %d, must be >= 0 or ShardsAuto", s.Shards)
	}
	switch s.Schedule.Kind {
	case SchedEvery, SchedStride, SchedFixedStride, SchedSkewed:
	default:
		return fmt.Errorf("scenario: unknown schedule kind %q", s.Schedule.Kind)
	}
	switch s.Delay.Kind {
	case DelayFixed, DelayUniform, DelayPairwise, DelayPartition:
	default:
		return fmt.Errorf("scenario: unknown delay kind %q", s.Delay.Kind)
	}
	for _, c := range s.Crashes {
		if c.Proc < 0 || c.Proc >= s.N {
			return fmt.Errorf("scenario: crash event for out-of-range process %d", c.Proc)
		}
		if c.At < 0 {
			return fmt.Errorf("scenario: crash event at negative time %d", c.At)
		}
	}
	if s.Topology != "" {
		if _, err := s.graph(); err != nil {
			return err
		}
	}
	return nil
}

// protoByName resolves a protocol from the core or syncgossip registries.
func protoByName(name string) (core.Protocol, error) {
	if p, err := core.ByName(name); err == nil {
		return p, nil
	}
	if p, err := syncgossip.ByName(name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("scenario: unknown protocol %q", name)
}

// graph builds the spec's topology (nil for the complete graph, preserving
// the paper's exact sampling semantics).
func (s Spec) graph() (topology.Graph, error) {
	if s.Topology == "" || s.Topology == topology.FamilyComplete {
		return nil, nil
	}
	return topology.Build(topology.Spec{
		Family: s.Topology, N: s.N,
		Param: s.TopologyParam, Param2: s.TopologyParam2,
		Seed: s.TopologySeed,
	})
}

// schedule builds the spec's schedule policy.
func (s Spec) schedule() adversary.Schedule {
	r := rng.New(s.Schedule.Seed)
	switch s.Schedule.Kind {
	case SchedStride:
		return adversary.NewStride(s.N, sim.Time(s.Delta), r)
	case SchedFixedStride:
		return adversary.NewFixedStride(s.N, sim.Time(s.Delta))
	case SchedSkewed:
		return adversary.NewSkewedStride(s.N, sim.Time(s.Delta), s.Schedule.SlowFrac, r)
	default: // SchedEvery
		return adversary.EveryStep{}
	}
}

// delay builds the spec's delay policy.
func (s Spec) delay() adversary.DelayPolicy {
	r := rng.New(s.Delay.Seed)
	switch s.Delay.Kind {
	case DelayUniform:
		return adversary.NewUniformDelay(sim.Time(s.D), r)
	case DelayPairwise:
		return adversary.NewPairwiseDelay(s.N, sim.Time(s.D), r)
	case DelayPartition:
		return adversary.NewPartitionDelay(s.N, sim.Time(s.D), sim.Time(s.Delay.HealAt))
	default: // DelayFixed
		v := s.Delay.Value
		if v < 1 {
			v = 1
		}
		if v > s.D {
			v = s.D
		}
		return adversary.FixedDelay(v)
	}
}

// crashes builds the spec's crash policy from the explicit plan.
func (s Spec) crashes() adversary.CrashPolicy {
	if len(s.Crashes) == 0 {
		return adversary.NoCrashes{}
	}
	times := make([]sim.Time, len(s.Crashes))
	procs := make([]sim.ProcID, len(s.Crashes))
	for i, c := range s.Crashes {
		times[i] = sim.Time(c.At)
		procs[i] = sim.ProcID(c.Proc)
	}
	return adversary.NewCrashPlan(times, procs)
}

// adversary composes the three policies into the run's adversary.
func (s Spec) adversary() *adversary.Composed {
	return adversary.Compose(s.schedule(), s.delay(), s.crashes())
}

// maxGap returns the step-gap bound the spec's schedule is allowed to use:
// δ for strictly periodic schedules, 2δ−1 for stride (phase redraw lets
// consecutive steps drift a full period apart).
func (s Spec) maxGap() sim.Time {
	if s.Schedule.Kind == SchedStride {
		return 2*sim.Time(s.Delta) - 1
	}
	return sim.Time(s.Delta)
}

// Label returns a compact human-readable summary of the scenario, used in
// progress output and reports.
func (s Spec) Label() string {
	topo := s.Topology
	if topo == "" {
		topo = topology.FamilyComplete
	}
	label := fmt.Sprintf("%s n=%d f=%d d=%d δ=%d %s/%s/%d-crashes topo=%s seed=%d",
		s.Protocol, s.N, s.F, s.D, s.Delta,
		s.Schedule.Kind, s.Delay.Kind, len(s.Crashes), topo, s.Seed)
	switch {
	case s.Shards == ShardsAuto:
		label += " shards=auto"
	case s.Shards != 0:
		label += fmt.Sprintf(" shards=%d", s.Shards)
	}
	return label
}
