package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/runner"
)

// loadSeedCorpus loads the committed mini-corpus, failing the test on any
// skipped entry.
func loadSeedCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := LoadCorpus(corpusSeedDir, 0, func(path string, err error) {
		t.Errorf("seed corpus entry %s: %v", path, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("seed corpus is empty")
	}
	return c
}

// readDir snapshots a directory's file names and contents.
func readDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestCorpusRoundTrip: save→load→save is byte-identical, file for file.
func TestCorpusRoundTrip(t *testing.T) {
	c := loadSeedCorpus(t)
	dir1 := t.TempDir()
	if err := c.Save(dir1); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCorpus(dir1, 0, func(path string, err error) {
		t.Errorf("round-trip load %s: %v", path, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := c2.Save(dir2); err != nil {
		t.Fatal(err)
	}
	a, b := readDir(t, dir1), readDir(t, dir2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("save→load→save drifted: %d files then %d files", len(a), len(b))
	}
	// And the save reproduces the committed corpus exactly.
	if committed := readDir(t, corpusSeedDir); !reflect.DeepEqual(committed, a) {
		t.Fatal("saving the loaded seed corpus does not reproduce the committed bytes")
	}
}

// TestCorpusCorruptEntry: garbage files, digest mismatches and misnamed
// entries are skipped with a warning — never an abort — and everything
// else loads.
func TestCorpusCorruptEntry(t *testing.T) {
	c := loadSeedCorpus(t)
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Truncated JSON.
	os.WriteFile(filepath.Join(dir, "0000000000000000.json"), []byte("{"), 0o644)
	// Valid entry bytes under the wrong (non-digest) name.
	entries := c.Entries()
	good, err := entries[0].encode()
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "stray.json"), good, 0o644)
	// Recorded digest disagreeing with spec content.
	tampered := strings.Replace(string(good), entries[0].Digest, "ffffffffffffffff", 1)
	os.WriteFile(filepath.Join(dir, "ffffffffffffffff.json"), []byte(tampered), 0o644)

	var warned []string
	c2, err := LoadCorpus(dir, 0, func(path string, err error) {
		warned = append(warned, filepath.Base(path))
	})
	if err != nil {
		t.Fatalf("corrupt entries must not abort the load: %v", err)
	}
	if len(warned) != 3 {
		t.Fatalf("warned on %v, want the 3 corrupt files", warned)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d entries, want the %d intact ones", c2.Len(), c.Len())
	}
}

// TestCorpusEvictionDeterministic: admissions past cap evict the
// least-recently-productive entry, and the same admission sequence always
// leaves the same survivors.
func TestCorpusEvictionDeterministic(t *testing.T) {
	build := func() *Corpus {
		c := NewCorpus(4)
		var first string
		for i := 0; i < 8; i++ {
			spec := Generate(7, int64(i))
			f := Feature{Protocol: spec.Protocol, Topology: "complete"}
			parent := ""
			if i >= 4 {
				// Every overflow admission is a mutant of the first entry:
				// the productivity credit must keep it alive past its age.
				parent = first
			}
			added, _ := c.Admit(spec, f, nil, "test", parent)
			if i == 0 {
				if !added {
					t.Fatal("first admission rejected")
				}
				first = SpecDigest(spec)
			}
		}
		return c
	}
	a, b := build(), build()
	if a.Len() != 4 {
		t.Fatalf("cap 4 corpus holds %d entries", a.Len())
	}
	if a.evicted != 4 || a.admitted != 8 {
		t.Fatalf("admitted %d evicted %d, want 8/4", a.admitted, a.evicted)
	}
	da, db := digests(a), digests(b)
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("same admissions, different survivors: %v vs %v", da, db)
	}
	// The productivity-credited first entry survived; entry 1 (never
	// productive again, oldest) did not.
	if a.entries[SpecDigest(Generate(7, 0))] == nil {
		t.Error("productive parent was evicted")
	}
	if a.entries[SpecDigest(Generate(7, 1))] != nil {
		t.Error("least-recently-productive entry survived")
	}
}

func digests(c *Corpus) []string {
	var out []string
	for _, e := range c.Entries() {
		out = append(out, e.Digest)
	}
	return out
}

// TestMutateDeterministic: the same entry under the same derived seed
// mutates identically, and mutants always validate.
func TestMutateDeterministic(t *testing.T) {
	c := loadSeedCorpus(t)
	for _, e := range c.Entries() {
		for i := int64(0); i < 64; i++ {
			seed := runner.DeriveSeed(11, "steer", i)
			m1 := Mutate(e.Spec, rng.New(seed))
			m2 := Mutate(e.Spec, rng.New(seed))
			if !reflect.DeepEqual(m1, m2) {
				t.Fatalf("mutation of %s diverged under seed %d", e.Digest, seed)
			}
			if err := m1.Validate(); err != nil {
				t.Fatalf("mutant of %s invalid: %v\n%+v", e.Digest, err, m1)
			}
		}
	}
}

// TestSteeredFuzzDeterministic: a steered session — summary bytes AND the
// corpus it leaves behind — is identical across worker counts.
func TestSteeredFuzzDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sessions in -short mode")
	}
	session := func(workers int) (string, map[string]string) {
		c := loadSeedCorpus(t)
		sum, err := Fuzz(Options{
			Runs: 150, MasterSeed: 3, Workers: workers,
			Corpus: c, MutateFrac: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := sum.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := c.Save(dir); err != nil {
			t.Fatal(err)
		}
		return string(data), readDir(t, dir)
	}
	sumSerial, corpSerial := session(1)
	sumParallel, corpParallel := session(0)
	if sumSerial != sumParallel {
		t.Error("steered summary differs between serial and parallel workers")
	}
	if !reflect.DeepEqual(corpSerial, corpParallel) {
		t.Error("evolved corpus differs between serial and parallel workers")
	}
	if seeded := readDir(t, corpusSeedDir); len(corpSerial) <= len(seeded) {
		t.Errorf("steered session admitted nothing: corpus still at %d entries", len(corpSerial))
	}
}

// steeringPinSeed is the master seed the steering-effectiveness gate runs
// under. Pinned (rather than drawn) because the comparison is a strict
// inequality between two finite samples: under some seeds blind sampling
// gets lucky. The property being guarded — mutation pressure concentrates
// runs near the envelopes — is seed-independent; the pin just makes the
// gate reproducible.
const steeringPinSeed = 1

// TestSteeringBeatsBlindSampling: the acceptance gate for the coverage
// loop — at equal run budget and a pinned master seed, a steered campaign
// (blind warm-up admitting into a corpus, then mutation-heavy phase 2)
// reaches a strictly higher maximum envelope-tightness ratio than blind
// sampling of the same stream, because mutants walk n/f/d/δ and crash
// schedules toward the binding envelope while blind draws keep sampling
// the domain uniformly. The comparison runs on the time envelope: the
// message envelope is exactly tight for the trivial protocol (every
// session containing one trivial run maxes at 1.0), so it cannot
// discriminate steering from luck.
func TestSteeringBeatsBlindSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sessions in -short mode")
	}
	const (
		seed   = steeringPinSeed
		warmup = 200
		budget = 600
	)
	maxTight := func(s *Summary) float64 {
		e := s.Envelopes[OracleTimeEnvelope]
		if e == nil || e.Count == 0 {
			t.Fatal("session never observed the time envelope")
		}
		return e.Max
	}

	blind, err := Fuzz(Options{Runs: budget, MasterSeed: seed})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCorpus(0)
	steered, err := Fuzz(Options{Runs: warmup, MasterSeed: seed, Corpus: c})
	if err != nil {
		t.Fatal(err)
	}
	phase2, err := Fuzz(Options{
		Runs: budget - warmup, MasterSeed: seed, FirstIndex: warmup,
		Corpus: c, MutateFrac: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	steered.Merge(phase2)

	if len(blind.Reports) != 0 || len(steered.Reports) != 0 {
		t.Fatalf("sessions found violations (blind %d, steered %d) — investigate before comparing tightness",
			len(blind.Reports), len(steered.Reports))
	}
	b, s := maxTight(blind), maxTight(steered)
	t.Logf("max envelope tightness: blind %.4f, steered %.4f (corpus %d entries, %d mutated runs)",
		b, s, c.Len(), steered.Corpus.MutatedRuns)
	if s <= b {
		t.Fatalf("steered max tightness %.4f did not beat blind %.4f at equal budget %d", s, b, budget)
	}
}
