package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ReportSchema identifies the ScenarioReport layout. Bump on breaking
// changes; Decode validates it exactly.
const ReportSchema = "repro.fuzz.report/v1"

// Report is the replayable artifact the fuzzer emits for every violated
// scenario: the coordinates that found it (master seed + index), the
// oracle verdicts, the original failing spec and its minimized repro. A
// report is self-contained — Replay needs nothing but the report (and the
// same code revision) to reproduce the failure bit for bit.
type Report struct {
	Schema     string `json:"schema"`
	MasterSeed int64  `json:"master_seed"`
	Index      int64  `json:"index"`
	// Label is the original spec's human-readable summary.
	Label string `json:"label"`
	// Violations are the oracle verdicts of the original execution.
	Violations []OracleViolation `json:"violations"`
	// Spec is the originally generated failing scenario.
	Spec Spec `json:"spec"`
	// Minimized is the shrunk repro, violating Violations[0].Oracle. When
	// nothing smaller failed the same way it matches Spec except that the
	// shrinker clears CheckEquivalence for oracles other than
	// pool-equivalence (the twin run only serves that oracle).
	Minimized Spec `json:"minimized"`
	// ShrinkRuns counts the candidate executions the shrinker spent.
	ShrinkRuns int `json:"shrink_runs"`
}

// Encode renders the report as deterministic, indented JSON with a
// trailing newline (stable bytes for CI artifact diffing).
func (r Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeReport parses and validates a serialized report.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("scenario: bad report: %w", err)
	}
	if r.Schema != ReportSchema {
		return Report{}, fmt.Errorf("scenario: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if len(r.Violations) == 0 {
		return Report{}, fmt.Errorf("scenario: report carries no violations")
	}
	if err := r.Spec.Validate(); err != nil {
		return Report{}, err
	}
	if err := r.Minimized.Validate(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// Filename returns the canonical artifact name for the report.
func (r Report) Filename() string {
	return fmt.Sprintf("scenario-%d-%d.json", r.MasterSeed, r.Index)
}

// ReplayResult is the outcome of re-executing one spec from a report.
type ReplayResult struct {
	// Reproduced is true when the spec violates the report's primary
	// oracle again.
	Reproduced bool
	// Violations are the oracle verdicts of the replay.
	Violations []OracleViolation
}

// Replay re-executes a report's minimized spec (and, when it differs, the
// original spec) and reports whether the primary violation reproduces.
func Replay(r Report) (minimized, original ReplayResult, err error) {
	primary := r.Violations[0].Oracle
	minimized, err = replaySpec(r.Minimized, primary)
	if err != nil {
		return minimized, original, err
	}
	original, err = replaySpec(r.Spec, primary)
	return minimized, original, err
}

func replaySpec(s Spec, primaryOracle string) (ReplayResult, error) {
	ex, err := Execute(s)
	if err != nil {
		return ReplayResult{}, err
	}
	res := ReplayResult{Violations: CheckAll(ex)}
	for _, v := range res.Violations {
		if v.Oracle == primaryOracle {
			res.Reproduced = true
		}
	}
	return res, nil
}
