package scenario

import (
	"reflect"

	"repro/internal/sim"
)

// The shrinker: given a spec that violates an oracle, greedily search for
// a smaller spec that still violates the *same* oracle. Candidates shrink
// along the axes a human debugging the failure would want minimized —
// fewer processes, fewer failures, a shorter horizon, fewer adversary
// events, simpler policies — and every candidate is verified by actually
// re-executing it, so the minimized repro in a ScenarioReport is a real
// failing run, not an extrapolation. Everything is deterministic: the same
// (spec, oracle) input always shrinks to the same output.

// DefaultShrinkBudget bounds the number of candidate executions one shrink
// may spend. Scenarios are small (n ≤ 64), so a few hundred runs keep
// shrinking under a second while typically reaching a fixpoint much
// earlier.
const DefaultShrinkBudget = 250

// minShrinkN is the floor for process-count shrinking; below ~4 processes
// the protocols degenerate and most failures stop being representative.
const minShrinkN = 4

// Shrink minimizes spec while preserving a violation of the named oracle.
// It returns the smallest failing spec found and the number of candidate
// executions spent. The input spec is assumed to violate the oracle; if
// nothing smaller fails the same way, the input is returned unchanged.
func Shrink(spec Spec, oracle string, budget int) (Spec, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	// The pooled≡unpooled twin doubles every candidate's cost and only the
	// pool-equivalence oracle needs it; likewise the sharded twin and the
	// shard-equivalence oracle.
	if oracle != OraclePoolEquivalence {
		spec.CheckEquivalence = false
	}
	if oracle != OracleShardEquivalence {
		spec.Shards = 0
	}
	runs := 0
	stillFails := func(cand Spec) bool {
		if runs >= budget {
			return false
		}
		cand = normalize(cand)
		if reflect.DeepEqual(cand, spec) || cand.Validate() != nil {
			return false
		}
		runs++
		ex, err := Execute(cand)
		if err != nil {
			return false
		}
		for _, v := range CheckAll(ex) {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	}

	for runs < budget {
		progressed := false
		for _, cand := range candidates(spec) {
			if stillFails(cand) {
				spec = normalize(cand)
				progressed = true
				break // restart candidate generation from the smaller spec
			}
		}
		if !progressed {
			break
		}
	}
	return spec, runs
}

// candidates proposes one round of shrinking transformations, ordered by
// how much they simplify the repro.
func candidates(s Spec) []Spec {
	var out []Spec
	add := func(mut func(*Spec)) {
		c := clone(s)
		mut(&c)
		out = append(out, c)
	}

	// Fewer processes: halve, then decrement.
	if s.N/2 >= minShrinkN {
		add(func(c *Spec) { c.N = c.N / 2 })
	}
	if s.N-1 >= minShrinkN {
		add(func(c *Spec) { c.N-- })
	}
	// Fewer adversary crash events: drop halves, then singles.
	if k := len(s.Crashes); k > 0 {
		add(func(c *Spec) { c.Crashes = c.Crashes[:0] })
		if k > 1 {
			add(func(c *Spec) { c.Crashes = append([]CrashEvent(nil), c.Crashes[k/2:]...) })
			add(func(c *Spec) { c.Crashes = append([]CrashEvent(nil), c.Crashes[:k/2]...) })
		}
		for i := 0; i < k && i < 8; i++ {
			i := i
			add(func(c *Spec) {
				c.Crashes = append(append([]CrashEvent(nil), c.Crashes[:i]...), c.Crashes[i+1:]...)
			})
		}
	}
	// Smaller failure budget.
	if s.F > 0 {
		add(func(c *Spec) { c.F = 0 })
		add(func(c *Spec) { c.F = c.F / 2 })
		add(func(c *Spec) { c.F-- })
	}
	// Simpler timing: d, δ, delay and schedule policies.
	if s.Delta > 1 {
		add(func(c *Spec) { c.Delta = 1 })
	}
	if s.D > 1 {
		add(func(c *Spec) { c.D = 1 })
	}
	if s.Delay.Kind != DelayFixed || s.Delay.Value != 1 {
		add(func(c *Spec) { c.Delay = DelaySpec{Kind: DelayFixed, Value: 1} })
	}
	if s.Schedule.Kind != SchedEvery {
		add(func(c *Spec) { c.Schedule = ScheduleSpec{Kind: SchedEvery} })
	}
	// Fewer shards: pin the auto sentinel to a concrete count, then try
	// the smallest count that still shards (a shard-equivalence failure
	// on 2 shards is the easiest to step through).
	if s.Shards == ShardsAuto {
		add(func(c *Spec) { c.Shards = 7 })
	}
	if s.Shards > 2 {
		add(func(c *Spec) { c.Shards = 2 })
	}
	// The paper's model: back to the clique.
	if s.Topology != "" {
		add(func(c *Spec) {
			c.Topology, c.TopologyParam, c.TopologyParam2, c.TopologySeed = "", 0, 0, 0
		})
	}
	// Shorter horizon — but never below the kernel's generous default for
	// the candidate's own parameters. An unfloored cut would let a slow
	// but finite run masquerade as hung (any run "hangs" at horizon 1), so
	// a minimized timeout repro would stop being evidence of a real
	// livelock.
	if floor := defaultHorizon(s); s.MaxSteps/2 >= floor {
		add(func(c *Spec) { c.MaxSteps = c.MaxSteps / 2 })
	}
	return out
}

// defaultHorizon is the kernel's default step budget for the spec's
// current parameters (recomputed as n, f, d, δ shrink).
func defaultHorizon(s Spec) int64 {
	return int64(sim.DefaultMaxSteps(sim.Config{
		N: s.N, F: s.F, D: sim.Time(s.D), Delta: sim.Time(s.Delta),
	}))
}

// clone deep-copies a spec (the crash plan is the only reference field).
func clone(s Spec) Spec {
	c := s
	c.Crashes = append([]CrashEvent(nil), s.Crashes...)
	return c
}

// normalize repairs a transformed spec into a valid one: the failure
// budget stays below the (possibly smaller) process count and crash events
// for removed processes are dropped.
func normalize(s Spec) Spec {
	c := clone(s)
	if c.F > c.N-1 {
		c.F = c.N - 1
	}
	if c.F < 0 {
		c.F = 0
	}
	kept := c.Crashes[:0]
	for _, ev := range c.Crashes {
		if ev.Proc < c.N {
			kept = append(kept, ev)
		}
	}
	c.Crashes = kept
	if len(c.Crashes) == 0 {
		c.Crashes = nil
	}
	return c
}
