package scenario

import "repro/internal/telemetry"

// EnvelopeStats summarizes how tightly a session's runs sat inside one of
// the paper-derived complexity envelopes: each contributing run observes
// the ratio actual/bound (1.0 = exactly at the envelope; the envelope
// oracles fire above it), and the stats expose deterministic, mergeable
// percentiles of those ratios. A p99 drifting toward 1 across nightly
// sessions is the early-warning signal the ROADMAP's envelope-tightness
// tracking asks for — a complexity regression announcing itself long
// before the slack factor is actually breached.
//
// Determinism: ratios accumulate into a fixed-width histogram, so
// percentiles are independent of observation order; Mean sums in session
// index order (and batch order under cmd/fuzz's duration mode), so equal
// sessions encode to equal bytes.
type EnvelopeStats struct {
	// Count is the number of runs the envelope applied to.
	Count int64 `json:"count"`
	// Mean is the average tightness ratio.
	Mean float64 `json:"mean"`
	// P50/P90/P99 are percentile upper edges of the ratio distribution
	// (bucket resolution 0.01).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// Max is the largest observed ratio.
	Max float64 `json:"max"`

	hist *telemetry.LinearHist
}

func newEnvelopeStats() *EnvelopeStats {
	return &EnvelopeStats{hist: telemetry.NewLinearHist()}
}

// observe records one run's tightness ratio and refreshes the derived
// fields.
func (e *EnvelopeStats) observe(ratio float64) {
	e.hist.Observe(ratio)
	e.refresh()
}

// merge folds another session's stats into this one exactly (histograms
// add bucket-wise; no percentile-of-percentile approximation).
func (e *EnvelopeStats) merge(o *EnvelopeStats) {
	if o == nil || o.hist == nil {
		return
	}
	if e.hist == nil {
		e.hist = telemetry.NewLinearHist()
	}
	e.hist.Merge(o.hist)
	e.refresh()
}

// Rank reports the fraction of observed ratios that sat strictly below
// ratio's histogram bucket — the tightness-quantile lookup behind the
// coverage engine's near-miss predicate (Rank >= 0.9 ⇒ top decile).
func (e *EnvelopeStats) Rank(ratio float64) float64 {
	if e.hist == nil {
		return 0
	}
	return e.hist.Rank(ratio)
}

// refresh recomputes the exported fields from the histogram.
func (e *EnvelopeStats) refresh() {
	e.Count = e.hist.Count()
	e.Mean = e.hist.Mean()
	e.P50 = e.hist.Quantile(0.50)
	e.P90 = e.hist.Quantile(0.90)
	e.P99 = e.hist.Quantile(0.99)
	e.Max = e.hist.Max()
}
