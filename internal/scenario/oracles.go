package scenario

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/syncgossip"
)

// Oracle is one pluggable invariant check over a finished execution. Check
// returns "" when the invariant holds, or a human-readable violation
// detail. Oracles must be pure observers: deterministic, no mutation.
type Oracle struct {
	// Name identifies the oracle in reports and in shrinking (the shrinker
	// preserves the violated oracle, not just "some failure").
	Name string
	// Doc is a one-line description for catalogs and documentation.
	Doc string
	// Check judges an execution.
	Check func(ex *Execution) string
}

// OracleViolation is one oracle's verdict on one execution.
type OracleViolation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Oracle names. The kernel-witness oracles share names with the checker's
// rules (sim.Rule*); the rest are scenario-level.
const (
	OracleCrashBudget      = sim.RuleCrashBudget
	OracleDelayClamp       = sim.RuleDelayClamp
	OraclePostCrash        = sim.RulePostCrash
	OracleScheduleGap      = sim.RuleScheduleGap
	OracleEventOrder       = sim.RuleEventOrder
	OracleCompletion       = "completion"
	OracleValidity         = "validity"
	OracleMessageEnvelope  = "message-envelope"
	OracleTimeEnvelope     = "time-envelope"
	OracleOffEdge          = "off-edge"
	OraclePoolEquivalence  = "pool-equivalence"
	OracleShardEquivalence = "shard-equivalence"
)

// Catalog returns the full oracle catalog, in the order checks run.
func Catalog() []Oracle {
	cat := []Oracle{
		checkerOracle(OracleCrashBudget, "at most f processes crash (kernel budget enforcement)"),
		checkerOracle(OracleDelayClamp, "every message delay lies in [1, d]"),
		checkerOracle(OraclePostCrash, "a crashed process never steps, sends, or receives"),
		checkerOracle(OracleScheduleGap, "no live process is starved past the schedule's gap bound"),
		checkerOracle(OracleEventOrder, "event times are monotone; deliveries respect ReadyAt"),
		{
			Name:  OracleCrashBudget + "-metrics",
			Doc:   "the kernel's own crash metric agrees with the budget and the witness",
			Check: checkCrashMetrics,
		},
		{
			Name:  OracleCompletion,
			Doc:   "scenarios with a completion promise finish, and every correct process holds what the promise requires (verified from node state, not the evaluator)",
			Check: checkCompletion,
		},
		{
			Name:  OracleValidity,
			Doc:   "every rumor held anywhere was actually initiated by a process that took a step",
			Check: checkValidity,
		},
		{
			Name:  OracleMessageEnvelope,
			Doc:   "message complexity stays within the paper's per-protocol bound times a slack factor",
			Check: checkMessageEnvelope,
		},
		{
			Name:  OracleTimeEnvelope,
			Doc:   "time complexity stays within the paper's per-protocol bound times a slack factor",
			Check: checkTimeEnvelope,
		},
		{
			Name:  OracleOffEdge,
			Doc:   "topology-aware protocols never send along non-edges",
			Check: checkOffEdge,
		},
		{
			Name:  OraclePoolEquivalence,
			Doc:   "a pooled run and its unpooled twin execute identical event streams (sampled)",
			Check: checkPoolEquivalence,
		},
		{
			Name:  OracleShardEquivalence,
			Doc:   "a serial run and its sharded-superstep twin execute identical event streams (sampled)",
			Check: checkShardEquivalence,
		},
	}
	return cat
}

// CheckAll runs the catalog over an execution and returns every violation,
// in catalog order. An empty slice is a clean run.
func CheckAll(ex *Execution) []OracleViolation {
	var out []OracleViolation
	for _, o := range Catalog() {
		if detail := o.Check(ex); detail != "" {
			out = append(out, OracleViolation{Oracle: o.Name, Detail: detail})
		}
	}
	return out
}

// checkerOracle surfaces the invariant checker's violations of one rule as
// a scenario oracle: the checker is the independent per-event witness, the
// oracle gives its verdict a stable name in reports and shrinking.
func checkerOracle(rule, doc string) Oracle {
	return Oracle{
		Name: rule,
		Doc:  doc,
		Check: func(ex *Execution) string {
			for _, v := range ex.Checker.Violations() {
				if v.Rule == rule {
					return v.Detail
				}
			}
			return ""
		},
	}
}

// checkCrashMetrics cross-checks three independent crash counts: the
// spec's budget, the kernel's metric, and the checker's event count.
func checkCrashMetrics(ex *Execution) string {
	if ex.Res.Crashes > ex.Spec.F {
		return fmt.Sprintf("kernel reports %d crashes, budget f=%d", ex.Res.Crashes, ex.Spec.F)
	}
	if ex.Res.Crashes != ex.Checker.Crashes() {
		return fmt.Sprintf("kernel reports %d crashes, event witness saw %d", ex.Res.Crashes, ex.Checker.Crashes())
	}
	return ""
}

// checkCompletion re-verifies the protocol's promise from raw node state.
// It deliberately re-implements the evaluator's judgment: if the evaluator
// ever regressed into accepting broken runs, this oracle still fires.
func checkCompletion(ex *Execution) string {
	if !ex.Spec.ExpectComplete {
		return ""
	}
	if ex.Res.TimedOut {
		return fmt.Sprintf("hung: no quiescence within horizon %d (messages=%d)", ex.Spec.MaxSteps, ex.Res.Messages)
	}
	if !ex.Res.Completed {
		return ex.runDetail()
	}
	v := ex.view
	if isSpreadProto(ex.Spec.Protocol) {
		// Single-rumor spreading: every correct process must hold the bit.
		for p := 0; p < v.N(); p++ {
			if !v.Alive(sim.ProcID(p)) {
				continue
			}
			inf, ok := ex.nodes[p].(core.Informed)
			if !ok {
				return fmt.Sprintf("node %d does not expose Informed", p)
			}
			if !inf.Informed() {
				return fmt.Sprintf("correct process %d is uninformed", p)
			}
		}
		return ""
	}
	if isAvgProto(ex.Spec.Protocol) {
		// Sum-weight averaging: every correct process's estimate must lie
		// within ε of the true mean over all n initial values (the domain
		// is crash-free, so all n contribute mass).
		states := make([]core.AverageState, v.N())
		mean := 0.0
		for p := range states {
			st, ok := ex.nodes[p].(core.AverageState)
			if !ok {
				return fmt.Sprintf("node %d does not expose AverageState", p)
			}
			states[p] = st
			mean += st.InitialValue()
		}
		mean /= float64(v.N())
		eps := core.Params{N: ex.Spec.N, F: ex.Spec.F}.WithDefaults().AvgEpsilon
		for p, st := range states {
			if !v.Alive(sim.ProcID(p)) {
				continue
			}
			sum, weight := st.Estimate()
			if weight <= 0 {
				return fmt.Sprintf("correct process %d holds non-positive weight %v", p, weight)
			}
			if got := sum / weight; math.Abs(got-mean) > eps {
				return fmt.Sprintf("correct process %d estimates %v, mean is %v (ε=%v)", p, got, mean, eps)
			}
		}
		return ""
	}
	need := v.N()/2 + 1 // majority threshold
	for p := 0; p < v.N(); p++ {
		if !v.Alive(sim.ProcID(p)) {
			continue
		}
		h, ok := ex.nodes[p].(core.RumorHolder)
		if !ok {
			return fmt.Sprintf("node %d is not a RumorHolder", p)
		}
		if ex.Spec.Majority {
			if got := h.RumorSet().Count(); got < need {
				return fmt.Sprintf("correct process %d holds %d rumors, majority needs %d", p, got, need)
			}
			continue
		}
		for r := 0; r < v.N(); r++ {
			if v.Alive(sim.ProcID(r)) && !h.RumorSet().Test(r) {
				return fmt.Sprintf("correct process %d lacks rumor of correct process %d", p, r)
			}
		}
	}
	return ""
}

// checkValidity verifies no rumor appeared out of thin air: a held rumor's
// originator must have taken at least one local step (or be the holder).
func checkValidity(ex *Execution) string {
	v := ex.view
	if isSpreadProto(ex.Spec.Protocol) {
		// Causality for the single rumor: only process 0 initiates it, so
		// any other informed process implies the initiator took a step.
		for p := 1; p < v.N(); p++ {
			inf, ok := ex.nodes[p].(core.Informed)
			if !ok {
				return fmt.Sprintf("node %d does not expose Informed", p)
			}
			if inf.Informed() && v.StepsTaken(0) == 0 {
				return fmt.Sprintf("process %d is informed, but initiator 0 never took a step", p)
			}
		}
		return ""
	}
	for p := 0; p < v.N(); p++ {
		h, ok := ex.nodes[p].(core.RumorHolder)
		if !ok {
			continue
		}
		detail := ""
		h.RumorSet().ForEach(func(r int) bool {
			if r != p && v.StepsTaken(sim.ProcID(r)) == 0 {
				detail = fmt.Sprintf("process %d holds rumor %d, but %d never took a step", p, r, r)
				return false
			}
			return true
		})
		if detail != "" {
			return detail
		}
	}
	return ""
}

// Envelope slack factors. The paper's bounds are asymptotic with unstated
// constants; at fuzzing scales (n ≤ 64) the envelopes are calibrated
// against the repository's measured constants with generous headroom, so
// they only fire on qualitative regressions (a protocol suddenly sending
// an extra factor of n, a completion time blowing past its epoch
// structure) rather than on concentration noise.
const (
	msgSlack  = 8.0
	timeSlack = 12.0
)

// messageEnvelope returns the message bound for the spec's protocol, per
// Table 1 of the paper, scaled by msgSlack; returns 0 when no bound
// applies. Deterministic per-step protocols (trivial, naive, the sync
// baselines) get exact send-budget caps with no slack: their step budgets
// are deterministic, so exceeding them is a hard bug.
func messageEnvelope(s Spec) float64 {
	n := float64(s.N)
	surv := float64(s.N - s.F)
	if surv < 1 {
		surv = 1
	}
	lg := float64(log2(s.N))
	dd := float64(s.D + s.Delta)
	switch s.Protocol {
	case core.NameTrivial:
		// Each process sends to its sampling universe at most once.
		return n * n
	case core.NameNaive:
		// reps = ⌈6·(n/(n−f))·log₂n⌉ sends per process, at most.
		return n * math.Ceil(6*n/surv*lg)
	case syncgossip.NameSyncEpidemic:
		// fanout 2 per round, rounds = max(2, ⌈3·(n/(n−f))·log₂n⌉).
		return n * 2 * math.Max(2, math.Ceil(3*n/surv*lg))
	case syncgossip.NameSyncDeterministic:
		// degree log₂n per round, rounds = max(2, ⌈2·(n/(n−f))·log₂n⌉).
		return n * lg * math.Max(2, math.Ceil(2*n/surv*lg))
	case core.NameEARS:
		// O(n·log³n·(d+δ)) (Theorem 5).
		return msgSlack * n * lg * lg * lg * dd
	case core.NameSEARS:
		// O(n^{2+ε}/(ε(n−f))·log n·(d+δ)) with ε = 1/2 (Theorem 7).
		return msgSlack * math.Pow(n, 2.5) / (0.5 * surv) * lg * dd
	case core.NameTEARS:
		// O(n^{7/4}·log²n) (Theorem 9).
		return msgSlack * math.Pow(n, 1.75) * lg * lg
	case core.NamePush, core.NamePull, core.NamePushPull:
		// Pushes are budgeted: at most B = PushBudget() per process, exact
		// and deterministic (push-only gets no slack). Pull traffic — one
		// solicitation per uninformed step plus at most one answer each —
		// is stochastic: O(n·log n) interaction rounds of span d+gap.
		b := 0.0
		if s.Protocol != core.NamePull {
			p := core.Params{N: s.N, F: s.F}.WithDefaults()
			b = n * float64(p.PushBudget())
		}
		if s.Protocol == core.NamePush {
			return b
		}
		gap := float64(s.maxGap())
		return b + msgSlack*2*n*lg*(float64(s.D)+gap)
	case core.NameAverage:
		// Exactly one send per budgeted round per process on a clique; on
		// the expander families a failed neighborhood draw skips the send,
		// so n·R is a hard deterministic cap either way.
		p := core.Params{N: s.N, F: s.F}.WithDefaults()
		return n * float64(p.AvgRounds())
	}
	return 0
}

// timeEnvelope returns the completion-time bound for the spec, scaled by
// timeSlack; 0 when no bound applies or the run carries no promise.
func timeEnvelope(s Spec) float64 {
	n := float64(s.N)
	surv := float64(s.N - s.F)
	if surv < 1 {
		surv = 1
	}
	lg := float64(log2(s.N))
	gap := float64(s.maxGap())
	dd := float64(s.D) + gap
	switch s.Protocol {
	case core.NameTrivial:
		// One step each, one delivery, one absorbing step: O(d+δ).
		return timeSlack * (dd + 4)
	case syncgossip.NameSyncEpidemic:
		return timeSlack * (math.Max(2, math.Ceil(3*n/surv*lg)) + dd + 4)
	case syncgossip.NameSyncDeterministic:
		return timeSlack * (math.Max(2, math.Ceil(2*n/surv*lg)) + dd + 4)
	case core.NameEARS:
		// O(n/(n−f)·log²n·(d+δ)) (Theorem 4).
		return timeSlack * (n/surv*lg*lg*dd + dd + 4)
	case core.NameSEARS:
		// O(n/(ε(n−f))·(d+δ)) (Theorem 7); a log factor of headroom.
		return timeSlack * (n/(0.5*surv)*lg*dd + dd + 4)
	case core.NameTEARS:
		// O(d+δ) to majority (Theorem 8); polylog headroom at small n.
		return timeSlack * (lg*lg*dd + dd + 4)
	case core.NamePush, core.NamePull, core.NamePushPull:
		// Spreading completes in O(log n) interaction rounds of span d+gap
		// (Panagiotou–Speidel); informed processes then drain their push
		// budget at one send per scheduled step.
		b := 0.0
		if s.Protocol != core.NamePull {
			p := core.Params{N: s.N, F: s.F}.WithDefaults()
			b = float64(p.PushBudget())
		}
		return timeSlack * (lg*dd + b*gap + dd + 4)
	case core.NameAverage:
		// Deterministic epoch structure: each process spends its R rounds
		// one per scheduled step (the R-th by (R+1)·gap), the last message
		// lands within d, and the receiver folds it at its next step —
		// with timeSlack headroom like the other deterministic schedules
		// (trivial, the sync baselines), so the tightness statistic is not
		// saturated by a structurally near-exact cap.
		p := core.Params{N: s.N, F: s.F}.WithDefaults()
		return timeSlack * (float64(p.AvgRounds())*gap + dd + gap + 4)
	}
	return 0
}

func checkMessageEnvelope(ex *Execution) string {
	bound := messageEnvelope(ex.Spec)
	if bound <= 0 {
		return ""
	}
	if got := float64(ex.Res.Messages); got > bound {
		return fmt.Sprintf("%d messages exceed the %s envelope %.0f", ex.Res.Messages, ex.Spec.Protocol, bound)
	}
	return ""
}

func checkTimeEnvelope(ex *Execution) string {
	// Time bounds quantify completion; a run without the completion
	// promise (naive) or one that failed it (reported by the completion
	// oracle) has no meaningful completion time.
	if !ex.Spec.ExpectComplete || !ex.Res.Completed {
		return ""
	}
	bound := timeEnvelope(ex.Spec)
	if bound <= 0 {
		return ""
	}
	if got := float64(ex.Res.TimeComplexity); got > bound {
		return fmt.Sprintf("completion time %d exceeds the %s envelope %.0f", ex.Res.TimeComplexity, ex.Spec.Protocol, bound)
	}
	return ""
}

// checkOffEdge requires topology-aware sampling: every generated protocol
// draws targets from its neighborhood, so the kernel's non-edge filter
// must never fire. (sync-deterministic's clique-wide circulant offsets are
// the known exception; the generator keeps it on the clique.)
func checkOffEdge(ex *Execution) string {
	if ex.Res.OffEdgeDrops > 0 {
		return fmt.Sprintf("%d sends dropped on non-edges of %s", ex.Res.OffEdgeDrops, ex.Spec.Topology)
	}
	return ""
}

// checkPoolEquivalence compares the pooled run's event stream against the
// unpooled twin's (when the twin ran): pooling must be invisible.
func checkPoolEquivalence(ex *Execution) string {
	if !ex.TwinRan {
		return ""
	}
	if ex.Digest != ex.TwinDigest || ex.Events != ex.TwinEvents {
		return fmt.Sprintf("pooled run digest %016x (%d events) != unpooled %016x (%d events)",
			ex.Digest, ex.Events, ex.TwinDigest, ex.TwinEvents)
	}
	return ""
}

// checkShardEquivalence compares the serial run's event stream against the
// sharded twin's (when the twin ran): sharding must be invisible.
func checkShardEquivalence(ex *Execution) string {
	if !ex.ShardTwinRan {
		return ""
	}
	if ex.Digest != ex.ShardDigest || ex.Events != ex.ShardEvents {
		return fmt.Sprintf("serial run digest %016x (%d events) != %d-shard run %016x (%d events)",
			ex.Digest, ex.Events, ex.ShardTwinShards, ex.ShardDigest, ex.ShardEvents)
	}
	return ""
}

// log2 returns ⌈log₂ n⌉, at least 1 (the repository's discrete log).
func log2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
