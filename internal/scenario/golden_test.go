package scenario

import (
	"flag"
	"testing"

	"repro/internal/topology"
)

// Golden trace digests: one pinned scenario per protocol whose full event
// stream (every step, send with assigned delay, delivery and crash, in
// kernel order) is fingerprinted and committed. Any refactor that
// perturbs a protocol's random draws, the kernel's event ordering, the
// adversary streams or the topology generators changes a digest and fails
// here — the cross-protocol generalization of the pinned-baseline tests
// in topology_api_test.go, at event-level rather than aggregate fidelity.
//
// When a change is intentional (a protocol or kernel behavior change),
// regenerate with:
//
//	go test ./internal/scenario -run TestGoldenTraceDigests -regen-digests
//
// and commit the new values alongside the change that explains them.

// goldenSpec pins the common scenario shape: the paper's clique, a stride
// schedule, uniform delays, a spread crash plan — the standard adversary's
// shape, materialized so the spec is self-contained.
func goldenSpec(protocol string, n, f int) Spec {
	return Spec{
		Protocol: protocol, N: n, F: f, D: 2, Delta: 2,
		Seed:     1234,
		MaxSteps: 200000,
		Schedule: ScheduleSpec{Kind: SchedStride, Seed: 51},
		Delay:    DelaySpec{Kind: DelayUniform, Seed: 52},
		Crashes: []CrashEvent{
			{At: 3, Proc: 1}, {At: 9, Proc: 4}, {At: 17, Proc: 2},
		},
	}
}

var goldenCases = []struct {
	name   string
	spec   Spec
	digest uint64
	events int64
}{
	{name: "trivial", spec: goldenSpec("trivial", 24, 3), digest: 0x63609f8597f45cc2, events: 1171},
	{name: "ears", spec: goldenSpec("ears", 24, 3), digest: 0x0bc8f4cb5f0fdc73, events: 3634},
	{name: "sears", spec: goldenSpec("sears", 24, 3), digest: 0x0eed26995b8e8430, events: 3681},
	{name: "tears", spec: goldenSpec("tears", 24, 3), digest: 0xfaa6d5d023146f8e, events: 3476},
	{name: "naive", spec: goldenSpec("naive", 24, 3), digest: 0xba2e06b2c4a806a0, events: 2197},
	{
		name: "sync-epidemic",
		spec: Spec{
			Protocol: "sync-epidemic", N: 24, F: 0, D: 1, Delta: 1,
			Seed: 1234, MaxSteps: 200000,
			Schedule: ScheduleSpec{Kind: SchedEvery},
			Delay:    DelaySpec{Kind: DelayFixed, Value: 1},
		},
		digest: 0xd0a3ac70775ab5d5, events: 1824,
	},
	{
		name: "sync-deterministic",
		spec: Spec{
			Protocol: "sync-deterministic", N: 24, F: 0, D: 1, Delta: 1,
			Seed: 1234, MaxSteps: 200000,
			Schedule: ScheduleSpec{Kind: SchedEvery},
			Delay:    DelaySpec{Kind: DelayFixed, Value: 1},
		},
		digest: 0x4823f234e3627755, events: 2664,
	},
	// The O(1)-state families: the spreading variants reuse the common
	// shape (its crash plan spares the initiator — victims are 1, 4, 2);
	// averaging runs crash-free, its only promised domain. The average
	// digest also pins float determinism indirectly: any change to the
	// fold order shifts when mass stops moving and thus the event stream.
	{name: "push", spec: goldenSpec("push", 24, 3), digest: 0x33920498d1c6aa5e, events: 2332},
	{name: "pull", spec: goldenSpec("pull", 24, 3), digest: 0x0e7f6ee5183e52f0, events: 475},
	{name: "push-pull", spec: goldenSpec("push-pull", 24, 3), digest: 0x738a0374dcd6152a, events: 2458},
	{
		name: "average",
		spec: Spec{
			Protocol: "average", N: 24, F: 0, D: 2, Delta: 2,
			Seed: 1234, MaxSteps: 200000,
			Schedule: ScheduleSpec{Kind: SchedStride, Seed: 51},
			Delay:    DelaySpec{Kind: DelayUniform, Seed: 52},
		},
		digest: 0x89b39463a43cf156, events: 6960,
	},
	{
		// ears on a ring also pins the neighborhood-scoped informed-list
		// obligation (the livelock fix): a regression back to [n]-wide
		// obligations changes this stream.
		name: "ears-ring",
		spec: Spec{
			Protocol: "ears", N: 24, F: 0, D: 2, Delta: 2,
			Seed: 1234, MaxSteps: 200000,
			Topology: topology.FamilyRing,
			Schedule: ScheduleSpec{Kind: SchedStride, Seed: 51},
			Delay:    DelaySpec{Kind: DelayUniform, Seed: 52},
		},
		digest: 0x8bba757f8b24519a, events: 4272,
	},
}

func TestGoldenTraceDigests(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ex, err := Execute(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if ex.RunErr != nil {
				t.Fatalf("golden scenario failed to run: %v", ex.RunErr)
			}
			if vs := CheckAll(ex); len(vs) != 0 {
				t.Fatalf("golden scenario violates oracles: %+v", vs)
			}
			if *regenDigests {
				t.Logf("{name: %q, digest: %#016x, events: %d}", tc.name, ex.Digest, ex.Events)
				return
			}
			if ex.Digest != tc.digest || ex.Events != tc.events {
				t.Errorf("event stream drifted: digest %#016x (%d events), committed %#016x (%d events)\n"+
					"If this change is intentional, regenerate with -regen-digests and commit the new values.",
					ex.Digest, ex.Events, tc.digest, tc.events)
			}
		})
	}
}

// regenDigests prints fresh digests instead of comparing (see file comment).
var regenDigests = flag.Bool("regen-digests", false, "print golden digests instead of asserting them")
