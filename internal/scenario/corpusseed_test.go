package scenario

import (
	"flag"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// The committed mini-corpus under testdata/corpus-seed is the PR smoke
// seed: ~20 hand-picked scenarios covering every protocol and every
// generated topology family — including the PR 4 EARS/SEARS livelock
// scenario (ears on a ring, completion promise armed) — that cmd/fuzz
// replays and mutates on every pull request. Regenerate after a deliberate
// spec or digest change with:
//
//	go test ./internal/scenario -run TestSeedCorpusCommitted -regen-corpus-seed
var regenCorpusSeed = flag.Bool("regen-corpus-seed", false,
	"rewrite testdata/corpus-seed from the seed spec list")

const corpusSeedDir = "../../testdata/corpus-seed"

// seedSpecs is the mini-corpus domain: the asynchronous protocols with
// crashes on the clique (initiator-sparing crashes for the spreading
// family), the crash-free sync baselines and averaging, ears and sears
// across all six generated families, push-pull and averaging on the
// expander families, and one sharded-twin entry.
func seedSpecs() []Spec {
	async := func(proto string, n, f int, majority bool) Spec {
		return finishSeedSpec(Spec{
			Protocol: proto, N: n, F: f, D: 2, Delta: 2, Seed: 1234,
			Schedule: ScheduleSpec{Kind: SchedStride, Seed: 51},
			Delay:    DelaySpec{Kind: DelayUniform, Seed: 52},
			Crashes: []CrashEvent{
				{At: 3, Proc: 1}, {At: 9, Proc: 4}, {At: 17, Proc: 2},
			},
			Majority:       majority,
			ExpectComplete: proto != "naive",
		})
	}
	sync := func(proto string) Spec {
		return finishSeedSpec(Spec{
			Protocol: proto, N: 24, F: 0, D: 1, Delta: 1, Seed: 1234,
			Schedule:       ScheduleSpec{Kind: SchedEvery},
			Delay:          DelaySpec{Kind: DelayFixed, Value: 1},
			ExpectComplete: true,
		})
	}
	sparse := func(proto, family string, param float64) Spec {
		return finishSeedSpec(Spec{
			Protocol: proto, N: 24, F: 0, D: 2, Delta: 2, Seed: 1234,
			Topology: family, TopologyParam: param, TopologySeed: 7,
			Schedule:       ScheduleSpec{Kind: SchedStride, Seed: 51},
			Delay:          DelaySpec{Kind: DelayUniform, Seed: 52},
			ExpectComplete: true,
		})
	}

	specs := []Spec{
		async("trivial", 24, 3, false),
		async("ears", 24, 3, false),
		async("sears", 24, 3, false),
		async("tears", 24, 3, true),
		async("naive", 24, 3, false),
		sync("sync-epidemic"),
		sync("sync-deterministic"),
		// The O(1)-state families: spreading with initiator-sparing crashes
		// (async's victims are 1, 4 and 2), averaging crash-free.
		async("push", 24, 3, false),
		async("pull", 24, 3, false),
		async("push-pull", 24, 3, false),
		finishSeedSpec(Spec{
			Protocol: "average", N: 24, F: 0, D: 2, Delta: 2, Seed: 1234,
			Schedule:       ScheduleSpec{Kind: SchedStride, Seed: 51},
			Delay:          DelaySpec{Kind: DelayUniform, Seed: 52},
			ExpectComplete: true,
		}),
	}
	for _, proto := range []string{"ears", "sears"} {
		for _, family := range genSparseFamilies {
			param := 0.0
			if family == topology.FamilyRandomRegular {
				param = 4
			}
			specs = append(specs, sparse(proto, family, param))
		}
	}
	for _, proto := range []string{"push-pull", "average"} {
		for _, family := range genExpanderFamilies {
			param := 0.0
			if family == topology.FamilyRandomRegular {
				param = 6
			}
			specs = append(specs, sparse(proto, family, param))
		}
	}
	// A sharded-twin entry, so the shard-equivalence oracle replays on
	// every PR too.
	sharded := async("tears", 32, 5, true)
	sharded.Shards = 2
	sharded.MaxSteps = int64(sim.DefaultMaxSteps(sim.Config{
		N: sharded.N, F: sharded.F, D: sim.Time(sharded.D), Delta: sim.Time(sharded.Delta),
	}))
	return append(specs, sharded)
}

// livelockSeedSpec is the PR 4 livelock scenario as committed in the
// corpus: ears on a ring — the configuration whose [n]-wide informed-list
// obligations livelocked before the neighborhood-scoping fix — with the
// completion promise armed, so a regression times out and fires the
// completion oracle in every PR's replay pass.
func livelockSeedSpec() Spec {
	return finishSeedSpec(Spec{
		Protocol: "ears", N: 24, F: 0, D: 2, Delta: 2, Seed: 1234,
		Topology: topology.FamilyRing, TopologySeed: 7,
		Schedule:       ScheduleSpec{Kind: SchedStride, Seed: 51},
		Delay:          DelaySpec{Kind: DelayUniform, Seed: 52},
		ExpectComplete: true,
	})
}

// finishSeedSpec materializes the horizon the way the generator does.
func finishSeedSpec(s Spec) Spec {
	s.MaxSteps = int64(sim.DefaultMaxSteps(sim.Config{
		N: s.N, F: s.F, D: sim.Time(s.D), Delta: sim.Time(s.Delta),
	}))
	return s
}

// seedEntry executes one seed spec and builds its corpus entry with honest
// coverage bookkeeping (feature tuple and envelope ratios from the actual
// run). The spec must pass the whole oracle catalog.
func seedEntry(t *testing.T, s Spec, gen int64) *CorpusEntry {
	t.Helper()
	out, err := fuzzSpec(s, 0, gen, 0)
	if err != nil {
		t.Fatalf("seed spec %s: %v", s.Label(), err)
	}
	if out.report != nil {
		t.Fatalf("seed spec %s violates %s: %s", s.Label(),
			out.report.Violations[0].Oracle, out.report.Violations[0].Detail)
	}
	return &CorpusEntry{
		Schema:        CorpusSchema,
		Digest:        SpecDigest(s),
		Spec:          s,
		Feature:       out.feature,
		Tightness:     out.tightness(),
		Why:           "seed",
		AddedGen:      gen,
		ProductiveGen: gen,
	}
}

func TestSeedCorpusCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay in -short mode")
	}
	specs := seedSpecs()

	if *regenCorpusSeed {
		c := NewCorpus(0)
		for i, s := range specs {
			e := seedEntry(t, s, int64(i))
			c.entries[e.Digest] = e
		}
		if err := c.Save(corpusSeedDir); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d entries to %s", c.Len(), corpusSeedDir)
		return
	}

	c, err := LoadCorpus(corpusSeedDir, 0, func(path string, err error) {
		t.Errorf("corpus entry %s: %v", path, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != len(specs) {
		t.Fatalf("committed corpus holds %d entries, seed list has %d — regenerate with -regen-corpus-seed",
			c.Len(), len(specs))
	}
	protos := map[string]bool{}
	families := map[string]bool{}
	for i, s := range specs {
		if c.entries[SpecDigest(s)] == nil {
			t.Errorf("seed spec %d (%s) missing from committed corpus", i, s.Label())
		}
		protos[s.Protocol] = true
		topo := s.Topology
		if topo == "" {
			topo = topology.FamilyComplete
		}
		families[topo] = true
	}
	for _, p := range Protocols() {
		if !protos[p] {
			t.Errorf("no seed entry for protocol %s", p)
		}
	}
	for _, f := range append([]string{topology.FamilyComplete}, genSparseFamilies...) {
		if !families[f] {
			t.Errorf("no seed entry on topology family %s", f)
		}
	}
	if c.entries[SpecDigest(livelockSeedSpec())] == nil {
		t.Error("the PR 4 ears-ring livelock scenario is missing from the committed corpus")
	}

	// The regression pass CI runs on every PR: every entry replays clean.
	sum, err := ReplayCorpus(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Corpus == nil || sum.Corpus.Replayed != len(specs) {
		t.Fatalf("replayed %+v entries, want %d", sum.Corpus, len(specs))
	}
	if len(sum.Reports) != 0 {
		t.Fatalf("committed corpus violates oracles: %s: %s",
			sum.Reports[0].Violations[0].Oracle, sum.Reports[0].Violations[0].Detail)
	}
}
