package scenario

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestTelemetryObservationOnly pins the tentpole contract of the telemetry
// layer: attaching any combination of observers through ExecuteTraced leaves
// the event stream byte-identical. A sampler that consumed randomness,
// reordered events or mutated messages would shift the digest and fail here.
func TestTelemetryObservationOnly(t *testing.T) {
	spec := goldenSpec("ears", 24, 3)

	bare, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder(spec.N)
	chrome := telemetry.NewChromeTracer(0)
	nd := telemetry.NewNDJSONTracer(io.Discard)
	tl := trace.NewTimeline(spec.N, 120)
	traced, err := ExecuteTraced(spec, sim.Tee(rec, chrome, nd, tl))
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}

	if traced.Digest != bare.Digest || traced.Events != bare.Events {
		t.Errorf("telemetry perturbed the run: digest %#016x (%d events) with observers, %#016x (%d) without",
			traced.Digest, traced.Events, bare.Digest, bare.Events)
	}

	// The recorder must have seen the same stream the digest fingerprints:
	// steps + sends + delivers + crashes is exactly the event count.
	s := rec.Snapshot()
	if got := s.Steps + s.Sends + s.Delivers + s.Crashes; got != bare.Events {
		t.Errorf("recorder saw %d events, digest counted %d", got, bare.Events)
	}
	if s.Reached == 0 || s.MaxInFlight == 0 {
		t.Errorf("recorder samplers empty: %+v", s)
	}
	if chrome.Dropped() != 0 {
		t.Errorf("chrome tracer dropped %d events on a small run", chrome.Dropped())
	}
	var buf bytes.Buffer
	if err := chrome.Write(&buf); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkExecuteTelemetry reports the telemetry tax: the same pinned
// scenario with no extra observer versus with a Recorder riding along. CI
// runs this warn-only; the hard floor (telemetry off = zero allocations per
// event) is pinned by the AllocsPerRun tests in internal/sim, internal/core
// and internal/telemetry.
func BenchmarkExecuteTelemetry(b *testing.B) {
	spec := goldenSpec("ears", 24, 3)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Execute(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recorder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := telemetry.NewRecorder(spec.N)
			if _, err := ExecuteTraced(spec, rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
