// Package topology models the communication graph a gossip execution runs
// over. The paper (and the original reproduction) hard-codes the complete
// graph: EARS picks its target "uniform on [n]" and the simulator delivers
// any process→process message. Related work studies exactly what changes
// off the clique — asynchronous push-pull rumor spreading on Erdős–Rényi
// random graphs (Panagiotou & Speidel), gossip over sparse smartphone
// peer-to-peer meshes (Newport, Weaver & Zheng) — so this package opens a
// topology axis for every protocol, adversary and experiment:
//
//   - Graph is the abstraction: vertex count, degree, neighbor iteration,
//     uniform neighbor sampling, edge membership.
//   - Complete is the implicit clique preserving the paper's semantics
//     exactly (sampling is uniform on [n], self included, per Figure 2);
//     it is the default everywhere and reproduces pre-topology results
//     bit for bit.
//   - Generated families (ring, torus, random-regular, erdos-renyi,
//     watts-strogatz, barabasi-albert) are backed by a compact CSR
//     adjacency sized for N in the hundreds of thousands, deterministic
//     in the seed, and repaired to be connected where the family does not
//     guarantee it.
//   - Sampler adapts a vertex's neighborhood — or the legacy [n] universe
//     when no graph is configured — for protocol target selection.
//
// Vertices are plain ints (0..N-1) so the package stays free of simulator
// dependencies; the sim and core layers convert to their ProcID type.
package topology

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Graph is a finite undirected communication graph over vertices 0..N-1.
// Implementations are immutable after construction and safe for concurrent
// readers.
type Graph interface {
	// Name returns the family name ("complete", "ring", ...).
	Name() string
	// N returns the number of vertices.
	N() int
	// Degree returns the size of v's sampling universe. For generated
	// graphs this is the number of neighbors (self excluded); for Complete
	// it is N — the paper's "uniform on [n]" universe includes the sender.
	Degree(v int) int
	// Neighbors calls fn for each potential target of v in ascending
	// order, self excluded, stopping early if fn returns false.
	Neighbors(v int, fn func(q int) bool)
	// SampleNeighbor draws one target uniformly from v's sampling
	// universe. ok is false when v has no targets (isolated vertex).
	SampleNeighbor(v int, r *rng.RNG) (q int, ok bool)
	// SampleNeighbors draws k distinct targets uniformly from v's
	// sampling universe, in random order; if k exceeds the universe it
	// returns a permutation of the whole universe.
	SampleNeighbors(v, k int, r *rng.RNG) []int
	// HasEdge reports whether a message from u to v is deliverable.
	HasEdge(u, v int) bool
	// Edges returns the number of undirected edges.
	Edges() int64
}

// Family names accepted by Build.
const (
	FamilyComplete       = "complete"
	FamilyRing           = "ring"
	FamilyTorus          = "torus"
	FamilyRandomRegular  = "random-regular"
	FamilyErdosRenyi     = "erdos-renyi"
	FamilyWattsStrogatz  = "watts-strogatz"
	FamilyBarabasiAlbert = "barabasi-albert"
)

// Families lists the graph families Build accepts.
func Families() []string {
	return []string{
		FamilyComplete, FamilyRing, FamilyTorus, FamilyRandomRegular,
		FamilyErdosRenyi, FamilyWattsStrogatz, FamilyBarabasiAlbert,
	}
}

// Spec describes a graph to build. Param and Param2 are family-specific
// knobs; zero selects the documented default:
//
//	complete         — no parameters
//	ring             — no parameters
//	torus            — Param = row count (default: largest divisor of N
//	                   at most √N; 1, i.e. a ring, when N is prime)
//	random-regular   — Param = degree d (default 8; rounded up to even,
//	                   capped at N−1). Built as d/2 seeded Hamiltonian
//	                   cycles, so the graph is always connected.
//	erdos-renyi      — Param = edge probability p (default 2·ln N / N,
//	                   twice the connectivity threshold), followed by
//	                   connectivity repair.
//	watts-strogatz   — Param = lattice degree k (default 8; even, capped),
//	                   Param2 = rewiring probability β (default 0.1),
//	                   followed by connectivity repair.
//	barabasi-albert  — Param = attachment count m (default 4).
type Spec struct {
	// Family is one of the Family* names.
	Family string
	// N is the number of vertices.
	N int
	// Param, Param2 are the family parameters described above.
	Param, Param2 float64
	// Seed makes generation deterministic; the stream is forked with a
	// package-private tag so it is independent of protocol and adversary
	// randomness derived from the same run seed.
	Seed int64
}

// Build constructs the graph a Spec describes. Generated families are
// deterministic in the Spec: the same Spec always yields the same graph.
func Build(s Spec) (Graph, error) {
	if s.N < 1 {
		return nil, fmt.Errorf("topology: N = %d, need N >= 1", s.N)
	}
	r := rng.New(s.Seed).Fork(0x1090109e) // topology-private stream tag
	switch s.Family {
	case FamilyComplete, "":
		return Complete(s.N), nil
	case FamilyRing:
		return buildRing(s.N), nil
	case FamilyTorus:
		return buildTorus(s.N, int(s.Param))
	case FamilyRandomRegular:
		return buildRandomRegular(s.N, int(s.Param), r)
	case FamilyErdosRenyi:
		return buildErdosRenyi(s.N, s.Param, r)
	case FamilyWattsStrogatz:
		return buildWattsStrogatz(s.N, int(s.Param), s.Param2, r)
	case FamilyBarabasiAlbert:
		return buildBarabasiAlbert(s.N, int(s.Param), r)
	default:
		return nil, fmt.Errorf("topology: unknown family %q (have %v)", s.Family, Families())
	}
}

// defaultERProb is the erdos-renyi default edge probability: twice the
// ln N / N connectivity threshold, clamped to (0, 1].
func defaultERProb(n int) float64 {
	if n < 2 {
		return 1
	}
	p := 2 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// Complete is the paper's clique, represented implicitly (no adjacency is
// materialized, so it scales to any N). Its sampling semantics reproduce
// the original protocols exactly: SampleNeighbor is uniform on [n] with
// self included (Figure 2's "choose target uniformly at random"), and
// SampleNeighbors mirrors rng.Sample over [n]. Neighbor iteration, used
// for audience construction and broadcasts, excludes self. HasEdge is
// always true — self-sends are deliverable, as in the unfiltered model.
type Complete int

var _ Graph = Complete(0)

// Name implements Graph.
func (Complete) Name() string { return FamilyComplete }

// N implements Graph.
func (c Complete) N() int { return int(c) }

// Degree implements Graph: the sampling universe is all of [n].
func (c Complete) Degree(int) int { return int(c) }

// Neighbors implements Graph: every q ≠ v, ascending.
func (c Complete) Neighbors(v int, fn func(q int) bool) {
	for q := 0; q < int(c); q++ {
		if q == v {
			continue
		}
		if !fn(q) {
			return
		}
	}
}

// SampleNeighbor implements Graph: uniform on [n], self included.
func (c Complete) SampleNeighbor(_ int, r *rng.RNG) (int, bool) {
	if c < 1 {
		return 0, false
	}
	return r.Intn(int(c)), true
}

// SampleNeighbors implements Graph: k distinct uniform on [n].
func (c Complete) SampleNeighbors(_, k int, r *rng.RNG) []int {
	return r.Sample(int(c), k)
}

// HasEdge implements Graph.
func (Complete) HasEdge(_, _ int) bool { return true }

// Edges implements Graph.
func (c Complete) Edges() int64 { n := int64(c); return n * (n - 1) / 2 }

// Sampler draws communication targets for one vertex. A zero graph (nil)
// selects the legacy clique semantics over [n] directly, guaranteeing the
// exact random-stream draws of the pre-topology protocols; a non-nil graph
// delegates to it. Sampler is a small value type: copy freely.
type Sampler struct {
	self int
	n    int
	g    Graph
}

// NewSampler builds a sampler for vertex self in a system of n processes
// communicating over g (nil = unrestricted clique).
func NewSampler(self, n int, g Graph) Sampler {
	return Sampler{self: self, n: n, g: g}
}

// Degree returns the size of the sampling universe (n for the clique).
func (s Sampler) Degree() int {
	if s.g == nil {
		return s.n
	}
	return s.g.Degree(s.self)
}

// One draws one uniform target; ok is false if the vertex is isolated.
func (s Sampler) One(r *rng.RNG) (int, bool) {
	if s.g == nil {
		if s.n < 1 {
			return 0, false
		}
		return r.Intn(s.n), true
	}
	return s.g.SampleNeighbor(s.self, r)
}

// K draws k distinct uniform targets (all of them, permuted, if k exceeds
// the universe).
func (s Sampler) K(k int, r *rng.RNG) []int {
	if s.g == nil {
		return r.Sample(s.n, k)
	}
	return s.g.SampleNeighbors(s.self, k, r)
}

// KInto is K writing into dst (reusing its capacity): the same draws and
// targets with zero allocation once dst has grown to the fan-out. The
// built-in graphs (the implicit clique and every CSR-backed family) take
// the zero-allocation path; a custom Graph implementation falls back to
// its allocating SampleNeighbors, keeping the interface unchanged.
func (s Sampler) KInto(dst []int, k int, r *rng.RNG) []int {
	if s.g == nil {
		return r.SampleInto(dst, s.n, k)
	}
	switch g := s.g.(type) {
	case *CSR:
		return g.SampleNeighborsInto(dst, s.self, k, r)
	case Complete:
		return r.SampleInto(dst, int(g), k)
	default:
		return append(dst[:0], s.g.SampleNeighbors(s.self, k, r)...)
	}
}

// Each iterates the potential targets (self excluded) in ascending order,
// stopping early when fn returns false.
func (s Sampler) Each(fn func(q int) bool) {
	if s.g == nil {
		for q := 0; q < s.n; q++ {
			if q == s.self {
				continue
			}
			if !fn(q) {
				return
			}
		}
		return
	}
	s.g.Neighbors(s.self, fn)
}
