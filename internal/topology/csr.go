package topology

import (
	"sort"

	"repro/internal/rng"
)

// CSR is a compact adjacency representation of an undirected graph:
// neighbor lists of all vertices concatenated into one int32 slice with an
// offsets index. Memory is O(N + E) — 4 bytes per directed edge plus 8 per
// vertex — which keeps graphs with N in the hundreds of thousands and tens
// of millions of edges in a few hundred MB. Rows are sorted ascending and
// self-loop free, so HasEdge is a binary search and iteration is ordered.
type CSR struct {
	name     string
	off      []int64 // len N+1; row v is adj[off[v]:off[v+1]]
	adj      []int32
	repaired int // edges added by connectivity repair
}

var _ Graph = (*CSR)(nil)

// edge is an undirected edge under construction.
type edge struct{ u, v int32 }

// newCSR builds a CSR from an undirected edge list. Self-loops and
// duplicate edges (in either orientation) are dropped.
func newCSR(name string, n int, edges []edge) *CSR {
	// Normalize to u < v, encode into sortable keys, dedupe.
	keys := make([]uint64, 0, len(edges))
	for _, e := range edges {
		u, v := e.u, e.v
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		keys = append(keys, uint64(u)<<32|uint64(v))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	uniq := keys[:0]
	var prev uint64
	for i, k := range keys {
		if i > 0 && k == prev {
			continue
		}
		uniq = append(uniq, k)
		prev = k
	}

	// Count degrees, prefix-sum, fill both directions, sort rows.
	g := &CSR{name: name, off: make([]int64, n+1), adj: make([]int32, 2*len(uniq))}
	for _, k := range uniq {
		g.off[int32(k>>32)+1]++
		g.off[int32(k)+1]++
	}
	for v := 0; v < n; v++ {
		g.off[v+1] += g.off[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.off[:n])
	// Filling in global key order leaves every row already sorted: row w
	// receives its smaller neighbors first (as second components of the
	// u<w blocks, ascending in u) and then its larger neighbors (the u=w
	// block, ascending in v) — no per-row sort needed.
	for _, k := range uniq {
		u, v := int32(k>>32), int32(k)
		g.adj[cursor[u]] = v
		cursor[u]++
		g.adj[cursor[v]] = u
		cursor[v]++
	}
	return g
}

// Name implements Graph.
func (g *CSR) Name() string { return g.name }

// N implements Graph.
func (g *CSR) N() int { return len(g.off) - 1 }

// Degree implements Graph.
func (g *CSR) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors implements Graph.
func (g *CSR) Neighbors(v int, fn func(q int) bool) {
	for _, q := range g.adj[g.off[v]:g.off[v+1]] {
		if !fn(int(q)) {
			return
		}
	}
}

// SampleNeighbor implements Graph.
func (g *CSR) SampleNeighbor(v int, r *rng.RNG) (int, bool) {
	deg := int(g.off[v+1] - g.off[v])
	if deg == 0 {
		return 0, false
	}
	return int(g.adj[g.off[v]+int64(r.Intn(deg))]), true
}

// SampleNeighbors implements Graph.
func (g *CSR) SampleNeighbors(v, k int, r *rng.RNG) []int {
	row := g.adj[g.off[v]:g.off[v+1]]
	idx := r.Sample(len(row), k)
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = int(row[j])
	}
	return out
}

// SampleNeighborsInto is SampleNeighbors writing into dst (reusing its
// capacity): identical draws and results, no per-call allocation once the
// scratch buffer has grown to the fan-out. Sampling row indices is O(k),
// so a pick is O(1) per target with the CSR row as the only indirection.
func (g *CSR) SampleNeighborsInto(dst []int, v, k int, r *rng.RNG) []int {
	row := g.adj[g.off[v]:g.off[v+1]]
	dst = r.SampleInto(dst, len(row), k)
	for i, j := range dst {
		dst[i] = int(row[j])
	}
	return dst
}

// HasEdge implements Graph: binary search in u's sorted row. Self-loops
// never exist in a CSR, so HasEdge(v, v) is false — protocols running on
// explicit topologies address real neighbors only.
func (g *CSR) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	row := g.adj[g.off[u]:g.off[u+1]]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// Edges implements Graph.
func (g *CSR) Edges() int64 { return int64(len(g.adj)) / 2 }

// Repaired returns the number of edges the connectivity repair added
// (0 for families connected by construction).
func (g *CSR) Repaired() int { return g.repaired }

// Connected reports whether the graph is connected (true for N ≤ 1).
func (g *CSR) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range g.adj[g.off[v]:g.off[v+1]] {
			if !seen[q] {
				seen[q] = true
				count++
				stack = append(stack, q)
			}
		}
	}
	return count == n
}

// repairConnectivity links every component of the edge list to the
// component of vertex 0 with one extra edge between seeded-random member
// vertices, returning the extended list and the number of edges added.
// Generators whose family does not guarantee connectivity (erdos-renyi,
// watts-strogatz) call this so sparse parameterizations still yield graphs
// every gossip protocol can complete on.
func repairConnectivity(n int, edges []edge, r *rng.RNG) ([]edge, int) {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range edges {
		union(e.u, e.v)
	}
	// Group members by root; component order follows vertex order, so the
	// repair is deterministic given the edge list and stream.
	members := make(map[int32][]int32)
	var roots []int32
	for v := int32(0); v < int32(n); v++ {
		rt := find(v)
		if _, ok := members[rt]; !ok {
			roots = append(roots, rt)
		}
		members[rt] = append(members[rt], v)
	}
	added := 0
	base := members[roots[0]]
	for _, rt := range roots[1:] {
		comp := members[rt]
		u := comp[r.Intn(len(comp))]
		v := base[r.Intn(len(base))]
		edges = append(edges, edge{u, v})
		added++
	}
	return edges, added
}
