package topology

import (
	"testing"

	"repro/internal/rng"
)

// Native fuzz target for the CSR sampler's zero-allocation variant:
// SampleNeighborsInto must return exactly the targets of SampleNeighbors
// while consuming exactly the same draws, across every graph family,
// vertex and fan-out. The seed corpus runs on every `go test`; `-fuzz`
// explores the space.

func FuzzCSRSampleNeighborsInto(f *testing.F) {
	f.Add(int64(1), int64(7), 0, 0, 2)
	f.Add(int64(3), int64(9), 1, 5, 8)
	f.Add(int64(-2), int64(11), 4, 63, 64) // k >= degree: whole-row permutation
	f.Add(int64(8), int64(0), 2, 17, 0)    // k = 0
	f.Fuzz(func(t *testing.T, seed, topoSeed int64, famSel, v, k int) {
		families := []string{
			FamilyRing, FamilyTorus, FamilyRandomRegular,
			FamilyErdosRenyi, FamilyWattsStrogatz, FamilyBarabasiAlbert,
		}
		fam := families[abs(famSel)%len(families)]
		n := 8 + abs(v)%57 // 8..64
		g, err := Build(Spec{Family: fam, N: n, Seed: topoSeed})
		if err != nil {
			t.Fatalf("Build(%s, n=%d): %v", fam, n, err)
		}
		csr, ok := g.(*CSR)
		if !ok {
			t.Fatalf("%s did not build a CSR", fam)
		}
		vertex := abs(v) % n
		fanout := abs(k) % (csr.Degree(vertex) + 4) // cover k > degree

		a := rng.New(seed)
		b := a.Clone()
		want := csr.SampleNeighbors(vertex, fanout, a)
		got := csr.SampleNeighborsInto(make([]int, 0, 2), vertex, fanout, b)
		if len(want) != len(got) {
			t.Fatalf("%s n=%d v=%d k=%d: Into returned %d targets, allocating %d",
				fam, n, vertex, fanout, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s n=%d v=%d k=%d: targets diverge at %d: %v vs %v",
					fam, n, vertex, fanout, i, got, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("%s n=%d v=%d k=%d: draw sequences diverge", fam, n, vertex, fanout)
		}
		// Every target is a real neighbor, and distinct.
		seen := map[int]bool{}
		for _, q := range got {
			if !csr.HasEdge(vertex, q) {
				t.Fatalf("sampled non-neighbor %d of %d", q, vertex)
			}
			if seen[q] {
				t.Fatalf("duplicate target %d", q)
			}
			seen[q] = true
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
