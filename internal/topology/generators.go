package topology

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// buildRing returns the cycle graph C_n (a path for n = 2, a single vertex
// for n = 1). Connected by construction; degree 2 for n ≥ 3.
func buildRing(n int) *CSR {
	edges := make([]edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, edge{int32(v), int32((v + 1) % n)})
	}
	return newCSR(FamilyRing, n, edges)
}

// buildTorus returns a rows×cols wrap-around grid with rows·cols = n.
// rows = 0 selects the largest divisor of n at most √n, which degenerates
// to a ring when n is prime. Connected by construction; degree ≤ 4.
func buildTorus(n, rows int) (*CSR, error) {
	if rows == 0 {
		rows = 1
		for d := int(math.Sqrt(float64(n))); d >= 1; d-- {
			if n%d == 0 {
				rows = d
				break
			}
		}
	}
	if rows < 1 || n%rows != 0 {
		return nil, fmt.Errorf("topology: torus rows = %d does not divide N = %d", rows, n)
	}
	cols := n / rows
	var edges []edge
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			v := int32(row*cols + col)
			if cols > 1 {
				edges = append(edges, edge{v, int32(row*cols + (col+1)%cols)})
			}
			if rows > 1 {
				edges = append(edges, edge{v, int32(((row+1)%rows)*cols + col)})
			}
		}
	}
	return newCSR(FamilyTorus, n, edges), nil
}

// buildRandomRegular returns a near-d-regular graph as the union of d/2
// seeded random Hamiltonian cycles. The first cycle alone makes the graph
// connected, so no repair is needed; overlapping cycle edges merge, so
// degrees lie in [2, d]. d defaults to 8, is rounded up to even, and is
// capped at n−1.
func buildRandomRegular(n, d int, r *rng.RNG) (*CSR, error) {
	if d == 0 {
		d = 8
	}
	if d < 0 {
		return nil, fmt.Errorf("topology: random-regular degree = %d, need >= 1", d)
	}
	if d%2 == 1 {
		d++ // rounded up to even, as documented (d=1 becomes a ring-like 2)
	}
	if d > n-1 {
		d = n - 1
	}
	layers := d / 2
	if layers < 1 {
		layers = 1
	}
	edges := make([]edge, 0, layers*n)
	for l := 0; l < layers; l++ {
		perm := r.Perm(n)
		for i := 0; i < n; i++ {
			edges = append(edges, edge{int32(perm[i]), int32(perm[(i+1)%n])})
		}
	}
	return newCSR(FamilyRandomRegular, n, edges), nil
}

// buildErdosRenyi returns G(n, p) with connectivity repair. p defaults to
// 2·ln n / n — twice the connectivity threshold, so repair is rarely
// needed at that setting. Edge generation uses geometric skip sampling
// (Batagelj–Brandes), so the cost is O(E), not O(n²), and graphs with n in
// the hundreds of thousands stay cheap at sparse p.
func buildErdosRenyi(n int, p float64, r *rng.RNG) (*CSR, error) {
	if p == 0 {
		p = defaultERProb(n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: erdos-renyi p = %v, need 0 <= p <= 1", p)
	}
	var edges []edge
	switch {
	case p >= 1:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, edge{int32(u), int32(v)})
			}
		}
	case p > 0:
		lq := math.Log(1 - p)
		v, w := 1, -1
		for v < n {
			lr := math.Log(1 - r.Float64())
			skip := lr / lq
			if skip > float64(n)*float64(n) {
				break // beyond the last pair; avoids int-conversion overflow
			}
			w += 1 + int(skip)
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				edges = append(edges, edge{int32(w), int32(v)})
			}
		}
	}
	edges, added := repairConnectivity(n, edges, r)
	g := newCSR(FamilyErdosRenyi, n, edges)
	g.repaired = added
	return g, nil
}

// buildWattsStrogatz returns a small-world graph: a ring lattice where
// each vertex connects to its k/2 nearest neighbors on each side, with
// every lattice edge's far endpoint rewired to a uniform random vertex
// with probability beta, then connectivity repair. k defaults to 8 (even,
// capped at n−1); beta defaults to 0.1.
func buildWattsStrogatz(n, k int, beta float64, r *rng.RNG) (*CSR, error) {
	if k == 0 {
		k = 8
	}
	if k < 2 {
		return nil, fmt.Errorf("topology: watts-strogatz k = %d, need >= 2", k)
	}
	if k%2 == 1 {
		k++
	}
	if k > n-1 {
		k = n - 1
	}
	if beta == 0 {
		beta = 0.1
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topology: watts-strogatz beta = %v, need 0 <= beta <= 1", beta)
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	present := make(map[uint64]bool, n*half)
	key := func(u, v int) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	edges := make([]edge, 0, n*half)
	addEdge := func(u, v int) bool {
		if u == v || present[key(u, v)] {
			return false
		}
		present[key(u, v)] = true
		edges = append(edges, edge{int32(u), int32(v)})
		return true
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= half; j++ {
			addEdge(v, (v+j)%n)
		}
	}
	// Rewire pass: each lattice edge (v, v+j) keeps v and, with
	// probability beta, trades its lattice endpoint for a uniform one.
	for i := range edges {
		if !r.Bool(beta) {
			continue
		}
		u := int(edges[i].u)
		for attempt := 0; attempt < 16; attempt++ {
			w := r.Intn(n)
			if w == u || present[key(u, w)] {
				continue
			}
			delete(present, key(u, int(edges[i].v)))
			present[key(u, w)] = true
			edges[i].v = int32(w)
			break
		}
	}
	edges, added := repairConnectivity(n, edges, r)
	g := newCSR(FamilyWattsStrogatz, n, edges)
	g.repaired = added
	return g, nil
}

// buildBarabasiAlbert returns a preferential-attachment scale-free graph:
// an initial (m+1)-clique, then each new vertex attaches to m distinct
// existing vertices chosen proportionally to their degree (via the
// repeated-endpoint list). Connected by construction; minimum degree m.
// m defaults to 4 and is capped at n−1.
func buildBarabasiAlbert(n, m int, r *rng.RNG) (*CSR, error) {
	if m == 0 {
		m = 4
	}
	if m < 1 {
		return nil, fmt.Errorf("topology: barabasi-albert m = %d, need >= 1", m)
	}
	if m > n-1 {
		m = n - 1
	}
	if m < 1 {
		m = 1 // n == 1: no edges below anyway
	}
	m0 := m + 1
	if m0 > n {
		m0 = n
	}
	var edges []edge
	// repeated holds every edge endpoint once per incidence; sampling it
	// uniformly is sampling vertices proportionally to degree.
	repeated := make([]int32, 0, 2*m*n)
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			edges = append(edges, edge{int32(u), int32(v)})
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	chosen := make(map[int32]bool, m)
	targets := make([]int32, 0, m)
	for v := m0; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		targets = targets[:0]
		// Endpoints of v's own edges join the sampling list only after all
		// m targets are chosen: sampling v itself would create a dropped
		// self-loop and silently lower its degree below m. Targets are
		// appended in selection order to keep generation deterministic.
		for len(chosen) < m {
			t := repeated[r.Intn(len(repeated))]
			if chosen[t] {
				continue
			}
			chosen[t] = true
			targets = append(targets, t)
			edges = append(edges, edge{int32(v), t})
		}
		for _, t := range targets {
			repeated = append(repeated, int32(v), t)
		}
	}
	return newCSR(FamilyBarabasiAlbert, n, edges), nil
}
