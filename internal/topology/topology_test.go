package topology

import (
	"testing"

	"repro/internal/rng"
)

// specsUnderTest enumerates every family across its documented parameter
// range at several sizes, including awkward ones (tiny, prime, power of
// two).
func specsUnderTest() []Spec {
	var specs []Spec
	ns := []int{2, 3, 5, 16, 64, 257, 1000}
	for _, n := range ns {
		specs = append(specs,
			Spec{Family: FamilyRing, N: n, Seed: 1},
			Spec{Family: FamilyTorus, N: n, Seed: 1},
			Spec{Family: FamilyRandomRegular, N: n, Seed: 1},
			Spec{Family: FamilyRandomRegular, N: n, Param: 4, Seed: 1},
			Spec{Family: FamilyErdosRenyi, N: n, Seed: 1},
			Spec{Family: FamilyErdosRenyi, N: n, Param: 0.02, Seed: 1}, // sub-threshold: repair must reconnect
			Spec{Family: FamilyWattsStrogatz, N: n, Seed: 1},
			Spec{Family: FamilyWattsStrogatz, N: n, Param: 4, Param2: 0.5, Seed: 1},
			Spec{Family: FamilyBarabasiAlbert, N: n, Seed: 1},
			Spec{Family: FamilyBarabasiAlbert, N: n, Param: 2, Seed: 1},
		)
	}
	return specs
}

func buildCSR(t *testing.T, s Spec) *CSR {
	t.Helper()
	g, err := Build(s)
	if err != nil {
		t.Fatalf("Build(%+v): %v", s, err)
	}
	c, ok := g.(*CSR)
	if !ok {
		t.Fatalf("Build(%+v) returned %T, want *CSR", s, g)
	}
	return c
}

// TestGeneratorsConnected: every generated family is connected at every
// documented parameter range (via construction or repair).
func TestGeneratorsConnected(t *testing.T) {
	for _, s := range specsUnderTest() {
		g := buildCSR(t, s)
		if !g.Connected() {
			t.Errorf("%s n=%d param=%v,%v: not connected (%d edges, %d repaired)",
				s.Family, s.N, s.Param, s.Param2, g.Edges(), g.Repaired())
		}
	}
}

// TestCSRInvariants: rows sorted strictly ascending (no duplicates), no
// self-loops, adjacency symmetric, degrees consistent with HasEdge.
func TestCSRInvariants(t *testing.T) {
	for _, s := range specsUnderTest() {
		g := buildCSR(t, s)
		n := g.N()
		if n != s.N {
			t.Fatalf("%s: N = %d, want %d", s.Family, n, s.N)
		}
		for v := 0; v < n; v++ {
			prev := -1
			g.Neighbors(v, func(q int) bool {
				if q == v {
					t.Errorf("%s n=%d: self-loop at %d", s.Family, s.N, v)
				}
				if q <= prev {
					t.Errorf("%s n=%d: row %d not strictly ascending (%d after %d)", s.Family, s.N, v, q, prev)
				}
				prev = q
				if !g.HasEdge(v, q) || !g.HasEdge(q, v) {
					t.Errorf("%s n=%d: edge (%d,%d) not symmetric under HasEdge", s.Family, s.N, v, q)
				}
				return true
			})
		}
	}
}

// TestDegreeBounds: documented per-family degree bounds hold.
func TestDegreeBounds(t *testing.T) {
	check := func(s Spec, lo, hi int) {
		t.Helper()
		g := buildCSR(t, s)
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			if d < lo || d > hi {
				t.Errorf("%s n=%d param=%v: degree(%d) = %d, want [%d, %d]",
					s.Family, s.N, s.Param, v, d, lo, hi)
			}
		}
	}
	// Ring: degree 2 (1 at n=2).
	check(Spec{Family: FamilyRing, N: 64, Seed: 1}, 2, 2)
	check(Spec{Family: FamilyRing, N: 2, Seed: 1}, 1, 1)
	// Torus: degree ≤ 4, ≥ 2 on a proper grid.
	check(Spec{Family: FamilyTorus, N: 64, Seed: 1}, 2, 4)
	// Random-regular(8): cycles overlap, so [2, 8].
	check(Spec{Family: FamilyRandomRegular, N: 256, Param: 8, Seed: 1}, 2, 8)
	// Watts-Strogatz(8): each vertex keeps its k/2 own lattice edges; the
	// far side can be rewired away, and rewiring toward it can add more.
	check(Spec{Family: FamilyWattsStrogatz, N: 256, Param: 8, Seed: 1}, 4, 256)
	// Barabási–Albert(4): attachment guarantees m, the hub can be large.
	check(Spec{Family: FamilyBarabasiAlbert, N: 256, Param: 4, Seed: 1}, 4, 256)
}

// TestSeedDeterminism: the same Spec yields an identical graph; a
// different seed yields a different one (for randomized families at sizes
// where collision is implausible).
func TestSeedDeterminism(t *testing.T) {
	for _, s := range specsUnderTest() {
		a, b := buildCSR(t, s), buildCSR(t, s)
		if len(a.adj) != len(b.adj) {
			t.Fatalf("%s n=%d: edge counts differ across identical specs", s.Family, s.N)
		}
		for i := range a.adj {
			if a.adj[i] != b.adj[i] {
				t.Fatalf("%s n=%d: adjacency differs across identical specs", s.Family, s.N)
			}
		}
	}
	s1 := Spec{Family: FamilyErdosRenyi, N: 256, Seed: 1}
	s2 := Spec{Family: FamilyErdosRenyi, N: 256, Seed: 2}
	a, b := buildCSR(t, s1), buildCSR(t, s2)
	same := len(a.adj) == len(b.adj)
	if same {
		for i := range a.adj {
			if a.adj[i] != b.adj[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("erdos-renyi: seeds 1 and 2 produced identical graphs")
	}
}

// TestCompleteSemantics: Complete preserves the paper's clique semantics —
// SampleNeighbor is uniform on [n] with self included (bit-identical to
// rng.Intn), SampleNeighbors mirrors rng.Sample, iteration excludes self,
// HasEdge is total.
func TestCompleteSemantics(t *testing.T) {
	const n = 17
	g := Complete(n)
	if g.Degree(3) != n {
		t.Fatalf("Degree = %d, want %d", g.Degree(3), n)
	}
	r1, r2 := rng.New(9), rng.New(9)
	for i := 0; i < 100; i++ {
		q, ok := g.SampleNeighbor(3, r1)
		if !ok || q != r2.Intn(n) {
			t.Fatal("SampleNeighbor diverges from legacy rng.Intn stream")
		}
	}
	ks := g.SampleNeighbors(3, 5, r1)
	ws := r2.Sample(n, 5)
	for i := range ks {
		if ks[i] != ws[i] {
			t.Fatal("SampleNeighbors diverges from legacy rng.Sample stream")
		}
	}
	count := 0
	g.Neighbors(5, func(q int) bool {
		if q == 5 {
			t.Fatal("Neighbors iterated self")
		}
		count++
		return true
	})
	if count != n-1 {
		t.Fatalf("Neighbors visited %d, want %d", count, n-1)
	}
	if !g.HasEdge(2, 2) || !g.HasEdge(0, 16) {
		t.Fatal("Complete.HasEdge must be total (self-sends deliverable)")
	}
}

// TestSamplerLegacyEquivalence: a nil-graph Sampler and a Complete-graph
// Sampler draw identical streams — the property that makes the default
// and Topology:"complete" reproduce pre-topology runs exactly.
func TestSamplerLegacyEquivalence(t *testing.T) {
	const n = 23
	nilS := NewSampler(7, n, nil)
	cmpS := NewSampler(7, n, Complete(n))
	r1, r2 := rng.New(5), rng.New(5)
	for i := 0; i < 50; i++ {
		a, okA := nilS.One(r1)
		b, okB := cmpS.One(r2)
		if a != b || okA != okB {
			t.Fatal("One diverges between nil and Complete samplers")
		}
	}
	ka, kb := nilS.K(6, r1), cmpS.K(6, r2)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("K diverges between nil and Complete samplers")
		}
	}
	var ea, eb []int
	nilS.Each(func(q int) bool { ea = append(ea, q); return true })
	cmpS.Each(func(q int) bool { eb = append(eb, q); return true })
	if len(ea) != len(eb) {
		t.Fatal("Each visits different target sets")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("Each order diverges between nil and Complete samplers")
		}
	}
}

// TestSamplerOnGraph: samples and iteration stay inside the neighborhood.
func TestSamplerOnGraph(t *testing.T) {
	g := buildCSR(t, Spec{Family: FamilyRandomRegular, N: 64, Param: 6, Seed: 3})
	r := rng.New(11)
	for v := 0; v < g.N(); v += 7 {
		s := NewSampler(v, g.N(), g)
		for i := 0; i < 30; i++ {
			q, ok := s.One(r)
			if !ok || !g.HasEdge(v, q) {
				t.Fatalf("One(%d) = %d: not a neighbor", v, q)
			}
		}
		for _, q := range s.K(100, r) {
			if !g.HasEdge(v, q) {
				t.Fatalf("K(%d) yielded non-neighbor %d", v, q)
			}
		}
		if got := len(s.K(100, r)); got != g.Degree(v) {
			t.Fatalf("K over-asking returned %d targets, want degree %d", got, g.Degree(v))
		}
	}
}

// TestTorusRows: the rows parameter must divide n.
func TestTorusRows(t *testing.T) {
	if _, err := Build(Spec{Family: FamilyTorus, N: 10, Param: 3, Seed: 1}); err == nil {
		t.Fatal("torus with rows=3, n=10 should fail")
	}
	g := buildCSR(t, Spec{Family: FamilyTorus, N: 12, Param: 3, Seed: 1})
	if !g.Connected() {
		t.Fatal("3×4 torus not connected")
	}
}

// TestBuildErrors: unknown families and bad parameters are rejected.
func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{Family: "moebius", N: 8}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := Build(Spec{Family: FamilyErdosRenyi, N: 8, Param: 1.5}); err == nil {
		t.Fatal("erdos-renyi p > 1 accepted")
	}
	if _, err := Build(Spec{Family: FamilyComplete, N: 0}); err == nil {
		t.Fatal("N = 0 accepted")
	}
}

// TestLargeSparseGraph: generation at N in the hundreds of thousands is
// feasible and the CSR stays compact (the skip-sampling path, not O(n²)).
func TestLargeSparseGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph generation")
	}
	const n = 200_000
	g := buildCSR(t, Spec{Family: FamilyErdosRenyi, N: n, Seed: 1})
	if !g.Connected() {
		t.Fatal("large erdos-renyi not connected")
	}
	meanDeg := 2 * float64(g.Edges()) / float64(n)
	// p = 2 ln n / n ⇒ mean degree ≈ 2 ln n ≈ 24.4.
	if meanDeg < 20 || meanDeg > 29 {
		t.Fatalf("mean degree %.1f, want ≈ 24.4", meanDeg)
	}
}
