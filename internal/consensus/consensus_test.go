package consensus

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/bitset"
	"repro/internal/sim"
)

// runConsensus executes one consensus run and returns the result.
func runConsensus(t *testing.T, p Params, inputs []uint8, cfg sim.Config, preset string) sim.Result {
	t.Helper()
	res, err := tryRunConsensus(p, inputs, cfg, preset)
	if err != nil {
		t.Fatalf("%s/%s (n=%d f=%d d=%d δ=%d seed=%d): %v",
			p.Transport, preset, cfg.N, cfg.F, cfg.D, cfg.Delta, cfg.Seed, err)
	}
	return res
}

func tryRunConsensus(p Params, inputs []uint8, cfg sim.Config, preset string) (sim.Result, error) {
	p.N, p.F = cfg.N, cfg.F
	nodes, err := NewNodes(p, inputs, cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(Evaluator{Inputs: inputs})
}

func TestDirectUnanimousDecidesRoundOne(t *testing.T) {
	for _, v := range []uint8{0, 1} {
		cfg := sim.Config{N: 16, F: 0, D: 1, Delta: 1, Seed: 1}
		inputs := UniformInputs(16, v)
		res := runConsensus(t, Params{Transport: TransportDirect}, inputs, cfg, adversary.PresetBenign)
		if !res.Completed {
			t.Fatalf("v=%d: %+v", v, res)
		}
	}
}

func TestDirectMixedInputsAllPresets(t *testing.T) {
	for _, preset := range adversary.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				cfg := sim.Config{N: 32, F: 15, D: 3, Delta: 2, Seed: seed}
				inputs := RandomInputs(32, seed)
				res := runConsensus(t, Params{Transport: TransportDirect}, inputs, cfg, preset)
				if !res.Completed {
					t.Fatalf("seed %d: %+v", seed, res)
				}
			}
		})
	}
}

func TestGossipTransportsAllPresets(t *testing.T) {
	for _, kind := range []TransportKind{TransportEARS, TransportSEARS, TransportTEARS} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for _, preset := range adversary.Presets() {
				for seed := int64(0); seed < 2; seed++ {
					cfg := sim.Config{N: 48, F: 23, D: 2, Delta: 2, Seed: seed}
					inputs := RandomInputs(48, seed+50)
					res := runConsensus(t, Params{Transport: kind}, inputs, cfg, preset)
					if !res.Completed {
						t.Fatalf("%s seed %d: %+v", preset, seed, res)
					}
				}
			}
		})
	}
}

func TestValidityUnanimousUnderCrashes(t *testing.T) {
	// With unanimous input v, the decision must be v — no coin can
	// overturn it even with maximal minority failures.
	for _, kind := range TransportKinds() {
		cfg := sim.Config{N: 24, F: 11, D: 2, Delta: 1, Seed: 9}
		inputs := UniformInputs(24, 1)
		p := Params{Transport: kind}
		p.N, p.F = cfg.N, cfg.F
		nodes, err := NewNodes(p, inputs, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		adv, _ := adversary.ByName(adversary.PresetCrashStorm, cfg)
		w, err := sim.NewWorld(cfg, nodes, adv)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(Evaluator{Inputs: inputs}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, nd := range nodes {
			if decided, v, _ := nd.(*Node).Decided(); decided && v != 1 {
				t.Fatalf("%s: node decided %d on unanimous input 1", kind, v)
			}
		}
	}
}

func TestCommonCorePropertyDirect(t *testing.T) {
	// After any run, the outputs of the first get-core must share a common
	// core of at least ⌊n/2⌋+1 votes (the get-core guarantee the agreement
	// proof rests on).
	cfg := sim.Config{N: 32, F: 15, D: 3, Delta: 2, Seed: 4}
	checkCommonCore(t, Params{Transport: TransportDirect}, cfg)
}

func TestCommonCorePropertyEARS(t *testing.T) {
	cfg := sim.Config{N: 32, F: 15, D: 2, Delta: 2, Seed: 5}
	checkCommonCore(t, Params{Transport: TransportEARS}, cfg)
}

func TestCommonCorePropertyTEARS(t *testing.T) {
	cfg := sim.Config{N: 64, F: 31, D: 2, Delta: 2, Seed: 6}
	checkCommonCore(t, Params{Transport: TransportTEARS}, cfg)
}

func checkCommonCore(t *testing.T, p Params, cfg sim.Config) {
	t.Helper()
	p.N, p.F = cfg.N, cfg.F
	inputs := RandomInputs(cfg.N, cfg.Seed+31)
	nodes, err := NewNodes(p, inputs, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv, _ := adversary.ByName(adversary.PresetStandard, cfg)
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(Evaluator{Inputs: inputs}); err != nil {
		t.Fatal(err)
	}
	maj := cfg.N/2 + 1
	var common *bitset.Set
	for i, nd := range nodes {
		cn := nd.(*Node)
		if !w.Alive(sim.ProcID(i)) {
			continue
		}
		outs := cn.Outputs()
		if len(outs) == 0 {
			t.Fatalf("correct node %d completed no get-core", i)
		}
		if got := outs[0].Set.Count(); got < maj {
			t.Fatalf("node %d's first get-core output has %d votes, need ≥ %d", i, got, maj)
		}
		if common == nil {
			common = outs[0].Set.Clone()
		} else {
			common.IntersectWith(outs[0].Set)
		}
	}
	if common == nil {
		t.Fatal("no correct nodes")
	}
	if got := common.Count(); got < maj {
		t.Fatalf("common core size %d below majority %d", got, maj)
	}
}

func TestLocalCoinSmallN(t *testing.T) {
	// Ben-Or ablation: local coins still terminate for small n (expected
	// exponential in the worst case, fast in practice at n=8).
	for seed := int64(0); seed < 5; seed++ {
		cfg := sim.Config{N: 8, F: 3, D: 1, Delta: 1, Seed: seed}
		inputs := RandomInputs(8, seed)
		p := Params{Transport: TransportDirect, Coin: NewLocalCoin(seed)}
		res := runConsensus(t, p, inputs, cfg, adversary.PresetStandard)
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestSingleProcessDecidesAlone(t *testing.T) {
	cfg := sim.Config{N: 1, F: 0, D: 1, Delta: 1, Seed: 1}
	res := runConsensus(t, Params{Transport: TransportDirect}, []uint8{1}, cfg, adversary.PresetBenign)
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewNodes(Params{N: 4, F: 2}, UniformInputs(4, 0), 1); err == nil {
		t.Fatal("F = N/2 accepted (need strict minority)")
	}
	if _, err := NewNodes(Params{N: 4, F: 1}, UniformInputs(3, 0), 1); err == nil {
		t.Fatal("wrong input count accepted")
	}
	if _, err := NewNodes(Params{N: 4, F: 1, Transport: "bogus"}, UniformInputs(4, 0), 1); err == nil {
		t.Fatal("bogus transport accepted")
	}
	if _, err := NewNode(0, 7, Params{N: 4, F: 1}.WithDefaults(), nil, NewCommonCoin(1)); err == nil {
		t.Fatal("non-binary input accepted")
	}
}

func TestDeterministicReplayConsensus(t *testing.T) {
	for _, kind := range TransportKinds() {
		cfg := sim.Config{N: 24, F: 11, D: 2, Delta: 2, Seed: 3}
		inputs := RandomInputs(24, 77)
		r1, e1 := tryRunConsensus(Params{Transport: kind}, inputs, cfg, adversary.PresetStandard)
		r2, e2 := tryRunConsensus(Params{Transport: kind}, inputs, cfg, adversary.PresetStandard)
		if e1 != nil || e2 != nil {
			t.Fatalf("%s: %v / %v", kind, e1, e2)
		}
		if r1 != r2 {
			t.Fatalf("%s: replay diverged", kind)
		}
	}
}

func TestDirectMessageComplexityQuadratic(t *testing.T) {
	// Table 2 row 1: the CR baseline sends Θ(n²) messages. Check the
	// measured count sits within sane constant factors of n².
	cfg := sim.Config{N: 64, F: 0, D: 1, Delta: 1, Seed: 8}
	inputs := RandomInputs(64, 8)
	res := runConsensus(t, Params{Transport: TransportDirect}, inputs, cfg, adversary.PresetBenign)
	n2 := int64(64 * 64)
	if res.Messages < n2 || res.Messages > 40*n2 {
		t.Fatalf("direct consensus messages %d implausible for Θ(n²) = %d", res.Messages, n2)
	}
}

// Property: consensus completes (agreement + validity + termination) for
// random small configurations across transports and presets.
func TestQuickConsensusAlwaysCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	presets := adversary.Presets()
	kinds := TransportKinds()
	check := func(nRaw, fRaw, dRaw, deltaRaw, kSel, aSel uint8, seed int64) bool {
		n := 8 + int(nRaw)%40 // 8..47
		f := int(fRaw) % ((n + 1) / 2)
		if 2*f >= n {
			f = (n - 1) / 2
		}
		d := 1 + int(dRaw)%3
		delta := 1 + int(deltaRaw)%3
		kind := kinds[int(kSel)%len(kinds)]
		preset := presets[int(aSel)%len(presets)]
		cfg := sim.Config{N: n, F: f, D: sim.Time(d), Delta: sim.Time(delta), Seed: seed}
		inputs := RandomInputs(n, seed+7)
		res, err := tryRunConsensus(Params{Transport: kind}, inputs, cfg, preset)
		if err != nil {
			t.Logf("FAIL CR-%s/%s n=%d f=%d d=%d δ=%d seed=%d: %v",
				kind, preset, n, f, d, delta, seed, err)
			return false
		}
		return res.Completed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
