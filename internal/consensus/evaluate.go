package consensus

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// NewNodes builds the n consensus nodes for the given binary inputs. Node
// randomness and the default common coin both derive from seed (through
// independent forks); the adversary stream must come from a different tag,
// which adversary.Standard already guarantees.
func NewNodes(p Params, inputs []uint8, seed int64) ([]sim.Node, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(inputs) != p.N {
		return nil, fmt.Errorf("consensus: %d inputs for N = %d", len(inputs), p.N)
	}
	coin := p.Coin
	if coin == nil {
		coin = NewCommonCoin(seed)
	}
	root := rng.New(seed).Fork(0xC0465)
	nodes := make([]sim.Node, p.N)
	for i := range nodes {
		nd, err := NewNode(sim.ProcID(i), inputs[i], p, root.Fork(uint64(i)), coin)
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
	}
	return nodes, nil
}

// RandomInputs returns n uniform binary inputs.
func RandomInputs(n int, seed int64) []uint8 {
	r := rng.New(seed).Fork(0x1A9)
	in := make([]uint8, n)
	for i := range in {
		in[i] = uint8(r.Uint64() & 1)
	}
	return in
}

// UniformInputs returns n copies of v.
func UniformInputs(n int, v uint8) []uint8 {
	in := make([]uint8, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// Evaluator judges a consensus run:
//
//	Agreement   — every decided process (correct or crashed) decided the
//	              same value;
//	Validity    — the decision is some process's input;
//	Termination — every correct process decided.
//
// CompletedAt is the time the last correct process decided.
type Evaluator struct {
	Inputs []uint8
}

var _ sim.Evaluator = Evaluator{}

// Evaluate implements sim.Evaluator.
func (e Evaluator) Evaluate(v sim.View) sim.Outcome {
	var (
		completedAt sim.Time
		haveVal     bool
		val         uint8
	)
	for p := 0; p < v.N(); p++ {
		nd, ok := v.Node(sim.ProcID(p)).(*Node)
		if !ok {
			return sim.Outcome{Detail: fmt.Sprintf("node %d is not a consensus node", p)}
		}
		decided, decision, at := nd.Decided()
		if !decided {
			if v.Alive(sim.ProcID(p)) {
				return sim.Outcome{Detail: fmt.Sprintf("termination violated: correct process %d undecided", p)}
			}
			continue
		}
		if haveVal && decision != val {
			return sim.Outcome{Detail: fmt.Sprintf(
				"agreement violated: process %d decided %d, another decided %d", p, decision, val)}
		}
		haveVal, val = true, decision
		if v.Alive(sim.ProcID(p)) && at > completedAt {
			completedAt = at
		}
	}
	if haveVal {
		valid := false
		for _, in := range e.Inputs {
			if in == val {
				valid = true
				break
			}
		}
		if !valid {
			return sim.Outcome{Detail: fmt.Sprintf("validity violated: decision %d was not proposed", val)}
		}
	}
	return sim.Outcome{OK: true, CompletedAt: completedAt}
}
