// Package consensus implements the randomized binary consensus protocols
// of the paper's §6: the Canetti–Rabin voting framework (following the
// crash-failure presentation of Attiya & Welch, ch. 14.3) with its
// get-core primitive realized either by three phases of all-to-all
// communication (the O(n²) baseline of Table 2's first row) or by three
// sequential instances of asynchronous (majority) gossip — CR-ears,
// CR-sears and CR-tears.
package consensus

import (
	"repro/internal/rng"
)

// Vote values. Binary consensus: processes propose Zero or One; Bot is the
// "no preference" vote of the framework's second election.
const (
	VoteZero uint8 = 0
	VoteOne  uint8 = 1
	VoteBot  uint8 = 2
)

// Coin provides the shared-coin abstraction of the Canetti–Rabin framework
// (the "third round of voting which simulates a shared random coin").
type Coin interface {
	// Flip returns the coin for round r as seen by process id.
	Flip(r int, id int) uint8
	// Name identifies the coin flavor.
	Name() string
}

// CommonCoin is a perfect common coin: every process sees the same uniform
// bit per round, derived from a PRF over a seed fixed before the execution.
//
// Substitution note (DESIGN.md §3): Canetti–Rabin construct their shared
// coin cryptographically; against an *oblivious* adversary — which fixes
// scheduling, delays and crashes before the execution, independent of coin
// flips — a pre-seeded PRF coin has exactly the same distributional
// behaviour, because the adversary cannot correlate its choices with the
// coin either way.
type CommonCoin struct {
	seed uint64
}

var _ Coin = CommonCoin{}

// coinTweak domain-separates the coin PRF from other uses of the seed.
const coinTweak = 0xC0DEC0FFEE

// NewCommonCoin returns a common coin derived from seed.
func NewCommonCoin(seed int64) CommonCoin {
	return CommonCoin{seed: uint64(seed) ^ coinTweak}
}

// Flip implements Coin: same value for every process.
func (c CommonCoin) Flip(r int, _ int) uint8 {
	x := c.seed + uint64(r)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return uint8((x ^ (x >> 31)) & 1)
}

// Name implements Coin.
func (CommonCoin) Name() string { return "common" }

// LocalCoin is the Ben-Or-style independent local coin: each process flips
// its own bit each round. Against even an oblivious adversary this only
// guarantees expected exponential round complexity in the worst case; it
// is provided as the ablation baseline for the coin design choice.
type LocalCoin struct {
	root *rng.RNG
}

var _ Coin = (*LocalCoin)(nil)

// NewLocalCoin returns a local coin seeded independently per process.
func NewLocalCoin(seed int64) *LocalCoin {
	return &LocalCoin{root: rng.New(seed).Fork(0x10CA1C01)}
}

// Flip implements Coin: independent per (round, process).
func (l *LocalCoin) Flip(r int, id int) uint8 {
	return uint8(l.root.Fork(uint64(id)*1_000_003+uint64(r)).Uint64() & 1)
}

// Name implements Coin.
func (*LocalCoin) Name() string { return "local" }
