package consensus

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// mkOutput builds a get-core output with the given numbers of 0-, 1- and
// ⊥-votes.
func mkOutput(n, zeros, ones, bots int) *core.Rumors {
	out := core.NewRumors(n, true)
	id := 0
	add := func(count int, v uint8) {
		for k := 0; k < count; k++ {
			out.Add(sim.ProcID(id), v)
			id++
		}
	}
	add(zeros, VoteZero)
	add(ones, VoteOne)
	add(bots, VoteBot)
	return out
}

func TestMajorityPref(t *testing.T) {
	n := 10
	cases := []struct {
		zeros, ones, bots int
		want              uint8
	}{
		{6, 0, 0, VoteZero}, // clear majority of 0s
		{0, 6, 0, VoteOne},  // clear majority of 1s
		{5, 5, 0, VoteBot},  // exactly half is not a majority
		{3, 3, 0, VoteBot},  // no majority
		{6, 4, 0, VoteZero}, // majority with opposition
		{0, 0, 10, VoteBot}, // all bot
		{5, 0, 5, VoteBot},  // five 0s of ten: not > n/2
		{6, 0, 4, VoteZero}, // six 0s: > n/2
	}
	for i, c := range cases {
		out := mkOutput(n, c.zeros, c.ones, c.bots)
		if got := majorityPref(out, n); got != c.want {
			t.Errorf("case %d (%d/%d/%d): majorityPref = %d, want %d",
				i, c.zeros, c.ones, c.bots, got, c.want)
		}
	}
}

func TestDecideRule(t *testing.T) {
	n := 10
	cases := []struct {
		zeros, ones, bots int
		wantDecide        bool
		wantV             uint8
		wantCoin          bool
	}{
		{6, 0, 0, true, VoteZero, false},  // unanimous 0 → decide 0
		{0, 7, 0, true, VoteOne, false},   // unanimous 1 → decide 1
		{6, 0, 1, false, VoteZero, false}, // 0s plus a ⊥ → adopt 0, no decide
		{0, 6, 2, false, VoteOne, false},  // 1s plus ⊥s → adopt 1
		{0, 0, 6, false, 0, true},         // all ⊥ → coin
	}
	for i, c := range cases {
		out := mkOutput(n, c.zeros, c.ones, c.bots)
		d, v, coin := decideRule(out)
		if d != c.wantDecide || coin != c.wantCoin || (!coin && v != c.wantV) {
			t.Errorf("case %d (%d/%d/%d): decideRule = (%v,%d,%v), want (%v,%d,%v)",
				i, c.zeros, c.ones, c.bots, d, v, coin, c.wantDecide, c.wantV, c.wantCoin)
		}
	}
	// Defensive branch: conflicting non-⊥ votes (impossible under the
	// majority-preference invariant) must never decide.
	conflicted := mkOutput(n, 3, 3, 0)
	if d, _, _ := decideRule(conflicted); d {
		t.Fatal("decided on a conflicted output")
	}
}

// Property: decideRule never decides when a ⊥ is present, and deciding
// implies every vote equals the decided value.
func TestQuickDecideRuleSafety(t *testing.T) {
	check := func(zeros, ones, bots uint8) bool {
		n := int(zeros) + int(ones) + int(bots)
		if n == 0 || n > 200 {
			return true
		}
		out := mkOutput(n, int(zeros), int(ones), int(bots))
		d, v, coin := decideRule(out)
		if d && bots > 0 {
			return false
		}
		if d && zeros > 0 && ones > 0 {
			return false
		}
		if d && v == VoteZero && zeros == 0 {
			return false
		}
		if d && v == VoteOne && ones == 0 {
			return false
		}
		if coin && (zeros > 0 || ones > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCommonCoinAgreesAndIsFair(t *testing.T) {
	coin := NewCommonCoin(99)
	ones := 0
	const rounds = 2000
	for r := 1; r <= rounds; r++ {
		v := coin.Flip(r, 0)
		for id := 1; id < 5; id++ {
			if coin.Flip(r, id) != v {
				t.Fatalf("round %d: common coin differs across processes", r)
			}
		}
		ones += int(v)
	}
	if ones < rounds*2/5 || ones > rounds*3/5 {
		t.Fatalf("common coin biased: %d/%d ones", ones, rounds)
	}
	if coin.Name() != "common" {
		t.Fatal("name")
	}
}

func TestLocalCoinIndependentButDeterministic(t *testing.T) {
	coin := NewLocalCoin(7)
	again := NewLocalCoin(7)
	same := 0
	const rounds = 2000
	for r := 1; r <= rounds; r++ {
		if coin.Flip(r, 1) != again.Flip(r, 1) {
			t.Fatal("local coin not deterministic for same seed")
		}
		if coin.Flip(r, 1) == coin.Flip(r, 2) {
			same++
		}
	}
	// Two process streams agree about half the time.
	if same < rounds*2/5 || same > rounds*3/5 {
		t.Fatalf("local coins suspiciously correlated: %d/%d", same, rounds)
	}
	if coin.Name() != "local" {
		t.Fatal("name")
	}
}

// TestStragglerCatchesUpViaProbes freezes one process until all others
// have decided and gone quiet, then releases it: the probe/history channel
// must still deliver it a decision (this is the paper's history catch-up
// in its most extreme form).
func TestStragglerCatchesUpViaProbes(t *testing.T) {
	const (
		n        = 16
		switchAt = 2000
	)
	p := Params{N: n, F: 0, Transport: TransportDirect}
	inputs := UniformInputs(n, 1)
	nodes, err := NewNodes(p, inputs, 5)
	if err != nil {
		t.Fatal(err)
	}
	sched := &freezeSchedule{victim: 0, until: switchAt, n: n}
	adv := adversary.Compose(sched, nil, nil)
	cfg := sim.Config{N: n, F: 0, D: 1, Delta: 1, Seed: 5, MaxSteps: 4 * switchAt}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(Evaluator{Inputs: inputs})
	if err != nil {
		t.Fatalf("straggler run failed: %v", err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	decided, v, at := nodes[0].(*Node).Decided()
	if !decided || v != 1 {
		t.Fatalf("straggler decided=%v v=%d", decided, v)
	}
	if at < switchAt {
		t.Fatalf("straggler decided at %d before it was ever scheduled (%d)", at, switchAt)
	}
}

// freezeSchedule starves one process until a switch time.
type freezeSchedule struct {
	victim sim.ProcID
	until  sim.Time
	n      int
}

func (s *freezeSchedule) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	for i := 0; i < s.n; i++ {
		if sim.ProcID(i) == s.victim && t < s.until {
			continue
		}
		buf = append(buf, sim.ProcID(i))
	}
	return buf
}

// TestHistoryAdoption unit-tests the catch-up path: a node that receives a
// decided history adopts the decision instantly.
func TestHistoryAdoption(t *testing.T) {
	p := Params{N: 8, F: 3, Transport: TransportDirect}.WithDefaults()
	nd, err := NewNode(2, 0, p, testRNG(), NewCommonCoin(1))
	if err != nil {
		t.Fatal(err)
	}
	var out sim.Outbox
	out.Reset(2, 1, 8)
	msg := sim.Message{From: 5, To: 2, Payload: &Payload{
		Idx:  -1,
		Hist: &History{Decided: true, Value: 1},
	}}
	nd.Step(1, []sim.Message{msg}, &out)
	decided, v, at := nd.Decided()
	if !decided || v != 1 || at != 1 {
		t.Fatalf("adoption failed: %v %d %d", decided, v, at)
	}
	if !nd.Quiescent() {
		t.Fatal("decided node not quiescent")
	}
}

// TestDecidedNodeRepliesToProbes: a decided node must answer probes with
// its decided history so stragglers terminate.
func TestDecidedNodeRepliesToProbes(t *testing.T) {
	p := Params{N: 8, F: 3, Transport: TransportDirect}.WithDefaults()
	nd, err := NewNode(1, 1, p, testRNG(), NewCommonCoin(1))
	if err != nil {
		t.Fatal(err)
	}
	var out sim.Outbox
	out.Reset(1, 1, 8)
	nd.Step(1, []sim.Message{{From: 0, To: 1, Payload: &Payload{
		Idx: -1, Hist: &History{Decided: true, Value: 0},
	}}}, &out)
	if d, _, _ := nd.Decided(); !d {
		t.Fatal("setup: node should have adopted the decision")
	}
	out.Reset(1, 2, 8)
	probe := sim.Message{From: 6, To: 1, Payload: &Payload{Idx: -1, Probe: true}}
	nd.Step(2, []sim.Message{probe}, &out)
	msgs := out.Messages()
	if len(msgs) != 1 || msgs[0].To != 6 {
		t.Fatalf("expected one reply to the prober, got %d messages", len(msgs))
	}
	reply, ok := msgs[0].Payload.(*Payload)
	if !ok || reply.Hist == nil || !reply.Hist.Decided {
		t.Fatal("reply does not carry the decision")
	}
}

func testRNG() *rng.RNG { return rng.New(1234) }

func TestTinyClusters(t *testing.T) {
	// n=2 (f=0) and n=3 (f=1): threshold arithmetic at the smallest scales.
	for _, tc := range []struct{ n, f int }{{2, 0}, {3, 1}, {4, 1}} {
		for _, kind := range []TransportKind{TransportDirect, TransportEARS} {
			cfg := sim.Config{N: tc.n, F: tc.f, D: 1, Delta: 1, Seed: 3}
			inputs := RandomInputs(tc.n, 5)
			res, err := tryRunConsensus(Params{Transport: kind}, inputs, cfg, adversary.PresetBenign)
			if err != nil {
				t.Fatalf("n=%d f=%d %s: %v", tc.n, tc.f, kind, err)
			}
			if !res.Completed {
				t.Fatalf("n=%d f=%d %s: %+v", tc.n, tc.f, kind, res)
			}
		}
	}
}

func TestSplitVoteEventuallyDecides(t *testing.T) {
	// A perfect 0/1 split forces coin rounds; with the common coin the
	// protocol must still decide quickly across seeds.
	for seed := int64(0); seed < 4; seed++ {
		cfg := sim.Config{N: 20, F: 9, D: 2, Delta: 1, Seed: seed}
		inputs := make([]uint8, 20)
		for i := range inputs {
			inputs[i] = uint8(i % 2)
		}
		res, err := tryRunConsensus(Params{Transport: TransportDirect}, inputs, cfg, adversary.PresetStandard)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestRoundsBoundedWithCommonCoin(t *testing.T) {
	// With the common coin, the expected number of rounds is O(1); assert
	// a loose cap across seeds (guards against a silent livelock that
	// still terminates within MaxSteps).
	for seed := int64(0); seed < 4; seed++ {
		cfg := sim.Config{N: 24, F: 11, D: 1, Delta: 1, Seed: seed}
		inputs := make([]uint8, 24)
		for i := range inputs {
			inputs[i] = uint8(i % 2)
		}
		p := Params{Transport: TransportDirect}
		p.N, p.F = cfg.N, cfg.F
		nodes, err := NewNodes(p, inputs, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		adv, _ := adversary.ByName(adversary.PresetStandard, cfg)
		w, err := sim.NewWorld(cfg, nodes, adv)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(Evaluator{Inputs: inputs}); err != nil {
			t.Fatal(err)
		}
		for _, nd := range nodes {
			if r := nd.(*Node).Rounds(); r > 8 {
				t.Fatalf("seed %d: node used %d rounds with a common coin", seed, r)
			}
		}
	}
}
