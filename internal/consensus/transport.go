package consensus

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// transport disseminates one gossip instance (one get-core subround) of
// consensus: it spreads contributor identities until the owner has heard
// from a majority. The vote payloads ride alongside at the consensus layer
// (every absorbed message's vote union is merged by the Node, every sent
// message carries the Node's current union), so a transport only tracks
// who has contributed.
type transport interface {
	// step runs one local step, emitting instance messages through send.
	step(now sim.Time, send func(to sim.ProcID, inner *core.GossipPayload))
	// absorb processes an incoming instance message's inner payload.
	absorb(now sim.Time, from sim.ProcID, inner *core.GossipPayload)
	// count returns the number of distinct contributors heard (incl. self).
	count() int
	// idle reports whether the transport has nothing more to send
	// spontaneously (used to decide when probing is warranted).
	idle() bool
}

// TransportKind selects the get-core dissemination mechanism, i.e. the row
// of Table 2 being reproduced.
type TransportKind string

// The four transports of Table 2.
const (
	// TransportDirect: three phases of all-to-all — the Canetti–Rabin
	// baseline with O(n²) messages.
	TransportDirect TransportKind = "direct"
	// TransportEARS, TransportSEARS, TransportTEARS: get-core via three
	// sequential instances of the corresponding gossip protocol, each
	// terminating when a process has received ⌊n/2⌋+1 rumors.
	TransportEARS  TransportKind = "ears"
	TransportSEARS TransportKind = "sears"
	TransportTEARS TransportKind = "tears"
)

// TransportKinds lists all transports.
func TransportKinds() []TransportKind {
	return []TransportKind{TransportDirect, TransportEARS, TransportSEARS, TransportTEARS}
}

// transportFactory builds a fresh transport for each gossip instance.
type transportFactory func(instance int, r *rng.RNG) transport

// newTransportFactory returns the factory for a transport kind.
func newTransportFactory(kind TransportKind, id sim.ProcID, p core.Params) (transportFactory, error) {
	p = p.WithDefaults()
	switch kind {
	case TransportDirect:
		return func(_ int, _ *rng.RNG) transport {
			return newDirectTransport(id, p.N)
		}, nil
	case TransportEARS, TransportSEARS, TransportTEARS:
		proto, err := core.ByName(string(kind))
		if err != nil {
			return nil, err
		}
		// Gossip nodes embedded in consensus transports run unpooled
		// (p.Pool stays nil): their payloads are wrapped in consensus
		// Payloads, which the consensus node may buffer across steps for
		// future instances — retaining them past the delivering Step, which
		// the pooled-release contract (sim.Releasable) forbids. Enforce
		// that invariant here rather than inheriting whatever the caller
		// put in the tuning parameters.
		p.Pool, p.NoPool = nil, true
		return func(_ int, r *rng.RNG) transport {
			return &protocolTransport{node: proto.NewNode(id, p, r)}
		}, nil
	default:
		return nil, fmt.Errorf("consensus: unknown transport %q (have %v)", kind, TransportKinds())
	}
}

// protocolTransport adapts a core gossip node: the node's rumor set *is*
// the contributor set. Incoming messages are buffered and fed to the node
// at its next local step, matching the model ("a process receives a subset
// of the messages sent to it, performs some computation, sends...").
type protocolTransport struct {
	node  sim.Node
	inbox []sim.Message
	out   sim.Outbox
}

var _ transport = (*protocolTransport)(nil)

func (t *protocolTransport) absorb(_ sim.Time, from sim.ProcID, inner *core.GossipPayload) {
	t.inbox = append(t.inbox, sim.Message{From: from, To: t.node.ID(), Payload: inner})
}

func (t *protocolTransport) step(now sim.Time, send func(sim.ProcID, *core.GossipPayload)) {
	t.out.Reset(t.node.ID(), now, holderUniverse(t.node))
	t.node.Step(now, t.inbox, &t.out)
	t.inbox = t.inbox[:0]
	for _, m := range t.out.Messages() {
		if pl, ok := m.Payload.(*core.GossipPayload); ok {
			send(m.To, pl)
		}
	}
}

func (t *protocolTransport) count() int {
	return t.node.(core.RumorHolder).RumorSet().Count()
}

func (t *protocolTransport) idle() bool { return t.node.Quiescent() && len(t.inbox) == 0 }

// holderUniverse recovers n from the node's rumor set.
func holderUniverse(n sim.Node) int {
	return n.(core.RumorHolder).RumorSet().Universe()
}

// directTransport is the all-to-all phase of the Canetti–Rabin baseline:
// each process sends its contribution to everyone once, then waits.
type directTransport struct {
	id     sim.ProcID
	n      int
	heard  *bitset.Set
	sent   bool
	shared *core.GossipPayload
}

var _ transport = (*directTransport)(nil)

func newDirectTransport(id sim.ProcID, n int) *directTransport {
	h := bitset.New(n)
	h.Add(int(id))
	rum := core.NewRumors(n, false)
	rum.Add(id, core.NoValue)
	return &directTransport{id: id, n: n, heard: h, shared: &core.GossipPayload{Rumors: rum}}
}

func (t *directTransport) absorb(_ sim.Time, from sim.ProcID, inner *core.GossipPayload) {
	// Every sender of an instance message is a contributor (its message
	// carries its vote union, which includes its own subround rumor).
	t.heard.Add(int(from))
	if inner != nil && inner.Rumors != nil {
		t.heard.UnionWith(inner.Rumors.Set)
	}
}

func (t *directTransport) step(_ sim.Time, send func(sim.ProcID, *core.GossipPayload)) {
	if t.sent {
		return
	}
	t.sent = true
	for q := 0; q < t.n; q++ {
		if sim.ProcID(q) != t.id {
			send(sim.ProcID(q), t.shared)
		}
	}
}

func (t *directTransport) count() int { return t.heard.Count() }

func (t *directTransport) idle() bool { return t.sent }
