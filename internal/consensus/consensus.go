package consensus

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Params configures a consensus instance.
type Params struct {
	// N is the number of processes; F < N/2 the failure bound (the paper
	// assumes a minority of failures for consensus).
	N int
	F int
	// Transport selects the get-core dissemination (Table 2 row).
	Transport TransportKind
	// Gossip tunes the gossip transports (core.Params knobs).
	Gossip core.Params
	// Coin is the shared-coin flavor; nil defaults to a common coin
	// derived from the run seed.
	Coin Coin
	// ProbeEvery is the idle-step interval at which an undecided process
	// with a quiescent transport probes a random peer for history
	// (default 8). Probing is the concrete realization of the paper's
	// catch-up rule for processes that fell behind the gossip frontier.
	ProbeEvery int
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.Transport == "" {
		p.Transport = TransportDirect
	}
	if p.ProbeEvery == 0 {
		p.ProbeEvery = 8
	}
	p.Gossip.N, p.Gossip.F = p.N, p.F
	p.Gossip = p.Gossip.WithDefaults()
	return p
}

// Validate checks the parameters (consensus needs f < n/2).
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("consensus: N = %d, need N >= 1", p.N)
	}
	if p.F < 0 || 2*p.F >= p.N {
		return fmt.Errorf("consensus: F = %d, need F < N/2 = %d/2", p.F, p.N)
	}
	return p.Gossip.Validate()
}

// History is the immutable catch-up record attached to every message: the
// outputs of all completed get-core calls plus the decision, if any. A
// process receiving a History ahead of its own position adopts the
// sender's outcomes — the paper's "as soon as a process receives a gossip
// message, it can use the received history log to catch up with the
// sender" — and a decided process's History lets anyone decide instantly.
type History struct {
	// Outputs[k] is the adopted-or-computed output of get-core k, where
	// k = 2·(round−1) + (step−1).
	Outputs []*core.Rumors
	// Decided/Value carry a decision.
	Decided bool
	Value   uint8
}

// Payload is the message payload of the consensus layer.
type Payload struct {
	// Idx is the global gossip-instance index 3·step + (sub−1), or -1 for
	// pure history/probe messages.
	Idx int
	// Inner is the transport's gossip payload (nil for history messages).
	Inner *core.GossipPayload
	// W is the sender's vote union for its current get-core.
	W *core.Rumors
	// Hist is the sender's history snapshot.
	Hist *History
	// Probe requests a history reply.
	Probe bool
}

var _ sim.Sizer = (*Payload)(nil)

// SizeBytes implements sim.Sizer.
func (p *Payload) SizeBytes() int {
	b := 8
	if p.Inner != nil {
		b += p.Inner.SizeBytes()
	}
	if p.W != nil {
		b += p.W.SizeBytes()
	}
	if p.Hist != nil {
		b += 2 + 8*len(p.Hist.Outputs)
	}
	return b
}

// Node is one consensus process. It is a sim.Node; the kernel and
// adversaries treat it exactly like a gossip node.
type Node struct {
	id    sim.ProcID
	n     int
	maj   int
	input uint8
	coin  Coin
	par   Params

	factory transportFactory
	r       *rng.RNG
	// probe draws catch-up targets: uniform on [n] on the clique, uniform
	// over the node's neighborhood on an explicit topology (a probe to a
	// non-neighbor would be dropped by the world and help nobody).
	probe topology.Sampler

	// Position: sub ∈ {1,2,3} within get-core #len(outputs).
	sub     int
	curVote uint8
	w       *core.Rumors

	// trs holds the transports of all still-active gossip instances,
	// keyed by instance index. Completing a subround locally does NOT
	// abandon its gossip: the paper's get-core "terminates when a process
	// receives ⌊n/2⌋+1 rumors", but the underlying gossip instance keeps
	// disseminating (and eventually quiesces on its own) — otherwise,
	// with exactly ⌊n/2⌋+1 survivors, the first process to move on would
	// strand everyone else below the threshold forever. Old instances are
	// retired once their gossip is idle or they fall out of the window.
	trs map[int]transport

	outputs []*core.Rumors
	hist    *History

	est  uint8
	pref uint8

	decided   bool
	decision  uint8
	decidedAt sim.Time
	rounds    int // rounds entered (diagnostics)

	idleSteps    int
	replyTargets []sim.ProcID
	idxScratch   []int

	// buffer holds messages for instances ahead of our position; they are
	// replayed when we get there. This keeps gossip transports efficient
	// when processes run slightly out of phase (a message is never useful
	// twice, so the buffer is drained destructively).
	buffer []futureMsg
}

// futureMsg is a buffered message for a future instance.
type futureMsg struct {
	idx   int
	from  sim.ProcID
	inner *core.GossipPayload
	w     *core.Rumors
}

// maxBuffered bounds the future-message buffer; overflow is dropped (the
// transports tolerate loss of relayed state, at worst costing extra steps).
const maxBuffered = 8192

// windowSpan is how many instances behind the current one a node keeps
// relaying (two full get-cores). Stragglers further behind are served by
// history replies instead.
const windowSpan = 6

var (
	_ sim.Node = (*Node)(nil)
)

// NewNode builds a consensus node with the given binary input.
func NewNode(id sim.ProcID, input uint8, p Params, r *rng.RNG, coin Coin) (*Node, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if input > 1 {
		return nil, fmt.Errorf("consensus: input %d not binary", input)
	}
	factory, err := newTransportFactory(p.Transport, id, p.Gossip)
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:      id,
		n:       p.N,
		maj:     p.N/2 + 1,
		input:   input,
		coin:    coin,
		par:     p,
		factory: factory,
		r:       r,
		probe:   topology.NewSampler(int(id), p.N, p.Gossip.Graph),
		est:     input,
	}
	n.hist = &History{}
	n.startGetCore(input)
	return n, nil
}

// ID implements sim.Node.
func (n *Node) ID() sim.ProcID { return n.id }

// Decided returns the decision state (evaluators and examples read it).
func (n *Node) Decided() (bool, uint8, sim.Time) {
	return n.decided, n.decision, n.decidedAt
}

// Rounds returns the number of voting rounds the node entered.
func (n *Node) Rounds() int { return n.rounds }

// Input returns the node's proposal.
func (n *Node) Input() uint8 { return n.input }

// Outputs returns the node's completed get-core outputs (tests verify the
// common-core property on them).
func (n *Node) Outputs() []*core.Rumors { return n.outputs }

// curIdx returns the current global instance index.
func (n *Node) curIdx() int { return len(n.outputs)*3 + (n.sub - 1) }

// startGetCore begins a new get-core with the given own vote.
func (n *Node) startGetCore(vote uint8) {
	n.curVote = vote
	n.sub = 1
	n.w = core.NewRumors(n.n, true)
	n.w.Add(n.id, vote)
	n.openInstance()
	if len(n.outputs)%2 == 0 {
		n.rounds++
	}
}

// openInstance creates the transport for the current instance and prunes
// retired ones.
func (n *Node) openInstance() {
	if n.trs == nil {
		n.trs = make(map[int]transport, windowSpan+1)
	}
	idx := n.curIdx()
	n.trs[idx] = n.factory(idx, n.r.Fork(uint64(idx)+0x7A))
	for k, tr := range n.trs {
		if k < idx-windowSpan || (k != idx && tr.idle()) {
			delete(n.trs, k)
		}
	}
}

// cur returns the current instance's transport.
func (n *Node) cur() transport { return n.trs[n.curIdx()] }

// wFor returns the vote union to attach to messages of instance idx: the
// live union for the current get-core, the frozen output for older ones.
func (n *Node) wFor(idx int) *core.Rumors {
	if step := idx / 3; step < len(n.outputs) {
		return n.outputs[step]
	}
	return n.w.Snapshot()
}

// Step implements sim.Node.
func (n *Node) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	n.replyTargets = n.replyTargets[:0]

	// Pass 1: adopt the most advanced history seen this step.
	var best *History
	for _, m := range inbox {
		pl, ok := m.Payload.(*Payload)
		if !ok {
			continue
		}
		if pl.Hist != nil {
			if pl.Hist.Decided && (best == nil || !best.Decided) {
				best = pl.Hist
			} else if best == nil || (!best.Decided && len(pl.Hist.Outputs) > len(best.Outputs)) {
				best = pl.Hist
			}
		}
	}
	if best != nil {
		n.adoptHistory(best, now)
	}

	if n.decided {
		// Halted: stay responsive so stragglers terminate — reply with our
		// (decided) history to anyone not yet known to have decided.
		for _, m := range inbox {
			pl, ok := m.Payload.(*Payload)
			if !ok {
				continue
			}
			if pl.Hist == nil || !pl.Hist.Decided {
				n.queueReply(m.From)
			}
		}
		n.sendReplies(out)
		return
	}

	// Pass 2: feed current-instance messages; merge vote unions from any
	// message of the same get-core; help stragglers with history replies.
	myStep := len(n.outputs)
	for _, m := range inbox {
		pl, ok := m.Payload.(*Payload)
		if !ok {
			continue
		}
		if pl.Probe {
			n.queueReply(m.From)
		}
		if pl.Idx < 0 {
			continue // pure history message, already handled
		}
		senderStep := pl.Idx / 3
		switch {
		case senderStep == myStep:
			n.w.Union(pl.W)
			if pl.Idx == n.curIdx() {
				n.cur().absorb(now, m.From, pl.Inner)
			} else if pl.Idx > n.curIdx() {
				n.bufferFuture(pl.Idx, m.From, pl.Inner, nil) // W already merged
			} else if tr, ok := n.trs[pl.Idx]; ok {
				tr.absorb(now, m.From, pl.Inner)
			}
		case senderStep < myStep:
			// Older get-core: keep relaying if the instance is still in
			// our window; reply with history if the sender is far behind.
			if tr, ok := n.trs[pl.Idx]; ok {
				tr.absorb(now, m.From, pl.Inner)
			} else {
				n.queueReply(m.From)
			}
		default:
			// Sender is mid-way through a later get-core (its completed
			// outputs were adopted in pass 1); keep the message for when
			// we reach that instance.
			n.bufferFuture(pl.Idx, m.From, pl.Inner, pl.W)
		}
	}

	// Advance through any completions (threshold ⌊n/2⌋+1).
	n.drainBuffer(now)
	for !n.decided && n.cur().count() >= n.maj {
		n.completeSubround(now)
		if !n.decided {
			n.drainBuffer(now)
		}
	}
	if n.decided {
		n.sendReplies(out)
		return
	}

	// Transport step: spontaneous gossip sends for every active instance
	// (the current one plus older ones still disseminating). Instances are
	// stepped in index order — map iteration order would break replay
	// determinism.
	sent := false
	n.idxScratch = n.idxScratch[:0]
	for idx := range n.trs {
		n.idxScratch = append(n.idxScratch, idx)
	}
	sort.Ints(n.idxScratch)
	for _, idx := range n.idxScratch {
		idx := idx
		n.trs[idx].step(now, func(to sim.ProcID, inner *core.GossipPayload) {
			sent = true
			out.Send(to, &Payload{
				Idx:   idx,
				Inner: inner,
				W:     n.wFor(idx),
				Hist:  n.hist,
			})
		})
	}

	// Probing: an undecided process whose transports have all gone idle
	// would otherwise wait forever on peers that moved on; it periodically
	// asks a random peer for history (the catch-up channel).
	if !sent && n.allIdle() {
		n.idleSteps++
		if n.idleSteps%n.par.ProbeEvery == 0 {
			if q, ok := n.probe.One(n.r); ok {
				out.Send(sim.ProcID(q), &Payload{Idx: -1, Probe: true, Hist: n.hist})
			}
		}
	} else {
		n.idleSteps = 0
	}
	n.sendReplies(out)
}

// allIdle reports whether every active transport is idle.
func (n *Node) allIdle() bool {
	for _, tr := range n.trs {
		if !tr.idle() {
			return false
		}
	}
	return true
}

// Quiescent implements sim.Node: only a decided process is quiescent (it
// still replies reactively, which does not break world-quiet detection).
func (n *Node) Quiescent() bool { return n.decided }

// bufferFuture stores a message for an instance we have not reached.
func (n *Node) bufferFuture(idx int, from sim.ProcID, inner *core.GossipPayload, w *core.Rumors) {
	if len(n.buffer) >= maxBuffered {
		return
	}
	n.buffer = append(n.buffer, futureMsg{idx: idx, from: from, inner: inner, w: w})
}

// drainBuffer replays buffered messages that have become current: vote
// unions for the get-core we just entered, transport payloads for the
// instance we just started. Stale entries are discarded.
func (n *Node) drainBuffer(now sim.Time) {
	if len(n.buffer) == 0 {
		return
	}
	cur := n.curIdx()
	myStep := len(n.outputs)
	keep := n.buffer[:0]
	for _, fm := range n.buffer {
		switch {
		case fm.idx < cur:
			// stale, drop
		case fm.idx/3 == myStep:
			if fm.w != nil {
				n.w.Union(fm.w)
			}
			if fm.idx == cur {
				n.cur().absorb(now, fm.from, fm.inner)
			} else {
				keep = append(keep, futureMsg{idx: fm.idx, from: fm.from, inner: fm.inner})
			}
		default:
			keep = append(keep, fm)
		}
	}
	n.buffer = keep
}

// queueReply records a history-reply target (deduplicated per step).
func (n *Node) queueReply(to sim.ProcID) {
	if to == n.id {
		return
	}
	for _, t := range n.replyTargets {
		if t == to {
			return
		}
	}
	n.replyTargets = append(n.replyTargets, to)
}

func (n *Node) sendReplies(out *sim.Outbox) {
	for _, to := range n.replyTargets {
		out.Send(to, &Payload{Idx: -1, Hist: n.hist})
	}
	n.replyTargets = n.replyTargets[:0]
}

// completeSubround advances past the current subround; after the third,
// the get-core output is frozen and the voting rules applied.
func (n *Node) completeSubround(now sim.Time) {
	if n.sub < 3 {
		n.sub++
		n.openInstance()
		return
	}
	output := &core.Rumors{Set: n.w.Set.Snapshot(), Vals: n.w.Vals}
	n.recordOutput(output, now)
}

// recordOutput appends a completed get-core output (own or adopted) and
// applies the corresponding voting rule.
func (n *Node) recordOutput(output *core.Rumors, now sim.Time) {
	k := len(n.outputs)
	n.outputs = append(n.outputs, output)
	round := k/2 + 1
	if k%2 == 0 {
		// First election (on estimates): a value voted by a majority of
		// all processes becomes the preference, else ⊥.
		n.pref = majorityPref(output, n.n)
		n.rebuildHist()
		n.startGetCore(n.pref)
		return
	}
	// Second election (on preferences).
	decide, v, useCoin := decideRule(output)
	switch {
	case decide:
		n.est = v
		n.decide(v, now)
		return
	case useCoin:
		n.est = n.coin.Flip(round, int(n.id))
	default:
		n.est = v
	}
	n.rebuildHist()
	n.startGetCore(n.est)
}

// adoptHistory fast-forwards through the outcomes recorded by a peer.
func (n *Node) adoptHistory(h *History, now sim.Time) {
	if h.Decided && !n.decided {
		n.decide(h.Value, now)
		return
	}
	for !n.decided && len(n.outputs) < len(h.Outputs) {
		n.recordOutput(h.Outputs[len(n.outputs)], now)
	}
}

func (n *Node) decide(v uint8, now sim.Time) {
	n.decided = true
	n.decision = v
	n.decidedAt = now
	n.rebuildHist()
}

// rebuildHist publishes a fresh immutable history snapshot.
func (n *Node) rebuildHist() {
	n.hist = &History{
		Outputs: append([]*core.Rumors(nil), n.outputs...),
		Decided: n.decided,
		Value:   n.decision,
	}
}

// majorityPref returns the value voted by more than n/2 distinct processes
// in the output, or ⊥. Two distinct values can never both clear n/2, so
// all non-⊥ preferences across processes agree.
func majorityPref(out *core.Rumors, n int) uint8 {
	c0, c1, _ := countVotes(out)
	switch {
	case c0 > n/2:
		return VoteZero
	case c1 > n/2:
		return VoteOne
	default:
		return VoteBot
	}
}

// decideRule implements the second election: all votes for one value →
// decide it; some votes for a value → adopt it as the estimate; only ⊥ →
// flip the coin. Values 0 and 1 cannot coexist (preferences derive from
// majorities); the defensive branch keeps agreement anyway by never
// deciding on a conflicted output.
func decideRule(out *core.Rumors) (decide bool, v uint8, useCoin bool) {
	c0, c1, cb := countVotes(out)
	switch {
	case c0 > 0 && c1 > 0:
		if c1 >= c0 {
			return false, VoteOne, false
		}
		return false, VoteZero, false
	case c0 > 0:
		return cb == 0, VoteZero, false
	case c1 > 0:
		return cb == 0, VoteOne, false
	default:
		return false, 0, true
	}
}

// countVotes tallies the vote values in an output.
func countVotes(out *core.Rumors) (c0, c1, cb int) {
	out.Set.ForEach(func(i int) bool {
		switch out.Vals[i] {
		case VoteZero:
			c0++
		case VoteOne:
			c1++
		default:
			cb++
		}
		return true
	})
	return c0, c1, cb
}
