package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandlerScrape(t *testing.T) {
	snaps := []Snapshot{
		{Processes: 4, Steps: 10, Sends: 7, Delivers: 6},
		{Processes: 4, Steps: 20, Sends: 15, Delivers: 15},
	}
	i := 0
	h := MetricsHandler(func() (Snapshot, []Gauge) {
		s := snaps[i]
		if i < len(snaps)-1 {
			i++
		}
		return s, []Gauge{{
			Name: "cluster_node_quiescent", Help: "Node quiescence.",
			Value: 1, Labels: map[string]string{"node": "3"},
		}}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
			t.Fatalf("Content-Type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	first := scrape()
	for _, want := range []string{
		"repro_sim_steps_total 10",
		"repro_sim_sends_total 7",
		`repro_cluster_node_quiescent{node="3"} 1`,
		"# EOF",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("first scrape missing %q:\n%s", want, first)
		}
	}

	// Each request re-renders the current snapshot — the endpoint is live,
	// not a one-shot dump.
	second := scrape()
	if !strings.Contains(second, "repro_sim_steps_total 20") {
		t.Errorf("second scrape did not advance:\n%s", second)
	}
}
