package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Gauge is one extra scalar metric to export alongside a Snapshot —
// kernel-side stats (arena occupancy, pool hit rates) that live outside
// the Recorder but belong in the same scrape.
type Gauge struct {
	// Name is the metric name without the "repro_" prefix, e.g.
	// "sim_arena_blocks_allocated". Use snake_case.
	Name string
	// Help is the one-line HELP text.
	Help string
	// Value is the gauge reading.
	Value float64
	// Labels are optional label pairs, rendered sorted by key.
	Labels map[string]string
}

// WriteOpenMetrics renders a Snapshot (plus any extra gauges) in the
// OpenMetrics text format — the format the planned internal/live registry
// will scrape, and directly ingestible by Prometheus-compatible
// collectors. The output ends with the mandatory "# EOF" terminator.
func WriteOpenMetrics(w io.Writer, snap Snapshot, extra ...Gauge) error {
	ew := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# TYPE repro_%s counter\n# HELP repro_%s %s\nrepro_%s_total %d\n",
			name, name, help, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(ew, "# TYPE repro_%s gauge\n# HELP repro_%s %s\nrepro_%s %s\n",
			name, name, help, name, formatFloat(v))
	}

	counter("sim_steps", "Local process steps simulated.", snap.Steps)
	counter("sim_sends", "Messages sent.", snap.Sends)
	counter("sim_delivers", "Messages delivered.", snap.Delivers)
	counter("sim_crashes", "Process crashes injected.", snap.Crashes)
	gauge("sim_processes", "Processes in the run.", float64(snap.Processes))
	gauge("sim_reached_processes", "Processes that received at least one message.", float64(snap.Reached))
	gauge("sim_inflight_messages", "Messages sent but not yet delivered.", float64(snap.InFlight))
	gauge("sim_inflight_messages_peak", "Peak in-flight message count.", float64(snap.MaxInFlight))
	gauge("sim_last_event_time", "Latest simulated event time.", float64(snap.LastEventAt))

	histogram(ew, "sim_send_band", "Messages sent per (process, local step).", snap.SendBand)
	histogram(ew, "sim_delivery_latency_steps", "Delivery latency in simulated steps.", snap.Latency)

	// Extra gauges: one TYPE/HELP block per metric family, even when a
	// name recurs with different label sets (the format forbids repeated
	// family headers).
	seen := map[string]bool{}
	for _, g := range extra {
		if !seen[g.Name] {
			seen[g.Name] = true
			fmt.Fprintf(ew, "# TYPE repro_%s gauge\n# HELP repro_%s %s\n", g.Name, g.Name, g.Help)
			for _, h := range extra {
				if h.Name == g.Name {
					fmt.Fprintf(ew, "repro_%s%s %s\n", h.Name, formatLabels(h.Labels), formatFloat(h.Value))
				}
			}
		}
	}
	fmt.Fprintf(ew, "# EOF\n")
	return ew.err
}

// histogram renders a HistSnapshot as a cumulative-bucket histogram.
func histogram(w io.Writer, name, help string, h HistSnapshot) {
	fmt.Fprintf(w, "# TYPE repro_%s histogram\n# HELP repro_%s %s\n", name, name, help)
	for _, b := range h.Buckets {
		fmt.Fprintf(w, "repro_%s_bucket{le=\"%d\"} %d\n", name, b.Le, b.Count)
	}
	fmt.Fprintf(w, "repro_%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "repro_%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "repro_%s_count %d\n", name, h.Count)
}

// formatLabels renders a label set as {k="v",...}, keys sorted; empty sets
// render as the empty string.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + strconv.Quote(labels[k])
	}
	return s + "}"
}

// formatFloat renders floats compactly and deterministically.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so callers check once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
