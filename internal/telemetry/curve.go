package telemetry

// Curve is a bounded streaming time series: it records a gauge sampled at
// monotone (or near-monotone) integer times into at most maxSlots slots.
// When the observed time range outgrows the slot budget the curve doubles
// its stride and compacts in place, so memory stays O(maxSlots) no matter
// how long the run is — a 10⁶-step run costs the same as a 10²-step one,
// which is what lets a Recorder ride along on every run of a campaign.
//
// Within one slot the curve keeps the sum and count of observations; a
// slot's value reads out as the mean, which for a piecewise-constant
// gauge sampled at every change is the time-weighted-ish envelope we
// want for plotting. Curves with different strides merge by first
// coarsening the finer one.
type Curve struct {
	maxSlots int
	stride   int64 // width of one slot in time units, power of two
	slots    []curveSlot
}

type curveSlot struct {
	sum float64
	n   int64
}

// Point is one rendered point of a Curve: the slot's start time and the
// mean of the observations that landed in it.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// NewCurve returns a curve bounded to maxSlots slots (minimum 16).
func NewCurve(maxSlots int) *Curve {
	if maxSlots < 16 {
		maxSlots = 16
	}
	return &Curve{
		maxSlots: maxSlots,
		stride:   1,
		slots:    make([]curveSlot, 0, maxSlots),
	}
}

// Stride reports the current slot width in time units.
func (c *Curve) Stride() int64 { return c.stride }

// Observe records gauge value v at time t. Negative times are ignored.
func (c *Curve) Observe(t int64, v float64) {
	if t < 0 {
		return
	}
	idx := t / c.stride
	for idx >= int64(c.maxSlots) {
		c.compact()
		idx = t / c.stride
	}
	for int64(len(c.slots)) <= idx {
		c.slots = append(c.slots, curveSlot{})
	}
	c.slots[idx].sum += v
	c.slots[idx].n++
}

// compact doubles the stride, folding slot pairs together in place.
func (c *Curve) compact() {
	half := (len(c.slots) + 1) / 2
	for i := 0; i < half; i++ {
		s := c.slots[2*i]
		if 2*i+1 < len(c.slots) {
			s.sum += c.slots[2*i+1].sum
			s.n += c.slots[2*i+1].n
		}
		c.slots[i] = s
	}
	c.slots = c.slots[:half]
	c.stride *= 2
}

// Merge folds another curve into this one. The coarser stride wins: the
// finer curve's slots are rebinned before adding, so merged campaigns keep
// exact sums and counts regardless of per-run compaction history.
func (c *Curve) Merge(o *Curve) {
	if o == nil || len(o.slots) == 0 {
		return
	}
	for c.stride < o.stride {
		c.compact()
	}
	for i, s := range o.slots {
		if s.n == 0 {
			continue
		}
		t := int64(i) * o.stride
		idx := t / c.stride
		for idx >= int64(c.maxSlots) {
			c.compact()
			idx = t / c.stride
		}
		for int64(len(c.slots)) <= idx {
			c.slots = append(c.slots, curveSlot{})
		}
		c.slots[idx].sum += s.sum
		c.slots[idx].n += s.n
	}
}

// Points renders the curve as (slot start time, slot mean) pairs, skipping
// empty slots.
func (c *Curve) Points() []Point {
	pts := make([]Point, 0, len(c.slots))
	for i, s := range c.slots {
		if s.n == 0 {
			continue
		}
		pts = append(pts, Point{T: int64(i) * c.stride, V: s.sum / float64(s.n)})
	}
	return pts
}
