package telemetry

import (
	"sync"
	"time"
)

// Watchdog is per-worker heartbeat telemetry for internal/runner grids: it
// implements runner.Monitor, tracking which cell each worker holds and for
// how long, and (optionally) scanning for stuck workers in the background.
// Long campaigns — the nightly 15-minute fuzz run especially — use it to
// turn "the job is silent" into "worker 3 has been on cell 18241 for four
// minutes".
//
// The watchdog is observation-only: it never cancels or alters cells, it
// only reports. All methods are safe for concurrent use.
type Watchdog struct {
	mu      sync.Mutex
	workers map[int]*workerBeat
	done    int64
	errors  int64
	warned  map[int]bool // worker → already warned for current cell

	stop chan struct{}
	wg   sync.WaitGroup

	// now is the clock; replaceable in tests.
	now func() time.Time
}

type workerBeat struct {
	cell   int
	since  time.Time
	active bool
}

// WorkerStatus is one worker's heartbeat reading.
type WorkerStatus struct {
	Worker int
	Cell   int
	Active bool
	// Busy is how long the worker has held its current cell (active) or
	// been idle since its last one (inactive).
	Busy time.Duration
}

// NewWatchdog returns an idle watchdog. Wire it into runner.Options.Monitor
// and, for background stall scanning, call Start.
func NewWatchdog() *Watchdog {
	return &Watchdog{
		workers: make(map[int]*workerBeat),
		warned:  make(map[int]bool),
		now:     time.Now,
	}
}

// CellStart implements runner.Monitor.
func (w *Watchdog) CellStart(worker, cell int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	b := w.workers[worker]
	if b == nil {
		b = &workerBeat{}
		w.workers[worker] = b
	}
	b.cell = cell
	b.since = w.now()
	b.active = true
	delete(w.warned, worker)
}

// CellDone implements runner.Monitor.
func (w *Watchdog) CellDone(worker, cell int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	b := w.workers[worker]
	if b == nil {
		b = &workerBeat{cell: cell}
		w.workers[worker] = b
	}
	b.since = w.now()
	b.active = false
	w.done++
	if err != nil {
		w.errors++
	}
	delete(w.warned, worker)
}

// Done reports completed cells and how many of them errored.
func (w *Watchdog) Done() (cells, errored int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done, w.errors
}

// Status snapshots every known worker, ordered by worker id.
func (w *Watchdog) Status() []WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	max := -1
	for id := range w.workers {
		if id > max {
			max = id
		}
	}
	out := make([]WorkerStatus, 0, len(w.workers))
	for id := 0; id <= max; id++ {
		b := w.workers[id]
		if b == nil {
			continue
		}
		out = append(out, WorkerStatus{
			Worker: id,
			Cell:   b.cell,
			Active: b.active,
			Busy:   now.Sub(b.since),
		})
	}
	return out
}

// stalled collects workers that have held one cell longer than threshold
// and haven't been warned about that cell yet.
func (w *Watchdog) stalled(threshold time.Duration) []WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	var out []WorkerStatus
	for id, b := range w.workers {
		if !b.active || w.warned[id] {
			continue
		}
		if idle := now.Sub(b.since); idle >= threshold {
			w.warned[id] = true
			out = append(out, WorkerStatus{Worker: id, Cell: b.cell, Active: true, Busy: idle})
		}
	}
	return out
}

// Start launches a background scanner that checks every interval for
// workers stuck on one cell for at least threshold, calling onStall once
// per (worker, cell) stall. Call Stop to shut the scanner down.
func (w *Watchdog) Start(interval, threshold time.Duration, onStall func(WorkerStatus)) {
	if w.stop != nil {
		return // already running
	}
	w.stop = make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				for _, s := range w.stalled(threshold) {
					onStall(s)
				}
			}
		}
	}()
}

// Stop halts the background scanner started by Start and waits for it to
// exit. Safe to call when no scanner is running.
func (w *Watchdog) Stop() {
	if w.stop == nil {
		return
	}
	close(w.stop)
	w.wg.Wait()
	w.stop = nil
}
