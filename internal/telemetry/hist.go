package telemetry

import "math/bits"

// histBuckets bounds a power-of-two Histogram: bucket 0 holds values ≤ 0,
// bucket i (i ≥ 1) holds values in (2^(i-2), 2^(i-1)]. 64 buckets cover
// the whole int64 range.
const histBuckets = 64

// Histogram is a mergeable power-of-two histogram over int64 observations.
// Fixed size, allocation-free Observe, exact bucket-wise Merge. Quantile
// readout returns a bucket upper bound, which is deterministic and
// merge-order-independent — the property BENCH_fuzz.json needs.
type Histogram struct {
	counts       [histBuckets]int64
	count        int64
	sum          int64
	min, max     int64
	haveExtremes bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 1 + bits.Len64(uint64(v-1))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// upperBound is the inclusive upper edge of bucket i.
func upperBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // max int64
	}
	return int64(1) << (i - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if !h.haveExtremes {
		h.min, h.max = v, v
		h.haveExtremes = true
		return
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge adds another histogram's buckets into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if !h.haveExtremes {
		h.min, h.max = o.min, o.max
		h.haveExtremes = true
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 ≤ q ≤ 1) of the observations, or 0 if empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return upperBound(i)
		}
	}
	return upperBound(histBuckets - 1)
}

// HistSnapshot is the exportable view of a Histogram.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	// Buckets lists (upper bound, cumulative count) pairs for non-empty
	// prefixes, in OpenMetrics "le" style.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one cumulative bucket of a HistSnapshot.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot captures counts, extremes and standard quantiles.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count,
		Sum:   h.sum,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if h.haveExtremes {
		s.Min, s.Max = h.min, h.max
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum = 0
		for j := 0; j <= i; j++ {
			cum += h.counts[j]
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: upperBound(i), Count: cum})
	}
	return s
}

// linearWidth and linearBuckets shape LinearHist: 200 buckets of width
// 0.01 cover ratios in [0, 2), one overflow bucket catches the rest.
// Envelope-tightness ratios (actual/bound) live almost entirely in [0, 1];
// anything ≥ 2 is a gross violation and lands in the overflow bucket.
const (
	linearWidth   = 0.01
	linearBuckets = 201
)

// LinearHist is a mergeable fixed-width histogram over small non-negative
// float ratios, built for envelope-tightness percentiles: two campaigns
// merged in any order yield identical quantiles, because the buckets are
// fixed and quantiles read out as bucket upper edges.
type LinearHist struct {
	counts [linearBuckets]int64
	count  int64
	sum    float64
	max    float64
}

// NewLinearHist returns an empty linear histogram.
func NewLinearHist() *LinearHist { return &LinearHist{} }

// Observe records one ratio. Negative values clamp to 0.
func (h *LinearHist) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := int(v / linearWidth)
	if i >= linearBuckets {
		i = linearBuckets - 1
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge adds another histogram's buckets into this one.
func (h *LinearHist) Merge(o *LinearHist) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count reports the number of observations.
func (h *LinearHist) Count() int64 { return h.count }

// Sum reports the running sum of observations.
func (h *LinearHist) Sum() float64 { return h.sum }

// Max reports the largest observation (0 if empty).
func (h *LinearHist) Max() float64 { return h.max }

// Mean reports the average observation (0 if empty).
func (h *LinearHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Rank is Quantile's inverse: the fraction of observations that landed in
// buckets strictly below v's bucket (0 if empty). Like Quantile it reads
// bucket edges, so it is deterministic and merge-order-independent — the
// lookup behind the fuzzer's "top decile of envelope tightness"
// interestingness predicate: Rank(ratio) >= 0.9 means at most 10% of the
// observed ratios sat as close to the bound as this one.
func (h *LinearHist) Rank(v float64) float64 {
	if h.count == 0 {
		return 0
	}
	if v < 0 {
		v = 0
	}
	i := int(v / linearWidth)
	if i >= linearBuckets {
		i = linearBuckets - 1
	}
	var below int64
	for j := 0; j < i; j++ {
		below += h.counts[j]
	}
	return float64(below) / float64(h.count)
}

// Quantile returns the upper edge of the bucket containing the q-th
// quantile, or 0 if empty. The overflow bucket reads as the observed max.
func (h *LinearHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i == linearBuckets-1 {
				return h.max
			}
			return float64(i+1) * linearWidth
		}
	}
	return h.max
}
