package telemetry

import (
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// ChromeTracer is a sim.Tracer that records a run as Chrome trace-event
// JSON: load the output at ui.perfetto.dev (or chrome://tracing) and the
// run appears as a real space–time diagram — one track per process, a
// slice per local step, instant markers for crashes, and flow arrows from
// each send to its delivery. Simulated time is mapped 1 step = 1 ms so
// the viewer's zoom levels behave sensibly.
//
// This exporter is deliberately heavyweight (it buffers every event in
// memory): attach it to individual runs you want to inspect, not to
// campaigns. Events beyond maxEvents are counted but dropped, so a
// runaway run caps memory instead of exhausting it.
type ChromeTracer struct {
	maxEvents int
	events    []chromeEvent
	dropped   int64
	procs     map[int]bool

	// pending maps an in-flight message key to the flow id assigned at
	// send time, FIFO per key to mirror the kernel's mailbox order.
	pending map[msgKey][]int64
	nextID  int64
}

type msgKey struct {
	from, to sim.ProcID
	sentAt   sim.Time
	readyAt  sim.Time
}

// chromeEvent is one trace-event object. Fields follow the Trace Event
// Format spec; ts/dur are microseconds.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   int64           `json:"ts"`
	Dur  int64           `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	ID   int64           `json:"id,omitempty"`
	S    string          `json:"s,omitempty"`
	BP   string          `json:"bp,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

const (
	chromePid = 1 // all processes share one "process" track group
	// stepUS maps one simulated step to 1000 µs (1 ms) of viewer time.
	stepUS = 1000
	// stepDurUS is the drawn width of a step slice: slightly narrower than
	// the step so adjacent steps don't fuse visually.
	stepDurUS = 800
)

// NewChromeTracer returns a tracer retaining at most maxEvents events
// (≤ 0 means a 200k default, roughly a 25 MB JSON file).
func NewChromeTracer(maxEvents int) *ChromeTracer {
	if maxEvents <= 0 {
		maxEvents = 200_000
	}
	return &ChromeTracer{
		maxEvents: maxEvents,
		procs:     make(map[int]bool),
		pending:   make(map[msgKey][]int64),
	}
}

func (c *ChromeTracer) add(e chromeEvent) {
	if len(c.events) >= c.maxEvents {
		c.dropped++
		return
	}
	c.procs[e.Tid] = true
	c.events = append(c.events, e)
}

// OnStep implements sim.Tracer.
func (c *ChromeTracer) OnStep(p sim.ProcID, t sim.Time) {
	c.add(chromeEvent{
		Name: "step", Ph: "X",
		Ts: int64(t) * stepUS, Dur: stepDurUS,
		Pid: chromePid, Tid: int(p),
	})
}

// OnSend implements sim.Tracer. A flow id is minted per message and
// resolved FIFO at delivery, matching the kernel's per-link ordering.
func (c *ChromeTracer) OnSend(m sim.Message) {
	c.nextID++
	id := c.nextID
	k := msgKey{m.From, m.To, m.SentAt, m.ReadyAt}
	c.pending[k] = append(c.pending[k], id)
	c.add(chromeEvent{
		Name: "msg", Ph: "s",
		Ts:  int64(m.SentAt)*stepUS + stepDurUS/2,
		Pid: chromePid, Tid: int(m.From), ID: id,
	})
}

// OnDeliver implements sim.Tracer.
func (c *ChromeTracer) OnDeliver(m sim.Message, t sim.Time) {
	k := msgKey{m.From, m.To, m.SentAt, m.ReadyAt}
	q := c.pending[k]
	if len(q) == 0 {
		return // delivery without observed send (tracer attached mid-run)
	}
	id := q[0]
	if len(q) == 1 {
		delete(c.pending, k)
	} else {
		c.pending[k] = q[1:]
	}
	c.add(chromeEvent{
		Name: "msg", Ph: "f", BP: "e",
		Ts:  int64(t)*stepUS + stepDurUS/2,
		Pid: chromePid, Tid: int(m.To), ID: id,
	})
}

// OnCrash implements sim.Tracer.
func (c *ChromeTracer) OnCrash(p sim.ProcID, t sim.Time) {
	c.add(chromeEvent{
		Name: "crash", Ph: "i", S: "t",
		Ts:  int64(t) * stepUS,
		Pid: chromePid, Tid: int(p),
	})
}

// Dropped reports how many events exceeded the retention cap.
func (c *ChromeTracer) Dropped() int64 { return c.dropped }

// Write writes the collected trace as a Chrome trace-event JSON object,
// including thread-name metadata so Perfetto labels each track "p<i>".
func (c *ChromeTracer) Write(w io.Writer) error {
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms"}
	out.TraceEvents = make([]chromeEvent, 0, len(c.events)+len(c.procs))
	for tid := range c.procs {
		name, _ := json.Marshal(struct {
			Name string `json:"name"`
		}{Name: procName(tid)})
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid, Args: name,
		})
	}
	// Metadata order must be deterministic; map iteration is not.
	sortMeta(out.TraceEvents)
	out.TraceEvents = append(out.TraceEvents, c.events...)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// procName renders a track label for process tid.
func procName(tid int) string {
	// Small, allocation-tolerant (export path only).
	const digits = "0123456789"
	if tid == 0 {
		return "p0"
	}
	var buf [24]byte
	i := len(buf)
	neg := tid < 0
	if neg {
		tid = -tid
	}
	for tid > 0 {
		i--
		buf[i] = digits[tid%10]
		tid /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return "p" + string(buf[i:])
}

// sortMeta orders metadata events by Tid (insertion sort; few entries).
func sortMeta(evs []chromeEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Tid < evs[j-1].Tid; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
