package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCurveBasic(t *testing.T) {
	c := NewCurve(16)
	c.Observe(0, 1)
	c.Observe(0, 3)
	c.Observe(5, 10)
	c.Observe(-1, 99) // ignored
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2 entries", pts)
	}
	if pts[0].T != 0 || pts[0].V != 2 {
		t.Errorf("slot 0 = %+v, want t=0 mean=2", pts[0])
	}
	if pts[1].T != 5 || pts[1].V != 10 {
		t.Errorf("slot 5 = %+v, want t=5 v=10", pts[1])
	}
}

func TestCurveCompaction(t *testing.T) {
	c := NewCurve(16)
	for i := int64(0); i < 1000; i++ {
		c.Observe(i, float64(i))
	}
	if c.Stride() < 1000/16 {
		t.Errorf("stride = %d after 1000 observations into 16 slots", c.Stride())
	}
	if got := len(c.Points()); got > 16 {
		t.Errorf("points = %d, want <= 16", got)
	}
	// Total observation count must survive compaction exactly.
	var n int64
	for _, s := range c.slots {
		n += s.n
	}
	if n != 1000 {
		t.Errorf("total count = %d, want 1000", n)
	}
}

func TestCurveMergeStrides(t *testing.T) {
	// A fine curve merged into a coarse one (and vice versa) must preserve
	// exact sums and counts.
	fine := NewCurve(16)
	for i := int64(0); i < 10; i++ {
		fine.Observe(i, 1)
	}
	coarse := NewCurve(16)
	for i := int64(0); i < 640; i += 4 {
		coarse.Observe(i, 2)
	}
	total := func(c *Curve) (sum float64, n int64) {
		for _, s := range c.slots {
			sum += s.sum
			n += s.n
		}
		return
	}
	fs, fn := total(fine)
	cs, cn := total(coarse)

	merged := NewCurve(16)
	merged.Merge(fine)
	merged.Merge(coarse)
	ms, mn := total(merged)
	if ms != fs+cs || mn != fn+cn {
		t.Errorf("merged sum/count = %v/%d, want %v/%d", ms, mn, fs+cs, fn+cn)
	}

	// Merge order must not change the totals.
	merged2 := NewCurve(16)
	merged2.Merge(coarse)
	merged2.Merge(fine)
	m2s, m2n := total(merged2)
	if m2s != ms || m2n != mn {
		t.Errorf("merge order changed totals: %v/%d vs %v/%d", m2s, m2n, ms, mn)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Quantiles read out as power-of-two bucket upper bounds.
	if p50 := h.Quantile(0.5); p50 != 64 {
		t.Errorf("p50 = %d, want 64 (bucket upper bound covering rank 50)", p50)
	}
	if p100 := h.Quantile(1); p100 != 128 {
		t.Errorf("q1.0 = %d, want 128", p100)
	}
	snap := h.Snapshot()
	if snap.Min != 1 || snap.Max != 100 {
		t.Errorf("min/max = %d/%d, want 1/100", snap.Min, snap.Max)
	}
	// Buckets are cumulative and end at the total count.
	if last := snap.Buckets[len(snap.Buckets)-1]; last.Count != 100 {
		t.Errorf("last cumulative bucket = %+v, want count 100", last)
	}
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Count < snap.Buckets[i-1].Count {
			t.Errorf("buckets not cumulative at %d: %+v", i, snap.Buckets)
		}
	}
}

func TestHistogramMergeMatchesSingle(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := int64(0); i < 50; i++ {
		a.Observe(i * 3)
		all.Observe(i * 3)
	}
	for i := int64(0); i < 70; i++ {
		b.Observe(i * 7)
		all.Observe(i * 7)
	}
	a.Merge(b)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%.2f: merged %d != single %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.Count() != all.Count() {
		t.Errorf("merged count %d != %d", a.Count(), all.Count())
	}
	sa, sall := a.Snapshot(), all.Snapshot()
	if sa.Min != sall.Min || sa.Max != sall.Max || sa.Sum != sall.Sum {
		t.Errorf("merged extremes %+v != single %+v", sa, sall)
	}
}

func TestHistogramZeroAndHuge(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1 << 62)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0 (zero bucket)", got)
	}
	if got := h.Quantile(1); got < 1<<62 {
		t.Errorf("q1 = %d, want >= 2^62", got)
	}
}

func TestLinearHistQuantiles(t *testing.T) {
	h := NewLinearHist()
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100) // 0.00 .. 0.99
	}
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	if p50 < 0.50 || p50 > 0.52 {
		t.Errorf("p50 = %v, want ~0.51 (bucket upper edge)", p50)
	}
	// Overflow bucket reads out as the observed max.
	h.Observe(7.5)
	if got := h.Quantile(1); got != 7.5 {
		t.Errorf("q1 after overflow obs = %v, want 7.5", got)
	}
	// Negative observations clamp to zero rather than corrupting state.
	h.Observe(-1)
	if h.Quantile(0) != linearWidth {
		t.Errorf("q0 = %v, want first bucket edge %v", h.Quantile(0), linearWidth)
	}
}

func TestLinearHistMergeOrderIndependent(t *testing.T) {
	mk := func(vals ...float64) *LinearHist {
		h := NewLinearHist()
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	ab := mk(0.1, 0.2, 0.3)
	ab.Merge(mk(0.9, 1.1, 0.5))
	ba := mk(0.9, 1.1, 0.5)
	ba.Merge(mk(0.1, 0.2, 0.3))
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if ab.Quantile(q) != ba.Quantile(q) {
			t.Errorf("q%v differs by merge order: %v vs %v", q, ab.Quantile(q), ba.Quantile(q))
		}
	}
	if ab.Mean() != ba.Mean() || ab.Max() != ba.Max() || ab.Count() != ba.Count() {
		t.Errorf("stats differ by merge order")
	}
}

// feedRun drives a Recorder with a tiny synthetic event stream:
// p0 sends two messages at t=0, steps; both deliver to p1 and p2.
func feedRun(r *Recorder) {
	m1 := sim.Message{From: 0, To: 1, SentAt: 0, ReadyAt: 2}
	m2 := sim.Message{From: 0, To: 2, SentAt: 0, ReadyAt: 3}
	r.OnSend(m1)
	r.OnSend(m2)
	r.OnStep(0, 0)
	r.OnDeliver(m1, 2)
	r.OnStep(1, 2)
	r.OnCrash(2, 3)
	r.OnDeliver(m2, 3)
	r.OnStep(2, 3)
}

func TestRecorderCounters(t *testing.T) {
	r := NewRecorder(3)
	feedRun(r)
	s := r.Snapshot()
	if s.Steps != 3 || s.Sends != 2 || s.Delivers != 2 || s.Crashes != 1 {
		t.Errorf("counters = %+v", s)
	}
	if s.Reached != 2 {
		t.Errorf("reached = %d, want 2 (p1 and p2)", s.Reached)
	}
	if s.InFlight != 0 || s.MaxInFlight != 2 {
		t.Errorf("inflight = %d peak %d, want 0 peak 2", s.InFlight, s.MaxInFlight)
	}
	if s.LastEventAt != 3 {
		t.Errorf("last event = %d, want 3", s.LastEventAt)
	}
	// p0's step sent 2 messages; the other steps sent 0.
	if s.SendBand.Count != 3 || s.SendBand.Sum != 2 || s.SendBand.Max != 2 {
		t.Errorf("send band = %+v", s.SendBand)
	}
	// Latencies 2 and 3.
	if s.Latency.Count != 2 || s.Latency.Sum != 5 {
		t.Errorf("latency = %+v", s.Latency)
	}
	if len(s.ReachCurve) == 0 || len(s.InFlightCurve) == 0 {
		t.Errorf("curves empty: %+v", s)
	}
}

func TestRecorderMerge(t *testing.T) {
	a, b := NewRecorder(3), NewRecorder(3)
	feedRun(a)
	feedRun(b)
	a.Merge(b)
	s := a.Snapshot()
	if s.Steps != 6 || s.Sends != 4 || s.Delivers != 4 || s.Crashes != 2 {
		t.Errorf("merged counters = %+v", s)
	}
	if s.Reached != 4 {
		t.Errorf("merged reached = %d, want 4", s.Reached)
	}
	if s.SendBand.Count != 6 || s.Latency.Count != 4 {
		t.Errorf("merged histograms = %+v / %+v", s.SendBand, s.Latency)
	}
}

// TestRecorderEventAllocs pins the O(1)-per-event contract: after warm-up,
// observing events allocates nothing, so a Recorder can ride along on every
// run of a campaign without disturbing the kernel's allocation profile.
func TestRecorderEventAllocs(t *testing.T) {
	r := NewRecorder(8)
	m := sim.Message{From: 1, To: 2, SentAt: 100, ReadyAt: 102}
	// Warm up: let the curves allocate their slot backing arrays.
	for i := 0; i < 10_000; i++ {
		r.OnSend(m)
		r.OnDeliver(m, 102)
		r.OnStep(1, 100)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.OnSend(m)
		r.OnDeliver(m, 102)
		r.OnStep(1, 100)
		r.OnCrash(3, 101)
	})
	if allocs != 0 {
		t.Errorf("recorder allocates %.1f per event batch after warm-up, want 0", allocs)
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog()
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }

	w.CellStart(0, 7)
	w.CellStart(1, 8)
	clock = clock.Add(30 * time.Second)
	w.CellDone(1, 8, errors.New("boom"))

	st := w.Status()
	if len(st) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if !st[0].Active || st[0].Cell != 7 || st[0].Busy != 30*time.Second {
		t.Errorf("worker 0 = %+v", st[0])
	}
	if st[1].Active {
		t.Errorf("worker 1 should be idle: %+v", st[1])
	}
	if done, errored := w.Done(); done != 1 || errored != 1 {
		t.Errorf("done = %d/%d, want 1/1", done, errored)
	}

	// Worker 0 has held cell 7 for 30s: stalled at a 20s threshold, and
	// warned exactly once per (worker, cell).
	stalled := w.stalled(20 * time.Second)
	if len(stalled) != 1 || stalled[0].Worker != 0 || stalled[0].Cell != 7 {
		t.Fatalf("stalled = %+v", stalled)
	}
	if again := w.stalled(20 * time.Second); len(again) != 0 {
		t.Errorf("second scan re-warned: %+v", again)
	}
	// Starting the next cell clears the warning.
	w.CellStart(0, 9)
	clock = clock.Add(time.Hour)
	if s := w.stalled(20 * time.Second); len(s) != 1 || s[0].Cell != 9 {
		t.Errorf("new cell stall = %+v", s)
	}
}

func TestWatchdogScanner(t *testing.T) {
	w := NewWatchdog()
	clock := time.Unix(0, 0)
	w.now = func() time.Time { return clock }
	w.CellStart(2, 42)
	clock = clock.Add(time.Hour)

	ch := make(chan WorkerStatus, 1)
	w.Start(time.Millisecond, time.Minute, func(s WorkerStatus) { ch <- s })
	select {
	case s := <-ch:
		if s.Worker != 2 || s.Cell != 42 {
			t.Errorf("stall = %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scanner never fired")
	}
	w.Stop()
	w.Stop() // idempotent
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRecorder(3)
	feedRun(r)
	var buf bytes.Buffer
	err := WriteOpenMetrics(&buf, r.Snapshot(),
		Gauge{Name: "pool_gets", Help: "h", Value: 1, Labels: map[string]string{"kind": "payload"}},
		Gauge{Name: "pool_gets", Help: "h", Value: 2, Labels: map[string]string{"kind": "rumors"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("missing # EOF terminator")
	}
	// One family header even with two label sets, and both samples present.
	if n := strings.Count(out, "# TYPE repro_pool_gets gauge"); n != 1 {
		t.Errorf("pool_gets TYPE header count = %d, want 1\n%s", n, out)
	}
	for _, want := range []string{
		"repro_sim_steps_total 3",
		"repro_sim_sends_total 2",
		`repro_pool_gets{kind="payload"} 1`,
		`repro_pool_gets{kind="rumors"} 2`,
		"repro_sim_send_band_bucket{le=\"+Inf\"} 3",
		"repro_sim_delivery_latency_steps_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// No family header may repeat anywhere in the scrape.
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if seen[line] {
				t.Errorf("repeated family header %q", line)
			}
			seen[line] = true
		}
	}
}

func TestNDJSONTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewNDJSONTracer(&buf)
	m := sim.Message{From: 0, To: 1, SentAt: 0, ReadyAt: 2}
	tr.OnSend(m)
	tr.OnStep(0, 0)
	tr.OnDeliver(m, 2)
	tr.OnCrash(1, 3)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, e["kind"].(string))
	}
	want := []string{"send", "step", "deliver", "crash"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("line %d kind = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestWriteSnapshotNDJSON(t *testing.T) {
	r := NewRecorder(3)
	feedRun(r)
	var buf bytes.Buffer
	if err := WriteSnapshotNDJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var head struct {
		Kind     string       `json:"kind"`
		Snapshot snapshotJSON `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatal(err)
	}
	if head.Kind != "snapshot" || head.Snapshot.Sends != 2 {
		t.Errorf("head = %+v", head)
	}
	if len(lines) < 2 {
		t.Fatal("no point lines")
	}
	for _, l := range lines[1:] {
		var p struct {
			Kind  string `json:"kind"`
			Curve string `json:"curve"`
		}
		if err := json.Unmarshal([]byte(l), &p); err != nil {
			t.Fatalf("bad point %q: %v", l, err)
		}
		if p.Kind != "point" || (p.Curve != "reach" && p.Curve != "inflight") {
			t.Errorf("point = %+v", p)
		}
	}
}

func TestChromeTracer(t *testing.T) {
	c := NewChromeTracer(0)
	m := sim.Message{From: 0, To: 1, SentAt: 0, ReadyAt: 2}
	c.OnSend(m)
	c.OnStep(0, 0)
	c.OnDeliver(m, 2)
	c.OnStep(1, 2)
	c.OnCrash(1, 3)
	// Delivery with no observed send is skipped, not mispaired.
	c.OnDeliver(sim.Message{From: 5, To: 6, SentAt: 9, ReadyAt: 9}, 9)

	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			ID   int64  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var sendID, flowID int64
	meta := 0
	lastMetaTid := -1
	for _, e := range out.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
			if e.Tid < lastMetaTid {
				t.Errorf("metadata not sorted by tid")
			}
			lastMetaTid = e.Tid
		case e.Ph == "s":
			sendID = e.ID
		case e.Ph == "f":
			flowID = e.ID
		}
	}
	if meta == 0 {
		t.Error("no thread_name metadata")
	}
	if sendID == 0 || sendID != flowID {
		t.Errorf("flow ids unpaired: send %d, flow %d", sendID, flowID)
	}
}

func TestChromeTracerCap(t *testing.T) {
	// maxEvents below the minimum floor of NewChromeTracer: construct via
	// the public API with a tiny cap.
	c := NewChromeTracer(2)
	for i := 0; i < 10; i++ {
		c.OnStep(sim.ProcID(i), sim.Time(i))
	}
	if c.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", c.Dropped())
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
}
