package telemetry

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// NDJSONTracer is a sim.Tracer that streams every simulation event as one
// JSON object per line — the structured counterpart of the ASCII timeline,
// suitable for ad-hoc jq analysis or replay into other tools. It buffers
// internally; call Flush (or Close) before reading the output.
//
// This exporter is deliberately heavyweight (one encode per event): attach
// it to runs you want to dissect, not to whole campaigns.
type NDJSONTracer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

var _ sim.Tracer = (*NDJSONTracer)(nil)

// ndjsonEvent is the line schema. Kind is "step", "send", "deliver" or
// "crash"; the message fields are present only for send/deliver.
type ndjsonEvent struct {
	Kind    string `json:"kind"`
	T       int64  `json:"t"`
	Proc    int    `json:"proc"`
	Peer    *int   `json:"peer,omitempty"`
	SentAt  *int64 `json:"sent_at,omitempty"`
	ReadyAt *int64 `json:"ready_at,omitempty"`
}

// NewNDJSONTracer returns a tracer writing NDJSON lines to w.
func NewNDJSONTracer(w io.Writer) *NDJSONTracer {
	bw := bufio.NewWriter(w)
	return &NDJSONTracer{bw: bw, enc: json.NewEncoder(bw)}
}

func (t *NDJSONTracer) emit(e ndjsonEvent) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(e)
}

// OnStep implements sim.Tracer.
func (t *NDJSONTracer) OnStep(p sim.ProcID, at sim.Time) {
	t.emit(ndjsonEvent{Kind: "step", T: int64(at), Proc: int(p)})
}

// OnSend implements sim.Tracer.
func (t *NDJSONTracer) OnSend(m sim.Message) {
	peer := int(m.To)
	sent, ready := int64(m.SentAt), int64(m.ReadyAt)
	t.emit(ndjsonEvent{Kind: "send", T: int64(m.SentAt), Proc: int(m.From),
		Peer: &peer, SentAt: &sent, ReadyAt: &ready})
}

// OnDeliver implements sim.Tracer.
func (t *NDJSONTracer) OnDeliver(m sim.Message, at sim.Time) {
	peer := int(m.From)
	sent := int64(m.SentAt)
	t.emit(ndjsonEvent{Kind: "deliver", T: int64(at), Proc: int(m.To),
		Peer: &peer, SentAt: &sent})
}

// OnCrash implements sim.Tracer.
func (t *NDJSONTracer) OnCrash(p sim.ProcID, at sim.Time) {
	t.emit(ndjsonEvent{Kind: "crash", T: int64(at), Proc: int(p)})
}

// Flush drains the internal buffer and reports the first error seen.
func (t *NDJSONTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// WriteSnapshotNDJSON writes a Snapshot as NDJSON: one "snapshot" line
// with the scalars, then one "point" line per curve sample — a shape that
// streams into plotting pipelines without loading the whole object.
func WriteSnapshotNDJSON(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	head := struct {
		Kind     string       `json:"kind"`
		Snapshot snapshotJSON `json:"snapshot"`
	}{Kind: "snapshot", Snapshot: snapshotJSON{
		Processes:   snap.Processes,
		Steps:       snap.Steps,
		Sends:       snap.Sends,
		Delivers:    snap.Delivers,
		Crashes:     snap.Crashes,
		Reached:     snap.Reached,
		InFlight:    snap.InFlight,
		MaxInFlight: snap.MaxInFlight,
		LastEventAt: int64(snap.LastEventAt),
		SendBand:    snap.SendBand,
		Latency:     snap.Latency,
	}}
	if err := enc.Encode(head); err != nil {
		return err
	}
	writeCurve := func(name string, pts []Point) error {
		for _, p := range pts {
			line := struct {
				Kind  string  `json:"kind"`
				Curve string  `json:"curve"`
				T     int64   `json:"t"`
				V     float64 `json:"v"`
			}{Kind: "point", Curve: name, T: p.T, V: p.V}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeCurve("reach", snap.ReachCurve); err != nil {
		return err
	}
	if err := writeCurve("inflight", snap.InFlightCurve); err != nil {
		return err
	}
	return bw.Flush()
}

// snapshotJSON is the serialized form of Snapshot's scalar fields.
type snapshotJSON struct {
	Processes   int          `json:"processes"`
	Steps       int64        `json:"steps"`
	Sends       int64        `json:"sends"`
	Delivers    int64        `json:"delivers"`
	Crashes     int64        `json:"crashes"`
	Reached     int64        `json:"reached"`
	InFlight    int64        `json:"inflight"`
	MaxInFlight int64        `json:"max_inflight"`
	LastEventAt int64        `json:"last_event_at"`
	SendBand    HistSnapshot `json:"send_band"`
	Latency     HistSnapshot `json:"latency"`
}
