package telemetry

import "net/http"

// MetricsHandler serves a live OpenMetrics scrape endpoint: each request
// renders the Snapshot (plus extra gauges) returned by snap at that
// moment. The callback decouples the HTTP goroutine from the
// single-goroutine Recorder that produces snapshots — publish an
// atomically swapped copy from the recording goroutine and return it
// here, as internal/cluster's node runtime does.
func MetricsHandler(snap func() (Snapshot, []Gauge)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s, extra := snap()
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := WriteOpenMetrics(w, s, extra...); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
}
