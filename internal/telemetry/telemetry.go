// Package telemetry is the instrumentation layer of the simulation stack:
// streaming, mergeable, O(1)-per-event samplers that turn a run's raw
// event stream into the curves the paper's claims are actually about —
// informed-count over time, in-flight message pressure, per-step send
// bands (Lemma 8), delivery-latency distributions — plus exporters that
// render them as NDJSON event logs, OpenMetrics text (scrapeable by any
// Prometheus-compatible collector) and Chrome trace-event JSON (openable
// in Perfetto as a real space–time diagram).
//
// The layer is strictly observation-only and zero-overhead when disabled:
// every sampler rides the existing sim.Tracer seam (compose with sim.Tee),
// so a nil tracer keeps the kernel's allocation-free fast path untouched,
// and an attached Recorder allocates nothing per event after warm-up. No
// sampler consumes randomness or mutates anything it observes, so golden
// digests, bench baselines and fuzz sessions are byte-identical with
// telemetry on or off — the determinism tests pin this.
//
// The pieces:
//
//   - Recorder: the per-run sampler bundle (counters, reach and in-flight
//     curves, send-band and latency histograms). Mergeable across runs.
//   - Curve: a bounded streaming time series that decimates itself (stride
//     doubling) instead of growing, so a 10⁶-step run costs the same
//     memory as a 10²-step one.
//   - Histogram / LinearHist: mergeable power-of-two and fixed-width
//     histograms with deterministic quantile readout.
//   - NDJSONTracer, WriteOpenMetrics, ChromeTracer: the three export
//     formats.
//   - Watchdog: per-worker heartbeat telemetry for internal/runner grids,
//     with stuck-worker detection for long campaigns (nightly fuzz).
package telemetry

import "repro/internal/sim"

// curveSlots bounds each Recorder curve's memory; see Curve.
const curveSlots = 512

// Recorder is a sim.Tracer that folds a run's event stream into streaming
// samplers. All bookkeeping is O(1) per event and allocation-free after
// the first few samples, so a Recorder can ride along on every run of a
// large campaign. Recorders are single-goroutine, like the worlds they
// observe; merge per-run Recorders afterwards for campaign-level curves.
type Recorder struct {
	n int

	steps, sends, delivers, crashes int64
	inflight, maxInflight           int64
	lastEvent                       sim.Time

	// reach[p] marks processes that have received at least one message —
	// the O(1)-per-event proxy for the informed-count curve (a process
	// cannot learn a foreign rumor without a delivery; its own rumor is
	// known from the start).
	reach   []bool
	reached int64

	reachCurve    *Curve // reached processes over time
	inflightCurve *Curve // in-flight messages over time

	sendBand *Histogram // messages sent per (process, local step) — Lemma 8
	latency  *Histogram // delivery latency in steps (deliver t − SentAt)

	curSends []int32 // sends of the in-progress step, per process
}

var _ sim.Tracer = (*Recorder)(nil)

// NewRecorder returns a Recorder for runs of n processes.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		n:             n,
		reach:         make([]bool, n),
		reachCurve:    NewCurve(curveSlots),
		inflightCurve: NewCurve(curveSlots),
		sendBand:      NewHistogram(),
		latency:       NewHistogram(),
		curSends:      make([]int32, n),
	}
}

// tick records the time-indexed gauges whenever the event clock advances.
func (r *Recorder) tick(t sim.Time) {
	if t > r.lastEvent {
		r.lastEvent = t
	}
	r.reachCurve.Observe(int64(t), float64(r.reached))
	r.inflightCurve.Observe(int64(t), float64(r.inflight))
}

// OnStep implements sim.Tracer. The kernel fires OnStep after the step's
// sends, so curSends[p] holds exactly that step's send count.
func (r *Recorder) OnStep(p sim.ProcID, t sim.Time) {
	r.steps++
	if int(p) >= 0 && int(p) < r.n {
		r.sendBand.Observe(int64(r.curSends[p]))
		r.curSends[p] = 0
	}
	r.tick(t)
}

// OnSend implements sim.Tracer.
func (r *Recorder) OnSend(m sim.Message) {
	r.sends++
	r.inflight++
	if r.inflight > r.maxInflight {
		r.maxInflight = r.inflight
	}
	if int(m.From) >= 0 && int(m.From) < r.n {
		r.curSends[m.From]++
	}
	r.tick(m.SentAt)
}

// OnDeliver implements sim.Tracer.
func (r *Recorder) OnDeliver(m sim.Message, t sim.Time) {
	r.delivers++
	r.inflight--
	r.latency.Observe(int64(t - m.SentAt))
	if p := int(m.To); p >= 0 && p < r.n && !r.reach[p] {
		r.reach[p] = true
		r.reached++
	}
	r.tick(t)
}

// OnCrash implements sim.Tracer.
func (r *Recorder) OnCrash(p sim.ProcID, t sim.Time) {
	r.crashes++
	r.tick(t)
}

// Merge folds another run's recorder into this one: counters add, curves
// align strides and accumulate means, histograms add bucket-wise. Merging
// recorders of different n is allowed (a campaign over mixed sizes); the
// reach curve then aggregates absolute counts.
func (r *Recorder) Merge(o *Recorder) {
	r.steps += o.steps
	r.sends += o.sends
	r.delivers += o.delivers
	r.crashes += o.crashes
	r.reached += o.reached
	if o.maxInflight > r.maxInflight {
		r.maxInflight = o.maxInflight
	}
	if o.lastEvent > r.lastEvent {
		r.lastEvent = o.lastEvent
	}
	r.reachCurve.Merge(o.reachCurve)
	r.inflightCurve.Merge(o.inflightCurve)
	r.sendBand.Merge(o.sendBand)
	r.latency.Merge(o.latency)
}

// Snapshot is the exportable view of a Recorder: plain values, detached
// from the live sampler state.
type Snapshot struct {
	// Processes is the run's n (or the first run's, after merging).
	Processes int
	// Event counters.
	Steps, Sends, Delivers, Crashes int64
	// Reached counts processes that received at least one message.
	Reached int64
	// InFlight is the current send−deliver imbalance; MaxInFlight its peak.
	InFlight, MaxInFlight int64
	// LastEventAt is the latest event time observed.
	LastEventAt sim.Time
	// ReachCurve and InFlightCurve are the time-indexed gauge series.
	ReachCurve, InFlightCurve []Point
	// SendBand is the per-(process, step) send-count distribution (the
	// paper's Lemma 8 band: tears sends 0 or a−κ..a+κ per step).
	SendBand HistSnapshot
	// Latency is the delivery-latency distribution in steps.
	Latency HistSnapshot
}

// Snapshot captures the recorder's current state.
func (r *Recorder) Snapshot() Snapshot {
	return Snapshot{
		Processes:     r.n,
		Steps:         r.steps,
		Sends:         r.sends,
		Delivers:      r.delivers,
		Crashes:       r.crashes,
		Reached:       r.reached,
		InFlight:      r.inflight,
		MaxInFlight:   r.maxInflight,
		LastEventAt:   r.lastEvent,
		ReachCurve:    r.reachCurve.Points(),
		InFlightCurve: r.inflightCurve.Points(),
		SendBand:      r.sendBand.Snapshot(),
		Latency:       r.latency.Snapshot(),
	}
}
