package trace

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestTimelineGlyphs(t *testing.T) {
	cases := []struct {
		bits uint8
		want byte
	}{
		{0, '.'},
		{cellStep, '-'},
		{cellStep | cellSend, '*'},
		{cellStep | cellRecv, 'o'},
		{cellStep | cellSend | cellRecv, '#'},
		{cellCrash, 'X'},
		{cellCrash | cellStep | cellSend, 'X'}, // crash dominates
	}
	for _, c := range cases {
		if got := glyph(c.bits); got != c.want {
			t.Errorf("glyph(%b) = %c, want %c", c.bits, got, c.want)
		}
	}
}

func TestTimelineRenderSmallRun(t *testing.T) {
	cfg := sim.Config{N: 6, F: 2, D: 2, Delta: 2, Seed: 3}
	p := core.Params{N: cfg.N, F: cfg.F}
	nodes, err := core.NewNodes(core.EARS{}, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	adv, _ := adversary.ByName(adversary.PresetStandard, cfg)
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(cfg.N, 200)
	w.SetTracer(tl)
	if _, err := w.Run(core.EARS{}.Evaluator(p)); err != nil {
		t.Fatal(err)
	}
	out := tl.Render()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "legend:") {
		t.Fatalf("bad render:\n%s", out)
	}
	// Every process row exists and at least one send happened somewhere.
	if !strings.ContainsAny(out, "*#") {
		t.Fatalf("no sends drawn:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < cfg.N+2 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	t.Logf("\n%s", out)
}

func TestTimelineCrashRendering(t *testing.T) {
	tl := NewTimeline(2, 40)
	tl.OnStep(0, 0)
	tl.OnSend(sim.Message{From: 0, To: 1, SentAt: 0})
	tl.OnCrash(1, 2)
	tl.OnStep(0, 3)
	out := tl.Render()
	if !strings.Contains(out, "X") {
		t.Fatalf("crash not drawn:\n%s", out)
	}
	// After the crash the row is blank (spaces), not glyphs.
	rows := strings.Split(out, "\n")
	var p1row string
	for _, r := range rows {
		if strings.HasPrefix(r, "p1") {
			p1row = r
		}
	}
	if p1row == "" {
		t.Fatal("missing p1 row")
	}
	if !strings.HasSuffix(p1row, " ") {
		t.Fatalf("post-crash cells not blank: %q", p1row)
	}
}

func TestTimelineClipping(t *testing.T) {
	tl := NewTimeline(1, 10)
	for i := sim.Time(0); i < 50; i++ {
		tl.OnStep(0, i)
	}
	out := tl.Render()
	if !strings.Contains(out, "clipped") {
		t.Fatalf("clip note missing:\n%s", out)
	}
}

func TestTimelineIgnoresOutOfRange(t *testing.T) {
	tl := NewTimeline(2, 10)
	tl.OnStep(-1, 0)
	tl.OnStep(5, 0)
	tl.OnStep(0, -3)
	out := tl.Render()
	if strings.Contains(out, "-") && strings.Count(out, "-") > 10 {
		t.Fatalf("out-of-range events drawn:\n%s", out)
	}
}
