// Package trace renders simulated executions as ASCII space–time
// diagrams: one row per process, one column per time step. It makes the
// model tangible — adversarial scheduling gaps, delayed deliveries, crash
// points and the quiescence tail are all visible at a glance — and is
// wired into the public API (GossipConfig.Timeline) and gossipsim's
// -timeline flag for small runs.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Cell flag bits for one (process, time) cell.
const (
	cellStep uint8 = 1 << iota
	cellSend
	cellRecv
	cellCrash
)

// Timeline is a sim.Tracer that accumulates a space–time grid.
type Timeline struct {
	sim.NopTracer
	n       int
	maxCols int
	cells   [][]uint8 // [process][time]
	crashed []sim.Time
	horizon sim.Time
	clipped bool
}

var _ sim.Tracer = (*Timeline)(nil)

// NewTimeline traces n processes for up to maxCols time steps (later
// events are counted but not drawn). maxCols defaults to 160.
func NewTimeline(n, maxCols int) *Timeline {
	if maxCols <= 0 {
		maxCols = 160
	}
	t := &Timeline{
		n:       n,
		maxCols: maxCols,
		cells:   make([][]uint8, n),
		crashed: make([]sim.Time, n),
	}
	for i := range t.cells {
		t.cells[i] = make([]uint8, 0, 64)
		t.crashed[i] = -1
	}
	return t
}

// mark sets flag bits for (p, at).
func (t *Timeline) mark(p sim.ProcID, at sim.Time, bits uint8) {
	if int(p) < 0 || int(p) >= t.n || at < 0 {
		return
	}
	if at > t.horizon {
		t.horizon = at
	}
	if at >= sim.Time(t.maxCols) {
		t.clipped = true
		return
	}
	row := t.cells[p]
	for len(row) <= int(at) {
		row = append(row, 0)
	}
	row[at] |= bits
	t.cells[p] = row
}

// OnStep implements sim.Tracer.
func (t *Timeline) OnStep(p sim.ProcID, at sim.Time) { t.mark(p, at, cellStep) }

// OnSend implements sim.Tracer.
func (t *Timeline) OnSend(m sim.Message) { t.mark(m.From, m.SentAt, cellSend) }

// OnDeliver implements sim.Tracer.
func (t *Timeline) OnDeliver(m sim.Message, at sim.Time) { t.mark(m.To, at, cellRecv) }

// OnCrash implements sim.Tracer.
func (t *Timeline) OnCrash(p sim.ProcID, at sim.Time) {
	t.mark(p, at, cellCrash)
	if int(p) >= 0 && int(p) < t.n {
		t.crashed[p] = at
	}
}

// glyph maps cell bits to a character.
//
//	'X' crash   '#' step with send+receive   '*' step with send
//	'o' step with receive   '-' bare step   '·' not scheduled
func glyph(bits uint8) byte {
	switch {
	case bits&cellCrash != 0:
		return 'X'
	case bits&cellSend != 0 && bits&cellRecv != 0:
		return '#'
	case bits&cellSend != 0:
		return '*'
	case bits&cellRecv != 0:
		return 'o'
	case bits&cellStep != 0:
		return '-'
	default:
		return '.'
	}
}

// Render draws the diagram.
func (t *Timeline) Render() string {
	width := int(t.horizon) + 1
	if width > t.maxCols {
		width = t.maxCols
	}
	if width < 1 {
		width = 1
	}
	var b strings.Builder
	// Time axis: a tick every 10 columns.
	fmt.Fprintf(&b, "%6s ", "t=")
	for c := 0; c < width; c++ {
		if c%10 == 0 {
			b.WriteByte('|')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	for p := 0; p < t.n; p++ {
		fmt.Fprintf(&b, "p%-4d  ", p)
		row := t.cells[p]
		for c := 0; c < width; c++ {
			at := sim.Time(c)
			if t.crashed[p] >= 0 && at > t.crashed[p] {
				b.WriteByte(' ') // dead
				continue
			}
			var bits uint8
			if c < len(row) {
				bits = row[c]
			}
			b.WriteByte(glyph(bits))
		}
		b.WriteByte('\n')
	}
	b.WriteString("legend: '*' send  'o' receive  '#' both  '-' idle step  '.' unscheduled  'X' crash\n")
	if t.clipped {
		fmt.Fprintf(&b, "(clipped at t=%d; run continued to t=%d)\n", t.maxCols, t.horizon)
	}
	return b.String()
}
