package trace_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// regenTimeline rewrites the golden render instead of asserting it.
var regenTimeline = flag.Bool("regen-timeline", false, "rewrite testdata/timeline_trivial.golden instead of asserting it")

// TestTimelineGoldenRender pins the full rendered diagram of the same
// pinned scenario the scenario package's golden digest covers ("trivial",
// n=24, seed 1234, spread crashes). The digest pins the event stream; this
// pins the rendering of it — axis, glyph choice, crash blanking, legend —
// so a cosmetic regression in the renderer can't hide behind an unchanged
// digest. Regenerate with:
//
//	go test ./internal/trace -run TestTimelineGoldenRender -regen-timeline
//
// and commit the new file alongside the renderer change that explains it.
func TestTimelineGoldenRender(t *testing.T) {
	spec := scenario.Spec{
		Protocol: "trivial", N: 24, F: 3, D: 2, Delta: 2,
		Seed:     1234,
		MaxSteps: 200000,
		Schedule: scenario.ScheduleSpec{Kind: scenario.SchedStride, Seed: 51},
		Delay:    scenario.DelaySpec{Kind: scenario.DelayUniform, Seed: 52},
		Crashes: []scenario.CrashEvent{
			{At: 3, Proc: 1}, {At: 9, Proc: 4}, {At: 17, Proc: 2},
		},
	}
	tl := trace.NewTimeline(spec.N, 160)
	ex, err := scenario.ExecuteTraced(spec, tl)
	if err != nil {
		t.Fatal(err)
	}
	if ex.RunErr != nil {
		t.Fatalf("golden scenario failed to run: %v", ex.RunErr)
	}
	got := tl.Render()

	path := filepath.Join("testdata", "timeline_trivial.golden")
	if *regenTimeline {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -regen-timeline)", err)
	}
	if got != string(want) {
		t.Errorf("rendered timeline drifted from %s.\n"+
			"If the change is intentional, regenerate with -regen-timeline and commit it.\n"+
			"got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestTimelineCrashBeyondWindow pins the interplay of crash bookkeeping and
// maxCols truncation: a crash past the drawn window must not blank the
// process's visible row (the process was alive for every drawn column),
// and the clipped note still reports the true horizon.
func TestTimelineCrashBeyondWindow(t *testing.T) {
	tl := trace.NewTimeline(2, 10)
	for at := sim.Time(0); at < 10; at++ {
		tl.OnStep(0, at)
		tl.OnStep(1, at)
	}
	tl.OnStep(1, 30)
	tl.OnCrash(1, 30)
	out := tl.Render()
	lines := splitLines(out)
	// Row p1: all ten drawn columns stepped, none blanked by the off-screen
	// crash, no 'X' drawn inside the window.
	row := lines[2]
	for _, c := range row[7:] {
		if c != '-' {
			t.Fatalf("p1 row = %q, want ten '-' cells (off-screen crash must not blank or mark drawn columns)", row)
		}
	}
	if !contains(lines, "(clipped at t=10; run continued to t=30)") {
		t.Errorf("missing clipped note with true horizon:\n%s", out)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}
