package bitset

import "math/bits"

// Matrix is an n×n bit matrix with copy-on-write snapshots, used as the
// gossip informed-list I(p): row q holds the set of rumors known to have
// been sent to process q. Rows are stored contiguously so row operations
// (union with a rumor set, subset tests) are word-parallel.
// Like Set, a Matrix is unpooled (legacy sticky `shared` flag, garbage
// collected) or pooled (refcounted aliasing, storage recycled via Release).
// The informed-list matrix is the simulator's largest recurring allocation
// — Θ(n²) bits snapshotted into every ears/sears payload — so the pooled
// mode is what makes large-n runs feasible.
type Matrix struct {
	n      int
	stride int // words per row
	words  []uint64
	shared bool   // legacy copy-on-write flag (unpooled mode)
	ref    *share // alias refcount (pooled mode); nil = sole referent
	pool   *Pool  // nil = unpooled
}

// NewMatrix returns an all-zero n×n bit matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		n = 0
	}
	stride := wordsFor(n)
	return &Matrix{n: n, stride: stride, words: make([]uint64, n*stride)}
}

// Universe returns the dimension n.
func (m *Matrix) Universe() int { return m.n }

func (m *Matrix) ensureOwned() {
	if m.pool != nil {
		if m.ref == nil {
			return
		}
		if m.ref.count > 1 {
			w := m.pool.getMatWords()
			copy(w, m.words)
			m.ref.count--
			m.words, m.ref = w, nil
			return
		}
		m.pool.putShare(m.ref)
		m.ref = nil
		return
	}
	if m.shared {
		w := make([]uint64, len(m.words))
		copy(w, m.words)
		m.words = w
		m.shared = false
	}
}

// Snapshot returns a logically immutable alias of m; the first mutation of
// either side copies the words (copy-on-write). Snapshots of a pooled
// matrix are pooled and must be released exactly once (see Set.Snapshot).
func (m *Matrix) Snapshot() *Matrix {
	if m.pool != nil {
		if m.ref == nil {
			m.ref = m.pool.getShare()
			m.ref.count = 1
		}
		m.ref.count++
		snap := m.pool.getMat()
		snap.n, snap.stride, snap.words, snap.ref = m.n, m.stride, m.words, m.ref
		return snap
	}
	m.shared = true
	return &Matrix{n: m.n, stride: m.stride, words: m.words, shared: true}
}

// Release returns a pooled matrix's storage to its pool (no-op when
// unpooled). Same contract as Set.Release: at most once, never use after.
func (m *Matrix) Release() {
	p := m.pool
	if p == nil {
		return
	}
	if m.ref != nil {
		if m.ref.count--; m.ref.count == 0 {
			p.putMatWords(m.words)
			p.putShare(m.ref)
		}
	} else if m.words != nil {
		p.putMatWords(m.words)
	}
	p.putMat(m)
}

// Clone returns an independent deep copy.
func (m *Matrix) Clone() *Matrix {
	w := make([]uint64, len(m.words))
	copy(w, m.words)
	return &Matrix{n: m.n, stride: m.stride, words: w}
}

// Test reports whether bit (row, col) is set.
func (m *Matrix) Test(row, col int) bool {
	if row < 0 || row >= m.n || col < 0 || col >= m.n {
		return false
	}
	w := m.words[row*m.stride+col/wordBits]
	return w&(1<<(uint(col)%wordBits)) != 0
}

// Set sets bit (row, col).
func (m *Matrix) Set(row, col int) {
	if row < 0 || row >= m.n || col < 0 || col >= m.n {
		return
	}
	m.ensureOwned()
	m.words[row*m.stride+col/wordBits] |= 1 << (uint(col) % wordBits)
}

// UnionWith ORs every bit of other into m. Dimensions must match; a nil or
// mismatched other is ignored.
func (m *Matrix) UnionWith(other *Matrix) {
	if other == nil || other.n != m.n {
		return
	}
	m.ensureOwned()
	for i := range m.words {
		m.words[i] |= other.words[i]
	}
}

// RowUnionSet ORs the bits of set into the given row. Used by gossip: after
// sending all rumors V to process q, record (r, q) for every r ∈ V, i.e.
// row q ∪= V.
func (m *Matrix) RowUnionSet(row int, set *Set) {
	if row < 0 || row >= m.n || set == nil {
		return
	}
	m.ensureOwned()
	base := row * m.stride
	k := m.stride
	if len(set.words) < k {
		k = len(set.words)
	}
	for i := 0; i < k; i++ {
		m.words[base+i] |= set.words[i]
	}
}

// RowContainsSet reports whether row `row` is a superset of set, i.e.
// whether every rumor in set is known to have been sent to process row.
func (m *Matrix) RowContainsSet(row int, set *Set) bool {
	if set == nil {
		return true
	}
	if row < 0 || row >= m.n {
		return set.Empty()
	}
	base := row * m.stride
	for i, w := range set.words {
		if i >= m.stride {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^m.words[base+i] != 0 {
			return false
		}
	}
	return true
}

// RowsContainingSet returns the number of rows that are supersets of set.
// For gossip, n - RowsContainingSet(V) = |L(p)|, the number of processes
// that have not provably been sent every rumor in V.
func (m *Matrix) RowsContainingSet(set *Set) int {
	c := 0
	for row := 0; row < m.n; row++ {
		if m.RowContainsSet(row, set) {
			c++
		}
	}
	return c
}

// AllRowsContainSet reports whether every row is a superset of set
// (i.e. L(p) = ∅ in gossip terms).
func (m *Matrix) AllRowsContainSet(set *Set) bool {
	for row := 0; row < m.n; row++ {
		if !m.RowContainsSet(row, set) {
			return false
		}
	}
	return true
}

// RowCount returns the number of set bits in a row.
func (m *Matrix) RowCount(row int) int {
	if row < 0 || row >= m.n {
		return 0
	}
	base := row * m.stride
	c := 0
	for i := 0; i < m.stride; i++ {
		c += bits.OnesCount64(m.words[base+i])
	}
	return c
}

// Count returns the total number of set bits.
func (m *Matrix) Count() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}
