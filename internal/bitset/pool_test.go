package bitset

import "testing"

// TestPooledSnapshotSemantics pins the refcounted copy-on-write behavior:
// mutation after snapshot copies, release returns storage, and a sole
// owner reclaims its buffer without copying.
func TestPooledSnapshotSemantics(t *testing.T) {
	p := NewPool(130) // 3 words, exercises multi-word paths
	s := p.NewSet()
	s.Add(1)
	s.Add(64)

	snap := s.Snapshot()
	if !snap.Test(1) || !snap.Test(64) || snap.Count() != 2 {
		t.Fatalf("snapshot content wrong: %v", snap)
	}

	// Mutating the owner must not change the snapshot.
	s.Add(129)
	if snap.Test(129) {
		t.Fatal("snapshot observed post-snapshot mutation")
	}
	if !s.Test(129) || s.Count() != 3 {
		t.Fatalf("owner content wrong after copy-on-write: %v", s)
	}

	snap.Release()

	// After all snapshots are gone, the owner mutates in place (no copy):
	// take a new snapshot, release it, then mutate — the owner must
	// reclaim sole ownership.
	snap2 := s.Snapshot()
	words := &snap2.words[0]
	snap2.Release()
	s.Add(2)
	if &s.words[0] != words {
		t.Fatal("owner copied although every snapshot had been released")
	}
	if s.Count() != 4 {
		t.Fatalf("owner count = %d, want 4", s.Count())
	}
}

// TestPoolRecyclesStorage checks that released buffers are reused and that
// NewSet re-zeroes recycled (stale) storage.
func TestPoolRecyclesStorage(t *testing.T) {
	p := NewPool(200)
	s := p.NewSet()
	s.Fill()
	snap := s.Snapshot()
	s.Clear() // copy-on-write: snapshot keeps the full buffer
	snap.Release()

	if w, _, sets, _ := p.Stats(); w != 1 || sets != 1 {
		t.Fatalf("after release: %d free word buffers, %d free headers (want 1, 1)", w, sets)
	}

	// The recycled buffer held all-ones; a fresh set must still be empty.
	fresh := p.NewSet()
	if !fresh.Empty() {
		t.Fatalf("fresh pooled set not empty: %v", fresh)
	}
}

// TestPooledMatrixSemantics mirrors the set test for the informed-list
// matrix.
func TestPooledMatrixSemantics(t *testing.T) {
	p := NewPool(70)
	m := p.NewMatrix()
	m.Set(3, 65)

	snap := m.Snapshot()
	m.Set(4, 4)
	if snap.Test(4, 4) {
		t.Fatal("matrix snapshot observed post-snapshot mutation")
	}
	if !snap.Test(3, 65) {
		t.Fatal("matrix snapshot lost content")
	}
	snap.Release()

	fresh := p.NewMatrix()
	if fresh.Count() != 0 {
		t.Fatalf("fresh pooled matrix not empty: count=%d", fresh.Count())
	}
}

// TestSnapshotReleaseCycleAllocs is the allocation budget for the per-send
// hot path: once the pool is warm, snapshot → mutate (copy-on-write into a
// recycled buffer) → release must not allocate at all.
func TestSnapshotReleaseCycleAllocs(t *testing.T) {
	p := NewPool(512)
	s := p.NewSet()
	s.Add(17)
	// Warm the pool: first cycle carves slabs.
	for i := 0; i < 100; i++ {
		snap := s.Snapshot()
		s.Add(i % 512)
		snap.Release()
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		snap := s.Snapshot()
		s.Add(i % 512) // forces a copy-on-write from the pool
		i++
		snap.Release()
	})
	if allocs != 0 {
		t.Fatalf("snapshot/mutate/release cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestMergeAllocs pins the word-level merge and popcount paths at zero
// allocations (they back every rumor absorb).
func TestMergeAllocs(t *testing.T) {
	a, b := New(1024), New(1024)
	for i := 0; i < 1024; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 1024; i += 5 {
		b.Add(i)
	}
	var scratch []int32
	allocs := testing.AllocsPerRun(1000, func() {
		a.UnionWith(b)
		_ = a.Count()
		_ = a.IntersectionCount(b)
		_ = a.MissingFrom(b)
		scratch = b.AppendDiff(a, scratch[:0])
	})
	if allocs != 0 {
		t.Fatalf("merge/popcount path allocates %.1f/op, want 0", allocs)
	}
}

// TestForEachDiffNoEscape pins that the absorb-style diff iteration with a
// capturing closure does not allocate (the closure must stay on the stack).
func TestForEachDiffNoEscape(t *testing.T) {
	a, b := New(512), New(512)
	for i := 0; i < 512; i += 2 {
		a.Add(i)
	}
	b.Add(100)
	sum := 0
	now := 7
	allocs := testing.AllocsPerRun(1000, func() {
		a.ForEachDiff(b, func(i int) bool {
			sum += i + now
			return true
		})
	})
	if allocs != 0 {
		t.Fatalf("ForEachDiff closure allocates %.1f/op, want 0", allocs)
	}
}
