package bitset

import (
	"testing"
	"testing/quick"
)

func TestMatrixSetTest(t *testing.T) {
	m := NewMatrix(70)
	pairs := [][2]int{{0, 0}, {0, 69}, {69, 0}, {35, 64}, {64, 35}}
	for _, p := range pairs {
		if m.Test(p[0], p[1]) {
			t.Fatalf("(%d,%d) set before Set", p[0], p[1])
		}
		m.Set(p[0], p[1])
		if !m.Test(p[0], p[1]) {
			t.Fatalf("(%d,%d) not set after Set", p[0], p[1])
		}
	}
	if got := m.Count(); got != len(pairs) {
		t.Fatalf("Count() = %d, want %d", got, len(pairs))
	}
	// Out of range ignored.
	m.Set(-1, 0)
	m.Set(0, 70)
	if got := m.Count(); got != len(pairs) {
		t.Fatalf("out-of-range Set changed Count to %d", got)
	}
}

func TestMatrixRowOps(t *testing.T) {
	n := 100
	m := NewMatrix(n)
	v := New(n)
	v.Add(3)
	v.Add(64)
	v.Add(99)

	if m.RowContainsSet(7, v) {
		t.Fatal("empty row should not contain non-empty set")
	}
	m.RowUnionSet(7, v)
	if !m.RowContainsSet(7, v) {
		t.Fatal("row 7 should contain v after RowUnionSet")
	}
	if got := m.RowCount(7); got != 3 {
		t.Fatalf("RowCount(7) = %d, want 3", got)
	}
	if m.RowContainsSet(8, v) {
		t.Fatal("row 8 should not contain v")
	}
	if got := m.RowsContainingSet(v); got != 1 {
		t.Fatalf("RowsContainingSet = %d, want 1", got)
	}
	// Empty set is contained in every row.
	if got := m.RowsContainingSet(New(n)); got != n {
		t.Fatalf("RowsContainingSet(empty) = %d, want %d", got, n)
	}
	if m.AllRowsContainSet(v) {
		t.Fatal("AllRowsContainSet should be false")
	}
	for q := 0; q < n; q++ {
		m.RowUnionSet(q, v)
	}
	if !m.AllRowsContainSet(v) {
		t.Fatal("AllRowsContainSet should be true after union into every row")
	}
}

func TestMatrixUnionWith(t *testing.T) {
	a := NewMatrix(50)
	b := NewMatrix(50)
	a.Set(1, 2)
	b.Set(3, 4)
	a.UnionWith(b)
	if !a.Test(1, 2) || !a.Test(3, 4) {
		t.Fatal("UnionWith lost bits")
	}
	if b.Test(1, 2) {
		t.Fatal("UnionWith mutated operand")
	}
	// Mismatched dimension ignored.
	c := NewMatrix(10)
	a.UnionWith(c)
	if a.Count() != 2 {
		t.Fatal("mismatched UnionWith changed matrix")
	}
}

func TestMatrixSnapshotCOW(t *testing.T) {
	m := NewMatrix(64)
	m.Set(5, 6)
	snap := m.Snapshot()
	m.Set(7, 8)
	if snap.Test(7, 8) {
		t.Fatal("snapshot observed mutation")
	}
	if !snap.Test(5, 6) {
		t.Fatal("snapshot lost bit")
	}
	snap.Set(9, 10)
	if m.Test(9, 10) {
		t.Fatal("original observed snapshot mutation")
	}
	cl := m.Clone()
	m.Set(11, 12)
	if cl.Test(11, 12) {
		t.Fatal("clone observed mutation")
	}
}

// Property: RowContainsSet(q, v) holds iff every element of v is Test(q, ·).
func TestQuickMatrixRowContains(t *testing.T) {
	f := func(rowBits, setBits []uint16, rowSel uint8) bool {
		n := 90
		row := int(rowSel) % n
		m := NewMatrix(n)
		for _, b := range rowBits {
			m.Set(row, int(b)%n)
		}
		v := New(n)
		for _, b := range setBits {
			v.Add(int(b) % n)
		}
		want := true
		v.ForEach(func(i int) bool {
			if !m.Test(row, i) {
				want = false
				return false
			}
			return true
		})
		return m.RowContainsSet(row, v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatrixRowsContaining512(b *testing.B) {
	n := 512
	m := NewMatrix(n)
	v := NewFull(n)
	for q := 0; q < n; q++ {
		m.RowUnionSet(q, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.RowsContainingSet(v) != n {
			b.Fatal("bad count")
		}
	}
}
