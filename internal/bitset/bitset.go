// Package bitset provides dense bit sets over a fixed universe [0, n) and a
// two-dimensional bit matrix used for gossip informed-lists.
//
// Both types support copy-on-write snapshots: Snapshot returns an alias that
// shares the underlying words with the original; the first mutation of either
// side copies the words. This makes it cheap for a simulated process to send
// the same (logically immutable) state in many messages per step, which is
// essential for the message-heavy protocols in this repository (sears sends
// Θ(n^ε log n) identical payloads per local step, tears broadcasts to Θ(√n
// log n) targets).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + wordBits - 1) / wordBits
}

// Set is a dense bit set over the universe [0, n). The zero value is an
// empty set over an empty universe; use New to create a set with capacity.
//
// A set is either unpooled (pool == nil: snapshots use the legacy sticky
// `shared` flag and all storage is garbage collected) or pooled
// (pool != nil: snapshot sharing is tracked by a refcounted share record,
// storage is recycled through the pool via Release, and a mutation that
// finds itself the last referent reclaims sole ownership without copying).
// Both modes have identical observable semantics; pooling only changes
// where the bytes come from and where they go.
type Set struct {
	n      int
	words  []uint64
	shared bool   // legacy copy-on-write flag (unpooled mode)
	ref    *share // alias refcount (pooled mode); nil = sole referent
	pool   *Pool  // nil = unpooled
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, wordsFor(n))}
}

// NewFull returns the set {0, 1, ..., n-1}.
func NewFull(n int) *Set {
	s := New(n)
	s.Fill()
	return s
}

// Universe returns the size n of the universe [0, n).
func (s *Set) Universe() int { return s.n }

// ensureOwned copies the word storage if it may be shared with a snapshot.
func (s *Set) ensureOwned() {
	if s.pool != nil {
		if s.ref == nil {
			return // pooled and sole referent: mutate in place
		}
		if s.ref.count > 1 {
			w := s.pool.getWords()
			copy(w, s.words)
			s.ref.count--
			s.words, s.ref = w, nil
			return
		}
		// Every snapshot has been released; reclaim sole ownership.
		s.pool.putShare(s.ref)
		s.ref = nil
		return
	}
	if s.shared {
		w := make([]uint64, len(s.words))
		copy(w, s.words)
		s.words = w
		s.shared = false
	}
}

// Snapshot returns a logically immutable alias of s. The alias shares
// storage with s until either side mutates, at which point the mutating side
// copies. Snapshots are safe to read concurrently with mutation of the
// original only if the mutation happens in the same goroutine or is
// externally synchronized; the simulator is single-goroutine per world.
//
// A snapshot of a pooled set is itself pooled: its header comes from the
// pool and it must be released with Release exactly once when its last
// reader is done (the simulator does this when the carrying message is
// consumed). A snapshot of an unpooled set is garbage collected as before.
func (s *Set) Snapshot() *Set {
	if s.pool != nil {
		if s.ref == nil {
			s.ref = s.pool.getShare()
			s.ref.count = 1 // s itself
		}
		s.ref.count++
		snap := s.pool.getSet()
		snap.n, snap.words, snap.ref = s.n, s.words, s.ref
		return snap
	}
	s.shared = true
	return &Set{n: s.n, words: s.words, shared: true}
}

// Release returns a pooled set's storage to its pool: the header always,
// the word buffer once no other alias references it. Calling Release on an
// unpooled set is a no-op. The set must not be used after Release, and
// Release must be called at most once per pooled instance — the simulator
// guarantees both by releasing only through payload refcounts.
func (s *Set) Release() {
	p := s.pool
	if p == nil {
		return
	}
	if s.ref != nil {
		if s.ref.count--; s.ref.count == 0 {
			p.putWords(s.words)
			p.putShare(s.ref)
		}
	} else if s.words != nil {
		p.putWords(s.words)
	}
	p.putSet(s)
}

// Clone returns an independent deep copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{n: s.n, words: w}
}

// Test reports whether bit i is set. Bits outside [0, n) read as false.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Add sets bit i. Indices outside [0, n) are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.ensureOwned()
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i. Indices outside [0, n) are ignored.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.ensureOwned()
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Fill sets every bit in [0, n).
func (s *Set) Fill() {
	s.ensureOwned()
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Clear removes every bit.
func (s *Set) Clear() {
	s.ensureOwned()
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the tail bits beyond n in the last word.
func (s *Set) trim() {
	if s.n == 0 || len(s.words) == 0 {
		return
	}
	rem := uint(s.n % wordBits)
	if rem != 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Full reports whether every bit in [0, n) is set.
func (s *Set) Full() bool { return s.Count() == s.n }

// UnionWith adds every element of t to s. The universes must match in size;
// mismatched universes union over the smaller word range.
func (s *Set) UnionWith(t *Set) {
	if t == nil || t.Empty() {
		return
	}
	s.ensureOwned()
	m := len(s.words)
	if len(t.words) < m {
		m = len(t.words)
	}
	for i := 0; i < m; i++ {
		s.words[i] |= t.words[i]
	}
	s.trim()
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.ensureOwned()
	for i := range s.words {
		if t == nil || i >= len(t.words) {
			s.words[i] = 0
		} else {
			s.words[i] &= t.words[i]
		}
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	if t == nil {
		return
	}
	s.ensureOwned()
	m := len(s.words)
	if len(t.words) < m {
		m = len(t.words)
	}
	for i := 0; i < m; i++ {
		s.words[i] &^= t.words[i]
	}
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if t == nil {
		return s.Empty()
	}
	return s.SubsetOf(t) && t.SubsetOf(s)
}

// ForEach calls fn for each set bit in ascending order. If fn returns false,
// iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachDiff calls fn for each bit set in s but not in t (i.e. s \ t), in
// ascending order. If fn returns false, iteration stops early. Used to
// discover newly learned rumors when absorbing a message.
func (s *Set) ForEachDiff(t *Set, fn func(i int) bool) {
	for wi, w := range s.words {
		if t != nil && wi < len(t.words) {
			w &^= t.words[wi]
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendDiff appends to dst each bit set in s but not in t (i.e. s \ t),
// in ascending order, and returns the extended slice. It is the
// allocation-free counterpart of ForEachDiff for hot paths that reuse a
// scratch buffer (the rumor-absorb path runs once per delivered message).
func (s *Set) AppendDiff(t *Set, dst []int32) []int32 {
	for wi, w := range s.words {
		if t != nil && wi < len(t.words) {
			w &^= t.words[wi]
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, int32(wi*wordBits+b))
			w &= w - 1
		}
	}
	return dst
}

// Elements returns the set's elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	if t == nil {
		return 0
	}
	c := 0
	m := len(s.words)
	if len(t.words) < m {
		m = len(t.words)
	}
	for i := 0; i < m; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// MissingFrom returns the number of elements of s that are not in t,
// i.e. |s \ t|.
func (s *Set) MissingFrom(t *Set) int {
	c := 0
	for i, w := range s.words {
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		c += bits.OnesCount64(w &^ tw)
	}
	return c
}

// String renders the set as "{a, b, c}"; large sets are abbreviated.
func (s *Set) String() string {
	const maxShown = 16
	var b strings.Builder
	b.WriteByte('{')
	shown := 0
	s.ForEach(func(i int) bool {
		if shown > 0 {
			b.WriteString(", ")
		}
		if shown >= maxShown {
			fmt.Fprintf(&b, "... %d total", s.Count())
			return false
		}
		fmt.Fprintf(&b, "%d", i)
		shown++
		return true
	})
	b.WriteByte('}')
	return b.String()
}
