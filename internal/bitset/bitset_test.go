package bitset

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		s := New(n)
		if !s.Empty() {
			t.Errorf("New(%d) not empty", n)
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
		if s.Universe() != n {
			t.Errorf("Universe() = %d, want %d", s.Universe(), n)
		}
	}
}

func TestAddTestRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 127, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Add", i)
		}
		s.Add(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Add", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count() = %d, want 6", got)
	}
	s.Remove(63)
	if s.Test(63) {
		t.Fatal("bit 63 still set after Remove")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if !s.Empty() {
		t.Fatal("out-of-range Add mutated the set")
	}
	if s.Test(-5) || s.Test(10) {
		t.Fatal("out-of-range Test returned true")
	}
}

func TestFillFullClear(t *testing.T) {
	for _, n := range []int{1, 64, 65, 100} {
		s := New(n)
		s.Fill()
		if !s.Full() {
			t.Errorf("n=%d: Fill did not produce a full set (count %d)", n, s.Count())
		}
		if s.Count() != n {
			t.Errorf("n=%d: Count after Fill = %d", n, s.Count())
		}
		s.Clear()
		if !s.Empty() {
			t.Errorf("n=%d: Clear did not empty the set", n)
		}
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := New(200)
	b := New(200)
	for i := 0; i < 200; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Add(i)
	}
	u := a.Clone()
	u.UnionWith(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Test(i) != want {
			t.Fatalf("union bit %d = %v, want %v", i, u.Test(i), want)
		}
	}
	x := a.Clone()
	x.IntersectWith(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 && i%3 == 0
		if x.Test(i) != want {
			t.Fatalf("intersect bit %d = %v, want %v", i, x.Test(i), want)
		}
	}
	d := a.Clone()
	d.DifferenceWith(b)
	for i := 0; i < 200; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Test(i) != want {
			t.Fatalf("difference bit %d = %v, want %v", i, d.Test(i), want)
		}
	}
}

func TestSubsetEqual(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Add(5)
	a.Add(50)
	b.Add(5)
	b.Add(50)
	b.Add(99)
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if a.Equal(b) {
		t.Fatal("a should not equal b")
	}
	a.Add(99)
	if !a.Equal(b) {
		t.Fatal("a should equal b after Add(99)")
	}
	if !New(100).SubsetOf(a) {
		t.Fatal("empty set should be subset of anything")
	}
}

func TestSnapshotCopyOnWrite(t *testing.T) {
	s := New(100)
	s.Add(1)
	snap := s.Snapshot()
	// Mutating the original must not change the snapshot.
	s.Add(2)
	if snap.Test(2) {
		t.Fatal("snapshot observed mutation of original")
	}
	if !snap.Test(1) {
		t.Fatal("snapshot lost pre-snapshot bit")
	}
	// Mutating the snapshot must not change the original.
	snap.Add(3)
	if s.Test(3) {
		t.Fatal("original observed mutation of snapshot")
	}
	// Chained snapshots.
	s2 := s.Snapshot().Snapshot()
	s.Add(4)
	if s2.Test(4) {
		t.Fatal("chained snapshot observed mutation")
	}
}

func TestSnapshotIsCheapAlias(t *testing.T) {
	s := New(1 << 16)
	s.Add(12345)
	snap := s.Snapshot()
	if !snap.Test(12345) || snap.Count() != 1 {
		t.Fatal("snapshot content wrong")
	}
	// Reading must not unshare.
	if !s.shared || !snap.shared {
		t.Fatal("reads unshared the snapshot")
	}
}

func TestForEachElements(t *testing.T) {
	s := New(300)
	want := []int{0, 7, 64, 128, 255, 299}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	s.ForEach(func(int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("ForEach early stop visited %d, want 3", count)
	}
}

func TestIntersectionAndMissingCounts(t *testing.T) {
	a := New(128)
	b := New(128)
	for i := 0; i < 64; i++ {
		a.Add(i)
	}
	for i := 32; i < 96; i++ {
		b.Add(i)
	}
	if got := a.IntersectionCount(b); got != 32 {
		t.Fatalf("IntersectionCount = %d, want 32", got)
	}
	if got := a.MissingFrom(b); got != 32 {
		t.Fatalf("MissingFrom = %d, want 32", got)
	}
	if got := a.MissingFrom(nil); got != 64 {
		t.Fatalf("MissingFrom(nil) = %d, want 64", got)
	}
}

func TestStringSmall(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(3)
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: union is commutative, associative, idempotent; subset/count laws.
func TestQuickUnionLaws(t *testing.T) {
	r := rng.New(42)
	mk := func(bits []uint16, n int) *Set {
		s := New(n)
		for _, b := range bits {
			s.Add(int(b) % n)
		}
		return s
	}
	f := func(xs, ys []uint16) bool {
		n := 257
		a := mk(xs, n)
		b := mk(ys, n)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			return false
		}
		if !a.SubsetOf(ab) || !b.SubsetOf(ab) {
			return false
		}
		// |a ∪ b| = |a| + |b| - |a ∩ b|
		if ab.Count() != a.Count()+b.Count()-a.IntersectionCount(b) {
			return false
		}
		// idempotence
		aa := a.Clone()
		aa.UnionWith(a)
		if !aa.Equal(a) {
			return false
		}
		// random extra membership probe
		i := r.Intn(n)
		return ab.Test(i) == (a.Test(i) || b.Test(i))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshots never observe later mutations.
func TestQuickSnapshotIsolation(t *testing.T) {
	f := func(pre, post []uint16) bool {
		n := 300
		s := New(n)
		for _, b := range pre {
			s.Add(int(b) % n)
		}
		snap := s.Snapshot()
		before := snap.Count()
		for _, b := range post {
			s.Add(int(b) % n)
		}
		return snap.Count() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnion1024(b *testing.B) {
	x := New(1024)
	y := New(1024)
	for i := 0; i < 1024; i += 3 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkSnapshot4096(b *testing.B) {
	x := New(4096)
	x.Fill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Snapshot()
	}
}
