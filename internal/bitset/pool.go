package bitset

// Pool recycles the storage behind pooled sets and matrices of one fixed
// universe size: word buffers, Set/Matrix headers and share records. It
// exists for the simulator's hot path, where every local step snapshots a
// rumor set (and for informed-list protocols an n×n matrix) into a message
// payload that becomes garbage a few steps later — without recycling, the
// allocator and GC dominate large-n runs.
//
// A Pool is intentionally NOT safe for concurrent use. The simulation
// kernel is single-goroutine per world and every world owns its own pool,
// so free-list operations need no synchronization; sharing a pool between
// concurrently running worlds is a data race. This is the same contract as
// the copy-on-write snapshots themselves (see Snapshot).
//
// Lifecycle: a pooled Set or Matrix is created by NewSet/NewMatrix or by
// Snapshot of a pooled instance, and returns its storage via Release once
// its last reader is done. The simulator drives Release through the
// payload refcounts (sim.Releasable): a payload is retained once per
// enqueued message and released once per consumed delivery. Objects that
// are never released (messages to crashed processes, branched lower-bound
// executions) simply fall back to the garbage collector — the pool holds
// no reference to outstanding storage, so forgetting to release can never
// corrupt it.
type Pool struct {
	n        int // universe size served by this pool
	setWords int // words per set buffer: wordsFor(n)
	matWords int // words per matrix buffer: n * wordsFor(n)

	words  [][]uint64
	mwords [][]uint64
	sets   []*Set
	mats   []*Matrix
	shares []*share

	// Slab state: fresh objects are carved from arena blocks rather than
	// allocated singly, so even a cold pool (a short burst where nothing
	// has been released yet) costs ~1/slabHdrs allocations per object.
	setSlab   []Set
	matSlab   []Matrix
	shareSlab []share
	wordArena []uint64 // carved into set-sized buffers
	matArena  []uint64 // carved into matrix-sized buffers
	matSlabSz int      // matrix buffers per arena block (size-adaptive)
}

// slabHdrs is the number of headers per slab block.
const slabHdrs = 64

// matSlabTarget caps a matrix arena block at ~this many words so huge-n
// pools do not over-commit memory for slack (a 20k-process informed list
// is ~50 MB per buffer; slabs only help when buffers are small).
const matSlabTarget = 1 << 16

// share tracks how many Set/Matrix headers alias one word buffer in pooled
// copy-on-write mode. A nil share on a pooled instance means the instance
// is the buffer's only referent.
type share struct {
	count int32
}

// NewPool returns a pool for sets over [0, n) and n×n matrices.
func NewPool(n int) *Pool {
	if n < 0 {
		n = 0
	}
	w := wordsFor(n)
	p := &Pool{n: n, setWords: w, matWords: n * w, matSlabSz: 1}
	if p.matWords > 0 && p.matWords <= matSlabTarget {
		p.matSlabSz = matSlabTarget / p.matWords
		if p.matSlabSz > 16 {
			p.matSlabSz = 16
		}
	}
	return p
}

// Universe returns the universe size the pool serves.
func (p *Pool) Universe() int { return p.n }

// NewSet returns an empty pooled set over [0, n). Its snapshots draw their
// headers from the pool and Release returns storage to it.
func (p *Pool) NewSet() *Set {
	s := p.getSet()
	s.n = p.n
	s.words = p.getWords()
	clearWords(s.words)
	return s
}

// NewMatrix returns an all-zero pooled n×n matrix.
func (p *Pool) NewMatrix() *Matrix {
	m := p.getMat()
	m.n = p.n
	m.stride = p.setWords
	m.words = p.getMatWords()
	clearWords(m.words)
	return m
}

// getWords returns a set-sized word buffer with UNSPECIFIED contents; the
// caller must fully overwrite or clear it.
func (p *Pool) getWords() []uint64 {
	if k := len(p.words); k > 0 {
		w := p.words[k-1]
		p.words[k-1] = nil
		p.words = p.words[:k-1]
		return w
	}
	if p.setWords == 0 {
		return nil
	}
	if len(p.wordArena) < p.setWords {
		p.wordArena = make([]uint64, slabHdrs*p.setWords)
	}
	w := p.wordArena[:p.setWords:p.setWords]
	p.wordArena = p.wordArena[p.setWords:]
	return w
}

func (p *Pool) putWords(w []uint64) {
	if len(w) == p.setWords {
		p.words = append(p.words, w)
	}
}

// getMatWords returns a matrix-sized word buffer with UNSPECIFIED contents.
func (p *Pool) getMatWords() []uint64 {
	if k := len(p.mwords); k > 0 {
		w := p.mwords[k-1]
		p.mwords[k-1] = nil
		p.mwords = p.mwords[:k-1]
		return w
	}
	if p.matWords == 0 {
		return nil
	}
	if p.matSlabSz <= 1 {
		return make([]uint64, p.matWords)
	}
	if len(p.matArena) < p.matWords {
		p.matArena = make([]uint64, p.matSlabSz*p.matWords)
	}
	w := p.matArena[:p.matWords:p.matWords]
	p.matArena = p.matArena[p.matWords:]
	return w
}

func (p *Pool) putMatWords(w []uint64) {
	if len(w) == p.matWords {
		p.mwords = append(p.mwords, w)
	}
}

func (p *Pool) getSet() *Set {
	if k := len(p.sets); k > 0 {
		s := p.sets[k-1]
		p.sets[k-1] = nil
		p.sets = p.sets[:k-1]
		return s
	}
	if len(p.setSlab) == 0 {
		p.setSlab = make([]Set, slabHdrs)
	}
	s := &p.setSlab[0]
	p.setSlab = p.setSlab[1:]
	s.pool = p
	return s
}

func (p *Pool) putSet(s *Set) {
	s.n, s.words, s.shared, s.ref = 0, nil, false, nil
	p.sets = append(p.sets, s)
}

func (p *Pool) getMat() *Matrix {
	if k := len(p.mats); k > 0 {
		m := p.mats[k-1]
		p.mats[k-1] = nil
		p.mats = p.mats[:k-1]
		return m
	}
	if len(p.matSlab) == 0 {
		p.matSlab = make([]Matrix, slabHdrs)
	}
	m := &p.matSlab[0]
	p.matSlab = p.matSlab[1:]
	m.pool = p
	return m
}

func (p *Pool) putMat(m *Matrix) {
	m.n, m.stride, m.words, m.shared, m.ref = 0, 0, nil, false, nil
	p.mats = append(p.mats, m)
}

func (p *Pool) getShare() *share {
	if k := len(p.shares); k > 0 {
		s := p.shares[k-1]
		p.shares[k-1] = nil
		p.shares = p.shares[:k-1]
		return s
	}
	if len(p.shareSlab) == 0 {
		p.shareSlab = make([]share, slabHdrs)
	}
	s := &p.shareSlab[0]
	p.shareSlab = p.shareSlab[1:]
	return s
}

func (p *Pool) putShare(s *share) {
	s.count = 0
	p.shares = append(p.shares, s)
}

// clearWords zeroes a buffer (recycled buffers carry stale contents).
func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// Stats reports the free-list sizes (testing and diagnostics).
func (p *Pool) Stats() (words, matWords, sets, mats int) {
	return len(p.words), len(p.mwords), len(p.sets), len(p.mats)
}
