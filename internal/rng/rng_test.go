package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestCloneProducesSameFuture(t *testing.T) {
	a := New(99)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	b := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("clone diverged from original")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	root := New(1)
	c1 := root.Fork(1)
	c2 := root.Fork(2)
	c1again := root.Fork(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Fork with same id not reproducible")
	}
	// Fork must not advance the parent.
	p1 := New(1)
	p2 := New(1)
	p1.Fork(55)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Fork advanced the parent state")
	}
	// Streams should differ.
	equalCount := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			equalCount++
		}
	}
	if equalCount > 2 {
		t.Fatalf("forked streams collided %d/1000 times", equalCount)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n = 10
	const trials = 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(13)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", p)
	}
}

func TestPerm(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSample(t *testing.T) {
	r := New(19)
	for trial := 0; trial < 100; trial++ {
		s := r.Sample(50, 10)
		if len(s) != 10 {
			t.Fatalf("Sample(50,10) length %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("Sample invalid: %v", s)
			}
			seen[v] = true
		}
	}
	if got := r.Sample(5, 10); len(got) != 5 {
		t.Fatalf("Sample(5,10) should return full permutation, got %v", got)
	}
	if got := r.Sample(5, 0); got != nil {
		t.Fatalf("Sample(5,0) = %v, want nil", got)
	}
	// Uniform coverage: each element of [0,20) should be picked ~equally.
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(20, 5) {
			counts[v]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("Sample element %d count %d, want ~%f", i, c, want)
		}
	}
}

func TestGeometric(t *testing.T) {
	r := New(23)
	if r.Geometric(1) != 1 {
		t.Fatal("Geometric(1) != 1")
	}
	sum := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += r.Geometric(0.5)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-2.0) > 0.1 {
		t.Fatalf("Geometric(0.5) mean %v, want ~2", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkSample1024of4096(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Sample(4096, 1024)
	}
}
