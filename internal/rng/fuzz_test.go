package rng

import (
	"testing"
)

// Native fuzz targets for the zero-allocation sampler variants: the
// In-place functions must consume exactly the same draws and return
// exactly the same values as their allocating originals for every
// (seed, n, k) — the property that lets the hot paths swap them in
// without perturbing any run. `go test` exercises the seed corpus on
// every CI run; `go test -fuzz` explores further.

func FuzzSampleInto(f *testing.F) {
	f.Add(int64(1), 10, 3)
	f.Add(int64(42), 1, 1)
	f.Add(int64(-7), 64, 64)
	f.Add(int64(0), 100, 0)
	f.Add(int64(99), 5, 9) // k > n: permutation path
	f.Fuzz(func(t *testing.T, seed int64, n, k int) {
		n = 1 + abs(n)%256
		k = abs(k) % (n + 8) // include the k >= n and k = 0 regimes
		a := New(seed)
		b := a.Clone()
		want := a.Sample(n, k)
		gotBuf := make([]int, 0, 8)
		got := b.SampleInto(gotBuf, n, k)
		if !equalInts(want, got) {
			t.Fatalf("SampleInto(n=%d, k=%d, seed=%d) = %v, Sample = %v", n, k, seed, got, want)
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("SampleInto(n=%d, k=%d, seed=%d) consumed different draws", n, k, seed)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("sample value %d outside [0, %d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample value %d", v)
			}
			seen[v] = true
		}
	})
}

func FuzzPermInto(f *testing.F) {
	f.Add(int64(1), 10)
	f.Add(int64(5), 1)
	f.Add(int64(-3), 255)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		n = abs(n) % 512
		a := New(seed)
		b := a.Clone()
		want := a.Perm(n)
		got := b.PermInto(make([]int, 0, 4), n)
		if !equalInts(want, got) {
			t.Fatalf("PermInto(n=%d, seed=%d) = %v, Perm = %v", n, seed, got, want)
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("PermInto(n=%d, seed=%d) consumed different draws", n, seed)
		}
		seen := make([]bool, n)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("not a permutation of [0,%d): %v", n, got)
			}
			seen[v] = true
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
