// Package rng provides a small, fast, deterministic pseudo-random number
// generator (splitmix64) with two properties the simulator depends on:
//
//   - Splittable streams: Fork derives an independent child stream from a
//     parent, so each simulated process gets its own reproducible stream and
//     the oblivious adversary gets one fixed before the execution starts.
//   - Cloneable state: Clone copies the generator, which lets the adaptive
//     lower-bound adversary of Theorem 1 branch a process's future and
//     estimate, by Monte Carlo, the expected number of messages the process
//     would send in isolation.
//
// math/rand is deliberately not used: its global state and non-splittable
// sources make adversary obliviousness and run reproducibility fragile.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with zero, but New or Fork should normally be used.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed int64) *RNG {
	return &RNG{state: mix(uint64(seed) ^ 0x9e3779b97f4a7c15)}
}

// mix is the splitmix64 finalizer, a strong 64-bit mixing function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Fork derives an independent child generator identified by id. Forking the
// same parent state with the same id yields the same child; forking with
// different ids yields streams that are independent for simulation purposes.
// Fork does not advance the parent.
func (r *RNG) Fork(id uint64) *RNG {
	return &RNG{state: mix(r.state ^ mix(id^0xd6e8feb86659fd93))}
}

// Clone returns a copy of the generator that will produce the same future
// sequence as r.
func (r *RNG) Clone() *RNG {
	return &RNG{state: r.state}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers in this repository always pass n >= 1.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// 64-bit modulo bias for n << 2^64 is far below simulation noise.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. If k >= n it returns a permutation of [0, n).
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	if k <= 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected insertions with a small map.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Shuffle so order is uniform too.
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of Bernoulli(p) trials up to and including the
// first success (support {1, 2, ...}). Used by workload generators.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return 1 << 30
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<30 {
			break
		}
	}
	return n
}
