// Package rng provides a small, fast, deterministic pseudo-random number
// generator (splitmix64) with two properties the simulator depends on:
//
//   - Splittable streams: Fork derives an independent child stream from a
//     parent, so each simulated process gets its own reproducible stream and
//     the oblivious adversary gets one fixed before the execution starts.
//   - Cloneable state: Clone copies the generator, which lets the adaptive
//     lower-bound adversary of Theorem 1 branch a process's future and
//     estimate, by Monte Carlo, the expected number of messages the process
//     would send in isolation.
//
// math/rand is deliberately not used: its global state and non-splittable
// sources make adversary obliviousness and run reproducibility fragile.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with zero, but New or Fork should normally be used.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed int64) *RNG {
	return &RNG{state: mix(uint64(seed) ^ 0x9e3779b97f4a7c15)}
}

// mix is the splitmix64 finalizer, a strong 64-bit mixing function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Fork derives an independent child generator identified by id. Forking the
// same parent state with the same id yields the same child; forking with
// different ids yields streams that are independent for simulation purposes.
// Fork does not advance the parent.
func (r *RNG) Fork(id uint64) *RNG {
	return &RNG{state: mix(r.state ^ mix(id^0xd6e8feb86659fd93))}
}

// Clone returns a copy of the generator that will produce the same future
// sequence as r.
func (r *RNG) Clone() *RNG {
	return &RNG{state: r.state}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers in this repository always pass n >= 1.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// 64-bit modulo bias for n << 2^64 is far below simulation noise.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(make([]int, 0, n), n)
}

// PermInto writes a pseudo-random permutation of [0, n) into dst (reusing
// its capacity) and returns it. The draw sequence is identical to Perm's.
func (r *RNG) PermInto(dst []int, n int) []int {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. If k >= n it returns a permutation of [0, n).
func (r *RNG) Sample(n, k int) []int {
	if k <= 0 && k < n {
		return nil
	}
	return r.SampleInto(make([]int, 0, min(k, n)), n, k)
}

// SampleInto is Sample writing into dst (reusing its capacity): k distinct
// uniform values from [0, n), a permutation of [0, n) when k >= n. It
// consumes exactly the same draws and returns exactly the same values as
// Sample for any generator state, so the two are interchangeable without
// perturbing a run; the hot simulation paths use SampleInto with a scratch
// buffer to keep per-step target selection allocation-free.
func (r *RNG) SampleInto(dst []int, n, k int) []int {
	if k >= n {
		return r.PermInto(dst, n)
	}
	if k <= 0 {
		return dst[:0]
	}
	// Floyd's algorithm. Membership is tested by scanning the partial
	// output — it holds exactly the chosen values, so the test matches the
	// map-based formulation draw for draw while staying allocation-free
	// (k is small: a fan-out, not n).
	dst = dst[:0]
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if intsContain(dst, t) {
			t = j
		}
		dst = append(dst, t)
	}
	// Shuffle so order is uniform too.
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// intsContain reports whether v occurs in s.
func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of Bernoulli(p) trials up to and including the
// first success (support {1, 2, ...}). Used by workload generators.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return 1 << 30
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<30 {
			break
		}
	}
	return n
}
