package sim

import "fmt"

// This file provides the tracer-side checking hooks behind the scenario
// fuzzer (internal/scenario): a tee so several tracers can observe one run,
// a streaming digest that fingerprints an event stream, and an online
// invariant checker that re-verifies the kernel's model guarantees from the
// outside. The checker deliberately re-derives its verdicts from raw events
// only — never from World internals — so a kernel regression (a broken
// crash budget, a delay clamp gone missing) is caught by an independent
// witness instead of being self-certified.

// MultiTracer fans events out to several tracers in order. Nil entries are
// skipped, so callers can compose optional observers without branching.
type MultiTracer []Tracer

var _ Tracer = MultiTracer(nil)

// Tee returns a tracer delivering every event to each non-nil tracer in
// ts, in argument order. With zero or one non-nil tracers it collapses to
// nil or that tracer, preserving the kernel's nil-tracer fast path.
func Tee(ts ...Tracer) Tracer {
	var live MultiTracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// OnStep implements Tracer.
func (m MultiTracer) OnStep(p ProcID, t Time) {
	for _, tr := range m {
		tr.OnStep(p, t)
	}
}

// OnSend implements Tracer.
func (m MultiTracer) OnSend(msg Message) {
	for _, tr := range m {
		tr.OnSend(msg)
	}
}

// OnDeliver implements Tracer.
func (m MultiTracer) OnDeliver(msg Message, t Time) {
	for _, tr := range m {
		tr.OnDeliver(msg, t)
	}
}

// OnCrash implements Tracer.
func (m MultiTracer) OnCrash(p ProcID, t Time) {
	for _, tr := range m {
		tr.OnCrash(p, t)
	}
}

// DigestTracer folds every simulation event into one order-sensitive
// 64-bit FNV-1a fingerprint. Two runs with equal digests and equal event
// counts executed the same event stream (up to hash collision); the
// scenario fuzzer uses this to pin pooled ≡ unpooled equivalence and
// replay identity without materializing event logs, and the golden-digest
// regression tests commit the fingerprints per protocol.
//
// The digest covers (kind, time, proc, peer) and, for sends, the assigned
// ReadyAt — so scheduling, routing, crash timing and every delay decision
// are all load-bearing. Payload contents are deliberately excluded:
// payload storage is what pooling recycles, and the contract being checked
// is that recycling never changes behavior, which the event stream
// witnesses.
type DigestTracer struct {
	h      uint64
	events int64
}

var _ Tracer = (*DigestTracer)(nil)

// NewDigestTracer returns an empty digest.
func NewDigestTracer() *DigestTracer {
	return &DigestTracer{h: fnvOffset64}
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fold mixes one 64-bit word into the running digest, byte by byte
// (FNV-1a), keeping the fingerprint sensitive to byte order and position.
func (d *DigestTracer) fold(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	d.h = h
}

func (d *DigestTracer) event(kind EventKind, t Time, proc, peer ProcID, extra Time) {
	d.events++
	d.fold(uint64(kind))
	d.fold(uint64(t))
	d.fold(uint64(uint32(proc))<<32 | uint64(uint32(peer)))
	d.fold(uint64(extra))
}

// OnStep implements Tracer.
func (d *DigestTracer) OnStep(p ProcID, t Time) { d.event(EventStep, t, p, -1, 0) }

// OnSend implements Tracer.
func (d *DigestTracer) OnSend(m Message) { d.event(EventSend, m.SentAt, m.From, m.To, m.ReadyAt) }

// OnDeliver implements Tracer.
func (d *DigestTracer) OnDeliver(m Message, t Time) { d.event(EventDeliver, t, m.To, m.From, m.SentAt) }

// OnCrash implements Tracer.
func (d *DigestTracer) OnCrash(p ProcID, t Time) { d.event(EventCrash, t, p, -1, 0) }

// Sum returns the digest of the events observed so far.
func (d *DigestTracer) Sum() uint64 { return d.h }

// Events returns the number of events folded in.
func (d *DigestTracer) Events() int64 { return d.events }

// Violation is one invariant breach observed by an InvariantChecker.
type Violation struct {
	// Rule names the broken invariant ("crash-budget", "delay-clamp",
	// "post-crash", "schedule-gap", "event-order").
	Rule string
	// Detail describes the offending event.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Checker rule names, shared with the scenario oracle catalog.
const (
	RuleCrashBudget = "crash-budget"
	RuleDelayClamp  = "delay-clamp"
	RulePostCrash   = "post-crash"
	RuleScheduleGap = "schedule-gap"
	RuleEventOrder  = "event-order"
)

// maxCheckerViolations caps recorded violations; a broken kernel would
// otherwise flood memory with millions of identical reports.
const maxCheckerViolations = 64

// InvariantChecker is a Tracer that re-verifies the system model's
// guarantees online, from events alone:
//
//   - crash-budget: at most F processes ever crash, and no process crashes
//     twice (paper §1: up to f < n crash failures).
//   - delay-clamp: every send's assigned delay ReadyAt−SentAt lies in
//     [1, D] (the d bound on message delivery).
//   - post-crash: a crashed process never steps, never sends, and is never
//     delivered a message (crashes are clean halts).
//   - schedule-gap: the gap between consecutive steps of a live process
//     never exceeds MaxGap (the relative-speed bound; pass 2δ−1 for
//     schedules like Stride that redraw phases per period, δ for strictly
//     periodic ones, or 0 to disable).
//   - event-order: event times never decrease, and a message is delivered
//     no earlier than ReadyAt and strictly after SentAt.
//
// The checker allocates O(N) once and does O(1) work per event, so it can
// ride along on every fuzzing run.
type InvariantChecker struct {
	f      int
	d      Time
	maxGap Time

	crashed   []bool
	lastStep  []Time
	stepped   []bool
	crashes   int
	lastTime  Time
	truncated int64 // violations dropped past the cap

	violations []Violation
}

var _ Tracer = (*InvariantChecker)(nil)

// NewInvariantChecker returns a checker for a run of n processes with
// crash budget f, delay bound d and step-gap bound maxGap (0 disables the
// schedule-gap rule).
func NewInvariantChecker(n, f int, d, maxGap Time) *InvariantChecker {
	c := &InvariantChecker{
		f:        f,
		d:        d,
		maxGap:   maxGap,
		crashed:  make([]bool, n),
		lastStep: make([]Time, n),
		stepped:  make([]bool, n),
	}
	return c
}

func (c *InvariantChecker) violatef(rule, format string, args ...any) {
	if len(c.violations) >= maxCheckerViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// in reports whether p is a valid process index for this checker.
func (c *InvariantChecker) in(p ProcID) bool {
	return int(p) >= 0 && int(p) < len(c.crashed)
}

// clock checks global event-time monotonicity.
func (c *InvariantChecker) clock(t Time) {
	if t < c.lastTime {
		c.violatef(RuleEventOrder, "event at t=%d after event at t=%d", t, c.lastTime)
		return
	}
	c.lastTime = t
}

// OnStep implements Tracer.
func (c *InvariantChecker) OnStep(p ProcID, t Time) {
	c.clock(t)
	if !c.in(p) {
		c.violatef(RuleEventOrder, "step by out-of-range process %d", p)
		return
	}
	if c.crashed[p] {
		c.violatef(RulePostCrash, "process %d stepped at t=%d after crashing", p, t)
	}
	if c.maxGap > 0 && c.stepped[p] && t-c.lastStep[p] > c.maxGap {
		c.violatef(RuleScheduleGap, "process %d starved: steps at t=%d and t=%d exceed gap bound %d",
			p, c.lastStep[p], t, c.maxGap)
	}
	c.lastStep[p] = t
	c.stepped[p] = true
}

// OnSend implements Tracer.
func (c *InvariantChecker) OnSend(m Message) {
	c.clock(m.SentAt)
	if !c.in(m.From) || !c.in(m.To) {
		c.violatef(RuleEventOrder, "send %d->%d out of range", m.From, m.To)
		return
	}
	if c.crashed[m.From] {
		c.violatef(RulePostCrash, "process %d sent to %d at t=%d after crashing", m.From, m.To, m.SentAt)
	}
	delay := m.ReadyAt - m.SentAt
	if delay < 1 || delay > c.d {
		c.violatef(RuleDelayClamp, "send %d->%d at t=%d has delay %d outside [1, %d]",
			m.From, m.To, m.SentAt, delay, c.d)
	}
}

// OnDeliver implements Tracer.
func (c *InvariantChecker) OnDeliver(m Message, t Time) {
	c.clock(t)
	if !c.in(m.To) {
		c.violatef(RuleEventOrder, "delivery to out-of-range process %d", m.To)
		return
	}
	if c.crashed[m.To] {
		c.violatef(RulePostCrash, "message %d->%d delivered at t=%d to crashed process", m.From, m.To, t)
	}
	if t < m.ReadyAt {
		c.violatef(RuleEventOrder, "message %d->%d delivered at t=%d before ReadyAt=%d", m.From, m.To, t, m.ReadyAt)
	}
	if t <= m.SentAt {
		c.violatef(RuleEventOrder, "message %d->%d delivered at t=%d, sent at t=%d", m.From, m.To, t, m.SentAt)
	}
}

// OnCrash implements Tracer.
func (c *InvariantChecker) OnCrash(p ProcID, t Time) {
	c.clock(t)
	if !c.in(p) {
		c.violatef(RuleEventOrder, "crash of out-of-range process %d", p)
		return
	}
	if c.crashed[p] {
		c.violatef(RuleEventOrder, "process %d crashed twice (second at t=%d)", p, t)
		return
	}
	c.crashed[p] = true
	c.crashes++
	if c.crashes > c.f {
		c.violatef(RuleCrashBudget, "crash %d of process %d at t=%d exceeds budget f=%d",
			c.crashes, p, t, c.f)
	}
}

// Crashes returns the number of distinct crashes observed.
func (c *InvariantChecker) Crashes() int { return c.crashes }

// Violations returns the recorded invariant breaches (capped; see
// Truncated for the overflow count).
func (c *InvariantChecker) Violations() []Violation { return c.violations }

// Truncated returns how many violations were dropped past the cap.
func (c *InvariantChecker) Truncated() int64 { return c.truncated }

// Err returns nil when no invariant was violated, or an error summarizing
// the first breach and the total count.
func (c *InvariantChecker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("sim: %d invariant violation(s), first: %s",
		int64(len(c.violations))+c.truncated, c.violations[0])
}
