package sim

import "testing"

func mkMsg(from, to int, ready Time) Message {
	return Message{From: ProcID(from), To: ProcID(to), ReadyAt: ready, Payload: from*1000 + to}
}

// TestMailboxFIFOAndReadiness checks delivery order and ready filtering:
// ready messages come out in enqueue order, not-ready messages stay queued
// in order.
func TestMailboxFIFOAndReadiness(t *testing.T) {
	var mb mailbox
	mb.init(4)
	// Interleave ready (t<=5) and future (t=9) messages across blocks.
	for i := 0; i < 3*msgBlockCap; i++ {
		ready := Time(5)
		if i%3 == 1 {
			ready = 9
		}
		mb.enqueue(mkMsg(i, 2, ready))
	}
	if mb.count(2) != 3*msgBlockCap {
		t.Fatalf("count = %d, want %d", mb.count(2), 3*msgBlockCap)
	}

	inbox := mb.drain(2, 5, nil)
	wantReady := 2 * msgBlockCap
	if len(inbox) != wantReady {
		t.Fatalf("drained %d, want %d", len(inbox), wantReady)
	}
	prev := -1
	for _, m := range inbox {
		if int(m.From) <= prev {
			t.Fatalf("delivery out of order: %d after %d", m.From, prev)
		}
		if m.ReadyAt > 5 {
			t.Fatalf("delivered a future message (ready %d)", m.ReadyAt)
		}
		prev = int(m.From)
	}
	if mb.count(2) != msgBlockCap {
		t.Fatalf("kept %d, want %d", mb.count(2), msgBlockCap)
	}

	// Second drain at t=9 delivers the rest, still in order.
	inbox = mb.drain(2, 9, inbox[:0])
	if len(inbox) != msgBlockCap {
		t.Fatalf("second drain %d, want %d", len(inbox), msgBlockCap)
	}
	prev = -1
	for _, m := range inbox {
		if int(m.From) <= prev {
			t.Fatalf("kept-message order broken: %d after %d", m.From, prev)
		}
		prev = int(m.From)
	}
	if mb.count(2) != 0 {
		t.Fatalf("count = %d after full drain, want 0", mb.count(2))
	}
}

// TestMailboxRecyclesBlocks checks the free list: steady-state traffic
// must reuse blocks instead of allocating new ones, and recycled blocks
// must not retain payload references.
func TestMailboxRecyclesBlocks(t *testing.T) {
	var mb mailbox
	mb.init(8)
	for round := 0; round < 50; round++ {
		for i := 0; i < 4*msgBlockCap; i++ {
			mb.enqueue(mkMsg(i, i%8, Time(round)))
		}
		for p := 0; p < 8; p++ {
			_ = mb.drain(p, Time(round), nil)
		}
	}
	// One round needs ceil(4*cap/8 per destination) blocks; everything
	// beyond the first round's peak must come from the free list.
	if mb.allocated > 16 {
		t.Fatalf("allocated %d blocks for a steady 4-block working set", mb.allocated)
	}
	for b := mb.free; b != nil; b = b.next {
		for i := range b.msgs {
			if b.msgs[i].Payload != nil {
				t.Fatal("recycled block retains a payload reference")
			}
		}
	}
}

// TestMailboxSteadyStateAllocs pins the enqueue/drain cycle at zero
// allocations once the block free list is warm.
func TestMailboxSteadyStateAllocs(t *testing.T) {
	var mb mailbox
	mb.init(4)
	inbox := make([]Message, 0, 256)
	payload := Payload("steady") // precomputed: boxing a fresh value would allocate in the test itself
	cycle := func(now Time) {
		for i := 0; i < 100; i++ {
			mb.enqueue(Message{From: ProcID(i), To: ProcID(i % 4), ReadyAt: now, Payload: payload})
		}
		for p := 0; p < 4; p++ {
			inbox = mb.drain(p, now, inbox[:0])
		}
	}
	cycle(0) // warm
	now := Time(1)
	allocs := testing.AllocsPerRun(500, func() {
		cycle(now)
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state enqueue/drain allocates %.1f/op, want 0", allocs)
	}
}

// TestMailboxPartialKeepAcrossBlocks exercises the compaction path where
// kept messages span multiple blocks and trailing blocks are recycled.
func TestMailboxPartialKeepAcrossBlocks(t *testing.T) {
	var mb mailbox
	mb.init(1)
	total := 5*msgBlockCap + 7
	for i := 0; i < total; i++ {
		ready := Time(1)
		if i%2 == 0 {
			ready = 2
		}
		mb.enqueue(mkMsg(i, 0, ready))
	}
	inbox := mb.drain(0, 1, nil)
	if len(inbox)+mb.count(0) != total {
		t.Fatalf("message conservation broken: %d delivered + %d kept != %d",
			len(inbox), mb.count(0), total)
	}
	// Drain the rest and confirm total conservation and order.
	rest := mb.drain(0, 2, nil)
	if len(rest) != total-len(inbox) {
		t.Fatalf("second drain %d, want %d", len(rest), total-len(inbox))
	}
	seen := make(map[int]bool, total)
	for _, m := range append(append([]Message{}, inbox...), rest...) {
		seen[int(m.From)] = true
	}
	if len(seen) != total {
		t.Fatalf("lost or duplicated messages: %d distinct of %d", len(seen), total)
	}
}
