package sim

import "testing"

func TestOutboxSendAndReset(t *testing.T) {
	o := NewOutbox(3, 7, 10)
	o.Send(4, "hello")
	o.Send(5, "world")
	msgs := o.Messages()
	if len(msgs) != 2 {
		t.Fatalf("len = %d", len(msgs))
	}
	if msgs[0].From != 3 || msgs[0].To != 4 || msgs[0].SentAt != 7 {
		t.Fatalf("bad message: %+v", msgs[0])
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d", o.Len())
	}
	o.Reset(1, 9, 10)
	if o.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	o.Send(2, "x")
	if m := o.Messages()[0]; m.From != 1 || m.SentAt != 9 {
		t.Fatalf("post-reset message: %+v", m)
	}
}

func TestOutboxDropsOutOfRange(t *testing.T) {
	o := NewOutbox(0, 0, 4)
	o.Send(-1, "a")
	o.Send(4, "b")
	o.Send(100, "c")
	if o.Len() != 0 {
		t.Fatalf("out-of-range sends kept: %d", o.Len())
	}
	o.Send(0, "self") // self-sends are allowed (uniform target on [n])
	if o.Len() != 1 {
		t.Fatal("self-send dropped")
	}
}

func TestOutboxSendAll(t *testing.T) {
	o := NewOutbox(1, 2, 8)
	o.SendAll([]ProcID{0, 3, 7, 9}, "bcast") // 9 out of range
	if o.Len() != 3 {
		t.Fatalf("SendAll kept %d", o.Len())
	}
	for _, m := range o.Messages() {
		if m.Payload != "bcast" {
			t.Fatal("payload mismatch")
		}
	}
}

func TestMetricsAggregates(t *testing.T) {
	m := newMetrics(3)
	m.Steps[0] = 5
	m.Steps[1] = 7
	m.Steps[2] = 1
	if got := m.TotalSteps(); got != 13 {
		t.Fatalf("TotalSteps = %d", got)
	}
	m.SentBy[0] = 2
	m.SentBy[2] = 9
	if got := m.MaxSentBy(); got != 9 {
		t.Fatalf("MaxSentBy = %d", got)
	}
}

func TestNopTracerIsComplete(t *testing.T) {
	var tr Tracer = NopTracer{}
	tr.OnStep(0, 0)
	tr.OnSend(Message{})
	tr.OnDeliver(Message{}, 0)
	tr.OnCrash(0, 0)
}

// sizedPayload exercises byte accounting.
type sizedPayload int

func (s sizedPayload) SizeBytes() int { return int(s) }

func TestByteAccounting(t *testing.T) {
	cfg := Config{N: 2, F: 0, D: 1, Delta: 1, Seed: 1}
	n0 := &payloadNode{id: 0, size: 100}
	n1 := &payloadNode{id: 1, size: 28}
	w, err := NewWorld(cfg, []Node{n0, n1}, everyStepAdv{delay: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 128 {
		t.Fatalf("Bytes = %d, want 128", res.Bytes)
	}
}

type payloadNode struct {
	id   ProcID
	size int
	sent bool
}

func (p *payloadNode) ID() ProcID { return p.id }
func (p *payloadNode) Step(_ Time, _ []Message, out *Outbox) {
	if !p.sent {
		p.sent = true
		out.Send(1-p.id, sizedPayload(p.size))
	}
}
func (p *payloadNode) Quiescent() bool { return p.sent }
