package sim

import (
	"errors"
	"fmt"

	"repro/internal/topology"
)

// ErrTimeout is returned (wrapped) by Run when the world fails to go quiet
// within the step budget. Tests use errors.Is to detect it; protocols that
// satisfy the paper's quiescence property must never time out.
var ErrTimeout = errors.New("sim: world did not go quiet within MaxSteps")

// ErrDeltaViolated is returned when ValidateDelta is set and the adversary
// starves a live process beyond the configured δ bound.
var ErrDeltaViolated = errors.New("sim: schedule violated the δ bound")

// World is a single-threaded discrete-time simulation of the paper's model.
// It is intentionally not goroutine-per-process: adversarial scheduling,
// exact message counting and reproducibility all require a deterministic
// sequential kernel. (Goroutines and channels are used by the example
// applications that embed the library, not by the model itself.)
//
// Config.Shards > 1 swaps in the sharded superstep engine (shard.go): node
// Steps run on worker goroutines over per-shard mailboxes, while every
// order-sensitive operation replays serially in canonical order — output
// stays bit-identical to the serial kernel for every shard count.
type World struct {
	cfg     Config
	nodes   []Node
	adv     Adversary
	tracer  Tracer
	probe   func(View)
	box     mailbox      // undelivered messages, pooled in recycled blocks
	eng     *shardEngine // non-nil when Config.Shards selects supersteps
	alive   []bool
	nAlive  int
	now     Time
	metrics *Metrics

	lastSched []Time // last time each process was scheduled (δ validation)

	schedBuf []ProcID
	crashBuf []ProcID
	inboxBuf []Message
	outbox   Outbox
}

var _ View = (*World)(nil)

// NewWorld creates a world over the given nodes and adversary. The nodes
// slice must have length cfg.N and node i must report ID i.
func NewWorld(cfg Config, nodes []Node, adv Adversary) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != cfg.N {
		return nil, fmt.Errorf("sim: %d nodes for N = %d", len(nodes), cfg.N)
	}
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("sim: node %d is nil", i)
		}
		if int(nd.ID()) != i {
			return nil, fmt.Errorf("sim: node at index %d reports ID %d", i, nd.ID())
		}
	}
	if adv == nil {
		return nil, errors.New("sim: adversary is nil")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps(cfg)
	}
	w := &World{
		cfg:       cfg,
		nodes:     nodes,
		adv:       adv,
		alive:     make([]bool, cfg.N),
		nAlive:    cfg.N,
		metrics:   newMetrics(cfg.N),
		lastSched: make([]Time, cfg.N),
	}
	if shards := EffectiveShards(cfg.N, cfg.Shards); shards > 1 {
		w.eng = newShardEngine(w, shards, cfg.ShardWorkers)
	} else {
		w.box.init(cfg.N)
	}
	for i := range w.alive {
		w.alive[i] = true
		w.lastSched[i] = -1
	}
	return w, nil
}

// SetTracer installs an event tracer (nil disables tracing).
func (w *World) SetTracer(t Tracer) { w.tracer = t }

// SetProbe installs a function invoked with the world view at the end of
// every time step (nil disables). Probes let experiments observe protocol
// milestones (e.g. the stage structure of the ears analysis) without
// touching the protocols; they must not mutate anything.
func (w *World) SetProbe(probe func(View)) { w.probe = probe }

// N implements View.
func (w *World) N() int { return w.cfg.N }

// Now implements View.
func (w *World) Now() Time { return w.now }

// Alive implements View.
func (w *World) Alive(p ProcID) bool {
	return int(p) >= 0 && int(p) < w.cfg.N && w.alive[p]
}

// AliveCount implements View.
func (w *World) AliveCount() int { return w.nAlive }

// Node implements View.
func (w *World) Node(p ProcID) Node { return w.nodes[p] }

// MessagesSent implements View.
func (w *World) MessagesSent() int64 { return w.metrics.Messages }

// StepsTaken implements View.
func (w *World) StepsTaken(p ProcID) int64 {
	if int(p) < 0 || int(p) >= w.cfg.N {
		return 0
	}
	return w.metrics.Steps[p]
}

// Graph implements View: the communication topology (nil = complete).
func (w *World) Graph() topology.Graph { return w.cfg.Graph }

// Metrics exposes the accumulated metrics (read-only use).
func (w *World) Metrics() *Metrics { return w.metrics }

// ArenaStats snapshots the mailbox block arena — telemetry for memory
// pressure and recycling efficacy (observation-only, cheap). Sharded
// worlds aggregate their per-shard arenas.
func (w *World) ArenaStats() ArenaStats {
	if w.eng != nil {
		return w.eng.stats()
	}
	return w.box.stats()
}

// Config returns the world configuration.
func (w *World) Config() Config { return w.cfg }

// Run executes the simulation until the world goes quiet (every live node
// quiescent and no message in flight to a live process) or MaxSteps
// elapses, then judges the run with the evaluator. A nil evaluator accepts
// unconditionally with CompletedAt = quiesce time.
func (w *World) Run(eval Evaluator) (Result, error) {
	var res Result
	quiet := false
	if w.eng != nil {
		w.eng.start()
		defer w.eng.stop()
	}
	for w.now = 0; w.now < w.cfg.MaxSteps; w.now++ {
		if err := w.stepTime(); err != nil {
			return res, err
		}
		if w.isQuiet() {
			quiet = true
			break
		}
	}
	res.QuiesceAt = w.now
	res.LastSendAt = w.metrics.LastSendAt
	res.Messages = w.metrics.Messages
	res.Bytes = w.metrics.Bytes
	res.BytesKnown = w.metrics.SizedMessages == w.metrics.Messages
	res.Crashes = w.metrics.Crashes
	res.OffEdgeDrops = w.metrics.OffEdgeDrops
	res.OutOfRangeDrops = w.metrics.OutOfRangeDrops
	if !quiet {
		res.TimedOut = true
		res.Detail = "timeout"
		// The run burned its whole horizon: record it, rather than zeros,
		// so telemetry and envelope-tightness stats see the real cost.
		res.CompletedAt = res.QuiesceAt
		res.TimeComplexity = res.QuiesceAt
		if res.LastSendAt > res.TimeComplexity {
			res.TimeComplexity = res.LastSendAt
		}
		return res, fmt.Errorf("%w (MaxSteps = %d, messages = %d)", ErrTimeout, w.cfg.MaxSteps, res.Messages)
	}
	out := Outcome{OK: true, CompletedAt: w.now}
	if eval != nil {
		out = eval.Evaluate(w)
	}
	res.Completed = out.OK
	res.CompletedAt = out.CompletedAt
	res.Detail = out.Detail
	res.TimeComplexity = res.CompletedAt
	if res.LastSendAt > res.TimeComplexity {
		res.TimeComplexity = res.LastSendAt
	}
	if !out.OK {
		return res, fmt.Errorf("sim: run went quiet but evaluator rejected: %s", out.Detail)
	}
	return res, nil
}

// stepTime advances the world by one time step.
func (w *World) stepTime() error {
	// 1. Crashes at the start of the step, subject to the budget F.
	w.crashBuf = w.adv.Crashes(w.now, w, w.crashBuf[:0])
	for _, p := range w.crashBuf {
		if !w.Alive(p) || w.metrics.Crashes >= w.cfg.F {
			continue
		}
		w.alive[p] = false
		w.nAlive--
		w.metrics.Crashes++
		if w.tracer != nil {
			w.tracer.OnCrash(p, w.now)
		}
	}

	// 2. Schedule, then the step body: the serial per-process loop, or one
	// sharded superstep over the same schedule.
	w.schedBuf = w.adv.Schedule(w.now, w, w.schedBuf[:0])
	if w.eng != nil {
		w.eng.superstep(w.schedBuf)
	} else {
		for _, p := range w.schedBuf {
			if !w.Alive(p) {
				continue
			}
			if err := w.stepProcess(p); err != nil {
				return err
			}
		}
	}

	// 3. Experiment probe.
	if w.probe != nil {
		w.probe(w)
	}

	// 4. δ validation (tests only). lastSched starts at -1, so the check
	// covers the first window too: a process must take its first step by
	// t = δ-1, i.e. within δ steps of time 0, exactly as in steady state.
	// (An earlier `now >= δ` guard silently forgave a first schedule at
	// t = δ — one whole missed window.)
	if w.cfg.ValidateDelta {
		for p := 0; p < w.cfg.N; p++ {
			if w.alive[p] && w.now-w.lastSched[p] >= w.cfg.Delta {
				return fmt.Errorf("%w: process %d not scheduled in (%d, %d]",
					ErrDeltaViolated, p, w.lastSched[p], w.now)
			}
		}
	}
	return nil
}

// stepProcess runs one local step of live process p.
func (w *World) stepProcess(p ProcID) error {
	inbox := w.drainReady(p)
	w.outbox.reset(p, w.now, w.cfg.N)
	w.nodes[p].Step(w.now, inbox, &w.outbox)
	w.metrics.Steps[p]++
	w.lastSched[p] = w.now
	w.metrics.OutOfRangeDrops += w.outbox.oorDrops
	for i := range w.outbox.msgs {
		m := w.outbox.msgs[i]
		if w.cfg.Graph != nil && !w.cfg.Graph.HasEdge(int(m.From), int(m.To)) {
			// Off-edge send: the topology has no link to carry it. Dropped
			// sends do not count as messages — they never reach the wire —
			// but are tallied so experiments can detect topology-unaware
			// protocols (e.g. sync-deterministic's circulant offsets).
			w.metrics.OffEdgeDrops++
			continue
		}
		delay := w.adv.Delay(w.now, m.From, m.To)
		if delay < 1 {
			delay = 1
		}
		if delay > w.cfg.D {
			delay = w.cfg.D
		}
		m.ReadyAt = w.now + delay
		w.metrics.Messages++
		w.metrics.SentBy[m.From]++
		w.metrics.LastSendAt = w.now
		if s, ok := m.Payload.(Sizer); ok {
			w.metrics.Bytes += int64(s.SizeBytes())
			w.metrics.SizedMessages++
		}
		if obs, ok := w.adv.(SendObserver); ok {
			obs.ObserveSend(m)
		}
		if w.tracer != nil {
			w.tracer.OnSend(m)
		}
		// A pooled payload is retained once per enqueued message and
		// released in releaseInbox once the delivery is consumed.
		if rel, ok := m.Payload.(Releasable); ok {
			rel.Retain()
		}
		w.box.enqueue(m)
	}
	if w.tracer != nil {
		w.tracer.OnStep(p, w.now)
	}
	w.releaseInbox(inbox)
	return nil
}

// drainReady removes and returns the messages pending for p whose ReadyAt
// has arrived. The returned slice is valid until the next call.
func (w *World) drainReady(p ProcID) []Message {
	w.inboxBuf = w.box.drain(int(p), w.now, w.inboxBuf[:0])
	delivered := w.inboxBuf
	if len(delivered) == 0 {
		return nil
	}
	w.metrics.DeliveredTo[p] += int64(len(delivered))
	if w.tracer != nil {
		for _, m := range delivered {
			w.tracer.OnDeliver(m, w.now)
		}
	}
	return delivered
}

// releaseInbox hands consumed deliveries back to their payload pools (see
// Releasable) and clears the inbox slack so dead payloads are collectable.
func (w *World) releaseInbox(inbox []Message) {
	for i := range inbox {
		if rel, ok := inbox[i].Payload.(Releasable); ok {
			rel.Release()
		}
		inbox[i].Payload = nil
	}
}

// isQuiet reports whether no live node will act again: every live node is
// quiescent and no message is in flight to a live process. Messages pending
// for crashed processes are ignored — they will never be delivered.
func (w *World) isQuiet() bool {
	if w.eng != nil {
		return w.eng.isQuiet()
	}
	for p := 0; p < w.cfg.N; p++ {
		if !w.alive[p] {
			continue
		}
		if w.box.count(p) > 0 {
			return false
		}
		if !w.nodes[p].Quiescent() {
			return false
		}
	}
	return true
}

// PendingCount returns the number of undelivered messages destined to live
// processes (diagnostic).
func (w *World) PendingCount() int {
	c := 0
	for p := 0; p < w.cfg.N; p++ {
		if w.alive[p] {
			if w.eng != nil {
				c += w.eng.count(p)
			} else {
				c += w.box.count(p)
			}
		}
	}
	return c
}
