// Package sim implements the partially synchronous system model of
// Georgiou, Gilbert, Guerraoui and Kowalski, "On the Complexity of
// Asynchronous Gossip" (PODC 2008), Section 1 "System Model":
//
//   - n message-passing processes with identifiers 0..n-1 (the paper uses
//     1..n); up to f < n crash.
//   - Time advances in discrete steps. At every step an adversary schedules
//     an arbitrary subset of the live processes. A scheduled process
//     receives a subset of its pending messages, computes, and sends
//     messages.
//   - For an execution, d bounds message delivery: a message sent at time t
//     is received at any step of its target at time >= t+d (the adversary
//     may deliver earlier). δ bounds relative process speed: every live
//     process is scheduled at least once in any window of δ steps.
//   - An oblivious adversary fixes schedule, crashes and delays in advance;
//     an adaptive adversary may react to the execution.
//
// The simulator is deterministic: a run is a pure function of the
// configuration and seed. Time complexity is measured in simulated steps
// and message complexity in point-to-point messages, exactly the two
// quantities bounded by the paper's theorems.
package sim

import (
	"fmt"

	"repro/internal/topology"
)

// Time is a discrete simulation time step.
type Time int64

// ProcID identifies a process; valid IDs are 0..N-1.
type ProcID int32

// Payload is protocol-defined message content. Payloads must be treated as
// immutable once sent: the simulator may deliver the same Payload value to
// its target while the sender retains a reference (protocols share
// copy-on-write snapshots to make wide fan-outs cheap).
type Payload interface{}

// Releasable is optionally implemented by payloads whose storage is pooled.
// The world retains a payload once per message it enqueues and releases it
// once per consumed delivery (after the addressed process's Step returned),
// so a payload shared by a fan-out of k messages sees k retains and up to k
// releases; the payload recycles its buffers when the count returns to
// zero. Messages that are never delivered (pending to a crashed process,
// left over at a timeout) are simply never released — pooled payloads must
// degrade to garbage collection in that case.
//
// Receivers, tracers and adversaries must not retain a releasable payload
// (or anything reachable from it) beyond the callback or Step that handed
// it to them. Protocols that do retain payloads across steps — the
// consensus layer buffers messages for future instances — must use plain
// unpooled payloads, which this contract leaves untouched.
type Releasable interface {
	Retain()
	Release()
}

// Sizer is optionally implemented by payloads to report an approximate wire
// size in bytes. The paper counts messages, not bits ("this remains a
// subject for future work"); byte accounting is provided as an extension
// and reported alongside message counts when payloads implement Sizer.
type Sizer interface {
	SizeBytes() int
}

// Message is a point-to-point message in transit.
type Message struct {
	From    ProcID
	To      ProcID
	SentAt  Time
	ReadyAt Time // earliest step of To at which it is delivered
	Payload Payload
}

// Node is the protocol state machine for one process. Implementations must
// be deterministic given their injected randomness stream.
type Node interface {
	// ID returns the node's process identifier.
	ID() ProcID
	// Step executes one local step: the node consumes the delivered inbox
	// (which it must not retain) and emits sends through out.
	Step(now Time, inbox []Message, out *Outbox)
	// Quiescent reports whether the node will send no further messages
	// unless it receives new information. The world is quiet when every
	// live node is quiescent and no message is in flight.
	Quiescent() bool
}

// Cloner is implemented by nodes that support state branching. The adaptive
// adversary of Theorem 1 clones processes to estimate, over their future
// coin flips, the expected number of messages they would send in isolation.
type Cloner interface {
	CloneNode() Node
}

// View is the read-only view of the world given to adversaries, evaluators
// and tracers.
type View interface {
	// N returns the number of processes.
	N() int
	// Now returns the current time step.
	Now() Time
	// Alive reports whether p has not crashed.
	Alive(p ProcID) bool
	// AliveCount returns the number of live processes.
	AliveCount() int
	// Node returns the protocol node for p (read-only use).
	Node(p ProcID) Node
	// MessagesSent returns the total point-to-point messages sent so far.
	MessagesSent() int64
	// StepsTaken returns the number of local steps p has executed. A
	// process that never stepped cannot have initiated communication;
	// evaluators use this for validity checks.
	StepsTaken(p ProcID) int64
	// Graph returns the communication topology the world delivers over,
	// or nil for the unrestricted complete graph of the paper's model.
	Graph() topology.Graph
}

// Adversary controls scheduling, delivery delay and crashes. Oblivious
// adversaries must derive all decisions from pre-committed randomness and
// the time step only — never from the View's node states or message
// payloads. Adaptive adversaries may use everything.
type Adversary interface {
	// Schedule appends to buf the processes scheduled at time t and returns
	// the extended slice. Crashed processes in the result are skipped. The
	// schedule must respect the δ bound for live processes.
	Schedule(t Time, v View, buf []ProcID) []ProcID
	// Delay returns the delivery delay for a message sent at time t from
	// one process to another; the world clamps it to [1, D].
	Delay(t Time, from, to ProcID) Time
	// Crashes appends to buf the processes to crash at the start of time t
	// and returns the extended slice. The world enforces the crash budget F.
	Crashes(t Time, v View, buf []ProcID) []ProcID
}

// SendObserver is optionally implemented by adaptive adversaries that react
// to message sends (e.g. "crash every process that talks to the target").
type SendObserver interface {
	ObserveSend(m Message)
}

// Outcome is the verdict of an Evaluator at the end of a run.
type Outcome struct {
	// OK reports whether the protocol's correctness condition holds.
	OK bool
	// CompletedAt is the earliest time at which the condition held (e.g.
	// for gossip, when the last correct process gathered its last required
	// rumor); meaningful only when OK.
	CompletedAt Time
	// Detail describes a violation when !OK.
	Detail string
}

// Evaluator judges a finished run. It is invoked once, after the world has
// gone quiet or timed out, with full access to node states.
type Evaluator interface {
	Evaluate(v View) Outcome
}

// Config parameterizes a world.
type Config struct {
	// N is the number of processes.
	N int
	// F is the maximum number of crash failures tolerated/injected.
	F int
	// D is the maximum message delay the adversary may impose (d >= 1).
	D Time
	// Delta is the maximum scheduling gap (δ >= 1).
	Delta Time
	// Seed drives all randomness derived by the world (nodes fork
	// per-process streams from it; adversaries receive their own stream).
	Seed int64
	// MaxSteps aborts the run if the world has not gone quiet. Zero means
	// DefaultMaxSteps(cfg).
	MaxSteps Time
	// Graph restricts communication to a topology: sends along non-edges
	// are dropped (and counted in Metrics.OffEdgeDrops) instead of
	// delivered. Nil preserves the paper's model — any process may message
	// any other. Protocols receive the same graph through their parameters
	// so they sample targets from their neighborhoods; the world-level
	// filter is the enforcement backstop, not the steering mechanism.
	Graph topology.Graph
	// ValidateDelta makes the world verify the adversary's schedule obeys
	// the δ bound and return an error when violated (used in tests).
	ValidateDelta bool
	// Shards splits the run into this many contiguous id-range shards
	// executed as deterministic supersteps (see shard.go). 0 or 1 selects
	// the serial kernel; counts above N are clamped. Sharding is invisible
	// to results: every run is bit-identical — event for event, draw for
	// draw — for every shard count, which the equivalence tests and the
	// fuzzer's sharded≡serial oracle enforce.
	Shards int
	// ShardWorkers caps the goroutines executing shard phases (0 =
	// min(Shards, GOMAXPROCS)). Like Shards, it never affects results.
	ShardWorkers int
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("sim: N = %d, need N >= 1", c.N)
	case c.F < 0 || c.F >= c.N:
		return fmt.Errorf("sim: F = %d, need 0 <= F < N = %d", c.F, c.N)
	case c.D < 1:
		return fmt.Errorf("sim: D = %d, need D >= 1", c.D)
	case c.Delta < 1:
		return fmt.Errorf("sim: Delta = %d, need Delta >= 1", c.Delta)
	case c.MaxSteps < 0:
		return fmt.Errorf("sim: MaxSteps = %d, must be >= 0", c.MaxSteps)
	case c.Graph != nil && c.Graph.N() != c.N:
		return fmt.Errorf("sim: topology has %d vertices for N = %d", c.Graph.N(), c.N)
	}
	return validateShardConfig(c)
}

// DefaultMaxSteps returns a generous step budget for the configuration:
// enough for every protocol in this repository to terminate with large
// slack, while still catching non-terminating executions in tests.
func DefaultMaxSteps(c Config) Time {
	n := Time(c.N)
	if n < 2 {
		n = 2
	}
	survivors := Time(c.N - c.F)
	if survivors < 1 {
		survivors = 1
	}
	// ~ c * (n/(n-f)) * log^2 n * (d+δ) with a large constant, floored.
	log2 := Time(1)
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	steps := 512 * (n / survivors) * log2 * log2 * (c.D + c.Delta)
	if steps < 4096 {
		steps = 4096
	}
	return steps
}
