package sim

// Outbox collects the messages a node emits during one local step. It is
// owned and recycled by the world; nodes must not retain it across steps.
type Outbox struct {
	from ProcID
	now  Time
	n    int
	msgs []Message
	// oorDrops counts sends this step whose target was outside [0, n).
	// The world folds it into Metrics.OutOfRangeDrops after each step so
	// dropped sends leave a trace, mirroring the off-edge tally.
	oorDrops int64
}

// NewOutbox returns a standalone outbox for harnesses that drive nodes
// directly instead of through a World (the Theorem 1 lower-bound adversary
// simulates and branches executions by hand).
func NewOutbox(from ProcID, now Time, n int) *Outbox {
	o := &Outbox{}
	o.reset(from, now, n)
	return o
}

// Reset prepares the outbox for a new step of process from at time now in
// a system of n processes, discarding prior messages.
func (o *Outbox) Reset(from ProcID, now Time, n int) { o.reset(from, now, n) }

// Messages returns the messages collected this step. The slice is owned by
// the outbox and invalidated by the next Reset.
func (o *Outbox) Messages() []Message { return o.msgs }

// reset prepares the outbox for a new step of process p.
func (o *Outbox) reset(from ProcID, now Time, n int) {
	o.from = from
	o.now = now
	o.n = n
	o.msgs = o.msgs[:0]
	o.oorDrops = 0
}

// OutOfRangeDrops returns the number of sends dropped this step because the
// target was outside [0, n). Standalone harnesses (NewOutbox) can read it
// directly; worlds fold it into Metrics.OutOfRangeDrops.
func (o *Outbox) OutOfRangeDrops() int64 { return o.oorDrops }

// Send enqueues a point-to-point message to the given process. Sends to
// out-of-range targets are dropped and tallied in OutOfRangeDrops.
// Self-sends are permitted (the paper's protocols pick targets uniformly
// from [n], which includes the sender) and are counted as messages,
// delivered like any other.
func (o *Outbox) Send(to ProcID, payload Payload) {
	if int(to) < 0 || int(to) >= o.n {
		o.oorDrops++
		return
	}
	o.msgs = append(o.msgs, Message{
		From:    o.from,
		To:      to,
		SentAt:  o.now,
		Payload: payload,
	})
}

// SendAll sends the same payload to every target in targets.
func (o *Outbox) SendAll(targets []ProcID, payload Payload) {
	for _, t := range targets {
		o.Send(t, payload)
	}
}

// Len returns the number of messages queued this step.
func (o *Outbox) Len() int { return len(o.msgs) }
