package sim

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestShardRangeCoversAndShardOfAgrees(t *testing.T) {
	cases := []struct{ n, shards int }{
		{1, 1}, {7, 3}, {10, 3}, {16, 16}, {33, 7}, {100, 8}, {101, 13},
	}
	for _, c := range cases {
		prevHi := 0
		for s := 0; s < c.shards; s++ {
			lo, hi := ShardRange(c.n, c.shards, s)
			if lo != prevHi {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", c.n, c.shards, s, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d shards=%d: shard %d is empty [%d,%d)", c.n, c.shards, s, lo, hi)
			}
			if sz := hi - lo; sz < c.n/c.shards || sz > c.n/c.shards+1 {
				t.Fatalf("n=%d shards=%d: shard %d has unbalanced size %d", c.n, c.shards, s, sz)
			}
			for p := lo; p < hi; p++ {
				if got := ShardOf(c.n, c.shards, ProcID(p)); got != s {
					t.Fatalf("n=%d shards=%d: ShardOf(%d) = %d, want %d", c.n, c.shards, p, got, s)
				}
			}
			prevHi = hi
		}
		if prevHi != c.n {
			t.Fatalf("n=%d shards=%d: ranges end at %d", c.n, c.shards, prevHi)
		}
	}
}

func TestEffectiveShards(t *testing.T) {
	cases := []struct{ n, in, want int }{
		{10, -3, 1}, {10, 0, 1}, {10, 1, 1}, {10, 2, 2}, {10, 10, 10}, {10, 64, 10}, {1, 8, 1},
	}
	for _, c := range cases {
		if got := EffectiveShards(c.n, c.in); got != c.want {
			t.Fatalf("EffectiveShards(%d, %d) = %d, want %d", c.n, c.in, got, c.want)
		}
	}
}

func TestShardConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 4, F: 0, D: 1, Delta: 1, Shards: -1},
		{N: 4, F: 0, D: 1, Delta: 1, ShardWorkers: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, c)
		}
	}
	good := Config{N: 4, F: 0, D: 1, Delta: 1, Shards: 64, ShardWorkers: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good sharded config rejected: %v", err)
	}
}

// chatterNode keeps a multi-step conversation going: for its first `rounds`
// scheduled steps it sends to a few random targets (self-sends included),
// then it goes quiescent. Randomness comes from a private per-node stream,
// mirroring how the protocol layer seeds nodes.
type chatterNode struct {
	id     ProcID
	n      int
	r      *rng.RNG
	rounds int
	heard  int
}

func (c *chatterNode) ID() ProcID { return c.id }

func (c *chatterNode) Step(now Time, inbox []Message, out *Outbox) {
	c.heard += len(inbox)
	if c.rounds <= 0 {
		return
	}
	c.rounds--
	for k := 1 + c.r.Intn(3); k > 0; k-- {
		out.Send(ProcID(c.r.Intn(c.n)), "chatter")
	}
}

func (c *chatterNode) Quiescent() bool { return c.rounds <= 0 }

// stochasticAdv schedules a random subset of processes in random order,
// draws every delivery delay from one shared stream (the global-draw-order
// stressor: a sharded kernel only reproduces these draws if it replays
// sends in exact serial order), and crashes a couple of processes early on.
type stochasticAdv struct {
	r      *rng.RNG
	crash  []ProcID
	perm   []int
	permAt Time
}

func (a *stochasticAdv) Schedule(tm Time, v View, buf []ProcID) []ProcID {
	a.perm = a.r.PermInto(a.perm, v.N())
	a.permAt = tm
	for _, p := range a.perm {
		if a.r.Bool(0.2) {
			continue // skipped this step; scheduled again soon enough
		}
		buf = append(buf, ProcID(p))
	}
	return buf
}

func (a *stochasticAdv) Delay(Time, ProcID, ProcID) Time {
	return Time(1 + a.r.Intn(4))
}

func (a *stochasticAdv) Crashes(tm Time, _ View, buf []ProcID) []ProcID {
	for _, c := range a.crash {
		if Time(c)%3 == tm%3 { // stagger the planned crashes over steps
			buf = append(buf, c)
		}
	}
	return buf
}

// chatterRun executes one chatter world and returns its result, digest and
// a metrics snapshot.
func chatterRun(t *testing.T, cfg Config, g topology.Graph) (Result, *DigestTracer, Metrics) {
	t.Helper()
	cfg.Graph = g
	root := rng.New(cfg.Seed).Fork(77)
	nodes := make([]Node, cfg.N)
	for i := range nodes {
		nodes[i] = &chatterNode{id: ProcID(i), n: cfg.N, r: root.Fork(uint64(i)), rounds: 5}
	}
	adv := &stochasticAdv{r: rng.New(cfg.Seed).Fork(88), crash: []ProcID{2, 9}}
	w, err := NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	dig := NewDigestTracer()
	w.SetTracer(dig)
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, dig, *w.Metrics()
}

// requireSameRun asserts two runs were event-for-event identical.
func requireSameRun(t *testing.T, label string, res, ref Result, dig, refDig *DigestTracer, m, refM Metrics) {
	t.Helper()
	if res != ref {
		t.Fatalf("%s: Result diverged:\n got %+v\nwant %+v", label, res, ref)
	}
	if dig.Sum() != refDig.Sum() || dig.Events() != refDig.Events() {
		t.Fatalf("%s: digest diverged: got %016x/%d events, want %016x/%d events",
			label, dig.Sum(), dig.Events(), refDig.Sum(), refDig.Events())
	}
	if m.Messages != refM.Messages || m.Bytes != refM.Bytes ||
		m.SizedMessages != refM.SizedMessages || m.Crashes != refM.Crashes ||
		m.LastSendAt != refM.LastSendAt || m.OffEdgeDrops != refM.OffEdgeDrops ||
		m.OutOfRangeDrops != refM.OutOfRangeDrops {
		t.Fatalf("%s: scalar metrics diverged:\n got %+v\nwant %+v", label, m, refM)
	}
	for p := range refM.SentBy {
		if m.SentBy[p] != refM.SentBy[p] || m.DeliveredTo[p] != refM.DeliveredTo[p] || m.Steps[p] != refM.Steps[p] {
			t.Fatalf("%s: per-process metrics diverged at %d: sent %d/%d delivered %d/%d steps %d/%d",
				label, p, m.SentBy[p], refM.SentBy[p], m.DeliveredTo[p], refM.DeliveredTo[p], m.Steps[p], refM.Steps[p])
		}
	}
}

// TestShardedMatchesSerial is the kernel-level bit-identity contract: the
// same configuration run with every shard count (including degenerate and
// clamped ones) must produce the serial kernel's exact event stream,
// results and metrics — under a stochastic schedule, shared-stream delays
// and mid-run crashes.
func TestShardedMatchesSerial(t *testing.T) {
	for _, n := range []int{5, 33} {
		cfg := Config{N: n, F: 2, D: 4, Delta: 8, Seed: 42}
		ref, refDig, refM := chatterRun(t, cfg, nil)
		if ref.Messages == 0 {
			t.Fatal("reference run sent no messages; test is vacuous")
		}
		for _, shards := range []int{1, 2, 3, 7, n, 2 * n} {
			scfg := cfg
			scfg.Shards = shards
			res, dig, m := chatterRun(t, scfg, nil)
			requireSameRun(t, labelf("n=%d shards=%d", n, shards), res, ref, dig, refDig, m, refM)
		}
	}
}

// TestShardedMatchesSerialOnGraph repeats the contract on a sparse topology,
// where the off-edge filter must run before each delay draw: one skipped
// draw would shift the adversary's whole delay stream.
func TestShardedMatchesSerialOnGraph(t *testing.T) {
	g, err := topology.Build(topology.Spec{Family: topology.FamilyRing, N: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 24, F: 1, D: 3, Delta: 8, Seed: 11}
	ref, refDig, refM := chatterRun(t, cfg, g)
	if ref.OffEdgeDrops == 0 {
		t.Fatal("reference run dropped nothing off-edge; test is vacuous")
	}
	for _, shards := range []int{2, 5, 24} {
		scfg := cfg
		scfg.Shards = shards
		res, dig, m := chatterRun(t, scfg, g)
		requireSameRun(t, labelf("graph shards=%d", shards), res, ref, dig, refDig, m, refM)
	}
}

// TestShardWorkersInvisible pins that the worker cap is pure mechanism:
// any worker count yields the same run.
func TestShardWorkersInvisible(t *testing.T) {
	cfg := Config{N: 20, F: 0, D: 2, Delta: 8, Seed: 3, Shards: 6}
	ref, refDig, refM := chatterRun(t, cfg, nil)
	for _, workers := range []int{1, 2, 16} {
		scfg := cfg
		scfg.ShardWorkers = workers
		res, dig, m := chatterRun(t, scfg, nil)
		requireSameRun(t, labelf("workers=%d", workers), res, ref, dig, refDig, m, refM)
	}
}

func labelf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
