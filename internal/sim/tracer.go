package sim

// Tracer observes simulation events. Implementations must not mutate the
// world. A nil tracer is the fast path: the kernel skips all callbacks.
type Tracer interface {
	// OnStep fires after process p completes a local step at time t, after
	// all OnSend events of that step.
	OnStep(p ProcID, t Time)
	// OnSend fires for every message send, with ReadyAt already assigned.
	OnSend(m Message)
	// OnDeliver fires when a message is delivered to its target at time t.
	OnDeliver(m Message, t Time)
	// OnCrash fires when process p crashes at time t.
	OnCrash(p ProcID, t Time)
}

// NopTracer is a Tracer that ignores all events; useful for embedding.
type NopTracer struct{}

var _ Tracer = NopTracer{}

// OnStep implements Tracer.
func (NopTracer) OnStep(ProcID, Time) {}

// OnSend implements Tracer.
func (NopTracer) OnSend(Message) {}

// OnDeliver implements Tracer.
func (NopTracer) OnDeliver(Message, Time) {}

// OnCrash implements Tracer.
func (NopTracer) OnCrash(ProcID, Time) {}

// StepSendCounter records, per (process, local step), how many messages the
// process sent in that step. Used by the tears conformance tests for the
// paper's Lemma 8 ("every process sends either 0 or between a−κ and a+κ
// point-to-point messages in each step").
type StepSendCounter struct {
	NopTracer
	// PerStep[p] lists the number of sends in each local step of p.
	PerStep [][]int

	current []int // sends observed in the in-progress step, per process
}

// NewStepSendCounter returns a counter for n processes.
func NewStepSendCounter(n int) *StepSendCounter {
	return &StepSendCounter{
		PerStep: make([][]int, n),
		current: make([]int, n),
	}
}

// OnSend implements Tracer.
func (c *StepSendCounter) OnSend(m Message) {
	c.current[m.From]++
}

// OnStep implements Tracer. The kernel fires OnStep after the step's sends,
// so c.current[p] holds exactly the sends of the step that just finished.
func (c *StepSendCounter) OnStep(p ProcID, _ Time) {
	c.PerStep[p] = append(c.PerStep[p], c.current[p])
	c.current[p] = 0
}

// EventKind labels entries in an EventLog.
type EventKind uint8

// Event kinds recorded by EventLog.
const (
	EventStep EventKind = iota + 1
	EventSend
	EventDeliver
	EventCrash
)

// Event is one recorded simulation event.
type Event struct {
	Kind EventKind
	Time Time
	Proc ProcID // stepping, sending or crashing process
	Peer ProcID // message target (Send) or source (Deliver)
}

// EventLog records all events; intended for debugging and for causality
// checks in tests (e.g. "rumor r reached p only along message paths").
type EventLog struct {
	NopTracer
	Events []Event
}

// OnStep implements Tracer.
func (l *EventLog) OnStep(p ProcID, t Time) {
	l.Events = append(l.Events, Event{Kind: EventStep, Time: t, Proc: p})
}

// OnSend implements Tracer.
func (l *EventLog) OnSend(m Message) {
	l.Events = append(l.Events, Event{Kind: EventSend, Time: m.SentAt, Proc: m.From, Peer: m.To})
}

// OnDeliver implements Tracer.
func (l *EventLog) OnDeliver(m Message, t Time) {
	l.Events = append(l.Events, Event{Kind: EventDeliver, Time: t, Proc: m.To, Peer: m.From})
}

// OnCrash implements Tracer.
func (l *EventLog) OnCrash(p ProcID, t Time) {
	l.Events = append(l.Events, Event{Kind: EventCrash, Time: t, Proc: p})
}
