package sim

// msgBlockCap is the number of messages per mailbox block. Blocks are the
// unit of recycling: big enough that per-message overhead amortizes, small
// enough that a mostly-drained destination does not pin much memory.
const msgBlockCap = 32

// msgBlock is a fixed-capacity segment of one destination's queue.
type msgBlock struct {
	next *msgBlock
	n    int
	msgs [msgBlockCap]Message
}

// mailbox holds every undelivered message of a world as per-destination
// FIFO chains of fixed-size blocks drawn from one shared free list. It
// replaces the per-destination []Message queues: blocks emptied by a
// delivery are recycled immediately (with their payload references
// cleared), so steady-state traffic allocates nothing and delivered
// payloads become collectable (or poolable) the moment they are consumed
// instead of lingering in slice slack. Like the world that owns it, a
// mailbox is single-goroutine.
type mailbox struct {
	heads  []*msgBlock
	tails  []*msgBlock
	counts []int32
	lo     int // first destination id this mailbox serves (sharded worlds)
	free   *msgBlock

	allocated int        // blocks ever created (diagnostics)
	freeN     int        // blocks currently on the free list
	pending   int64      // undelivered messages across all destinations
	peak      int64      // high-water mark of pending
	slab      []msgBlock // fresh blocks are carved from slabs

	scratch []Message // kept-messages buffer reused across drains
}

// blockSlab is the number of blocks allocated per slab.
const blockSlab = 16

// init prepares the mailbox for destinations 0..n-1.
func (mb *mailbox) init(n int) { mb.initRange(0, n) }

// initRange prepares the mailbox for the destination range [lo, hi) — the
// id-range slice a shard owns. Storage is sized to the range, not to the
// full process count, so a sharded world's aggregate mailbox memory stays
// O(n), not O(shards·n).
func (mb *mailbox) initRange(lo, hi int) {
	mb.lo = lo
	mb.heads = make([]*msgBlock, hi-lo)
	mb.tails = make([]*msgBlock, hi-lo)
	mb.counts = make([]int32, hi-lo)
}

func (mb *mailbox) getBlock() *msgBlock {
	if b := mb.free; b != nil {
		mb.free = b.next
		mb.freeN--
		b.next = nil
		return b
	}
	if len(mb.slab) == 0 {
		mb.slab = make([]msgBlock, blockSlab)
	}
	b := &mb.slab[0]
	mb.slab = mb.slab[1:]
	mb.allocated++
	return b
}

// putBlock clears a block's message slots (dropping payload references so
// the GC and the snapshot pools are not pinned by dead queue slack) and
// pushes it on the free list.
func (mb *mailbox) putBlock(b *msgBlock) {
	for i := 0; i < b.n; i++ {
		b.msgs[i] = Message{}
	}
	b.n = 0
	b.next = mb.free
	mb.free = b
	mb.freeN++
}

// enqueue appends m to its destination's queue.
func (mb *mailbox) enqueue(m Message) {
	to := int(m.To) - mb.lo
	t := mb.tails[to]
	if t == nil || t.n == msgBlockCap {
		nb := mb.getBlock()
		if t == nil {
			mb.heads[to] = nb
		} else {
			t.next = nb
		}
		mb.tails[to] = nb
		t = nb
	}
	t.msgs[t.n] = m
	t.n++
	mb.counts[to]++
	mb.pending++
	if mb.pending > mb.peak {
		mb.peak = mb.pending
	}
}

// count returns the number of undelivered messages destined to p.
func (mb *mailbox) count(p int) int { return int(mb.counts[p-mb.lo]) }

// drain appends every message for p whose ReadyAt has arrived to inbox in
// queue order, keeps the not-yet-ready messages in order, recycles every
// block the kept messages no longer need, and returns the extended inbox.
func (mb *mailbox) drain(p int, now Time, inbox []Message) []Message {
	p -= mb.lo
	if mb.counts[p] == 0 {
		return inbox
	}
	before := mb.counts[p]
	keep := mb.scratch[:0]
	for b := mb.heads[p]; b != nil; b = b.next {
		for i := 0; i < b.n; i++ {
			if b.msgs[i].ReadyAt <= now {
				inbox = append(inbox, b.msgs[i])
			} else {
				keep = append(keep, b.msgs[i])
			}
		}
	}

	if len(keep) == 0 {
		for b := mb.heads[p]; b != nil; {
			next := b.next
			mb.putBlock(b)
			b = next
		}
		mb.heads[p], mb.tails[p] = nil, nil
		mb.counts[p] = 0
	} else {
		// Rewrite the kept messages densely into the existing chain. The
		// chain's capacity is at least the original message count ≥ len(keep),
		// so the cursor never runs past the tail.
		cur := mb.heads[p]
		idx := 0
		for {
			nn := len(keep) - idx
			if nn > msgBlockCap {
				nn = msgBlockCap
			}
			copy(cur.msgs[:nn], keep[idx:idx+nn])
			for i := nn; i < cur.n; i++ {
				cur.msgs[i] = Message{} // clear delivered slack
			}
			cur.n = nn
			idx += nn
			if idx == len(keep) {
				break
			}
			cur = cur.next
		}
		rest := cur.next
		cur.next = nil
		mb.tails[p] = cur
		for rest != nil {
			next := rest.next
			mb.putBlock(rest)
			rest = next
		}
		mb.counts[p] = int32(len(keep))
	}

	mb.pending -= int64(before - mb.counts[p])

	// Clear the scratch slack so it does not pin delivered payloads, and
	// keep its grown capacity for the next drain.
	for i := range keep {
		keep[i] = Message{}
	}
	mb.scratch = keep[:0]
	return inbox
}

// ArenaStats is a point-in-time reading of the mailbox block arena —
// telemetry for memory-pressure curves (occupancy, recycling efficacy).
type ArenaStats struct {
	// BlocksAllocated counts blocks ever carved from slabs.
	BlocksAllocated int
	// BlocksFree counts blocks currently parked on the free list.
	BlocksFree int
	// PendingMessages counts undelivered messages across all destinations.
	PendingMessages int64
	// PeakPendingMessages is the run's high-water mark of PendingMessages.
	PeakPendingMessages int64
}

// stats snapshots the arena counters.
func (mb *mailbox) stats() ArenaStats {
	return ArenaStats{
		BlocksAllocated:     mb.allocated,
		BlocksFree:          mb.freeN,
		PendingMessages:     mb.pending,
		PeakPendingMessages: mb.peak,
	}
}
