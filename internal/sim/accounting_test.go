package sim

import (
	"errors"
	"testing"
)

// Regression tests for the kernel accounting fixes: out-of-range drop
// tallies, timeout-path timing, the LastSendAt sentinel, and the
// δ-validation boundary.

// wildSender addresses targets outside [0, n) alongside a valid one: one
// in-range send and two out-of-range sends per step, for `reps` steps.
type wildSender struct {
	id   ProcID
	n    int
	reps int
}

func (w *wildSender) ID() ProcID { return w.id }
func (w *wildSender) Step(_ Time, _ []Message, out *Outbox) {
	if w.reps <= 0 {
		return
	}
	w.reps--
	out.Send((w.id+1)%ProcID(w.n), "ok")
	out.Send(ProcID(w.n), "high") // dropped: == n
	out.Send(-1, "low")           // dropped: negative
}
func (w *wildSender) Quiescent() bool { return w.reps <= 0 }

func TestOutOfRangeDropsTallied(t *testing.T) {
	const n, reps = 4, 3
	run := func(shards int) Result {
		cfg := Config{N: n, F: 0, D: 1, Delta: 1, Seed: 1, Shards: shards}
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &wildSender{id: ProcID(i), n: n, reps: reps}
		}
		w, err := NewWorld(cfg, nodes, everyStepAdv{delay: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Metrics().OutOfRangeDrops; got != res.OutOfRangeDrops {
			t.Fatalf("shards=%d: Metrics %d != Result %d", shards, got, res.OutOfRangeDrops)
		}
		return res
	}
	want := int64(n * reps * 2)
	serial := run(0)
	if serial.OutOfRangeDrops != want {
		t.Fatalf("OutOfRangeDrops = %d, want %d", serial.OutOfRangeDrops, want)
	}
	// Dropped sends never reach the wire: they must not count as messages.
	if wantMsgs := int64(n * reps); serial.Messages != wantMsgs {
		t.Fatalf("Messages = %d, want %d", serial.Messages, wantMsgs)
	}
	if sharded := run(2); sharded != serial {
		t.Fatalf("sharded run diverged:\n got %+v\nwant %+v", sharded, serial)
	}
}

// oneShotSilent sends a single message at t=0 and then stays busy forever,
// forcing the timeout path with a known LastSendAt.
type oneShotSilent struct {
	id   ProcID
	sent bool
}

func (s *oneShotSilent) ID() ProcID { return s.id }
func (s *oneShotSilent) Step(_ Time, _ []Message, out *Outbox) {
	if !s.sent {
		s.sent = true
		out.Send(1-s.id, "once")
	}
}
func (s *oneShotSilent) Quiescent() bool { return false }

func TestTimeoutResultCarriesTiming(t *testing.T) {
	cfg := Config{N: 2, F: 0, D: 1, Delta: 1, Seed: 1, MaxSteps: 50}
	nodes := []Node{&oneShotSilent{id: 0}, &oneShotSilent{id: 1}}
	w, err := NewWorld(cfg, nodes, everyStepAdv{delay: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if res.QuiesceAt != cfg.MaxSteps {
		t.Fatalf("QuiesceAt = %d, want %d", res.QuiesceAt, cfg.MaxSteps)
	}
	// The fix under test: a timed-out run must not report zero timing.
	if res.CompletedAt != res.QuiesceAt {
		t.Fatalf("CompletedAt = %d, want QuiesceAt %d", res.CompletedAt, res.QuiesceAt)
	}
	if res.TimeComplexity != res.QuiesceAt {
		t.Fatalf("TimeComplexity = %d, want %d", res.TimeComplexity, res.QuiesceAt)
	}
	if res.LastSendAt != 0 {
		t.Fatalf("LastSendAt = %d, want 0 (the t=0 send)", res.LastSendAt)
	}
}

// mutePair completes immediately without ever sending, pinning the -1
// LastSendAt sentinel: a genuine send at t=0 (TestFloodCompletes) and "no
// sends at all" are now distinguishable.
type mutePair struct{ id ProcID }

func (m *mutePair) ID() ProcID                    { return m.id }
func (m *mutePair) Step(Time, []Message, *Outbox) {}
func (m *mutePair) Quiescent() bool               { return true }

func TestLastSendAtSentinelWhenNoSends(t *testing.T) {
	cfg := Config{N: 2, F: 0, D: 1, Delta: 1, Seed: 1}
	w, err := NewWorld(cfg, []Node{&mutePair{0}, &mutePair{1}}, everyStepAdv{delay: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Fatalf("Messages = %d, want 0", res.Messages)
	}
	if res.LastSendAt != -1 {
		t.Fatalf("LastSendAt = %d, want -1 sentinel", res.LastSendAt)
	}
	// The sentinel must not drag TimeComplexity negative.
	if res.TimeComplexity < 0 {
		t.Fatalf("TimeComplexity = %d, want >= 0", res.TimeComplexity)
	}
}

// periodicAdv schedules every process at times first, first+period,
// first+2·period, … — the δ-boundary schedules the built-in adversaries
// never produce.
type periodicAdv struct {
	first, period Time
}

func (a periodicAdv) Schedule(tm Time, v View, buf []ProcID) []ProcID {
	if tm < a.first || (tm-a.first)%a.period != 0 {
		return buf
	}
	for p := 0; p < v.N(); p++ {
		buf = append(buf, ProcID(p))
	}
	return buf
}
func (a periodicAdv) Delay(Time, ProcID, ProcID) Time { return 1 }
func (a periodicAdv) Crashes(_ Time, _ View, buf []ProcID) []ProcID {
	return buf
}

// TestDeltaValidationBoundary pins the δ-validation window on both sides:
// a first schedule at t = δ−1 and a steady period of exactly δ sit inside
// the bound, while a first schedule at t = δ (one whole missed window —
// the case the removed `now >= δ` guard used to forgive) and a period of
// δ+1 are violations.
func TestDeltaValidationBoundary(t *testing.T) {
	const delta = 3
	cases := []struct {
		name    string
		adv     periodicAdv
		violate bool
	}{
		{"first at delta-1", periodicAdv{first: delta - 1, period: delta}, false},
		{"first at delta", periodicAdv{first: delta, period: delta}, true},
		{"steady period exactly delta", periodicAdv{first: 0, period: delta}, false},
		{"steady period delta+1", periodicAdv{first: 0, period: delta + 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				N: 3, F: 0, D: 1, Delta: delta, Seed: 1,
				MaxSteps: 6 * delta, ValidateDelta: true,
			}
			nodes := make([]Node, cfg.N)
			for i := range nodes {
				nodes[i] = &silentNode{ProcID(i)}
			}
			w, err := NewWorld(cfg, nodes, tc.adv)
			if err != nil {
				t.Fatal(err)
			}
			_, err = w.Run(nil)
			if tc.violate {
				if !errors.Is(err, ErrDeltaViolated) {
					t.Fatalf("want ErrDeltaViolated, got %v", err)
				}
			} else {
				// silentNode never quiesces, so a clean schedule ends in
				// a timeout — anything δ-related is a regression.
				if !errors.Is(err, ErrTimeout) {
					t.Fatalf("want ErrTimeout (clean schedule), got %v", err)
				}
			}
		})
	}
}
