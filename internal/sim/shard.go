package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Sharded superstep execution.
//
// A world with Config.Shards > 1 partitions its processes into contiguous
// id ranges and executes every time step as a deterministic superstep:
//
//	phase 0 (serial)   crashes and the adversary's schedule, exactly as in
//	                   the serial kernel, then a stable partition of the
//	                   scheduled processes by owning shard.
//	phase 1 (parallel) each shard drains its local mailbox and runs the
//	                   Step of every scheduled process it owns, in schedule
//	                   order, against the frozen end-of-previous-step
//	                   snapshot. Deliveries and sends are recorded in flat
//	                   per-shard buffers; nothing global is touched — no
//	                   tracer callbacks, no delay draws, no refcounts.
//	phase 2 (serial)   a canonical-order replay over the global schedule:
//	                   for every scheduled process, its recorded deliveries
//	                   and sends are walked in the exact order the serial
//	                   kernel would have produced, performing the delay
//	                   draws (restoring the adversary's global draw order),
//	                   metrics, tracer callbacks, payload retain/release,
//	                   and routing each send to its destination shard.
//	phase 3 (parallel) each shard enqueues its inbound messages — already
//	                   in canonical order — into its local mailbox.
//
// The contract is bit-identical output: the same schedule restricted to a
// shard is the serial execution order of that shard's processes, messages
// sent at step t are deliverable at t+1 or later (delay ≥ 1) so intra-step
// Steps are independent, and every operation with global order sensitivity
// (adversary delay draws, tracer events, metric folds, pool refcounts)
// happens in the serial replay. The equivalence tests and the fuzzer's
// sharded≡serial oracle pin this event for event.
//
// Phase barriers give the necessary happens-before edges: a shard goroutine
// only reads foreign state (copy-on-write snapshot words, write-once value
// slots) that was last written before the previous barrier.

// ShardRange returns the id range [lo, hi) owned by shard s when n
// processes are split into the given number of shards. Ranges are
// contiguous, cover 0..n-1, and differ in size by at most one.
func ShardRange(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// ShardOf returns the shard owning process p under ShardRange's partition.
func ShardOf(n, shards int, p ProcID) int {
	return int(((int64(p)+1)*int64(shards) - 1) / int64(n))
}

// EffectiveShards resolves a configured shard count for n processes:
// values below 2 select the serial kernel, and a count above n is clamped
// so no shard is empty. core.NewNodes applies the same resolution to its
// per-shard pool partition, keeping pool ownership aligned with the
// kernel's ranges.
func EffectiveShards(n, shards int) int {
	if shards < 2 {
		return 1
	}
	if shards > n {
		return n
	}
	return shards
}

// procRec is the phase-1 record of one scheduled process: index segments
// into the owning shard's flat delivered/sent buffers.
type procRec struct {
	delivLo, delivHi int32
	sentLo, sentHi   int32
	oorDrops         int64 // out-of-range drops from this Step's outbox
}

// shardRun is the per-shard state of a sharded world.
type shardRun struct {
	lo, hi int     // owned id range [lo, hi)
	box    mailbox // local mailbox, sized to the range

	sched     []ProcID  // scheduled procs owned by this shard, in order
	recs      []procRec // one record per entry of sched
	delivered []Message // flat delivery buffer (segments per record)
	sent      []Message // flat send buffer (segments per record)
	inbound   []Message // phase-2 routed messages, canonical order
	cursor    int       // phase-2 replay cursor into recs
	outbox    Outbox    // per-shard outbox, reused across steps
}

// shardEngine drives the superstep phases over a fixed worker pool.
type shardEngine struct {
	w      *World
	shards int
	sh     []shardRun

	workers int
	jobs    chan int
	phaseFn func(s int)
	wg      sync.WaitGroup
	started bool

	panicMu  sync.Mutex
	panicked any
}

// newShardEngine builds the engine for an already-validated world config.
func newShardEngine(w *World, shards, workers int) *shardEngine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	e := &shardEngine{w: w, shards: shards, workers: workers}
	e.sh = make([]shardRun, shards)
	for s := range e.sh {
		r := &e.sh[s]
		r.lo, r.hi = ShardRange(w.cfg.N, shards, s)
		r.box.initRange(r.lo, r.hi)
	}
	return e
}

// start launches the worker pool (idempotent).
func (e *shardEngine) start() {
	if e.started {
		return
	}
	e.started = true
	e.jobs = make(chan int)
	for i := 0; i < e.workers; i++ {
		go func() {
			for s := range e.jobs {
				e.runShard(s)
			}
		}()
	}
}

// stop tears the worker pool down (idempotent).
func (e *shardEngine) stop() {
	if !e.started {
		return
	}
	e.started = false
	close(e.jobs)
}

// runShard executes the current phase body for one shard, capturing panics
// so they re-surface on the world's goroutine (where runner.Map and test
// harnesses can recover them) instead of crashing the process.
func (e *shardEngine) runShard(s int) {
	defer func() {
		if p := recover(); p != nil {
			e.panicMu.Lock()
			if e.panicked == nil {
				e.panicked = p
			}
			e.panicMu.Unlock()
		}
		e.wg.Done()
	}()
	e.phaseFn(s)
}

// dispatch runs f(s) for every shard on the worker pool and waits for the
// barrier. The channel send publishes phaseFn to the workers.
func (e *shardEngine) dispatch(f func(s int)) {
	e.phaseFn = f
	e.wg.Add(e.shards)
	for s := 0; s < e.shards; s++ {
		e.jobs <- s
	}
	e.wg.Wait()
	if p := e.panicked; p != nil {
		e.panicked = nil
		panic(p)
	}
}

// superstep executes one sharded time step over the already-drawn schedule
// (phase 0 — crashes and the schedule itself — ran in World.stepTime).
func (e *shardEngine) superstep(sched []ProcID) {
	w := e.w
	// Stable partition: each shard sees its processes in schedule order,
	// with dead processes dropped here so phases 1 and 2 walk identical
	// per-shard sequences.
	for s := range e.sh {
		e.sh[s].sched = e.sh[s].sched[:0]
	}
	for _, p := range sched {
		if !w.Alive(p) {
			continue
		}
		s := ShardOf(w.cfg.N, e.shards, p)
		e.sh[s].sched = append(e.sh[s].sched, p)
	}

	e.dispatch(e.phase1)
	e.replay(sched)
	e.dispatch(e.phase3)
}

// phase1 runs the local compute of one shard: drain, Step, record.
func (e *shardEngine) phase1(s int) {
	r := &e.sh[s]
	w := e.w
	now := w.now
	r.recs = r.recs[:0]
	r.delivered = r.delivered[:0]
	r.sent = r.sent[:0]
	for _, p := range r.sched {
		dLo := len(r.delivered)
		r.delivered = r.box.drain(int(p), now, r.delivered)
		dHi := len(r.delivered)
		if dHi > dLo {
			// Per-process metric slots are owned by p's shard; the serial
			// fold order of scalar metrics is restored in the replay.
			w.metrics.DeliveredTo[p] += int64(dHi - dLo)
		}
		r.outbox.reset(p, now, w.cfg.N)
		var inbox []Message
		if dHi > dLo {
			inbox = r.delivered[dLo:dHi]
		}
		w.nodes[p].Step(now, inbox, &r.outbox)
		w.metrics.Steps[p]++
		w.lastSched[p] = now
		sLo := len(r.sent)
		r.sent = append(r.sent, r.outbox.msgs...)
		r.recs = append(r.recs, procRec{
			delivLo: int32(dLo), delivHi: int32(dHi),
			sentLo: int32(sLo), sentHi: int32(len(r.sent)),
			oorDrops: r.outbox.oorDrops,
		})
	}
}

// replay is phase 2: the serial canonical-order walk over the global
// schedule. It performs exactly the work the serial kernel interleaves
// with node Steps, in exactly the serial order: per scheduled process, the
// OnDeliver events of its consumed inbox, then per sent message the
// off-edge filter, the adversary delay draw, metrics, ObserveSend, OnSend
// and the payload retain, then OnStep, then the inbox releases.
func (e *shardEngine) replay(sched []ProcID) {
	w := e.w
	n, shards := w.cfg.N, e.shards
	for s := range e.sh {
		e.sh[s].cursor = 0
	}
	obs, observing := w.adv.(SendObserver)
	for _, p := range sched {
		if !w.Alive(p) {
			continue
		}
		r := &e.sh[ShardOf(n, shards, p)]
		rec := r.recs[r.cursor]
		r.cursor++
		w.metrics.OutOfRangeDrops += rec.oorDrops
		if w.tracer != nil {
			for _, m := range r.delivered[rec.delivLo:rec.delivHi] {
				w.tracer.OnDeliver(m, w.now)
			}
		}
		for i := rec.sentLo; i < rec.sentHi; i++ {
			m := r.sent[i]
			if w.cfg.Graph != nil && !w.cfg.Graph.HasEdge(int(m.From), int(m.To)) {
				w.metrics.OffEdgeDrops++
				continue
			}
			delay := w.adv.Delay(w.now, m.From, m.To)
			if delay < 1 {
				delay = 1
			}
			if delay > w.cfg.D {
				delay = w.cfg.D
			}
			m.ReadyAt = w.now + delay
			w.metrics.Messages++
			w.metrics.SentBy[m.From]++
			w.metrics.LastSendAt = w.now
			if sz, ok := m.Payload.(Sizer); ok {
				w.metrics.Bytes += int64(sz.SizeBytes())
				w.metrics.SizedMessages++
			}
			if observing {
				obs.ObserveSend(m)
			}
			if w.tracer != nil {
				w.tracer.OnSend(m)
			}
			if rel, ok := m.Payload.(Releasable); ok {
				rel.Retain()
			}
			dst := &e.sh[ShardOf(n, shards, m.To)]
			dst.inbound = append(dst.inbound, m)
		}
		if w.tracer != nil {
			w.tracer.OnStep(p, w.now)
		}
		// Releases are deferred from phase 1 to here: a consumed payload may
		// belong to another shard's pool, and refcounts plus pool free lists
		// are single-goroutine. Release order never affects behavior (the
		// pooled ≡ unpooled tests pin that pooling is invisible).
		for i := rec.delivLo; i < rec.delivHi; i++ {
			if rel, ok := r.delivered[i].Payload.(Releasable); ok {
				rel.Release()
			}
			r.delivered[i].Payload = nil
		}
	}
}

// phase3 lets each shard enqueue its inbound messages — already in
// canonical send order, which preserves per-destination FIFO order exactly
// — and clears the step's buffer slack so dead payload references do not
// pin snapshot storage.
func (e *shardEngine) phase3(s int) {
	r := &e.sh[s]
	for _, m := range r.inbound {
		r.box.enqueue(m)
	}
	for i := range r.inbound {
		r.inbound[i] = Message{}
	}
	r.inbound = r.inbound[:0]
	for i := range r.sent {
		r.sent[i] = Message{}
	}
	r.sent = r.sent[:0]
}

// isQuiet mirrors World.isQuiet over the per-shard mailboxes.
func (e *shardEngine) isQuiet() bool {
	w := e.w
	for s := range e.sh {
		r := &e.sh[s]
		for p := r.lo; p < r.hi; p++ {
			if !w.alive[p] {
				continue
			}
			if r.box.count(p) > 0 {
				return false
			}
			if !w.nodes[p].Quiescent() {
				return false
			}
		}
	}
	return true
}

// count returns the pending-message count for process p.
func (e *shardEngine) count(p int) int {
	return e.sh[ShardOf(e.w.cfg.N, e.shards, ProcID(p))].box.count(p)
}

// stats aggregates the per-shard mailbox arenas. Peak pending is summed
// across shards: each shard's high-water mark is reached independently,
// so the sum is an upper bound on the true global peak.
func (e *shardEngine) stats() ArenaStats {
	var out ArenaStats
	for s := range e.sh {
		st := e.sh[s].box.stats()
		out.BlocksAllocated += st.BlocksAllocated
		out.BlocksFree += st.BlocksFree
		out.PendingMessages += st.PendingMessages
		out.PeakPendingMessages += st.PeakPendingMessages
	}
	return out
}

// validateShardConfig checks the sharding fields of a Config.
func validateShardConfig(c Config) error {
	if c.Shards < 0 {
		return fmt.Errorf("sim: Shards = %d, must be >= 0", c.Shards)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("sim: ShardWorkers = %d, must be >= 0", c.ShardWorkers)
	}
	return nil
}
