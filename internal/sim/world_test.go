package sim

import (
	"errors"
	"testing"
)

// floodNode sends one message to every other process in its first step,
// then goes quiescent. It records every rumor (sender ID) it hears.
type floodNode struct {
	id    ProcID
	n     int
	sent  bool
	heard map[ProcID]Time // sender -> delivery time
}

func newFloodNode(id ProcID, n int) *floodNode {
	return &floodNode{id: id, n: n, heard: map[ProcID]Time{}}
}

func (f *floodNode) ID() ProcID { return f.id }

func (f *floodNode) Step(now Time, inbox []Message, out *Outbox) {
	for _, m := range inbox {
		if _, ok := f.heard[m.From]; !ok {
			f.heard[m.From] = now
		}
	}
	if !f.sent {
		f.sent = true
		for q := 0; q < f.n; q++ {
			if ProcID(q) != f.id {
				out.Send(ProcID(q), "rumor")
			}
		}
	}
}

func (f *floodNode) Quiescent() bool { return f.sent }

// everyStepAdv is a minimal synchronous adversary.
type everyStepAdv struct{ delay Time }

func (a everyStepAdv) Schedule(_ Time, v View, buf []ProcID) []ProcID {
	for p := 0; p < v.N(); p++ {
		buf = append(buf, ProcID(p))
	}
	return buf
}
func (a everyStepAdv) Delay(Time, ProcID, ProcID) Time { return a.delay }
func (a everyStepAdv) Crashes(_ Time, _ View, buf []ProcID) []ProcID {
	return buf
}

func mkFloodWorld(t *testing.T, cfg Config, adv Adversary) (*World, []*floodNode) {
	t.Helper()
	nodes := make([]Node, cfg.N)
	fns := make([]*floodNode, cfg.N)
	for i := range nodes {
		fn := newFloodNode(ProcID(i), cfg.N)
		nodes[i] = fn
		fns[i] = fn
	}
	w, err := NewWorld(cfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	return w, fns
}

func TestFloodCompletes(t *testing.T) {
	cfg := Config{N: 10, F: 0, D: 1, Delta: 1, Seed: 1}
	w, fns := mkFloodWorld(t, cfg, everyStepAdv{delay: 1})
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TimedOut {
		t.Fatalf("flood did not complete: %+v", res)
	}
	// n*(n-1) messages.
	if want := int64(10 * 9); res.Messages != want {
		t.Fatalf("Messages = %d, want %d", res.Messages, want)
	}
	// Everyone heard everyone.
	for _, fn := range fns {
		if len(fn.heard) != 9 {
			t.Fatalf("node %d heard %d rumors, want 9", fn.id, len(fn.heard))
		}
	}
	// All sends happen at t=0; deliveries at t=1; quiet detection then.
	if res.LastSendAt != 0 {
		t.Fatalf("LastSendAt = %d, want 0", res.LastSendAt)
	}
	if res.QuiesceAt != 1 {
		t.Fatalf("QuiesceAt = %d, want 1", res.QuiesceAt)
	}
}

func TestDelayBoundRespected(t *testing.T) {
	cfg := Config{N: 6, F: 0, D: 5, Delta: 1, Seed: 1}
	w, fns := mkFloodWorld(t, cfg, everyStepAdv{delay: 99}) // kernel must clamp to D
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range fns {
		for from, at := range fn.heard {
			if at != 5 {
				t.Fatalf("node %d got rumor from %d at %d, want 5 (clamped to D)", fn.id, from, at)
			}
		}
	}
	_ = res
}

func TestCrashBudgetEnforced(t *testing.T) {
	cfg := Config{N: 8, F: 2, D: 1, Delta: 1, Seed: 1}
	adv := &crashHungryAdv{}
	w, _ := mkFloodWorld(t, cfg, adv)
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 2 {
		t.Fatalf("Crashes = %d, want 2 (budget F)", res.Crashes)
	}
	if w.AliveCount() != 6 {
		t.Fatalf("AliveCount = %d, want 6", w.AliveCount())
	}
}

// crashHungryAdv tries to crash everything every step; the kernel must cap
// at F.
type crashHungryAdv struct{ everyStepAdv }

func (a *crashHungryAdv) Crashes(_ Time, v View, buf []ProcID) []ProcID {
	for p := 0; p < v.N(); p++ {
		buf = append(buf, ProcID(p))
	}
	return buf
}

func (a *crashHungryAdv) Delay(Time, ProcID, ProcID) Time { return 1 }

func TestCrashedProcessesTakeNoSteps(t *testing.T) {
	cfg := Config{N: 4, F: 1, D: 1, Delta: 1, Seed: 1}
	// Crash process 0 at t=0, before it ever steps.
	adv := &plannedCrashAdv{victim: 0}
	w, fns := mkFloodWorld(t, cfg, adv)
	res, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Metrics().Steps[0] != 0 {
		t.Fatalf("crashed process took %d steps", w.Metrics().Steps[0])
	}
	// Its rumor must not appear anywhere.
	for _, fn := range fns[1:] {
		if _, ok := fn.heard[0]; ok {
			t.Fatal("heard rumor from process crashed before its first step")
		}
	}
	// 3 live processes each send 3 messages (incl. to the dead one).
	if want := int64(9); res.Messages != want {
		t.Fatalf("Messages = %d, want %d", res.Messages, want)
	}
}

type plannedCrashAdv struct {
	everyStepAdv
	victim ProcID
	done   bool
}

func (a *plannedCrashAdv) Crashes(tm Time, _ View, buf []ProcID) []ProcID {
	if tm == 0 && !a.done {
		a.done = true
		buf = append(buf, a.victim)
	}
	return buf
}
func (a *plannedCrashAdv) Delay(Time, ProcID, ProcID) Time { return 1 }

// silentNode never sends and is never quiescent: the world must time out.
type silentNode struct{ id ProcID }

func (s *silentNode) ID() ProcID                    { return s.id }
func (s *silentNode) Step(Time, []Message, *Outbox) {}
func (s *silentNode) Quiescent() bool               { return false }

func TestTimeout(t *testing.T) {
	cfg := Config{N: 2, F: 0, D: 1, Delta: 1, Seed: 1, MaxSteps: 50}
	nodes := []Node{&silentNode{0}, &silentNode{1}}
	w, err := NewWorld(cfg, nodes, everyStepAdv{delay: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set")
	}
}

// rejectingEvaluator always rejects.
type rejectingEvaluator struct{}

func (rejectingEvaluator) Evaluate(View) Outcome {
	return Outcome{OK: false, Detail: "nope"}
}

func TestEvaluatorRejection(t *testing.T) {
	cfg := Config{N: 3, F: 0, D: 1, Delta: 1, Seed: 1}
	w, _ := mkFloodWorld(t, cfg, everyStepAdv{delay: 1})
	res, err := w.Run(rejectingEvaluator{})
	if err == nil {
		t.Fatal("expected evaluator rejection error")
	}
	if res.Completed {
		t.Fatal("Completed should be false")
	}
	if res.Detail != "nope" {
		t.Fatalf("Detail = %q", res.Detail)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0, F: 0, D: 1, Delta: 1},
		{N: 4, F: 4, D: 1, Delta: 1},
		{N: 4, F: -1, D: 1, Delta: 1},
		{N: 4, F: 0, D: 0, Delta: 1},
		{N: 4, F: 0, D: 1, Delta: 0},
		{N: 4, F: 0, D: 1, Delta: 1, MaxSteps: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, c)
		}
	}
	good := Config{N: 4, F: 3, D: 10, Delta: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewWorldRejectsBadNodes(t *testing.T) {
	cfg := Config{N: 2, F: 0, D: 1, Delta: 1}
	if _, err := NewWorld(cfg, []Node{&silentNode{0}}, everyStepAdv{}); err == nil {
		t.Fatal("wrong node count accepted")
	}
	if _, err := NewWorld(cfg, []Node{&silentNode{0}, &silentNode{0}}, everyStepAdv{}); err == nil {
		t.Fatal("mismatched node ID accepted")
	}
	if _, err := NewWorld(cfg, []Node{&silentNode{0}, nil}, everyStepAdv{}); err == nil {
		t.Fatal("nil node accepted")
	}
	if _, err := NewWorld(cfg, []Node{&silentNode{0}, &silentNode{1}}, nil); err == nil {
		t.Fatal("nil adversary accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Result, []int64) {
		cfg := Config{N: 16, F: 0, D: 3, Delta: 2, Seed: 7}
		w, _ := mkFloodWorld(t, cfg, everyStepAdv{delay: 2})
		res, err := w.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		sent := make([]int64, len(w.Metrics().SentBy))
		copy(sent, w.Metrics().SentBy)
		return res, sent
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 {
		t.Fatalf("replay diverged: %+v vs %+v", r1, r2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("per-process sends diverged at %d", i)
		}
	}
}

func TestStepSendCounterTracer(t *testing.T) {
	cfg := Config{N: 5, F: 0, D: 1, Delta: 1, Seed: 1}
	w, _ := mkFloodWorld(t, cfg, everyStepAdv{delay: 1})
	c := NewStepSendCounter(cfg.N)
	w.SetTracer(c)
	if _, err := w.Run(nil); err != nil {
		t.Fatal(err)
	}
	for p := range c.PerStep {
		if len(c.PerStep[p]) == 0 {
			t.Fatalf("process %d recorded no steps", p)
		}
		if c.PerStep[p][0] != 4 {
			t.Fatalf("process %d first step sent %d, want 4", p, c.PerStep[p][0])
		}
		for _, s := range c.PerStep[p][1:] {
			if s != 0 {
				t.Fatalf("process %d sent %d in a later step, want 0", p, s)
			}
		}
	}
}

func TestEventLogTracer(t *testing.T) {
	cfg := Config{N: 3, F: 0, D: 1, Delta: 1, Seed: 1}
	w, _ := mkFloodWorld(t, cfg, everyStepAdv{delay: 1})
	log := &EventLog{}
	w.SetTracer(log)
	if _, err := w.Run(nil); err != nil {
		t.Fatal(err)
	}
	var sends, delivers int
	for _, e := range log.Events {
		switch e.Kind {
		case EventSend:
			sends++
		case EventDeliver:
			delivers++
		}
	}
	if sends != 6 {
		t.Fatalf("sends = %d, want 6", sends)
	}
	if delivers != 6 {
		t.Fatalf("delivers = %d, want 6", delivers)
	}
}

func TestDefaultMaxStepsScales(t *testing.T) {
	small := DefaultMaxSteps(Config{N: 8, F: 0, D: 1, Delta: 1})
	big := DefaultMaxSteps(Config{N: 1024, F: 512, D: 8, Delta: 8})
	if small < 4096 {
		t.Fatalf("small budget %d below floor", small)
	}
	if big <= small {
		t.Fatalf("budget did not scale: small %d, big %d", small, big)
	}
}
