package sim

import (
	"strings"
	"testing"
)

// feed is a tiny helper building a clean two-process exchange.
func feedCleanExchange(t Tracer) {
	t.OnStep(0, 0)
	t.OnSend(Message{From: 0, To: 1, SentAt: 0, ReadyAt: 1})
	t.OnDeliver(Message{From: 0, To: 1, SentAt: 0, ReadyAt: 1}, 1)
	t.OnStep(1, 1)
}

func TestCheckerCleanRunHasNoViolations(t *testing.T) {
	c := NewInvariantChecker(2, 0, 1, 1)
	feedCleanExchange(c)
	if err := c.Err(); err != nil {
		t.Fatalf("clean exchange flagged: %v", err)
	}
	if c.Crashes() != 0 {
		t.Fatalf("crashes = %d, want 0", c.Crashes())
	}
}

func TestCheckerCrashBudget(t *testing.T) {
	c := NewInvariantChecker(4, 1, 1, 0)
	c.OnCrash(0, 0)
	if err := c.Err(); err != nil {
		t.Fatalf("in-budget crash flagged: %v", err)
	}
	c.OnCrash(1, 2)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RuleCrashBudget) {
		t.Fatalf("over-budget crash not flagged as %s: %v", RuleCrashBudget, err)
	}
}

func TestCheckerDoubleCrash(t *testing.T) {
	c := NewInvariantChecker(4, 3, 1, 0)
	c.OnCrash(2, 0)
	c.OnCrash(2, 1)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RuleEventOrder) {
		t.Fatalf("double crash not flagged: %v", err)
	}
	if c.Crashes() != 1 {
		t.Fatalf("double crash counted twice: %d", c.Crashes())
	}
}

func TestCheckerDelayClamp(t *testing.T) {
	for _, tc := range []struct {
		ready Time
		bad   bool
	}{
		{ready: 1, bad: false}, {ready: 3, bad: false},
		{ready: 0, bad: true}, // delay 0
		{ready: 4, bad: true}, // delay 4 > D=3
	} {
		c := NewInvariantChecker(2, 0, 3, 0)
		c.OnSend(Message{From: 0, To: 1, SentAt: 0, ReadyAt: tc.ready})
		err := c.Err()
		if tc.bad && (err == nil || !strings.Contains(err.Error(), RuleDelayClamp)) {
			t.Errorf("ReadyAt=%d: want %s violation, got %v", tc.ready, RuleDelayClamp, err)
		}
		if !tc.bad && err != nil {
			t.Errorf("ReadyAt=%d: clamped delay flagged: %v", tc.ready, err)
		}
	}
}

func TestCheckerPostCrashActivity(t *testing.T) {
	mk := func() *InvariantChecker {
		c := NewInvariantChecker(3, 2, 2, 0)
		c.OnCrash(1, 1)
		return c
	}
	c := mk()
	c.OnStep(1, 2)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RulePostCrash) {
		t.Fatalf("post-crash step not flagged: %v", err)
	}
	c = mk()
	c.OnSend(Message{From: 1, To: 0, SentAt: 2, ReadyAt: 3})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RulePostCrash) {
		t.Fatalf("post-crash send not flagged: %v", err)
	}
	c = mk()
	c.OnDeliver(Message{From: 0, To: 1, SentAt: 0, ReadyAt: 1}, 2)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RulePostCrash) {
		t.Fatalf("post-crash delivery not flagged: %v", err)
	}
}

func TestCheckerScheduleGap(t *testing.T) {
	c := NewInvariantChecker(2, 0, 1, 3)
	c.OnStep(0, 0)
	c.OnStep(0, 3)
	if err := c.Err(); err != nil {
		t.Fatalf("gap at bound flagged: %v", err)
	}
	c.OnStep(0, 7)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RuleScheduleGap) {
		t.Fatalf("starvation not flagged: %v", err)
	}
	// maxGap = 0 disables the rule entirely.
	c = NewInvariantChecker(2, 0, 1, 0)
	c.OnStep(0, 0)
	c.OnStep(0, 1000)
	if err := c.Err(); err != nil {
		t.Fatalf("disabled gap rule flagged: %v", err)
	}
}

func TestCheckerEventOrder(t *testing.T) {
	c := NewInvariantChecker(2, 0, 5, 0)
	c.OnStep(0, 4)
	c.OnStep(1, 2) // time went backwards
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RuleEventOrder) {
		t.Fatalf("clock regression not flagged: %v", err)
	}
	c = NewInvariantChecker(2, 0, 5, 0)
	c.OnDeliver(Message{From: 0, To: 1, SentAt: 0, ReadyAt: 3}, 2) // before ReadyAt
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), RuleEventOrder) {
		t.Fatalf("early delivery not flagged: %v", err)
	}
}

func TestCheckerViolationCap(t *testing.T) {
	c := NewInvariantChecker(2, 0, 1, 0)
	for i := 0; i < 3*maxCheckerViolations; i++ {
		c.OnSend(Message{From: 0, To: 1, SentAt: Time(i), ReadyAt: Time(i)}) // delay 0 every time
	}
	if got := len(c.Violations()); got != maxCheckerViolations {
		t.Fatalf("violations not capped: %d", got)
	}
	if c.Truncated() != 2*maxCheckerViolations {
		t.Fatalf("truncated = %d, want %d", c.Truncated(), 2*maxCheckerViolations)
	}
}

func TestDigestTracerDistinguishesStreams(t *testing.T) {
	a, b, c := NewDigestTracer(), NewDigestTracer(), NewDigestTracer()
	feedCleanExchange(a)
	feedCleanExchange(b)
	if a.Sum() != b.Sum() || a.Events() != b.Events() {
		t.Fatalf("identical streams digest differently: %x vs %x", a.Sum(), b.Sum())
	}
	// Same events, one field different.
	c.OnStep(0, 0)
	c.OnSend(Message{From: 0, To: 1, SentAt: 0, ReadyAt: 2})
	c.OnDeliver(Message{From: 0, To: 1, SentAt: 0, ReadyAt: 1}, 1)
	c.OnStep(1, 1)
	if a.Sum() == c.Sum() {
		t.Fatal("digest ignores ReadyAt")
	}
	// Order sensitivity.
	d, e := NewDigestTracer(), NewDigestTracer()
	d.OnStep(0, 0)
	d.OnStep(1, 0)
	e.OnStep(1, 0)
	e.OnStep(0, 0)
	if d.Sum() == e.Sum() {
		t.Fatal("digest is order-insensitive")
	}
}

func TestTeeComposition(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty tee is not nil")
	}
	single := NewDigestTracer()
	if got := Tee(nil, single); got != single {
		t.Fatal("single-tracer tee did not collapse")
	}
	a, b := NewDigestTracer(), NewDigestTracer()
	tee := Tee(a, nil, b)
	feedCleanExchange(tee)
	if a.Sum() != b.Sum() || a.Events() != 4 || b.Events() != 4 {
		t.Fatalf("tee did not fan out: %d/%d events", a.Events(), b.Events())
	}
}

// TestCheckerOnRealRun rides an InvariantChecker on a real kernel run and
// expects silence: the kernel's own enforcement satisfies the checker.
func TestCheckerOnRealRun(t *testing.T) {
	cfg := Config{N: 8, F: 2, D: 3, Delta: 2, Seed: 5}
	nodes := make([]Node, cfg.N)
	for i := range nodes {
		nodes[i] = &pingNode{id: ProcID(i), n: cfg.N}
	}
	w, err := NewWorld(cfg, nodes, checkerTestAdv{n: cfg.N, d: cfg.D})
	if err != nil {
		t.Fatal(err)
	}
	chk := NewInvariantChecker(cfg.N, cfg.F, cfg.D, 2*cfg.Delta-1)
	dig := NewDigestTracer()
	w.SetTracer(Tee(chk, dig))
	if _, err := w.Run(nil); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("kernel run violated invariants: %v", err)
	}
	if dig.Events() == 0 {
		t.Fatal("digest saw no events")
	}
	if chk.Crashes() != 2 {
		t.Fatalf("crashes observed = %d, want 2", chk.Crashes())
	}
}

// pingNode sends one message to its successor on its first step.
type pingNode struct {
	id   ProcID
	n    int
	sent bool
}

func (p *pingNode) ID() ProcID { return p.id }

func (p *pingNode) Step(_ Time, _ []Message, out *Outbox) {
	if !p.sent {
		p.sent = true
		out.Send(ProcID((int(p.id)+1)%p.n), nil)
	}
}

func (p *pingNode) Quiescent() bool { return p.sent }

// checkerTestAdv schedules everyone, uses max delay, crashes 0 and 1 early.
type checkerTestAdv struct {
	n int
	d Time
}

func (a checkerTestAdv) Schedule(_ Time, _ View, buf []ProcID) []ProcID {
	for p := 0; p < a.n; p++ {
		buf = append(buf, ProcID(p))
	}
	return buf
}

func (a checkerTestAdv) Delay(Time, ProcID, ProcID) Time { return a.d }

func (a checkerTestAdv) Crashes(t Time, _ View, buf []ProcID) []ProcID {
	if t == 1 {
		buf = append(buf, 0, 1)
	}
	return buf
}
