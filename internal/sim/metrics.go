package sim

// Metrics accumulates the complexity measures of a run. Message complexity
// counts point-to-point messages at send time (messages to processes that
// later crash, or that are in flight when the run ends, still count — the
// paper counts "the number of point-to-point messages sent by all the
// processes combined").
type Metrics struct {
	// Messages is the total number of point-to-point messages sent.
	Messages int64
	// Bytes is the total approximate payload bytes for payloads
	// implementing Sizer; 0 for protocols that do not report sizes.
	Bytes int64
	// SizedMessages counts the sent messages whose payload implemented
	// Sizer and therefore contributed to Bytes. Bytes is trustworthy
	// exactly when SizedMessages == Messages.
	SizedMessages int64
	// SentBy counts messages per sending process.
	SentBy []int64
	// DeliveredTo counts messages delivered per receiving process.
	DeliveredTo []int64
	// Steps counts local steps taken per process.
	Steps []int64
	// Crashes is the number of processes crashed during the run.
	Crashes int
	// LastSendAt is the time of the last message send, or -1 if no message
	// was ever sent (a genuine send at t=0 records 0).
	LastSendAt Time
	// OffEdgeDrops counts sends dropped because the configured topology
	// has no edge between sender and target (0 when no topology is set).
	OffEdgeDrops int64
	// OutOfRangeDrops counts sends dropped because the target id was
	// outside [0, n). Like off-edge drops these never reach the wire and
	// do not count as messages, but a nonzero tally flags a protocol (or
	// harness) addressing processes that do not exist.
	OutOfRangeDrops int64
}

func newMetrics(n int) *Metrics {
	return &Metrics{
		SentBy:      make([]int64, n),
		DeliveredTo: make([]int64, n),
		Steps:       make([]int64, n),
		LastSendAt:  -1,
	}
}

// TotalSteps returns the total number of local steps across processes.
func (m *Metrics) TotalSteps() int64 {
	var s int64
	for _, v := range m.Steps {
		s += v
	}
	return s
}

// MaxSentBy returns the largest per-process send count.
func (m *Metrics) MaxSentBy() int64 {
	var mx int64
	for _, v := range m.SentBy {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Result summarizes a finished run.
type Result struct {
	// Completed reports that the run went quiet and the evaluator accepted.
	Completed bool
	// TimedOut reports that MaxSteps elapsed before the world went quiet.
	TimedOut bool
	// CompletedAt is the evaluator's completion time (see Outcome).
	CompletedAt Time
	// QuiesceAt is the time at which the world went quiet: every live node
	// quiescent and no message in flight to a live node.
	QuiesceAt Time
	// LastSendAt is the time of the last message send (-1 if none).
	LastSendAt Time
	// TimeComplexity is the paper's notion of gossip completion time: the
	// time by which every correct process has both gathered what it must
	// and stopped sending, i.e. max(CompletedAt, LastSendAt) for a
	// successful run. Timed-out runs record max(QuiesceAt, LastSendAt) —
	// the horizon actually burned — so telemetry and envelope-tightness
	// stats never see a spurious zero.
	TimeComplexity Time
	// Messages is the total number of point-to-point messages.
	Messages int64
	// Bytes is total payload bytes (see Metrics.Bytes).
	Bytes int64
	// BytesKnown reports that every sent message carried a Sizer payload,
	// i.e. Bytes is a real measurement rather than "unreported". It
	// distinguishes a genuinely zero-byte run from a protocol whose
	// payloads simply do not implement Sizer (vacuously true when no
	// messages were sent).
	BytesKnown bool
	// Crashes is the number of crashed processes.
	Crashes int
	// OffEdgeDrops counts sends dropped for lack of a topology edge.
	OffEdgeDrops int64
	// OutOfRangeDrops counts sends dropped for an out-of-range target id.
	OutOfRangeDrops int64
	// Detail carries the evaluator's violation description when !Completed.
	Detail string
}
