package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/consensus"
)

func TestMeasureGossipBasic(t *testing.T) {
	m, err := MeasureGossip(GossipSpec{Proto: "trivial", N: 16, F: 4, D: 1, Delta: 1, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures != 0 {
		t.Fatalf("failures: %d", m.Failures)
	}
	if m.Messages.Mean <= 0 || m.Time.Mean <= 0 {
		t.Fatalf("degenerate measurement: %+v", m)
	}
}

// TestMeasureShardsInvisible: the shard count — per spec or via Env — only
// changes how runs execute, never what they measure.
func TestMeasureShardsInvisible(t *testing.T) {
	base := GossipSpec{Proto: "tears", N: 33, F: 7, D: 2, Delta: 2, Seeds: 2}
	serial, err := MeasureGossip(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 5
	m, err := MeasureGossip(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, m) {
		t.Fatalf("sharded measurement diverged:\nserial  %+v\nsharded %+v", serial, m)
	}
	envMs, errs := measureGossipGrid([]GossipSpec{base}, Env{Shards: 5})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !reflect.DeepEqual(serial, envMs[0]) {
		t.Fatalf("Env.Shards measurement diverged:\nserial %+v\nenv    %+v", serial, envMs[0])
	}

	cbase := ConsensusSpec{Transport: consensus.TransportTEARS, N: 21, F: 5, D: 2, Delta: 2, Seeds: 2}
	cserial, err := MeasureConsensus(cbase)
	if err != nil {
		t.Fatal(err)
	}
	csharded := cbase
	csharded.Shards = 4
	cm, err := MeasureConsensus(csharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cserial, cm) {
		t.Fatalf("sharded consensus measurement diverged:\nserial  %+v\nsharded %+v", cserial, cm)
	}
}

func TestMeasureGossipSeedLabel(t *testing.T) {
	base := GossipSpec{Proto: "ears", N: 32, F: 8, D: 2, Delta: 2, Seeds: 3}
	legacy, err := MeasureGossip(base)
	if err != nil {
		t.Fatal(err)
	}
	a, b := base, base
	a.SeedLabel, b.SeedLabel = "cell-a", "cell-b"
	ma, err := MeasureGossip(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := MeasureGossip(b)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct labels draw from distinct streams, and both differ from the
	// legacy run-index seeds.
	if reflect.DeepEqual(ma, mb) || reflect.DeepEqual(ma, legacy) {
		t.Fatalf("seed labels did not separate streams:\nlegacy: %+v\na: %+v\nb: %+v", legacy, ma, mb)
	}
	// The same label is deterministic.
	ma2, err := MeasureGossip(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ma, ma2) {
		t.Fatalf("labeled measurement not reproducible:\n%+v\n%+v", ma, ma2)
	}
}

func TestMeasureGossipUnknownProto(t *testing.T) {
	if _, err := MeasureGossip(GossipSpec{Proto: "nope", N: 8, F: 0, D: 1, Delta: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestMeasureConsensusBasic(t *testing.T) {
	m, err := MeasureConsensus(ConsensusSpec{
		Transport: consensus.TransportDirect, N: 16, F: 7, D: 1, Delta: 1, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures != 0 {
		t.Fatalf("failures: %d", m.Failures)
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation in -short mode")
	}
	res, err := Table1(Env{}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(table1Protos) {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	out := res.Render()
	for _, want := range []string{"trivial", "ears", "sears", "tears", "sync-epidemic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Structural claims at quick scale: trivial messages grow ~quadratically
	// and strictly faster than ears'.
	var trivialExp, earsExp float64
	for _, r := range res.Rows {
		switch r.Algo {
		case "trivial":
			trivialExp = r.MsgExp
		case "ears":
			earsExp = r.MsgExp
		}
	}
	if trivialExp < 1.8 {
		t.Errorf("trivial message exponent %.2f, want ≈ 2", trivialExp)
	}
	if earsExp >= trivialExp {
		t.Errorf("ears message exponent %.2f not below trivial %.2f", earsExp, trivialExp)
	}
	t.Logf("\n%s", out)
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation in -short mode")
	}
	res, err := Table2(Env{}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation in -short mode")
	}
	res, err := Figure1(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	witnessed := 0
	for _, row := range res.Rows {
		if row.Witnessed {
			witnessed++
		}
	}
	if witnessed < len(res.Rows)-1 {
		t.Fatalf("theorem dichotomy witnessed in only %d/%d rows:\n%s",
			witnessed, len(res.Rows), res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestCostOfAsynchronyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("coa in -short mode")
	}
	res, err := CostOfAsynchrony(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	t.Logf("\n%s", res.Render())
}

func TestDeltaSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := DeltaSweep(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 12's structural claim: tears' message growth across the d
	// sweep is far below ears'.
	growth := func(proto string) float64 {
		s := res.Series[proto]
		if len(s) < 2 || s[0] == 0 {
			return 0
		}
		return s[len(s)-1] / s[0]
	}
	if growth("tears") >= growth("ears") {
		t.Errorf("tears d-growth %.2f not below ears %.2f:\n%s",
			growth("tears"), growth("ears"), res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	if res, err := AblationShutdown(Env{}, 1); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(res.Render(), "shut-down") {
		t.Fatal("bad render")
	}
	if res, err := AblationEpsilon(Env{}, 1); err != nil {
		t.Fatal(err)
	} else if len(res.Time) != len(res.Epsilons) {
		t.Fatal("missing points")
	}
	if res, err := AblationCoin(Env{}, 1); err != nil {
		t.Fatal(err)
	} else if len(res.Time) != 2 {
		t.Fatal("missing coins")
	}
}

func TestSchedSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := SchedSweep(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Structural claim on the δ axis: tears' message count saturates (the
	// Theorem 12 ceiling is δ-independent), so the tail growth between
	// the last two δ points must be near 1.
	if g := tailGrowth(res.Series["tears"]); g > 1.15 {
		t.Errorf("tears δ tail-growth %.2f, want saturation near 1.00:\n%s", g, res.Render())
	}
	// ears is δ-flat outright (its local-step budget does not involve δ).
	if g := tailGrowth(res.Series["ears"]); g > 1.15 {
		t.Errorf("ears δ tail-growth %.2f, want flat:\n%s", g, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestFSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := FSweep(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 6: time grows with the survivor factor — the f=7n/8 point
	// must be slower than the f=0 point by a clear margin.
	first, last := res.Time[0].Mean, res.Time[len(res.Time)-1].Mean
	if last <= first {
		t.Errorf("ears time did not grow with f: f=0 %.0f vs f=max %.0f\n%s",
			first, last, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestCrossoverQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := Crossover(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossoverN == 0 {
		t.Errorf("no ears/trivial crossover found:\n%s", res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestPushPullSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := PushPullSweep(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The Panagiotou–Speidel regime: once density clears the connectivity
	// threshold, asynchronous spreading time is density-insensitive — the
	// densest point must not beat the sparsest by more than a small factor.
	for _, proto := range res.Variants {
		series := res.Time[proto]
		first, last := series[0].Mean, series[len(series)-1].Mean
		if last <= 0 || first <= 0 {
			t.Fatalf("%s: degenerate times:\n%s", proto, res.Render())
		}
		if first > 3*last {
			t.Errorf("%s: time fell %.1fx across the density sweep, want near-flat:\n%s",
				proto, first/last, res.Render())
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestAveragingCurveQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := AveragingCurve(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Non-asymptotic diffusion time: tightening ε costs rounds linearly in
	// log(1/ε), so both the budget and the measured time must increase
	// monotonically along the curve.
	for i := 1; i < len(res.Epsilons); i++ {
		if res.Rounds[i] <= res.Rounds[i-1] {
			t.Errorf("round budget not increasing: R(ε=%g)=%d vs R(ε=%g)=%d",
				res.Epsilons[i], res.Rounds[i], res.Epsilons[i-1], res.Rounds[i-1])
		}
		if res.Time[i].Mean <= res.Time[i-1].Mean {
			t.Errorf("diffusion time not increasing at ε=%g:\n%s", res.Epsilons[i], res.Render())
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestEarsStagesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("stages in -short mode")
	}
	res, err := EarsStages(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The §3.2 milestone ordering: gather ≤ first-sleep ≤ all-sleep.
	if !(res.GatheredAt.Mean <= res.FirstAsleepAt.Mean &&
		res.FirstAsleepAt.Mean <= res.AllAsleepAt.Mean) {
		t.Fatalf("milestones out of order:\n%s", res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestRumorLatencyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("latency in -short mode")
	}
	out, err := RumorLatencyTable(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", out)
	// sears' per-rumor latency must be far below ears' (constant vs
	// polylog spreading).
	rEars, err := RumorLatency("ears", Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rSears, err := RumorLatency("sears", Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rSears.Latency.Mean >= rEars.Latency.Mean {
		t.Fatalf("sears latency %.1f not below ears %.1f", rSears.Latency.Mean, rEars.Latency.Mean)
	}
}
