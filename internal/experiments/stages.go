package experiments

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// EarsStagesResult records the milestone times of one ears execution,
// mirroring the stage structure of the paper's §3.2 analysis:
//
//	stage 1–2 (gathering/exchange): every live process knows every rumor;
//	stage 3  (shooting):            every rumor has been sent to everyone
//	                                (some process's L(p) covers the world);
//	stage 4–5 (shut-down entry):    the first process enters shut-down;
//	stage 6–7 (sleep):              every live process is asleep.
//
// The analysis proves these milestones occur in order within an epoch of
// length O(n/(n−f)·log²n·(d+δ)); the experiment measures where they
// actually land.
type EarsStagesResult struct {
	N, F          int
	GatheredAt    stats.Summary // all live processes hold all live rumors
	FirstAsleepAt stats.Summary // first process past its shut-down phase
	AllAsleepAt   stats.Summary // quiescence
	Messages      stats.Summary
}

// EarsStages measures the milestone times over several seeds; the seed
// grid fans across env.Workers (each cell builds its own world and probe).
func EarsStages(env Env, seed int64) (*EarsStagesResult, error) {
	n := 128
	if env.Scale == Quick {
		n = 64
	}
	f := n / 4
	res := &EarsStagesResult{N: n, F: f}

	type sample struct {
		gathered, firstAsleep, allAsleep, msgs float64
	}
	samples, errs, _ := runner.Map(context.Background(), env.seeds(),
		runner.Options{Workers: env.Workers},
		func(_ context.Context, s int) (sample, error) {
			cfg := sim.Config{N: n, F: f, D: 2, Delta: 2, Seed: seed + int64(s)}
			p := core.Params{N: n, F: f}
			nodes, err := core.NewNodes(core.EARS{}, p, cfg.Seed)
			if err != nil {
				return sample{}, err
			}
			adv, err := adversary.ByName(adversary.PresetStandard, cfg)
			if err != nil {
				return sample{}, err
			}
			w, err := sim.NewWorld(cfg, nodes, adv)
			if err != nil {
				return sample{}, err
			}
			milestones := &earsMilestones{}
			w.SetProbe(milestones.probe)
			runRes, err := w.Run(core.EARS{}.Evaluator(p))
			if err != nil {
				return sample{}, fmt.Errorf("stages seed %d: %w", cfg.Seed, err)
			}
			return sample{
				gathered:    float64(milestones.gatheredAt),
				firstAsleep: float64(milestones.firstAsleepAt),
				allAsleep:   float64(runRes.QuiesceAt),
				msgs:        float64(runRes.Messages),
			}, nil
		})
	if err := runner.FirstError(errs); err != nil {
		return nil, err
	}
	var gathered, firstAsleep, allAsleep, msgs []float64
	for _, s := range samples {
		gathered = append(gathered, s.gathered)
		firstAsleep = append(firstAsleep, s.firstAsleep)
		allAsleep = append(allAsleep, s.allAsleep)
		msgs = append(msgs, s.msgs)
	}
	res.GatheredAt = stats.Summarize(gathered)
	res.FirstAsleepAt = stats.Summarize(firstAsleep)
	res.AllAsleepAt = stats.Summarize(allAsleep)
	res.Messages = stats.Summarize(msgs)
	return res, nil
}

// earsMilestones probes the world each step for the §3.2 milestones.
type earsMilestones struct {
	gatheredAt    sim.Time
	firstAsleepAt sim.Time
	gatheredSeen  bool
	asleepSeen    bool
}

func (m *earsMilestones) probe(v sim.View) {
	if !m.gatheredSeen {
		if m.allGathered(v) {
			m.gatheredAt = v.Now()
			m.gatheredSeen = true
		}
	}
	if !m.asleepSeen {
		for p := 0; p < v.N(); p++ {
			if !v.Alive(sim.ProcID(p)) {
				continue
			}
			if n, ok := v.Node(sim.ProcID(p)).(interface{ Asleep() bool }); ok && n.Asleep() {
				m.firstAsleepAt = v.Now()
				m.asleepSeen = true
				break
			}
		}
	}
}

// allGathered reports whether every live process holds every live
// process's rumor at this instant.
func (m *earsMilestones) allGathered(v sim.View) bool {
	for p := 0; p < v.N(); p++ {
		if !v.Alive(sim.ProcID(p)) {
			continue
		}
		h, ok := v.Node(sim.ProcID(p)).(core.RumorHolder)
		if !ok {
			return false
		}
		for r := 0; r < v.N(); r++ {
			if v.Alive(sim.ProcID(r)) && !h.RumorSet().Test(r) {
				return false
			}
		}
	}
	return true
}

// Render formats the milestone table.
func (r *EarsStagesResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("ears §3.2 stage milestones (n=%d f=%d d=2 δ=2)", r.N, r.F),
		"milestone", "time(steps)")
	t.AddRow("all rumors gathered (stages 1-2)", r.GatheredAt.String())
	t.AddRow("first process asleep (stages 4-5)", r.FirstAsleepAt.String())
	t.AddRow("all processes asleep (stages 6-7)", r.AllAsleepAt.String())
	t.AddRow("messages", r.Messages.String())
	t.AddNote("the analysis proves gather < first-sleep < all-sleep within one O(n/(n−f)·log²n·(d+δ)) epoch.")
	return t
}

// Render formats EarsStagesResult's table as text.
func (r *EarsStagesResult) Render() string { return r.Table().String() }
