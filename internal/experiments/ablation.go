package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DeltaSweepResult measures message complexity as a function of d (with
// δ = 1): the paper's headline structural difference between tears and the
// other protocols is that tears' message complexity has *no dependence on
// d or δ* (Theorem 12), while ears and sears pay a (d+δ) factor.
type DeltaSweepResult struct {
	Ds     []int
	Series map[string][]float64 // proto -> mean messages per d
	N, F   int
}

// DeltaSweep runs the d sweep.
func DeltaSweep(env Env, seed int64) (*DeltaSweepResult, error) {
	n := 128
	ds := []int{1, 2, 4, 8, 16}
	if env.Scale == Quick {
		n = 64
		ds = []int{1, 4, 8}
	}
	f := n / 4
	res := &DeltaSweepResult{Ds: ds, Series: map[string][]float64{}, N: n, F: f}
	protos := []string{"ears", "sears", "tears"}
	var specs []GossipSpec
	for _, proto := range protos {
		for _, d := range ds {
			specs = append(specs, GossipSpec{
				Proto: proto, N: n, F: f,
				D: sim.Time(d), Delta: 1,
				Preset: adversary.PresetMaxDelay, Seeds: env.seeds(),
			})
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	cell := 0
	for _, proto := range protos {
		for _, d := range ds {
			m, err := ms[cell], errs[cell]
			cell++
			if err != nil {
				return nil, fmt.Errorf("delta sweep %s d=%d: %w", proto, d, err)
			}
			res.Series[proto] = append(res.Series[proto], m.Messages.Mean)
		}
	}
	return res, nil
}

// Render formats the sweep with per-protocol growth ratios.
func (r *DeltaSweepResult) Table() *stats.Table {
	header := []string{"protocol"}
	for _, d := range r.Ds {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	header = append(header, "growth(last/first)")
	t := stats.NewTable(
		fmt.Sprintf("Message complexity vs d (n=%d f=%d δ=1) — Theorem 12: tears is d-independent", r.N, r.F),
		header...)
	for _, proto := range []string{"ears", "sears", "tears"} {
		series := r.Series[proto]
		row := make([]interface{}, 0, len(series)+2)
		row = append(row, proto)
		for _, v := range series {
			row = append(row, int64(v))
		}
		growth := 0.0
		if len(series) > 1 && series[0] > 0 {
			growth = series[len(series)-1] / series[0]
		}
		row = append(row, fmt.Sprintf("%.2fx", growth))
		t.AddRow(row...)
	}
	t.AddNote("ears/sears message counts grow with d (the (d+δ) factor); tears saturates.")
	return t
}

// ShutdownAblationResult sweeps the ears shut-down constant (DESIGN.md §6):
// shorter shut-down phases save messages but risk premature sleep and
// wake-up churn; the informed-list keeps the protocol correct either way.
type ShutdownAblationResult struct {
	Cs       []float64
	Time     []stats.Summary
	Messages []stats.Summary
	N, F     int
}

// AblationShutdown runs the ShutdownC sweep for ears.
func AblationShutdown(env Env, seed int64) (*ShutdownAblationResult, error) {
	n := 128
	if env.Scale == Quick {
		n = 64
	}
	f := n / 4
	res := &ShutdownAblationResult{Cs: []float64{0.5, 1, 2, 6, 12}, N: n, F: f}
	specs := make([]GossipSpec, len(res.Cs))
	for i, c := range res.Cs {
		specs[i] = GossipSpec{
			Proto: "ears", N: n, F: f, D: 2, Delta: 2,
			Preset: adversary.PresetStandard, Seeds: env.seeds(),
			Gossip: core.Params{ShutdownC: c},
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	for i, c := range res.Cs {
		if errs[i] != nil {
			return nil, fmt.Errorf("shutdown ablation c=%v: %w", c, errs[i])
		}
		res.Time = append(res.Time, ms[i].Time)
		res.Messages = append(res.Messages, ms[i].Messages)
	}
	return res, nil
}

// Render formats the sweep.
func (r *ShutdownAblationResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation — ears shut-down phase length Θ(c·n/(n−f)·log n) (n=%d f=%d)", r.N, r.F),
		"c", "time(steps)", "messages")
	for i, c := range r.Cs {
		t.AddRow(c, r.Time[i].String(), r.Messages[i].String())
	}
	t.AddNote("small c: processes sleep early and must be reawakened (churn); large c: longer tail of shut-down messages.")
	return t
}

// EpsilonAblationResult sweeps sears' ε: Theorem 7 trades a 1/ε time
// factor against an n^ε message factor.
type EpsilonAblationResult struct {
	Epsilons []float64
	Time     []stats.Summary
	Messages []stats.Summary
	N, F     int
}

// AblationEpsilon runs the sears ε sweep.
func AblationEpsilon(env Env, seed int64) (*EpsilonAblationResult, error) {
	n := 128
	if env.Scale == Quick {
		n = 64
	}
	f := n / 4
	res := &EpsilonAblationResult{Epsilons: []float64{0.25, 0.4, 0.5, 0.75}, N: n, F: f}
	specs := make([]GossipSpec, len(res.Epsilons))
	for i, eps := range res.Epsilons {
		specs[i] = GossipSpec{
			Proto: "sears", N: n, F: f, D: 2, Delta: 2,
			Preset: adversary.PresetStandard, Seeds: env.seeds(),
			Gossip: core.Params{Epsilon: eps},
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	for i, eps := range res.Epsilons {
		if errs[i] != nil {
			return nil, fmt.Errorf("epsilon ablation ε=%v: %w", eps, errs[i])
		}
		res.Time = append(res.Time, ms[i].Time)
		res.Messages = append(res.Messages, ms[i].Messages)
	}
	return res, nil
}

// Render formats the sweep.
func (r *EpsilonAblationResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation — sears fan-out exponent ε (n=%d f=%d): time 1/ε vs messages n^ε", r.N, r.F),
		"ε", "time(steps)", "messages")
	for i, e := range r.Epsilons {
		t.AddRow(e, r.Time[i].String(), r.Messages[i].String())
	}
	return t
}

// CoinAblationResult compares the common coin against Ben-Or local coins
// (DESIGN.md §6): round counts and decision times.
type CoinAblationResult struct {
	Coins    []string
	Time     []stats.Summary
	Messages []stats.Summary
	N, F     int
}

// AblationCoin runs the coin comparison on the direct transport. f is
// n/4 rather than the maximal minority: at f = ⌈n/2⌉−1 a crash storm can
// leave exactly ⌊n/2⌋+1 survivors, where the local coin needs *unanimous*
// independent flips to decide — expected 2^Ω(n) rounds, the Ben-Or
// pathology. The comparison stays meaningful (and bounded) away from that
// cliff; the cliff itself is documented by BenchmarkAblationCoin's
// timeout-rate metric.
func AblationCoin(env Env, seed int64) (*CoinAblationResult, error) {
	n := 32
	if env.Scale == Quick {
		n = 16
	}
	f := n / 4
	res := &CoinAblationResult{Coins: []string{"common", "local"}, N: n, F: f}
	specs := make([]ConsensusSpec, len(res.Coins))
	for i, coin := range res.Coins {
		specs[i] = ConsensusSpec{
			Transport: consensus.TransportDirect, N: n, F: f,
			D: 2, Delta: 2,
			Preset: adversary.PresetStandard, Seeds: env.seeds() + 2,
			LocalCoin: coin == "local",
			// A perfect 0/1 split denies the first round a majority, so
			// every undecided process reaches the coin — the case where
			// the coin flavors actually differ.
			SplitInputs: true,
		}
	}
	ms, errs := measureConsensusGrid(specs, env)
	for i, coin := range res.Coins {
		if errs[i] != nil {
			return nil, fmt.Errorf("coin ablation %s: %w", coin, errs[i])
		}
		res.Time = append(res.Time, ms[i].Time)
		res.Messages = append(res.Messages, ms[i].Messages)
	}
	return res, nil
}

// Render formats the comparison.
func (r *CoinAblationResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation — shared coin flavor (Canetti-Rabin, direct transport, n=%d f=%d)", r.N, r.F),
		"coin", "time-to-decide(steps)", "messages")
	for i, c := range r.Coins {
		t.AddRow(c, r.Time[i].String(), r.Messages[i].String())
	}
	t.AddNote("the common coin decides in O(1) expected rounds; local coins (Ben-Or) pay more rounds as n grows.")
	return t
}

// Render formats DeltaSweepResult's table as text.
func (r *DeltaSweepResult) Render() string { return r.Table().String() }

// Render formats ShutdownAblationResult's table as text.
func (r *ShutdownAblationResult) Render() string { return r.Table().String() }

// Render formats EpsilonAblationResult's table as text.
func (r *EpsilonAblationResult) Render() string { return r.Table().String() }

// Render formats CoinAblationResult's table as text.
func (r *CoinAblationResult) Render() string { return r.Table().String() }
