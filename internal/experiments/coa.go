package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CoARow compares one asynchronous algorithm against the best synchronous
// baseline at the same (n, f), realizing Corollary 2's cost-of-asynchrony
// ratios.
type CoARow struct {
	Proto     string
	N, F      int
	TimeRatio float64 // T_async / T_sync-best
	MsgRatio  float64 // M_async / M_sync-best
	// Corollary 2: TimeRatio = Ω(f) or MsgRatio = Ω(1 + f²/n).
	TimeBound float64 // f (up to constants)
	MsgBound  float64 // 1 + f²/n
}

// CoAResult is the Corollary 2 reproduction.
type CoAResult struct {
	Rows      []CoARow
	SyncTime  stats.Summary
	SyncMsgs  stats.Summary
	SyncProto string
}

// CostOfAsynchrony reproduces Corollary 2. The synchronous baseline runs
// with d = δ = 1 known (so it stops after a fixed round count); each
// asynchronous algorithm runs in the same d = δ = 1 world — but, not
// knowing the bounds, must buy its stopping guarantee with extra time or
// messages. The measured ratios witness the corollary's disjunction
// qualitatively: at f = Θ(n), asynchronous gossip pays a Θ(f) time factor
// or a Θ(1+f²/n) message factor over the synchronous optimum.
func CostOfAsynchrony(env Env, seed int64) (*CoAResult, error) {
	n := 256
	if env.Scale == Quick {
		n = 128
	}
	f := n / 4
	seeds := env.seeds()

	// One grid: the synchronous baseline plus every asynchronous protocol.
	asyncProtos := []string{"trivial", "ears", "sears", "tears"}
	specs := []GossipSpec{{
		Proto: "sync-epidemic", N: n, F: f, D: 1, Delta: 1,
		Preset: adversary.PresetStandard, Seeds: seeds,
	}}
	for _, proto := range asyncProtos {
		specs = append(specs, GossipSpec{
			Proto: proto, N: n, F: f, D: sim.Time(1), Delta: sim.Time(1),
			Preset: adversary.PresetStandard, Seeds: seeds,
		})
	}
	ms, errs := measureGossipGrid(specs, env)
	if errs[0] != nil {
		return nil, fmt.Errorf("coa sync baseline: %w", errs[0])
	}
	syncM := ms[0]
	res := &CoAResult{SyncTime: syncM.Time, SyncMsgs: syncM.Messages, SyncProto: "sync-epidemic"}

	for i, proto := range asyncProtos {
		m, err := ms[i+1], errs[i+1]
		if err != nil {
			return nil, fmt.Errorf("coa %s: %w", proto, err)
		}
		row := CoARow{
			Proto: proto, N: n, F: f,
			TimeBound: float64(f),
			MsgBound:  1 + float64(f)*float64(f)/float64(n),
		}
		if syncM.Time.Mean > 0 {
			row.TimeRatio = m.Time.Mean / syncM.Time.Mean
		}
		if syncM.Messages.Mean > 0 {
			row.MsgRatio = m.Messages.Mean / syncM.Messages.Mean
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the comparison.
func (r *CoAResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Corollary 2 — cost of asynchrony vs %s (time %s steps, %s msgs)",
			r.SyncProto, r.SyncTime.String(), r.SyncMsgs.String()),
		"algorithm", "n", "f", "time-ratio", "msg-ratio", "Ω time-bound (f)", "Ω msg-bound (1+f²/n)")
	for _, row := range r.Rows {
		t.AddRow(row.Proto, row.N, row.F,
			fmt.Sprintf("%.2f", row.TimeRatio), fmt.Sprintf("%.2f", row.MsgRatio),
			row.TimeBound, fmt.Sprintf("%.1f", row.MsgBound))
	}
	t.AddNote("Corollary 2 is worst-case over adversaries; these ratios are under the standard oblivious")
	t.AddNote("adversary and show the benign-case gap. The adversarial gap is witnessed by Figure 1.")
	return t
}

// Render formats CoAResult's table as text.
func (r *CoAResult) Render() string { return r.Table().String() }
