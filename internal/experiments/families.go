package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/stats"
	"repro/internal/topology"
)

// PushPullSweepResult is the Panagiotou–Speidel N·p sweep run on the
// protocols their result is actually about: single-rumor push, pull and
// push-pull on Erdős–Rényi graphs G(n, c·ln n/n) as edge density scales
// away from the connectivity threshold. Their theorem: asynchronous
// push-pull spreading time is essentially independent of p in the
// connected regime, while the synchronous variants pay a density factor
// near the threshold. The observable regime shift here: all three
// variants' completion times flatten quickly in c, and pull's long
// solicitation tail (the one regime where uninformed processes do the
// work) shrinks fastest as density rises.
type PushPullSweepResult struct {
	N  int
	Cs []float64 // p = c·ln n / n multipliers
	// MeanDeg[i] is n·p for the swept point.
	MeanDeg []float64
	// Time and Messages are indexed [variant][point].
	Variants []string
	Time     map[string][]stats.Summary
	Messages map[string][]stats.Summary
}

// PushPullSweep runs the density sweep. c starts at 2: below that the
// sampled G(n, p) instances are not reliably connected, and a disconnected
// graph fails the spreading promise by construction rather than measuring
// anything about the protocol.
func PushPullSweep(env Env, seed int64) (*PushPullSweepResult, error) {
	n := 64
	cs := []float64{2, 4, 8}
	if env.Scale == Full {
		n = 256
		cs = []float64{2, 4, 8, 16}
	}
	variants := []string{"push", "pull", "push-pull"}
	res := &PushPullSweepResult{
		N: n, Cs: cs, Variants: variants,
		Time:     map[string][]stats.Summary{},
		Messages: map[string][]stats.Summary{},
	}
	logn := math.Log(float64(n))
	var specs []GossipSpec
	for _, c := range cs {
		p := c * logn / float64(n)
		if p > 1 {
			p = 1
		}
		res.MeanDeg = append(res.MeanDeg, p*float64(n))
		for _, proto := range variants {
			specs = append(specs, GossipSpec{
				Proto: proto, N: n, F: 0, D: 2, Delta: 2,
				Preset: adversary.PresetStandard, Seeds: env.seeds(),
				Topology: topology.FamilyErdosRenyi, TopoParam: p,
			})
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	cell := 0
	for _, c := range cs {
		for _, proto := range variants {
			m, err := ms[cell], errs[cell]
			cell++
			if err != nil {
				return nil, fmt.Errorf("push-pull sweep %s c=%.1f: %w", proto, c, err)
			}
			res.Time[proto] = append(res.Time[proto], m.Time)
			res.Messages[proto] = append(res.Messages[proto], m.Messages)
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *PushPullSweepResult) Table() *stats.Table {
	header := []string{"variant"}
	for i, c := range r.Cs {
		header = append(header, fmt.Sprintf("c=%.0f (deg %.0f)", c, r.MeanDeg[i]))
	}
	t := stats.NewTable(
		fmt.Sprintf("push/pull/push-pull time on G(n, c·ln n/n) at n=%d (Panagiotou–Speidel regime)", r.N),
		header...)
	for _, proto := range r.Variants {
		row := make([]interface{}, 0, len(r.Cs)+1)
		row = append(row, proto)
		for _, s := range r.Time[proto] {
			row = append(row, s.String())
		}
		t.AddRow(row...)
	}
	t.AddNote("asynchronous spreading time is density-insensitive once c clears the connectivity threshold; pull's solicitation tail shrinks fastest with density.")
	return t
}

// Render formats the sweep as text.
func (r *PushPullSweepResult) Render() string { return r.Table().String() }

// AveragingCurveResult is the diffusion-time curve for sum-weight
// averaging: time to ε-consensus as ε tightens, on the clique under the
// standard adversary. The non-asymptotic bound (Picard et al. style) is
// linear in log(1/ε): each information-spreading epoch contracts the
// worst-case estimate error by a constant factor, so halving ε costs a
// constant number of extra epochs — which is exactly the protocol's round
// budget R = ⌈c·(log₂ n + log₂⌈1/ε⌉)⌉.
type AveragingCurveResult struct {
	N        int
	Epsilons []float64
	Time     []stats.Summary
	Messages []stats.Summary
	// Rounds[i] is the per-process budget R the protocol derived for ε_i.
	Rounds []int
}

// AveragingCurve runs the ε sweep.
func AveragingCurve(env Env, seed int64) (*AveragingCurveResult, error) {
	n := 64
	eps := []float64{1e-1, 1e-2, 1e-3}
	if env.Scale == Full {
		n = 256
		eps = []float64{1e-1, 1e-2, 1e-3, 1e-4}
	}
	res := &AveragingCurveResult{N: n, Epsilons: eps}
	specs := make([]GossipSpec, len(eps))
	for i, e := range eps {
		specs[i] = GossipSpec{
			Proto: "average", N: n, F: 0, D: 2, Delta: 2,
			Preset: adversary.PresetStandard, Seeds: env.seeds(),
		}
		specs[i].Gossip.AvgEpsilon = e
	}
	ms, errs := measureGossipGrid(specs, env)
	for i, e := range eps {
		if errs[i] != nil {
			return nil, fmt.Errorf("averaging curve ε=%g: %w", e, errs[i])
		}
		res.Time = append(res.Time, ms[i].Time)
		res.Messages = append(res.Messages, ms[i].Messages)
		p := specs[i].Gossip
		p.N = n
		res.Rounds = append(res.Rounds, p.WithDefaults().AvgRounds())
	}
	return res, nil
}

// Table renders the curve.
func (r *AveragingCurveResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("averaging diffusion time vs ε at n=%d (time to ε-consensus is linear in log 1/ε)", r.N),
		"ε", "rounds R", "time(steps)", "messages")
	for i, e := range r.Epsilons {
		t.AddRow(fmt.Sprintf("%g", e), r.Rounds[i], r.Time[i].String(), r.Messages[i].String())
	}
	t.AddNote("R grows by a constant per halving of ε; messages are exactly n·R on the clique.")
	return t
}

// Render formats the curve as text.
func (r *AveragingCurveResult) Render() string { return r.Table().String() }
