package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SchedSweepResult measures message complexity as a function of δ (with
// d = 1). The structural expectation differs from the d axis: tears'
// trigger events spread across more steps as δ grows, so its count rises
// and then *saturates* below the (d,δ)-independent Theorem 12 ceiling,
// while ears is flat on this axis (its per-process local-step budget
// Θ(n/(n−f)·log²n) does not involve δ; only the d axis inflates it by
// keeping processes stepping while messages are in flight).
type SchedSweepResult struct {
	Deltas []int
	Series map[string][]float64
	N, F   int
}

// SchedSweep runs the δ sweep.
func SchedSweep(env Env, seed int64) (*SchedSweepResult, error) {
	n := 128
	deltas := []int{1, 2, 4, 8, 16}
	if env.Scale == Quick {
		n = 64
		deltas = []int{1, 4, 8}
	}
	f := n / 4
	res := &SchedSweepResult{Deltas: deltas, Series: map[string][]float64{}, N: n, F: f}
	protos := []string{"ears", "sears", "tears"}
	var specs []GossipSpec
	for _, proto := range protos {
		for _, delta := range deltas {
			specs = append(specs, GossipSpec{
				Proto: proto, N: n, F: f,
				D: 1, Delta: sim.Time(delta),
				Preset: adversary.PresetStandard, Seeds: env.seeds(),
			})
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	cell := 0
	for _, proto := range protos {
		for _, delta := range deltas {
			m, err := ms[cell], errs[cell]
			cell++
			if err != nil {
				return nil, fmt.Errorf("sched sweep %s δ=%d: %w", proto, delta, err)
			}
			res.Series[proto] = append(res.Series[proto], m.Messages.Mean)
		}
	}
	return res, nil
}

// Render formats the sweep.
func (r *SchedSweepResult) Table() *stats.Table {
	header := []string{"protocol"}
	for _, d := range r.Deltas {
		header = append(header, fmt.Sprintf("δ=%d", d))
	}
	header = append(header, "tail-growth")
	t := stats.NewTable(
		fmt.Sprintf("Message complexity vs δ (n=%d f=%d d=1) — tears saturates below its δ-independent ceiling", r.N, r.F),
		header...)
	for _, proto := range []string{"ears", "sears", "tears"} {
		series := r.Series[proto]
		row := make([]interface{}, 0, len(series)+2)
		row = append(row, proto)
		for _, v := range series {
			row = append(row, int64(v))
		}
		row = append(row, fmt.Sprintf("%.2fx", tailGrowth(series)))
		t.AddRow(row...)
	}
	t.AddNote("tail-growth compares the last two δ points; ≈1.00x means saturation.")
	return t
}

// tailGrowth is the ratio of the last two points of a series (1 if
// undefined).
func tailGrowth(series []float64) float64 {
	if len(series) < 2 || series[len(series)-2] == 0 {
		return 1
	}
	return series[len(series)-1] / series[len(series)-2]
}

// FSweepResult measures ears completion time as a function of f at fixed
// n: Theorem 6's n/(n−f) survivor factor. As f approaches n the time
// must blow up like 1/(1−f/n).
type FSweepResult struct {
	Fs       []int
	Time     []stats.Summary
	Messages []stats.Summary
	// SurvivorFactor[i] = n/(n−f_i), the theory curve up to constants.
	SurvivorFactor []float64
	N              int
}

// FSweep runs the failure sweep for ears under the crash-storm adversary
// (all crashes at t=0, which realizes the n/(n−f) regime exactly: only
// n−f processes ever participate, and random targets hit a live process
// with probability (n−f)/n).
func FSweep(env Env, seed int64) (*FSweepResult, error) {
	n := 128
	if env.Scale == Quick {
		n = 64
	}
	fs := []int{0, n / 4, n / 2, 3 * n / 4, 7 * n / 8}
	res := &FSweepResult{Fs: fs, N: n}
	specs := make([]GossipSpec, len(fs))
	for i, f := range fs {
		specs[i] = GossipSpec{
			Proto: "ears", N: n, F: f, D: 2, Delta: 2,
			Preset: adversary.PresetCrashStorm, Seeds: env.seeds(),
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	for i, f := range fs {
		if errs[i] != nil {
			return nil, fmt.Errorf("f sweep f=%d: %w", f, errs[i])
		}
		res.Time = append(res.Time, ms[i].Time)
		res.Messages = append(res.Messages, ms[i].Messages)
		res.SurvivorFactor = append(res.SurvivorFactor, float64(n)/float64(n-f))
	}
	return res, nil
}

// Render formats the sweep.
func (r *FSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("ears time vs f at n=%d (Theorem 6's n/(n−f) factor; crash storm at t=0)", r.N),
		"f", "n/(n−f)", "time(steps)", "messages")
	for i, f := range r.Fs {
		t.AddRow(f, fmt.Sprintf("%.2f", r.SurvivorFactor[i]), r.Time[i].String(), r.Messages[i].String())
	}
	t.AddNote("time should track the n/(n−f) column (up to the shared log²n(d+δ) factor).")
	return t
}

// CrossoverResult locates the n beyond which ears sends fewer messages
// than trivial gossip — the practical content of Table 1's first two
// asynchronous rows.
type CrossoverResult struct {
	Ns      []int
	Trivial []float64
	EARS    []float64
	// CrossoverN is the first swept n where ears wins (0 if never).
	CrossoverN int
}

// Crossover runs the comparison sweep.
func Crossover(env Env, seed int64) (*CrossoverResult, error) {
	ns := []int{32, 64, 128, 256, 512}
	if env.Scale == Quick {
		ns = []int{32, 64, 128}
	}
	res := &CrossoverResult{Ns: ns}
	var specs []GossipSpec
	for _, n := range ns {
		for _, proto := range []string{"trivial", "ears"} {
			specs = append(specs, GossipSpec{
				Proto: proto, N: n, F: n / 4, D: 2, Delta: 2,
				Preset: adversary.PresetStandard, Seeds: env.seeds(),
			})
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	cell := 0
	for _, n := range ns {
		for _, proto := range []string{"trivial", "ears"} {
			m, err := ms[cell], errs[cell]
			cell++
			if err != nil {
				return nil, fmt.Errorf("crossover %s n=%d: %w", proto, n, err)
			}
			if proto == "trivial" {
				res.Trivial = append(res.Trivial, m.Messages.Mean)
			} else {
				res.EARS = append(res.EARS, m.Messages.Mean)
			}
		}
		if res.CrossoverN == 0 && res.EARS[len(res.EARS)-1] < res.Trivial[len(res.Trivial)-1] {
			res.CrossoverN = n
		}
	}
	return res, nil
}

// Render formats the comparison.
func (r *CrossoverResult) Table() *stats.Table {
	t := stats.NewTable(
		"ears vs trivial message crossover (f=n/4, d=δ=2)",
		"n", "trivial msgs (Θ(n²))", "ears msgs (O(n log³n(d+δ)))", "winner")
	for i, n := range r.Ns {
		winner := "trivial"
		if r.EARS[i] < r.Trivial[i] {
			winner = "ears"
		}
		t.AddRow(n, int64(r.Trivial[i]), int64(r.EARS[i]), winner)
	}
	if r.CrossoverN > 0 {
		t.AddNote("ears overtakes trivial at n ≈ %d in this configuration.", r.CrossoverN)
	} else {
		t.AddNote("no crossover within the swept range.")
	}
	return t
}

// Render formats SchedSweepResult's table as text.
func (r *SchedSweepResult) Render() string { return r.Table().String() }

// Render formats FSweepResult's table as text.
func (r *FSweepResult) Render() string { return r.Table().String() }

// Render formats CrossoverResult's table as text.
func (r *CrossoverResult) Render() string { return r.Table().String() }
