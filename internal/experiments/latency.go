package experiments

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RumorLatencyResult reports the distribution of per-rumor dissemination
// latency: for each rumor r, the time until every live process had
// learned r. This is the per-rumor view that connects the paper's
// all-rumors gossip bound to the single-rumor spreading literature it
// cites (Karp et al. [19]: one rumor spreads in O(log n) rounds).
type RumorLatencyResult struct {
	Proto   string
	N, F    int
	Latency stats.Summary // over rumors: time to full coverage
	PerSeed int
}

// RumorLatency measures per-rumor spread latencies for a protocol; the
// seed grid fans across env.Workers and latencies are collected in seed
// order.
func RumorLatency(proto string, env Env, seed int64) (*RumorLatencyResult, error) {
	p, err := protoByName(proto)
	if err != nil {
		return nil, err
	}
	n := 128
	if env.Scale == Quick {
		n = 64
	}
	f := 0 // failure-free so every rumor must reach every process
	res := &RumorLatencyResult{Proto: proto, N: n, F: f}

	perSeed, errs, _ := runner.Map(context.Background(), env.seeds(),
		runner.Options{Workers: env.Workers},
		func(_ context.Context, s int) ([]float64, error) {
			cfg := sim.Config{N: n, F: f, D: 2, Delta: 2, Seed: seed + int64(s)}
			params := core.Params{N: n, F: f}
			nodes, err := core.NewNodes(p, params, cfg.Seed)
			if err != nil {
				return nil, err
			}
			adv, err := adversary.ByName(adversary.PresetStandard, cfg)
			if err != nil {
				return nil, err
			}
			w, err := sim.NewWorld(cfg, nodes, adv)
			if err != nil {
				return nil, err
			}
			if _, err := w.Run(p.Evaluator(params)); err != nil {
				return nil, fmt.Errorf("latency %s seed %d: %w", proto, cfg.Seed, err)
			}
			// Latency of rumor r = max over processes of acquisition time.
			lat := make([]float64, 0, n)
			for r := 0; r < n; r++ {
				var worst sim.Time
				for q := 0; q < n; q++ {
					h := nodes[q].(core.RumorHolder)
					if at := h.RumorAcquiredAt(sim.ProcID(r)); at > worst {
						worst = at
					}
				}
				lat = append(lat, float64(worst))
			}
			return lat, nil
		})
	if err := runner.FirstError(errs); err != nil {
		return nil, err
	}
	var lat []float64
	for _, l := range perSeed {
		lat = append(lat, l...)
	}
	res.Latency = stats.Summarize(lat)
	res.PerSeed = n
	return res, nil
}

// RumorLatencyTables runs the latency measurement across protocols and
// returns the assembled table.
func RumorLatencyTables(env Env, seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		"Per-rumor dissemination latency (failure-free, d=2 δ=2; cf. Karp et al. [19])",
		"protocol", "mean", "median", "max", "n")
	for _, proto := range []string{"trivial", "ears", "sears"} {
		res, err := RumorLatency(proto, env, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(proto,
			fmt.Sprintf("%.1f", res.Latency.Mean),
			fmt.Sprintf("%.1f", res.Latency.Median),
			fmt.Sprintf("%.0f", res.Latency.Max),
			res.N)
	}
	t.AddNote("tears is excluded: majority gossip does not promise full per-rumor coverage.")
	return t, nil
}

// RumorLatencyTable renders RumorLatencyTables as text.
func RumorLatencyTable(env Env, seed int64) (string, error) {
	t, err := RumorLatencyTables(env, seed)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}
