package experiments

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table2Row is one measured row of the Table 2 reproduction.
type Table2Row struct {
	Algo      string
	N, F      int
	Time      stats.Summary
	Messages  stats.Summary
	TimeExp   float64
	MsgExp    float64
	PaperTime string
	PaperMsgs string
}

// Table2Result carries the full reproduction of Table 2 (consensus under
// an oblivious adversary, f < n/2).
type Table2Result struct {
	Rows  []Table2Row
	Scale Scale
	D     int
	Delta int
}

var table2Transports = []struct {
	kind      consensus.TransportKind
	label     string
	paperTime string
	paperMsgs string
}{
	{consensus.TransportDirect, "Canetti-Rabin", "O(d+δ)", "O(n²)"},
	{consensus.TransportEARS, "CR-ears", "O(log²n·(d+δ))", "O(n·log³n·(d+δ))"},
	{consensus.TransportSEARS, "CR-sears", "O(1/ε·(d+δ))", "O(n^{1+ε}·log n·(d+δ))"},
	{consensus.TransportTEARS, "CR-tears", "O(d+δ)", "O(n^{7/4}·log²n)"},
}

// Table2 reproduces Table 2: binary randomized consensus with each
// get-core transport, measured time-to-decision and messages, plus growth
// exponents over the n sweep. f is just under n/2 (the paper's consensus
// assumption is a minority of failures).
func Table2(env Env, d, delta int) (*Table2Result, error) {
	res := &Table2Result{Scale: env.Scale, D: d, Delta: delta}
	ns := env.Scale.consensusNs()
	var specs []ConsensusSpec
	for _, tt := range table2Transports {
		for _, n := range ns {
			specs = append(specs, ConsensusSpec{
				Transport: tt.kind, N: n, F: (n - 1) / 2,
				D: sim.Time(d), Delta: sim.Time(delta),
				Seeds: env.seeds(),
			})
		}
	}
	ms, errs := measureConsensusGrid(specs, env)
	cell := 0
	for _, tt := range table2Transports {
		var nsX, timeY, msgY []float64
		var last Measurement
		var lastN, lastF int
		for _, n := range ns {
			m, err := ms[cell], errs[cell]
			cell++
			if err != nil {
				return nil, fmt.Errorf("table2 %s n=%d: %w", tt.label, n, err)
			}
			f := (n - 1) / 2
			nsX = append(nsX, float64(n))
			timeY = append(timeY, m.Time.Mean)
			msgY = append(msgY, m.Messages.Mean)
			last, lastN, lastF = m, n, f
		}
		row := Table2Row{
			Algo: tt.label, N: lastN, F: lastF,
			Time: last.Time, Messages: last.Messages,
			PaperTime: tt.paperTime, PaperMsgs: tt.paperMsgs,
		}
		if fit, err := stats.GrowthExponent(nsX, timeY); err == nil {
			row.TimeExp = fit.Slope
		}
		if fit, err := stats.GrowthExponent(nsX, msgY); err == nil {
			row.MsgExp = fit.Slope
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the reproduction next to the paper's claims.
func (r *Table2Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Table 2 — consensus, oblivious adversary, f<n/2 (measured at d=%d δ=%d)", r.D, r.Delta),
		"algorithm", "n", "f", "time(steps)", "messages", "t-exp", "m-exp", "paper time", "paper messages")
	for _, row := range r.Rows {
		t.AddRow(row.Algo, row.N, row.F,
			row.Time.String(), row.Messages.String(),
			fmt.Sprintf("%.2f", row.TimeExp), fmt.Sprintf("%.2f", row.MsgExp),
			row.PaperTime, row.PaperMsgs)
	}
	t.AddNote("Canetti-Rabin should show m-exp ≈ 2; CR-ears ≈ 1 (+log); CR-tears strictly below 2 with t-exp ≈ 0.")
	return t
}

// Render formats Table2Result's table as text.
func (r *Table2Result) Render() string { return r.Table().String() }
