package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/stats"
	"repro/internal/topology"
)

// topoPoint is one (protocol, family) cell of the topology sweep.
type topoPoint struct {
	Proto    string
	Family   string
	Degree   float64 // mean degree of the generated graph (n for complete)
	M        Measurement
	Complete float64 // fraction of runs whose evaluator accepted
}

// TopologySweepResult measures time and message complexity of the three
// asynchronous protocols across graph families. The paper's protocols are
// designed for the clique; the sweep quantifies what survives off it:
// ears still achieves full gossip on every connected topology (its
// informed-list termination is topology-agnostic, only slower on
// high-diameter graphs), while tears' majority-gossip promise degrades on
// sparse families whose neighborhoods are smaller than its √n·log n
// audiences — a completion-rate column makes that visible rather than an
// error.
type TopologySweepResult struct {
	N      int
	Points []topoPoint
}

// topoFamilies are the swept families (complete is the clique baseline).
func topoFamilies() []string {
	return []string{
		topology.FamilyComplete,
		topology.FamilyRing,
		topology.FamilyTorus,
		topology.FamilyRandomRegular,
		topology.FamilyErdosRenyi,
		topology.FamilyWattsStrogatz,
		topology.FamilyBarabasiAlbert,
	}
}

// TopologySweep runs the sweep. Failures are kept: f = 0 so that sparse
// graphs stay connected and the measured axis is purely topological (a
// crash disconnects a ring, which is a different experiment — see the
// adversary sweeps for the crash axis).
func TopologySweep(env Env, seed int64) (*TopologySweepResult, error) {
	n := 64
	if env.Scale == Full {
		n = 128
	}
	res := &TopologySweepResult{N: n}
	protos := []string{"ears", "sears", "tears"}

	// Mean degree is averaged over the same per-seed graph instances the
	// measurements below actually run on (runGossipOnce generates the
	// graph from the run seed, 0..Seeds-1). Graph generation is cheap next
	// to the simulations, so it stays serial.
	degrees := map[string]float64{}
	for _, family := range topoFamilies() {
		meanDeg := float64(n)
		if family != topology.FamilyComplete {
			meanDeg = 0
			for s := int64(0); s < int64(env.seeds()); s++ {
				g, err := topology.Build(topology.Spec{Family: family, N: n, Seed: s})
				if err != nil {
					return nil, fmt.Errorf("topology sweep %s: %w", family, err)
				}
				meanDeg += 2 * float64(g.Edges()) / float64(n)
			}
			meanDeg /= float64(env.seeds())
		}
		degrees[family] = meanDeg
	}

	var specs []GossipSpec
	for _, family := range topoFamilies() {
		for _, proto := range protos {
			specs = append(specs, GossipSpec{
				Proto: proto, N: n, F: 0, D: 2, Delta: 2,
				Preset: adversary.PresetStandard, Seeds: env.seeds(),
				Topology: family,
			})
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	cell := 0
	for _, family := range topoFamilies() {
		for _, proto := range protos {
			m, err := ms[cell], errs[cell]
			cell++
			// An all-runs-failed point is data (the protocol's promise does
			// not hold on that family), not a harness error.
			if err != nil && !(m.Runs > 0 && m.Failures == m.Runs) {
				return nil, fmt.Errorf("topology sweep %s on %s: %w", proto, family, err)
			}
			res.Points = append(res.Points, topoPoint{
				Proto:    proto,
				Family:   family,
				Degree:   degrees[family],
				M:        m,
				Complete: float64(m.Runs-m.Failures) / float64(m.Runs),
			})
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *TopologySweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Gossip across graph families (n=%d f=0 d=δ=2, standard adversary)", r.N),
		"protocol", "topology", "mean-deg", "time(steps)", "messages", "completion")
	for _, p := range r.Points {
		timeCell, msgCell := "—", "—"
		if p.Complete > 0 {
			timeCell = p.M.Time.String()
			msgCell = p.M.Messages.String()
		}
		t.AddRow(p.Proto, p.Family, fmt.Sprintf("%.1f", p.Degree),
			timeCell, msgCell, fmt.Sprintf("%d%%", int(p.Complete*100)))
	}
	t.AddNote("completion < 100%% marks families where the protocol's promise (full or majority gossip) fails; tears' √n·log n audiences need dense neighborhoods.")
	return t
}

// Render formats the sweep as text.
func (r *TopologySweepResult) Render() string { return r.Table().String() }

// NPSweepResult is the Panagiotou–Speidel-style N·p sweep: rumor spreading
// on Erdős–Rényi graphs G(n, p) as edge density scales through the
// connectivity threshold p = ln n / n. Their result for asynchronous
// push-pull: spreading time is essentially independent of p in the
// connected regime (unlike the synchronous case, which pays a 1/p-ish
// factor near the threshold). The analogue here: ears completion time on
// G(n, c·ln n/n) flattens quickly in c, while message complexity stays
// within a constant factor of the clique.
type NPSweepResult struct {
	N  int
	Cs []float64 // p = c·ln n / n multipliers
	// MeanDeg[i] is n·p for the swept point.
	MeanDeg  []float64
	Time     []stats.Summary
	Messages []stats.Summary
}

// NPSweep runs the Erdős–Rényi density sweep for ears.
func NPSweep(env Env, seed int64) (*NPSweepResult, error) {
	n := 64
	cs := []float64{1.2, 2, 4, 8}
	if env.Scale == Full {
		n = 256
		cs = []float64{1.2, 2, 4, 8, 16}
	}
	res := &NPSweepResult{N: n, Cs: cs}
	logn := math.Log(float64(n))
	ps := make([]float64, len(cs))
	specs := make([]GossipSpec, len(cs))
	for i, c := range cs {
		p := c * logn / float64(n)
		if p > 1 {
			p = 1
		}
		ps[i] = p
		specs[i] = GossipSpec{
			Proto: "ears", N: n, F: 0, D: 2, Delta: 2,
			Preset: adversary.PresetStandard, Seeds: env.seeds(),
			Topology: topology.FamilyErdosRenyi, TopoParam: p,
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	for i, c := range cs {
		if errs[i] != nil {
			return nil, fmt.Errorf("np sweep c=%.1f: %w", c, errs[i])
		}
		res.MeanDeg = append(res.MeanDeg, ps[i]*float64(n))
		res.Time = append(res.Time, ms[i].Time)
		res.Messages = append(res.Messages, ms[i].Messages)
	}
	return res, nil
}

// Table renders the sweep.
func (r *NPSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("ears on G(n, c·ln n/n) at n=%d (Panagiotou–Speidel N·p sweep)", r.N),
		"c", "n·p (mean deg)", "time(steps)", "messages")
	for i, c := range r.Cs {
		t.AddRow(fmt.Sprintf("%.1f", c), fmt.Sprintf("%.1f", r.MeanDeg[i]),
			r.Time[i].String(), r.Messages[i].String())
	}
	t.AddNote("time should flatten once c clears the connectivity threshold (c=1): asynchronous spreading is density-insensitive in the connected regime.")
	return t
}

// Render formats the sweep as text.
func (r *NPSweepResult) Render() string { return r.Table().String() }
