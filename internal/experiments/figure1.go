package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Figure1Row is one point of the Theorem 1 / Figure 1 reproduction: the
// adaptive adversary of §2 run against a protocol at one failure budget.
type Figure1Row struct {
	Proto         string
	N, F          int
	Case          lowerbound.Case
	Messages      int64
	MessageTarget int64
	Time          int64
	TimeTarget    int64
	Witnessed     bool
}

// Figure1Result is the Theorem 1 dichotomy sweep.
type Figure1Result struct {
	Rows []Figure1Row
}

// Figure1 reproduces the lower-bound construction of §2/Figure 1: for each
// protocol and each f in the sweep, the adaptive adversary either inflates
// messages to Ω(f²) (Case 1) or forces Ω(f(d+δ)) time (Case 2 or a slow
// start). Witnessed reports whether the constructed execution meets one of
// the two targets. The (protocol × f) cells run concurrently across
// env.Workers; rows are collected in grid order.
func Figure1(env Env, seed int64) (*Figure1Result, error) {
	n := 256
	fs := []int{16, 32, 64}
	if env.Scale == Quick {
		n = 128
		fs = []int{16, 32}
	}
	protos := []core.Protocol{core.Trivial{}, core.EARS{}, core.SEARS{}, core.TEARS{}}
	type cellRef struct {
		proto core.Protocol
		f     int
	}
	var cells []cellRef
	for _, proto := range protos {
		for _, f := range fs {
			cells = append(cells, cellRef{proto: proto, f: f})
		}
	}
	reps, errs, _ := runner.Map(context.Background(), len(cells),
		runner.Options{Workers: env.Workers},
		func(_ context.Context, c int) (lowerbound.Report, error) {
			return lowerbound.Run(cells[c].proto, core.Params{}, lowerbound.Config{
				N: n, F: cells[c].f, Seed: seed, Trials: 8,
			})
		})
	res := &Figure1Result{}
	for c, ref := range cells {
		if errs[c] != nil {
			return nil, fmt.Errorf("figure1 %s f=%d: %w", ref.proto.Name(), ref.f, errs[c])
		}
		rep := reps[c]
		res.Rows = append(res.Rows, Figure1Row{
			Proto: ref.proto.Name(), N: n, F: rep.FEffective,
			Case:          rep.Case,
			Messages:      rep.TotalMessages,
			MessageTarget: rep.MessageTarget,
			Time:          int64(rep.ForcedTime),
			TimeTarget:    int64(rep.TimeTarget),
			Witnessed:     rep.Satisfied(),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *Figure1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 1 / Theorem 1 — adaptive adversary: Ω(n+f²) messages or Ω(f(d+δ)) time",
		"protocol", "n", "f", "case", "messages", "msg-target(f²/128)", "time", "time-target(f/2)", "witnessed")
	for _, row := range r.Rows {
		t.AddRow(row.Proto, row.N, row.F, string(row.Case),
			row.Messages, row.MessageTarget, row.Time, row.TimeTarget, row.Witnessed)
	}
	t.AddNote("case=messages: promiscuous majority, message inflation (proof Case 1).")
	t.AddNote("case=isolation: non-communicating pair isolated (proof Case 2).")
	t.AddNote("case=slow-start: S1 quiescence alone exceeded f steps at d=δ=1.")
	return t
}

// Render formats Figure1Result's table as text.
func (r *Figure1Result) Render() string { return r.Table().String() }
