// Package experiments is the measurement harness behind every table and
// figure of the paper (see DESIGN.md §4 for the experiment index):
//
//	Table1        — gossip protocols: time and message complexity
//	Table2        — consensus protocols (Canetti–Rabin + gossip get-core)
//	Figure1       — the Theorem 1 adaptive-adversary construction
//	CostOfAsynchrony — Corollary 2 ratios
//	Ablation*     — design-choice sweeps (DESIGN.md §6)
//
// The same entry points back the cmd/tables CLI and the root bench suite.
package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/syncgossip"
	"repro/internal/topology"
)

// GossipSpec describes one gossip measurement point.
type GossipSpec struct {
	Proto  string // core protocol name or syncgossip name
	N, F   int
	D      sim.Time
	Delta  sim.Time
	Preset string
	Seeds  int
	Gossip core.Params
	// Topology selects a communication graph family (empty = complete).
	// A fresh graph is generated per seed, so measurements aggregate over
	// graph instances as well as executions.
	Topology              string
	TopoParam, TopoParam2 float64
}

// Measurement aggregates repeated runs of one spec.
type Measurement struct {
	Time     stats.Summary // paper time complexity (steps)
	Messages stats.Summary
	Bytes    stats.Summary
	Runs     int
	Failures int // runs whose evaluator rejected or that timed out
}

// protoByName resolves asynchronous and synchronous protocols.
func protoByName(name string) (core.Protocol, error) {
	if p, err := core.ByName(name); err == nil {
		return p, nil
	}
	if p, err := syncgossip.ByName(name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("experiments: unknown protocol %q", name)
}

// MeasureGossip runs the spec over its seeds and aggregates.
func MeasureGossip(spec GossipSpec) (Measurement, error) {
	proto, err := protoByName(spec.Proto)
	if err != nil {
		return Measurement{}, err
	}
	if spec.Seeds <= 0 {
		spec.Seeds = 3
	}
	if spec.Preset == "" {
		spec.Preset = adversary.PresetStandard
	}
	var times, msgs, bytes []float64
	failures := 0
	for seed := int64(0); seed < int64(spec.Seeds); seed++ {
		res, err := runGossipOnce(proto, spec, seed)
		if err != nil {
			failures++
			continue
		}
		times = append(times, float64(res.TimeComplexity))
		msgs = append(msgs, float64(res.Messages))
		bytes = append(bytes, float64(res.Bytes))
	}
	m := Measurement{
		Time:     stats.Summarize(times),
		Messages: stats.Summarize(msgs),
		Bytes:    stats.Summarize(bytes),
		Runs:     spec.Seeds,
		Failures: failures,
	}
	if failures == spec.Seeds {
		return m, fmt.Errorf("experiments: all %d runs of %s failed", spec.Seeds, spec.Proto)
	}
	return m, nil
}

func runGossipOnce(proto core.Protocol, spec GossipSpec, seed int64) (sim.Result, error) {
	cfg := sim.Config{N: spec.N, F: spec.F, D: spec.D, Delta: spec.Delta, Seed: seed}
	p := spec.Gossip
	p.N, p.F = spec.N, spec.F
	if spec.Topology != "" {
		g, err := topology.Build(topology.Spec{
			Family: spec.Topology, N: spec.N,
			Param: spec.TopoParam, Param2: spec.TopoParam2, Seed: seed,
		})
		if err != nil {
			return sim.Result{}, err
		}
		p.Graph = g
		cfg.Graph = g
	}
	nodes, err := core.NewNodes(proto, p, seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(spec.Preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(proto.Evaluator(p.WithDefaults()))
}

// ConsensusSpec describes one consensus measurement point.
type ConsensusSpec struct {
	Transport consensus.TransportKind
	N, F      int
	D         sim.Time
	Delta     sim.Time
	Preset    string
	Seeds     int
	Gossip    core.Params
	LocalCoin bool
	// SplitInputs proposes a perfect 0/1 split instead of random inputs —
	// the adversarial vote pattern that forces coin rounds.
	SplitInputs bool
}

// MeasureConsensus runs the spec over its seeds and aggregates.
func MeasureConsensus(spec ConsensusSpec) (Measurement, error) {
	if spec.Seeds <= 0 {
		spec.Seeds = 3
	}
	if spec.Preset == "" {
		spec.Preset = adversary.PresetStandard
	}
	var times, msgs, bytes []float64
	failures := 0
	for seed := int64(0); seed < int64(spec.Seeds); seed++ {
		res, err := runConsensusOnce(spec, seed)
		if err != nil {
			failures++
			continue
		}
		// Consensus "time" is when the last correct process decides.
		times = append(times, float64(res.CompletedAt))
		msgs = append(msgs, float64(res.Messages))
		bytes = append(bytes, float64(res.Bytes))
	}
	m := Measurement{
		Time:     stats.Summarize(times),
		Messages: stats.Summarize(msgs),
		Bytes:    stats.Summarize(bytes),
		Runs:     spec.Seeds,
		Failures: failures,
	}
	if failures == spec.Seeds {
		return m, fmt.Errorf("experiments: all %d runs of CR-%s failed", spec.Seeds, spec.Transport)
	}
	return m, nil
}

func runConsensusOnce(spec ConsensusSpec, seed int64) (sim.Result, error) {
	cfg := sim.Config{N: spec.N, F: spec.F, D: spec.D, Delta: spec.Delta, Seed: seed}
	p := consensus.Params{
		N: spec.N, F: spec.F,
		Transport: spec.Transport,
		Gossip:    spec.Gossip,
	}
	if spec.LocalCoin {
		p.Coin = consensus.NewLocalCoin(seed)
	}
	inputs := consensus.RandomInputs(spec.N, seed+1000)
	if spec.SplitInputs {
		for i := range inputs {
			inputs[i] = uint8(i % 2)
		}
	}
	nodes, err := consensus.NewNodes(p, inputs, seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(spec.Preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(consensus.Evaluator{Inputs: inputs})
}

// Scale selects experiment sizes: Quick keeps CI runtimes small, Full is
// the configuration EXPERIMENTS.md reports.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// gossipNs returns the n sweep for gossip scaling fits.
func (s Scale) gossipNs() []int {
	if s == Full {
		return []int{64, 128, 256, 512}
	}
	return []int{32, 64, 128}
}

// consensusNs returns the n sweep for consensus.
func (s Scale) consensusNs() []int {
	if s == Full {
		return []int{32, 64, 128, 256}
	}
	return []int{16, 32, 64}
}

// seeds returns the per-point repetition count.
func (s Scale) seeds() int {
	if s == Full {
		return 5
	}
	return 2
}
