// Package experiments is the measurement harness behind every table and
// figure of the paper (see DESIGN.md §4 for the experiment index):
//
//	Table1        — gossip protocols: time and message complexity
//	Table2        — consensus protocols (Canetti–Rabin + gossip get-core)
//	Figure1       — the Theorem 1 adaptive-adversary construction
//	CostOfAsynchrony — Corollary 2 ratios
//	Ablation*     — design-choice sweeps (DESIGN.md §6)
//
// The same entry points back the cmd/tables CLI, the cmd/bench artifact
// generator, and the root bench suite. Every entry point takes an Env and
// fans its (spec × seed) grid across the internal/runner worker pool;
// results are collected in grid order, so parallel output is bit-identical
// to a serial run.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/syncgossip"
	"repro/internal/topology"
)

// Env carries harness-wide execution settings threaded through every
// experiment entry point. The zero value is a serviceable default: Quick
// scale, GOMAXPROCS workers, per-scale seed counts.
type Env struct {
	// Scale selects experiment sizes (Quick or Full).
	Scale Scale
	// Workers caps the worker pool that the (spec × seed) grid fans across
	// (0 = GOMAXPROCS, 1 = serial). Results are identical for every value.
	Workers int
	// Seeds overrides the per-point repetition count (0 = scale default).
	Seeds int
	// Shards splits every run into this many superstep shards (0/1 =
	// serial kernel; see sim.Config.Shards). Like Workers it only changes
	// how runs execute, never what they measure — specs with their own
	// Shards keep it.
	Shards int
}

// seeds resolves the per-point repetition count.
func (e Env) seeds() int {
	if e.Seeds > 0 {
		return e.Seeds
	}
	return e.Scale.seeds()
}

// GossipSpec describes one gossip measurement point.
type GossipSpec struct {
	Proto  string // core protocol name or syncgossip name
	N, F   int
	D      sim.Time
	Delta  sim.Time
	Preset string
	Seeds  int
	Gossip core.Params
	// Topology selects a communication graph family (empty = complete).
	// A fresh graph is generated per seed, so measurements aggregate over
	// graph instances as well as executions.
	Topology              string
	TopoParam, TopoParam2 float64
	// Workers caps the worker pool for this spec's seed grid when the spec
	// is measured standalone (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Shards splits each run into superstep shards (0/1 = serial kernel;
	// results are identical for every value).
	Shards int
	// SeedLabel switches the spec's seed policy: empty replays the legacy
	// run-index seeds 0..Seeds-1 (the paper tables depend on them), while
	// a non-empty label derives each run's seed via runner.DeriveSeed, so
	// specs with distinct labels never share a random stream (cmd/bench
	// labels every suite cell).
	SeedLabel string
}

// withDefaults mirrors the historical serial defaults.
func (s GossipSpec) withDefaults() GossipSpec {
	if s.Seeds <= 0 {
		s.Seeds = 3
	}
	if s.Preset == "" {
		s.Preset = adversary.PresetStandard
	}
	return s
}

// Measurement aggregates repeated runs of one spec.
type Measurement struct {
	Time     stats.Summary // paper time complexity (steps)
	Messages stats.Summary
	Bytes    stats.Summary
	// BytesKnown reports that every successful run measured real payload
	// sizes (sim.Result.BytesKnown), distinguishing Bytes = 0 meaning
	// "zero bytes" from "payloads don't report sizes". False when no run
	// succeeded.
	BytesKnown bool
	Runs       int
	Failures   int // runs whose evaluator rejected or that timed out
}

// protoByName resolves asynchronous and synchronous protocols.
func protoByName(name string) (core.Protocol, error) {
	if p, err := core.ByName(name); err == nil {
		return p, nil
	}
	if p, err := syncgossip.ByName(name); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("experiments: unknown protocol %q", name)
}

// MeasureGossip runs the spec over its seeds and aggregates.
func MeasureGossip(spec GossipSpec) (Measurement, error) {
	ms, errs := measureGossipGrid([]GossipSpec{spec}, Env{Workers: spec.Workers})
	return ms[0], errs[0]
}

// specSeed resolves the seed policy of one grid cell: legacy run-index
// seeds for unlabeled specs, runner-derived per-label streams otherwise.
func specSeed(label string, run int) int64 {
	if label == "" {
		return int64(run)
	}
	return runner.DeriveSeed(0, label, int64(run))
}

// gridJob is one spec's slice of a flattened (spec × seed) measurement
// grid: how many runs it owns, how to execute one, and how to read the
// spec kind's time measure out of a result.
type gridJob struct {
	seeds int
	err   error // pre-resolution error (e.g. unknown protocol); skips the runs
	run   func(seed int64) (sim.Result, error)
	seed  func(run int) int64
	// timeOf extracts the time-complexity measure (gossip: quiescence;
	// consensus: last correct decision).
	timeOf func(sim.Result) float64
	// failAll builds the error reported when every run of the job fails.
	failAll func() error
}

// runMeasureGrid fans the jobs' flattened run grid across one worker pool
// and aggregates each job's cells in run order, so every Measurement (and
// error) is exactly what a serial per-spec loop would have produced.
func runMeasureGrid(jobs []gridJob, workers int) ([]Measurement, []error) {
	ms := make([]Measurement, len(jobs))
	errs := make([]error, len(jobs))
	type cellRef struct{ job, run int }
	var cells []cellRef
	for i, job := range jobs {
		if job.err != nil {
			errs[i] = job.err
			continue
		}
		for r := 0; r < job.seeds; r++ {
			cells = append(cells, cellRef{job: i, run: r})
		}
	}

	results, cellErrs, _ := runner.Map(context.Background(), len(cells),
		runner.Options{Workers: workers},
		func(_ context.Context, c int) (sim.Result, error) {
			job := jobs[cells[c].job]
			return job.run(job.seed(cells[c].run))
		})

	cursor := 0
	for i, job := range jobs {
		if errs[i] != nil {
			continue
		}
		var times, msgs, bytes []float64
		failures := 0
		bytesKnown := true
		for r := 0; r < job.seeds; r++ {
			res, err := results[cursor], cellErrs[cursor]
			cursor++
			if err != nil {
				failures++
				continue
			}
			times = append(times, job.timeOf(res))
			msgs = append(msgs, float64(res.Messages))
			bytes = append(bytes, float64(res.Bytes))
			bytesKnown = bytesKnown && res.BytesKnown
		}
		ms[i] = Measurement{
			Time:       stats.Summarize(times),
			Messages:   stats.Summarize(msgs),
			Bytes:      stats.Summarize(bytes),
			BytesKnown: bytesKnown && failures < job.seeds,
			Runs:       job.seeds,
			Failures:   failures,
		}
		if failures == job.seeds {
			errs[i] = job.failAll()
		}
	}
	return ms, errs
}

// measureGossipGrid measures many gossip specs on one worker pool.
func measureGossipGrid(specs []GossipSpec, env Env) ([]Measurement, []error) {
	jobs := make([]gridJob, len(specs))
	for i, spec := range specs {
		spec := spec.withDefaults()
		if spec.Shards == 0 {
			spec.Shards = env.Shards
		}
		// Resolve the protocol up front (serial MeasureGossip fails before
		// running any seed on an unknown name).
		proto, err := protoByName(spec.Proto)
		jobs[i] = gridJob{
			seeds: spec.Seeds,
			err:   err,
			run:   func(seed int64) (sim.Result, error) { return runGossipOnce(proto, spec, seed) },
			seed:  func(run int) int64 { return specSeed(spec.SeedLabel, run) },
			timeOf: func(res sim.Result) float64 {
				return float64(res.TimeComplexity)
			},
			failAll: func() error {
				return fmt.Errorf("experiments: all %d runs of %s failed", spec.Seeds, spec.Proto)
			},
		}
	}
	return runMeasureGrid(jobs, env.Workers)
}

func runGossipOnce(proto core.Protocol, spec GossipSpec, seed int64) (sim.Result, error) {
	cfg := sim.Config{N: spec.N, F: spec.F, D: spec.D, Delta: spec.Delta, Seed: seed, Shards: spec.Shards}
	p := spec.Gossip
	p.N, p.F = spec.N, spec.F
	p.Shards = spec.Shards
	// Grid cells run concurrently; a caller-shared snapshot pool would be a
	// data race, so every run builds its own (results are identical either
	// way — pooling never touches randomness or metrics).
	p.Pool = nil
	if spec.Topology != "" {
		g, err := topology.Build(topology.Spec{
			Family: spec.Topology, N: spec.N,
			Param: spec.TopoParam, Param2: spec.TopoParam2, Seed: seed,
		})
		if err != nil {
			return sim.Result{}, err
		}
		p.Graph = g
		cfg.Graph = g
	}
	nodes, err := core.NewNodes(proto, p, seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(spec.Preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(proto.Evaluator(p.WithDefaults()))
}

// ConsensusSpec describes one consensus measurement point.
type ConsensusSpec struct {
	Transport consensus.TransportKind
	N, F      int
	D         sim.Time
	Delta     sim.Time
	Preset    string
	Seeds     int
	Gossip    core.Params
	LocalCoin bool
	// SplitInputs proposes a perfect 0/1 split instead of random inputs —
	// the adversarial vote pattern that forces coin rounds.
	SplitInputs bool
	// Workers caps the worker pool for this spec's seed grid when the spec
	// is measured standalone (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Shards splits each run into superstep shards, as in GossipSpec.
	Shards int
	// SeedLabel switches the seed policy, as in GossipSpec.
	SeedLabel string
}

// withDefaults mirrors the historical serial defaults.
func (s ConsensusSpec) withDefaults() ConsensusSpec {
	if s.Seeds <= 0 {
		s.Seeds = 3
	}
	if s.Preset == "" {
		s.Preset = adversary.PresetStandard
	}
	return s
}

// MeasureConsensus runs the spec over its seeds and aggregates.
func MeasureConsensus(spec ConsensusSpec) (Measurement, error) {
	ms, errs := measureConsensusGrid([]ConsensusSpec{spec}, Env{Workers: spec.Workers})
	return ms[0], errs[0]
}

// measureConsensusGrid is measureGossipGrid for consensus specs.
func measureConsensusGrid(specs []ConsensusSpec, env Env) ([]Measurement, []error) {
	jobs := make([]gridJob, len(specs))
	for i, spec := range specs {
		spec := spec.withDefaults()
		if spec.Shards == 0 {
			spec.Shards = env.Shards
		}
		jobs[i] = gridJob{
			seeds: spec.Seeds,
			run:   func(seed int64) (sim.Result, error) { return runConsensusOnce(spec, seed) },
			seed:  func(run int) int64 { return specSeed(spec.SeedLabel, run) },
			// Consensus "time" is when the last correct process decides.
			timeOf: func(res sim.Result) float64 {
				return float64(res.CompletedAt)
			},
			failAll: func() error {
				return fmt.Errorf("experiments: all %d runs of CR-%s failed", spec.Seeds, spec.Transport)
			},
		}
	}
	return runMeasureGrid(jobs, env.Workers)
}

func runConsensusOnce(spec ConsensusSpec, seed int64) (sim.Result, error) {
	// Consensus transports embed their gossip nodes unpooled, so the shard
	// count only needs to reach the kernel config.
	cfg := sim.Config{N: spec.N, F: spec.F, D: spec.D, Delta: spec.Delta, Seed: seed, Shards: spec.Shards}
	p := consensus.Params{
		N: spec.N, F: spec.F,
		Transport: spec.Transport,
		Gossip:    spec.Gossip,
	}
	if spec.LocalCoin {
		p.Coin = consensus.NewLocalCoin(seed)
	}
	inputs := consensus.RandomInputs(spec.N, seed+1000)
	if spec.SplitInputs {
		for i := range inputs {
			inputs[i] = uint8(i % 2)
		}
	}
	nodes, err := consensus.NewNodes(p, inputs, seed)
	if err != nil {
		return sim.Result{}, err
	}
	adv, err := adversary.ByName(spec.Preset, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	w, err := sim.NewWorld(cfg, nodes, adv)
	if err != nil {
		return sim.Result{}, err
	}
	return w.Run(consensus.Evaluator{Inputs: inputs})
}

// Scale selects experiment sizes: Quick keeps CI runtimes small, Full is
// the configuration EXPERIMENTS.md reports.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// String names the scale (used by cmd/bench's artifact).
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// gossipNs returns the n sweep for gossip scaling fits.
func (s Scale) gossipNs() []int {
	if s == Full {
		return []int{64, 128, 256, 512}
	}
	return []int{32, 64, 128}
}

// consensusNs returns the n sweep for consensus.
func (s Scale) consensusNs() []int {
	if s == Full {
		return []int{32, 64, 128, 256}
	}
	return []int{16, 32, 64}
}

// seeds returns the per-point repetition count.
func (s Scale) seeds() int {
	if s == Full {
		return 5
	}
	return 2
}
