package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table1Row is one measured row of the Table 1 reproduction.
type Table1Row struct {
	Algo        string
	N, F        int
	Time        stats.Summary
	Messages    stats.Summary
	TimeExp     float64 // growth exponent of time vs n
	MsgExp      float64 // growth exponent of messages vs n
	PaperTime   string
	PaperMsgs   string
	PaperModel  string
	PaperAdvers string
}

// Table1Result carries the full reproduction of Table 1.
type Table1Result struct {
	Rows  []Table1Row
	Scale Scale
	D     int
	Delta int
}

// table1Protos lists the Table 1 algorithms with their paper-side claims.
var table1Protos = []struct {
	name      string
	paperTime string
	paperMsgs string
	model     string
	adversary string
	fFraction float64 // f as a fraction of n
	preset    string
	isSync    bool
}{
	{"sync-epidemic", "O(polylog n)", "O(n polylog n)", "Synch", "Adaptive", 0.25, adversary.PresetStandard, true},
	{"sync-deterministic", "O(polylog n)", "O(n polylog n)", "Synch", "Adaptive", 0.25, adversary.PresetStandard, true},
	{"trivial", "O(d+δ)", "Θ(n²)", "Part. Synch", "Adaptive", 0.25, adversary.PresetStandard, false},
	{"ears", "O(n/(n−f)·log²n·(d+δ))", "O(n·log³n·(d+δ))", "Part. Synch", "Oblivious", 0.25, adversary.PresetStandard, false},
	{"sears", "O(n/(ε(n−f))·(d+δ))", "O(n^{2+ε}/(ε(n−f))·log n·(d+δ))", "Part. Synch", "Oblivious", 0.25, adversary.PresetStandard, false},
	{"tears", "O(d+δ)", "O(n^{7/4}·log²n)", "Part. Synch", "Oblivious", 0.49, adversary.PresetStandard, false},
}

// Table1 reproduces Table 1: for each algorithm it measures time and
// message complexity at the largest n of the sweep and fits growth
// exponents across the sweep. Synchronous baselines run with d = δ = 1
// (which they are entitled to assume); partially synchronous algorithms
// run at the given d, δ without knowing them. The whole (algorithm × n ×
// seed) grid fans across env.Workers.
func Table1(env Env, d, delta int) (*Table1Result, error) {
	res := &Table1Result{Scale: env.Scale, D: d, Delta: delta}
	ns := env.Scale.gossipNs()
	var specs []GossipSpec
	for _, tp := range table1Protos {
		for _, n := range ns {
			f := int(tp.fFraction * float64(n))
			spec := GossipSpec{
				Proto: tp.name, N: n, F: f,
				D: sim.Time(d), Delta: sim.Time(delta),
				Preset: tp.preset,
				Seeds:  env.seeds(),
			}
			if tp.isSync {
				spec.D, spec.Delta = 1, 1
				spec.Preset = adversary.PresetBenign
				// Synchronous baselines still face crashes; use the storm
				// (which the CK row tolerates by design).
				if f > 0 {
					spec.Preset = adversary.PresetStandard
				}
			}
			specs = append(specs, spec)
		}
	}
	ms, errs := measureGossipGrid(specs, env)
	cell := 0
	for _, tp := range table1Protos {
		var nsX, timeY, msgY []float64
		var last Measurement
		var lastN, lastF int
		for _, n := range ns {
			m, err := ms[cell], errs[cell]
			cell++
			if err != nil {
				return nil, fmt.Errorf("table1 %s n=%d: %w", tp.name, n, err)
			}
			f := int(tp.fFraction * float64(n))
			nsX = append(nsX, float64(n))
			timeY = append(timeY, m.Time.Mean)
			msgY = append(msgY, m.Messages.Mean)
			last, lastN, lastF = m, n, f
		}
		row := Table1Row{
			Algo: tp.name, N: lastN, F: lastF,
			Time: last.Time, Messages: last.Messages,
			PaperTime: tp.paperTime, PaperMsgs: tp.paperMsgs,
			PaperModel: tp.model, PaperAdvers: tp.adversary,
		}
		if fit, err := stats.GrowthExponent(nsX, timeY); err == nil {
			row.TimeExp = fit.Slope
		}
		if fit, err := stats.GrowthExponent(nsX, msgY); err == nil {
			row.MsgExp = fit.Slope
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the reproduction next to the paper's claims.
func (r *Table1Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Table 1 — gossip protocols (measured at d=%d δ=%d; exponents fitted over the n sweep)", r.D, r.Delta),
		"algorithm", "n", "f", "time(steps)", "messages", "t-exp", "m-exp", "paper time", "paper messages", "adversary")
	for _, row := range r.Rows {
		t.AddRow(row.Algo, row.N, row.F,
			row.Time.String(), row.Messages.String(),
			fmt.Sprintf("%.2f", row.TimeExp), fmt.Sprintf("%.2f", row.MsgExp),
			row.PaperTime, row.PaperMsgs, row.PaperAdvers)
	}
	t.AddNote("t-exp/m-exp: empirical growth exponents of time/messages vs n (log–log OLS).")
	t.AddNote("trivial should show m-exp ≈ 2; ears m-exp ≈ 1 (+log factors); tears m-exp between 1.5 and 2 and t-exp ≈ 0.")
	return t
}

// Render formats Table1Result's table as text.
func (r *Table1Result) Render() string { return r.Table().String() }
