package experiments

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestMeasureGossipWithTopology(t *testing.T) {
	m, err := MeasureGossip(GossipSpec{
		Proto: "ears", N: 32, F: 0, D: 1, Delta: 1, Seeds: 2,
		Topology: topology.FamilyRing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures != 0 {
		t.Fatalf("failures: %d", m.Failures)
	}
	if m.Messages.Mean <= 0 {
		t.Fatalf("degenerate measurement: %+v", m)
	}
}

func TestTopologySweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep generation in -short mode")
	}
	res, err := TopologySweep(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 protocols × all families, with stats aggregated per point.
	if want := 3 * len(topoFamilies()); len(res.Points) != want {
		t.Fatalf("points: %d, want %d", len(res.Points), want)
	}
	// ears must complete on every connected family.
	for _, p := range res.Points {
		if p.Proto == "ears" && p.Complete != 1 {
			t.Errorf("ears on %s: completion %.0f%%", p.Family, p.Complete*100)
		}
	}
	out := res.Table().String()
	for _, family := range topoFamilies() {
		if !strings.Contains(out, family) {
			t.Fatalf("table missing family %s:\n%s", family, out)
		}
	}
}

func TestNPSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep generation in -short mode")
	}
	res, err := NPSweep(Env{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Time) != len(res.Cs) || len(res.MeanDeg) != len(res.Cs) {
		t.Fatalf("ragged sweep: %+v", res)
	}
	if !strings.Contains(res.Table().String(), "mean deg") {
		t.Fatal("table missing mean-degree column")
	}
}
