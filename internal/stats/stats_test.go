package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median = %v", even.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("singleton summary: %+v", one)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = 4·x^1.75
	xs := []float64{64, 128, 256, 512}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4 * math.Pow(x, 1.75)
	}
	f, err := GrowthExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-1.75) > 1e-9 {
		t.Fatalf("exponent %v, want 1.75", f.Slope)
	}
	if _, err := GrowthExponent([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("negative data accepted")
	}
}

// Property: fitting y = a·x + b recovers a, b for random a, b.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{1, 2, 5, 9, 14}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-a) < 1e-6 && math.Abs(fit.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "algo", "time", "msgs")
	tb.AddRow("ears", 123.0, int64(45678))
	tb.AddRow("tears", 1.5, int64(99))
	tb.AddNote("n=%d", 128)
	out := tb.String()
	for _, want := range []string{"Table X", "algo", "ears", "tears", "45678", "1.500", "note: n=128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Alignment: header and separator rows have equal length.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x,with,commas", 1.5)
	tb.AddRow("plain", int64(7))
	tb.AddNote("ignored in csv")
	out := tb.CSV()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, `"x,with,commas",1.500`) {
		t.Fatalf("quoting broken:\n%s", out)
	}
	if strings.Contains(out, "ignored") {
		t.Fatal("notes leaked into csv")
	}
	if tb.Title() != "T" || tb.Table() != tb {
		t.Fatal("accessors")
	}
}
