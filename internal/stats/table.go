package stats

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for the experiment reports.
type Table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// trimFloat formats floats compactly.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 100 || v <= -100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// CSV renders the table as RFC-4180 CSV (header row first; the title and
// notes are omitted — they are prose, not data). Used by `cmd/tables
// -csv` to export experiment data for external plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	// Writes to a strings.Builder cannot fail; csv.Writer stores no error
	// for valid UTF-8 records, so Flush/Error handling below is defensive.
	_ = w.Write(t.header)
	for _, row := range t.rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Title returns the table's title (used for CSV file naming).
func (t *Table) Title() string { return t.title }

// Table returns t itself, letting a bare *Table satisfy render-and-export
// interfaces alongside experiment result types.
func (t *Table) Table() *Table { return t }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
