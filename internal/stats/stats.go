// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries over repeated runs, ordinary least squares
// on log–log data for empirical growth exponents, and plain-text table
// rendering for the Table 1 / Table 2 reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String renders "mean ± std".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.Std)
}

// Fit is a least-squares line y = Slope·x + Intercept with goodness R².
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes ordinary least squares over (x, y) pairs.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d, %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate x values")
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	// R² = 1 − SSres/SStot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		r := ys[i] - (f.Slope*xs[i] + f.Intercept)
		ssRes += r * r
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f, nil
}

// GrowthExponent fits log(y) = e·log(x) + c and returns e: the empirical
// growth exponent of y as a function of x. All values must be positive.
func GrowthExponent(xs, ys []float64) (Fit, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if i >= len(ys) || xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: growth exponent needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}
